// Integration tests: cycle reproducibility (paper §III) — the
// property the whole bringup methodology hangs on.
#include <gtest/gtest.h>

#include "apps/fwq.hpp"
#include "cluster_test_util.hpp"

namespace bg {
namespace {

struct Witness {
  std::vector<std::uint64_t> samples;
  std::uint64_t finalScan = 0;
  sim::Cycle doneAt = 0;
};

Witness fwqWitness(rt::KernelKind kind, std::uint64_t entropy,
                   int samples = 40) {
  rt::ClusterConfig cfg;
  cfg.kernel = kind;
  cfg.fwk.entropy = entropy;
  rt::Cluster cluster(cfg);
  Witness w;
  if (!cluster.bootAll()) return w;
  apps::FwqParams fp;
  fp.samples = samples;
  kernel::JobSpec job;
  job.exe = apps::fwqImage(fp);
  cluster.attachSamples(0, 0, &w.samples);
  if (!cluster.loadJob(job)) return w;
  cluster.run(2'000'000'000ULL);
  w.finalScan = cluster.machine().scanHash();
  w.doneAt = cluster.engine().now();
  return w;
}

TEST(Repro, CnkRunsAreBitIdentical) {
  const Witness a = fwqWitness(rt::KernelKind::kCnk, 1);
  const Witness b = fwqWitness(rt::KernelKind::kCnk, 2);
  ASSERT_FALSE(a.samples.empty());
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_EQ(a.finalScan, b.finalScan);
  EXPECT_EQ(a.doneAt, b.doneAt);
}

TEST(Repro, FwkRunsDivergeAcrossBoots) {
  const Witness a = fwqWitness(rt::KernelKind::kFwk, 1);
  const Witness b = fwqWitness(rt::KernelKind::kFwk, 2);
  ASSERT_FALSE(a.samples.empty());
  // Boot entropy (clocksource calibration, interrupt timing) shifts
  // everything: completion cycles cannot line up.
  EXPECT_NE(a.doneAt, b.doneAt);
}

TEST(Repro, CnkReproducibleResetRestartsIdentically) {
  rt::ClusterConfig cfg;
  rt::Cluster cluster(cfg);
  ASSERT_TRUE(cluster.bootAll());
  apps::FwqParams fp;
  fp.samples = 30;

  auto runJob = [&](std::vector<std::uint64_t>* sink) {
    kernel::JobSpec job;
    job.exe = apps::fwqImage(fp);
    cluster.attachSamples(0, 0, sink);
    ASSERT_TRUE(cluster.loadJob(job));
    ASSERT_TRUE(cluster.run(2'000'000'000ULL));
  };

  std::vector<std::uint64_t> runA, runB;
  runJob(&runA);

  bool restarted = false;
  cluster.cnkOn(0)->requestReproducibleReset([&] { restarted = true; });
  cluster.engine().runWhile([&] { return restarted; }, 1'000'000);
  ASSERT_TRUE(restarted);
  EXPECT_EQ(cluster.cnkOn(0)->reproducibleResets(), 1u);

  runJob(&runB);
  ASSERT_EQ(runA.size(), runB.size());
  EXPECT_EQ(runA, runB);
}

TEST(Repro, DramContentsSurviveSelfRefreshReset) {
  rt::ClusterConfig cfg;
  rt::Cluster cluster(cfg);
  ASSERT_TRUE(cluster.bootAll());
  hw::PhysMem& mem = cluster.machine().node(0).mem();
  const hw::PAddr probe = mem.size() - (8ULL << 20);
  mem.write64(probe, 0x123456789ABCDEFULL);
  bool restarted = false;
  cluster.cnkOn(0)->requestReproducibleReset([&] { restarted = true; });
  cluster.engine().runWhile([&] { return restarted; }, 1'000'000);
  ASSERT_TRUE(restarted);
  EXPECT_EQ(mem.read64(probe), 0x123456789ABCDEFULL);
}

TEST(Repro, ScanHashDetectsSingleBitOfStateChange) {
  // Two identical machines; poke one register file -> scans diverge.
  hw::MachineConfig mc;
  hw::Machine a(mc), b(mc);
  EXPECT_EQ(a.scanHash(), b.scanHash());
  hw::TlbEntry e;
  e.pid = 1;
  e.vaddr = 0x100000;
  e.paddr = 0x100000;
  e.size = hw::kPage1M;
  e.perms = hw::kPermRW;
  e.valid = true;
  b.node(0).core(0).mmu().install(e);
  EXPECT_NE(a.scanHash(), b.scanHash());
}

TEST(Repro, EngineEventCountsAreDeterministic) {
  const Witness a = fwqWitness(rt::KernelKind::kCnk, 7, 10);
  const Witness b = fwqWitness(rt::KernelKind::kCnk, 7, 10);
  EXPECT_EQ(a.doneAt, b.doneAt);
  EXPECT_EQ(a.finalScan, b.finalScan);
}

}  // namespace
}  // namespace bg

// Edge cases in the messaging stack: truncation, self-sends, zero-ish
// payloads, concurrent reductions, and independent barrier groups.
#include <gtest/gtest.h>

#include "cluster_test_util.hpp"
#include "hw/barrier_net.hpp"
#include "hw/collective.hpp"
#include "kernel/syscalls.hpp"
#include "runtime/rt_ids.hpp"

namespace bg {
namespace {

using test::emitExit;
using test::runProgram;

std::int64_t sys(kernel::Sys s) { return static_cast<std::int64_t>(s); }
std::int64_t rtc(rt::Rt r) { return static_cast<std::int64_t>(r); }

TEST(MsgEdges, RecvTruncatesToPostedBufferSize) {
  rt::ClusterConfig cfg;
  cfg.computeNodes = 2;
  rt::Cluster cluster(cfg);
  ASSERT_TRUE(cluster.bootAll());
  vm::ProgramBuilder b("t");
  b.mov(16, 10);
  const std::size_t toRecv = b.emitForwardBranch(vm::Op::kBnez, 1);
  // Sender: 64 bytes, first and last words marked.
  b.li(17, 0x1111);
  b.store(16, 17, 0);
  b.li(17, 0x2222);
  b.store(16, 17, 56);
  b.li(1, 1);
  b.mov(2, 16);
  b.li(3, 64);
  b.li(4, 9);
  b.rtcall(rtc(rt::Rt::kDcmfSend));
  emitExit(b);
  b.patchHere(toRecv);
  // Receiver: posts only 16 bytes.
  b.li(1, 0);
  b.mov(2, 16);
  b.addi(2, 2, 4096);
  b.li(3, 16);
  b.li(4, 9);
  b.rtcall(rtc(rt::Rt::kDcmfRecv));
  b.sample(0);  // truncated byte count
  b.load(18, 16, 4096);
  b.sample(18);         // first word intact
  b.load(18, 16, 4096 + 56);
  b.sample(18);         // beyond the posted buffer: untouched (0)
  emitExit(b);
  kernel::JobSpec job;
  job.exe = kernel::ElfImage::makeExecutable("t", std::move(b).build());
  std::vector<std::uint64_t> s;
  cluster.attachSamples(1, 0, &s);
  ASSERT_TRUE(cluster.loadJob(job));
  ASSERT_TRUE(cluster.run());
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], 16u);
  EXPECT_EQ(s[1], 0x1111u);
  EXPECT_EQ(s[2], 0u);
}

TEST(MsgEdges, PutToSelfRankWorks) {
  // Loopback DMA on one node (the torus's local path).
  vm::ProgramBuilder b("t");
  b.mov(16, 10);
  b.li(17, 0x5E1F);
  b.store(16, 17, 0);
  b.li(1, 0);  // self
  b.mov(2, 16);
  b.mov(3, 16);
  b.addi(3, 3, 2048);
  b.li(4, 8);
  b.li(5, 1);
  b.rtcall(rtc(rt::Rt::kDcmfPut));
  b.load(18, 16, 2048);
  b.sample(18);
  emitExit(b);
  auto r = runProgram({}, std::move(b).build());
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.samples.size(), 1u);
  EXPECT_EQ(r.samples[0], 0x5E1Fu);
}

TEST(MsgEdges, ConcurrentReductionsOnDistinctGroupsDoNotMix) {
  sim::Engine eng;
  hw::CollectiveNet net(eng, {});
  std::vector<double> ra, rb;
  // Interleave the arrivals of two independent reductions.
  net.contribute(1, 0, {1.0}, 2, [&](const auto& v) { ra = v; });
  net.contribute(2, 0, {10.0}, 2, [&](const auto& v) { rb = v; });
  net.contribute(2, 1, {20.0}, 2, [&](const auto&) {});
  net.contribute(1, 1, {2.0}, 2, [&](const auto&) {});
  eng.run();
  ASSERT_EQ(ra.size(), 1u);
  ASSERT_EQ(rb.size(), 1u);
  EXPECT_DOUBLE_EQ(ra[0], 3.0);
  EXPECT_DOUBLE_EQ(rb[0], 30.0);
}

TEST(MsgEdges, BarrierGroupsAreIndependent) {
  sim::Engine eng;
  hw::BarrierNet bar(eng, {});
  bar.configureGroup(1, 2);
  bar.configureGroup(2, 3);
  int g1 = 0, g2 = 0;
  bar.arrive(1, 0, [&] { ++g1; });
  bar.arrive(2, 0, [&] { ++g2; });
  bar.arrive(2, 1, [&] { ++g2; });
  bar.arrive(1, 1, [&] { ++g1; });
  eng.run();
  EXPECT_EQ(g1, 2);
  EXPECT_EQ(g2, 0);  // group 2 still waits for its third member
  bar.arrive(2, 2, [&] { ++g2; });
  eng.run();
  EXPECT_EQ(g2, 3);
}

TEST(MsgEdges, SendsToDistinctPeersInterleaveCorrectly) {
  // Rank 0 sends distinct values to ranks 1..3; each receives its own.
  rt::ClusterConfig cfg;
  cfg.computeNodes = 4;
  rt::Cluster cluster(cfg);
  ASSERT_TRUE(cluster.bootAll());
  vm::ProgramBuilder b("t");
  b.mov(16, 10);
  const std::size_t toRecv = b.emitForwardBranch(vm::Op::kBnez, 1);
  for (int dst = 1; dst <= 3; ++dst) {
    b.li(17, 100 + dst);
    b.store(16, 17, 0);
    b.li(1, dst);
    b.mov(2, 16);
    b.li(3, 8);
    b.li(4, 4);
    b.rtcall(rtc(rt::Rt::kMpiSend));
  }
  emitExit(b);
  b.patchHere(toRecv);
  b.li(1, 0);
  b.mov(2, 16);
  b.addi(2, 2, 4096);
  b.li(3, 8);
  b.li(4, 4);
  b.rtcall(rtc(rt::Rt::kMpiRecv));
  b.load(18, 16, 4096);
  b.sample(18);
  emitExit(b);
  kernel::JobSpec job;
  job.exe = kernel::ElfImage::makeExecutable("t", std::move(b).build());
  std::vector<std::vector<std::uint64_t>> s(4);
  for (int r = 0; r < 4; ++r) cluster.attachSamples(r, 0, &s[r]);
  ASSERT_TRUE(cluster.loadJob(job));
  ASSERT_TRUE(cluster.run());
  for (int r = 1; r <= 3; ++r) {
    ASSERT_EQ(s[r].size(), 1u) << r;
    EXPECT_EQ(s[r][0], static_cast<std::uint64_t>(100 + r));
  }
}

TEST(MsgEdges, ArmciGetSeesLatestRemoteValue) {
  // Two sequential gets observe a value the target changed in between
  // (one-sided freshness).
  rt::ClusterConfig cfg;
  cfg.computeNodes = 2;
  rt::Cluster cluster(cfg);
  ASSERT_TRUE(cluster.bootAll());
  vm::ProgramBuilder b("t");
  b.mov(16, 10);
  const std::size_t toTarget = b.emitForwardBranch(vm::Op::kBnez, 1);
  // Rank 0: get, wait, get again.
  for (int round = 0; round < 2; ++round) {
    b.li(1, 1);
    b.mov(2, 16);
    b.addi(2, 2, 128);
    b.mov(3, 16);
    b.addi(3, 3, 256);
    b.li(4, 8);
    b.rtcall(rtc(rt::Rt::kArmciGet));
    b.load(18, 16, 256);
    b.sample(18);
    if (round == 0) b.compute(3'000'000);
  }
  emitExit(b);
  b.patchHere(toTarget);
  // Rank 1: publish 1, then later 2.
  b.li(17, 1);
  b.store(16, 17, 128);
  b.compute(1'500'000);
  b.li(17, 2);
  b.store(16, 17, 128);
  b.compute(4'000'000);  // stay alive for the second get
  emitExit(b);
  kernel::JobSpec job;
  job.exe = kernel::ElfImage::makeExecutable("t", std::move(b).build());
  std::vector<std::uint64_t> s;
  cluster.attachSamples(0, 0, &s);
  ASSERT_TRUE(cluster.loadJob(job));
  ASSERT_TRUE(cluster.run());
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], 1u);
  EXPECT_EQ(s[1], 2u);
}

}  // namespace
}  // namespace bg

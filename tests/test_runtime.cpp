// Integration tests: the glibc/NPTL-style user runtime — malloc over
// brk/mmap, pthread barrier, dlopen on CNK (eager, checksummed,
// unprotected), dispatcher error handling.
#include <gtest/gtest.h>

#include "cluster_test_util.hpp"
#include "kernel/syscalls.hpp"
#include "runtime/rt_ids.hpp"

namespace bg {
namespace {

using test::emitExit;
using test::runProgram;

std::int64_t rtc(rt::Rt r) { return static_cast<std::int64_t>(r); }

TEST(Malloc, SmallAllocationsComeFromBrkArena) {
  vm::ProgramBuilder b("t");
  b.li(1, 256);
  b.rtcall(rtc(rt::Rt::kMalloc));
  b.sample(0);
  b.li(1, 256);
  b.rtcall(rtc(rt::Rt::kMalloc));
  b.sample(0);
  emitExit(b);
  std::unique_ptr<rt::Cluster> cluster;
  auto r = runProgram({}, std::move(b).build(), &cluster);
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.samples.size(), 2u);
  kernel::Process* p = cluster->processOfRank(0);
  EXPECT_GE(r.samples[0], p->heapBase);
  EXPECT_LT(r.samples[0], p->heapLimit);
  // Bump allocation: consecutive, non-overlapping.
  EXPECT_EQ(r.samples[1], r.samples[0] + 256);
}

TEST(Malloc, LargeAllocationsGoThroughMmap) {
  // "Many stack allocations exceed 1MB, invoking the mmap system call
  // as opposed to brk" (paper §IV-B1).
  vm::ProgramBuilder b("t");
  b.li(1, 2 << 20);
  b.rtcall(rtc(rt::Rt::kMalloc));
  b.sample(0);
  b.mov(16, 0);
  // Writable immediately.
  b.li(17, 5);
  b.store(16, 17, 0);
  b.mov(1, 16);
  b.li(2, 2 << 20);
  b.rtcall(rtc(rt::Rt::kFree));
  b.sample(0);
  emitExit(b);
  std::unique_ptr<rt::Cluster> cluster;
  auto r = runProgram({}, std::move(b).build(), &cluster);
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.samples.size(), 2u);
  kernel::Process* p = cluster->processOfRank(0);
  // mmap zone sits above the brk arena.
  EXPECT_GE(r.samples[0], p->heapLimit);
  // And the tracker got it back.
  EXPECT_EQ(cluster->cnkOn(0)->mmapOf(*p).bytesAllocated(), 0u);
}

TEST(Pthreads, BarrierWaitReleasesWholeTeam) {
  constexpr int kTeam = 4;  // master + 3 on a 4-core SMP node
  vm::ProgramBuilder b("t");
  b.mov(16, 10);
  b.addi(16, 16, 512);   // barrier block
  b.mov(18, 10);
  b.addi(18, 18, 1024);  // tid store
  std::vector<std::size_t> fixes;
  for (int i = 1; i < kTeam; ++i) {
    fixes.push_back(b.size());
    b.li(1, -1);
    b.mov(2, 16);
    b.rtcall(rtc(rt::Rt::kPthreadCreate));
    b.store(18, 0, (i - 1) * 8);
  }
  b.mov(1, 16);
  b.li(2, kTeam);
  b.rtcall(rtc(rt::Rt::kBarrierWait));
  b.sample(0);  // exactly one caller sees the serial value 1
  for (int i = 1; i < kTeam; ++i) {
    b.load(1, 18, (i - 1) * 8);
    b.rtcall(rtc(rt::Rt::kPthreadJoin));
  }
  // Post-barrier: counter reset to 0, generation advanced to 1.
  b.load(20, 16, 0);
  b.sample(20);
  b.load(20, 16, 8);
  b.sample(20);
  emitExit(b);
  const auto worker = b.label();
  b.mov(16, 1);
  b.compute(10'000);
  b.mov(1, 16);
  b.li(2, kTeam);
  b.rtcall(rtc(rt::Rt::kBarrierWait));
  b.halt();
  for (auto f : fixes) b.patchTarget(f, worker);
  auto r = runProgram({}, std::move(b).build());
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.samples.size(), 3u);
  EXPECT_EQ(r.samples[1], 0u);
  EXPECT_EQ(r.samples[2], 1u);
}

TEST(Loader, DlopenLoadsFullImageWithCorrectBytes) {
  // CNK path: the whole library is fetched through the function-ship
  // protocol and copied into memory; the loaded bytes checksum-match
  // the image (MAP_COPY, §IV-B2).
  vm::ProgramBuilder b("t");
  b.li(1, 0);
  b.rtcall(rtc(rt::Rt::kDlopen));
  b.sample(0);  // handle
  emitExit(b);
  kernel::JobSpec tmpl;
  auto lib = kernel::ElfImage::makeLibrary("libx.so");
  tmpl.libs.push_back(lib);
  std::unique_ptr<rt::Cluster> cluster;
  auto r = runProgram({}, std::move(b).build(), &cluster, tmpl);
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.samples.size(), 1u);
  const auto base = r.samples[0];
  ASSERT_GT(static_cast<std::int64_t>(base), 0);
  auto* cnk = cluster->cnkOn(0);
  kernel::Process* p = cluster->processOfRank(0);
  const cnk::LoadedLib* loaded = cnk->linker().byName(p->pid(), "libx.so");
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->textBase, base);
  EXPECT_EQ(loaded->checksum, lib->textChecksum());
  // The loaded bytes in memory really match the image.
  std::vector<std::byte> inMem(lib->textContents().size());
  ASSERT_TRUE(cnk->copyFromUser(*p, loaded->textBase, inMem));
  EXPECT_EQ(sim::hashBytes(inMem), lib->textChecksum());
  // The CIOD really served the open/read/close triple.
  EXPECT_GE(cluster->ciod(0).stats().requests, 3u);
}

TEST(Loader, DlopenedLibraryTextIsUnprotectedOnCnk) {
  // "Applications could therefore unintentionally modify their text or
  // read-only data" (§IV-B2): a store into the loaded library succeeds.
  vm::ProgramBuilder b("t");
  b.li(1, 0);
  b.rtcall(rtc(rt::Rt::kDlopen));
  b.mov(16, 0);
  emitExit(b);
  kernel::JobSpec tmpl;
  tmpl.libs.push_back(kernel::ElfImage::makeLibrary("liby.so"));
  std::unique_ptr<rt::Cluster> cluster;
  auto r = runProgram({}, std::move(b).build(), &cluster, tmpl);
  ASSERT_TRUE(r.completed);
  auto* cnk = cluster->cnkOn(0);
  kernel::Process* p = cluster->processOfRank(0);
  const cnk::LoadedLib* lib = cnk->linker().byName(p->pid(), "liby.so");
  ASSERT_NE(lib, nullptr);
  // Host-side: scribble through the kernel interface at the lib text
  // address — the region is plain RW heap, CNK does not protect it.
  const std::uint64_t v = 0x77;
  EXPECT_TRUE(cnk->copyToUser(*p, lib->textBase,
                              std::as_bytes(std::span(&v, 1))));
}

TEST(Loader, DlopenMissingLibraryFails) {
  vm::ProgramBuilder b("t");
  b.li(1, 5);  // out-of-range index
  b.rtcall(rtc(rt::Rt::kDlopen));
  b.sample(0);
  emitExit(b);
  auto r = runProgram({}, std::move(b).build());
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(static_cast<std::int64_t>(r.samples[0]), -kernel::kENOENT);
}

TEST(Dispatcher, UnknownRtcallReturnsEnosys) {
  vm::ProgramBuilder b("t");
  b.rtcall(9999);
  b.sample(0);
  emitExit(b);
  auto r = runProgram({}, std::move(b).build());
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(static_cast<std::int64_t>(r.samples[0]), -kernel::kENOSYS);
}

TEST(Dispatcher, UnknownSyscallReturnsEnosys) {
  vm::ProgramBuilder b("t");
  b.syscall(9999);
  b.sample(0);
  emitExit(b);
  auto r = runProgram({}, std::move(b).build());
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(static_cast<std::int64_t>(r.samples[0]), -kernel::kENOSYS);
}

}  // namespace
}  // namespace bg

// PersistRegistry misuse: pool exhaustion, uid mismatch on reopen,
// oversized reopen, page rounding, and the address-stability contract
// (paper §IV-D) that the service-node checkpoint store leans on.
#include <gtest/gtest.h>

#include <vector>

#include "cnk/persist.hpp"
#include "hw/phys_mem.hpp"

namespace bg {
namespace {

constexpr std::uint64_t kMB = 1ULL << 20;

cnk::PersistRegistry makePool(std::uint64_t bytes) {
  cnk::PersistRegistry reg;
  reg.configurePool(0, bytes, 0x5000'0000ULL);
  return reg;
}

TEST(PersistEdges, PoolExhaustionRefusesCreateButKeepsExisting) {
  cnk::PersistRegistry reg = makePool(4 * kMB);
  ASSERT_TRUE(reg.openOrCreate("a", 2 * kMB, 1).has_value());
  ASSERT_TRUE(reg.openOrCreate("b", 2 * kMB, 1).has_value());
  EXPECT_EQ(reg.poolBytesUsed(), 4 * kMB);

  // Pool is full: a new region of any size must be refused...
  EXPECT_FALSE(reg.openOrCreate("c", 1, 1).has_value());
  EXPECT_EQ(reg.regionCount(), 2u);
  // ...while reopening the existing ones still works.
  EXPECT_TRUE(reg.openOrCreate("a", 2 * kMB, 1).has_value());
  EXPECT_TRUE(reg.openOrCreate("b", kMB, 1).has_value());
}

TEST(PersistEdges, ReopenWithWrongUidIsRefused) {
  cnk::PersistRegistry reg = makePool(4 * kMB);
  ASSERT_TRUE(reg.openOrCreate("secrets", kMB, 7).has_value());
  EXPECT_FALSE(reg.openOrCreate("secrets", kMB, 8).has_value());
  // The refusal changes nothing: the owner still gets in.
  const auto again = reg.openOrCreate("secrets", kMB, 7);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->ownerUid, 7u);
  // remove() enforces the same privilege.
  EXPECT_FALSE(reg.remove("secrets", 8));
  EXPECT_TRUE(reg.remove("secrets", 7));
}

TEST(PersistEdges, OversizedReopenIsRefused) {
  cnk::PersistRegistry reg = makePool(8 * kMB);
  const auto r = reg.openOrCreate("grow", 100, 1);  // rounds to 1MB
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->size, kMB) << "1MB-page rounding";
  // Anything up to the mapped (rounded) size reopens; beyond refuses.
  EXPECT_TRUE(reg.openOrCreate("grow", kMB, 1).has_value());
  EXPECT_FALSE(reg.openOrCreate("grow", kMB + 1, 1).has_value());
  // A refused reopen must not have grown the region.
  EXPECT_EQ(reg.find("grow")->size, kMB);
}

TEST(PersistEdges, AddressesStableAcrossJobBoundaries) {
  // Two regions created by "job 1"; reopened by "job 2" they must map
  // at the same virtual addresses with DRAM contents intact — that is
  // the whole point of persistent memory, and what makes the service
  // node's checkpoint survive its own restarts.
  hw::PhysMem mem(8 * kMB);
  cnk::PersistRegistry reg = makePool(8 * kMB);
  const auto a1 = reg.openOrCreate("list", kMB, 1);
  const auto b1 = reg.openOrCreate("index", kMB, 1);
  ASSERT_TRUE(a1 && b1);
  EXPECT_NE(a1->vbase, b1->vbase);
  mem.write64(a1->pbase, 0x1122334455667788ULL);
  mem.write64(b1->pbase, 0x99AABBCCDDEEFF00ULL);

  // "Job 2": same names, smaller sizes are fine.
  const auto a2 = reg.openOrCreate("list", 4096, 1);
  const auto b2 = reg.openOrCreate("index", kMB, 1);
  ASSERT_TRUE(a2 && b2);
  EXPECT_EQ(a2->vbase, a1->vbase);
  EXPECT_EQ(a2->pbase, a1->pbase);
  EXPECT_EQ(b2->vbase, b1->vbase);
  EXPECT_EQ(mem.read64(a2->pbase), 0x1122334455667788ULL);
  EXPECT_EQ(mem.read64(b2->pbase), 0x99AABBCCDDEEFF00ULL);
}

TEST(PersistEdges, RemovedNameReusesNoPoolSpace) {
  // Pool space is never reclaimed (regions live for the partition's
  // lifetime); removing a name only frees the name.
  cnk::PersistRegistry reg = makePool(2 * kMB);
  ASSERT_TRUE(reg.openOrCreate("tmp", kMB, 1).has_value());
  ASSERT_TRUE(reg.remove("tmp", 1));
  EXPECT_EQ(reg.poolBytesUsed(), kMB);
  ASSERT_TRUE(reg.openOrCreate("tmp2", kMB, 1).has_value());
  // Pool now exhausted even though only one region is live.
  EXPECT_FALSE(reg.openOrCreate("tmp3", kMB, 1).has_value());
}

}  // namespace
}  // namespace bg

// PersistRegistry misuse: pool exhaustion, uid mismatch on reopen,
// oversized reopen, page rounding, and the address-stability contract
// (paper §IV-D) that the service-node checkpoint store leans on.
// Plus the persistence upgrade/corruption edges the checkpoint planes
// add: the v4 -> v5 SvcCheckpoint layout change, and torn application
// checkpoint images rejected by the seal with a scratch fallback.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "cluster_test_util.hpp"
#include "cnk/ckpt_image.hpp"
#include "cnk/persist.hpp"
#include "hw/phys_mem.hpp"
#include "kernel/syscalls.hpp"
#include "svc/checkpoint.hpp"

namespace bg {
namespace {

constexpr std::uint64_t kMB = 1ULL << 20;

cnk::PersistRegistry makePool(std::uint64_t bytes) {
  cnk::PersistRegistry reg;
  reg.configurePool(0, bytes, 0x5000'0000ULL);
  return reg;
}

TEST(PersistEdges, PoolExhaustionRefusesCreateButKeepsExisting) {
  cnk::PersistRegistry reg = makePool(4 * kMB);
  ASSERT_TRUE(reg.openOrCreate("a", 2 * kMB, 1).has_value());
  ASSERT_TRUE(reg.openOrCreate("b", 2 * kMB, 1).has_value());
  EXPECT_EQ(reg.poolBytesUsed(), 4 * kMB);

  // Pool is full: a new region of any size must be refused...
  EXPECT_FALSE(reg.openOrCreate("c", 1, 1).has_value());
  EXPECT_EQ(reg.regionCount(), 2u);
  // ...while reopening the existing ones still works.
  EXPECT_TRUE(reg.openOrCreate("a", 2 * kMB, 1).has_value());
  EXPECT_TRUE(reg.openOrCreate("b", kMB, 1).has_value());
}

TEST(PersistEdges, ReopenWithWrongUidIsRefused) {
  cnk::PersistRegistry reg = makePool(4 * kMB);
  ASSERT_TRUE(reg.openOrCreate("secrets", kMB, 7).has_value());
  EXPECT_FALSE(reg.openOrCreate("secrets", kMB, 8).has_value());
  // The refusal changes nothing: the owner still gets in.
  const auto again = reg.openOrCreate("secrets", kMB, 7);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->ownerUid, 7u);
  // remove() enforces the same privilege.
  EXPECT_FALSE(reg.remove("secrets", 8));
  EXPECT_TRUE(reg.remove("secrets", 7));
}

TEST(PersistEdges, OversizedReopenIsRefused) {
  cnk::PersistRegistry reg = makePool(8 * kMB);
  const auto r = reg.openOrCreate("grow", 100, 1);  // rounds to 1MB
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->size, kMB) << "1MB-page rounding";
  // Anything up to the mapped (rounded) size reopens; beyond refuses.
  EXPECT_TRUE(reg.openOrCreate("grow", kMB, 1).has_value());
  EXPECT_FALSE(reg.openOrCreate("grow", kMB + 1, 1).has_value());
  // A refused reopen must not have grown the region.
  EXPECT_EQ(reg.find("grow")->size, kMB);
}

TEST(PersistEdges, AddressesStableAcrossJobBoundaries) {
  // Two regions created by "job 1"; reopened by "job 2" they must map
  // at the same virtual addresses with DRAM contents intact — that is
  // the whole point of persistent memory, and what makes the service
  // node's checkpoint survive its own restarts.
  hw::PhysMem mem(8 * kMB);
  cnk::PersistRegistry reg = makePool(8 * kMB);
  const auto a1 = reg.openOrCreate("list", kMB, 1);
  const auto b1 = reg.openOrCreate("index", kMB, 1);
  ASSERT_TRUE(a1 && b1);
  EXPECT_NE(a1->vbase, b1->vbase);
  mem.write64(a1->pbase, 0x1122334455667788ULL);
  mem.write64(b1->pbase, 0x99AABBCCDDEEFF00ULL);

  // "Job 2": same names, smaller sizes are fine.
  const auto a2 = reg.openOrCreate("list", 4096, 1);
  const auto b2 = reg.openOrCreate("index", kMB, 1);
  ASSERT_TRUE(a2 && b2);
  EXPECT_EQ(a2->vbase, a1->vbase);
  EXPECT_EQ(a2->pbase, a1->pbase);
  EXPECT_EQ(b2->vbase, b1->vbase);
  EXPECT_EQ(mem.read64(a2->pbase), 0x1122334455667788ULL);
  EXPECT_EQ(mem.read64(b2->pbase), 0x99AABBCCDDEEFF00ULL);
}

TEST(PersistEdges, RemovedNameReusesNoPoolSpace) {
  // Pool space is never reclaimed (regions live for the partition's
  // lifetime); removing a name only frees the name.
  cnk::PersistRegistry reg = makePool(2 * kMB);
  ASSERT_TRUE(reg.openOrCreate("tmp", kMB, 1).has_value());
  ASSERT_TRUE(reg.remove("tmp", 1));
  EXPECT_EQ(reg.poolBytesUsed(), kMB);
  ASSERT_TRUE(reg.openOrCreate("tmp2", kMB, 1).has_value());
  // Pool now exhausted even though only one region is live.
  EXPECT_FALSE(reg.openOrCreate("tmp3", kMB, 1).has_value());
}

// ---------------------------------------------------------------------
// SvcCheckpoint v4 -> v5 upgrade path
// ---------------------------------------------------------------------

svc::SvcCheckpoint sampleCheckpoint() {
  svc::SvcCheckpoint ck;
  ck.takenAt = 123'456;
  ck.scheduleHash = 0xFEEDFACE;
  ck.nextId = 9;
  ck.preemptions = 3;
  ck.ckptRequests = 4;
  ck.ckptCommits = 3;
  ck.ckptFallbacks = 1;
  ck.ckptResumes = 2;
  svc::SvcCheckpoint::JobEntry e;
  e.rec.id = 7;
  e.rec.desc.name = "upgradee";
  e.rec.state = svc::JobState::kQueued;
  e.rec.attempts = 2;
  e.rec.preemptCount = 1;
  e.rec.ckptSeq = 5;
  e.exeName = "upgradee.elf";
  ck.jobs.push_back(std::move(e));
  ck.queue.push_back(7);
  return ck;
}

TEST(PersistEdges, SvcCheckpointV4ImageDecodesWithCkptFieldsZero) {
  // A v4 image (written by the pre-ckpt control plane) must decode on
  // the v5 code: everything it carries round-trips, and the fields the
  // layout predates — the four ckpt counters and per-job ckptSeq —
  // come back zero, i.e. "no application checkpoint known", which is
  // exactly the safe default (a requeue after upgrade runs scratch).
  const svc::SvcCheckpoint src = sampleCheckpoint();
  sim::ByteWriter w;
  src.encode(w, 4);
  sim::ByteReader r(w.bytes());
  svc::SvcCheckpoint dec;
  ASSERT_TRUE(dec.decode(r));
  EXPECT_EQ(dec.takenAt, src.takenAt);
  EXPECT_EQ(dec.scheduleHash, src.scheduleHash);
  EXPECT_EQ(dec.nextId, src.nextId);
  EXPECT_EQ(dec.preemptions, src.preemptions);
  ASSERT_EQ(dec.jobs.size(), 1u);
  EXPECT_EQ(dec.jobs[0].rec.id, 7u);
  EXPECT_EQ(dec.jobs[0].rec.preemptCount, 1);
  EXPECT_EQ(dec.ckptRequests, 0u);
  EXPECT_EQ(dec.ckptCommits, 0u);
  EXPECT_EQ(dec.ckptFallbacks, 0u);
  EXPECT_EQ(dec.ckptResumes, 0u);
  EXPECT_EQ(dec.jobs[0].rec.ckptSeq, 0u);
}

TEST(PersistEdges, SvcCheckpointV5RoundTripsCkptFields) {
  const svc::SvcCheckpoint src = sampleCheckpoint();
  sim::ByteWriter w;
  src.encode(w);
  sim::ByteReader r(w.bytes());
  svc::SvcCheckpoint dec;
  ASSERT_TRUE(dec.decode(r));
  EXPECT_EQ(dec.ckptRequests, 4u);
  EXPECT_EQ(dec.ckptCommits, 3u);
  EXPECT_EQ(dec.ckptFallbacks, 1u);
  EXPECT_EQ(dec.ckptResumes, 2u);
  ASSERT_EQ(dec.jobs.size(), 1u);
  EXPECT_EQ(dec.jobs[0].rec.ckptSeq, 5u);
}

TEST(PersistEdges, SvcCheckpointV5ImageDecodesWithMigrateFieldsZero) {
  // A v5 image (written by the pre-migration control plane) must decode
  // on the v6 code with the migration block at its safe default: no
  // migrations known and an empty link-sick set, so allocation after
  // the upgrade is bit-identical to plain allocate().
  svc::SvcCheckpoint src = sampleCheckpoint();
  src.migrateRequests = 2;
  src.migrateCommits = 2;
  src.migrations = 1;
  src.sickNodes = {3, 5};
  sim::ByteWriter w;
  src.encode(w, 5);
  sim::ByteReader r(w.bytes());
  svc::SvcCheckpoint dec;
  ASSERT_TRUE(dec.decode(r));
  EXPECT_EQ(dec.ckptResumes, 2u) << "v5 payload must still round-trip";
  EXPECT_EQ(dec.migrateRequests, 0u);
  EXPECT_EQ(dec.migrateCommits, 0u);
  EXPECT_EQ(dec.migrateFallbacks, 0u);
  EXPECT_EQ(dec.migrations, 0u);
  EXPECT_EQ(dec.degradedJobs, 0u);
  EXPECT_EQ(dec.migrateCyclesSaved, 0u);
  EXPECT_TRUE(dec.sickNodes.empty());
}

TEST(PersistEdges, SvcCheckpointV6RoundTripsMigrateFields) {
  svc::SvcCheckpoint src = sampleCheckpoint();
  src.migrateRequests = 4;
  src.migrateCommits = 3;
  src.migrateFallbacks = 1;
  src.migrations = 3;
  src.degradedJobs = 2;
  src.migrateCyclesSaved = 987'654;
  src.sickNodes = {1, 6};
  sim::ByteWriter w;
  src.encode(w);
  sim::ByteReader r(w.bytes());
  svc::SvcCheckpoint dec;
  ASSERT_TRUE(dec.decode(r));
  EXPECT_EQ(dec.migrateRequests, 4u);
  EXPECT_EQ(dec.migrateCommits, 3u);
  EXPECT_EQ(dec.migrateFallbacks, 1u);
  EXPECT_EQ(dec.migrations, 3u);
  EXPECT_EQ(dec.degradedJobs, 2u);
  EXPECT_EQ(dec.migrateCyclesSaved, 987'654u);
  EXPECT_EQ(dec.sickNodes, (std::vector<int>{1, 6}));
}

// ---------------------------------------------------------------------
// Torn application checkpoint images
// ---------------------------------------------------------------------

std::int64_t sysNum(kernel::Sys s) { return static_cast<std::int64_t>(s); }

/// Same shape as test_ckpt's oracle app: ckpt_save between two compute
/// phases, sample[0] = saved(0)/resumed(1), sample[1] = accumulator.
vm::Program tornApp() {
  vm::ProgramBuilder b("torn-app");
  b.li(20, 0);
  const auto top1 = b.loopBegin(21, 6);
  b.compute(2'000);
  b.addi(20, 20, 7);
  b.loopEnd(21, top1);
  b.syscall(sysNum(kernel::Sys::kCkptSave));
  b.sample(0);
  const auto top2 = b.loopBegin(21, 6);
  b.compute(2'000);
  b.addi(20, 20, 3);
  b.loopEnd(21, top2);
  b.sample(20);
  test::emitExit(b);
  return std::move(b).build();
}

/// Commit an image, mangle it with `mangle`, then restore-reload and
/// expect a seal rejection followed by a scratch run with the full
/// answer — corruption must never wedge or half-apply.
void runTornImageCase(
    const std::function<std::vector<std::byte>(std::vector<std::byte>)>&
        mangle) {
  std::unique_ptr<rt::Cluster> cluster;
  auto r = test::runProgram({}, tornApp(), &cluster);
  ASSERT_TRUE(r.completed);
  cnk::CnkKernel* k = cluster->cnkOn(0);
  ASSERT_EQ(k->ckptSeqCommitted(), 1u);
  const std::uint64_t fullAnswer = r.samples.at(1);

  io::RamFs& fs = cluster->ioRootFs(0);
  const std::string path = cnk::ckpt::imagePath(0, 0);
  fs.putFile(path, mangle(fs.fileContents(path)));

  k->unloadJob();
  kernel::JobSpec job;
  job.exe = kernel::ElfImage::makeExecutable("test", tornApp());
  job.restore = true;
  std::vector<std::uint64_t> samples;
  cluster->attachSamples(0, 0, &samples);
  ASSERT_TRUE(cluster->loadJob(job));
  ASSERT_TRUE(cluster->run());
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0], 0u) << "corrupt image must scratch-start";
  EXPECT_EQ(samples[1], fullAnswer);
  EXPECT_EQ(k->ckptRestores(), 0u);
  EXPECT_GE(k->ckptFailures(), 1u);
  // The scratch run's own ckpt_save re-committed a fresh valid image.
  EXPECT_EQ(k->ckptSeqCommitted(), 1u);
}

TEST(PersistEdges, TornCkptImageFailsSealAndFallsBackToScratch) {
  runTornImageCase([](std::vector<std::byte> bytes) {
    bytes.at(bytes.size() / 2) ^= std::byte{0x40};
    return bytes;
  });
}

TEST(PersistEdges, TruncatedCkptImageFailsSealAndFallsBackToScratch) {
  runTornImageCase([](std::vector<std::byte> bytes) {
    bytes.resize(bytes.size() / 2);
    return bytes;
  });
}

}  // namespace
}  // namespace bg

// RAS aggregation edge cases: throttle-window behavior exactly at the
// window boundary, fatal exemption while the throttle is saturated,
// kernel-ring overflow accounting across multiple polls, the bounded
// stream's own drop counter, and the predictive-drain warn window at
// its edge.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "runtime/app.hpp"
#include "svc/ras.hpp"

namespace bg {
namespace {

using kernel::RasEvent;

struct Rig {
  rt::Cluster cluster;
  kernel::KernelBase& k;

  explicit Rig() : cluster(makeCfg()), k(cluster.kernelOn(0)) {}

  static rt::ClusterConfig makeCfg() {
    rt::ClusterConfig cfg;
    cfg.computeNodes = 1;
    return cfg;
  }

  /// Log an event with the given cycle stamp by scheduling the log at
  /// that engine cycle (kernels stamp RAS entries with engine now()).
  void logAt(sim::Cycle cycle, RasEvent::Code code,
             RasEvent::Severity sev) {
    cluster.engine().scheduleAt(cycle, [this, code, sev] {
      k.logRas(code, sev, 0, 0, 0);
    });
  }

  void drain() {
    cluster.engine().runWhile([] { return false; }, 1'000'000);
  }
};

TEST(RasEdges, ThrottleWindowBoundaryIsExclusive) {
  Rig rig;
  svc::RasAggregatorConfig cfg;
  cfg.throttleWindowCycles = 100;
  cfg.maxPerCodePerWindow = 1;
  svc::RasAggregator agg(cfg);
  agg.attach(0, &rig.k);

  // Window opens at the first event's cycle. An event at windowStart +
  // window - 1 is still inside (throttled); one at exactly windowStart
  // + window opens a fresh window (admitted).
  rig.logAt(0, RasEvent::Code::kSegv, RasEvent::Severity::kError);
  rig.logAt(99, RasEvent::Code::kSegv, RasEvent::Severity::kError);
  rig.logAt(100, RasEvent::Code::kSegv, RasEvent::Severity::kError);
  rig.logAt(199, RasEvent::Code::kSegv, RasEvent::Severity::kError);
  rig.drain();
  agg.poll(200);

  EXPECT_EQ(agg.accepted(), 2u);   // cycles 0 and 100
  EXPECT_EQ(agg.throttled(), 2u);  // cycles 99 and 199
  ASSERT_EQ(agg.stream().size(), 2u);
  EXPECT_EQ(agg.stream()[0].event.cycle, 0u);
  EXPECT_EQ(agg.stream()[1].event.cycle, 100u);
}

TEST(RasEdges, ThrottleIsPerCodeNotGlobal) {
  Rig rig;
  svc::RasAggregatorConfig cfg;
  cfg.throttleWindowCycles = 1'000;
  cfg.maxPerCodePerWindow = 1;
  svc::RasAggregator agg(cfg);
  agg.attach(0, &rig.k);

  rig.logAt(0, RasEvent::Code::kSegv, RasEvent::Severity::kError);
  rig.logAt(1, RasEvent::Code::kSegv, RasEvent::Severity::kError);
  rig.logAt(2, RasEvent::Code::kMachineCheck, RasEvent::Severity::kWarn);
  rig.drain();
  agg.poll(10);

  // The second segv throttles; the machine check rides its own window.
  EXPECT_EQ(agg.accepted(), 2u);
  EXPECT_EQ(agg.throttled(), 1u);
}

TEST(RasEdges, FatalsExemptEvenWithThrottleSaturated) {
  Rig rig;
  svc::RasAggregatorConfig cfg;
  cfg.throttleWindowCycles = 1'000'000;
  cfg.maxPerCodePerWindow = 2;
  svc::RasAggregator agg(cfg);
  agg.attach(0, &rig.k);
  int fatalsReported = 0;
  agg.setFatalHandler([&](int, const RasEvent&) { ++fatalsReported; });

  // Saturate the kNodeFailure code with error-severity events, then
  // log fatals of the SAME code: every fatal must reach the stream and
  // the handler despite the exhausted window.
  for (int i = 0; i < 5; ++i) {
    rig.logAt(10 + static_cast<sim::Cycle>(i),
              RasEvent::Code::kNodeFailure, RasEvent::Severity::kError);
  }
  for (int i = 0; i < 3; ++i) {
    rig.logAt(20 + static_cast<sim::Cycle>(i),
              RasEvent::Code::kNodeFailure, RasEvent::Severity::kFatal);
  }
  rig.drain();
  agg.poll(100);

  EXPECT_EQ(agg.throttled(), 3u);  // errors beyond the window of 2
  EXPECT_EQ(agg.accepted(), 5u);   // 2 errors + 3 fatals
  EXPECT_EQ(fatalsReported, 3);
  EXPECT_EQ(agg.countBySeverity(RasEvent::Severity::kFatal), 3u);
  std::size_t fatalsInStream = 0;
  for (const auto& se : agg.stream()) {
    if (se.event.severity == RasEvent::Severity::kFatal) ++fatalsInStream;
  }
  EXPECT_EQ(fatalsInStream, 3u);
}

TEST(RasEdges, RingOverflowDropsStayAccurateAcrossPolls) {
  Rig rig;
  rig.k.setRasLogCapacity(4);
  svc::RasAggregator agg;
  agg.attach(0, &rig.k);

  // Round 1: 10 events into a 4-deep ring -> 6 lost before the poll.
  for (int i = 0; i < 10; ++i) {
    rig.k.logRas(RasEvent::Code::kSegv, RasEvent::Severity::kError, 1, 1,
                 static_cast<std::uint64_t>(i));
  }
  agg.poll(0);
  EXPECT_EQ(agg.accepted() + agg.throttled(), 4u);
  EXPECT_EQ(agg.dropped(), 6u);

  // Round 2: 7 more -> 3 lost. The cursor must step over exactly the
  // lost seqs and never re-consume round 1's survivors.
  for (int i = 0; i < 7; ++i) {
    rig.k.logRas(RasEvent::Code::kSegv, RasEvent::Severity::kError, 1, 1,
                 static_cast<std::uint64_t>(100 + i));
  }
  agg.poll(1);
  EXPECT_EQ(agg.accepted() + agg.throttled(), 8u);
  EXPECT_EQ(agg.dropped(), 9u);

  // Seqs in the stream are strictly increasing (nothing replayed).
  for (std::size_t i = 1; i < agg.stream().size(); ++i) {
    EXPECT_LT(agg.stream()[i - 1].event.seq, agg.stream()[i].event.seq);
  }
  // Round 3: nothing new -> a no-op poll changes no counter.
  EXPECT_EQ(agg.poll(2), 0u);
  EXPECT_EQ(agg.dropped(), 9u);
}

TEST(RasEdges, BoundedStreamCountsItsOwnDrops) {
  Rig rig;
  svc::RasAggregatorConfig cfg;
  cfg.streamCapacity = 4;
  cfg.maxPerCodePerWindow = 100;
  svc::RasAggregator agg(cfg);
  agg.attach(0, &rig.k);

  for (int i = 0; i < 10; ++i) {
    rig.k.logRas(RasEvent::Code::kSegv, RasEvent::Severity::kError, 1, 1,
                 static_cast<std::uint64_t>(i));
  }
  agg.poll(0);
  EXPECT_EQ(agg.accepted(), 10u);  // all admitted...
  EXPECT_EQ(agg.stream().size(), 4u);  // ...but only 4 retained
  EXPECT_EQ(agg.dropped(), 6u);        // and the loss is counted
  // The retained entries are the newest ones.
  EXPECT_EQ(agg.stream().front().event.detail, 6u);
  EXPECT_EQ(agg.stream().back().event.detail, 9u);
}

TEST(RasEdges, WarnWindowEdgeEvictsExactlyAtWindowAge) {
  Rig rig;
  svc::RasAggregatorConfig cfg;
  cfg.warnDrainThreshold = 2;
  cfg.warnWindowCycles = 500;
  svc::RasAggregator agg(cfg);
  agg.attach(0, &rig.k);
  int storms = 0;
  agg.setWarnStormHandler([&](int, sim::Cycle) { ++storms; });

  // Two warns exactly one window apart: the older one ages out at the
  // instant the newer lands, so no storm.
  rig.logAt(1'000, RasEvent::Code::kMachineCheck,
            RasEvent::Severity::kWarn);
  rig.logAt(1'500, RasEvent::Code::kMachineCheck,
            RasEvent::Severity::kWarn);
  rig.drain();
  agg.poll(1'500);
  EXPECT_EQ(storms, 0);
  EXPECT_EQ(agg.warnsInWindow(0), 1u);

  // One cycle tighter and the pair counts together: storm fires once
  // and the window is cleared with it.
  rig.logAt(1'999, RasEvent::Code::kMachineCheck,
            RasEvent::Severity::kWarn);
  rig.drain();
  agg.poll(2'000);
  EXPECT_EQ(storms, 1);
  EXPECT_EQ(agg.warnsInWindow(0), 0u);
}

// Every RAS code enumerator — including the front-door codes appended
// for admission rejections and restarts — must have a distinct,
// non-placeholder name: operators grep the aggregated stream by name,
// and a "?" or a collision makes two failure classes indistinguishable.
TEST(RasEdges, EveryCodeHasADistinctName) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < kernel::kNumRasCodes; ++i) {
    const auto code = static_cast<RasEvent::Code>(i);
    const char* name = kernel::rasCodeName(code);
    ASSERT_NE(name, nullptr) << "code " << i;
    EXPECT_STRNE(name, "?") << "code " << i;
    EXPECT_TRUE(names.insert(name).second)
        << "code " << i << " reuses name " << name;
  }
  EXPECT_EQ(names.size(), kernel::kNumRasCodes);
  // The front-door additions landed at the end of the enum (persisted
  // u8 values must never shift) with the intended names and default
  // severities.
  EXPECT_STREQ(kernel::rasCodeName(RasEvent::Code::kClientRejected),
               "client_rejected");
  EXPECT_STREQ(kernel::rasCodeName(RasEvent::Code::kFrontDoorRestart),
               "frontdoor_restart");
  EXPECT_EQ(kernel::defaultRasSeverity(RasEvent::Code::kClientRejected),
            RasEvent::Severity::kWarn);
  EXPECT_EQ(kernel::defaultRasSeverity(RasEvent::Code::kFrontDoorRestart),
            RasEvent::Severity::kInfo);
  // Application checkpoint/restart codes: appended at the end of the
  // enum, milestones informational, only the failure path warns (the
  // previous committed image or a scratch restart remains the truth).
  EXPECT_STREQ(kernel::rasCodeName(RasEvent::Code::kCkptBegin),
               "ckpt_begin");
  EXPECT_STREQ(kernel::rasCodeName(RasEvent::Code::kCkptCommit),
               "ckpt_commit");
  EXPECT_STREQ(kernel::rasCodeName(RasEvent::Code::kCkptRestore),
               "ckpt_restore");
  EXPECT_STREQ(kernel::rasCodeName(RasEvent::Code::kCkptFailed),
               "ckpt_failed");
  EXPECT_EQ(kernel::defaultRasSeverity(RasEvent::Code::kCkptBegin),
            RasEvent::Severity::kInfo);
  EXPECT_EQ(kernel::defaultRasSeverity(RasEvent::Code::kCkptCommit),
            RasEvent::Severity::kInfo);
  EXPECT_EQ(kernel::defaultRasSeverity(RasEvent::Code::kCkptRestore),
            RasEvent::Severity::kInfo);
  EXPECT_EQ(kernel::defaultRasSeverity(RasEvent::Code::kCkptFailed),
            RasEvent::Severity::kWarn);
}

}  // namespace
}  // namespace bg

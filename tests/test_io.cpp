// Unit + integration tests: VFS, RamFS, NFS model, the CIOD wire
// protocol, and the end-to-end function-shipped I/O path.
#include <gtest/gtest.h>

#include <cstring>

#include "cluster_test_util.hpp"
#include "io/ciod.hpp"
#include "io/nfs_sim.hpp"
#include "io/protocol.hpp"
#include "io/ramfs.hpp"
#include "io/vfs.hpp"
#include "kernel/syscalls.hpp"
#include "sim/rng.hpp"

namespace bg::io {
namespace {

using test::runProgram;

// ---------------- path handling ----------------

TEST(Paths, NormalizeCollapsesAndResolves) {
  EXPECT_EQ(normalizePath("/a//b/./c"), "/a/b/c");
  EXPECT_EQ(normalizePath("/a/b/../c"), "/a/c");
  EXPECT_EQ(normalizePath("/../.."), "/");
  EXPECT_EQ(normalizePath("///"), "/");
  EXPECT_EQ(normalizePath("/a/"), "/a");
}

// ---------------- RamFs ----------------

class RamFsTest : public ::testing::Test {
 protected:
  RamFs fs;
};

TEST_F(RamFsTest, CreateWriteReadBack) {
  const auto h = fs.open("/f", kernel::kOCreat | kernel::kOWronly);
  ASSERT_GT(h, 0);
  const std::uint8_t data[] = {9, 8, 7};
  EXPECT_EQ(fs.pwrite(h, std::as_bytes(std::span(data)), 0), 3);
  EXPECT_EQ(fs.fileSize(h), 3);
  std::uint8_t out[3] = {};
  EXPECT_EQ(fs.pread(h, std::as_writable_bytes(std::span(out)), 0), 3);
  EXPECT_EQ(out[0], 9);
  fs.close(h);
}

TEST_F(RamFsTest, OpenMissingWithoutCreateFails) {
  EXPECT_EQ(fs.open("/missing", kernel::kORdonly), -kernel::kENOENT);
}

TEST_F(RamFsTest, CreateRequiresParentDirectory) {
  EXPECT_EQ(fs.open("/no/such/dir/f", kernel::kOCreat), -kernel::kENOENT);
  EXPECT_EQ(fs.mkdir("/no"), 0);
  EXPECT_GT(fs.open("/no/f", kernel::kOCreat), 0);
}

TEST_F(RamFsTest, TruncateClearsContents) {
  auto h = fs.open("/f", kernel::kOCreat | kernel::kOWronly);
  const std::uint8_t d[] = {1};
  fs.pwrite(h, std::as_bytes(std::span(d)), 0);
  fs.close(h);
  h = fs.open("/f", kernel::kOWronly | kernel::kOTrunc);
  EXPECT_EQ(fs.fileSize(h), 0);
  fs.close(h);
}

TEST_F(RamFsTest, SparseWriteZeroFills) {
  const auto h = fs.open("/f", kernel::kOCreat | kernel::kORdwr);
  const std::uint8_t d[] = {5};
  fs.pwrite(h, std::as_bytes(std::span(d)), 100);
  std::uint8_t out[101];
  EXPECT_EQ(fs.pread(h, std::as_writable_bytes(std::span(out)), 0), 101);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[100], 5);
  fs.close(h);
}

TEST_F(RamFsTest, UnlinkKeepsOpenHandleAlive) {
  const auto h = fs.open("/f", kernel::kOCreat | kernel::kORdwr);
  const std::uint8_t d[] = {3};
  fs.pwrite(h, std::as_bytes(std::span(d)), 0);
  EXPECT_EQ(fs.unlink("/f"), 0);
  EXPECT_FALSE(fs.exists("/f"));
  std::uint8_t out[1];
  EXPECT_EQ(fs.pread(h, std::as_writable_bytes(std::span(out)), 0), 1);
  EXPECT_EQ(out[0], 3);
  fs.close(h);
}

TEST_F(RamFsTest, StatDistinguishesDirsAndFiles) {
  fs.mkdir("/d");
  fs.putFile("/d/f", {std::byte{1}, std::byte{2}});
  FileStat st;
  ASSERT_EQ(fs.stat("/d", &st), 0);
  EXPECT_TRUE(st.isDir);
  ASSERT_EQ(fs.stat("/d/f", &st), 0);
  EXPECT_FALSE(st.isDir);
  EXPECT_EQ(st.size, 2u);
  EXPECT_EQ(fs.stat("/x", &st), -kernel::kENOENT);
}

TEST_F(RamFsTest, MkdirErrors) {
  EXPECT_EQ(fs.mkdir("/d"), 0);
  EXPECT_EQ(fs.mkdir("/d"), -kernel::kEEXIST);
  EXPECT_EQ(fs.mkdir("/a/b"), -kernel::kENOENT);
}

// ---------------- VfsClient ----------------

class VfsClientTest : public ::testing::Test {
 protected:
  VfsClientTest() : client(vfs, engine) {
    root = std::make_shared<RamFs>();
    vfs.mount("/", root);
    root->mkdir("/tmp");
  }
  sim::Engine engine;
  Vfs vfs;
  std::shared_ptr<RamFs> root;
  VfsClient client{vfs, engine};
};

TEST_F(VfsClientTest, FdTableTracksOffsets) {
  const auto fd = client.open("/tmp/f", kernel::kOCreat | kernel::kORdwr);
  ASSERT_GE(fd, 3);
  const std::uint8_t d[] = {1, 2, 3, 4};
  EXPECT_EQ(client.write(static_cast<int>(fd), std::as_bytes(std::span(d))),
            4);
  EXPECT_EQ(client.lseek(static_cast<int>(fd), 1, kernel::kSeekSet), 1);
  std::uint8_t out[2];
  EXPECT_EQ(client.read(static_cast<int>(fd),
                        std::as_writable_bytes(std::span(out))),
            2);
  EXPECT_EQ(out[0], 2);
  EXPECT_EQ(out[1], 3);
  client.close(static_cast<int>(fd));
}

TEST_F(VfsClientTest, SeekEndAndCur) {
  const auto fd = client.open("/tmp/f", kernel::kOCreat | kernel::kORdwr);
  const std::uint8_t d[8] = {};
  client.write(static_cast<int>(fd), std::as_bytes(std::span(d)));
  EXPECT_EQ(client.lseek(static_cast<int>(fd), -3, kernel::kSeekEnd), 5);
  EXPECT_EQ(client.lseek(static_cast<int>(fd), 2, kernel::kSeekCur), 7);
  EXPECT_EQ(client.lseek(static_cast<int>(fd), -100, kernel::kSeekSet),
            -kernel::kEINVAL);
}

TEST_F(VfsClientTest, CwdAffectsRelativePaths) {
  EXPECT_EQ(client.chdir("/tmp"), 0);
  const auto fd = client.open("x", kernel::kOCreat);
  ASSERT_GE(fd, 3);
  EXPECT_TRUE(root->exists("/tmp/x"));
  EXPECT_EQ(client.chdir("/tmp/x"), -kernel::kENOTDIR);
  EXPECT_EQ(client.chdir("/nope"), -kernel::kENOENT);
}

TEST_F(VfsClientTest, DupSharesBackendState) {
  const auto fd = client.open("/tmp/f", kernel::kOCreat | kernel::kORdwr);
  const auto fd2 = client.dup(static_cast<int>(fd));
  ASSERT_GT(fd2, fd);
  EXPECT_EQ(client.close(static_cast<int>(fd)), 0);
  const std::uint8_t d[] = {1};
  EXPECT_EQ(client.write(static_cast<int>(fd2), std::as_bytes(std::span(d))),
            1);
  client.close(static_cast<int>(fd2));
}

TEST_F(VfsClientTest, BadFdErrors) {
  std::uint8_t buf[1];
  EXPECT_EQ(client.read(99, std::as_writable_bytes(std::span(buf))),
            -kernel::kEBADF);
  EXPECT_EQ(client.close(99), -kernel::kEBADF);
}

TEST_F(VfsClientTest, MountPrefixesResolveLongestFirst) {
  auto nfs = std::make_shared<NfsSim>();
  vfs.mount("/nfs", nfs);
  const auto fd = client.open("/nfs/data", kernel::kOCreat);
  ASSERT_GE(fd, 3);
  EXPECT_TRUE(nfs->storage().exists("/data"));
  EXPECT_FALSE(root->exists("/nfs/data"));
}

TEST(NfsSim, LatencyExceedsRamFsAndJitters) {
  sim::Engine eng;
  NfsSim nfs;
  RamFs ram;
  const auto l1 = nfs.opLatency(FsOpKind::kRead, 4096, 0);
  const auto l2 = nfs.opLatency(FsOpKind::kRead, 4096, 0);
  EXPECT_GT(l1, ram.opLatency(FsOpKind::kRead, 4096, 0) * 10);
  EXPECT_NE(l1, l2);  // jittered (deterministically seeded)
}

// ---------------- wire protocol ----------------

TEST(Protocol, RequestRoundTrips) {
  FsRequest req;
  req.seq = 42;
  req.srcNode = 3;
  req.pid = 7;
  req.tid = 9;
  req.op = FsOp::kWrite;
  req.a0 = 5;
  req.a1 = 100;
  req.path = "/some/path";
  req.payload = {std::byte{1}, std::byte{2}};
  const auto bytes = req.encode();
  const auto back = FsRequest::decode(bytes);
  ASSERT_TRUE(back);
  EXPECT_EQ(back->seq, 42u);
  EXPECT_EQ(back->srcNode, 3);
  EXPECT_EQ(back->op, FsOp::kWrite);
  EXPECT_EQ(back->path, "/some/path");
  EXPECT_EQ(back->payload, req.payload);
}

TEST(Protocol, ReplyRoundTrips) {
  FsReply rep;
  rep.seq = 1;
  rep.srcNode = 2;
  rep.result = -kernel::kENOENT;
  rep.payload.resize(300, std::byte{7});
  const auto bytes = rep.encode();
  const auto back = FsReply::decode(bytes);
  ASSERT_TRUE(back);
  EXPECT_EQ(back->result, -kernel::kENOENT);
  EXPECT_EQ(back->payload, rep.payload);
}

TEST(Protocol, TruncatedBuffersRejected) {
  FsRequest req;
  req.path = "/p";
  req.payload.resize(64);
  auto bytes = req.encode();
  for (const std::size_t cut : {std::size_t{0}, bytes.size() / 2,
                                bytes.size() - 1}) {
    EXPECT_FALSE(
        FsRequest::decode(std::span(bytes.data(), cut)).has_value());
  }
}

TEST(Protocol, RandomizedRoundTripProperty) {
  sim::Rng rng(123);
  for (int i = 0; i < 200; ++i) {
    FsRequest req;
    req.seq = rng.next();
    req.srcNode = static_cast<std::int32_t>(rng.nextBelow(1000));
    req.pid = static_cast<std::uint32_t>(rng.nextBelow(100));
    req.tid = static_cast<std::uint32_t>(rng.nextBelow(100));
    req.op = static_cast<FsOp>(rng.nextBelow(11));
    req.a0 = rng.next();
    req.a1 = rng.next();
    req.a2 = rng.next();
    req.path.assign(rng.nextBelow(64), 'x');
    req.payload.resize(rng.nextBelow(512));
    for (auto& b : req.payload) {
      b = static_cast<std::byte>(rng.next() & 0xFF);
    }
    const auto back = FsRequest::decode(req.encode());
    ASSERT_TRUE(back);
    EXPECT_EQ(back->seq, req.seq);
    EXPECT_EQ(back->op, req.op);
    EXPECT_EQ(back->path, req.path);
    EXPECT_EQ(back->payload, req.payload);
  }
}

// ---------------- end-to-end function shipping ----------------

std::int64_t sys(kernel::Sys s) { return static_cast<std::int64_t>(s); }

/// Build "/tmp/t" at heapBase+256 and leave its address in r21.
void emitPath(vm::ProgramBuilder& b) {
  b.mov(21, 10);
  b.addi(21, 21, 256);
  const char p[] = "/tmp/t";
  std::uint64_t w = 0;
  for (std::size_t i = 0; i < sizeof(p); ++i) {
    w |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  b.li(20, static_cast<std::int64_t>(w));
  b.store(21, 20, 0);
}

TEST(Fship, WriteLandsOnIoNodeWithRealBytes) {
  vm::ProgramBuilder b("t");
  emitPath(b);
  b.mov(1, 21);
  b.li(2, static_cast<std::int64_t>(kernel::kOCreat | kernel::kOWronly));
  b.syscall(sys(kernel::Sys::kOpen));
  b.sample(0);
  b.mov(16, 0);
  // Put a recognizable value at heapBase and write 8 bytes of it.
  b.li(17, 0x4141414141414141);
  b.mov(18, 10);
  b.store(18, 17, 0);
  b.mov(1, 16);
  b.mov(2, 10);
  b.li(3, 8);
  b.syscall(sys(kernel::Sys::kWrite));
  b.sample(0);
  b.mov(1, 16);
  b.syscall(sys(kernel::Sys::kClose));
  test::emitExit(b);
  std::unique_ptr<rt::Cluster> cluster;
  auto r = runProgram({}, std::move(b).build(), &cluster);
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.samples.size(), 2u);
  EXPECT_GE(static_cast<std::int64_t>(r.samples[0]), 3);
  EXPECT_EQ(r.samples[1], 8u);
  const auto contents = cluster->ioRootFs(0).fileContents("/tmp/t");
  ASSERT_EQ(contents.size(), 8u);
  EXPECT_EQ(contents[0], std::byte{0x41});
}

TEST(Fship, ReadBringsRemoteBytesIntoUserMemory) {
  std::unique_ptr<rt::Cluster> cluster;
  vm::ProgramBuilder b("t");
  emitPath(b);
  b.mov(1, 21);
  b.li(2, 0);
  b.syscall(sys(kernel::Sys::kOpen));
  b.mov(16, 0);
  b.mov(1, 16);
  b.mov(2, 10);
  b.addi(2, 2, 2048);  // read target
  b.li(3, 8);
  b.syscall(sys(kernel::Sys::kRead));
  b.sample(0);          // byte count
  b.mov(19, 10);
  b.load(20, 19, 2048);
  b.sample(20);         // the value itself
  test::emitExit(b);

  rt::ClusterConfig cfg;
  auto preload = std::make_unique<rt::Cluster>(cfg);
  ASSERT_TRUE(preload->bootAll());
  // Stage the file on the I/O node before the job runs.
  std::vector<std::byte> contents(8);
  const std::uint64_t v = 0xBEEF;
  std::memcpy(contents.data(), &v, 8);
  preload->ioRootFs(0).putFile("/tmp/t", contents);
  kernel::JobSpec job;
  job.exe = kernel::ElfImage::makeExecutable("t", std::move(b).build());
  std::vector<std::uint64_t> samples;
  preload->attachSamples(0, 0, &samples);
  ASSERT_TRUE(preload->loadJob(job));
  ASSERT_TRUE(preload->run());
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0], 8u);
  EXPECT_EQ(samples[1], 0xBEEFu);
}

TEST(Fship, ErrorCodesComeBackFromLinux) {
  vm::ProgramBuilder b("t");
  emitPath(b);
  b.mov(1, 21);
  b.li(2, 0);  // no O_CREAT, file missing
  b.syscall(sys(kernel::Sys::kOpen));
  b.sample(0);
  test::emitExit(b);
  auto r = runProgram({}, std::move(b).build());
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(static_cast<std::int64_t>(r.samples[0]), -kernel::kENOENT);
}

TEST(Fship, IoProxyMirrorsCwd) {
  vm::ProgramBuilder b("t");
  // chdir("/tmp") then open a relative file.
  b.mov(21, 10);
  b.addi(21, 21, 256);
  const char p1[] = "/tmp";
  std::uint64_t w = 0;
  for (std::size_t i = 0; i < sizeof(p1); ++i) {
    w |= static_cast<std::uint64_t>(static_cast<unsigned char>(p1[i]))
         << (8 * i);
  }
  b.li(20, static_cast<std::int64_t>(w));
  b.store(21, 20, 0);
  b.mov(1, 21);
  b.syscall(sys(kernel::Sys::kChdir));
  b.sample(0);
  // open "rel"
  const char p2[] = "rel";
  w = 0;
  for (std::size_t i = 0; i < sizeof(p2); ++i) {
    w |= static_cast<std::uint64_t>(static_cast<unsigned char>(p2[i]))
         << (8 * i);
  }
  b.li(20, static_cast<std::int64_t>(w));
  b.store(21, 20, 0);
  b.mov(1, 21);
  b.li(2, static_cast<std::int64_t>(kernel::kOCreat));
  b.syscall(sys(kernel::Sys::kOpen));
  b.sample(0);
  test::emitExit(b);
  std::unique_ptr<rt::Cluster> cluster;
  auto r = runProgram({}, std::move(b).build(), &cluster);
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.samples.size(), 2u);
  EXPECT_EQ(r.samples[0], 0u);
  EXPECT_GE(static_cast<std::int64_t>(r.samples[1]), 3);
  EXPECT_TRUE(cluster->ioRootFs(0).exists("/tmp/rel"));
}

TEST(Fship, ConsoleWritesStayLocal) {
  vm::ProgramBuilder b("t");
  b.li(16, 0x0A696821);  // "!hi\n"
  b.mov(17, 10);
  b.store(17, 16, 0);
  b.li(1, 1);  // stdout
  b.mov(2, 10);
  b.li(3, 4);
  b.syscall(sys(kernel::Sys::kWrite));
  b.sample(0);
  test::emitExit(b);
  std::unique_ptr<rt::Cluster> cluster;
  auto r = runProgram({}, std::move(b).build(), &cluster);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.samples[0], 4u);
  EXPECT_EQ(cluster->consoleOf(0), "!hi\n");
  EXPECT_EQ(cluster->ciod(0).stats().requests, 0u);  // never shipped
}

}  // namespace
}  // namespace bg::io

// Tests: the capability registries behind Tables II and III are
// complete, consistent, and encode the paper's qualitative claims.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cnk/capability.hpp"
#include "fwk/capability.hpp"

namespace bg {
namespace {

using kernel::Capability;
using kernel::Ease;

std::map<std::string, Capability> byFeature(
    const std::vector<Capability>& v) {
  std::map<std::string, Capability> m;
  for (const auto& c : v) m[c.feature] = c;
  return m;
}

TEST(Capability, BothRegistriesCoverTheCanonicalFeatureList) {
  const auto features = kernel::capabilityFeatures();
  const auto cnk = byFeature(cnk::cnkCapabilities());
  const auto lnx = byFeature(fwk::linuxCapabilities());
  EXPECT_EQ(features.size(), 11u);  // the paper's Table II row count
  for (const auto& f : features) {
    EXPECT_TRUE(cnk.contains(f)) << f;
    EXPECT_TRUE(lnx.contains(f)) << f;
  }
  EXPECT_EQ(cnk.size(), features.size());
  EXPECT_EQ(lnx.size(), features.size());
}

TEST(Capability, FeatureListHasNoDuplicates) {
  const auto features = kernel::capabilityFeatures();
  std::set<std::string> uniq(features.begin(), features.end());
  EXPECT_EQ(uniq.size(), features.size());
}

TEST(Capability, EaseLabelsRoundTripAllValues) {
  for (const Ease e :
       {Ease::kEasy, Ease::kMedium, Ease::kHard, Ease::kNotAvail,
        Ease::kEasyToHard, Ease::kEasyToNotAvail, Ease::kMediumToHard}) {
    EXPECT_STRNE(kernel::easeLabel(e), "?");
    EXPECT_LT(kernel::easeRank(e), 6);
  }
}

TEST(Capability, PaperTableIIOrderingsHold) {
  const auto cnk = byFeature(cnk::cnkCapabilities());
  const auto lnx = byFeature(fwk::linuxCapabilities());
  auto cnkEasier = [&](const std::string& f) {
    return kernel::easeRank(cnk.at(f).use) <
           kernel::easeRank(lnx.at(f).use);
  };
  auto lnxEasier = [&](const std::string& f) {
    return kernel::easeRank(lnx.at(f).use) <
           kernel::easeRank(cnk.at(f).use);
  };
  // The LWK wins on performance-shaped capabilities...
  EXPECT_TRUE(cnkEasier("Large page use"));
  EXPECT_TRUE(cnkEasier("No TLB misses"));
  EXPECT_TRUE(cnkEasier("Large physically contiguous memory"));
  EXPECT_TRUE(cnkEasier("Predictable scheduling"));
  EXPECT_TRUE(cnkEasier("Performance reproducible"));
  EXPECT_TRUE(cnkEasier("Cycle reproducible execution"));
  // ...the FWK on generality-shaped ones (paper §VII).
  EXPECT_TRUE(lnxEasier("Full memory protection"));
  EXPECT_TRUE(lnxEasier("General dynamic linking"));
  EXPECT_TRUE(lnxEasier("Full mmap support"));
}

TEST(Capability, TableIIIOnlyMissingCapabilitiesNeedImplementing) {
  // For everything CNK lists as not-avail, an implement difficulty is
  // recorded (Table III's CNK column), and it is never "not avail"
  // (everything is implementable, at some cost).
  for (const auto& c : cnk::cnkCapabilities()) {
    if (c.use == Ease::kNotAvail) {
      EXPECT_NE(c.implement, Ease::kNotAvail) << c.feature;
    }
  }
  for (const auto& c : fwk::linuxCapabilities()) {
    if (c.use == Ease::kNotAvail || c.use == Ease::kEasyToHard) {
      EXPECT_NE(c.implement, Ease::kNotAvail) << c.feature;
    }
  }
}

TEST(Capability, NotesAreNonEmptyDocumentation) {
  for (const auto& c : cnk::cnkCapabilities()) {
    EXPECT_FALSE(c.note.empty()) << c.feature;
  }
  for (const auto& c : fwk::linuxCapabilities()) {
    EXPECT_FALSE(c.note.empty()) << c.feature;
  }
}

}  // namespace
}  // namespace bg

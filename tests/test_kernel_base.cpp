// Unit tests: KernelBase plumbing — user-memory copies across page
// boundaries, string reads, signal-frame nesting, RAS logging, ELF
// image determinism, process bookkeeping, MPI broadcast.
#include <gtest/gtest.h>

#include <algorithm>

#include "cluster_test_util.hpp"
#include "kernel/elf.hpp"
#include "kernel/syscalls.hpp"
#include "runtime/rt_ids.hpp"

namespace bg {
namespace {

using test::emitExit;
using test::runProgram;

std::int64_t sys(kernel::Sys s) { return static_cast<std::int64_t>(s); }
std::int64_t rtc(rt::Rt r) { return static_cast<std::int64_t>(r); }

// ---------------- ElfImage ----------------

TEST(ElfImage, TextContentsAreDeterministicPerName) {
  auto a = kernel::ElfImage::makeLibrary("libsame.so");
  auto b = kernel::ElfImage::makeLibrary("libsame.so");
  auto c = kernel::ElfImage::makeLibrary("libother.so");
  EXPECT_EQ(a->textChecksum(), b->textChecksum());
  EXPECT_NE(a->textChecksum(), c->textChecksum());
  EXPECT_TRUE(a->isPic());
}

TEST(ElfImage, ExecutableCarriesProgram) {
  vm::ProgramBuilder b("t");
  b.halt();
  auto img = kernel::ElfImage::makeExecutable("exe", std::move(b).build(),
                                              2 << 20, 3 << 20);
  EXPECT_EQ(img->textBytes(), 2u << 20);
  EXPECT_EQ(img->dataBytes(), 3u << 20);
  EXPECT_FALSE(img->isPic());
  EXPECT_EQ(img->program().size(), 1u);
  // Materialized contents are capped but nonempty.
  EXPECT_FALSE(img->textContents().empty());
  EXPECT_LE(img->textContents().size(), 64u << 10);
}

// ---------------- user-memory plumbing ----------------

TEST(KernelBase, CopyAcrossRegionAndPageBoundaries) {
  std::unique_ptr<rt::Cluster> cluster;
  vm::ProgramBuilder b("t");
  b.compute(100);
  emitExit(b);
  auto r = runProgram({}, std::move(b).build(), &cluster);
  ASSERT_TRUE(r.completed);
  kernel::KernelBase& k = cluster->kernelOn(0);
  kernel::Process* p = cluster->processOfRank(0);

  // A buffer straddling many 4KB boundaries round-trips intact.
  std::vector<std::byte> out(40'000);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::byte>(i * 7);
  }
  const hw::VAddr va = p->heapBase + 4093;  // unaligned start
  ASSERT_TRUE(k.copyToUser(*p, va, out));
  std::vector<std::byte> back(out.size());
  ASSERT_TRUE(k.copyFromUser(*p, va, back));
  EXPECT_EQ(out, back);
}

TEST(KernelBase, CopyToUnmappedAddressFails) {
  std::unique_ptr<rt::Cluster> cluster;
  vm::ProgramBuilder b("t");
  emitExit(b);
  auto r = runProgram({}, std::move(b).build(), &cluster);
  kernel::KernelBase& k = cluster->kernelOn(0);
  kernel::Process* p = cluster->processOfRank(0);
  std::byte x{1};
  EXPECT_FALSE(k.copyToUser(*p, 0x7F00'0000, std::span(&x, 1)));
  EXPECT_FALSE(k.copyFromUser(*p, 0x7F00'0000, std::span(&x, 1)));
}

TEST(KernelBase, ReadUserStringStopsAtNulAndLimit) {
  std::unique_ptr<rt::Cluster> cluster;
  vm::ProgramBuilder b("t");
  emitExit(b);
  auto r = runProgram({}, std::move(b).build(), &cluster);
  kernel::KernelBase& k = cluster->kernelOn(0);
  kernel::Process* p = cluster->processOfRank(0);
  const char s[] = "hello";
  ASSERT_TRUE(k.copyToUser(*p, p->heapBase,
                           std::as_bytes(std::span(s, sizeof s))));
  auto got = k.readUserString(*p, p->heapBase);
  ASSERT_TRUE(got);
  EXPECT_EQ(*got, "hello");
  // No NUL within the limit -> nullopt.
  std::vector<std::byte> noNul(64, std::byte{'x'});
  k.copyToUser(*p, p->heapBase + 256, noNul);
  EXPECT_FALSE(k.readUserString(*p, p->heapBase + 256, 32).has_value());
}

// ---------------- signals ----------------

TEST(Signals, NestedHandlersUnwindInOrder) {
  // USR1's handler raises USR2 against itself; both frames unwind back
  // to the main flow.
  vm::ProgramBuilder b("t");
  const std::size_t setup1 = b.size();
  b.li(1, static_cast<std::int64_t>(kernel::kSigUsr1));
  b.li(2, -1);
  b.syscall(sys(kernel::Sys::kRtSigaction));
  const std::size_t setup2 = b.size();
  b.li(1, static_cast<std::int64_t>(kernel::kSigUsr2));
  b.li(2, -1);
  b.syscall(sys(kernel::Sys::kRtSigaction));
  // raise(USR1)
  b.syscall(sys(kernel::Sys::kGettid));
  b.mov(2, 0);
  b.li(1, 0);
  b.li(3, static_cast<std::int64_t>(kernel::kSigUsr1));
  b.syscall(sys(kernel::Sys::kTgkill));
  b.li(20, 99);
  b.sample(20);  // resumed main flow
  emitExit(b);
  // handler for USR1: sample(1), raise USR2, sample(2) after return.
  const auto h1 = b.label();
  b.li(20, 1);
  b.sample(20);
  b.syscall(sys(kernel::Sys::kGettid));
  b.mov(2, 0);
  b.li(1, 0);
  b.li(3, static_cast<std::int64_t>(kernel::kSigUsr2));
  b.syscall(sys(kernel::Sys::kTgkill));
  b.li(20, 2);
  b.sample(20);
  b.syscall(sys(kernel::Sys::kRtSigreturn));
  // handler for USR2.
  const auto h2 = b.label();
  b.li(20, 3);
  b.sample(20);
  b.syscall(sys(kernel::Sys::kRtSigreturn));
  b.patchTarget(setup1 + 1, h1);
  b.patchTarget(setup2 + 1, h2);
  auto r = runProgram({}, std::move(b).build());
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.samples, (std::vector<std::uint64_t>{1, 3, 2, 99}));
}

TEST(Signals, SigreturnWithoutFrameKills) {
  vm::ProgramBuilder b("t");
  b.syscall(sys(kernel::Sys::kRtSigreturn));
  b.sample(1);
  emitExit(b);
  std::unique_ptr<rt::Cluster> cluster;
  auto r = runProgram({}, std::move(b).build(), &cluster);
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(r.samples.empty());
  EXPECT_EQ(cluster->kernelOn(0).threadsKilled(), 1u);
}

// ---------------- RAS log ----------------

TEST(Ras, LogRecordsMachineCheckAndKills) {
  vm::ProgramBuilder b("t");
  b.syscall(sys(kernel::Sys::kRasEvent));  // no handler -> fatal
  emitExit(b);
  std::unique_ptr<rt::Cluster> cluster;
  auto r = runProgram({}, std::move(b).build(), &cluster);
  ASSERT_TRUE(r.completed);
  const auto& log = cluster->kernelOn(0).rasLog();
  ASSERT_GE(log.size(), 2u);
  // The job-load marker comes first; the machine check follows it.
  EXPECT_EQ(log[0].code, kernel::RasEvent::Code::kJobLoaded);
  bool sawMc = false;
  bool sawKill = false;
  for (const auto& e : log) {
    if (e.code == kernel::RasEvent::Code::kMachineCheck) {
      sawMc = true;
      EXPECT_EQ(e.severity, kernel::RasEvent::Severity::kWarn);
    }
    if (e.code == kernel::RasEvent::Code::kThreadKilled) sawKill = true;
  }
  EXPECT_TRUE(sawMc);
  EXPECT_TRUE(sawKill);
}

TEST(Ras, SegvLogsFaultingAddress) {
  vm::ProgramBuilder b("t");
  b.li(16, 0x7ABC0000);
  b.li(17, 1);
  b.store(16, 17, 0);
  emitExit(b);
  std::unique_ptr<rt::Cluster> cluster;
  auto r = runProgram({}, std::move(b).build(), &cluster);
  ASSERT_TRUE(r.completed);
  const auto& log = cluster->kernelOn(0).rasLog();
  ASSERT_FALSE(log.empty());
  const auto segv =
      std::find_if(log.begin(), log.end(), [](const kernel::RasEvent& e) {
        return e.code == kernel::RasEvent::Code::kSegv;
      });
  ASSERT_NE(segv, log.end());
  EXPECT_EQ(segv->detail, 0x7ABC0000u);
  EXPECT_EQ(segv->severity, kernel::RasEvent::Severity::kError);
}

// ---------------- MPI bcast ----------------

TEST(Bcast, RootValueReachesEveryRank) {
  rt::ClusterConfig cfg;
  cfg.computeNodes = 4;
  rt::Cluster cluster(cfg);
  ASSERT_TRUE(cluster.bootAll());
  vm::ProgramBuilder b("t");
  b.mov(16, 10);
  // Root (rank 1) seeds its buffer; everyone else zeros theirs.
  b.li(17, 0);
  b.store(16, 17, 0);
  b.li(18, 1);
  b.sub(18, 1, 18);
  const std::size_t notRoot = b.emitForwardBranch(vm::Op::kBnez, 18);
  b.li(17, 0x3FF0000000000000);  // double 1.0 bit pattern
  b.store(16, 17, 0);
  b.patchHere(notRoot);
  b.li(1, 1);   // root rank
  b.mov(2, 16);
  b.li(3, 1);
  b.rtcall(rtc(rt::Rt::kMpiBcast));
  b.load(19, 16, 0);
  b.sample(19);
  emitExit(b);
  kernel::JobSpec job;
  job.exe = kernel::ElfImage::makeExecutable("t", std::move(b).build());
  std::vector<std::vector<std::uint64_t>> s(4);
  for (int i = 0; i < 4; ++i) cluster.attachSamples(i, 0, &s[i]);
  ASSERT_TRUE(cluster.loadJob(job));
  ASSERT_TRUE(cluster.run());
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(s[i].size(), 1u) << "rank " << i;
    EXPECT_EQ(s[i][0], 0x3FF0000000000000u) << "rank " << i;
  }
}

// ---------------- process bookkeeping ----------------

TEST(Process, RegionLookupAndStaticResolve) {
  kernel::Process p(1, nullptr);
  kernel::MemRegionDesc r;
  r.name = "text";
  r.vbase = 0x1000000;
  r.pbase = 0x2000000;
  r.size = 0x100000;
  r.perms = hw::kPermRX;
  p.regions.push_back(r);
  EXPECT_EQ(p.regionFor(0x1000000), &p.regions[0]);
  EXPECT_EQ(p.regionFor(0x10FFFFF), &p.regions[0]);
  EXPECT_EQ(p.regionFor(0x1100000), nullptr);
  EXPECT_EQ(p.resolveStatic(0x1000040), 0x2000040u);
  EXPECT_FALSE(p.resolveStatic(0).has_value());
  EXPECT_EQ(p.regionNamed("text"), &p.regions[0]);
  EXPECT_EQ(p.regionNamed("nope"), nullptr);
}

TEST(Process, ThreadLifecycleCounts) {
  kernel::Process p(1, nullptr);
  kernel::Thread& a = p.addThread(10);
  kernel::Thread& t2 = p.addThread(11);
  EXPECT_TRUE(a.isMain());
  EXPECT_FALSE(t2.isMain());
  EXPECT_EQ(p.liveThreads(), 2u);
  t2.ctx.state = hw::ThreadState::kHalted;
  EXPECT_EQ(p.liveThreads(), 1u);
  EXPECT_EQ(p.threadByTid(11), &t2);
  EXPECT_EQ(p.threadByTid(99), nullptr);
}

TEST(Futex, TableFifoAndRemove) {
  kernel::FutexTable ft;
  kernel::Process p(1, nullptr);
  kernel::Thread& a = p.addThread(1);
  kernel::Thread& t2 = p.addThread(2);
  kernel::Thread& c = p.addThread(3);
  ft.enqueue(1, 0x100, &a);
  ft.enqueue(1, 0x100, &t2);
  ft.enqueue(1, 0x200, &c);
  EXPECT_EQ(ft.waiterCount(1, 0x100), 2u);
  EXPECT_EQ(ft.totalWaiters(), 3u);
  ft.remove(&t2);
  auto woken = ft.dequeue(1, 0x100, 10);
  ASSERT_EQ(woken.size(), 1u);
  EXPECT_EQ(woken[0], &a);
  // Different pid does not alias.
  EXPECT_EQ(ft.waiterCount(2, 0x200), 0u);
  EXPECT_EQ(ft.waiterCount(1, 0x200), 1u);
}

}  // namespace
}  // namespace bg

// Ordering and cancellation semantics of the two-tier event engine
// (calendar ring + far-future heap). The engine's total order by
// (time, scheduling sequence) is the foundation of every determinism
// witness in the repo, so these tests pin the behaviours a scheduler
// rewrite could silently change: FIFO among same-cycle events even
// when they arrive via different tiers, cancellation during dispatch,
// scheduling from a handler into the bucket being drained, and the
// schedule hash of a small boot+jobstream run (golden value).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/app.hpp"
#include "sim/engine.hpp"
#include "sim/hash.hpp"
#include "sim/rng.hpp"
#include "svc/failover.hpp"
#include "vm/builder.hpp"

namespace bg {
namespace {

// --- Same-cycle FIFO across tiers ---------------------------------------

TEST(EngineOrder, SameCycleFifoAcrossTiers) {
  sim::Engine e;
  std::vector<std::string> order;
  // Cycle 1000 is far future at schedule time: these two go to the
  // heap tier, in this order.
  e.scheduleAt(1000, [&] { order.push_back("heap1"); });
  e.scheduleAt(1000, [&] { order.push_back("heap2"); });
  // This handler runs at 998, when 1000 is inside the near-future
  // ring window: its event lands in the ring tier.
  e.scheduleAt(998, [&] {
    e.scheduleAt(1000, [&] { order.push_back("ring1"); });
  });
  e.run();
  EXPECT_EQ(e.now(), 1000u);
  // FIFO by scheduling order within the cycle, regardless of tier.
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "heap1");
  EXPECT_EQ(order[1], "heap2");
  EXPECT_EQ(order[2], "ring1");
}

TEST(EngineOrder, HeapEventsMigrateInTimeOrder) {
  sim::Engine e;
  std::vector<int> order;
  // All far future, scheduled out of time order.
  e.scheduleAt(5000, [&] { order.push_back(3); });
  e.scheduleAt(3000, [&] { order.push_back(1); });
  e.scheduleAt(3001, [&] { order.push_back(2); });
  e.scheduleAt(9000, [&] { order.push_back(4); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(e.now(), 9000u);
}

// --- Cancellation -------------------------------------------------------

TEST(EngineCancel, CancelDuringDispatchOfSameCycle) {
  sim::Engine e;
  bool secondRan = false;
  sim::EventId second = 0;
  e.schedule(10, [&] { e.cancel(second); });
  second = e.schedule(10, [&] { secondRan = true; });
  e.run();
  EXPECT_FALSE(secondRan);
  EXPECT_EQ(e.pendingEvents(), 0u);
  EXPECT_EQ(e.eventsProcessed(), 1u);
}

TEST(EngineCancel, StaleAndBogusHandlesAreNoOps) {
  sim::Engine e;
  int fired = 0;
  const sim::EventId id = e.schedule(5, [&] { ++fired; });
  ASSERT_TRUE(e.step());
  EXPECT_EQ(fired, 1);
  // Cancelling an already-fired handle must not disturb the count.
  e.cancel(id);
  e.cancel(0);
  e.cancel(0xdeadbeefdeadbeefULL);
  EXPECT_EQ(e.pendingEvents(), 0u);

  // Double-cancel of a live handle decrements exactly once.
  const sim::EventId a = e.schedule(5, [] {});
  e.schedule(6, [] {});
  EXPECT_EQ(e.pendingEvents(), 2u);
  e.cancel(a);
  e.cancel(a);
  EXPECT_EQ(e.pendingEvents(), 1u);
  e.run();
  EXPECT_EQ(e.pendingEvents(), 0u);
}

TEST(EngineCancel, FarFutureChurnLeavesNoResidue) {
  // The decrementer re-arm pattern that leaked tombstones in the old
  // engine: schedule far future, cancel immediately, thousands of
  // times. The pending count must stay exact and the queue must drain
  // without dispatching any cancelled event.
  sim::Engine e;
  for (int i = 0; i < 10'000; ++i) {
    e.cancel(e.schedule(1'000'000 + i, [] { FAIL() << "cancelled fired"; }));
  }
  EXPECT_EQ(e.pendingEvents(), 0u);
  bool ran = false;
  e.schedule(2'000'000, [&] { ran = true; });
  EXPECT_EQ(e.pendingEvents(), 1u);
  e.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(e.eventsProcessed(), 1u);
}

// --- Scheduling from handlers -------------------------------------------

TEST(EngineReentry, ScheduleIntoCurrentBucketFromHandler) {
  sim::Engine e;
  std::vector<int> order;
  e.schedule(100, [&] {
    order.push_back(1);
    // Delay 0: same cycle, must fire after the handlers already queued
    // for this cycle (it has the newest sequence number).
    e.schedule(0, [&] { order.push_back(3); });
  });
  e.schedule(100, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 100u);
}

TEST(EngineReentry, RunUntilThenScheduleNear) {
  // Regression guard for window handling: advancing the clock past the
  // ring window without dispatching (empty runUntil) must not corrupt
  // bucket indexing for later near-future events.
  sim::Engine e;
  e.runUntil(100'000);
  EXPECT_EQ(e.now(), 100'000u);
  std::vector<int> order;
  e.schedule(3, [&] { order.push_back(1); });
  e.schedule(300, [&] { order.push_back(2); });  // beyond one window
  e.schedule(3, [&] {
    order.push_back(-1);
    e.schedule(1, [&] { order.push_back(-2); });
  });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, -1, -2, 2}));
  EXPECT_EQ(e.now(), 100'300u);
}

// --- Pre-registered tasks ------------------------------------------------

struct RecordingTask final : sim::Task {
  RecordingTask(std::vector<int>* o, int t) : order(o), tag(t) {}
  void run() override { order->push_back(tag); }
  std::vector<int>* order;
  int tag;
};

TEST(EngineTask, TasksInterleaveWithClosuresInFifoOrder) {
  sim::Engine e;
  std::vector<int> order;
  RecordingTask t1(&order, 10);
  RecordingTask t2(&order, 20);
  e.scheduleTask(50, &t1);
  e.schedule(50, [&] { order.push_back(15); });
  e.scheduleTask(50, &t2);
  e.run();
  EXPECT_EQ(order, (std::vector<int>{10, 15, 20}));
}

TEST(EngineTask, CancelledTaskDoesNotRun) {
  sim::Engine e;
  std::vector<int> order;
  RecordingTask t(&order, 1);
  const sim::EventId id = e.scheduleTask(50, &t);
  e.cancel(id);
  e.scheduleTask(60, &t);
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(e.eventsProcessed(), 1u);
}

// --- Deterministic replay under random load ------------------------------

TEST(EngineDeterminism, SeededStormReplaysExactly) {
  // Mixed ring/heap traffic with cancellations, driven by the repo's
  // deterministic RNG; the (time, tag) firing sequence must replay
  // bit-exactly across two independent engines.
  auto runStorm = [] {
    sim::Engine e;
    sim::Rng rng(7, "engine-storm");
    sim::Fnv1a h;
    std::vector<sim::EventId> ids;
    for (int i = 0; i < 2'000; ++i) {
      const sim::Cycle d = rng.nextBelow(600);  // spans both tiers
      ids.push_back(e.schedule(d, [&h, i, &e] {
        h.mix(e.now()).mix(static_cast<std::uint64_t>(i));
      }));
    }
    for (std::size_t i = 0; i < ids.size(); i += 3) e.cancel(ids[i]);
    e.run();
    h.mix(e.eventsProcessed());
    return h.digest();
  };
  const std::uint64_t a = runStorm();
  const std::uint64_t b = runStorm();
  EXPECT_EQ(a, b);
  EXPECT_NE(a, 0u);
}

// --- Golden schedule hash: small boot + jobstream -------------------------

std::shared_ptr<kernel::ElfImage> jobImage(int id, std::uint64_t reps) {
  vm::ProgramBuilder b("job" + std::to_string(id));
  const auto top = b.loopBegin(16, static_cast<std::int64_t>(reps));
  b.compute(9'000);
  b.loopEnd(16, top);
  b.halt(0);
  return kernel::ElfImage::makeExecutable("job" + std::to_string(id),
                                          std::move(b).build());
}

TEST(EngineGolden, BootJobstreamScheduleHashPinned) {
  // End-to-end pin: a 4-node machine (one FWK node, so decrementer
  // re-arm traffic is in the mix) drains a seeded 10-job stream; the
  // service-node schedule hash must not move. Any change to event
  // ordering — engine internals, core slice scheduling, decrementer
  // handling — shows up here before it shows up in the big benches.
  rt::ClusterConfig cfg;
  cfg.computeNodes = 4;
  cfg.seed = 42;
  cfg.nodeKernels.assign(4, rt::KernelKind::kCnk);
  cfg.nodeKernels[3] = rt::KernelKind::kFwk;
  rt::Cluster cluster(cfg);
  svc::ServiceHost host(cluster, svc::ServiceNodeConfig{});

  sim::Rng rng(cfg.seed, "golden-jobstream");
  const int jobs = 10;
  int submitted = 0;
  sim::Cycle arrival = 0;
  for (int i = 0; i < jobs; ++i) {
    const bool fwk = rng.nextBelow(4) == 0;
    svc::JobDesc jd;
    jd.name = "job" + std::to_string(i);
    jd.kernel = fwk ? rt::KernelKind::kFwk : rt::KernelKind::kCnk;
    jd.nodes = fwk ? 1 : 1 + static_cast<int>(rng.nextBelow(2));
    const std::uint64_t reps = 6 + rng.nextBelow(12);
    jd.exe = jobImage(i, reps);
    jd.estCycles = reps * 9'000 + 120'000;
    arrival += rng.nextBelow(50'000);
    cluster.engine().scheduleAt(arrival, [&host, jd, &submitted] {
      host.submit(jd);
      ++submitted;
    });
  }
  host.start();
  ASSERT_TRUE(cluster.engine().runWhile(
      [&] { return submitted == jobs && host.drained(); },
      500'000'000ULL));
  EXPECT_EQ(host.metrics().jobsCompleted, static_cast<std::uint64_t>(jobs));
  // Golden value; re-pin only with an explanation of why the event
  // order legitimately changed.
  EXPECT_EQ(host.metrics().scheduleHash, 0x32a1794764d04244ULL);
}

}  // namespace
}  // namespace bg

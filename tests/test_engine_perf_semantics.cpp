// Ordering and cancellation semantics of the two-tier event engine
// (calendar ring + far-future heap). The engine's total order by
// (time, scheduling sequence) is the foundation of every determinism
// witness in the repo, so these tests pin the behaviours a scheduler
// rewrite could silently change: FIFO among same-cycle events even
// when they arrive via different tiers, cancellation during dispatch,
// scheduling from a handler into the bucket being drained, and the
// schedule hash of a small boot+jobstream run (golden value).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "runtime/app.hpp"
#include "sim/engine.hpp"
#include "sim/hash.hpp"
#include "sim/rng.hpp"
#include "svc/failover.hpp"
#include "vm/builder.hpp"

namespace bg {
namespace {

// --- Same-cycle FIFO across tiers ---------------------------------------

TEST(EngineOrder, SameCycleFifoAcrossTiers) {
  sim::Engine e;
  std::vector<std::string> order;
  // Cycle 1000 is far future at schedule time: these two go to the
  // heap tier, in this order.
  e.scheduleAt(1000, [&] { order.push_back("heap1"); });
  e.scheduleAt(1000, [&] { order.push_back("heap2"); });
  // This handler runs at 998, when 1000 is inside the near-future
  // ring window: its event lands in the ring tier.
  e.scheduleAt(998, [&] {
    e.scheduleAt(1000, [&] { order.push_back("ring1"); });
  });
  e.run();
  EXPECT_EQ(e.now(), 1000u);
  // FIFO by scheduling order within the cycle, regardless of tier.
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "heap1");
  EXPECT_EQ(order[1], "heap2");
  EXPECT_EQ(order[2], "ring1");
}

TEST(EngineOrder, HeapEventsMigrateInTimeOrder) {
  sim::Engine e;
  std::vector<int> order;
  // All far future, scheduled out of time order.
  e.scheduleAt(5000, [&] { order.push_back(3); });
  e.scheduleAt(3000, [&] { order.push_back(1); });
  e.scheduleAt(3001, [&] { order.push_back(2); });
  e.scheduleAt(9000, [&] { order.push_back(4); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(e.now(), 9000u);
}

// --- Cancellation -------------------------------------------------------

TEST(EngineCancel, CancelDuringDispatchOfSameCycle) {
  sim::Engine e;
  bool secondRan = false;
  sim::EventId second = 0;
  e.schedule(10, [&] { e.cancel(second); });
  second = e.schedule(10, [&] { secondRan = true; });
  e.run();
  EXPECT_FALSE(secondRan);
  EXPECT_EQ(e.pendingEvents(), 0u);
  EXPECT_EQ(e.eventsProcessed(), 1u);
}

TEST(EngineCancel, StaleAndBogusHandlesAreNoOps) {
  sim::Engine e;
  int fired = 0;
  const sim::EventId id = e.schedule(5, [&] { ++fired; });
  ASSERT_TRUE(e.step());
  EXPECT_EQ(fired, 1);
  // Cancelling an already-fired handle must not disturb the count.
  e.cancel(id);
  e.cancel(0);
  e.cancel(0xdeadbeefdeadbeefULL);
  EXPECT_EQ(e.pendingEvents(), 0u);

  // Double-cancel of a live handle decrements exactly once.
  const sim::EventId a = e.schedule(5, [] {});
  e.schedule(6, [] {});
  EXPECT_EQ(e.pendingEvents(), 2u);
  e.cancel(a);
  e.cancel(a);
  EXPECT_EQ(e.pendingEvents(), 1u);
  e.run();
  EXPECT_EQ(e.pendingEvents(), 0u);
}

TEST(EngineCancel, FarFutureChurnLeavesNoResidue) {
  // The decrementer re-arm pattern that leaked tombstones in the old
  // engine: schedule far future, cancel immediately, thousands of
  // times. The pending count must stay exact and the queue must drain
  // without dispatching any cancelled event.
  sim::Engine e;
  for (int i = 0; i < 10'000; ++i) {
    e.cancel(e.schedule(1'000'000 + i, [] { FAIL() << "cancelled fired"; }));
  }
  EXPECT_EQ(e.pendingEvents(), 0u);
  bool ran = false;
  e.schedule(2'000'000, [&] { ran = true; });
  EXPECT_EQ(e.pendingEvents(), 1u);
  e.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(e.eventsProcessed(), 1u);
}

// --- Scheduling from handlers -------------------------------------------

TEST(EngineReentry, ScheduleIntoCurrentBucketFromHandler) {
  sim::Engine e;
  std::vector<int> order;
  e.schedule(100, [&] {
    order.push_back(1);
    // Delay 0: same cycle, must fire after the handlers already queued
    // for this cycle (it has the newest sequence number).
    e.schedule(0, [&] { order.push_back(3); });
  });
  e.schedule(100, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 100u);
}

TEST(EngineReentry, RunUntilThenScheduleNear) {
  // Regression guard for window handling: advancing the clock past the
  // ring window without dispatching (empty runUntil) must not corrupt
  // bucket indexing for later near-future events.
  sim::Engine e;
  e.runUntil(100'000);
  EXPECT_EQ(e.now(), 100'000u);
  std::vector<int> order;
  e.schedule(3, [&] { order.push_back(1); });
  e.schedule(300, [&] { order.push_back(2); });  // beyond one window
  e.schedule(3, [&] {
    order.push_back(-1);
    e.schedule(1, [&] { order.push_back(-2); });
  });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, -1, -2, 2}));
  EXPECT_EQ(e.now(), 100'300u);
}

// --- Pre-registered tasks ------------------------------------------------

struct RecordingTask final : sim::Task {
  RecordingTask(std::vector<int>* o, int t) : order(o), tag(t) {}
  void run() override { order->push_back(tag); }
  std::vector<int>* order;
  int tag;
};

TEST(EngineTask, TasksInterleaveWithClosuresInFifoOrder) {
  sim::Engine e;
  std::vector<int> order;
  RecordingTask t1(&order, 10);
  RecordingTask t2(&order, 20);
  e.scheduleTask(50, &t1);
  e.schedule(50, [&] { order.push_back(15); });
  e.scheduleTask(50, &t2);
  e.run();
  EXPECT_EQ(order, (std::vector<int>{10, 15, 20}));
}

TEST(EngineTask, CancelledTaskDoesNotRun) {
  sim::Engine e;
  std::vector<int> order;
  RecordingTask t(&order, 1);
  const sim::EventId id = e.scheduleTask(50, &t);
  e.cancel(id);
  e.scheduleTask(60, &t);
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(e.eventsProcessed(), 1u);
}

// --- Deterministic replay under random load ------------------------------

TEST(EngineDeterminism, SeededStormReplaysExactly) {
  // Mixed ring/heap traffic with cancellations, driven by the repo's
  // deterministic RNG; the (time, tag) firing sequence must replay
  // bit-exactly across two independent engines.
  auto runStorm = [] {
    sim::Engine e;
    sim::Rng rng(7, "engine-storm");
    sim::Fnv1a h;
    std::vector<sim::EventId> ids;
    for (int i = 0; i < 2'000; ++i) {
      const sim::Cycle d = rng.nextBelow(600);  // spans both tiers
      ids.push_back(e.schedule(d, [&h, i, &e] {
        h.mix(e.now()).mix(static_cast<std::uint64_t>(i));
      }));
    }
    for (std::size_t i = 0; i < ids.size(); i += 3) e.cancel(ids[i]);
    e.run();
    h.mix(e.eventsProcessed());
    return h.digest();
  };
  const std::uint64_t a = runStorm();
  const std::uint64_t b = runStorm();
  EXPECT_EQ(a, b);
  EXPECT_NE(a, 0u);
}

// --- Golden schedule hash: small boot + jobstream -------------------------

std::shared_ptr<kernel::ElfImage> jobImage(int id, std::uint64_t reps) {
  vm::ProgramBuilder b("job" + std::to_string(id));
  const auto top = b.loopBegin(16, static_cast<std::int64_t>(reps));
  b.compute(9'000);
  b.loopEnd(16, top);
  b.halt(0);
  return kernel::ElfImage::makeExecutable("job" + std::to_string(id),
                                          std::move(b).build());
}

// Runs the golden 4-node boot+jobstream scenario with the given host
// lane thread count (1 = the exact plain serial engine) and returns
// the service-node schedule hash.
std::uint64_t goldenJobstreamHash(int hostLanes) {
  rt::ClusterConfig cfg;
  cfg.computeNodes = 4;
  cfg.seed = 42;
  cfg.nodeKernels.assign(4, rt::KernelKind::kCnk);
  cfg.nodeKernels[3] = rt::KernelKind::kFwk;
  cfg.hostLanes = hostLanes;
  rt::Cluster cluster(cfg);
  svc::ServiceHost host(cluster, svc::ServiceNodeConfig{});

  sim::Rng rng(cfg.seed, "golden-jobstream");
  const int jobs = 10;
  int submitted = 0;
  sim::Cycle arrival = 0;
  for (int i = 0; i < jobs; ++i) {
    const bool fwk = rng.nextBelow(4) == 0;
    svc::JobDesc jd;
    jd.name = "job" + std::to_string(i);
    jd.kernel = fwk ? rt::KernelKind::kFwk : rt::KernelKind::kCnk;
    jd.nodes = fwk ? 1 : 1 + static_cast<int>(rng.nextBelow(2));
    const std::uint64_t reps = 6 + rng.nextBelow(12);
    jd.exe = jobImage(i, reps);
    jd.estCycles = reps * 9'000 + 120'000;
    arrival += rng.nextBelow(50'000);
    cluster.engine().scheduleAt(arrival, [&host, jd, &submitted] {
      host.submit(jd);
      ++submitted;
    });
  }
  host.start();
  EXPECT_TRUE(cluster.engine().runWhile(
      [&] { return submitted == jobs && host.drained(); },
      500'000'000ULL));
  EXPECT_EQ(host.metrics().jobsCompleted, static_cast<std::uint64_t>(jobs));
  EXPECT_EQ(cluster.engine().laneStats().causalityViolations, 0u);
  return host.metrics().scheduleHash;
}

TEST(EngineGolden, BootJobstreamScheduleHashPinned) {
  // End-to-end pin: a 4-node machine (one FWK node, so decrementer
  // re-arm traffic is in the mix) drains a seeded 10-job stream; the
  // service-node schedule hash must not move. Any change to event
  // ordering — engine internals, core slice scheduling, decrementer
  // handling — shows up here before it shows up in the big benches.
  // Golden value; re-pin only with an explanation of why the event
  // order legitimately changed.
  EXPECT_EQ(goldenJobstreamHash(1), 0x32a1794764d04244ULL);
}

// --- Parallel per-node event lanes ----------------------------------------

TEST(EngineLanes, CanonicalMergeOrderAcrossLanesPinned) {
  // threads=1 runs the windowed driver with the canonical serial
  // merge, pinning the merge order itself: the serial lane (0) wins
  // exact (time, birth) key ties, then lanes in ascending order, FIFO
  // within a lane. (With threads>1 handlers on different lanes run
  // concurrently inside a window, so only per-lane state may be
  // touched there — this test's shared vector is valid only because
  // threads=1.)
  sim::Engine e;
  e.configureLanes(3, 1, 1'000);
  std::vector<std::string> order;
  // All scheduled from the serial context at cycle 0 → birth key 0.
  e.scheduleAtOnLane(2, 100, [&] { order.push_back("lane2"); });
  e.scheduleAtOnLane(1, 100, [&] { order.push_back("lane1a"); });
  e.scheduleAtOnLane(3, 100, [&] { order.push_back("lane3"); });
  e.scheduleAtOnLane(1, 100, [&] { order.push_back("lane1b"); });
  e.scheduleAtOnLane(0, 100, [&] { order.push_back("serial"); });
  e.run();
  EXPECT_EQ(order, (std::vector<std::string>{"serial", "lane1a", "lane1b",
                                             "lane2", "lane3"}));
}

TEST(EngineLanes, BirthKeyReproducesInsertionOrderTies) {
  // The plain engine breaks same-cycle ties by insertion order. Lane
  // mode reproduces that with the birth key: an event scheduled at
  // cycle 0 (birth 0) fires before one scheduled at cycle 100 (birth
  // 100) even when the earlier-born event lives on a HIGHER lane.
  // step() is the canonical single-event driver, so the observed
  // sequence is the exact merged order.
  sim::Engine e;
  e.configureLanes(2, 1, 1'000);
  std::vector<int> order;
  e.scheduleAtOnLane(2, 200, [&] { order.push_back(1); });  // birth 0
  e.scheduleAtOnLane(1, 100, [&] {
    // Scheduled while dispatching the cycle-100 event → birth 100.
    e.scheduleAtOnLane(1, 200, [&] { order.push_back(2); });
  });
  while (e.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EngineLanes, CancellationRoutesAcrossLanes) {
  // EventIds carry the owning lane in their top bits; cancel() must
  // route to that lane's queue from the serial context, stay exact on
  // double-cancel, and reject bogus lane tags.
  sim::Engine e;
  e.configureLanes(2, 1, 1'000);
  bool cancelled = false;
  bool kept = false;
  const sim::EventId a = e.scheduleAtOnLane(2, 500, [&] { cancelled = true; });
  e.scheduleAtOnLane(1, 100, [&] { kept = true; });
  EXPECT_EQ(e.pendingEvents(), 2u);
  e.cancel(a);
  EXPECT_EQ(e.pendingEvents(), 1u);
  e.cancel(a);  // stale handle: no-op
  e.cancel(0xFF00000000000001ULL);  // bogus lane tag: no-op
  EXPECT_EQ(e.pendingEvents(), 1u);
  e.run();
  EXPECT_TRUE(kept);
  EXPECT_FALSE(cancelled);
  EXPECT_EQ(e.eventsProcessed(), 1u);
}

TEST(EngineLanes, GoldenHashInvariantAcrossLaneCounts) {
  // The acceptance gate for the lane engine: the golden 4-node
  // schedule hash must be bit-identical at --lanes 1 (plain serial
  // engine), 2, and the host core count. Any divergence means the
  // (time, birth, lane, seq) merge no longer reproduces the serial
  // schedule.
  std::vector<int> laneCounts{1, 2};
  const int hw =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  if (hw != 1 && hw != 2) laneCounts.push_back(hw);
  std::vector<std::uint64_t> hashes;
  for (const int lanes : laneCounts) {
    hashes.push_back(goldenJobstreamHash(lanes));
  }
  for (std::size_t i = 0; i < hashes.size(); ++i) {
    EXPECT_EQ(hashes[i], 0x32a1794764d04244ULL)
        << "schedule hash diverged at hostLanes=" << laneCounts[i];
  }
}

TEST(EngineLanes, ZeroFaultJobstreamHashInvariantAcrossLaneCounts) {
  // Same sweep over the repo-wide zero-fault witness: the 120-job
  // 8-node stream with a fatal RAS node loss (bench_jobstream's
  // default scenario, hash pinned since PR 5). Exercises boot, fship
  // I/O, collective/barrier traffic, and the svc control plane under
  // lane execution.
  auto runStream = [](int hostLanes) {
    rt::ClusterConfig cfg;
    cfg.computeNodes = 8;
    cfg.seed = 42;
    cfg.nodeKernels.assign(8, rt::KernelKind::kCnk);
    cfg.nodeKernels[6] = rt::KernelKind::kFwk;
    cfg.nodeKernels[7] = rt::KernelKind::kFwk;
    cfg.hostLanes = hostLanes;
    rt::Cluster cluster(cfg);
    svc::ServiceNodeConfig scfg;
    scfg.policy = svc::SchedPolicyKind::kBackfill;
    svc::ServiceHost host(cluster, scfg);

    sim::Rng rng(cfg.seed, "jobstream");
    const int jobs = 120;
    int submitted = 0;
    sim::Cycle arrival = 0;
    for (int i = 0; i < jobs; ++i) {
      const bool fwk = rng.nextBelow(4) == 0;
      const int width = fwk ? 1 : 1 + static_cast<int>(rng.nextBelow(3));
      const std::uint64_t reps = 8 + rng.nextBelow(25);
      svc::JobDesc jd;
      jd.name = "job" + std::to_string(i);
      jd.kernel = fwk ? rt::KernelKind::kFwk : rt::KernelKind::kCnk;
      jd.nodes = width;
      vm::ProgramBuilder b("job" + std::to_string(i));
      const auto top = b.loopBegin(16, static_cast<std::int64_t>(reps));
      b.compute(12'000);
      b.loopEnd(16, top);
      b.halt(0);
      jd.exe = kernel::ElfImage::makeExecutable("job" + std::to_string(i),
                                                std::move(b).build());
      jd.estCycles = reps * 12'000 + 120'000;
      arrival += rng.nextBelow(60'000);
      cluster.engine().scheduleAt(arrival, [&host, jd, &submitted] {
        host.submit(jd);
        ++submitted;
      });
    }
    cluster.engine().scheduleAt(4'000'000, [&cluster, &host] {
      cluster.kernelOn(2).logRas(kernel::RasEvent::Code::kNodeFailure,
                                 kernel::RasEvent::Severity::kFatal, 0, 0,
                                 0xFA11);
      if (host.alive()) host.node().poke();
    });
    host.start();
    EXPECT_TRUE(cluster.engine().runWhile(
        [&] { return submitted == jobs && host.drained(); },
        2'000'000'000ULL));
    EXPECT_EQ(cluster.engine().laneStats().causalityViolations, 0u);
    return host.metrics().scheduleHash;
  };
  std::vector<int> laneCounts{1, 2};
  const int hw =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  if (hw != 1 && hw != 2) laneCounts.push_back(hw);
  for (const int lanes : laneCounts) {
    EXPECT_EQ(runStream(lanes), 0xcb73b2fc8c023c57ULL)
        << "zero-fault hash diverged at hostLanes=" << lanes;
  }
}

}  // namespace
}  // namespace bg

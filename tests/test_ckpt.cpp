// End-to-end application checkpoint/restart (the robustness tentpole):
//
//  - ckpt_save cuts a consistent image at the barrier, two-phase
//    commits it onto the I/O node, and wakes the app with a saved /
//    resumed flag in r0;
//  - a job reloaded in restore mode resumes right after the barrier
//    and produces the same final answer as an uninterrupted run (the
//    resume oracle), bit-identically across double runs;
//  - a CIOD crash mid-ship fails the attempt but leaves the previous
//    committed image byte-identical (two-phase commit), and restore
//    from it still works after the daemon reboots;
//  - the service node's checkpoint-then-preempt window: victims
//    checkpoint before the kill and their relaunch resumes mid-stream;
//    a blown deadline falls back to the plain kill-and-requeue path;
//  - an uncorrectable-ECC node loss requeues the victim and the retry
//    resumes from the newest committed sequence;
//  - CKPT_SLOW=1 unlocks a multi-seed fault sweep (CIOD crashes, UEs,
//    control-plane crashes against checkpointing streams) replayed
//    twice per seed and checked for bit-identical schedules.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "cluster_test_util.hpp"
#include "cnk/ckpt_image.hpp"
#include "fault_schedule.hpp"
#include "kernel/syscalls.hpp"
#include "sim/rng.hpp"
#include "svc/failover.hpp"

namespace bg {
namespace {

using test::emitExit;

std::int64_t sys(kernel::Sys s) { return static_cast<std::int64_t>(s); }

/// Two compute phases split by a ckpt_save. Samples prove what ran:
/// sample[0] = ckpt_save's return (0 = image saved, 1 = resumed from
/// one), sample[1] = the accumulator, whose final value requires both
/// phases to have executed exactly once.
vm::Program ckptApp(std::int64_t reps1, std::int64_t reps2) {
  vm::ProgramBuilder b("ckpt-app");
  b.li(20, 0);
  const auto top1 = b.loopBegin(21, reps1);
  b.compute(2'000);
  b.addi(20, 20, 7);
  b.loopEnd(21, top1);
  b.syscall(sys(kernel::Sys::kCkptSave));
  b.sample(0);
  const auto top2 = b.loopBegin(21, reps2);
  b.compute(2'000);
  b.addi(20, 20, 3);
  b.loopEnd(21, top2);
  b.sample(20);
  emitExit(b);
  return std::move(b).build();
}

std::shared_ptr<kernel::ElfImage> workImage(const std::string& name,
                                            std::uint64_t reps,
                                            std::uint64_t cyclesPerRep) {
  vm::ProgramBuilder b(name);
  const auto top = b.loopBegin(16, static_cast<std::int64_t>(reps));
  b.compute(cyclesPerRep);
  b.loopEnd(16, top);
  b.halt(0);
  return kernel::ElfImage::makeExecutable(name, std::move(b).build());
}

std::uint64_t countRas(const kernel::KernelBase& k,
                       kernel::RasEvent::Code code) {
  std::uint64_t n = 0;
  for (const auto& e : k.rasLog()) {
    if (e.code == code) ++n;
  }
  return n;
}

// ---------------------------------------------------------------------
// Kernel engine: save, resume oracle, two-phase commit under faults
// ---------------------------------------------------------------------

TEST(Ckpt, AppCkptSaveCommitsImageAndReportsSaved) {
  std::unique_ptr<rt::Cluster> cluster;
  auto r = test::runProgram({}, ckptApp(10, 10), &cluster);
  ASSERT_TRUE(r.completed);
  cnk::CnkKernel* k = cluster->cnkOn(0);
  EXPECT_EQ(k->ckptCommits(), 1u);
  EXPECT_EQ(k->ckptSeqCommitted(), 1u);
  EXPECT_EQ(k->ckptFailures(), 0u);
  EXPECT_GT(k->lastCkptBytes(), 0u);
  ASSERT_EQ(r.samples.size(), 2u);
  EXPECT_EQ(r.samples[0], 0u) << "first run saves, it does not resume";
  EXPECT_EQ(r.samples[1], 10u * 7 + 10u * 3);
  // Two-phase commit landed: final image present, tmp renamed away.
  io::RamFs& fs = cluster->ioRootFs(0);
  EXPECT_TRUE(fs.exists(cnk::ckpt::imagePath(0, 0)));
  EXPECT_FALSE(fs.exists(cnk::ckpt::imageTmpPath(0, 0)));
  EXPECT_EQ(fs.fileContents(cnk::ckpt::imagePath(0, 0)).size(),
            k->lastCkptBytes());
  EXPECT_EQ(countRas(*k, kernel::RasEvent::Code::kCkptBegin), 1u);
  EXPECT_EQ(countRas(*k, kernel::RasEvent::Code::kCkptCommit), 1u);
  EXPECT_EQ(countRas(*k, kernel::RasEvent::Code::kCkptFailed), 0u);
}

TEST(Ckpt, RestoreResumesAfterBarrierWithSameFinalAnswer) {
  std::unique_ptr<rt::Cluster> cluster;
  auto r = test::runProgram({}, ckptApp(10, 40), &cluster);
  ASSERT_TRUE(r.completed);
  cnk::CnkKernel* k = cluster->cnkOn(0);
  ASSERT_EQ(k->ckptSeqCommitted(), 1u);
  const std::uint64_t fullAnswer = r.samples.at(1);

  // Reload the same executable in restore mode: the node rebuilds the
  // job from the committed image and replays only the second phase.
  k->unloadJob();
  kernel::JobSpec job;
  job.exe = kernel::ElfImage::makeExecutable("test", ckptApp(10, 40));
  job.restore = true;
  std::vector<std::uint64_t> samples;
  cluster->attachSamples(0, 0, &samples);
  ASSERT_TRUE(cluster->loadJob(job));
  ASSERT_TRUE(cluster->run());
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0], 1u) << "ckpt_save must report 'resumed'";
  EXPECT_EQ(samples[1], fullAnswer) << "resume oracle violated";
  EXPECT_EQ(k->ckptRestores(), 1u);
  EXPECT_EQ(k->ckptCommits(), 1u) << "resume must not re-run phase one";
  EXPECT_EQ(countRas(*k, kernel::RasEvent::Code::kCkptRestore), 1u);
}

TEST(Ckpt, RestoreWithoutImageFallsBackToScratch) {
  rt::ClusterConfig cfg;
  rt::Cluster cluster(cfg);
  ASSERT_TRUE(cluster.bootAll());
  kernel::JobSpec job;
  job.exe = kernel::ElfImage::makeExecutable("test", ckptApp(4, 4));
  job.restore = true;  // nothing was ever checkpointed
  std::vector<std::uint64_t> samples;
  cluster.attachSamples(0, 0, &samples);
  ASSERT_TRUE(cluster.loadJob(job));
  ASSERT_TRUE(cluster.run());
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0], 0u) << "scratch start: saved, not resumed";
  EXPECT_EQ(samples[1], 4u * 7 + 4u * 3);
  cnk::CnkKernel* k = cluster.cnkOn(0);
  EXPECT_EQ(k->ckptRestores(), 0u);
  EXPECT_GE(k->ckptFailures(), 1u);
  EXPECT_GE(countRas(*k, kernel::RasEvent::Code::kCkptFailed), 1u);
}

TEST(Ckpt, CiodCrashMidShipKeepsPreviousImageValid) {
  rt::ClusterConfig cfg;
  // Tight fship reliability so the severed ship chain resolves fast.
  cfg.cnk.fship.requestTimeout = 20'000;
  cfg.cnk.fship.maxTimeout = 80'000;
  cfg.cnk.fship.maxRetries = 2;
  cfg.cnk.fship.failoverGrace = 0;
  rt::Cluster cluster(cfg);
  ASSERT_TRUE(cluster.bootAll());
  kernel::JobSpec job;
  job.exe = kernel::ElfImage::makeExecutable("test", ckptApp(10, 2'000));
  ASSERT_TRUE(cluster.loadJob(job));
  cnk::CnkKernel* k = cluster.cnkOn(0);

  // Drive to the app's own commit (sequence 1).
  ASSERT_TRUE(cluster.engine().runWhile(
      [&] { return k->ckptCommits() == 1; }, 100'000'000));
  io::RamFs& fs = cluster.ioRootFs(0);
  const std::string path = cnk::ckpt::imagePath(0, 0);
  const std::vector<std::byte> committed = fs.fileContents(path);
  ASSERT_FALSE(committed.empty());

  // Second, service-initiated checkpoint — and a CIOD crash while its
  // image is in flight.
  bool acked = false;
  bool ackOk = true;
  const sim::Cycle now = cluster.engine().now();
  cluster.engine().scheduleAt(now + 1, [&] {
    k->requestCheckpoint([&](bool ok) {
      acked = true;
      ackOk = ok;
    });
  });
  cluster.engine().scheduleAt(now + 5'000, [&] {
    if (!cluster.ciod(0).crashed()) cluster.ciod(0).crash();
  });
  ASSERT_TRUE(cluster.engine().runWhile([&] { return acked; },
                                        200'000'000));
  EXPECT_FALSE(ackOk) << "a severed ship chain must fail the attempt";
  EXPECT_EQ(k->ckptCommits(), 1u);
  EXPECT_EQ(k->ckptSeqCommitted(), 1u);
  EXPECT_GE(k->ckptFailures(), 1u);
  // The crash hit the *tmp* half of the two-phase commit: the
  // committed image is byte-identical to before the attempt.
  EXPECT_EQ(fs.fileContents(path), committed);

  // After an in-place CIOD reboot, restore from that image still works.
  cluster.rebootIoNode(0);
  k->unloadJob();
  kernel::JobSpec again;
  again.exe = kernel::ElfImage::makeExecutable("test", ckptApp(10, 2'000));
  again.restore = true;
  std::vector<std::uint64_t> samples;
  cluster.attachSamples(0, 0, &samples);
  ASSERT_TRUE(cluster.loadJob(again));
  ASSERT_TRUE(cluster.run());
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0], 1u);
  EXPECT_EQ(samples[1], 10u * 7 + 2'000u * 3);
  EXPECT_EQ(k->ckptRestores(), 1u);
}

TEST(Ckpt, DoubleRunIsBitIdentical) {
  auto runOnce = [] {
    std::unique_ptr<rt::Cluster> cluster;
    auto r = test::runProgram({}, ckptApp(10, 40), &cluster);
    EXPECT_TRUE(r.completed);
    std::vector<std::uint64_t> digest = r.samples;
    digest.push_back(cluster->cnkOn(0)->lastCkptBytes());
    digest.push_back(cluster->engine().now());
    return digest;
  };
  EXPECT_EQ(runOnce(), runOnce());
}

// ---------------------------------------------------------------------
// Service node: checkpoint-then-preempt, requeue-resume
// ---------------------------------------------------------------------

TEST(CkptSvc, PreemptChecksPointsThenResumesVictim) {
  rt::ClusterConfig cfg;
  cfg.computeNodes = 2;
  cfg.seed = 31;
  rt::Cluster cluster(cfg);

  svc::ServiceNodeConfig snCfg;
  snCfg.policy = svc::SchedPolicyKind::kFairShare;
  svc::AccountSpec low;
  low.name = "batch";
  low.qos = svc::Qos::kLow;
  svc::AccountSpec high;
  high.name = "urgent";
  high.qos = svc::Qos::kHigh;
  snCfg.fairshare.accounts = {low, high};
  snCfg.ckpt.onPreempt = true;
  snCfg.ckpt.deadlineCycles = 2'000'000;
  svc::ServiceHost host(cluster, snCfg);

  int arrived = 0;
  svc::JobDesc lowJd;
  lowJd.name = "low";
  lowJd.nodes = 2;
  lowJd.account = 1;
  lowJd.exe = workImage("low", 600, 10'000);
  lowJd.estCycles = 6'200'000;
  cluster.engine().scheduleAt(10'000, [&host, lowJd, &arrived]() mutable {
    host.submit(std::move(lowJd));
    ++arrived;
  });
  svc::JobDesc hiJd;
  hiJd.name = "hi";
  hiJd.nodes = 2;
  hiJd.account = 2;
  hiJd.exe = workImage("hi", 10, 10'000);
  hiJd.estCycles = 200'000;
  cluster.engine().scheduleAt(600'000, [&host, hiJd, &arrived]() mutable {
    host.submit(std::move(hiJd));
    ++arrived;
  });

  host.start();
  ASSERT_TRUE(cluster.engine().runWhile(
      [&] { return arrived == 2 && host.drained(); }, 2'000'000'000));

  svc::ServiceNode& sn = host.node();
  EXPECT_EQ(sn.preemptions(), 1u);
  EXPECT_EQ(sn.ckptRequests(), 1u);
  EXPECT_EQ(sn.ckptCommits(), 1u);
  EXPECT_EQ(sn.ckptFallbacks(), 0u);
  EXPECT_EQ(sn.ckptResumes(), 1u);
  const svc::JobRecord* lowJr = nullptr;
  for (const auto& jr : sn.jobs()) {
    EXPECT_EQ(jr.state, svc::JobState::kCompleted) << jr.desc.name;
    if (jr.desc.name == "low") lowJr = &jr;
  }
  ASSERT_NE(lowJr, nullptr);
  EXPECT_GE(lowJr->ckptSeq, 1u) << "victim never recorded its commit";
  EXPECT_EQ(lowJr->preemptCount, 1);
  EXPECT_EQ(lowJr->attempts, 2);
  // The window's milestones are on the decision timeline.
  int reqNotes = 0;
  int commitNotes = 0;
  int resumeNotes = 0;
  for (const std::string& line : sn.timeline()) {
    if (line.find("ckpt_req") != std::string::npos) ++reqNotes;
    if (line.find("ckpt_commit") != std::string::npos) ++commitNotes;
    if (line.find("resume") != std::string::npos) ++resumeNotes;
  }
  EXPECT_EQ(reqNotes, 1);
  EXPECT_EQ(commitNotes, 1);
  EXPECT_EQ(resumeNotes, 1);
  // Metrics surface the same counters.
  const svc::SvcMetrics m = host.metrics();
  EXPECT_EQ(m.ckptRequests, 1u);
  EXPECT_EQ(m.ckptCommits, 1u);
  EXPECT_EQ(m.ckptResumes, 1u);
  // And the kernels really restored (the resume was not a silent
  // scratch fallback): every node of the relaunched 2-node victim
  // applied an image.
  std::uint64_t kernelRestores = 0;
  for (int n = 0; n < 2; ++n) kernelRestores += cluster.cnkOn(n)->ckptRestores();
  EXPECT_EQ(kernelRestores, 2u);
}

TEST(CkptSvc, BlownDeadlineFallsBackToScratchRequeue) {
  rt::ClusterConfig cfg;
  cfg.computeNodes = 2;
  cfg.seed = 32;
  rt::Cluster cluster(cfg);

  svc::ServiceNodeConfig snCfg;
  snCfg.policy = svc::SchedPolicyKind::kFairShare;
  svc::AccountSpec low;
  low.name = "batch";
  low.qos = svc::Qos::kLow;
  svc::AccountSpec high;
  high.name = "urgent";
  high.qos = svc::Qos::kHigh;
  snCfg.fairshare.accounts = {low, high};
  snCfg.ckpt.onPreempt = true;
  snCfg.ckpt.deadlineCycles = 1;  // expires before any node can commit
  svc::ServiceHost host(cluster, snCfg);

  int arrived = 0;
  svc::JobDesc lowJd;
  lowJd.name = "low";
  lowJd.nodes = 2;
  lowJd.account = 1;
  lowJd.exe = workImage("low", 600, 10'000);
  lowJd.estCycles = 6'200'000;
  cluster.engine().scheduleAt(10'000, [&host, lowJd, &arrived]() mutable {
    host.submit(std::move(lowJd));
    ++arrived;
  });
  svc::JobDesc hiJd;
  hiJd.name = "hi";
  hiJd.nodes = 2;
  hiJd.account = 2;
  hiJd.exe = workImage("hi", 10, 10'000);
  hiJd.estCycles = 200'000;
  cluster.engine().scheduleAt(600'000, [&host, hiJd, &arrived]() mutable {
    host.submit(std::move(hiJd));
    ++arrived;
  });

  host.start();
  ASSERT_TRUE(cluster.engine().runWhile(
      [&] { return arrived == 2 && host.drained(); }, 2'000'000'000));

  svc::ServiceNode& sn = host.node();
  EXPECT_EQ(sn.preemptions(), 1u);
  EXPECT_EQ(sn.ckptRequests(), 1u);
  EXPECT_EQ(sn.ckptFallbacks(), 1u);
  EXPECT_EQ(sn.ckptCommits(), 0u);
  EXPECT_EQ(sn.ckptResumes(), 0u) << "fallback relaunches from scratch";
  for (const auto& jr : sn.jobs()) {
    EXPECT_EQ(jr.state, svc::JobState::kCompleted) << jr.desc.name;
  }
  int timeoutNotes = 0;
  for (const std::string& line : sn.timeline()) {
    if (line.find("ckpt_timeout") != std::string::npos) ++timeoutNotes;
  }
  EXPECT_EQ(timeoutNotes, 1);
}

TEST(CkptSvc, UeRequeueResumesFromCommittedSequence) {
  rt::ClusterConfig cfg;
  cfg.computeNodes = 1;
  cfg.seed = 33;
  rt::Cluster cluster(cfg);
  svc::ServiceNodeConfig snCfg;
  svc::ServiceHost host(cluster, snCfg);

  // The app commits its own checkpoint early, then computes a long
  // tail; the UE lands in the tail, well after a control-loop poll has
  // recorded the committed sequence on the job.
  svc::JobDesc jd;
  jd.name = "ckptjob";
  jd.nodes = 1;
  jd.exe = kernel::ElfImage::makeExecutable("ckptjob", ckptApp(10, 2'000));
  jd.estCycles = 5'000'000;
  jd.maxRetries = 2;
  int arrived = 0;
  cluster.engine().scheduleAt(10'000, [&host, jd, &arrived]() mutable {
    host.submit(std::move(jd));
    ++arrived;
  });
  cluster.engine().scheduleAt(1'500'000, [&cluster, &host] {
    cluster.machine().node(0).injectUncorrectable(0xBAD0'0000ULL);
    if (host.alive()) host.node().poke();
  });

  host.start();
  ASSERT_TRUE(cluster.engine().runWhile(
      [&] { return arrived == 1 && host.drained(); }, 2'000'000'000));

  svc::ServiceNode& sn = host.node();
  ASSERT_EQ(sn.jobs().size(), 1u);
  const svc::JobRecord& jr = sn.jobs()[0];
  EXPECT_EQ(jr.state, svc::JobState::kCompleted);
  EXPECT_EQ(jr.attempts, 2) << "one node loss, one retry";
  EXPECT_GE(jr.ckptSeq, 1u);
  EXPECT_EQ(sn.ckptResumes(), 1u)
      << "the retry must boot into restore, not scratch";
  int resumeNotes = 0;
  for (const std::string& line : sn.timeline()) {
    if (line.find("resume") != std::string::npos) ++resumeNotes;
  }
  EXPECT_EQ(resumeNotes, 1);
}

// ---------------------------------------------------------------------
// Multi-seed fault sweep (slow lane)
// ---------------------------------------------------------------------

struct SweepOutcome {
  std::uint64_t hash = 0;
  std::vector<std::string> timeline;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t ckptRequests = 0;
  std::uint64_t ckptResumes = 0;
  bool drained = false;
};

SweepOutcome runCkptSweep(std::uint64_t seed, int jobCount) {
  const int kNodes = 4;
  rt::ClusterConfig cfg;
  cfg.computeNodes = kNodes;
  cfg.seed = seed;
  // Tight fship reliability so CIOD deaths surface (and severed ckpt
  // ship chains resolve) within the sweep's horizon.
  cfg.cnk.fship.requestTimeout = 20'000;
  cfg.cnk.fship.maxTimeout = 80'000;
  cfg.cnk.fship.maxRetries = 2;
  rt::Cluster cluster(cfg);

  svc::ServiceNodeConfig snCfg;
  snCfg.policy = svc::SchedPolicyKind::kFairShare;
  svc::AccountSpec low;
  low.name = "batch";
  low.qos = svc::Qos::kLow;
  svc::AccountSpec high;
  high.name = "urgent";
  high.qos = svc::Qos::kHigh;
  snCfg.fairshare.accounts = {low, high};
  snCfg.ckpt.onPreempt = true;
  svc::ServiceHost host(cluster, snCfg);

  sim::Rng rng(seed, "ckpt-sweep");
  const sim::Cycle arrivalSpan = static_cast<sim::Cycle>(jobCount) * 60'000;
  struct Arrival {
    sim::Cycle at;
    svc::JobDesc jd;
  };
  std::vector<Arrival> arrivals;
  for (int i = 0; i < jobCount; ++i) {
    svc::JobDesc jd;
    jd.name = "s" + std::to_string(i);
    jd.nodes = 1 + static_cast<int>(rng.nextBelow(2));
    jd.account = static_cast<svc::AccountId>(1 + rng.nextBelow(2));
    const std::uint64_t reps = 20 + rng.nextBelow(200);
    if (rng.nextBelow(2) == 0) {
      // Half the stream checkpoints on its own mid-run.
      jd.exe = kernel::ElfImage::makeExecutable(
          jd.name, ckptApp(static_cast<std::int64_t>(reps / 2),
                           static_cast<std::int64_t>(reps)));
    } else {
      jd.exe = workImage(jd.name, reps, 10'000);
    }
    jd.estCycles = reps * 10'000 + 50'000;
    jd.maxRetries = 3;
    arrivals.push_back({rng.nextBelow(arrivalSpan), std::move(jd)});
  }
  int arrived = 0;
  for (Arrival& a : arrivals) {
    cluster.engine().scheduleAt(a.at, [&host, &arrived, &a] {
      host.submit(std::move(a.jd));
      ++arrived;
    });
  }

  const testing::FaultSchedule faults = testing::FaultSchedule::random(
      seed, kNodes, arrivalSpan + 3'000'000, /*crashes=*/0, /*deaths=*/1,
      /*storms=*/0, /*ioDeaths=*/0, /*ioNodes=*/1, /*memUes=*/0,
      /*ceStorms=*/0, /*coreHangs=*/0, /*ckptIoCrashes=*/1, /*ckptUes=*/1,
      /*ckptSvcCrashes=*/1);
  faults.arm(cluster, host);

  host.start();
  SweepOutcome out;
  out.drained = cluster.engine().runWhile(
      [&] { return arrived == jobCount && host.drained(); }, 3'000'000'000);
  const svc::SvcMetrics m = host.metrics();
  out.hash = m.scheduleHash;
  out.completed = m.jobsCompleted;
  out.failed = m.jobsFailed;
  out.ckptRequests = m.ckptRequests;
  out.ckptResumes = m.ckptResumes;
  if (host.alive()) out.timeline = host.node().timeline();

  EXPECT_TRUE(out.drained) << "stream wedged (seed " << seed << ")";
  EXPECT_EQ(out.completed + out.failed,
            static_cast<std::uint64_t>(jobCount))
      << "lost a job (seed " << seed << ")";
  return out;
}

TEST(CkptSlow, MultiSeedFaultSweepReplaysBitIdentically) {
  if (std::getenv("CKPT_SLOW") == nullptr) {
    GTEST_SKIP() << "set CKPT_SLOW=1 (slow ctest lane) to run";
  }
  for (std::uint64_t seed = 900; seed < 908; ++seed) {
    const SweepOutcome a = runCkptSweep(seed, 24);
    const SweepOutcome b = runCkptSweep(seed, 24);
    EXPECT_EQ(a.hash, b.hash) << "seed " << seed;
    EXPECT_EQ(a.timeline, b.timeline) << "seed " << seed;
    EXPECT_EQ(a.ckptRequests, b.ckptRequests) << "seed " << seed;
    EXPECT_EQ(a.ckptResumes, b.ckptResumes) << "seed " << seed;
  }
}

}  // namespace
}  // namespace bg

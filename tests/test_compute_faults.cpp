// Compute-node fault plane, end to end (paper §III, §V):
//
//   hardware  — seeded ECC/parity/hang injection (hw::MemFaultModel)
//               with the zero-RNG-when-clean contract the link-fault
//               model established;
//   kernel    — machine-check handlers that scrub correctables (kWarn
//               RAS), and on an uncorrectable error panic cleanly:
//               fatal RAS, lightweight coredump function-shipped to
//               the I/O node, fail-stop;
//   control   — heartbeat watchdog for hung cores, requeue through the
//               bounded-retry path, reboot-in-place, per-node failure
//               budgets that retire repeat offenders, and restart
//               reconciliation when the control plane crashes between
//               a node death and the requeue.
//
// Every scenario is seeded and replayed: same seed => identical
// schedule hash, identical aggregated RAS stream, byte-identical
// coredumps.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "cnk/cnk_kernel.hpp"
#include "cnk/coredump.hpp"
#include "fault_schedule.hpp"
#include "io/ramfs.hpp"
#include "runtime/app.hpp"
#include "sim/bytes.hpp"
#include "sim/rng.hpp"
#include "svc/failover.hpp"
#include "vm/builder.hpp"

namespace bg {
namespace {

std::uint64_t envU64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::strtoull(v, nullptr, 10)
                                    : fallback;
}

std::shared_ptr<kernel::ElfImage> workImage(const std::string& name,
                                            std::uint64_t reps,
                                            std::uint64_t cyclesPerRep) {
  vm::ProgramBuilder b(name);
  const auto top = b.loopBegin(16, static_cast<std::int64_t>(reps));
  b.compute(cyclesPerRep);
  b.loopEnd(16, top);
  b.halt(0);
  return kernel::ElfImage::makeExecutable(name, std::move(b).build());
}

/// Heap-sweeping workload: each rep streams `bytes` of fresh heap at
/// cache-line stride, so every line is a cold miss that reaches DDR —
/// the access class the rate-driven ECC judgement hooks.
std::shared_ptr<kernel::ElfImage> memImage(const std::string& name,
                                           std::uint64_t reps,
                                           std::uint32_t bytesPerRep) {
  vm::ProgramBuilder b(name);
  b.mov(20, 10);  // cursor = heap base (reg 10 at entry)
  const auto top = b.loopBegin(16, static_cast<std::int64_t>(reps));
  b.memTouch(20, 0, bytesPerRep, 64);
  b.addi(20, 20, bytesPerRep);
  b.loopEnd(16, top);
  b.halt(0);
  return kernel::ElfImage::makeExecutable(name, std::move(b).build());
}

std::string rasLine(const svc::SvcRasEvent& e) {
  return std::to_string(e.event.cycle) + " n" + std::to_string(e.node) +
         " " + kernel::rasCodeName(e.event.code) + " s" +
         std::to_string(static_cast<int>(e.event.severity)) + " p" +
         std::to_string(e.event.pid) + " d" +
         std::to_string(e.event.detail);
}

// --- shared job-stream harness ------------------------------------------

struct FaultStreamParams {
  std::uint64_t seed = 1;
  int nodes = 6;
  int jobs = 40;
  // Compute-fault counts for the seeded schedule.
  int memUes = 0;
  int ceStorms = 0;
  int coreHangs = 0;
  // Legacy fault planes, for the composed scenario.
  int svcCrashes = 0;
  int nodeDeaths = 0;
  int warnStorms = 0;
  int ioDeaths = 0;
  sim::Cycle hangTimeout = 300'000;
  std::uint32_t failureBudget = 0;
  int maxJobWidth = 3;
};

struct FaultStreamOutcome {
  bool drained = false;
  std::uint64_t hash = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t hangsDetected = 0;
  std::uint64_t nodesRetired = 0;
  std::uint64_t requeueSamples = 0;
  double meanRequeue = 0;
  std::uint64_t coredumpsShipped = 0;
  std::uint64_t eccScrubbed = 0;
  std::uint64_t fatals = 0;
  std::uint64_t ueFatals = 0;
  std::uint64_t hangFatals = 0;
  std::uint64_t coredumpRas = 0;
  std::vector<std::string> rasLog;
  std::vector<svc::NodeLifecycle> finalStates;
  std::map<int, std::vector<std::byte>> coredumps;  // node -> bytes
};

/// Run a seeded job stream under a seeded fault schedule and check the
/// structural invariants every stream must keep: no job lost or
/// duplicated, every job terminal, every injected UE accounted for —
/// no silent wedges.
FaultStreamOutcome runFaultStream(const FaultStreamParams& p) {
  rt::ClusterConfig cfg;
  cfg.computeNodes = p.nodes;
  cfg.seed = p.seed;
  // Tight fship watchdogs (as in the svc torture) so composed
  // schedules that kill a CIOD get an honest detection.
  cfg.cnk.fship.requestTimeout = 100'000;
  cfg.cnk.fship.maxTimeout = 400'000;
  cfg.cnk.fship.maxRetries = 2;
  rt::Cluster cluster(cfg);

  svc::ServiceNodeConfig snCfg;
  snCfg.hangTimeoutCycles = p.hangTimeout;
  snCfg.nodeFailureBudget = p.failureBudget;
  snCfg.ras.warnDrainThreshold = 8;
  svc::ServiceHost host(cluster, snCfg);

  sim::Rng rng(p.seed, "compute-fault-stream");
  const sim::Cycle arrivalSpan = static_cast<sim::Cycle>(p.jobs) * 60'000;
  struct Arrival {
    sim::Cycle at;
    svc::JobDesc jd;
  };
  std::vector<Arrival> arrivals;
  for (int i = 0; i < p.jobs; ++i) {
    svc::JobDesc jd;
    jd.name = "cf" + std::to_string(i);
    jd.kernel = rt::KernelKind::kCnk;
    jd.nodes =
        1 + static_cast<int>(rng.nextBelow(
                static_cast<std::uint64_t>(p.maxJobWidth)));
    const std::uint64_t reps = 6 + rng.nextBelow(20);
    jd.exe = workImage(jd.name, reps, 10'000);
    jd.estCycles = reps * 10'000 + 50'000;
    jd.maxRetries = 3;
    arrivals.push_back({rng.nextBelow(arrivalSpan), std::move(jd)});
  }
  int arrived = 0;
  for (Arrival& a : arrivals) {
    cluster.engine().scheduleAt(a.at, [&host, &arrived, &a] {
      host.submit(std::move(a.jd));
      ++arrived;
    });
  }

  const testing::FaultSchedule faults = testing::FaultSchedule::random(
      p.seed, p.nodes, arrivalSpan + 2'000'000, p.svcCrashes, p.nodeDeaths,
      p.warnStorms, p.ioDeaths, /*ioNodes=*/1, p.memUes, p.ceStorms,
      p.coreHangs);
  faults.arm(cluster, host);

  host.start();
  FaultStreamOutcome out;
  out.drained = cluster.engine().runWhile(
      [&] { return arrived == p.jobs && host.drained(); }, 2'000'000'000);

  svc::SvcMetrics m = host.metrics();
  out.hash = m.scheduleHash;
  out.completed = m.jobsCompleted;
  out.failed = m.jobsFailed;
  out.hangsDetected = m.hangsDetected;
  out.nodesRetired = m.nodesRetired;
  out.requeueSamples = m.requeueSamples;
  out.meanRequeue = m.meanRequeueCycles;
  out.fatals = m.rasFatal;
  svc::RasAggregator& ras = host.node().ras();
  out.ueFatals =
      ras.countByCode(kernel::RasEvent::Code::kEccUncorrectable);
  out.hangFatals = ras.countByCode(kernel::RasEvent::Code::kCoreHang);
  out.coredumpRas = ras.countByCode(kernel::RasEvent::Code::kCoredump);
  for (const svc::SvcRasEvent& e : ras.stream()) {
    out.rasLog.push_back(rasLine(e));
  }
  for (int n = 0; n < p.nodes; ++n) {
    out.finalStates.push_back(host.node().partitions().state(n));
    if (const cnk::CnkKernel* k = cluster.cnkOn(n)) {
      out.coredumpsShipped += k->coredumpsShipped();
      out.eccScrubbed += k->eccScrubbed();
    }
    const int ioIdx = cluster.machine().ioNodeIndexFor(n);
    auto bytes = cluster.ioRootFs(ioIdx).fileContents(cnk::coredumpPath(n));
    if (!bytes.empty()) out.coredumps[n] = std::move(bytes);
  }

  // Structural invariants on every stream.
  EXPECT_TRUE(out.drained) << "stream wedged (seed " << p.seed << ")";
  EXPECT_EQ(host.coldStarts(), 0u);
  const auto& jobs = host.node().jobs();
  EXPECT_EQ(jobs.size(), static_cast<std::size_t>(p.jobs))
      << "jobs lost or duplicated";
  std::set<svc::JobId> ids;
  for (const auto& jr : jobs) {
    ids.insert(jr.id);
    EXPECT_TRUE(jr.state == svc::JobState::kCompleted ||
                jr.state == svc::JobState::kFailed)
        << jr.desc.name << " not terminal";
    EXPECT_LE(jr.attempts, jr.desc.maxRetries + 1);
  }
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(p.jobs));
  EXPECT_EQ(out.completed + out.failed,
            static_cast<std::uint64_t>(p.jobs));
  return out;
}

// --- satellite: the zero-RNG-when-clean witness --------------------------

TEST(ComputeFaults, DisabledFaultModelsDrawNoRandomNumbers) {
  rt::ClusterConfig cfg;
  cfg.computeNodes = 2;
  rt::Cluster cluster(cfg);
  ASSERT_TRUE(cluster.bootAll(600'000'000));
  kernel::JobSpec job;
  job.exe = workImage("clean", 40, 12'000);
  ASSERT_TRUE(cluster.loadJob(job));
  ASSERT_TRUE(cluster.run(4'000'000'000ULL));

  // A fault-free run must not touch any fault generator: this is what
  // keeps the seed's schedules bit-identical with the models compiled
  // in. draws() counts raw generator steps, so even a judged-and-
  // discarded draw would show up here.
  EXPECT_EQ(cluster.machine().memFaults().rngDraws(), 0u);
  EXPECT_EQ(cluster.machine().collectiveFaults().rngDraws(), 0u);
  EXPECT_EQ(cluster.machine().torusFaults().rngDraws(), 0u);
  EXPECT_FALSE(cluster.machine().memFaults().anyEnabled());
}

// --- rate-driven injection ----------------------------------------------

TEST(ComputeFaults, CorrectableRateIsScrubbedTransparently) {
  auto run = [](std::uint64_t seed) {
    rt::ClusterConfig cfg;
    cfg.computeNodes = 1;
    cfg.seed = seed;
    cfg.memFaults.ceRate = 0.02;  // per DDR access
    rt::Cluster cluster(cfg);
    EXPECT_TRUE(cluster.bootAll(600'000'000));
    kernel::JobSpec job;
    job.exe = memImage("ce", 8, 64 << 10);
    EXPECT_TRUE(cluster.loadJob(job));
    EXPECT_TRUE(cluster.run(4'000'000'000ULL));
    const cnk::CnkKernel* k = cluster.cnkOn(0);
    struct {
      std::uint64_t scrubbed, draws, correctable;
      bool panicked;
    } r{k->eccScrubbed(), cluster.machine().memFaults().rngDraws(),
        cluster.machine().memFaults().stats().correctable, k->panicked()};
    return r;
  };
  const auto a = run(7);
  // The job completed (run() returned true) with correctables flowing:
  // scrubbed by the handler, charged only handler cycles.
  EXPECT_GT(a.scrubbed, 0u);
  EXPECT_EQ(a.scrubbed, a.correctable);
  EXPECT_GT(a.draws, 0u);
  EXPECT_FALSE(a.panicked);

  // Same seed => identical fault decisions.
  const auto b = run(7);
  EXPECT_EQ(a.scrubbed, b.scrubbed);
  EXPECT_EQ(a.draws, b.draws);
}

TEST(ComputeFaults, UncorrectableRateFailStopsTheJob) {
  rt::ClusterConfig cfg;
  cfg.computeNodes = 1;
  cfg.seed = 11;
  cfg.memFaults.ueRate = 0.001;
  rt::Cluster cluster(cfg);
  ASSERT_TRUE(cluster.bootAll(600'000'000));
  kernel::JobSpec job;
  job.exe = memImage("ue", 8, 64 << 10);
  ASSERT_TRUE(cluster.loadJob(job));
  cluster.run(4'000'000'000ULL);
  const cnk::CnkKernel* k = cluster.cnkOn(0);
  // The panic fail-stops the job, which is what ends run(); the dump
  // is still in flight on the fship path — drain the engine until it
  // lands.
  cluster.engine().runWhile([&] { return k->coredumpsShipped() > 0; },
                            100'000'000);
  ASSERT_GT(cluster.machine().memFaults().stats().uncorrectable, 0u)
      << "rate produced no UE; raise ueRate or reps";
  // The kernel panicked exactly once, logged the fatal, shipped one
  // dump; the poisoned access never retired into user state.
  EXPECT_TRUE(k->panicked());
  EXPECT_EQ(k->coredumpsShipped(), 1u);
  bool sawFatal = false;
  for (const auto& e : cluster.kernelOn(0).rasLog()) {
    if (e.code == kernel::RasEvent::Code::kEccUncorrectable) {
      sawFatal = true;
    }
  }
  EXPECT_TRUE(sawFatal);
}

// --- UE panic + lightweight coredump -------------------------------------

TEST(ComputeFaults, UePanicShipsDeterministicCoredump) {
  FaultStreamParams p;
  p.seed = 3;
  p.memUes = 2;
  const FaultStreamOutcome a = runFaultStream(p);

  EXPECT_GT(a.ueFatals, 0u);
  EXPECT_GT(a.coredumpsShipped, 0u);
  EXPECT_EQ(a.coredumpRas, a.coredumpsShipped);
  ASSERT_FALSE(a.coredumps.empty()) << "no coredump landed on any I/O node";
  for (const auto& [node, bytes] : a.coredumps) {
    sim::ByteReader r(bytes);
    EXPECT_EQ(r.u32(), cnk::kCoredumpMagic) << "bad magic, node " << node;
    EXPECT_EQ(r.u32(), 1u) << "bad version, node " << node;
  }
  // Every node that panicked is repaired and back in service.
  for (std::size_t n = 0; n < a.finalStates.size(); ++n) {
    EXPECT_EQ(a.finalStates[n], svc::NodeLifecycle::kReady)
        << "node " << n << " never returned";
  }

  // Replay: identical schedule, identical RAS stream, byte-identical
  // dumps.
  const FaultStreamOutcome b = runFaultStream(p);
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.rasLog, b.rasLog);
  EXPECT_EQ(a.coredumps, b.coredumps);
}

// --- heartbeat watchdog --------------------------------------------------

TEST(ComputeFaults, WatchdogDetectsHangRequeuesAndReboots) {
  FaultStreamParams p;
  p.seed = 5;
  p.coreHangs = 2;
  const FaultStreamOutcome a = runFaultStream(p);

  // Nothing reported the hang except the watchdog — and it did.
  EXPECT_GT(a.hangsDetected, 0u);
  EXPECT_EQ(a.hangFatals, a.hangsDetected);
  // Reboot-in-place cleared the frozen cores: every node came back.
  for (std::size_t n = 0; n < a.finalStates.size(); ++n) {
    EXPECT_EQ(a.finalStates[n], svc::NodeLifecycle::kReady)
        << "node " << n << " never returned";
  }
  const FaultStreamOutcome b = runFaultStream(p);
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.rasLog, b.rasLog);
}

TEST(ComputeFaults, WatchdogSilentWithoutHangs) {
  // The watchdog armed on a healthy stream must never fire: progress
  // counters keep advancing, so no false hang declarations.
  FaultStreamParams p;
  p.seed = 9;
  p.jobs = 20;
  const FaultStreamOutcome a = runFaultStream(p);
  EXPECT_EQ(a.hangsDetected, 0u);
  EXPECT_EQ(a.hangFatals, 0u);
  EXPECT_EQ(a.fatals, 0u);
  EXPECT_EQ(a.failed, 0u);
}

// --- per-node failure budget ---------------------------------------------

TEST(ComputeFaults, FailureBudgetRetiresRepeatOffender) {
  rt::ClusterConfig cfg;
  cfg.computeNodes = 4;
  cfg.seed = 13;
  rt::Cluster cluster(cfg);

  svc::ServiceNodeConfig snCfg;
  snCfg.nodeFailureBudget = 2;
  svc::ServiceHost host(cluster, snCfg);

  sim::Rng rng(13, "budget-jobs");
  int arrived = 0;
  const int kJobs = 24;
  for (int i = 0; i < kJobs; ++i) {
    svc::JobDesc jd;
    jd.name = "b" + std::to_string(i);
    jd.nodes = 1 + static_cast<int>(rng.nextBelow(2));
    const std::uint64_t reps = 6 + rng.nextBelow(12);
    jd.exe = workImage(jd.name, reps, 10'000);
    jd.estCycles = reps * 10'000 + 50'000;
    jd.maxRetries = 3;
    cluster.engine().scheduleAt(rng.nextBelow(6'000'000),
                                [&host, jd, &arrived] {
                                  host.submit(jd);
                                  ++arrived;
                                });
  }

  // Two UEs on node 0, spaced wider than the repair window (~2M
  // cycles) but inside the job stream, so the node fails, repairs,
  // comes back — and fails again, blowing its budget of 2.
  for (const sim::Cycle at : {1'000'000, 4'500'000}) {
    cluster.engine().scheduleAt(at, [&cluster, &host] {
      cluster.machine().node(0).injectUncorrectable(0xBAD00);
      if (host.alive()) host.node().poke();
    });
  }

  host.start();
  ASSERT_TRUE(cluster.engine().runWhile(
      [&] { return arrived == kJobs && host.drained(); }, 2'000'000'000));

  EXPECT_EQ(host.node().partitions().state(0),
            svc::NodeLifecycle::kRetired);
  EXPECT_EQ(host.node().nodesRetired(), 1u);
  EXPECT_GE(host.node().partitions().failuresOf(0), 2u);
  // The machine kept scheduling around the corpse.
  svc::SvcMetrics m = host.metrics();
  EXPECT_EQ(m.jobsCompleted + m.jobsFailed,
            static_cast<std::uint64_t>(kJobs));
  for (int n = 1; n < 4; ++n) {
    EXPECT_EQ(host.node().partitions().state(n),
              svc::NodeLifecycle::kReady);
  }
}

// --- satellite: svc restart racing a node death --------------------------

TEST(ComputeFaults, SvcCrashBetweenNodeDeathAndRequeueLosesNothing) {
  // A UE takes node 1 down at T; the control plane fail-stops 10k
  // cycles later — before its next pump, i.e. before it has seen the
  // fatal or requeued the victim — and again mid-repair-window. The
  // restarted instance must reconcile from its checkpoint + the RAS
  // cursors: the job is requeued exactly once, the repair deadline
  // survives, and nothing is lost or duplicated.
  auto run = [](std::uint64_t seed) {
    rt::ClusterConfig cfg;
    cfg.computeNodes = 4;
    cfg.seed = seed;
    rt::Cluster cluster(cfg);
    svc::ServiceNodeConfig snCfg;
    svc::ServiceHost host(cluster, snCfg);

    sim::Rng rng(seed, "race-jobs");
    int arrived = 0;
    const int kJobs = 20;
    for (int i = 0; i < kJobs; ++i) {
      svc::JobDesc jd;
      jd.name = "r" + std::to_string(i);
      jd.nodes = 1 + static_cast<int>(rng.nextBelow(3));
      const std::uint64_t reps = 8 + rng.nextBelow(16);
      jd.exe = workImage(jd.name, reps, 10'000);
      jd.estCycles = reps * 10'000 + 50'000;
      jd.maxRetries = 3;
      cluster.engine().scheduleAt(rng.nextBelow(4'000'000),
                                  [&host, jd, &arrived] {
                                    host.submit(jd);
                                    ++arrived;
                                  });
    }

    const sim::Cycle ueAt = 2'000'000;
    cluster.engine().scheduleAt(ueAt, [&cluster] {
      cluster.machine().node(1).injectUncorrectable(0xDEAD00);
      // Deliberately no poke: the service node is about to die; the
      // restarted instance must find the fatal on its own.
    });
    host.scheduleCrashRestart(ueAt + 10'000, 300'000);
    // Second outage lands inside node 1's repair window (repair =
    // 2M cycles from whenever the restarted instance handles the
    // fatal), so the kRepairDone deadline must survive a restart too.
    host.scheduleCrashRestart(ueAt + 1'500'000, 300'000);

    host.start();
    struct Out {
      bool drained;
      std::uint64_t hash, completed, failed, crashes;
      std::size_t jobCount;
      bool node1Ready;
    } out{};
    out.drained = cluster.engine().runWhile(
        [&] { return arrived == kJobs && host.drained(); },
        2'000'000'000);
    svc::SvcMetrics m = host.metrics();
    out.hash = m.scheduleHash;
    out.completed = m.jobsCompleted;
    out.failed = m.jobsFailed;
    out.crashes = m.serviceCrashes;
    out.jobCount = host.node().jobs().size();
    out.node1Ready = host.node().partitions().state(1) ==
                     svc::NodeLifecycle::kReady;

    EXPECT_TRUE(out.drained);
    EXPECT_EQ(out.crashes, 2u);
    EXPECT_EQ(out.jobCount, static_cast<std::size_t>(kJobs))
        << "restart lost or duplicated a job";
    EXPECT_EQ(out.completed + out.failed,
              static_cast<std::uint64_t>(kJobs));
    EXPECT_TRUE(out.node1Ready) << "node 1 never finished its repair";
    std::set<svc::JobId> ids;
    for (const auto& jr : host.node().jobs()) {
      ids.insert(jr.id);
      EXPECT_TRUE(jr.state == svc::JobState::kCompleted ||
                  jr.state == svc::JobState::kFailed);
    }
    EXPECT_EQ(ids.size(), static_cast<std::size_t>(kJobs));
    return out.hash;
  };
  EXPECT_EQ(run(17), run(17)) << "same-seed replay diverged";
}

// --- all three fault planes composed -------------------------------------

TEST(ComputeFaults, ComposedFaultPlanesReplayIdentically) {
  FaultStreamParams p;
  p.seed = envU64("COMPUTE_FAULTS_SEED", 2);
  p.jobs = 60;
  p.memUes = 2;
  p.ceStorms = 2;
  p.coreHangs = 1;
  p.svcCrashes = 2;
  p.nodeDeaths = 2;
  p.warnStorms = 2;
  p.ioDeaths = 1;
  const FaultStreamOutcome a = runFaultStream(p);
  const FaultStreamOutcome b = runFaultStream(p);
  EXPECT_EQ(a.hash, b.hash) << "composed replay diverged";
  EXPECT_EQ(a.rasLog, b.rasLog);
  EXPECT_EQ(a.coredumps, b.coredumps);
  // The composition actually exercised the new plane.
  EXPECT_GT(a.ueFatals + a.hangFatals + a.eccScrubbed, 0u);
}

// --- slow lane: multi-seed sweep -----------------------------------------

TEST(ComputeFaultsSlow, MultiSeedSweep) {
  if (std::getenv("COMPUTE_FAULTS_SLOW") == nullptr) {
    GTEST_SKIP() << "slow lane only (ctest -C slow -L slow)";
  }
  const int seeds = static_cast<int>(envU64("COMPUTE_FAULTS_SEEDS", 8));
  for (int s = 1; s <= seeds; ++s) {
    FaultStreamParams p;
    p.seed = static_cast<std::uint64_t>(s);
    p.jobs = 60;
    p.memUes = 2;
    p.ceStorms = 2;
    p.coreHangs = 1;
    p.svcCrashes = 1;
    p.nodeDeaths = 1;
    p.warnStorms = 1;
    const FaultStreamOutcome a = runFaultStream(p);
    const FaultStreamOutcome b = runFaultStream(p);
    EXPECT_EQ(a.hash, b.hash) << "seed " << s << " schedule diverged";
    EXPECT_EQ(a.rasLog, b.rasLog) << "seed " << s << " RAS log diverged";
    EXPECT_EQ(a.coredumps, b.coredumps)
        << "seed " << s << " coredump bytes diverged";
  }
}

}  // namespace
}  // namespace bg

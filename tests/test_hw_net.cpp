// Unit tests: collective tree, 3-D torus + DMA, global barrier net.
#include <gtest/gtest.h>

#include "hw/barrier_net.hpp"
#include "hw/collective.hpp"
#include "hw/machine.hpp"
#include "hw/torus.hpp"

namespace bg::hw {
namespace {

// ---------------- Collective ----------------

TEST(Collective, DeliversPacketAfterLatency) {
  sim::Engine eng;
  CollectiveConfig cfg;
  CollectiveNet net(eng, cfg);
  bool got = false;
  sim::Cycle at = 0;
  net.setHandler(5, [&](CollPacket&& p) {
    got = true;
    at = eng.now();
    EXPECT_EQ(p.srcNode, 1);
    EXPECT_EQ(p.payload.size(), 100u);
  });
  CollPacket p;
  p.srcNode = 1;
  p.dstNode = 5;
  p.payload.resize(100);
  net.send(std::move(p));
  eng.run();
  EXPECT_TRUE(got);
  // serialization (100/0.8 = 125) + 4 hops * 250.
  EXPECT_EQ(at, 125u + 1000u);
}

TEST(Collective, UplinkSerializesBackToBackSends) {
  sim::Engine eng;
  CollectiveNet net(eng, {});
  std::vector<sim::Cycle> arrivals;
  net.setHandler(2, [&](CollPacket&&) { arrivals.push_back(eng.now()); });
  for (int i = 0; i < 2; ++i) {
    CollPacket p;
    p.srcNode = 1;
    p.dstNode = 2;
    p.payload.resize(800);  // 1000 cycles serialization each
    net.send(std::move(p));
  }
  eng.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[1] - arrivals[0], 1000u);
}

TEST(Collective, ReductionSumsContributionsFromAll) {
  sim::Engine eng;
  CollectiveNet net(eng, {});
  std::vector<double> r0, r1;
  net.contribute(9, 0, {1.5, 2.0}, 2,
                 [&](const std::vector<double>& v) { r0 = v; });
  EXPECT_TRUE(r0.empty());  // waits for the last contributor
  net.contribute(9, 1, {0.5, 3.0}, 2,
                 [&](const std::vector<double>& v) { r1 = v; });
  eng.run();
  ASSERT_EQ(r0.size(), 2u);
  EXPECT_DOUBLE_EQ(r0[0], 2.0);
  EXPECT_DOUBLE_EQ(r0[1], 5.0);
  EXPECT_EQ(r0, r1);
}

TEST(Collective, ReductionCompletesRelativeToLastArrival) {
  sim::Engine eng;
  CollectiveNet net(eng, {});
  sim::Cycle done = 0;
  net.contribute(9, 0, {1.0}, 2, [&](const auto&) {});
  eng.runUntil(500'000);  // rank 1 is late (noise on its node)
  net.contribute(9, 1, {1.0}, 2,
                 [&](const auto&) { done = eng.now(); });
  eng.run();
  EXPECT_GE(done, 500'000u);  // everyone waits for the last rank
}

// ---------------- Torus ----------------

struct TorusFixture : ::testing::Test {
  TorusFixture() {
    hw::MachineConfig mc;
    mc.computeNodes = 8;  // 2x2x2
    machine = std::make_unique<Machine>(mc);
  }
  std::unique_ptr<Machine> machine;
};

TEST_F(TorusFixture, HopCountUsesWraparound) {
  TorusNet& t = machine->torus();
  EXPECT_EQ(t.hops(0, 0), 0);
  EXPECT_EQ(t.hops(0, 1), 1);   // +x
  EXPECT_EQ(t.hops(0, 7), 3);   // opposite corner of 2x2x2
}

TEST_F(TorusFixture, DmaPutMovesRealBytes) {
  TorusNet& t = machine->torus();
  machine->node(0).mem().write64(0x1000, 0xABCDEF);
  bool remote = false, local = false;
  t.dmaPut(0, 0x1000, 1, 0x2000, 8, [&] { remote = true; },
           [&] { local = true; });
  machine->engine().run();
  EXPECT_TRUE(remote);
  EXPECT_TRUE(local);
  EXPECT_EQ(machine->node(1).mem().read64(0x2000), 0xABCDEFu);
}

TEST_F(TorusFixture, DmaGetFetchesRemoteData) {
  TorusNet& t = machine->torus();
  machine->node(3).mem().write64(0x4000, 77);
  bool done = false;
  t.dmaGet(0, 0x1000, 3, 0x4000, 8, [&] { done = true; });
  machine->engine().run();
  EXPECT_TRUE(done);
  EXPECT_EQ(machine->node(0).mem().read64(0x1000), 77u);
}

TEST_F(TorusFixture, GetTakesLongerThanPut) {
  TorusNet& t = machine->torus();
  sim::Cycle putDone = 0, getDone = 0;
  t.dmaPut(0, 0, 1, 0, 64, [&] { putDone = machine->engine().now(); },
           nullptr);
  machine->engine().run();
  const sim::Cycle start = machine->engine().now();
  t.dmaGet(0, 0, 1, 0, 64, [&] { getDone = machine->engine().now(); });
  machine->engine().run();
  EXPECT_GT(getDone - start, putDone);  // request + response round trip
}

TEST_F(TorusFixture, PacketsDeliverToHandler) {
  TorusNet& t = machine->torus();
  int got = 0;
  t.setPacketHandler(2, [&](TorusPacket&& p) {
    ++got;
    EXPECT_EQ(p.tag, 0x7u);
  });
  TorusPacket p;
  p.srcNode = 0;
  p.dstNode = 2;
  p.tag = 0x7;
  p.payload.resize(32);
  t.sendPacket(std::move(p));
  machine->engine().run();
  EXPECT_EQ(got, 1);
}

TEST_F(TorusFixture, LinkContentionDelaysSecondTransfer) {
  TorusNet& t = machine->torus();
  sim::Cycle first = 0, second = 0;
  // Two large transfers over the same 0->1 link.
  t.dmaPut(0, 0, 1, 0x10000, 64 << 10,
           [&] { first = machine->engine().now(); }, nullptr);
  t.dmaPut(0, 0x8000, 1, 0x20000, 64 << 10,
           [&] { second = machine->engine().now(); }, nullptr);
  machine->engine().run();
  // Serialization of 64KB at 0.5 B/cyc is ~131072 cycles; the second
  // transfer queues behind the first on the shared link.
  EXPECT_GE(second - first, 100'000u);
}

TEST_F(TorusFixture, LocalLoopbackPutWorks) {
  TorusNet& t = machine->torus();
  machine->node(0).mem().write64(0x100, 5);
  bool done = false;
  t.dmaPut(0, 0x100, 0, 0x200, 8, [&] { done = true; }, nullptr);
  machine->engine().run();
  EXPECT_TRUE(done);
  EXPECT_EQ(machine->node(0).mem().read64(0x200), 5u);
}

// ---------------- Barrier ----------------

TEST(BarrierNet, ReleasesAllAtSameCycleAfterLast) {
  sim::Engine eng;
  BarrierNet bar(eng, {});
  bar.configureGroup(1, 3);
  std::vector<sim::Cycle> released(3, 0);
  bar.arrive(1, 0, [&] { released[0] = eng.now(); });
  eng.runUntil(100);
  bar.arrive(1, 1, [&] { released[1] = eng.now(); });
  eng.runUntil(900);
  bar.arrive(1, 2, [&] { released[2] = eng.now(); });
  eng.run();
  EXPECT_EQ(released[0], released[1]);
  EXPECT_EQ(released[1], released[2]);
  EXPECT_EQ(released[2], 900u + BarrierConfig{}.latency);
  EXPECT_EQ(bar.barriersCompleted(), 1u);
}

TEST(BarrierNet, ReusableForConsecutiveBarriers) {
  sim::Engine eng;
  BarrierNet bar(eng, {});
  bar.configureGroup(1, 2);
  int releases = 0;
  for (int round = 0; round < 3; ++round) {
    bar.arrive(1, 0, [&] { ++releases; });
    bar.arrive(1, 1, [&] { ++releases; });
    eng.run();
  }
  EXPECT_EQ(releases, 6);
  EXPECT_EQ(bar.barriersCompleted(), 3u);
}

TEST(BarrierNet, ResetClearsUnlessPersistent) {
  sim::Engine eng;
  BarrierNet volatileBar(eng, {});
  volatileBar.configureGroup(1, 2);
  const std::uint64_t configured = volatileBar.stateHash();
  volatileBar.resetArbiters();
  EXPECT_NE(volatileBar.stateHash(), configured);  // group state dropped

  BarrierNet persistentBar(eng, {});
  persistentBar.configureGroup(1, 2);
  persistentBar.setPersistentAcrossReset(true);
  const std::uint64_t before = persistentBar.stateHash();
  persistentBar.resetArbiters();
  EXPECT_EQ(persistentBar.stateHash(), before);  // survives the reset
}

TEST(Machine, DerivesTorusDimensionsToFitNodes) {
  MachineConfig mc;
  mc.computeNodes = 12;
  Machine m(mc);
  const auto& dims = m.config().torus.dims;
  EXPECT_GE(dims[0] * dims[1] * dims[2], 12);
}

TEST(Machine, IoNodeMappingGroupsByPset) {
  MachineConfig mc;
  mc.computeNodes = 8;
  mc.ioNodes = 2;
  mc.computeNodesPerIoNode = 4;
  Machine m(mc);
  EXPECT_EQ(m.ioNodeIndexFor(0), 0);
  EXPECT_EQ(m.ioNodeIndexFor(3), 0);
  EXPECT_EQ(m.ioNodeIndexFor(4), 1);
  EXPECT_EQ(m.ioNodeNetIdFor(4), kIoNodeIdBase + 1);
}

}  // namespace
}  // namespace bg::hw

// Integration tests: the workload applications (FWQ, LINPACK proxy,
// allreduce bench, OpenMP-phase app, UMT proxy, checkpoint I/O kernel).
#include <gtest/gtest.h>

#include "apps/allreduce.hpp"
#include "apps/fwq.hpp"
#include "apps/io_kernel.hpp"
#include "apps/linpack.hpp"
#include "apps/omp_app.hpp"
#include "apps/umt_proxy.hpp"
#include "cluster_test_util.hpp"

namespace bg {
namespace {

TEST(FwqApp, ProducesRequestedSamplesPerThread) {
  rt::ClusterConfig cfg;
  rt::Cluster cluster(cfg);
  ASSERT_TRUE(cluster.bootAll());
  apps::FwqParams fp;
  fp.samples = 25;
  kernel::JobSpec job;
  job.exe = apps::fwqImage(fp);
  std::vector<std::vector<std::uint64_t>> s(4);
  for (int i = 0; i < 4; ++i) cluster.attachSamples(0, i, &s[i]);
  ASSERT_TRUE(cluster.loadJob(job));
  ASSERT_TRUE(cluster.run());
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(s[i].size(), 25u) << "thread " << i;
    for (auto v : s[i]) {
      EXPECT_GT(v, 600'000u);
      EXPECT_LT(v, 700'000u);
    }
  }
}

TEST(FwqApp, CnkSamplesAreFlat) {
  rt::ClusterConfig cfg;
  rt::Cluster cluster(cfg);
  ASSERT_TRUE(cluster.bootAll());
  apps::FwqParams fp;
  fp.samples = 50;
  kernel::JobSpec job;
  job.exe = apps::fwqImage(fp);
  std::vector<std::uint64_t> s;
  cluster.attachSamples(0, 0, &s);
  ASSERT_TRUE(cluster.loadJob(job));
  ASSERT_TRUE(cluster.run());
  const auto [mn, mx] = std::minmax_element(s.begin(), s.end());
  // Paper: maximum variation < 0.006%.
  EXPECT_LT(static_cast<double>(*mx - *mn) / static_cast<double>(*mn),
            0.0001);
}

TEST(FwqApp, FwkSamplesShowNoise) {
  rt::ClusterConfig cfg;
  cfg.kernel = rt::KernelKind::kFwk;
  rt::Cluster cluster(cfg);
  ASSERT_TRUE(cluster.bootAll());
  apps::FwqParams fp;
  fp.samples = 400;
  kernel::JobSpec job;
  job.exe = apps::fwqImage(fp);
  std::vector<std::uint64_t> s;
  cluster.attachSamples(0, 0, &s);
  ASSERT_TRUE(cluster.loadJob(job));
  ASSERT_TRUE(cluster.run());
  const auto [mn, mx] = std::minmax_element(s.begin(), s.end());
  // Paper: >5% spread on the noisy cores.
  EXPECT_GT(static_cast<double>(*mx - *mn) / static_cast<double>(*mn),
            0.01);
}

TEST(LinpackApp, ReportsOneTotalPerRank) {
  rt::ClusterConfig cfg;
  cfg.computeNodes = 2;
  rt::Cluster cluster(cfg);
  ASSERT_TRUE(cluster.bootAll());
  apps::LinpackParams lp;
  lp.phases = 6;
  kernel::JobSpec job;
  job.exe = apps::linpackImage(lp);
  std::vector<std::uint64_t> s0, s1;
  cluster.attachSamples(0, 0, &s0);
  cluster.attachSamples(1, 0, &s1);
  ASSERT_TRUE(cluster.loadJob(job));
  ASSERT_TRUE(cluster.run());
  ASSERT_EQ(s0.size(), 1u);
  ASSERT_EQ(s1.size(), 1u);
  EXPECT_GT(s0[0], 6u * lp.computePerPhase);
}

TEST(AllreduceApp, SamplesPerIterationAndConsistentResults) {
  rt::ClusterConfig cfg;
  cfg.computeNodes = 4;
  rt::Cluster cluster(cfg);
  ASSERT_TRUE(cluster.bootAll());
  apps::AllreduceParams ap;
  ap.iterations = 10;
  kernel::JobSpec job;
  job.exe = apps::allreduceImage(ap);
  std::vector<std::vector<std::uint64_t>> s(4);
  for (int i = 0; i < 4; ++i) cluster.attachSamples(i, 0, &s[i]);
  ASSERT_TRUE(cluster.loadJob(job));
  ASSERT_TRUE(cluster.run());
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(s[i].size(), 10u);
  }
  // Every rank must read back the same combined value.
  kernel::Process* p0 = cluster.processOfRank(0);
  kernel::Process* p3 = cluster.processOfRank(3);
  std::uint64_t v0 = 0, v3 = 0;
  cluster.kernelOn(0).copyFromUser(
      *p0, p0->heapBase + 4096, std::as_writable_bytes(std::span(&v0, 1)));
  cluster.kernelOn(3).copyFromUser(
      *p3, p3->heapBase + 4096, std::as_writable_bytes(std::span(&v3, 1)));
  EXPECT_EQ(v0, v3);
  EXPECT_NE(v0, 0u);
}

TEST(OmpApp, SmpModeBuildsFullTeams) {
  rt::ClusterConfig cfg;
  rt::Cluster cluster(cfg);
  ASSERT_TRUE(cluster.bootAll());
  apps::OmpAppParams op;
  op.phases = 2;
  op.ompThreads = 4;
  kernel::JobSpec job;
  job.exe = apps::ompAppImage(op);
  std::vector<std::uint64_t> s;
  cluster.attachSamples(0, 0, &s);
  ASSERT_TRUE(cluster.loadJob(job));
  ASSERT_TRUE(cluster.run());
  ASSERT_EQ(s.size(), 2u);  // one sample per phase
  EXPECT_EQ(s[0], 3u);      // 3 workers created (+ master = team of 4)
  EXPECT_EQ(s[1], 3u);
}

TEST(OmpApp, VnModeTeamsAreClippedWithoutExtension) {
  // 4 processes per node: each owns one core (3 slots). A 6-thread
  // team request yields at most 2 extra workers (§VIII motivation).
  rt::ClusterConfig cfg;
  rt::Cluster cluster(cfg);
  ASSERT_TRUE(cluster.bootAll());
  apps::OmpAppParams op;
  op.phases = 1;
  op.ompThreads = 6;
  kernel::JobSpec job;
  job.processes = 4;
  job.exe = apps::ompAppImage(op);
  std::vector<std::uint64_t> s;
  cluster.attachSamples(0, 0, &s);
  ASSERT_TRUE(cluster.loadJob(job));
  ASSERT_TRUE(cluster.run());
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0], 2u);
}

TEST(UmtApp, DlopenThreadsAndOutputFile) {
  rt::ClusterConfig cfg;
  rt::Cluster cluster(cfg);
  ASSERT_TRUE(cluster.bootAll());
  apps::UmtParams up;
  kernel::JobSpec job;
  job.exe = apps::umtImage(up);
  job.libs = apps::umtLibraries(up);
  std::vector<std::uint64_t> s;
  cluster.attachSamples(0, 0, &s);
  ASSERT_TRUE(cluster.loadJob(job));
  ASSERT_TRUE(cluster.run());
  ASSERT_EQ(s.size(), 3u);
  EXPECT_GT(s[0], 0u);                      // dlopen phase took time
  EXPECT_GT(s[1], up.computeCycles);        // compute phase ran
  EXPECT_EQ(s[2], up.outputBytes);          // file written via fship
  EXPECT_TRUE(cluster.ioRootFs(0).exists("/tmp/umt.out"));
  // Both libraries got loaded.
  kernel::Process* p = cluster.processOfRank(0);
  EXPECT_EQ(cluster.cnkOn(0)->linker().loadedCount(p->pid()), 2u);
}

TEST(UmtApp, CnkFrontLoadsCostFwkSmearsIt) {
  // The design contrast of §IV-B2 measured end to end: CNK pays at
  // dlopen (phase 0 slow, compute clean); the FWK's dlopen is instant
  // but its compute phase pays remote page faults.
  auto run = [&](rt::KernelKind kind) {
    rt::ClusterConfig cfg;
    cfg.kernel = kind;
    rt::Cluster cluster(cfg);
    EXPECT_TRUE(cluster.bootAll());
    apps::UmtParams up;
    kernel::JobSpec job;
    job.exe = apps::umtImage(up);
    job.libs = apps::umtLibraries(up);
    std::vector<std::uint64_t> s;
    cluster.attachSamples(0, 0, &s);
    EXPECT_TRUE(cluster.loadJob(job));
    EXPECT_TRUE(cluster.run());
    return s;
  };
  const auto cnk = run(rt::KernelKind::kCnk);
  const auto fwk = run(rt::KernelKind::kFwk);
  ASSERT_EQ(cnk.size(), 3u);
  ASSERT_EQ(fwk.size(), 3u);
  EXPECT_GT(cnk[0], fwk[0]);  // CNK dlopen phase is the expensive one
  EXPECT_GT(fwk[1], cnk[1]);  // FWK compute phase pays the lazy faults
}

TEST(IoKernelApp, WritesAndVerifiesPerRankFiles) {
  rt::ClusterConfig cfg;
  cfg.computeNodes = 2;
  rt::Cluster cluster(cfg);
  ASSERT_TRUE(cluster.bootAll());
  apps::IoKernelParams ip;
  kernel::JobSpec job;
  job.exe = apps::ioKernelImage(ip);
  std::vector<std::vector<std::uint64_t>> s(2);
  cluster.attachSamples(0, 0, &s[0]);
  cluster.attachSamples(1, 0, &s[1]);
  ASSERT_TRUE(cluster.loadJob(job));
  ASSERT_TRUE(cluster.run());
  for (int rank = 0; rank < 2; ++rank) {
    ASSERT_EQ(s[rank].size(), 3u);
    EXPECT_GE(static_cast<std::int64_t>(s[rank][0]), 3);   // open ok
    EXPECT_GT(s[rank][1], 0u);                             // write time
    EXPECT_EQ(s[rank][2], ip.chunkBytes);                  // read back
  }
  EXPECT_TRUE(cluster.ioRootFs(0).exists("/tmp/ckpt.0"));
  EXPECT_TRUE(cluster.ioRootFs(0).exists("/tmp/ckpt.1"));
  const auto f0 = cluster.ioRootFs(0).fileContents("/tmp/ckpt.0");
  EXPECT_EQ(f0.size(),
            static_cast<std::size_t>(ip.chunks) * ip.chunkBytes);
}

}  // namespace
}  // namespace bg

// Unit + property tests: CNK's static memory partitioner (paper §IV-C,
// Fig 3). The parameterized sweep checks the partition invariants over
// a grid of process counts and segment sizes.
#include <gtest/gtest.h>

#include "cnk/partitioner.hpp"

namespace bg::cnk {
namespace {

PartitionRequest baseRequest() {
  PartitionRequest req;
  req.physBase = 16ULL << 20;
  req.physSize = 464ULL << 20;
  req.processes = 1;
  req.textBytes = 1 << 20;
  req.dataBytes = 1 << 20;
  req.sharedBytes = 0;
  return req;
}

TEST(PickPageSize, PrefersSmallestThatFitsBudget) {
  EXPECT_EQ(pickPageSize(1 << 20, 8), hw::kPage1M);
  EXPECT_EQ(pickPageSize(8ULL << 20, 8), hw::kPage1M);
  EXPECT_EQ(pickPageSize(9ULL << 20, 8), hw::kPage16M);
  EXPECT_EQ(pickPageSize(128ULL << 20, 8), hw::kPage16M);
  EXPECT_EQ(pickPageSize(129ULL << 20, 8), hw::kPage256M);
  EXPECT_EQ(pickPageSize(2ULL << 30, 8), hw::kPage256M);
  EXPECT_EQ(pickPageSize(3ULL << 30, 8), hw::kPage1G);
  EXPECT_EQ(pickPageSize(0, 8), hw::kPage1M);  // empty fits anywhere
}

TEST(PickPageSize, ReturnsZeroWhenNothingFits) {
  // > 8 GB in one tile of 1GB pages with budget 8 fails.
  EXPECT_EQ(pickPageSize(9ULL << 30, 8), 0u);
}

TEST(Partitioner, BasicLayoutHasFourOrderedRegions) {
  auto req = baseRequest();
  req.sharedBytes = 4 << 20;
  const PartitionResult res = partitionMemory(req);
  ASSERT_TRUE(res.ok) << res.error;
  ASSERT_EQ(res.procs.size(), 1u);
  const ProcLayout& l = res.procs[0];
  EXPECT_EQ(l.text.vbase, kTextVBase);
  EXPECT_GT(l.data.vbase, l.text.vbase);
  EXPECT_GT(l.heapStack.vbase, l.data.vbase);
  EXPECT_EQ(l.shared.vbase, kSharedVBase);
}

TEST(Partitioner, TextIsWritableByDesign) {
  // Lightweight philosophy: no memory protection (§IV-B2, Table II).
  const PartitionResult res = partitionMemory(baseRequest());
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.procs[0].text.perms & hw::kPermW, hw::kPermW);
  EXPECT_EQ(res.procs[0].text.perms & hw::kPermX, hw::kPermX);
}

TEST(Partitioner, RejectsBadProcessCounts) {
  auto req = baseRequest();
  req.processes = 0;
  EXPECT_FALSE(partitionMemory(req).ok);
  req.processes = 5;
  EXPECT_FALSE(partitionMemory(req).ok);
}

TEST(Partitioner, RejectsZeroMemory) {
  auto req = baseRequest();
  req.physSize = 0;
  EXPECT_FALSE(partitionMemory(req).ok);
}

TEST(Partitioner, SharedRegionIdenticalAcrossProcesses) {
  auto req = baseRequest();
  req.processes = 4;
  req.sharedBytes = 8 << 20;
  const PartitionResult res = partitionMemory(req);
  ASSERT_TRUE(res.ok) << res.error;
  for (const ProcLayout& l : res.procs) {
    EXPECT_EQ(l.shared.pbase, res.procs[0].shared.pbase);
    EXPECT_EQ(l.shared.vbase, res.procs[0].shared.vbase);
  }
}

TEST(Partitioner, WasteIsAccounted) {
  // Odd-sized text forces rounding waste (paper §VII-B: "the memory
  // subsystem may waste physical memory as large pages are tiled").
  auto req = baseRequest();
  req.textBytes = (1 << 20) + 1;
  const PartitionResult res = partitionMemory(req);
  ASSERT_TRUE(res.ok);
  EXPECT_GE(res.wastedBytes, (1ULL << 20) - 1);
}

TEST(Partitioner, TlbEntriesForExpandsTiles) {
  kernel::MemRegionDesc r;
  r.vbase = 0x10000000;
  r.pbase = 0x20000000;
  r.size = 3ULL << 20;
  r.perms = hw::kPermRW;
  r.pageSize = hw::kPage1M;
  const auto entries = tlbEntriesFor(r, 7);
  ASSERT_EQ(entries.size(), 3u);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].pid, 7u);
    EXPECT_EQ(entries[i].vaddr, r.vbase + i * hw::kPage1M);
    EXPECT_EQ(entries[i].paddr, r.pbase + i * hw::kPage1M);
    EXPECT_TRUE(entries[i].valid);
  }
}

// ---- property sweep: invariants over process counts and sizes ----

struct SweepParam {
  int processes;
  std::uint64_t textMB;
  std::uint64_t dataMB;
  std::uint64_t sharedMB;
  std::uint64_t physMB;
};

class PartitionSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PartitionSweep, Invariants) {
  const SweepParam p = GetParam();
  PartitionRequest req;
  req.physBase = 16ULL << 20;
  req.physSize = p.physMB << 20;
  req.processes = p.processes;
  req.textBytes = p.textMB << 20;
  req.dataBytes = p.dataMB << 20;
  req.sharedBytes = p.sharedMB << 20;
  const PartitionResult res = partitionMemory(req);
  ASSERT_TRUE(res.ok) << res.error;
  ASSERT_EQ(res.procs.size(), static_cast<std::size_t>(p.processes));

  // Invariant: the whole map fits the TLB budget.
  EXPECT_LE(res.tlbEntriesPerProcess, req.tlbBudget);
  // Invariant: physical use stays inside the window.
  EXPECT_LE(res.physUsed, req.physSize);

  std::vector<std::pair<std::uint64_t, std::uint64_t>> physRanges;
  for (const ProcLayout& l : res.procs) {
    for (const kernel::MemRegionDesc* r :
         {&l.text, &l.data, &l.heapStack}) {
      ASSERT_GT(r->size, 0u);
      // Invariant: virtual and physical bases aligned to the page size.
      EXPECT_EQ(r->vbase % r->pageSize, 0u) << r->name;
      EXPECT_EQ(r->pbase % r->pageSize, 0u) << r->name;
      // Invariant: region sizes are whole pages.
      EXPECT_EQ(r->size % r->pageSize, 0u) << r->name;
      // Invariant: requested bytes are covered.
      physRanges.emplace_back(r->pbase, r->pbase + r->size);
    }
    EXPECT_GE(l.text.size, req.textBytes);
    EXPECT_GE(l.data.size, req.dataBytes);
    if (req.sharedBytes > 0) {
      EXPECT_GE(l.shared.size, req.sharedBytes);
    }
  }

  // Invariant: no two physical ranges overlap (shared excluded — it is
  // intentionally aliased).
  std::sort(physRanges.begin(), physRanges.end());
  for (std::size_t i = 1; i < physRanges.size(); ++i) {
    EXPECT_LE(physRanges[i - 1].second, physRanges[i].first);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, PartitionSweep,
    ::testing::Values(SweepParam{1, 1, 1, 0, 464},
                      SweepParam{1, 1, 1, 16, 464},
                      SweepParam{2, 1, 2, 8, 464},
                      SweepParam{4, 1, 1, 4, 464},
                      SweepParam{4, 2, 4, 0, 464},
                      SweepParam{1, 16, 64, 0, 1024},
                      SweepParam{2, 8, 8, 32, 1024},
                      SweepParam{1, 1, 1, 0, 3500},
                      SweepParam{4, 1, 1, 16, 3500}));

}  // namespace
}  // namespace bg::cnk

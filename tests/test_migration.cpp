// Torus hard-fault plane, service-node half: the RAS link-health
// predictor escalating to checkpoint-then-migrate.
//
//  - a link death under a running job opens a checkpoint window; every
//    node commits, the job is requeued with no retry charge, and its
//    relaunch restores onto link-healthy nodes — producing the same
//    final answer as an uninterrupted run (the migration resume
//    oracle);
//  - when no link-healthy capacity is left the job keeps running where
//    it is, in degraded route-around mode (counted, never killed);
//  - a CRC-retry storm below ras.linkSickThreshold is ignored; one
//    crossing it trips the predictor exactly like a hard death;
//  - a seeded link-death/storm jobstream — and a composed stream with
//    every prior fault plane layered on top — replays bit-identically
//    (schedule hash + decision timeline) across double runs;
//  - MIGRATION_SLOW=1 unlocks the multi-seed composed sweep.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "cluster_test_util.hpp"
#include "fault_schedule.hpp"
#include "kernel/syscalls.hpp"
#include "sim/rng.hpp"
#include "svc/failover.hpp"

namespace bg {
namespace {

using test::emitExit;

std::int64_t sys(kernel::Sys s) { return static_cast<std::int64_t>(s); }

/// One long accumulate loop with the answer sampled at the end: the
/// final sample requires every iteration to have executed exactly once,
/// whether the job ran straight through or was checkpointed mid-loop
/// and restored on a different node.
vm::Program migApp(std::int64_t reps) {
  vm::ProgramBuilder b("mig-app");
  b.li(20, 0);
  const auto top = b.loopBegin(21, reps);
  b.compute(10'000);
  b.addi(20, 20, 5);
  b.loopEnd(21, top);
  b.sample(20);
  emitExit(b);
  return std::move(b).build();
}

/// ckptApp twin from test_ckpt: two compute phases split by an
/// application-initiated ckpt_save (used by the composed sweep so half
/// the stream checkpoints on its own).
vm::Program ckptApp(std::int64_t reps1, std::int64_t reps2) {
  vm::ProgramBuilder b("ckpt-app");
  b.li(20, 0);
  const auto top1 = b.loopBegin(21, reps1);
  b.compute(2'000);
  b.addi(20, 20, 7);
  b.loopEnd(21, top1);
  b.syscall(sys(kernel::Sys::kCkptSave));
  b.sample(0);
  const auto top2 = b.loopBegin(21, reps2);
  b.compute(2'000);
  b.addi(20, 20, 3);
  b.loopEnd(21, top2);
  b.sample(20);
  emitExit(b);
  return std::move(b).build();
}

std::shared_ptr<kernel::ElfImage> workImage(const std::string& name,
                                            std::uint64_t reps,
                                            std::uint64_t cyclesPerRep) {
  vm::ProgramBuilder b(name);
  const auto top = b.loopBegin(16, static_cast<std::int64_t>(reps));
  b.compute(cyclesPerRep);
  b.loopEnd(16, top);
  b.halt(0);
  return kernel::ElfImage::makeExecutable(name, std::move(b).build());
}

int countNotes(const svc::ServiceNode& sn, const char* what) {
  int n = 0;
  for (const std::string& line : sn.timeline()) {
    if (line.find(what) != std::string::npos) ++n;
  }
  return n;
}

// ---------------------------------------------------------------------
// Migration resume oracle
// ---------------------------------------------------------------------

struct MigRun {
  bool drained = false;
  std::vector<std::uint64_t> samples;  // rank 0's sample sink
  std::uint64_t migrateRequests = 0;
  std::uint64_t migrateCommits = 0;
  std::uint64_t migrations = 0;
  std::uint64_t migrateFallbacks = 0;
  std::uint64_t degradedJobs = 0;
  std::uint64_t migrateCyclesSaved = 0;
  std::uint64_t ckptResumes = 0;
  std::vector<std::uint64_t> restoresByNode;
  svc::JobState state = svc::JobState::kQueued;
  int attempts = 0;
  bool node0Sick = false;
};

/// One 2-node job on an 8-node (2x2x2 torus) machine; optionally a hard
/// directed-link death on node 0 mid-run. Migration armed either way.
MigRun runLinkDeathJob(bool withLinkDeath) {
  rt::ClusterConfig cfg;
  cfg.computeNodes = 8;
  cfg.seed = 41;
  rt::Cluster cluster(cfg);

  svc::ServiceNodeConfig snCfg;
  snCfg.migrate.enabled = true;
  snCfg.migrate.deadlineCycles = 2'000'000;
  svc::ServiceHost host(cluster, snCfg);

  MigRun out;
  cluster.attachSamples(0, 0, &out.samples);

  svc::JobDesc jd;
  jd.name = "mig";
  jd.nodes = 2;
  jd.exe = kernel::ElfImage::makeExecutable("mig", migApp(600));
  jd.estCycles = 6'200'000;
  int arrived = 0;
  cluster.engine().scheduleAt(10'000, [&host, jd, &arrived]() mutable {
    host.submit(std::move(jd));
    ++arrived;
  });
  if (withLinkDeath) {
    cluster.engine().scheduleAt(1'000'000, [&cluster, &host] {
      cluster.machine().torus().killLink(0, 0, true);
      if (host.alive()) host.node().poke();
    });
  }

  host.start();
  out.drained = cluster.engine().runWhile(
      [&] { return arrived == 1 && host.drained(); }, 2'000'000'000);
  svc::ServiceNode& sn = host.node();
  out.migrateRequests = sn.migrateRequests();
  out.migrateCommits = sn.migrateCommits();
  out.migrations = sn.migrations();
  out.migrateFallbacks = sn.migrateFallbacks();
  out.degradedJobs = sn.degradedJobs();
  out.migrateCyclesSaved = sn.migrateCyclesSaved();
  out.ckptResumes = sn.ckptResumes();
  out.node0Sick = sn.linkSick(0);
  for (int n = 0; n < 8; ++n) {
    out.restoresByNode.push_back(cluster.cnkOn(n)->ckptRestores());
  }
  EXPECT_EQ(sn.jobs().size(), 1u);
  if (!sn.jobs().empty()) {
    out.state = sn.jobs()[0].state;
    out.attempts = sn.jobs()[0].attempts;
  }
  if (withLinkDeath) {
    EXPECT_EQ(countNotes(sn, "link_sick"), 1);
    EXPECT_EQ(countNotes(sn, "migrate_req"), 1);
    EXPECT_EQ(countNotes(sn, "migrate_commit"), 1);
    EXPECT_EQ(countNotes(sn, "resume"), 1);
  }
  return out;
}

TEST(MigrationSvc, LinkDeathMigratesOntoHealthyNodesSameFinalAnswer) {
  const MigRun faulted = runLinkDeathJob(/*withLinkDeath=*/true);
  const MigRun clean = runLinkDeathJob(/*withLinkDeath=*/false);

  ASSERT_TRUE(faulted.drained);
  ASSERT_TRUE(clean.drained);
  EXPECT_EQ(faulted.state, svc::JobState::kCompleted);

  // The resume oracle: the migrated job's final answer is the
  // uninterrupted run's, emitted exactly once.
  ASSERT_EQ(clean.samples.size(), 1u);
  EXPECT_EQ(clean.samples[0], 600u * 5);
  EXPECT_EQ(faulted.samples, clean.samples) << "migration oracle violated";

  // Exactly one predictor trip -> one committed window -> one
  // migration, with the whole first attempt's progress preserved.
  EXPECT_EQ(faulted.migrateRequests, 1u);
  EXPECT_EQ(faulted.migrateCommits, 1u);
  EXPECT_EQ(faulted.migrations, 1u);
  EXPECT_EQ(faulted.migrateFallbacks, 0u);
  EXPECT_EQ(faulted.degradedJobs, 0u);
  EXPECT_GT(faulted.migrateCyclesSaved, 0u);
  EXPECT_TRUE(faulted.node0Sick);
  EXPECT_EQ(faulted.attempts, 2) << "migration relaunches once";

  // The relaunch really restored (not a silent scratch start), and it
  // did so off the sick node: node 0 never applied an image.
  EXPECT_EQ(faulted.ckptResumes, 1u);
  std::uint64_t restores = 0;
  for (std::uint64_t r : faulted.restoresByNode) restores += r;
  EXPECT_EQ(restores, 2u) << "both ranks of the relaunch must restore";
  EXPECT_EQ(faulted.restoresByNode[0], 0u)
      << "healthy-preferred allocation must steer off the sick node";

  // The clean twin never touched the migration plane.
  EXPECT_EQ(clean.migrateRequests, 0u);
  EXPECT_EQ(clean.migrations, 0u);
  EXPECT_EQ(clean.ckptResumes, 0u);
  EXPECT_EQ(clean.attempts, 1);
}

// ---------------------------------------------------------------------
// Degraded route-around mode (no healthy capacity)
// ---------------------------------------------------------------------

TEST(MigrationSvc, NoHealthyCapacityLeavesJobRunningDegraded) {
  rt::ClusterConfig cfg;
  cfg.computeNodes = 8;
  cfg.seed = 42;
  rt::Cluster cluster(cfg);

  svc::ServiceNodeConfig snCfg;
  snCfg.migrate.enabled = true;
  svc::ServiceHost host(cluster, snCfg);

  // The job owns the whole machine: once one of its nodes is
  // link-sick, only 7 healthy nodes can ever be assembled, so the
  // predictor must fall back to degraded mode instead of migrating.
  svc::JobDesc jd;
  jd.name = "wide";
  jd.nodes = 8;
  jd.exe = workImage("wide", 600, 10'000);
  jd.estCycles = 6'200'000;
  int arrived = 0;
  cluster.engine().scheduleAt(10'000, [&host, jd, &arrived]() mutable {
    host.submit(std::move(jd));
    ++arrived;
  });
  cluster.engine().scheduleAt(1'000'000, [&cluster, &host] {
    cluster.machine().torus().killLink(3, 1, false);
    if (host.alive()) host.node().poke();
  });

  host.start();
  ASSERT_TRUE(cluster.engine().runWhile(
      [&] { return arrived == 1 && host.drained(); }, 2'000'000'000));

  svc::ServiceNode& sn = host.node();
  EXPECT_EQ(sn.migrateRequests(), 0u);
  EXPECT_EQ(sn.migrations(), 0u);
  EXPECT_EQ(sn.degradedJobs(), 1u);
  EXPECT_TRUE(sn.linkSick(3));
  EXPECT_EQ(countNotes(sn, "degraded_mode"), 1);
  ASSERT_EQ(sn.jobs().size(), 1u);
  EXPECT_EQ(sn.jobs()[0].state, svc::JobState::kCompleted)
      << "degraded mode must never kill the job";
  EXPECT_EQ(sn.jobs()[0].attempts, 1) << "no requeue in degraded mode";
}

// ---------------------------------------------------------------------
// CRC-retry storm predictor thresholds
// ---------------------------------------------------------------------

struct StormRun {
  std::uint64_t migrateRequests = 0;
  std::uint64_t migrations = 0;
  std::size_t sickNodes = 0;
  bool completed = false;
};

StormRun runStormJob(std::uint32_t threshold, int burst) {
  rt::ClusterConfig cfg;
  cfg.computeNodes = 8;
  cfg.seed = 43;
  rt::Cluster cluster(cfg);

  svc::ServiceNodeConfig snCfg;
  snCfg.migrate.enabled = true;
  snCfg.migrate.deadlineCycles = 2'000'000;
  snCfg.ras.linkSickThreshold = threshold;
  svc::ServiceHost host(cluster, snCfg);

  svc::JobDesc jd;
  jd.name = "storm";
  jd.nodes = 2;
  jd.exe = workImage("storm", 600, 10'000);
  jd.estCycles = 6'200'000;
  int arrived = 0;
  cluster.engine().scheduleAt(10'000, [&host, jd, &arrived]() mutable {
    host.submit(std::move(jd));
    ++arrived;
  });
  testing::FaultSchedule faults;
  faults.linkStorm(/*node=*/0, /*dim=*/0, /*positive=*/true,
                   /*at=*/1'000'000, burst);
  faults.arm(cluster, host);

  host.start();
  StormRun out;
  out.completed = cluster.engine().runWhile(
      [&] { return arrived == 1 && host.drained(); }, 2'000'000'000);
  svc::ServiceNode& sn = host.node();
  out.migrateRequests = sn.migrateRequests();
  out.migrations = sn.migrations();
  out.sickNodes = sn.linkSickCount();
  return out;
}

TEST(MigrationSvc, CrcStormCrossingThresholdTriggersMigrate) {
  const StormRun r = runStormJob(/*threshold=*/6, /*burst=*/8);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.migrateRequests, 1u);
  EXPECT_EQ(r.migrations, 1u);
  EXPECT_EQ(r.sickNodes, 1u);
}

TEST(MigrationSvc, CrcStormBelowThresholdIsIgnored) {
  const StormRun r = runStormJob(/*threshold=*/6, /*burst=*/4);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.migrateRequests, 0u);
  EXPECT_EQ(r.migrations, 0u);
  EXPECT_EQ(r.sickNodes, 0u) << "a sub-threshold storm is background noise";
}

// ---------------------------------------------------------------------
// Seeded replay determinism (and the composed all-plane stream)
// ---------------------------------------------------------------------

struct SweepOutcome {
  std::uint64_t hash = 0;
  std::vector<std::string> timeline;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t migrateRequests = 0;
  std::uint64_t migrations = 0;
  std::uint64_t degradedJobs = 0;
  std::uint64_t detours = 0;
  std::uint64_t crcRetries = 0;
  std::uint64_t sickNodes = 0;
  bool drained = false;
};

/// Seeded jobstream on an 8-node (2x2x2) machine with migration armed.
/// `composed` layers every prior fault plane (node deaths, CE storms,
/// the ckpt torture trio, a control-plane crash aimed at a migrate
/// window) on top of the link faults.
SweepOutcome runMigrationSweep(std::uint64_t seed, int jobCount,
                               bool composed) {
  const int kNodes = 8;
  rt::ClusterConfig cfg;
  cfg.computeNodes = kNodes;
  cfg.seed = seed;
  // Tight fship reliability so CIOD deaths surface within the horizon.
  cfg.cnk.fship.requestTimeout = 20'000;
  cfg.cnk.fship.maxTimeout = 80'000;
  cfg.cnk.fship.maxRetries = 2;
  rt::Cluster cluster(cfg);

  svc::ServiceNodeConfig snCfg;
  snCfg.policy = svc::SchedPolicyKind::kFairShare;
  svc::AccountSpec low;
  low.name = "batch";
  low.qos = svc::Qos::kLow;
  svc::AccountSpec high;
  high.name = "urgent";
  high.qos = svc::Qos::kHigh;
  snCfg.fairshare.accounts = {low, high};
  snCfg.ckpt.onPreempt = true;
  snCfg.migrate.enabled = true;
  snCfg.ras.linkSickThreshold = 6;
  svc::ServiceHost host(cluster, snCfg);

  sim::Rng rng(seed, "migration-sweep");
  const sim::Cycle arrivalSpan = static_cast<sim::Cycle>(jobCount) * 60'000;
  struct Arrival {
    sim::Cycle at;
    svc::JobDesc jd;
  };
  std::vector<Arrival> arrivals;
  for (int i = 0; i < jobCount; ++i) {
    svc::JobDesc jd;
    jd.name = "m" + std::to_string(i);
    jd.nodes = 1 + static_cast<int>(rng.nextBelow(2));
    jd.account = static_cast<svc::AccountId>(1 + rng.nextBelow(2));
    const std::uint64_t reps = 20 + rng.nextBelow(200);
    if (rng.nextBelow(2) == 0) {
      jd.exe = kernel::ElfImage::makeExecutable(
          jd.name, ckptApp(static_cast<std::int64_t>(reps / 2),
                           static_cast<std::int64_t>(reps)));
    } else {
      jd.exe = workImage(jd.name, reps, 10'000);
    }
    jd.estCycles = reps * 10'000 + 50'000;
    jd.maxRetries = 3;
    arrivals.push_back({rng.nextBelow(arrivalSpan), std::move(jd)});
  }
  int arrived = 0;
  for (Arrival& a : arrivals) {
    cluster.engine().scheduleAt(a.at, [&host, &arrived, &a] {
      host.submit(std::move(a.jd));
      ++arrived;
    });
  }

  const sim::Cycle horizon = arrivalSpan + 3'000'000;
  const testing::FaultSchedule faults =
      composed
          ? testing::FaultSchedule::random(
                seed, kNodes, horizon, /*crashes=*/0, /*deaths=*/1,
                /*storms=*/0, /*ioDeaths=*/0, /*ioNodes=*/1, /*memUes=*/0,
                /*ceStorms=*/1, /*coreHangs=*/0, /*ckptIoCrashes=*/1,
                /*ckptUes=*/1, /*ckptSvcCrashes=*/0, /*linkDeaths=*/2,
                /*linkStorms=*/2, /*migrateSvcCrashes=*/1)
          : testing::FaultSchedule::random(
                seed, kNodes, horizon, /*crashes=*/0, /*deaths=*/0,
                /*storms=*/0, /*ioDeaths=*/0, /*ioNodes=*/1, /*memUes=*/0,
                /*ceStorms=*/0, /*coreHangs=*/0, /*ckptIoCrashes=*/0,
                /*ckptUes=*/0, /*ckptSvcCrashes=*/0, /*linkDeaths=*/2,
                /*linkStorms=*/1, /*migrateSvcCrashes=*/0);
  faults.arm(cluster, host);

  host.start();
  SweepOutcome out;
  out.drained = cluster.engine().runWhile(
      [&] { return arrived == jobCount && host.drained(); }, 3'000'000'000);
  const svc::SvcMetrics m = host.metrics();
  out.hash = m.scheduleHash;
  out.completed = m.jobsCompleted;
  out.failed = m.jobsFailed;
  out.migrateRequests = m.migrateRequests;
  out.migrations = m.migrations;
  out.degradedJobs = m.degradedJobs;
  out.detours = m.linkDetours;
  out.crcRetries = m.linkCrcRetries;
  out.sickNodes = m.linkSickNodes;
  if (host.alive()) out.timeline = host.node().timeline();

  EXPECT_TRUE(out.drained) << "stream wedged (seed " << seed << ")";
  EXPECT_EQ(out.completed + out.failed,
            static_cast<std::uint64_t>(jobCount))
      << "lost a job (seed " << seed << ")";
  return out;
}

void expectIdentical(const SweepOutcome& a, const SweepOutcome& b,
                     std::uint64_t seed) {
  EXPECT_EQ(a.hash, b.hash) << "seed " << seed;
  EXPECT_EQ(a.timeline, b.timeline) << "seed " << seed;
  EXPECT_EQ(a.migrateRequests, b.migrateRequests) << "seed " << seed;
  EXPECT_EQ(a.migrations, b.migrations) << "seed " << seed;
  EXPECT_EQ(a.degradedJobs, b.degradedJobs) << "seed " << seed;
  EXPECT_EQ(a.detours, b.detours) << "seed " << seed;
  EXPECT_EQ(a.crcRetries, b.crcRetries) << "seed " << seed;
}

TEST(MigrationSvc, SeededLinkFaultStreamReplaysBitIdentically) {
  const std::uint64_t seed = 1201;
  const SweepOutcome a = runMigrationSweep(seed, 24, /*composed=*/false);
  const SweepOutcome b = runMigrationSweep(seed, 24, /*composed=*/false);
  expectIdentical(a, b, seed);
  // Non-vacuity: the predictor really flagged nodes on this seed.
  EXPECT_GE(a.sickNodes, 1u);
}

TEST(MigrationSvc, ComposedAllPlaneStreamReplaysBitIdentically) {
  const std::uint64_t seed = 1301;
  const SweepOutcome a = runMigrationSweep(seed, 24, /*composed=*/true);
  const SweepOutcome b = runMigrationSweep(seed, 24, /*composed=*/true);
  expectIdentical(a, b, seed);
}

// ---------------------------------------------------------------------
// Multi-seed composed sweep (slow lane)
// ---------------------------------------------------------------------

TEST(MigrationSlow, MultiSeedComposedSweepReplaysBitIdentically) {
  if (std::getenv("MIGRATION_SLOW") == nullptr) {
    GTEST_SKIP() << "set MIGRATION_SLOW=1 (slow ctest lane) to run";
  }
  for (std::uint64_t seed = 1400; seed < 1408; ++seed) {
    const SweepOutcome a = runMigrationSweep(seed, 24, /*composed=*/true);
    const SweepOutcome b = runMigrationSweep(seed, 24, /*composed=*/true);
    expectIdentical(a, b, seed);
  }
}

}  // namespace
}  // namespace bg

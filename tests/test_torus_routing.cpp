// Property tests for the torus's fault-aware routing: seeded random
// torus shapes and dead-link sets, checked against an independent BFS
// oracle implemented here.
//
// Invariants pinned per (dims, dead-link set):
//  - hops(a, b) equals the oracle's shortest healthy directed path
//    (-1 iff unreachable) for every pair — the detour table really is
//    a pure function of the fault set;
//  - two machines given the same fault set agree on every hop count
//    (route-around determinism at the fabric level);
//  - a delivered packet's latency decomposes exactly into
//    serialization + hopLatency * hops(src, dst) + receive cost, so
//    the accounting a bench reports is the latency the app paid;
//  - hard link faults draw no RNG (pure state: the zero-fault witness
//    hash cannot move);
//  - an unreachable destination counts in unroutable() and a DMA put
//    aimed at it still drains the source injection FIFO;
//  - a degraded link charges exactly `retries` CRC rounds of
//    (serialization + 2 * hopLatency) extra latency per traversal.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "hw/machine.hpp"
#include "hw/torus.hpp"
#include "sim/rng.hpp"

namespace bg::hw {
namespace {

std::uint64_t key(int node, int dim, bool positive) {
  return (static_cast<std::uint64_t>(node) << 3) |
         (static_cast<std::uint64_t>(dim) << 1) | (positive ? 1u : 0u);
}

/// Independent BFS oracle over the healthy directed-link graph. Shares
/// nothing with TorusNet::routeFor except the link-key formula.
struct Oracle {
  std::array<int, 3> dims;
  std::set<std::uint64_t> dead;

  int total() const { return dims[0] * dims[1] * dims[2]; }

  std::array<int, 3> coords(int id) const {
    return {id % dims[0], (id / dims[0]) % dims[1],
            id / (dims[0] * dims[1])};
  }
  int id(const std::array<int, 3>& c) const {
    return c[0] + dims[0] * (c[1] + dims[1] * c[2]);
  }
  int neighbor(int node, int dim, bool positive) const {
    auto c = coords(node);
    c[dim] = (c[dim] + (positive ? 1 : dims[dim] - 1)) % dims[dim];
    return id(c);
  }

  /// Shortest healthy path length from src to dst, -1 if unreachable.
  int shortest(int src, int dst) const {
    if (src == dst) return 0;
    std::vector<int> dist(static_cast<std::size_t>(total()), -1);
    dist[static_cast<std::size_t>(src)] = 0;
    std::vector<int> frontier{src};
    while (!frontier.empty()) {
      std::vector<int> next;
      for (const int n : frontier) {
        for (int d = 0; d < 3; ++d) {
          if (dims[d] <= 1) continue;
          for (const bool positive : {true, false}) {
            if (dead.count(key(n, d, positive)) != 0) continue;
            const int m = neighbor(n, d, positive);
            if (dist[static_cast<std::size_t>(m)] >= 0) continue;
            dist[static_cast<std::size_t>(m)] =
                dist[static_cast<std::size_t>(n)] + 1;
            if (m == dst) return dist[static_cast<std::size_t>(m)];
            next.push_back(m);
          }
        }
      }
      frontier = std::move(next);
    }
    return -1;
  }
};

struct Shape {
  std::array<int, 3> dims;
  std::vector<std::array<int, 3>> kills;  // (node, dim, positive)
};

/// Seeded random torus shape + dead-link set. Kills only target rings
/// of extent >= 2 and never repeat a link, so every kill is armable.
Shape randomShape(std::uint64_t seed) {
  sim::Rng rng(seed, "torus-routing-prop");
  Shape s;
  for (int d = 0; d < 3; ++d) {
    s.dims[d] = 2 + static_cast<int>(rng.nextBelow(3));  // 2..4
  }
  const int total = s.dims[0] * s.dims[1] * s.dims[2];
  const int killCount = 1 + static_cast<int>(rng.nextBelow(5));
  std::set<std::uint64_t> seen;
  for (int i = 0; i < killCount; ++i) {
    for (int attempt = 0; attempt < 32; ++attempt) {
      const int node = static_cast<int>(
          rng.nextBelow(static_cast<std::uint64_t>(total)));
      const int dim = static_cast<int>(rng.nextBelow(3));
      const bool positive = rng.nextBelow(2) == 1;
      if (s.dims[dim] <= 1) continue;
      if (!seen.insert(key(node, dim, positive)).second) continue;
      s.kills.push_back({node, dim, positive ? 1 : 0});
      break;
    }
  }
  return s;
}

std::unique_ptr<Machine> makeMachine(const Shape& s) {
  MachineConfig mc;
  mc.torus.dims = s.dims;
  mc.computeNodes = s.dims[0] * s.dims[1] * s.dims[2];
  auto m = std::make_unique<Machine>(mc);
  for (const auto& k : s.kills) {
    EXPECT_TRUE(m->torus().killLink(k[0], k[1], k[2] != 0))
        << "node " << k[0] << " dim " << k[1];
  }
  return m;
}

TEST(TorusRouting, HopsMatchIndependentBfsOracleOverRandomFaultSets) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const Shape s = randomShape(seed);
    auto machine = makeMachine(s);
    Oracle oracle;
    oracle.dims = s.dims;
    for (const auto& k : s.kills) {
      oracle.dead.insert(key(k[0], k[1], k[2] != 0));
    }
    TorusNet& t = machine->torus();
    const int total = oracle.total();
    for (int a = 0; a < total; ++a) {
      for (int b = 0; b < total; ++b) {
        EXPECT_EQ(t.hops(a, b), oracle.shortest(a, b))
            << "seed " << seed << " pair " << a << "->" << b;
      }
    }
  }
}

TEST(TorusRouting, SameFaultSetYieldsSameHopsAcrossMachines) {
  for (std::uint64_t seed = 20; seed <= 24; ++seed) {
    const Shape s = randomShape(seed);
    auto m1 = makeMachine(s);
    auto m2 = makeMachine(s);
    const int total = s.dims[0] * s.dims[1] * s.dims[2];
    for (int a = 0; a < total; ++a) {
      for (int b = 0; b < total; ++b) {
        EXPECT_EQ(m1->torus().hops(a, b), m2->torus().hops(a, b))
            << "seed " << seed << " pair " << a << "->" << b;
      }
    }
  }
}

TEST(TorusRouting, DeliveryLatencyDecomposesIntoHopsAndSerialization) {
  for (std::uint64_t seed = 30; seed <= 35; ++seed) {
    const Shape s = randomShape(seed);
    auto machine = makeMachine(s);
    TorusNet& t = machine->torus();
    const int total = s.dims[0] * s.dims[1] * s.dims[2];
    const TorusConfig& tc = t.config();
    // Every reachable pair off node 0, one idle-network packet each.
    for (int dst = 1; dst < total; ++dst) {
      const int hops = t.hops(0, dst);
      if (hops < 0) continue;  // unreachable pairs checked elsewhere
      sim::Cycle deliveredAt = 0;
      t.setPacketHandler(dst, [&machine, &deliveredAt](TorusPacket&&) {
        deliveredAt = machine->engine().now();
      });
      TorusPacket p;
      p.srcNode = 0;
      p.dstNode = dst;
      p.payload.resize(64);  // 128 cycles serialization at 0.5 B/cyc
      const sim::Cycle sentAt = machine->engine().now();
      t.sendPacket(p);
      machine->engine().run();
      ASSERT_GT(deliveredAt, sentAt) << "seed " << seed << " dst " << dst;
      const sim::Cycle ser = static_cast<sim::Cycle>(
          64.0 / tc.bytesPerCycle);
      EXPECT_EQ(deliveredAt - sentAt,
                ser + tc.hopLatency * static_cast<sim::Cycle>(hops) +
                    tc.dmaRecvCost)
          << "seed " << seed << " dst " << dst << " hops " << hops;
    }
    // Hard link faults are pure state: no RNG was drawn anywhere.
    EXPECT_EQ(machine->torusFaults().rngDraws(), 0u) << "seed " << seed;
  }
}

TEST(TorusRouting, UnreachableDestinationCountsAndDrainsInjectionFifo) {
  // 3x1x1 ring: killing both links into node 1 severs it exactly.
  MachineConfig mc;
  mc.torus.dims = {3, 1, 1};
  mc.computeNodes = 3;
  Machine machine(mc);
  TorusNet& t = machine.torus();
  ASSERT_TRUE(t.killLink(0, 0, /*positive=*/true));
  ASSERT_TRUE(t.killLink(2, 0, /*positive=*/false));
  EXPECT_EQ(t.hops(0, 1), -1);
  EXPECT_EQ(t.hops(2, 1), -1);
  // Node 1 can still send (its outgoing links are alive)...
  EXPECT_EQ(t.hops(1, 2), 1);
  // ...and 0 <-> 2 reroutes over the surviving directed ring.
  EXPECT_EQ(t.hops(0, 2), t.hops(2, 0));

  bool delivered = false;
  bool localComplete = false;
  t.setPacketHandler(1, [&](TorusPacket&&) { delivered = true; });
  TorusPacket p;
  p.srcNode = 0;
  p.dstNode = 1;
  p.payload.resize(32);
  t.sendPacket(std::move(p));
  t.dmaPut(0, 0x1000, 1, 0x2000, 64, [&] { delivered = true; },
           [&] { localComplete = true; });
  machine.engine().run();
  EXPECT_FALSE(delivered) << "no healthy route may deliver";
  EXPECT_TRUE(localComplete)
      << "the injection FIFO must drain even when the payload is lost";
  EXPECT_EQ(t.unroutable(), 2u);
}

TEST(TorusRouting, DetourCountersChargeOnlyNonMinimalRoutes) {
  // 4x1x1 ring: 0 -> 1 minimal route is the +x link; killing it forces
  // the 3-hop detour the long way round.
  MachineConfig mc;
  mc.torus.dims = {4, 1, 1};
  mc.computeNodes = 4;
  Machine machine(mc);
  TorusNet& t = machine.torus();
  ASSERT_TRUE(t.killLink(0, 0, /*positive=*/true));
  EXPECT_EQ(t.hops(0, 1), 3);
  bool got = false;
  t.setPacketHandler(1, [&](TorusPacket&&) { got = true; });
  TorusPacket p;
  p.srcNode = 0;
  p.dstNode = 1;
  p.payload.resize(64);
  t.sendPacket(std::move(p));
  machine.engine().run();
  EXPECT_TRUE(got);
  EXPECT_EQ(t.detours(), 1u);
  EXPECT_EQ(t.detourHops(), 2u) << "3 taken vs 1 minimal";
  // A transfer whose minimal route is untouched pays nothing: 1 -> 2
  // still dimension-order routes over healthy links.
  got = false;
  t.setPacketHandler(2, [&](TorusPacket&&) { got = true; });
  TorusPacket q;
  q.srcNode = 1;
  q.dstNode = 2;
  q.payload.resize(64);
  t.sendPacket(std::move(q));
  machine.engine().run();
  EXPECT_TRUE(got);
  EXPECT_EQ(t.detours(), 1u) << "minimal-route transfer is not a detour";
}

TEST(TorusRouting, DegradedLinkChargesCrcRetryRoundsPerTraversal) {
  MachineConfig mc;
  mc.torus.dims = {4, 1, 1};
  mc.computeNodes = 4;
  Machine machine(mc);
  TorusNet& t = machine.torus();
  const TorusConfig& tc = t.config();
  ASSERT_TRUE(t.degradeLink(0, 0, /*positive=*/true, /*retries=*/3));

  sim::Cycle deliveredAt = 0;
  t.setPacketHandler(1, [&](TorusPacket&&) {
    deliveredAt = machine.engine().now();
  });
  TorusPacket p;
  p.srcNode = 0;
  p.dstNode = 1;
  p.payload.resize(64);
  const sim::Cycle sentAt = machine.engine().now();
  t.sendPacket(std::move(p));
  machine.engine().run();
  ASSERT_GT(deliveredAt, sentAt);
  const sim::Cycle ser =
      static_cast<sim::Cycle>(64.0 / tc.bytesPerCycle);
  const sim::Cycle perRound = ser + 2 * tc.hopLatency;
  EXPECT_EQ(deliveredAt - sentAt,
            ser + tc.hopLatency + tc.dmaRecvCost + 3 * perRound);
  EXPECT_EQ(machine.torusFaults().stats().crcRetries, 3u);

  // Healing the link removes the penalty.
  ASSERT_TRUE(t.degradeLink(0, 0, true, 0));
  deliveredAt = 0;
  const sim::Cycle sentAt2 = machine.engine().now();
  TorusPacket q;
  q.srcNode = 0;
  q.dstNode = 1;
  q.payload.resize(64);
  t.sendPacket(std::move(q));
  machine.engine().run();
  EXPECT_EQ(deliveredAt - sentAt2, ser + tc.hopLatency + tc.dmaRecvCost);
  EXPECT_EQ(machine.torusFaults().stats().crcRetries, 3u);
}

}  // namespace
}  // namespace bg::hw

// Shared helpers for kernel-level integration tests: build a cluster,
// run one program, harvest its samples.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "runtime/app.hpp"
#include "vm/builder.hpp"

namespace bg::test {

struct RunResult {
  bool booted = false;
  bool loaded = false;
  bool completed = false;
  std::vector<std::uint64_t> samples;  // rank 0, thread 0
};

/// Boot a cluster, run `program` as a single-process job, return rank
/// 0's main-thread samples. The cluster outlives the call via `out`.
inline RunResult runProgram(rt::ClusterConfig cfg, vm::Program program,
                            std::unique_ptr<rt::Cluster>* out = nullptr,
                            kernel::JobSpec jobTemplate = {}) {
  RunResult r;
  auto cluster = std::make_unique<rt::Cluster>(cfg);
  r.booted = cluster->bootAll(600'000'000);
  if (!r.booted) return r;
  kernel::JobSpec job = jobTemplate;
  job.exe = kernel::ElfImage::makeExecutable("test", std::move(program));
  cluster->attachSamples(0, 0, &r.samples);
  r.loaded = cluster->loadJob(job);
  if (r.loaded) r.completed = cluster->run(4'000'000'000ULL);
  if (out != nullptr) *out = std::move(cluster);
  return r;
}

/// Exit-the-program epilogue.
inline void emitExit(vm::ProgramBuilder& b) {
  b.li(vm::kArg0, 0);
  b.syscall(static_cast<std::int64_t>(kernel::Sys::kExit));
}

}  // namespace bg::test

// Byte-layout pin for the shared wire-framing helpers (msg/wire.hpp).
// Both the CNK<->CIOD function-shipping protocol and the front-door
// RPC protocol encode through these; if the layout drifts, persisted
// traces and cross-version peers break silently. These tests assert
// the exact encoded bytes, not just round-trip equality.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "msg/wire.hpp"
#include "sim/hash.hpp"

namespace {

using namespace bg;
using msg::wire::Reader;
using msg::wire::Writer;

std::vector<std::uint8_t> raw(const std::vector<std::byte>& b) {
  std::vector<std::uint8_t> out;
  out.reserve(b.size());
  for (std::byte x : b) out.push_back(static_cast<std::uint8_t>(x));
  return out;
}

TEST(Wire, GoldenByteLayout) {
  Writer w;
  w.u32(0x04030201u);
  w.u8(0xAB);
  w.u64(0x1122334455667788ULL);
  w.i32(-2);
  w.str("hi");
  const std::vector<std::uint8_t> got = raw(std::move(w).take());

  // Little-endian fields, u32 length-prefixed strings. This exact
  // sequence is the wire contract.
  const std::vector<std::uint8_t> want = {
      0x01, 0x02, 0x03, 0x04,                          // u32
      0xAB,                                            // u8
      0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11,  // u64
      0xFE, 0xFF, 0xFF, 0xFF,                          // i32 -2
      0x02, 0x00, 0x00, 0x00, 'h', 'i',                // str
  };
  EXPECT_EQ(got, want);
}

TEST(Wire, RoundTripAllFieldTypes) {
  Writer w;
  w.u32(7);
  w.u64(0xFFFFFFFFFFFFFFFFULL);
  w.i32(-123456);
  w.i64(-9876543210LL);
  w.u8(0);
  w.str("front door");
  w.bytes({std::byte{1}, std::byte{2}, std::byte{3}});
  const std::vector<std::byte> buf = std::move(w).take();

  Reader r(buf);
  std::uint32_t a = 0;
  std::uint64_t b = 0;
  std::int32_t c = 0;
  std::int64_t d = 0;
  std::uint8_t e = 1;
  std::string s;
  std::vector<std::byte> blob;
  ASSERT_TRUE(r.u32(&a));
  ASSERT_TRUE(r.u64(&b));
  ASSERT_TRUE(r.i32(&c));
  ASSERT_TRUE(r.i64(&d));
  ASSERT_TRUE(r.u8(&e));
  ASSERT_TRUE(r.str(&s));
  ASSERT_TRUE(r.bytes(&blob));
  EXPECT_EQ(a, 7u);
  EXPECT_EQ(b, 0xFFFFFFFFFFFFFFFFULL);
  EXPECT_EQ(c, -123456);
  EXPECT_EQ(d, -9876543210LL);
  EXPECT_EQ(e, 0);
  EXPECT_EQ(s, "front door");
  EXPECT_EQ(blob.size(), 3u);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Wire, ReaderBoundsChecks) {
  Writer w;
  w.u32(42);
  const std::vector<std::byte> buf = std::move(w).take();

  Reader r(buf);
  std::uint64_t v = 0;
  EXPECT_FALSE(r.u64(&v));  // only 4 bytes available
  std::uint32_t u = 0;
  EXPECT_TRUE(r.u32(&u));
  std::uint8_t b = 0;
  EXPECT_FALSE(r.u8(&b));  // exhausted

  // A string whose length prefix promises more than the buffer holds.
  Writer w2;
  w2.u32(1000);
  const std::vector<std::byte> lie = std::move(w2).take();
  Reader r2(lie);
  std::string s;
  EXPECT_FALSE(r2.str(&s));
}

TEST(Wire, SealAppendsFnvChecksum) {
  Writer w;
  w.u32(0xDEADBEEF);
  Writer body;
  body.u32(0xDEADBEEF);
  const std::vector<std::byte> bodyBytes = std::move(body).take();

  const std::vector<std::byte> sealed = msg::wire::seal(std::move(w));
  ASSERT_EQ(sealed.size(), bodyBytes.size() + 8);

  // The trailer is the little-endian FNV-1a of the body.
  Reader tail(std::span<const std::byte>(sealed).subspan(bodyBytes.size()));
  std::uint64_t sum = 0;
  ASSERT_TRUE(tail.u64(&sum));
  EXPECT_EQ(sum, sim::hashBytes(bodyBytes));

  const auto opened = msg::wire::unseal(sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(opened->size(), bodyBytes.size());
}

TEST(Wire, UnsealRejectsCorruption) {
  Writer w;
  w.str("payload under test");
  w.u64(12345);
  std::vector<std::byte> sealed = msg::wire::seal(std::move(w));

  // Flip every byte position in turn: body damage and checksum damage
  // must both be caught.
  for (std::size_t i = 0; i < sealed.size(); ++i) {
    std::vector<std::byte> damaged = sealed;
    damaged[i] ^= std::byte{0x40};
    EXPECT_FALSE(msg::wire::unseal(damaged).has_value()) << "byte " << i;
  }
  EXPECT_TRUE(msg::wire::unseal(sealed).has_value());
}

TEST(Wire, UnsealRejectsTruncation) {
  Writer w;
  w.u64(7);
  const std::vector<std::byte> sealed = msg::wire::seal(std::move(w));
  for (std::size_t n = 0; n < sealed.size(); ++n) {
    const std::span<const std::byte> cut(sealed.data(), n);
    EXPECT_FALSE(msg::wire::unseal(cut).has_value()) << "len " << n;
  }
}

}  // namespace

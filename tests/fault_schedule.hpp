// Deterministic fault-injection harness for the service-node tests.
//
// A FaultSchedule is a plain list of (cycle, fault) pairs built either
// by hand or from a seed, then armed once against a cluster + service
// host. Every fault fires as an engine event at an absolute cycle, so
// the whole failure scenario replays cycle-exactly from the seed:
//
//  - kSvcCrash:  fail-stop the control plane, restart it later. Driven
//    through ServiceHost so the outage survives the instance it kills.
//  - kNodeDeath: log a fatal kNodeFailure RAS event directly on the
//    node's kernel. Deliberately NOT routed through the service node:
//    the kernel's RAS ring outlives control-plane crashes, exactly like
//    hardware faults keep happening while the control system is down.
//  - kWarnStorm: burst of kWarn machine-checks on one node's kernel —
//    the signature the predictive-drain window is tuned to catch.
//  - kIoDeath:   fail-stop a pset's CIOD. Nothing is reported directly:
//    detection happens the honest way, through the compute kernels'
//    fship watchdogs timing out and declaring kIoNodeDead, which the
//    service node's RAS sweep then turns into failover or an in-place
//    repair. Clusters armed with these need tight fship timeouts and
//    at least some I/O-performing jobs, or the death goes unnoticed
//    (which is also a valid outcome the invariants must survive).
//  - kMemUe:     latch an uncorrectable-ECC machine check on one core.
//    The kernel's handler panics, ships a coredump, and logs the fatal
//    that takes the node down — the full §V fault plane end to end.
//  - kCeStorm:   burst of correctable-ECC machine checks. Each one is
//    scrubbed transparently by the kernel (kWarn RAS); enough of them
//    inside the aggregator's warn window triggers predictive drain.
//  - kCoreHang:  freeze a core outright. Nothing is reported — the
//    node's kernel can't run on a dead core — so detection is the
//    service node's heartbeat watchdog noticing the progress counter
//    stopped (clusters armed with these need hangTimeoutCycles > 0).
//  - kLinkDead:  fail-stop one directed torus link. The torus fires a
//    kLinkDead RAS event on the link's source node and recomputes its
//    deterministic detour table; the service node's link-health
//    predictor reacts with checkpoint-then-migrate (when armed) or
//    leaves the job in degraded route-around mode.
//  - kLinkStorm: degrade one directed link (CRC retry storm) and log a
//    burst of kLinkDegraded events on the source kernel — like
//    kCeStorm, detection is independent of whether application traffic
//    happens to cross the sick link inside the predictor's window.
//  - kMigrateSvcCrash: control-plane crash aimed into an open
//    checkpoint-then-migrate window. The window is deliberately not
//    checkpointed: restart loses only the migration decision and a
//    later storm re-triggers the predictor.
//  - kCkptIoCrash / kCkptUe / kCkptSvcCrash: the application-ckpt
//    torture trio. Mechanically these reuse the CIOD fail-stop, the
//    uncorrectable-ECC latch, and the control-plane crash, but a
//    checkpoint-heavy schedule aims them into the windows the ckpt
//    invariants must survive: a CIOD death mid image write (the
//    two-phase commit must leave the previous image valid), a UE
//    between a node's commit and the service node learning of it (the
//    requeue resumes from the newest *acknowledged* sequence), and a
//    control-plane crash inside an open preempt window (the window is
//    deliberately not checkpointed; restart re-selects a victim).
//
// The harness only pokes the control loop when one is alive; faults
// landing during an outage sit in the kernel logs until the restarted
// service node's RAS cursors sweep them up.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/app.hpp"
#include "sim/rng.hpp"
#include "svc/failover.hpp"

namespace bg::testing {

struct FaultEvent {
  enum class Kind : std::uint8_t {
    kSvcCrash,
    kNodeDeath,
    kWarnStorm,
    kIoDeath,
    kMemUe,
    kCeStorm,
    kCoreHang,
    kCkptIoCrash,
    kCkptUe,
    kCkptSvcCrash,
    kLinkDead,
    kLinkStorm,
    kMigrateSvcCrash,
  };
  Kind kind = Kind::kNodeDeath;
  sim::Cycle atCycle = 0;
  int node = -1;              // target: node, or I/O index for kIoDeath
  sim::Cycle downCycles = 0;  // kSvcCrash outage length
  int count = 0;              // kWarnStorm/kCeStorm/kLinkStorm burst size
  int dim = 0;                // kLinkDead/kLinkStorm: torus dimension
  bool positive = true;       // kLinkDead/kLinkStorm: link direction
};

class FaultSchedule {
 public:
  FaultSchedule& svcCrash(sim::Cycle at, sim::Cycle down) {
    events_.push_back({FaultEvent::Kind::kSvcCrash, at, -1, down, 0});
    return *this;
  }
  FaultSchedule& nodeDeath(int node, sim::Cycle at) {
    events_.push_back({FaultEvent::Kind::kNodeDeath, at, node, 0, 0});
    return *this;
  }
  FaultSchedule& warnStorm(int node, sim::Cycle at, int count) {
    events_.push_back({FaultEvent::Kind::kWarnStorm, at, node, 0, count});
    return *this;
  }
  FaultSchedule& ioDeath(int ioIdx, sim::Cycle at) {
    events_.push_back({FaultEvent::Kind::kIoDeath, at, ioIdx, 0, 0});
    return *this;
  }
  FaultSchedule& memUe(int node, sim::Cycle at) {
    events_.push_back({FaultEvent::Kind::kMemUe, at, node, 0, 0});
    return *this;
  }
  FaultSchedule& ceStorm(int node, sim::Cycle at, int count) {
    events_.push_back({FaultEvent::Kind::kCeStorm, at, node, 0, count});
    return *this;
  }
  FaultSchedule& coreHang(int node, sim::Cycle at) {
    events_.push_back({FaultEvent::Kind::kCoreHang, at, node, 0, 0});
    return *this;
  }
  FaultSchedule& ckptIoCrash(int ioIdx, sim::Cycle at) {
    events_.push_back({FaultEvent::Kind::kCkptIoCrash, at, ioIdx, 0, 0});
    return *this;
  }
  FaultSchedule& ckptUe(int node, sim::Cycle at) {
    events_.push_back({FaultEvent::Kind::kCkptUe, at, node, 0, 0});
    return *this;
  }
  FaultSchedule& ckptSvcCrash(sim::Cycle at, sim::Cycle down) {
    events_.push_back({FaultEvent::Kind::kCkptSvcCrash, at, -1, down, 0});
    return *this;
  }
  FaultSchedule& linkDeath(int node, int dim, bool positive, sim::Cycle at) {
    events_.push_back(
        {FaultEvent::Kind::kLinkDead, at, node, 0, 0, dim, positive});
    return *this;
  }
  FaultSchedule& linkStorm(int node, int dim, bool positive, sim::Cycle at,
                           int count) {
    events_.push_back(
        {FaultEvent::Kind::kLinkStorm, at, node, 0, count, dim, positive});
    return *this;
  }
  FaultSchedule& migrateSvcCrash(sim::Cycle at, sim::Cycle down) {
    events_.push_back({FaultEvent::Kind::kMigrateSvcCrash, at, -1, down, 0});
    return *this;
  }

  /// Seeded mixed schedule over [0, horizon): `crashes` control-plane
  /// outages, `deaths` node losses, `storms` warn bursts, `ioDeaths`
  /// CIOD fail-stops over `ioNodes` psets, spread over the machine by
  /// an Rng stream independent of the job stream's. The defaulted
  /// trailing parameters draw nothing, so schedules built by older
  /// callers replay unchanged.
  static FaultSchedule random(std::uint64_t seed, int nodes,
                              sim::Cycle horizon, int crashes, int deaths,
                              int storms, int ioDeaths = 0,
                              int ioNodes = 1, int memUes = 0,
                              int ceStorms = 0, int coreHangs = 0,
                              int ckptIoCrashes = 0, int ckptUes = 0,
                              int ckptSvcCrashes = 0, int linkDeaths = 0,
                              int linkStorms = 0,
                              int migrateSvcCrashes = 0) {
    sim::Rng rng(seed, "fault-schedule");
    FaultSchedule fs;
    for (int i = 0; i < crashes; ++i) {
      const sim::Cycle at = 1 + rng.nextBelow(horizon);
      fs.svcCrash(at, 50'000 + rng.nextBelow(400'000));
    }
    for (int i = 0; i < deaths; ++i) {
      fs.nodeDeath(static_cast<int>(rng.nextBelow(
                       static_cast<std::uint64_t>(nodes))),
                   1 + rng.nextBelow(horizon));
    }
    for (int i = 0; i < storms; ++i) {
      fs.warnStorm(static_cast<int>(rng.nextBelow(
                       static_cast<std::uint64_t>(nodes))),
                   1 + rng.nextBelow(horizon),
                   6 + static_cast<int>(rng.nextBelow(6)));
    }
    for (int i = 0; i < ioDeaths; ++i) {
      fs.ioDeath(static_cast<int>(rng.nextBelow(
                     static_cast<std::uint64_t>(ioNodes))),
                 1 + rng.nextBelow(horizon));
    }
    for (int i = 0; i < memUes; ++i) {
      fs.memUe(static_cast<int>(rng.nextBelow(
                   static_cast<std::uint64_t>(nodes))),
               1 + rng.nextBelow(horizon));
    }
    for (int i = 0; i < ceStorms; ++i) {
      fs.ceStorm(static_cast<int>(rng.nextBelow(
                     static_cast<std::uint64_t>(nodes))),
                 1 + rng.nextBelow(horizon),
                 6 + static_cast<int>(rng.nextBelow(6)));
    }
    for (int i = 0; i < coreHangs; ++i) {
      fs.coreHang(static_cast<int>(rng.nextBelow(
                      static_cast<std::uint64_t>(nodes))),
                  1 + rng.nextBelow(horizon));
    }
    for (int i = 0; i < ckptIoCrashes; ++i) {
      fs.ckptIoCrash(static_cast<int>(rng.nextBelow(
                         static_cast<std::uint64_t>(ioNodes))),
                     1 + rng.nextBelow(horizon));
    }
    for (int i = 0; i < ckptUes; ++i) {
      fs.ckptUe(static_cast<int>(rng.nextBelow(
                    static_cast<std::uint64_t>(nodes))),
                1 + rng.nextBelow(horizon));
    }
    for (int i = 0; i < ckptSvcCrashes; ++i) {
      const sim::Cycle at = 1 + rng.nextBelow(horizon);
      fs.ckptSvcCrash(at, 50'000 + rng.nextBelow(400'000));
    }
    for (int i = 0; i < linkDeaths; ++i) {
      const int node = static_cast<int>(
          rng.nextBelow(static_cast<std::uint64_t>(nodes)));
      const int dim = static_cast<int>(rng.nextBelow(3));
      const bool positive = rng.nextBelow(2) == 1;
      fs.linkDeath(node, dim, positive, 1 + rng.nextBelow(horizon));
    }
    for (int i = 0; i < linkStorms; ++i) {
      const int node = static_cast<int>(
          rng.nextBelow(static_cast<std::uint64_t>(nodes)));
      const int dim = static_cast<int>(rng.nextBelow(3));
      const bool positive = rng.nextBelow(2) == 1;
      fs.linkStorm(node, dim, positive, 1 + rng.nextBelow(horizon),
                   6 + static_cast<int>(rng.nextBelow(6)));
    }
    for (int i = 0; i < migrateSvcCrashes; ++i) {
      const sim::Cycle at = 1 + rng.nextBelow(horizon);
      fs.migrateSvcCrash(at, 50'000 + rng.nextBelow(400'000));
    }
    return fs;
  }

  /// Schedule every fault on the cluster's engine. Call once, before
  /// driving the engine. `host` must outlive the run.
  void arm(rt::Cluster& cluster, svc::ServiceHost& host) const {
    sim::Engine& eng = cluster.engine();
    for (const FaultEvent& f : events_) {
      switch (f.kind) {
        case FaultEvent::Kind::kSvcCrash:
          host.scheduleCrashRestart(f.atCycle, f.downCycles);
          break;
        case FaultEvent::Kind::kNodeDeath:
          eng.scheduleAt(f.atCycle, [&cluster, &host, node = f.node] {
            cluster.kernelOn(node).logRas(
                kernel::RasEvent::Code::kNodeFailure,
                kernel::RasEvent::Severity::kFatal, 0, 0, 0xFA11);
            if (host.alive()) host.node().poke();
          });
          break;
        case FaultEvent::Kind::kWarnStorm:
          eng.scheduleAt(f.atCycle,
                         [&cluster, &host, node = f.node, n = f.count] {
            for (int i = 0; i < n; ++i) {
              cluster.kernelOn(node).logRas(
                  kernel::RasEvent::Code::kMachineCheck,
                  kernel::RasEvent::Severity::kWarn, 0, 0,
                  static_cast<std::uint64_t>(i));
            }
            if (host.alive()) host.node().poke();
          });
          break;
        case FaultEvent::Kind::kIoDeath:
          // Fail-stop only; no RAS is forged. The next I/O-performing
          // job's timeout storm is what surfaces the death. A CIOD
          // already down (mid-repair) is left alone.
          eng.scheduleAt(f.atCycle, [&cluster, idx = f.node] {
            if (!cluster.ciod(idx).crashed()) cluster.ciod(idx).crash();
          });
          break;
        case FaultEvent::Kind::kMemUe:
          eng.scheduleAt(f.atCycle, [&cluster, &host, node = f.node] {
            cluster.machine().node(node).injectUncorrectable(
                0xBAD0000ULL + (static_cast<std::uint64_t>(node) << 12));
            if (host.alive()) host.node().poke();
          });
          break;
        case FaultEvent::Kind::kCeStorm:
          eng.scheduleAt(f.atCycle,
                         [&cluster, &host, node = f.node, n = f.count] {
            for (int i = 0; i < n; ++i) {
              cluster.machine().node(node).injectCorrectable(
                  0xCE0000ULL + static_cast<std::uint64_t>(i) * 64);
            }
            if (host.alive()) host.node().poke();
          });
          break;
        case FaultEvent::Kind::kCoreHang:
          // Freeze core 0 outright. No RAS, no poke: only the
          // heartbeat watchdog can see this one.
          eng.scheduleAt(f.atCycle, [&cluster, node = f.node] {
            cluster.machine().node(node).core(0).hang();
          });
          break;
        case FaultEvent::Kind::kCkptIoCrash:
          eng.scheduleAt(f.atCycle, [&cluster, idx = f.node] {
            if (!cluster.ciod(idx).crashed()) cluster.ciod(idx).crash();
          });
          break;
        case FaultEvent::Kind::kCkptUe:
          eng.scheduleAt(f.atCycle, [&cluster, &host, node = f.node] {
            cluster.machine().node(node).injectUncorrectable(
                0xCC0000ULL + (static_cast<std::uint64_t>(node) << 12));
            if (host.alive()) host.node().poke();
          });
          break;
        case FaultEvent::Kind::kCkptSvcCrash:
          host.scheduleCrashRestart(f.atCycle, f.downCycles);
          break;
        case FaultEvent::Kind::kLinkDead:
          // killLink fires the kLinkDead RAS event on the source
          // node's kernel and invalidates the detour cache; a link
          // already dead (or a dimension of extent 1) is left alone.
          eng.scheduleAt(f.atCycle, [&cluster, &host, node = f.node,
                                     dim = f.dim, pos = f.positive] {
            cluster.machine().torus().killLink(node, dim, pos);
            if (host.alive()) host.node().poke();
          });
          break;
        case FaultEvent::Kind::kLinkStorm:
          // Degrade the link (3 CRC retry rounds per traversal) and
          // log a burst of kLinkDegraded events on the source kernel —
          // like kCeStorm, the predictor's window sees the storm even
          // when no application traffic crosses the sick link.
          eng.scheduleAt(f.atCycle, [&cluster, &host, node = f.node,
                                     dim = f.dim, pos = f.positive,
                                     n = f.count] {
            if (cluster.machine().torus().degradeLink(node, dim, pos, 3)) {
              // degradeLink logged the first kLinkDegraded; the rest
              // of the burst is forged directly.
              for (int i = 1; i < n; ++i) {
                cluster.kernelOn(node).logRas(
                    kernel::RasEvent::Code::kLinkDegraded, 0, 0,
                    (static_cast<std::uint64_t>(dim) << 1) |
                        (pos ? 1u : 0u));
              }
            }
            if (host.alive()) host.node().poke();
          });
          break;
        case FaultEvent::Kind::kMigrateSvcCrash:
          host.scheduleCrashRestart(f.atCycle, f.downCycles);
          break;
      }
    }
  }

  const std::vector<FaultEvent>& events() const { return events_; }

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace bg::testing

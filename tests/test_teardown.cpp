// Lifecycle edge cases: job teardown after crashes, repeated jobs,
// out-of-memory behaviour, and multi-node VN-mode rank spaces.
#include <gtest/gtest.h>

#include "cluster_test_util.hpp"
#include "kernel/syscalls.hpp"
#include "runtime/rt_ids.hpp"

namespace bg {
namespace {

using test::emitExit;
using test::runProgram;

std::int64_t sys(kernel::Sys s) { return static_cast<std::int64_t>(s); }

TEST(Teardown, CleanJobRunsAfterACrashedOne) {
  rt::ClusterConfig cfg;
  rt::Cluster cluster(cfg);
  ASSERT_TRUE(cluster.bootAll());

  // Job 1 crashes (wild store).
  vm::ProgramBuilder crash("crash");
  crash.li(16, 0x70000000);
  crash.li(17, 1);
  crash.store(16, 17, 0);
  emitExit(crash);
  kernel::JobSpec j1;
  j1.exe = kernel::ElfImage::makeExecutable("crash",
                                            std::move(crash).build());
  ASSERT_TRUE(cluster.loadJob(j1));
  ASSERT_TRUE(cluster.run());
  EXPECT_EQ(cluster.processOfRank(0)->exitStatus, -1);

  // Job 2 on the same kernel must be unaffected.
  cluster.cnkOn(0)->unloadJob();
  vm::ProgramBuilder ok("ok");
  ok.li(16, 7);
  ok.sample(16);
  emitExit(ok);
  kernel::JobSpec j2;
  j2.exe = kernel::ElfImage::makeExecutable("ok", std::move(ok).build());
  std::vector<std::uint64_t> s;
  cluster.attachSamples(0, 0, &s);
  ASSERT_TRUE(cluster.loadJob(j2));
  ASSERT_TRUE(cluster.run());
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0], 7u);
  EXPECT_EQ(cluster.processOfRank(0)->exitStatus, 0);
}

TEST(Teardown, ManySequentialJobsDoNotLeakTlbOrScheduler) {
  rt::ClusterConfig cfg;
  rt::Cluster cluster(cfg);
  ASSERT_TRUE(cluster.bootAll());
  for (int run = 0; run < 10; ++run) {
    cluster.cnkOn(0)->unloadJob();
    vm::ProgramBuilder b("t");
    b.mov(16, 10);
    b.li(17, run);
    b.store(16, 17, 0);
    b.load(18, 16, 0);
    b.sample(18);
    emitExit(b);
    kernel::JobSpec job;
    job.exe = kernel::ElfImage::makeExecutable("t", std::move(b).build());
    std::vector<std::uint64_t> s;
    cluster.attachSamples(0, 0, &s);
    ASSERT_TRUE(cluster.loadJob(job)) << "run " << run;
    ASSERT_TRUE(cluster.run()) << "run " << run;
    ASSERT_EQ(s.size(), 1u);
    EXPECT_EQ(s[0], static_cast<std::uint64_t>(run));
  }
  // TLB never exceeds capacity; scheduler slots hold only live threads.
  EXPECT_LE(cluster.machine().node(0).core(0).mmu().validCount(), 64);
}

TEST(Teardown, CnkMmapExhaustionReturnsEnomem) {
  // Eat the entire mmap zone, then one more: -ENOMEM, not a crash.
  vm::ProgramBuilder b("t");
  b.li(20, 0);  // allocation counter
  const auto top = b.label();
  b.li(1, 0);
  b.li(2, 64 << 20);
  b.li(3, 3);
  b.li(4, static_cast<std::int64_t>(kernel::kMapPrivate |
                                    kernel::kMapAnonymous));
  b.syscall(sys(kernel::Sys::kMmap));
  b.addi(20, 20, 1);
  // Loop until mmap fails (returns -errno => top bit set => huge).
  b.li(21, 1);
  b.shl(21, 21, 63);
  b.blt(0, 21, top);  // success (< 2^63): allocate again
  b.sample(0);        // the failing return value
  b.sample(20);       // how many 64MB chunks fit
  emitExit(b);
  auto r = runProgram({}, std::move(b).build());
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.samples.size(), 2u);
  EXPECT_EQ(static_cast<std::int64_t>(r.samples[0]), -kernel::kENOMEM);
  EXPECT_GE(r.samples[1], 2u);   // a few chunks fit before exhaustion
  EXPECT_LT(r.samples[1], 16u);  // and not infinitely many
}

TEST(Teardown, FwkFrameExhaustionKillsFaultingThread) {
  // Touch far more anonymous memory than the node has frames: demand
  // paging eventually cannot allocate and the toucher dies (OOM).
  rt::ClusterConfig cfg;
  cfg.kernel = rt::KernelKind::kFwk;
  cfg.node.memBytes = 96ULL << 20;  // small node
  cfg.fwk.kernelReservedBytes = 16ULL << 20;
  vm::ProgramBuilder b("t");
  b.mov(16, 10);
  const auto top = b.loopBegin(17, 120'000);  // ~480MB of pages
  b.li(18, 1);
  b.store(16, 18, 0);
  b.addi(16, 16, 4096);
  b.loopEnd(17, top);
  b.sample(17);  // unreachable
  emitExit(b);
  std::unique_ptr<rt::Cluster> cluster;
  auto r = runProgram(cfg, std::move(b).build(), &cluster);
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(r.samples.empty());
  EXPECT_EQ(cluster->kernelOn(0).threadsKilled(), 1u);
}

TEST(Teardown, VnModeAcrossNodesGetsGlobalRankSpace) {
  rt::ClusterConfig cfg;
  cfg.computeNodes = 2;
  rt::Cluster cluster(cfg);
  ASSERT_TRUE(cluster.bootAll());
  vm::ProgramBuilder b("t");
  b.sample(1);  // rank
  b.sample(2);  // npes
  emitExit(b);
  kernel::JobSpec job;
  job.processes = 4;
  job.exe = kernel::ElfImage::makeExecutable("t", std::move(b).build());
  std::vector<std::vector<std::uint64_t>> s(8);
  for (int r = 0; r < 8; ++r) cluster.attachSamples(r, 0, &s[r]);
  ASSERT_TRUE(cluster.loadJob(job));
  ASSERT_TRUE(cluster.run());
  for (int r = 0; r < 8; ++r) {
    ASSERT_EQ(s[r].size(), 2u) << "rank " << r;
    EXPECT_EQ(s[r][0], static_cast<std::uint64_t>(r));
    EXPECT_EQ(s[r][1], 8u);
  }
  EXPECT_EQ(cluster.worldSize(), 8);
}

}  // namespace
}  // namespace bg

// Reliable function-shipping under injected link faults and CIOD
// death (paper §IV-A as a fault-tolerance story).
//
// The oracle throughout is *fault-free equivalence*: a run with seeded
// drops / corruption / delays / duplication on the collective network
// must produce byte-for-byte the results of the clean run — same fd
// numbers, same read-back byte counts, same file contents — with the
// faults visibly absorbed by the reliability layer (retransmits,
// checksum rejects, seq dedup, the CIOD replay cache). CIOD death is
// covered both ways: with a cold spare (failover completes in-flight
// syscalls exactly once) and without (the watchdog turns lost replies
// into -EIO plus kIoTimeout / kIoNodeDead RAS, never a hung thread).
//
// The default run uses one fixed seed; the `slow` ctest lane
// (FSHIP_FAULTS_SLOW=1) sweeps several seeds per fault mix.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "apps/io_kernel.hpp"
#include "hw/link_fault.hpp"
#include "io/protocol.hpp"
#include "runtime/app.hpp"

namespace bg {
namespace {

// --- unit layer: the fault model itself ---------------------------------

TEST(LinkFaultModel, SameSeedReplaysTheSameFaultSequence) {
  hw::LinkFaultRates r;
  r.dropRate = 0.3;
  r.corruptRate = 0.2;
  r.delayRate = 0.15;
  r.duplicateRate = 0.1;
  hw::LinkFaultModel a(7, "unit");
  hw::LinkFaultModel b(7, "unit");
  a.setDefaultRates(r);
  b.setDefaultRates(r);
  for (int i = 0; i < 4000; ++i) {
    const hw::LinkFaultOutcome oa = a.judge(i % 5, 64);
    const hw::LinkFaultOutcome ob = b.judge(i % 5, 64);
    ASSERT_EQ(oa.drop, ob.drop);
    ASSERT_EQ(oa.corrupt, ob.corrupt);
    ASSERT_EQ(oa.duplicate, ob.duplicate);
    ASSERT_EQ(oa.extraDelay, ob.extraDelay);
    ASSERT_EQ(oa.duplicateDelay, ob.duplicateDelay);
    ASSERT_EQ(oa.corruptByteIndex, ob.corruptByteIndex);
    ASSERT_EQ(oa.corruptXor, ob.corruptXor);
    if (oa.corrupt) {
      ASSERT_NE(oa.corruptXor, 0) << "corruption must change the byte";
      ASSERT_LT(oa.corruptByteIndex, 64u);
    }
  }
  // The observed rates track the configured ones (loose 2-sigma-ish
  // bounds; the draw is seeded so this can never flake).
  const hw::LinkFaultStats& st = a.stats();
  EXPECT_EQ(st.packetsSeen, 4000u);
  EXPECT_GT(st.dropped, 4000 * 0.3 * 0.7);
  EXPECT_LT(st.dropped, 4000 * 0.3 * 1.3);
  EXPECT_GT(st.corrupted, 0u);
  EXPECT_GT(st.delayed, 0u);
  EXPECT_GT(st.duplicated, 0u);
}

TEST(LinkFaultModel, CleanRatesNeverFaultAndPerLinkOverridesWin) {
  hw::LinkFaultModel m(11, "unit");
  EXPECT_FALSE(m.anyEnabled());
  for (int i = 0; i < 256; ++i) {
    const hw::LinkFaultOutcome o = m.judge(3, 128);
    EXPECT_FALSE(o.drop);
    EXPECT_FALSE(o.corrupt);
    EXPECT_FALSE(o.duplicate);
    EXPECT_EQ(o.extraDelay, 0u);
  }
  hw::LinkFaultRates r;
  r.dropRate = 1.0;
  m.setLinkRates(9, r);
  EXPECT_TRUE(m.anyEnabled());
  EXPECT_TRUE(m.judge(9, 16).drop);   // overridden link always drops
  EXPECT_FALSE(m.judge(8, 16).drop);  // other links stay clean
}

// --- unit layer: wire checksums ------------------------------------------

TEST(Protocol, RequestChecksumCatchesEverySingleByteFlip) {
  io::FsRequest q;
  q.seq = 7;
  q.srcNode = 3;
  q.pid = 2;
  q.tid = 5;
  q.op = io::FsOp::kWrite;
  q.a0 = 4;
  q.a1 = 1024;
  q.a2 = 4096;
  q.path = "/tmp/ckpt.3";
  for (int i = 0; i < 48; ++i) q.payload.push_back(std::byte(i * 7));
  const std::vector<std::byte> wire = q.encode();

  const auto back = io::FsRequest::decode(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->seq, q.seq);
  EXPECT_EQ(back->op, q.op);
  EXPECT_EQ(back->a2, q.a2);
  EXPECT_EQ(back->path, q.path);
  EXPECT_EQ(back->payload, q.payload);

  // Corrupt every byte position in turn — length fields, payload and
  // the trailing checksum itself — and demand rejection, never a
  // mis-parse. (The checksum is verified before any field is read.)
  for (std::size_t i = 0; i < wire.size(); ++i) {
    std::vector<std::byte> bad = wire;
    bad[i] ^= std::byte{0x40};
    EXPECT_FALSE(io::FsRequest::decode(bad).has_value())
        << "flip at byte " << i << " slipped through";
  }
  EXPECT_FALSE(io::FsRequest::decode({}).has_value());
}

TEST(Protocol, ReplyChecksumCatchesEverySingleByteFlip) {
  io::FsReply p;
  p.seq = 9;
  p.srcNode = 1;
  p.pid = 4;
  p.tid = 2;
  p.result = -5;
  for (int i = 0; i < 32; ++i) p.payload.push_back(std::byte(255 - i));
  const std::vector<std::byte> wire = p.encode();
  const auto back = io::FsReply::decode(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->result, p.result);
  EXPECT_EQ(back->payload, p.payload);
  for (std::size_t i = 0; i < wire.size(); ++i) {
    std::vector<std::byte> bad = wire;
    bad[i] ^= std::byte{0x01};
    EXPECT_FALSE(io::FsReply::decode(bad).has_value())
        << "flip at byte " << i << " slipped through";
  }
}

// --- cluster harness -----------------------------------------------------

struct RunOpts {
  hw::LinkFaultRates faults;     // collective-network default rates
  int spareIoNodes = 0;
  sim::Cycle crashCiodAt = 0;    // 0 = never
  bool watchAndFailover = false; // play service node on storm
  sim::Cycle requestTimeout = 300'000;
  sim::Cycle maxTimeout = 2'400'000;
  int maxRetries = 6;
  sim::Cycle failoverGrace = 0;
  std::uint64_t seed = 42;
  int computeNodes = 4;
  int procsPerNode = 2;
};

struct IoRun {
  bool ok = false;
  sim::Cycle elapsed = 0;
  std::vector<std::vector<std::uint64_t>> samples;
  std::vector<std::vector<std::byte>> files;  // per rank, post-run
  cnk::FshipStats fship;
  io::CiodStats ciod;
  hw::LinkFaultStats link;
  std::uint64_t rasIoTimeouts = 0;
  std::uint64_t rasIoDead = 0;
  std::size_t pendingOps = 0;  // in-flight fship ops left after drain
};

IoRun runIoCluster(const RunOpts& o) {
  rt::ClusterConfig cfg;
  cfg.computeNodes = o.computeNodes;
  cfg.ioNodes = 1;
  cfg.computeNodesPerIoNode = o.computeNodes;
  cfg.spareIoNodes = o.spareIoNodes;
  cfg.seed = o.seed;
  cfg.collectiveFaults = o.faults;
  cfg.cnk.fship.requestTimeout = o.requestTimeout;
  cfg.cnk.fship.maxTimeout = o.maxTimeout;
  cfg.cnk.fship.maxRetries = o.maxRetries;
  cfg.cnk.fship.failoverGrace = o.failoverGrace;

  IoRun r;
  rt::Cluster cluster(cfg);
  if (!cluster.bootAll(600'000'000)) return r;

  apps::IoKernelParams ip;
  ip.chunks = 3;
  ip.chunkBytes = 4 << 10;
  ip.computeBetween = 20'000;
  kernel::JobSpec job;
  job.processes = o.procsPerNode;
  job.exe = apps::ioKernelImage(ip);

  const int ranks = o.computeNodes * o.procsPerNode;
  r.samples.resize(static_cast<std::size_t>(ranks));
  for (int rank = 0; rank < ranks; ++rank) {
    cluster.attachSamples(rank, 0,
                          &r.samples[static_cast<std::size_t>(rank)]);
  }

  sim::Engine& eng = cluster.engine();
  bool failedOver = false;
  std::function<void()> watchStorm = [&] {
    if (failedOver) return;
    bool dead = false;
    for (int n = 0; n < o.computeNodes; ++n) {
      if (auto* c = cluster.cnkOn(n);
          c != nullptr && c->fship().ioNodeDead()) {
        dead = true;
      }
    }
    if (dead) {
      cluster.failoverIoNode(0);
      failedOver = true;
      return;
    }
    eng.schedule(20'000, watchStorm);
  };
  if (o.crashCiodAt != 0) {
    eng.scheduleAt(o.crashCiodAt, [&cluster] { cluster.ciod(0).crash(); });
    if (o.watchAndFailover) {
      eng.scheduleAt(o.crashCiodAt + 20'000, watchStorm);
    }
  }

  const sim::Cycle start = eng.now();
  if (!cluster.loadJob(job) || !cluster.run(8'000'000'000ULL)) return r;
  r.elapsed = eng.now() - start;
  r.fship = cluster.fshipTotals();
  r.ciod = cluster.ciodTotals();
  r.link = cluster.machine().collectiveFaults().stats();
  for (int rank = 0; rank < ranks; ++rank) {
    // io_kernel writes /tmp/ckpt.<rank mod 10>.
    const std::string path = "/tmp/ckpt." + std::to_string(rank % 10);
    r.files.push_back(cluster.ioRootFs(0).fileContents(path));
  }
  for (int n = 0; n < o.computeNodes; ++n) {
    for (const kernel::RasEvent& e : cluster.kernelOn(n).rasLog()) {
      if (e.code == kernel::RasEvent::Code::kIoTimeout) ++r.rasIoTimeouts;
      if (e.code == kernel::RasEvent::Code::kIoNodeDead) ++r.rasIoDead;
    }
    if (auto* c = cluster.cnkOn(n)) r.pendingOps += c->fship().pendingCount();
  }
  r.ok = true;
  return r;
}

/// Fault-free-equivalence oracle: syscall results (fd numbers, bytes
/// read back) and the bytes that actually landed in every checkpoint
/// file. Sample 1 is elapsed cycles and legitimately differs.
void expectSameResults(const IoRun& faulted, const IoRun& clean,
                       const char* what) {
  ASSERT_EQ(faulted.samples.size(), clean.samples.size()) << what;
  for (std::size_t i = 0; i < clean.samples.size(); ++i) {
    ASSERT_GE(faulted.samples[i].size(), 3u) << what << " rank " << i;
    ASSERT_GE(clean.samples[i].size(), 3u) << what << " rank " << i;
    EXPECT_EQ(faulted.samples[i][0], clean.samples[i][0])
        << what << ": fd diverged on rank " << i;
    EXPECT_EQ(faulted.samples[i][2], clean.samples[i][2])
        << what << ": read-back diverged on rank " << i;
  }
  ASSERT_EQ(faulted.files.size(), clean.files.size()) << what;
  for (std::size_t i = 0; i < clean.files.size(); ++i) {
    EXPECT_FALSE(clean.files[i].empty()) << "control wrote nothing?";
    EXPECT_EQ(faulted.files[i], clean.files[i])
        << what << ": file bytes diverged for rank " << i;
  }
}

// --- seeded fault sweeps -------------------------------------------------

struct FaultMix {
  const char* name;
  hw::LinkFaultRates rates;
};

std::vector<FaultMix> faultMixes() {
  std::vector<FaultMix> mixes;
  {
    FaultMix m{"drop", {}};
    m.rates.dropRate = 0.08;
    mixes.push_back(m);
  }
  {
    FaultMix m{"corrupt", {}};
    m.rates.corruptRate = 0.08;
    mixes.push_back(m);
  }
  {
    FaultMix m{"delay", {}};
    m.rates.delayRate = 0.25;
    m.rates.delayMinCycles = 2'000;
    m.rates.delayMaxCycles = 40'000;
    mixes.push_back(m);
  }
  {
    FaultMix m{"duplicate", {}};
    m.rates.duplicateRate = 0.25;
    mixes.push_back(m);
  }
  {
    FaultMix m{"mixed", {}};
    m.rates.dropRate = 0.04;
    m.rates.corruptRate = 0.04;
    m.rates.delayRate = 0.10;
    m.rates.duplicateRate = 0.10;
    mixes.push_back(m);
  }
  return mixes;
}

void runSweep(std::uint64_t seed) {
  RunOpts clean;
  clean.seed = seed;
  const IoRun control = runIoCluster(clean);
  ASSERT_TRUE(control.ok) << "clean control run wedged (seed " << seed
                          << ")";
  EXPECT_EQ(control.fship.retransmits, 0u)
      << "clean run should never hit the watchdog";
  EXPECT_EQ(control.link.packetsSeen, 0u)
      << "clean run must not consult the fault model";

  for (const FaultMix& mix : faultMixes()) {
    RunOpts o;
    o.seed = seed;
    o.faults = mix.rates;
    const IoRun run = runIoCluster(o);
    ASSERT_TRUE(run.ok) << mix.name << " run wedged (seed " << seed << ")";
    expectSameResults(run, control, mix.name);
    EXPECT_EQ(run.pendingOps, 0u)
        << mix.name << ": ops left hanging after drain";
    EXPECT_EQ(run.fship.eioReturns, 0u)
        << mix.name << ": an op was abandoned despite retry budget";

    // The faults must actually have been injected, and the matching
    // recovery machinery must have visibly absorbed them.
    if (mix.rates.dropRate > 0) {
      EXPECT_GT(run.link.dropped, 0u) << mix.name;
      EXPECT_GT(run.fship.retransmits, 0u) << mix.name;
    }
    if (mix.rates.corruptRate > 0) {
      EXPECT_GT(run.link.corrupted, 0u) << mix.name;
      EXPECT_GT(run.fship.corruptReplies + run.ciod.badChecksums, 0u)
          << mix.name << ": corruption never detected by a checksum";
    }
    if (mix.rates.delayRate > 0) {
      EXPECT_GT(run.link.delayed, 0u) << mix.name;
    }
    if (mix.rates.duplicateRate > 0) {
      EXPECT_GT(run.link.duplicated, 0u) << mix.name;
      EXPECT_GT(run.fship.duplicateReplies + run.ciod.replays +
                    run.ciod.staleDrops,
                0u)
          << mix.name << ": no duplicate was ever suppressed";
    }
  }
}

TEST(FshipFaults, SeededFaultSweepsMatchFaultFree) { runSweep(42); }

// Non-idempotent-write oracle in isolation: append-style writes are
// the op a naive retransmit would double-apply. Explicit offsets plus
// the CIOD replay cache must keep every duplicated/retransmitted
// write single-effect — proven by the final file bytes.
TEST(FshipFaults, DuplicatedWritesApplyExactlyOnce) {
  RunOpts clean;
  const IoRun control = runIoCluster(clean);
  ASSERT_TRUE(control.ok);

  RunOpts o;
  o.faults.duplicateRate = 0.5;
  o.faults.dropRate = 0.05;  // force real retransmits of writes too
  const IoRun run = runIoCluster(o);
  ASSERT_TRUE(run.ok);
  EXPECT_GT(run.link.duplicated, 0u);
  EXPECT_GT(run.fship.retransmits, 0u);
  EXPECT_GT(run.fship.duplicateReplies + run.ciod.replays +
                run.ciod.staleDrops,
            0u);
  expectSameResults(run, control, "duplicate-write");
}

// --- CIOD death ----------------------------------------------------------

TEST(FshipFaults, CiodCrashMidRunFailsOverAndCompletesInFlightIo) {
  RunOpts clean;
  clean.failoverGrace = 200'000'000;
  const IoRun control = runIoCluster(clean);
  ASSERT_TRUE(control.ok);

  RunOpts o;
  o.spareIoNodes = 1;
  o.crashCiodAt = control.elapsed / 3;  // mid checkpoint traffic
  o.watchAndFailover = true;
  o.requestTimeout = 200'000;
  o.maxTimeout = 800'000;
  o.maxRetries = 3;
  o.failoverGrace = 200'000'000;
  const IoRun run = runIoCluster(o);
  ASSERT_TRUE(run.ok) << "failover run wedged";
  expectSameResults(run, control, "ciod-crash-failover");
  EXPECT_GT(run.fship.rehomes, 0u) << "no CNK ever re-homed";
  EXPECT_GT(run.ciod.restores, 0u)
      << "spare CIOD never rebuilt an ioproxy from shadow state";
  EXPECT_GT(run.rasIoDead, 0u) << "timeout storm never declared";
  EXPECT_EQ(run.fship.eioReturns, 0u)
      << "failover must complete in-flight ops, not fail them";
  EXPECT_EQ(run.pendingOps, 0u);
}

TEST(FshipFaults, LostRepliesBecomeEioPlusRasWhenNoSpareExists) {
  RunOpts clean;
  clean.requestTimeout = 50'000;
  clean.maxTimeout = 200'000;
  clean.maxRetries = 2;
  const IoRun control = runIoCluster(clean);
  ASSERT_TRUE(control.ok);

  RunOpts o = clean;
  o.crashCiodAt = control.elapsed / 3;
  // No spare, no grace: the watchdog is the only recourse.
  const IoRun run = runIoCluster(o);
  ASSERT_TRUE(run.ok) << "a lost reply hung the job instead of -EIO";
  EXPECT_GT(run.fship.timeouts, 0u);
  EXPECT_GT(run.fship.eioReturns, 0u)
      << "ops against the dead CIOD must fail with -EIO";
  EXPECT_GT(run.rasIoTimeouts, 0u)
      << "give-up must raise kIoTimeout RAS for the service node";
  EXPECT_GT(run.rasIoDead, 0u) << "storm must declare the I/O node dead";
  EXPECT_EQ(run.pendingOps, 0u) << "threads left blocked forever";
}

// --- slow lane: multi-seed sweep ----------------------------------------

TEST(FshipFaultsSlow, MultiSeedSweep) {
  if (std::getenv("FSHIP_FAULTS_SLOW") == nullptr) {
    GTEST_SKIP() << "slow lane only (ctest -C slow -L slow)";
  }
  for (std::uint64_t seed : {1ULL, 7ULL, 1234ULL, 0xDECAFULL}) {
    runSweep(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace bg

// Service-node control subsystem (src/svc): partition lifecycle and
// allocation, FIFO vs EASY-backfill scheduling, RAS aggregation with
// per-code throttling and kernel-ring overflow accounting, and the
// end-to-end drain/retry path after an injected node failure — which
// must replay cycle-exactly from the same seed (schedule-hash witness).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "runtime/app.hpp"
#include "sim/rng.hpp"
#include "svc/service_node.hpp"
#include "vm/builder.hpp"

namespace bg {
namespace {

using svc::NodeLifecycle;

std::shared_ptr<kernel::ElfImage> workImage(const std::string& name,
                                            std::uint64_t reps,
                                            std::uint64_t cyclesPerRep) {
  vm::ProgramBuilder b(name);
  const auto top = b.loopBegin(16, static_cast<std::int64_t>(reps));
  b.compute(cyclesPerRep);
  b.loopEnd(16, top);
  b.halt(0);
  return kernel::ElfImage::makeExecutable(name, std::move(b).build());
}

// --- PartitionManager ---------------------------------------------------

std::vector<rt::KernelKind> cnkKinds(int n) {
  return std::vector<rt::KernelKind>(static_cast<std::size_t>(n),
                                     rt::KernelKind::kCnk);
}

TEST(Partition, AllocatePrefersSmallestContiguousRun) {
  svc::PartitionManager pm(cnkKinds(8));
  for (int n = 0; n < 8; ++n) {
    pm.markBooting(n);
    pm.markReady(n);
  }
  // Occupy nodes 2 and 5: ready runs are [0,1], [3,4], [6,7].
  pm.markRunning(2, 7, 0);
  pm.markRunning(5, 7, 0);

  // A width-2 request should take a tight 2-run, not split a larger
  // one; the lowest-id tight run wins.
  const auto got = pm.allocate(2, rt::KernelKind::kCnk);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], 0);
  EXPECT_EQ(got[1], 1);
}

TEST(Partition, AllocateFallsBackToScattered) {
  svc::PartitionManager pm(cnkKinds(6));
  for (int n = 0; n < 6; ++n) {
    pm.markBooting(n);
    pm.markReady(n);
  }
  // Fragment the machine: only 0, 2, 4 stay ready.
  pm.markRunning(1, 9, 0);
  pm.markRunning(3, 9, 0);
  pm.markRunning(5, 9, 0);

  const auto got = pm.allocate(3, rt::KernelKind::kCnk);
  EXPECT_EQ(got, (std::vector<int>{0, 2, 4}));
  // More than exists -> unsatisfiable, empty.
  EXPECT_TRUE(pm.allocate(4, rt::KernelKind::kCnk).empty());
}

TEST(Partition, AllocateMatchesKernelKind) {
  std::vector<rt::KernelKind> kinds = cnkKinds(4);
  kinds[3] = rt::KernelKind::kFwk;
  svc::PartitionManager pm(kinds);
  for (int n = 0; n < 4; ++n) {
    pm.markBooting(n);
    pm.markReady(n);
  }
  EXPECT_EQ(pm.readyCount(rt::KernelKind::kFwk), 1);
  const auto fwk = pm.allocate(1, rt::KernelKind::kFwk);
  ASSERT_EQ(fwk.size(), 1u);
  EXPECT_EQ(fwk[0], 3);
  EXPECT_TRUE(pm.allocate(2, rt::KernelKind::kFwk).empty());
  EXPECT_EQ(pm.allocate(3, rt::KernelKind::kCnk).size(), 3u);
}

TEST(Partition, LifecycleAndBusyAccounting) {
  svc::PartitionManager pm(cnkKinds(2));
  EXPECT_EQ(pm.state(0), NodeLifecycle::kReset);
  pm.markBooting(0);
  pm.markReady(0);
  pm.markRunning(0, 1, 1000);
  EXPECT_EQ(pm.jobOn(0), 1u);
  pm.release(0, 4000);
  EXPECT_EQ(pm.state(0), NodeLifecycle::kReady);
  EXPECT_EQ(pm.busyCycles(0), 3000u);

  pm.markRunning(0, 2, 5000);
  pm.markDown(0, 6000);  // fatal mid-job still closes the interval
  EXPECT_EQ(pm.busyCycles(0), 4000u);
  EXPECT_EQ(pm.failuresOf(0), 1u);
  pm.markReset(0);
  EXPECT_EQ(pm.state(0), NodeLifecycle::kReset);
}

// --- Scheduler policies -------------------------------------------------

svc::JobRecord makeJob(svc::JobId id, rt::KernelKind kind, int nodes,
                       sim::Cycle est) {
  svc::JobRecord jr;
  jr.id = id;
  jr.desc.kernel = kind;
  jr.desc.nodes = nodes;
  jr.desc.estCycles = est;
  return jr;
}

TEST(Scheduler, FifoHeadOfLineBlocks) {
  // 2 ready nodes; head wants 4. FIFO launches nothing even though the
  // narrow job behind it would fit.
  svc::JobRecord wide = makeJob(1, rt::KernelKind::kCnk, 4, 1000);
  svc::JobRecord narrow = makeJob(2, rt::KernelKind::kCnk, 1, 100);
  svc::SchedContext ctx;
  ctx.now = 0;
  ctx.queue = {&wide, &narrow};
  ctx.readyNodes = [](rt::KernelKind) { return 2; };

  svc::FifoPolicy fifo;
  EXPECT_TRUE(fifo.select(ctx).empty());

  // With the wide job absent, FIFO launches in order.
  ctx.queue = {&narrow};
  EXPECT_EQ(fifo.select(ctx), (std::vector<std::size_t>{0}));
}

TEST(Scheduler, BackfillRunsShortJobBehindBlockedHead) {
  // 2 ready + 2 freed at cycle 1000 by the running job. Head needs 4,
  // so its reservation is cycle 1000 with zero spare nodes. A narrow
  // job estimated to finish by 1000 may backfill; one estimated past
  // the reservation may not.
  svc::JobRecord wide = makeJob(1, rt::KernelKind::kCnk, 4, 5000);
  svc::JobRecord shortJob = makeJob(2, rt::KernelKind::kCnk, 1, 900);
  svc::JobRecord longJob = makeJob(3, rt::KernelKind::kCnk, 1, 5000);
  svc::SchedContext ctx;
  ctx.now = 0;
  ctx.queue = {&wide, &longJob, &shortJob};
  ctx.readyNodes = [](rt::KernelKind) { return 2; };
  ctx.running.push_back(
      svc::RunningJobInfo{9, rt::KernelKind::kCnk, 2, 1000});

  svc::BackfillPolicy bf;
  // Only the short job (queue index 2) backfills.
  EXPECT_EQ(bf.select(ctx), (std::vector<std::size_t>{2}));
}

TEST(Scheduler, BackfillStillFifoWhenHeadFits) {
  svc::JobRecord a = makeJob(1, rt::KernelKind::kCnk, 1, 1000);
  svc::JobRecord b = makeJob(2, rt::KernelKind::kCnk, 1, 1000);
  svc::SchedContext ctx;
  ctx.now = 0;
  ctx.queue = {&a, &b};
  ctx.readyNodes = [](rt::KernelKind) { return 2; };
  svc::BackfillPolicy bf;
  EXPECT_EQ(bf.select(ctx), (std::vector<std::size_t>{0, 1}));
}

// --- RAS aggregation ----------------------------------------------------

TEST(Ras, PerCodeThrottlingSparesFatals) {
  rt::ClusterConfig cfg;
  cfg.computeNodes = 1;
  rt::Cluster cluster(cfg);
  kernel::KernelBase& k = cluster.kernelOn(0);

  svc::RasAggregatorConfig rcfg;
  rcfg.maxPerCodePerWindow = 4;
  svc::RasAggregator agg(rcfg);
  agg.attach(0, &k);

  for (int i = 0; i < 10; ++i) {
    k.logRas(kernel::RasEvent::Code::kSegv, 1, 1, 0);
  }
  for (int i = 0; i < 6; ++i) {
    k.logRas(kernel::RasEvent::Code::kNodeFailure,
             kernel::RasEvent::Severity::kFatal, 0, 0, 0);
  }
  agg.poll(0);

  // 4 segvs admitted, 6 throttled; fatals bypass the throttle.
  EXPECT_EQ(agg.accepted(), 10u);
  EXPECT_EQ(agg.throttled(), 6u);
  EXPECT_EQ(agg.countByCode(kernel::RasEvent::Code::kSegv), 10u);
  EXPECT_EQ(agg.countBySeverity(kernel::RasEvent::Severity::kFatal), 6u);
  std::size_t fatalsInStream = 0;
  for (const auto& se : agg.stream()) {
    if (se.event.severity == kernel::RasEvent::Severity::kFatal) {
      ++fatalsInStream;
    }
  }
  EXPECT_EQ(fatalsInStream, 6u);
}

TEST(Ras, KernelRingOverflowIsCountedNotLost) {
  rt::ClusterConfig cfg;
  cfg.computeNodes = 1;
  rt::Cluster cluster(cfg);
  kernel::KernelBase& k = cluster.kernelOn(0);
  k.setRasLogCapacity(8);

  svc::RasAggregator agg;
  agg.attach(0, &k);

  for (int i = 0; i < 20; ++i) {
    k.logRas(kernel::RasEvent::Code::kSegv, 1, 1,
             static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(k.rasLog().size(), 8u);
  EXPECT_EQ(k.rasDropped(), 12u);

  agg.poll(0);
  // The seq cursor steps over the gap: the 8 survivors are consumed,
  // the 12 lost ones show up in dropped().
  EXPECT_EQ(agg.accepted() + agg.throttled(), 8u);
  EXPECT_EQ(agg.dropped(), 12u);
  EXPECT_EQ(agg.stream().front().event.detail, 12u);

  // A second poll is a no-op: the cursor does not rewind.
  EXPECT_EQ(agg.poll(0), 0u);
}

// --- End-to-end: scheduling, node failure, drain + retry ----------------

struct StreamOutcome {
  std::uint64_t hash = 0;
  std::uint64_t completed = 0;
  std::uint64_t retries = 0;
  bool drained = false;
};

StreamOutcome runSeededStream(std::uint64_t seed, bool injectFailure) {
  rt::ClusterConfig cfg;
  cfg.computeNodes = 4;
  cfg.seed = seed;
  rt::Cluster cluster(cfg);
  svc::ServiceNode sn(cluster, {});

  sim::Rng rng(seed, "svc-test");
  for (int i = 0; i < 8; ++i) {
    svc::JobDesc jd;
    jd.name = "job" + std::to_string(i);
    jd.kernel = rt::KernelKind::kCnk;
    jd.nodes = 1 + static_cast<int>(rng.nextBelow(2));
    const std::uint64_t reps = 10 + rng.nextBelow(10);
    jd.exe = workImage(jd.name, reps, 10'000);
    jd.estCycles = reps * 10'000 + 50'000;
    sn.submit(jd);
  }
  if (injectFailure) sn.injectNodeFailure(1, 300'000);

  StreamOutcome out;
  out.drained = sn.runUntilDrained(50'000'000);
  const svc::SvcMetrics m = sn.metrics();
  out.hash = m.scheduleHash;
  out.completed = m.jobsCompleted;
  out.retries = m.jobRetries;
  return out;
}

TEST(ServiceNode, DrainsMixedQueueAndRetriesAfterNodeLoss) {
  const StreamOutcome out = runSeededStream(7, true);
  EXPECT_TRUE(out.drained);
  EXPECT_EQ(out.completed, 8u);  // the victim retried, then completed
  EXPECT_GE(out.retries, 1u);
}

TEST(ServiceNode, SameSeedSameScheduleHash) {
  const StreamOutcome a = runSeededStream(11, true);
  const StreamOutcome b = runSeededStream(11, true);
  EXPECT_TRUE(a.drained);
  EXPECT_TRUE(b.drained);
  EXPECT_EQ(a.hash, b.hash);
  // And the failure visibly alters the schedule.
  const StreamOutcome c = runSeededStream(11, false);
  EXPECT_NE(a.hash, c.hash);
}

TEST(ServiceNode, HeterogeneousKindsRouteJobsToMatchingNodes) {
  rt::ClusterConfig cfg;
  cfg.computeNodes = 3;
  cfg.nodeKernels = {rt::KernelKind::kCnk, rt::KernelKind::kCnk,
                     rt::KernelKind::kFwk};
  rt::Cluster cluster(cfg);
  svc::ServiceNode sn(cluster, {});

  svc::JobDesc cj;
  cj.name = "cnk-job";
  cj.kernel = rt::KernelKind::kCnk;
  cj.nodes = 2;
  cj.exe = workImage(cj.name, 10, 10'000);
  const svc::JobId cid = sn.submit(cj);

  svc::JobDesc fj;
  fj.name = "fwk-job";
  fj.kernel = rt::KernelKind::kFwk;
  fj.nodes = 1;
  fj.exe = workImage(fj.name, 10, 10'000);
  const svc::JobId fid = sn.submit(fj);

  ASSERT_TRUE(sn.runUntilDrained(200'000'000));
  EXPECT_EQ(sn.job(cid)->state, svc::JobState::kCompleted);
  EXPECT_EQ(sn.job(fid)->state, svc::JobState::kCompleted);
  EXPECT_EQ(sn.partitions().kernelOf(2), rt::KernelKind::kFwk);
}

TEST(ServiceNode, OverwideJobFailsCleanlyAndQueueMovesOn) {
  rt::ClusterConfig cfg;
  cfg.computeNodes = 2;
  rt::Cluster cluster(cfg);
  svc::ServiceNode sn(cluster, {});

  svc::JobDesc wide;
  wide.name = "wide";
  wide.kernel = rt::KernelKind::kCnk;
  wide.nodes = 5;  // wider than the machine: can never launch
  wide.exe = workImage(wide.name, 5, 10'000);
  const svc::JobId wid = sn.submit(wide);

  svc::JobDesc ok;
  ok.name = "ok";
  ok.kernel = rt::KernelKind::kCnk;
  ok.nodes = 1;
  ok.exe = workImage(ok.name, 5, 10'000);
  const svc::JobId oid = sn.submit(ok);

  // Backfill lets the narrow job through; the impossible one stays
  // queued, so the stream never fully drains — cap the run.
  sn.start();
  cluster.engine().runWhile(
      [&] { return sn.job(oid)->state == svc::JobState::kCompleted; },
      20'000'000);
  EXPECT_EQ(sn.job(oid)->state, svc::JobState::kCompleted);
  EXPECT_EQ(sn.job(wid)->state, svc::JobState::kQueued);
}

}  // namespace
}  // namespace bg

// Integration tests: the DCMF / MPI-lite / ARMCI messaging stack over
// the simulated torus and collective networks.
#include <gtest/gtest.h>

#include "cluster_test_util.hpp"
#include "kernel/syscalls.hpp"
#include "runtime/rt_ids.hpp"

namespace bg {
namespace {

using test::emitExit;
using vm::Reg;

std::int64_t rtc(rt::Rt r) { return static_cast<std::int64_t>(r); }

/// Two-rank harness: builds a cluster of 2 CNK nodes, runs `program`
/// on both, returns per-rank samples.
struct TwoRank {
  std::unique_ptr<rt::Cluster> cluster;
  std::vector<std::uint64_t> s0, s1;
  bool completed = false;
};

TwoRank runTwoRanks(vm::Program program,
                    rt::KernelKind kind = rt::KernelKind::kCnk) {
  TwoRank t;
  rt::ClusterConfig cfg;
  cfg.computeNodes = 2;
  cfg.kernel = kind;
  t.cluster = std::make_unique<rt::Cluster>(cfg);
  if (!t.cluster->bootAll()) return t;
  kernel::JobSpec job;
  job.exe = kernel::ElfImage::makeExecutable("msg", std::move(program));
  t.cluster->attachSamples(0, 0, &t.s0);
  t.cluster->attachSamples(1, 0, &t.s1);
  if (t.cluster->loadJob(job)) {
    t.completed = t.cluster->run(2'000'000'000ULL);
  }
  return t;
}

/// Rank 0 executes senderBody, rank 1 receiverBody; both then exit.
template <typename FnA, typename FnB>
vm::Program splitProgram(FnA senderBody, FnB receiverBody) {
  vm::ProgramBuilder b("split");
  b.mov(16, 10);  // heap base in r16 for both roles
  const std::size_t toB = b.emitForwardBranch(vm::Op::kBnez, 1);
  senderBody(b);
  emitExit(b);
  b.patchHere(toB);
  receiverBody(b);
  emitExit(b);
  return std::move(b).build();
}

TEST(Dcmf, EagerSendMovesRealBytes) {
  auto prog = splitProgram(
      [](vm::ProgramBuilder& b) {
        b.li(17, 0xC0FFEE);
        b.store(16, 17, 0);
        b.li(1, 1);
        b.mov(2, 16);
        b.li(3, 8);
        b.li(4, 5);
        b.rtcall(rtc(rt::Rt::kDcmfSend));
      },
      [](vm::ProgramBuilder& b) {
        b.li(1, 0);
        b.mov(2, 16);
        b.addi(2, 2, 4096);
        b.li(3, 8);
        b.li(4, 5);
        b.rtcall(rtc(rt::Rt::kDcmfRecv));
        b.sample(0);  // bytes received
        b.load(18, 16, 4096);
        b.sample(18);
      });
  auto t = runTwoRanks(std::move(prog));
  ASSERT_TRUE(t.completed);
  ASSERT_EQ(t.s1.size(), 2u);
  EXPECT_EQ(t.s1[0], 8u);
  EXPECT_EQ(t.s1[1], 0xC0FFEEu);
}

TEST(Dcmf, RecvMatchesByTag) {
  // Two sends with different tags; the receiver asks for the second
  // tag first and must get the matching payload, not FIFO order.
  auto prog = splitProgram(
      [](vm::ProgramBuilder& b) {
        b.li(17, 111);
        b.store(16, 17, 0);
        b.li(1, 1);
        b.mov(2, 16);
        b.li(3, 8);
        b.li(4, 1);
        b.rtcall(rtc(rt::Rt::kDcmfSend));
        b.li(17, 222);
        b.store(16, 17, 0);
        b.li(1, 1);
        b.mov(2, 16);
        b.li(3, 8);
        b.li(4, 2);
        b.rtcall(rtc(rt::Rt::kDcmfSend));
      },
      [](vm::ProgramBuilder& b) {
        b.compute(50'000);  // let both arrive (unexpected queue)
        b.li(1, 0);
        b.mov(2, 16);
        b.addi(2, 2, 4096);
        b.li(3, 8);
        b.li(4, 2);  // ask for tag 2 first
        b.rtcall(rtc(rt::Rt::kDcmfRecv));
        b.load(18, 16, 4096);
        b.sample(18);
        b.li(1, 0);
        b.mov(2, 16);
        b.addi(2, 2, 4096);
        b.li(3, 8);
        b.li(4, 1);
        b.rtcall(rtc(rt::Rt::kDcmfRecv));
        b.load(18, 16, 4096);
        b.sample(18);
      });
  auto t = runTwoRanks(std::move(prog));
  ASSERT_TRUE(t.completed);
  ASSERT_EQ(t.s1.size(), 2u);
  EXPECT_EQ(t.s1[0], 222u);
  EXPECT_EQ(t.s1[1], 111u);
}

TEST(Dcmf, PutWritesRemoteMemoryOneSided) {
  // Receiver never calls into the messaging library: it polls a flag
  // word — the one-sided model user-space DMA makes possible.
  auto prog = splitProgram(
      [](vm::ProgramBuilder& b) {
        b.li(17, 42);
        b.store(16, 17, 0);
        b.li(1, 1);
        b.mov(2, 16);
        b.mov(3, 16);
        b.addi(3, 3, 8192);  // remote address (same layout)
        b.li(4, 8);
        b.li(5, 1);
        b.rtcall(rtc(rt::Rt::kDcmfPut));
      },
      [](vm::ProgramBuilder& b) {
        const auto poll = b.label();
        b.load(18, 16, 8192);
        b.beqz(18, poll);  // spin until the put lands
        b.sample(18);
      });
  auto t = runTwoRanks(std::move(prog));
  ASSERT_TRUE(t.completed);
  ASSERT_EQ(t.s1.size(), 1u);
  EXPECT_EQ(t.s1[0], 42u);
}

TEST(Dcmf, GetFetchesRemoteMemory) {
  auto prog = splitProgram(
      [](vm::ProgramBuilder& b) {
        b.compute(100'000);  // target writes first
        b.li(1, 1);
        b.mov(2, 16);
        b.addi(2, 2, 128);  // remote source
        b.mov(3, 16);
        b.addi(3, 3, 256);  // local destination
        b.li(4, 8);
        b.rtcall(rtc(rt::Rt::kDcmfGet));
        b.load(18, 16, 256);
        b.sample(18);
      },
      [](vm::ProgramBuilder& b) {
        b.li(17, 1234);
        b.store(16, 17, 128);
        b.compute(500'000);  // stay alive while rank0 gets
      });
  auto t = runTwoRanks(std::move(prog));
  ASSERT_TRUE(t.completed);
  ASSERT_EQ(t.s0.size(), 1u);
  EXPECT_EQ(t.s0[0], 1234u);
}

TEST(Mpi, EagerAndRendezvousDeliverIdenticalData) {
  for (const std::uint64_t bytes : {64ULL, 8192ULL}) {  // eager / rndv
    auto prog = splitProgram(
        [bytes](vm::ProgramBuilder& b) {
          b.li(17, 0x5151);
          b.store(16, 17, 0);
          b.li(17, 0x5252);
          b.store(16, 17, static_cast<std::int64_t>(bytes) - 8);
          b.li(1, 1);
          b.mov(2, 16);
          b.li(3, static_cast<std::int64_t>(bytes));
          b.li(4, 3);
          b.rtcall(rtc(rt::Rt::kMpiSend));
          b.sample(0);
        },
        [bytes](vm::ProgramBuilder& b) {
          b.li(1, 0);
          b.mov(2, 16);
          b.addi(2, 2, 32768);
          b.li(3, static_cast<std::int64_t>(bytes));
          b.li(4, 3);
          b.rtcall(rtc(rt::Rt::kMpiRecv));
          b.sample(0);  // byte count
          b.load(18, 16, 32768);
          b.sample(18);
          b.load(18, 16, 32768 + static_cast<std::int64_t>(bytes) - 8);
          b.sample(18);
        });
    auto t = runTwoRanks(std::move(prog));
    ASSERT_TRUE(t.completed) << bytes;
    ASSERT_EQ(t.s1.size(), 3u) << bytes;
    EXPECT_EQ(t.s1[0], bytes);
    EXPECT_EQ(t.s1[1], 0x5151u);
    EXPECT_EQ(t.s1[2], 0x5252u);
  }
}

TEST(Mpi, AnySourceRecvMatches) {
  auto prog = splitProgram(
      [](vm::ProgramBuilder& b) {
        b.li(17, 9);
        b.store(16, 17, 0);
        b.li(1, 1);
        b.mov(2, 16);
        b.li(3, 8);
        b.li(4, 0);
        b.rtcall(rtc(rt::Rt::kMpiSend));
      },
      [](vm::ProgramBuilder& b) {
        b.li(1, -1);  // MPI_ANY_SOURCE
        b.mov(2, 16);
        b.addi(2, 2, 64);
        b.li(3, 8);
        b.li(4, 0);
        b.rtcall(rtc(rt::Rt::kMpiRecv));
        b.load(18, 16, 64);
        b.sample(18);
      });
  auto t = runTwoRanks(std::move(prog));
  ASSERT_TRUE(t.completed);
  ASSERT_EQ(t.s1.size(), 1u);
  EXPECT_EQ(t.s1[0], 9u);
}

vm::Program allreduceProgram(int iters) {
  vm::ProgramBuilder b("ar");
  b.mov(16, 10);
  // contribution = rank+1 (raw bit pattern; consistency is what we
  // check, both ranks must see the identical combined value).
  b.addi(17, 1, 1);
  b.store(16, 17, 0);
  const auto top = b.loopBegin(20, iters);
  b.mov(1, 16);
  b.li(2, 1);
  b.mov(3, 16);
  b.addi(3, 3, 4096);
  b.rtcall(rtc(rt::Rt::kMpiAllreduce));
  b.loopEnd(20, top);
  b.load(18, 16, 4096);
  b.sample(18);
  emitExit(b);
  return std::move(b).build();
}

TEST(Mpi, AllreduceGivesEveryRankTheSameResult) {
  auto t = runTwoRanks(allreduceProgram(3));
  ASSERT_TRUE(t.completed);
  ASSERT_EQ(t.s0.size(), 1u);
  ASSERT_EQ(t.s1.size(), 1u);
  EXPECT_EQ(t.s0[0], t.s1[0]);
  EXPECT_NE(t.s0[0], 0u);
}

TEST(Mpi, BarrierSynchronizesRanks) {
  // Rank 1 computes long before the barrier; rank 0 reads the clock
  // after it: rank 0's timestamp must be >= rank 1's pre-barrier work.
  auto prog = splitProgram(
      [](vm::ProgramBuilder& b) {
        b.rtcall(rtc(rt::Rt::kMpiBarrier));
        b.readTb(17);
        b.sample(17);
      },
      [](vm::ProgramBuilder& b) {
        b.compute(3'000'000);
        b.readTb(17);
        b.sample(17);
        b.rtcall(rtc(rt::Rt::kMpiBarrier));
      });
  auto t = runTwoRanks(std::move(prog));
  ASSERT_TRUE(t.completed);
  ASSERT_EQ(t.s0.size(), 1u);
  ASSERT_EQ(t.s1.size(), 1u);
  EXPECT_GT(t.s0[0], t.s1[0]);
}

TEST(Armci, BlockingPutVisibleOnReturnPlusAck) {
  auto prog = splitProgram(
      [](vm::ProgramBuilder& b) {
        b.li(17, 7777);
        b.store(16, 17, 0);
        b.li(1, 1);
        b.mov(2, 16);
        b.mov(3, 16);
        b.addi(3, 3, 512);
        b.li(4, 8);
        b.rtcall(rtc(rt::Rt::kArmciPut));
        // After a *blocking* put returns, remotely visible: fetch it
        // back with a get and verify.
        b.li(1, 1);
        b.mov(2, 16);
        b.addi(2, 2, 512);
        b.mov(3, 16);
        b.addi(3, 3, 1024);
        b.li(4, 8);
        b.rtcall(rtc(rt::Rt::kArmciGet));
        b.load(18, 16, 1024);
        b.sample(18);
      },
      [](vm::ProgramBuilder& b) { b.compute(2'000'000); });
  auto t = runTwoRanks(std::move(prog));
  ASSERT_TRUE(t.completed);
  ASSERT_EQ(t.s0.size(), 1u);
  EXPECT_EQ(t.s0[0], 7777u);
}

TEST(MsgFwk, KernelMediatedPathStillCorrect) {
  // Same eager exchange on the FWK: slower path (pinning, bounce
  // buffers) but identical data semantics.
  auto prog = splitProgram(
      [](vm::ProgramBuilder& b) {
        b.li(17, 0xF00D);
        b.store(16, 17, 0);
        b.li(1, 1);
        b.mov(2, 16);
        b.li(3, 8);
        b.li(4, 5);
        b.rtcall(rtc(rt::Rt::kDcmfSend));
      },
      [](vm::ProgramBuilder& b) {
        b.li(1, 0);
        b.mov(2, 16);
        b.addi(2, 2, 4096);
        b.li(3, 8);
        b.li(4, 5);
        b.rtcall(rtc(rt::Rt::kDcmfRecv));
        b.load(18, 16, 4096);
        b.sample(18);
      });
  auto t = runTwoRanks(std::move(prog), rt::KernelKind::kFwk);
  ASSERT_TRUE(t.completed);
  ASSERT_EQ(t.s1.size(), 1u);
  EXPECT_EQ(t.s1[0], 0xF00Du);
}

TEST(MsgRank, RankAndSizeRtcalls) {
  vm::ProgramBuilder b("t");
  b.rtcall(rtc(rt::Rt::kMpiRank));
  b.sample(0);
  b.rtcall(rtc(rt::Rt::kMpiSize));
  b.sample(0);
  emitExit(b);
  auto t = runTwoRanks(std::move(b).build());
  ASSERT_TRUE(t.completed);
  ASSERT_EQ(t.s0.size(), 2u);
  EXPECT_EQ(t.s0[0], 0u);
  EXPECT_EQ(t.s0[1], 2u);
  EXPECT_EQ(t.s1[0], 1u);
}

}  // namespace
}  // namespace bg

// Integration tests: the CNK kernel — boot, static mapping, the NPTL
// syscall subset, guard pages, persistent memory, dynamic linking,
// function-shipped I/O, RAS signalling, thread affinity.
#include <gtest/gtest.h>

#include "apps/fwq.hpp"
#include "cluster_test_util.hpp"
#include "kernel/syscalls.hpp"
#include "runtime/rt_ids.hpp"

namespace bg {
namespace {

using test::emitExit;
using test::runProgram;
using vm::Reg;

std::int64_t sys(kernel::Sys s) { return static_cast<std::int64_t>(s); }
std::int64_t rtc(rt::Rt r) { return static_cast<std::int64_t>(r); }

// ---------------- boot ----------------

TEST(CnkBoot, RunsAllPhasesAndSetsBootCycles) {
  rt::ClusterConfig cfg;
  rt::Cluster cluster(cfg);
  EXPECT_FALSE(cluster.kernelOn(0).booted());
  ASSERT_TRUE(cluster.bootAll());
  EXPECT_TRUE(cluster.kernelOn(0).booted());
  EXPECT_EQ(cluster.kernelOn(0).bootCycles(), 100'000u);
  EXPECT_EQ(cluster.kernelOn(0).bootLog().size(), 8u);
}

TEST(CnkBoot, LoadJobBeforeBootFails) {
  rt::ClusterConfig cfg;
  rt::Cluster cluster(cfg);
  kernel::JobSpec job;
  vm::ProgramBuilder b("t");
  emitExit(b);
  job.exe = kernel::ElfImage::makeExecutable("t", std::move(b).build());
  EXPECT_FALSE(cluster.kernelOn(0).loadJob(job));
}

// ---------------- static map / memory syscalls ----------------

TEST(CnkMemory, NoTlbRefillsDuringSteadyStateCompute) {
  vm::ProgramBuilder b("t");
  b.mov(16, 10);
  const auto top = b.loopBegin(17, 50);
  b.memTouch(16, 0, 8192);
  b.compute(10'000);
  b.loopEnd(17, top);
  emitExit(b);
  std::unique_ptr<rt::Cluster> cluster;
  auto r = runProgram({}, std::move(b).build(), &cluster);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(cluster->cnkOn(0)->tlbRefills(), 0u);
}

TEST(CnkMemory, BrkQueriesAndGrows) {
  vm::ProgramBuilder b("t");
  b.li(1, 0);
  b.syscall(sys(kernel::Sys::kBrk));
  b.sample(0);                    // current brk
  b.mov(1, 0);
  b.addi(1, 1, 1 << 20);
  b.syscall(sys(kernel::Sys::kBrk));
  b.sample(0);                    // grown brk
  emitExit(b);
  auto r = runProgram({}, std::move(b).build());
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.samples.size(), 2u);
  EXPECT_EQ(r.samples[1], r.samples[0] + (1 << 20));
}

TEST(CnkMemory, BrkBeyondLimitIsRefusedLinuxStyle) {
  vm::ProgramBuilder b("t");
  b.mov(1, 14);                   // r14 = heapLimit at startup
  b.addi(1, 1, 4096);             // beyond the limit
  b.syscall(sys(kernel::Sys::kBrk));
  b.sample(0);                    // unchanged brk, not an error code
  b.li(1, 0);
  b.syscall(sys(kernel::Sys::kBrk));
  b.sample(0);
  emitExit(b);
  auto r = runProgram({}, std::move(b).build());
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.samples[0], r.samples[1]);
}

TEST(CnkMemory, MmapProvidesAddressesAndMunmapReturnsThem) {
  vm::ProgramBuilder b("t");
  b.li(1, 0);
  b.li(2, 64 << 10);
  b.li(3, static_cast<std::int64_t>(kernel::kProtRead | kernel::kProtWrite));
  b.li(4, static_cast<std::int64_t>(kernel::kMapPrivate |
                                    kernel::kMapAnonymous));
  b.syscall(sys(kernel::Sys::kMmap));
  b.sample(0);  // mapped address
  b.mov(16, 0);
  // The mapping is immediately usable (static map: no faults).
  b.li(17, 42);
  b.store(16, 17, 0);
  b.load(18, 16, 0);
  b.sample(18);
  b.mov(1, 16);
  b.li(2, 64 << 10);
  b.syscall(sys(kernel::Sys::kMunmap));
  b.sample(0);  // 0 on success
  emitExit(b);
  auto r = runProgram({}, std::move(b).build());
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.samples.size(), 3u);
  EXPECT_GT(static_cast<std::int64_t>(r.samples[0]), 0);
  EXPECT_EQ(r.samples[1], 42u);
  EXPECT_EQ(r.samples[2], 0u);
}

TEST(CnkMemory, TextIsModifiable) {
  // No memory protection on CNK (paper §IV-B2): a store into the text
  // region succeeds and really lands.
  vm::ProgramBuilder b("t");
  b.li(16, static_cast<std::int64_t>(cnk::kTextVBase));
  b.li(17, 0xDEAD);
  b.store(16, 17, 512);
  b.load(18, 16, 512);
  b.sample(18);
  emitExit(b);
  auto r = runProgram({}, std::move(b).build());
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.samples[0], 0xDEADu);
}

TEST(CnkMemory, WildAccessDeliversSegvAndKillsWithoutHandler) {
  vm::ProgramBuilder b("t");
  b.li(16, 0x7FFF0000);  // unmapped
  b.li(17, 1);
  b.store(16, 17, 0);
  b.sample(17);  // never reached
  emitExit(b);
  std::unique_ptr<rt::Cluster> cluster;
  auto r = runProgram({}, std::move(b).build(), &cluster);
  ASSERT_TRUE(r.completed);  // process died -> job "done"
  EXPECT_TRUE(r.samples.empty());
  EXPECT_EQ(cluster->processOfRank(0)->exitStatus, -1);
  EXPECT_EQ(cluster->kernelOn(0).threadsKilled(), 1u);
}

TEST(CnkMemory, Virt2PhysQueriesStaticMap) {
  vm::ProgramBuilder b("t");
  b.mov(1, 10);
  b.syscall(sys(kernel::Sys::kVirt2Phys));
  b.sample(0);
  emitExit(b);
  std::unique_ptr<rt::Cluster> cluster;
  auto r = runProgram({}, std::move(b).build(), &cluster);
  ASSERT_TRUE(r.completed);
  kernel::Process* p = cluster->processOfRank(0);
  const auto pa = cluster->kernelOn(0).resolveUser(*p, p->heapBase);
  ASSERT_TRUE(pa);
  EXPECT_EQ(r.samples[0], *pa);
}

// ---------------- NPTL subset ----------------

TEST(CnkNptl, UnameReportsLinuxCompatibleRelease) {
  vm::ProgramBuilder b("t");
  b.mov(1, 10);
  b.syscall(sys(kernel::Sys::kUname));
  b.sample(0);
  emitExit(b);
  std::unique_ptr<rt::Cluster> cluster;
  auto r = runProgram({}, std::move(b).build(), &cluster);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.samples[0], 0u);
  kernel::Process* p = cluster->processOfRank(0);
  const auto s =
      cluster->kernelOn(0).readUserString(*p, p->heapBase, 32);
  ASSERT_TRUE(s);
  EXPECT_EQ(*s, kernel::kCnkUnameRelease);
}

TEST(CnkNptl, CloneRejectsNonNptlFlags) {
  vm::ProgramBuilder b("t");
  b.li(1, 0);  // fork-style flags: not supported on CNK (§VII-B)
  b.syscall(sys(kernel::Sys::kClone));
  b.sample(0);
  emitExit(b);
  auto r = runProgram({}, std::move(b).build());
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(static_cast<std::int64_t>(r.samples[0]), -kernel::kEINVAL);
}

TEST(CnkNptl, PthreadCreateJoinRoundTrip) {
  vm::ProgramBuilder b("t");
  std::size_t fix = b.size();
  b.li(1, -1);
  b.li(2, 7);
  b.rtcall(rtc(rt::Rt::kPthreadCreate));
  b.sample(0);  // tid
  b.mov(1, 0);
  b.rtcall(rtc(rt::Rt::kPthreadJoin));
  b.sample(0);  // join result 0
  emitExit(b);
  const auto worker = b.label();
  b.compute(5'000);
  b.halt();
  b.patchTarget(fix, worker);
  auto r = runProgram({}, std::move(b).build());
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.samples.size(), 2u);
  EXPECT_GT(static_cast<std::int64_t>(r.samples[0]), 0);
  EXPECT_EQ(r.samples[1], 0u);
}

TEST(CnkNptl, FutexWaitValueMismatchReturnsEagain) {
  vm::ProgramBuilder b("t");
  b.mov(1, 10);       // heap word == 0
  b.li(2, static_cast<std::int64_t>(kernel::kFutexWait));
  b.li(3, 99);        // expected value differs
  b.syscall(sys(kernel::Sys::kFutex));
  b.sample(0);
  emitExit(b);
  auto r = runProgram({}, std::move(b).build());
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(static_cast<std::int64_t>(r.samples[0]), -kernel::kEAGAIN);
}

TEST(CnkNptl, MutexProvidesMutualExclusion) {
  // 3 worker threads each do 200 lock/increment/unlock rounds on a
  // shared counter; the final count proves no lost updates.
  constexpr int kThreads = 3;
  constexpr int kRounds = 200;
  vm::ProgramBuilder b("t");
  constexpr Reg rMutex = 16;
  constexpr Reg rCount = 17;
  constexpr Reg rTids = 18;
  b.mov(rMutex, 10);
  b.addi(rMutex, rMutex, 64);
  b.mov(rCount, 10);
  b.addi(rCount, rCount, 128);
  b.mov(rTids, 10);
  b.addi(rTids, rTids, 192);
  std::vector<std::size_t> fixes;
  for (int i = 0; i < kThreads; ++i) {
    fixes.push_back(b.size());
    b.li(1, -1);
    b.li(2, 0);
    b.rtcall(rtc(rt::Rt::kPthreadCreate));
    b.store(rTids, 0, i * 8);
  }
  for (int i = 0; i < kThreads; ++i) {
    b.load(1, rTids, i * 8);
    b.rtcall(rtc(rt::Rt::kPthreadJoin));
  }
  b.load(20, rCount, 0);
  b.sample(20);
  emitExit(b);

  const auto worker = b.label();
  // Workers recompute the shared addresses from the heap base (r10 is
  // inherited through clone).
  b.mov(rMutex, 10);
  b.addi(rMutex, rMutex, 64);
  b.mov(rCount, 10);
  b.addi(rCount, rCount, 128);
  const auto wtop = b.loopBegin(21, kRounds);
  b.mov(1, rMutex);
  b.rtcall(rtc(rt::Rt::kMutexLock));
  b.load(22, rCount, 0);
  b.addi(22, 22, 1);
  b.store(rCount, 22, 0);
  b.mov(1, rMutex);
  b.rtcall(rtc(rt::Rt::kMutexUnlock));
  b.loopEnd(21, wtop);
  b.halt();
  for (auto f : fixes) b.patchTarget(f, worker);

  auto r = runProgram({}, std::move(b).build());
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.samples.size(), 1u);
  EXPECT_EQ(r.samples[0],
            static_cast<std::uint64_t>(kThreads) * kRounds);
}

TEST(CnkNptl, SigactionHandlerRunsAndReturns) {
  vm::ProgramBuilder b("t");
  const std::size_t haddr = b.size();
  b.li(1, static_cast<std::int64_t>(kernel::kSigUsr1));
  b.li(2, -1);  // handler entry, patched
  b.syscall(sys(kernel::Sys::kRtSigaction));
  // Signal self via tgkill.
  b.syscall(sys(kernel::Sys::kGettid));
  b.mov(2, 0);
  b.li(1, 0);
  b.li(3, static_cast<std::int64_t>(kernel::kSigUsr1));
  b.syscall(sys(kernel::Sys::kTgkill));
  b.li(20, 7);
  b.sample(20);  // reached after handler returns
  emitExit(b);
  const auto handler = b.label();
  b.sample(1);   // r1 = signo inside the handler
  b.syscall(sys(kernel::Sys::kRtSigreturn));
  b.patchTarget(haddr + 1, handler);
  auto r = runProgram({}, std::move(b).build());
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.samples.size(), 2u);
  EXPECT_EQ(r.samples[0], static_cast<std::uint64_t>(kernel::kSigUsr1));
  EXPECT_EQ(r.samples[1], 7u);
}

// ---------------- guard pages (Fig 4) ----------------

TEST(CnkGuard, StackGuardTrapsViaDac) {
  // The raw NPTL sequence the paper describes (§IV-C): mprotect the
  // stack guard range, then clone — CNK remembers the last mprotect
  // and attaches it to the new thread's DAC registers. A store into
  // the guard then traps and, with no handler installed, kills.
  vm::ProgramBuilder b("t");
  b.mov(16, 10);
  b.addi(16, 16, 256 << 10);  // guard range inside the arena
  b.mov(1, 16);
  b.li(2, 64 << 10);
  b.li(3, 0);
  b.syscall(sys(kernel::Sys::kMprotect));
  // Raw clone: flags, stack, ptid, ctid, tls(=guard addr), startPc.
  b.li(1, static_cast<std::int64_t>(kernel::kNptlCloneFlags));
  b.mov(2, 16);
  b.addi(2, 2, 128 << 10);  // "stack" above the guard
  b.li(3, 0);
  b.li(4, 0);
  b.mov(5, 16);
  std::size_t fix = b.size();
  b.li(6, -1);  // startPc, patched
  b.syscall(sys(kernel::Sys::kClone));
  b.sample(0);         // child tid
  b.compute(500'000);  // give the child time to trap
  b.li(20, 1);
  b.sample(20);
  emitExit(b);
  const auto worker = b.label();
  b.mov(16, 1);        // r1 = tls = guard address
  b.li(17, 5);
  b.store(16, 17, 8);  // store INTO the guard -> DAC trap
  b.halt();
  b.patchTarget(fix, worker);
  std::unique_ptr<rt::Cluster> cluster;
  auto r = runProgram({}, std::move(b).build(), &cluster);
  // The guard trap is fatal to the process, so the main thread may not
  // reach its second sample; the clone result must be there.
  ASSERT_GE(r.samples.size(), 1u);
  EXPECT_GT(static_cast<std::int64_t>(r.samples[0]), 0);
  EXPECT_EQ(cluster->kernelOn(0).threadsKilled(), 1u);
}

TEST(CnkGuard, HeapGrowthByOtherThreadRepositionsMainGuard) {
  // Worker (on another core) extends brk past the main guard; CNK
  // sends an IPI to the main core to reposition the DAC (paper §IV-C).
  // Afterwards the main thread can write the newly-valid heap area.
  vm::ProgramBuilder b("t");
  std::size_t fix = b.size();
  b.li(1, -1);
  b.li(2, 0);
  b.rtcall(rtc(rt::Rt::kPthreadCreate));
  b.mov(1, 0);
  b.rtcall(rtc(rt::Rt::kPthreadJoin));
  // Main writes into the area that used to be guarded (just above the
  // old brk = heapBase + 1MB).
  b.mov(16, 10);
  b.addi(16, 16, (1 << 20) + 64);
  b.li(17, 123);
  b.store(16, 17, 0);
  b.load(18, 16, 0);
  b.sample(18);
  emitExit(b);
  const auto worker = b.label();
  b.li(1, 0);
  b.syscall(sys(kernel::Sys::kBrk));
  b.mov(1, 0);
  b.addi(1, 1, 2 << 20);  // extend heap by 2MB
  b.syscall(sys(kernel::Sys::kBrk));
  b.halt();
  b.patchTarget(fix, worker);
  std::unique_ptr<rt::Cluster> cluster;
  auto r = runProgram({}, std::move(b).build(), &cluster);
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.samples.size(), 1u);
  EXPECT_EQ(r.samples[0], 123u);
  EXPECT_EQ(cluster->kernelOn(0).threadsKilled(), 0u);
  EXPECT_GE(cluster->cnkOn(0)->ipisSent(), 1u);
}

// ---------------- persistent memory (§IV-D) ----------------

TEST(CnkPersist, LinkedListSurvivesJobBoundaryAtSameVaddr) {
  rt::ClusterConfig cfg;
  rt::Cluster cluster(cfg);
  ASSERT_TRUE(cluster.bootAll());

  auto nameToHeap = [&](vm::ProgramBuilder& b) {
    // Store the region name "ckpt" (NUL-terminated) at heapBase.
    b.li(16, 0x74706B63);  // "ckpt" little-endian
    b.mov(17, 10);
    b.store(17, 16, 0);
  };

  // Job 1: open region, build a two-node linked list with real
  // pointers, record the base address.
  vm::ProgramBuilder b1("writer");
  nameToHeap(b1);
  b1.mov(1, 10);
  b1.li(2, 1 << 20);
  b1.syscall(sys(kernel::Sys::kPersistOpen));
  b1.sample(0);               // region vaddr
  b1.mov(16, 0);              // base
  b1.addi(17, 16, 64);        // second node address
  b1.store(16, 17, 0);        // node0.next = &node1
  b1.li(18, 4242);
  b1.store(17, 18, 8);        // node1.value = 4242
  emitExit(b1);
  kernel::JobSpec j1;
  j1.exe = kernel::ElfImage::makeExecutable("w", std::move(b1).build());
  std::vector<std::uint64_t> s1;
  cluster.attachSamples(0, 0, &s1);
  ASSERT_TRUE(cluster.loadJob(j1));
  ASSERT_TRUE(cluster.run());
  ASSERT_EQ(s1.size(), 1u);

  // Job 2 (same node, new process): reopen by name and chase the
  // pointer chain.
  cluster.cnkOn(0)->unloadJob();
  vm::ProgramBuilder b2("reader");
  nameToHeap(b2);
  b2.mov(1, 10);
  b2.li(2, 1 << 20);
  b2.syscall(sys(kernel::Sys::kPersistOpen));
  b2.sample(0);               // must be the SAME vaddr
  b2.mov(16, 0);
  b2.load(17, 16, 0);         // follow node0.next
  b2.load(18, 17, 8);         // read node1.value
  b2.sample(18);
  emitExit(b2);
  kernel::JobSpec j2;
  j2.exe = kernel::ElfImage::makeExecutable("r", std::move(b2).build());
  std::vector<std::uint64_t> s2;
  cluster.attachSamples(0, 0, &s2);
  ASSERT_TRUE(cluster.loadJob(j2));
  ASSERT_TRUE(cluster.run());
  ASSERT_EQ(s2.size(), 2u);
  EXPECT_EQ(s2[0], s1[0]);    // identical virtual address across jobs
  EXPECT_EQ(s2[1], 4242u);    // pointer chain intact
}

// ---------------- scheduling / affinity ----------------

TEST(CnkSched, VnModePlacesOneProcessPerCore) {
  vm::ProgramBuilder b("t");
  b.compute(1'000);
  b.sample(1);  // rank
  emitExit(b);
  std::unique_ptr<rt::Cluster> cluster;
  kernel::JobSpec tmpl;
  tmpl.processes = 4;
  auto r = runProgram({}, std::move(b).build(), &cluster, tmpl);
  ASSERT_TRUE(r.completed);
  auto* cnk = cluster->cnkOn(0);
  for (auto& p : cnk->processes()) {
    ASSERT_EQ(cnk->coresOf(p->pid()).size(), 1u);
    EXPECT_EQ(p->mainThread()->ctx.coreAffinity,
              cnk->coresOf(p->pid()).front());
  }
}

TEST(CnkSched, ThreadSlotsAreBounded) {
  // SMP mode, 4 cores x 3 slots = 12; main + 11 creates fit, the 12th
  // clone fails with EAGAIN (paper: fixed number of threads per core).
  constexpr int kCreates = 12;
  vm::ProgramBuilder b("t");
  std::vector<std::size_t> fixes;
  for (int i = 0; i < kCreates; ++i) {
    fixes.push_back(b.size());
    b.li(1, -1);
    b.li(2, 0);
    b.rtcall(rtc(rt::Rt::kPthreadCreate));
    b.sample(0);
  }
  emitExit(b);
  const auto worker = b.label();
  // Workers block forever on a futex (keeps slots occupied).
  b.mov(1, 10);
  b.addi(1, 1, 512);
  b.li(2, static_cast<std::int64_t>(kernel::kFutexWait));
  b.li(3, 0);
  b.syscall(sys(kernel::Sys::kFutex));
  b.halt();
  for (auto f : fixes) b.patchTarget(f, worker);
  std::unique_ptr<rt::Cluster> cluster;
  auto r = runProgram({}, std::move(b).build(), &cluster);
  // Job cannot complete (workers blocked); run() hits the event cap or
  // deadlock — we only inspect the creates.
  ASSERT_EQ(r.samples.size(), static_cast<std::size_t>(kCreates));
  int ok = 0, eagain = 0;
  for (auto v : r.samples) {
    if (static_cast<std::int64_t>(v) > 0) ++ok;
    if (static_cast<std::int64_t>(v) == -kernel::kEAGAIN) ++eagain;
  }
  EXPECT_EQ(ok, 11);
  EXPECT_EQ(eagain, 1);
}

TEST(CnkSched, ExtendedAffinityAllowsRemoteThreads) {
  // VN mode: process 0 owns core 0 only (3 thread slots). The 3rd
  // extra pthread does not fit without the §VIII extension; with a
  // designated remote core it does — the "MPI phase then OpenMP
  // phase" usage model.
  auto runOnce = [&](bool extension) {
    rt::ClusterConfig cfg;
    cfg.cnk.remoteThreadExtension = extension;
    rt::Cluster cluster(cfg);
    EXPECT_TRUE(cluster.bootAll());
    vm::ProgramBuilder b("t");
    std::vector<std::size_t> fixes;
    for (int i = 0; i < 3; ++i) {
      fixes.push_back(b.size());
      b.li(1, -1);
      b.li(2, 0);
      b.rtcall(rtc(rt::Rt::kPthreadCreate));
      b.sample(0);
    }
    b.compute(200'000);  // let workers finish
    emitExit(b);
    const auto worker = b.label();
    b.compute(2'000);
    b.halt();
    for (auto f : fixes) b.patchTarget(f, worker);
    kernel::JobSpec job;
    job.processes = 4;
    job.exe = kernel::ElfImage::makeExecutable("t", std::move(b).build());
    std::vector<std::uint64_t> s;
    cluster.attachSamples(0, 0, &s);
    EXPECT_TRUE(cluster.loadJob(job));
    if (extension) {
      // Core 1 accepts remote threads from rank 0's process.
      auto* cnk = cluster.cnkOn(0);
      const std::uint32_t pid0 = cluster.processOfRank(0)->pid();
      cnk->designateRemoteProcess(1, pid0);
    }
    EXPECT_TRUE(cluster.run());
    std::vector<std::int64_t> out;
    for (auto v : s) out.push_back(static_cast<std::int64_t>(v));
    return out;
  };
  const auto without = runOnce(false);
  ASSERT_EQ(without.size(), 3u);
  EXPECT_GT(without[0], 0);
  EXPECT_GT(without[1], 0);
  EXPECT_EQ(without[2], -kernel::kEAGAIN);

  const auto with = runOnce(true);
  ASSERT_EQ(with.size(), 3u);
  EXPECT_GT(with[2], 0);  // landed on the remote-designated core
}

TEST(CnkSched, NanosleepSpinsForDuration) {
  vm::ProgramBuilder b("t");
  b.readTb(16);
  b.li(1, 100);  // 100us
  b.syscall(sys(kernel::Sys::kNanosleep));
  b.readTb(17);
  b.sub(18, 17, 16);
  b.sample(18);
  emitExit(b);
  auto r = runProgram({}, std::move(b).build());
  ASSERT_TRUE(r.completed);
  EXPECT_GE(r.samples[0], sim::usToCycles(100));
  EXPECT_LT(r.samples[0], sim::usToCycles(120));
}

// ---------------- RAS (§V-B) ----------------

TEST(CnkRas, L1ParityErrorSignalsApplicationForRecovery) {
  vm::ProgramBuilder b("t");
  const std::size_t sigSetup = b.size();
  b.li(1, static_cast<std::int64_t>(kernel::kSigBus));
  b.li(2, -1);
  b.syscall(sys(kernel::Sys::kRtSigaction));
  b.syscall(sys(kernel::Sys::kRasEvent));  // inject the parity error
  b.compute(2'000);
  b.li(20, 11);
  b.sample(20);  // application continued without restart
  emitExit(b);
  const auto handler = b.label();
  b.li(21, 77);
  b.sample(21);  // recovery ran
  b.syscall(sys(kernel::Sys::kRtSigreturn));
  b.patchTarget(sigSetup + 1, handler);
  auto r = runProgram({}, std::move(b).build());
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.samples.size(), 2u);
  EXPECT_EQ(r.samples[0], 77u);
  EXPECT_EQ(r.samples[1], 11u);
}

TEST(CnkRas, WithoutHandlerParityErrorIsFatal) {
  vm::ProgramBuilder b("t");
  b.syscall(sys(kernel::Sys::kRasEvent));
  b.compute(2'000);
  b.sample(1);
  emitExit(b);
  std::unique_ptr<rt::Cluster> cluster;
  auto r = runProgram({}, std::move(b).build(), &cluster);
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(r.samples.empty());
  EXPECT_EQ(cluster->kernelOn(0).threadsKilled(), 1u);
}

}  // namespace
}  // namespace bg

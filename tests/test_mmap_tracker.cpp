// Unit tests: CNK's mmap range tracker — free-address provision,
// freed-range coalescing, fixed mappings, permission bookkeeping
// (paper §IV-C).
#include <gtest/gtest.h>

#include "cnk/mmap_tracker.hpp"

namespace bg::cnk {
namespace {

constexpr hw::VAddr kLo = 0x40000000;
constexpr hw::VAddr kHi = 0x50000000;  // 256MB zone

class MmapTrackerTest : public ::testing::Test {
 protected:
  void SetUp() override { t.reset(kLo, kHi); }
  MmapTracker t;
};

TEST_F(MmapTrackerTest, AllocatesFromTheTopDown) {
  const auto a = t.alloc(4096);
  ASSERT_TRUE(a);
  EXPECT_EQ(*a, kHi - 4096);
  const auto b = t.alloc(4096);
  ASSERT_TRUE(b);
  EXPECT_LT(*b, *a);
}

TEST_F(MmapTrackerTest, RoundsLengthToAlignment) {
  const auto a = t.alloc(100);
  ASSERT_TRUE(a);
  EXPECT_EQ(*a % 4096, 0u);
  EXPECT_TRUE(t.isAllocated(*a + 4095));
  EXPECT_FALSE(t.isAllocated(*a + 4096));
}

TEST_F(MmapTrackerTest, FreeCoalescesWithNeighbors) {
  const auto a = t.alloc(4096);
  const auto b = t.alloc(4096);
  const auto c = t.alloc(4096);
  ASSERT_TRUE(a && b && c);
  // Free outer two, then the middle: all three merge back with the
  // big free block -> a single free region again.
  EXPECT_TRUE(t.free(*a, 4096));
  EXPECT_TRUE(t.free(*c, 4096));
  EXPECT_TRUE(t.free(*b, 4096));
  EXPECT_EQ(t.freeBlockCount(), 1u);
  EXPECT_EQ(t.bytesAllocated(), 0u);
}

TEST_F(MmapTrackerTest, ReusesFreedSpace) {
  const auto a = t.alloc(1 << 20);
  ASSERT_TRUE(a);
  EXPECT_TRUE(t.free(*a, 1 << 20));
  const auto b = t.alloc(1 << 20);
  ASSERT_TRUE(b);
  EXPECT_EQ(*a, *b);
}

TEST_F(MmapTrackerTest, FailsWhenExhausted) {
  const auto a = t.alloc(kHi - kLo);
  ASSERT_TRUE(a);
  EXPECT_FALSE(t.alloc(4096).has_value());
  EXPECT_TRUE(t.free(*a, kHi - kLo));
  EXPECT_TRUE(t.alloc(4096).has_value());
}

TEST_F(MmapTrackerTest, FixedMappingInsideFreeSpace) {
  EXPECT_TRUE(t.allocFixed(kLo + 0x1000, 0x2000));
  EXPECT_TRUE(t.isAllocated(kLo + 0x1000));
  // Overlap rejected.
  EXPECT_FALSE(t.allocFixed(kLo + 0x2000, 0x2000));
  // Outside the zone rejected.
  EXPECT_FALSE(t.allocFixed(kHi, 0x1000));
}

TEST_F(MmapTrackerTest, PartialUnmapSplitsAllocation) {
  const auto a = t.alloc(3 * 4096);
  ASSERT_TRUE(a);
  // Unmap the middle page.
  EXPECT_TRUE(t.free(*a + 4096, 4096));
  EXPECT_TRUE(t.isAllocated(*a));
  EXPECT_FALSE(t.isAllocated(*a + 4096));
  EXPECT_TRUE(t.isAllocated(*a + 2 * 4096));
  EXPECT_EQ(t.bytesAllocated(), 2u * 4096);
}

TEST_F(MmapTrackerTest, FreeUnknownRangeFails) {
  EXPECT_FALSE(t.free(kLo + 0x5000, 4096));
}

TEST_F(MmapTrackerTest, SetProtSplitsAndRecoalesces) {
  const auto a = t.alloc(4 * 4096);
  ASSERT_TRUE(a);
  // Protect an inner subrange -> three bookkeeping blocks.
  EXPECT_TRUE(t.setProt(*a + 4096, 4096, hw::kPermNone));
  EXPECT_EQ(t.allocatedBlockCount(), 3u);
  // Restore -> coalesces back to one (the paper's "coalesces ... when
  // permissions on those buffers change").
  EXPECT_TRUE(t.setProt(*a + 4096, 4096, hw::kPermRW));
  EXPECT_EQ(t.allocatedBlockCount(), 1u);
}

TEST_F(MmapTrackerTest, SetProtOutsideAllocationFails) {
  EXPECT_FALSE(t.setProt(kLo, 4096, hw::kPermNone));
}

TEST_F(MmapTrackerTest, LowestAllocatedTracksZoneFloor) {
  EXPECT_EQ(t.lowestAllocated(), kHi);  // nothing allocated
  const auto a = t.alloc(4096);
  ASSERT_TRUE(a);
  EXPECT_EQ(t.lowestAllocated(), *a);
}

// Property: a random alloc/free workload never corrupts the books.
TEST_F(MmapTrackerTest, RandomWorkloadConservesBytes) {
  std::vector<std::pair<hw::VAddr, std::uint64_t>> live;
  std::uint64_t expect = 0;
  std::uint64_t seed = 99;
  auto rnd = [&] {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    return seed >> 33;
  };
  for (int i = 0; i < 2000; ++i) {
    if (live.empty() || rnd() % 2 == 0) {
      const std::uint64_t len = ((rnd() % 64) + 1) * 4096;
      const auto a = t.alloc(len);
      if (a) {
        live.emplace_back(*a, len);
        expect += len;
      }
    } else {
      const std::size_t k = rnd() % live.size();
      EXPECT_TRUE(t.free(live[k].first, live[k].second));
      expect -= live[k].second;
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
    }
    ASSERT_EQ(t.bytesAllocated(), expect);
  }
  for (const auto& [addr, len] : live) EXPECT_TRUE(t.free(addr, len));
  EXPECT_EQ(t.bytesAllocated(), 0u);
  EXPECT_EQ(t.freeBlockCount(), 1u);  // fully coalesced
}

}  // namespace
}  // namespace bg::cnk

// Multi-tenant fair-share control plane: property-based torture suite.
//
// Randomized multi-account job streams run against the fair-share
// policy (QOS bands, hierarchical decayed-usage priority, per-account
// limits, preemption) and are checked against four oracles:
//
//   1. starvation-freedom — every submission reaches exactly one
//      terminal state and the stream drains; no queue wedges behind a
//      capped or out-ranked account
//   2. limit enforcement — live probes sample every account's
//      runningJobs / nodesInUse against maxRunning / maxNodes while
//      the stream is in flight; a violation at any sampled cycle fails
//   3. share convergence — under saturated equal demand, observed
//      usage approaches the configured share ratio
//   4. preemption safety — preempted jobs are requeued (never failed,
//      no retry budget charged), the preemption count reconciles
//      across the job table, the node counters, and the timeline, and
//      schedules replay bit-identically across double runs (zero-fault
//      and fault-injected, including control-plane warm restarts)
//
// Satellites live here too: the FIFO/backfill golden-hash pin (the
// multi-tenant plumbing must not disturb single-tenant schedules), the
// accounting checkpoint round-trip, and the front-door quota path
// (kQuotaExceeded distinct from kServerBusy, exactly-once under
// retransmit). FAIRSHARE_SLOW=1 unlocks the ≥8-seed sweep in the
// `slow` ctest lane.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fault_schedule.hpp"
#include "frontdoor/frontdoor.hpp"
#include "frontdoor/swarm.hpp"
#include "runtime/app.hpp"
#include "sim/bytes.hpp"
#include "sim/rng.hpp"
#include "svc/accounting.hpp"
#include "svc/failover.hpp"
#include "vm/builder.hpp"

namespace bg {
namespace {

std::uint64_t envU64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::strtoull(v, nullptr, 10)
                                    : fallback;
}

std::shared_ptr<kernel::ElfImage> workImage(const std::string& name,
                                            std::uint64_t reps,
                                            std::uint64_t cyclesPerRep) {
  vm::ProgramBuilder b(name);
  const auto top = b.loopBegin(16, static_cast<std::int64_t>(reps));
  b.compute(cyclesPerRep);
  b.loopEnd(16, top);
  b.halt(0);
  return kernel::ElfImage::makeExecutable(name, std::move(b).build());
}

/// The torture suite's account roster: a share forest with two tiers,
/// every QOS band, a non-preemptable account, and real limits so the
/// limit oracle has something to catch.
svc::FairShareConfig tortureAccounts() {
  svc::FairShareConfig fs;
  svc::AccountSpec physics;
  physics.name = "physics";
  physics.shares = 3;
  svc::AccountSpec chem;
  chem.name = "chem";
  chem.shares = 1;
  chem.maxRunning = 2;
  svc::AccountSpec physSub;
  physSub.name = "phys-sub";
  physSub.parent = 1;  // under physics
  physSub.qos = svc::Qos::kLow;
  physSub.maxNodes = 3;
  svc::AccountSpec urgent;
  urgent.name = "urgent";
  urgent.qos = svc::Qos::kHigh;
  urgent.preemptable = false;
  fs.accounts = {physics, chem, physSub, urgent};
  return fs;
}

struct TortureOutcome {
  std::uint64_t hash = 0;
  std::uint64_t accountingDigest = 0;
  std::vector<std::string> timeline;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t limitViolations = 0;
  std::uint64_t probeSamples = 0;
  bool drained = false;
};

TortureOutcome runFairShareTorture(std::uint64_t seed, int jobCount,
                                   bool withFaults) {
  const int kNodes = 6;
  rt::ClusterConfig cfg;
  cfg.computeNodes = kNodes;
  cfg.seed = seed;
  rt::Cluster cluster(cfg);

  svc::ServiceNodeConfig snCfg;
  snCfg.policy = svc::SchedPolicyKind::kFairShare;
  snCfg.fairshare = tortureAccounts();
  snCfg.ras.warnDrainThreshold = 5;
  svc::ServiceHost host(cluster, snCfg);

  // Multi-account stream: widths 1-3, a sprinkling of unaccounted
  // (account 0) jobs, staggered arrivals.
  sim::Rng rng(seed, "fairshare-torture");
  const sim::Cycle arrivalSpan =
      static_cast<sim::Cycle>(jobCount) * 40'000;
  struct Arrival {
    sim::Cycle at;
    svc::JobDesc jd;
  };
  std::vector<Arrival> arrivals;
  for (int i = 0; i < jobCount; ++i) {
    svc::JobDesc jd;
    jd.name = "f" + std::to_string(i);
    jd.kernel = rt::KernelKind::kCnk;
    jd.nodes = 1 + static_cast<int>(rng.nextBelow(3));
    jd.account = static_cast<svc::AccountId>(rng.nextBelow(5));  // 0-4
    const std::uint64_t reps = 5 + rng.nextBelow(16);
    jd.exe = workImage(jd.name, reps, 10'000);
    jd.estCycles = reps * 10'000 + 50'000;
    jd.maxRetries = 2;
    arrivals.push_back({rng.nextBelow(arrivalSpan), std::move(jd)});
  }
  int arrived = 0;
  for (Arrival& a : arrivals) {
    cluster.engine().scheduleAt(a.at, [&host, &arrived, &a] {
      host.submit(std::move(a.jd));
      ++arrived;
    });
  }

  if (withFaults) {
    const testing::FaultSchedule faults = testing::FaultSchedule::random(
        seed, kNodes, arrivalSpan + 2'000'000, /*crashes=*/2, /*deaths=*/3,
        /*storms=*/2);
    faults.arm(cluster, host);
  }

  // Limit oracle: probe every account's live tallies on a fixed grid
  // while the stream is in flight. A capped account caught over its
  // configured limit at ANY sampled cycle is a policy bug.
  TortureOutcome out;
  const svc::FairShareConfig& fs = snCfg.fairshare;
  for (sim::Cycle t = 25'000; t < arrivalSpan + 4'000'000; t += 75'000) {
    cluster.engine().scheduleAt(t, [&host, &fs, &out] {
      if (!host.alive()) return;
      ++out.probeSamples;
      const svc::Accounting& acct = host.node().accounting();
      for (std::size_t i = 0; i < fs.accounts.size(); ++i) {
        const svc::AccountSpec& spec = fs.accounts[i];
        const svc::AccountUsage& u =
            acct.usage(static_cast<svc::AccountId>(i + 1));
        if (spec.maxRunning != 0 && u.runningJobs > spec.maxRunning) {
          ++out.limitViolations;
        }
        if (spec.maxNodes != 0 && u.nodesInUse > spec.maxNodes) {
          ++out.limitViolations;
        }
      }
    });
  }

  host.start();
  out.drained = cluster.engine().runWhile(
      [&] { return arrived == jobCount && host.drained(); },
      2'000'000'000);
  svc::SvcMetrics m = host.metrics();
  out.hash = m.scheduleHash;
  out.completed = m.jobsCompleted;
  out.failed = m.jobsFailed;
  out.preemptions = m.preemptions;
  if (host.alive()) {
    out.timeline = host.node().timeline();
    out.accountingDigest = host.node().accounting().stateDigest();
  }

  // Oracle 1: starvation-freedom. Every job terminal, stream drained.
  EXPECT_TRUE(out.drained) << "stream wedged (seed " << seed << ")";
  const auto& jobs = host.node().jobs();
  EXPECT_EQ(jobs.size(), static_cast<std::size_t>(jobCount));
  std::uint64_t preemptCountSum = 0;
  for (const auto& jr : jobs) {
    EXPECT_TRUE(jr.state == svc::JobState::kCompleted ||
                jr.state == svc::JobState::kFailed)
        << jr.desc.name << " not terminal (seed " << seed << ")";
    // Oracle 4 (part): preemption charges no retry budget — the
    // attempt bound stretches by exactly the preemption count.
    EXPECT_LE(jr.attempts, jr.desc.maxRetries + 1 + jr.preemptCount)
        << jr.desc.name << " overdrew its retry budget";
    preemptCountSum += static_cast<std::uint64_t>(jr.preemptCount);
  }
  EXPECT_EQ(out.completed + out.failed,
            static_cast<std::uint64_t>(jobCount));

  // Oracle 2: the live probes saw no account over its limits.
  EXPECT_EQ(out.limitViolations, 0u) << "limit violated (seed " << seed
                                     << ")";
  EXPECT_GT(out.probeSamples, 0u) << "limit oracle never sampled";

  // Oracle 4 (part): the preemption books reconcile — node counter,
  // per-job counts, per-account counts, and timeline notes all agree.
  EXPECT_EQ(preemptCountSum, out.preemptions);
  if (host.alive()) {
    std::uint64_t acctPreempts = 0;
    const svc::Accounting& acct = host.node().accounting();
    for (std::size_t i = 0; i < fs.accounts.size(); ++i) {
      acctPreempts +=
          acct.usage(static_cast<svc::AccountId>(i + 1)).preemptions;
    }
    // Unaccounted (account 0) jobs are never preemption victims, so
    // the per-account tallies cover every preemption.
    EXPECT_EQ(acctPreempts, out.preemptions);
    std::uint64_t notes = 0;
    for (const std::string& line : out.timeline) {
      if (line.find("preempt") != std::string::npos) ++notes;
    }
    EXPECT_EQ(notes, out.preemptions);
  }
  return out;
}

// ---------------------------------------------------------------------
// Accounting unit properties
// ---------------------------------------------------------------------

svc::FairShareConfig twoAccounts(std::uint32_t sharesA = 1,
                                 std::uint32_t sharesB = 1) {
  svc::FairShareConfig fs;
  svc::AccountSpec a;
  a.name = "a";
  a.shares = sharesA;
  svc::AccountSpec b;
  b.name = "b";
  b.shares = sharesB;
  fs.accounts = {a, b};
  return fs;
}

TEST(Accounting, DecayComposesExactly) {
  // decayTo(t1); decayTo(t2) must equal a single decayTo(t2) from the
  // same state: the multiplicative epoch grid makes charge placement
  // irrelevant, which is what keeps warm restarts bit-identical.
  svc::Accounting stepped(twoAccounts());
  svc::Accounting jumped(twoAccounts());
  stepped.onLaunch(1, 4);
  jumped.onLaunch(1, 4);
  stepped.onStop(1, 4, 1'000'000, 500'000);
  jumped.onStop(1, 4, 1'000'000, 500'000);
  const sim::Cycle far = 19 * 2'000'000 + 123;
  for (sim::Cycle t = 500'000; t <= far; t += 700'000) stepped.decayTo(t);
  stepped.decayTo(far);
  jumped.decayTo(far);
  EXPECT_EQ(stepped.usage(1).decayedUsage, jumped.usage(1).decayedUsage);
  EXPECT_EQ(stepped.stateDigest(), jumped.stateDigest());
  EXPECT_LT(stepped.usage(1).decayedUsage, 1'000'000u) << "never decayed";
}

TEST(Accounting, ScoreFavorsTheUnderserved) {
  svc::Accounting acct(twoAccounts(1, 1));
  // Equal shares, account 1 has consumed everything so far.
  acct.onLaunch(1, 2);
  acct.onStop(1, 2, 5'000'000, 100'000);
  EXPECT_LT(acct.fairShareScore(1), acct.fairShareScore(2));

  // More shares outrank at equal usage.
  svc::Accounting wt(twoAccounts(3, 1));
  wt.onLaunch(1, 1);
  wt.onStop(1, 1, 1'000'000, 100'000);
  wt.onLaunch(2, 1);
  wt.onStop(2, 1, 1'000'000, 100'000);
  EXPECT_GT(wt.fairShareScore(1), wt.fairShareScore(2));
}

TEST(Accounting, HierarchyChargesTheParentChain) {
  // Two top-level accounts, one child each. The child under the
  // heavily-used parent must score below the child under the idle
  // parent even though neither child used anything itself.
  svc::FairShareConfig fs;
  svc::AccountSpec pa, pb, ca, cb;
  pa.name = "pa";
  pb.name = "pb";
  ca.name = "ca";
  ca.parent = 1;
  cb.name = "cb";
  cb.parent = 2;
  fs.accounts = {pa, pb, ca, cb};
  svc::Accounting acct(fs);
  acct.onLaunch(1, 4);
  acct.onStop(1, 4, 8'000'000, 50'000);
  EXPECT_LT(acct.fairShareScore(3), acct.fairShareScore(4));
}

TEST(Accounting, AdmitQueuedHonorsMaxQueuedAndBatchExtras) {
  svc::FairShareConfig fs = twoAccounts();
  fs.accounts[0].maxQueued = 2;
  svc::Accounting acct(fs);
  EXPECT_TRUE(acct.admitQueued(1));
  EXPECT_TRUE(acct.admitQueued(1, 1));
  EXPECT_FALSE(acct.admitQueued(1, 2));  // batch already holds the quota
  acct.onQueued(1);
  acct.onQueued(1);
  EXPECT_FALSE(acct.admitQueued(1));
  acct.onDequeued(1);
  EXPECT_TRUE(acct.admitQueued(1));
  // Unlimited account and unknown ids always admit.
  EXPECT_TRUE(acct.admitQueued(2, 1000));
  EXPECT_TRUE(acct.admitQueued(0));
  EXPECT_TRUE(acct.admitQueued(99));
}

TEST(Accounting, CheckpointRoundTripIsByteIdentical) {
  // Satellite: serialize -> restore -> re-serialize must be
  // byte-identical, and the digest must survive the trip.
  svc::Accounting acct(tortureAccounts());
  acct.onQueued(1);
  acct.onQueued(2);
  acct.onLaunch(1, 3);
  acct.onDequeued(1);
  acct.onStop(1, 3, 2'500'000, 2'100'000);
  acct.onCompleted(1, true);
  acct.onPreempted(3);
  acct.onQuotaReject(2);
  acct.decayTo(9'000'000);

  sim::ByteWriter w1;
  acct.saveTo(w1);
  const std::vector<std::byte> img1 = std::move(w1).take();

  svc::Accounting back(tortureAccounts());
  sim::ByteReader r(img1);
  ASSERT_TRUE(back.loadFrom(r));
  EXPECT_EQ(back.stateDigest(), acct.stateDigest());
  EXPECT_EQ(back.usage(1).decayedUsage, acct.usage(1).decayedUsage);
  EXPECT_EQ(back.usage(2).quotaRejects, 1u);
  EXPECT_EQ(back.usage(3).preemptions, 1u);

  sim::ByteWriter w2;
  back.saveTo(w2);
  EXPECT_EQ(std::move(w2).take(), img1);
}

// ---------------------------------------------------------------------
// FairSharePolicy::select — randomized-context properties
// ---------------------------------------------------------------------

TEST(FairSharePolicy, SelectHonorsLimitsBandsAndCapacity) {
  const std::uint64_t seed = envU64("FAIRSHARE_SEED", 1);
  sim::Rng rng(seed, "fairshare-select-oracle");
  svc::FairSharePolicy policy;
  int nontrivial = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const int avail = static_cast<int>(rng.nextBelow(7));
    svc::SchedContext ctx;
    ctx.now = 1'000 * rng.nextBelow(1'000);
    ctx.readyNodes = [avail](rt::KernelKind) { return avail; };
    const std::size_t nAcct = 2 + rng.nextBelow(3);
    for (std::size_t i = 0; i < nAcct; ++i) {
      svc::AccountSchedView v;
      v.id = static_cast<svc::AccountId>(i + 1);
      v.qos = static_cast<svc::Qos>(rng.nextBelow(3));
      v.maxRunning = static_cast<std::uint32_t>(rng.nextBelow(3));  // 0-2
      v.maxNodes = static_cast<std::uint32_t>(rng.nextBelow(5));
      v.runningJobs = static_cast<std::uint32_t>(rng.nextBelow(2));
      v.nodesInUse = v.runningJobs;
      v.fairShareScore = rng.nextBelow(1ULL << 20);
      ctx.accounts.push_back(v);
    }
    std::vector<svc::JobRecord> storage(4 + rng.nextBelow(10));
    for (std::size_t i = 0; i < storage.size(); ++i) {
      storage[i].id = static_cast<svc::JobId>(i + 1);
      storage[i].desc.kernel =
          rng.nextBelow(4) == 0 ? rt::KernelKind::kFwk : rt::KernelKind::kCnk;
      storage[i].desc.nodes = 1 + static_cast<int>(rng.nextBelow(4));
      storage[i].desc.account =
          static_cast<svc::AccountId>(rng.nextBelow(nAcct + 1));  // 0..n
      ctx.queue.push_back(&storage[i]);
    }

    const std::vector<std::size_t> picks = policy.select(ctx);

    // Property: per-kind launches fit the available capacity, and no
    // account exceeds maxRunning / maxNodes counting what was already
    // running when the round began.
    std::map<std::size_t, int> kindNodes;
    std::vector<std::uint32_t> runs(nAcct, 0), nodes(nAcct, 0);
    for (std::size_t qi : picks) {
      const svc::JobRecord* j = ctx.queue[qi];
      kindNodes[j->desc.kernel == rt::KernelKind::kCnk ? 0u : 1u] +=
          j->desc.nodes;
      const svc::AccountId id = j->desc.account;
      if (id >= 1 && id <= nAcct) {
        ++runs[id - 1];
        nodes[id - 1] += static_cast<std::uint32_t>(j->desc.nodes);
      }
    }
    for (const auto& [k, n] : kindNodes) EXPECT_LE(n, avail);
    for (std::size_t i = 0; i < nAcct; ++i) {
      const svc::AccountSchedView& v = ctx.accounts[i];
      if (v.maxRunning != 0) {
        EXPECT_LE(v.runningJobs + runs[i], v.maxRunning) << "trial "
                                                         << trial;
      }
      if (v.maxNodes != 0) {
        EXPECT_LE(v.nodesInUse + nodes[i], v.maxNodes) << "trial " << trial;
      }
    }

    // Property: strict QOS bands per kind — no launched job sits in a
    // strictly lower band than a CAPACITY-blocked job of the same
    // kind. Account-limit skips deliberately don't block (waiting
    // can't free a limit), so the oracle only judges blocked jobs
    // whose account has no limits at all (those can only have been
    // stopped by capacity).
    auto qosOf = [&](const svc::JobRecord* j) {
      const svc::AccountId id = j->desc.account;
      return id >= 1 && id <= nAcct ? ctx.accounts[id - 1].qos
                                    : svc::Qos::kNormal;
    };
    auto unlimited = [&](const svc::JobRecord* j) {
      const svc::AccountId id = j->desc.account;
      if (id < 1 || id > nAcct) return true;  // unaccounted: no limits
      const svc::AccountSchedView& v = ctx.accounts[id - 1];
      return v.maxRunning == 0 && v.maxNodes == 0;
    };
    std::vector<bool> picked(ctx.queue.size(), false);
    for (std::size_t qi : picks) picked[qi] = true;
    for (std::size_t b = 0; b < ctx.queue.size(); ++b) {
      if (picked[b]) continue;
      const svc::JobRecord* blocked = ctx.queue[b];
      if (blocked->desc.nodes <= avail) continue;  // never fit anyway
      if (!unlimited(blocked)) continue;  // may have been limit-skipped
      for (std::size_t qi : picks) {
        const svc::JobRecord* won = ctx.queue[qi];
        if (won->desc.kernel != blocked->desc.kernel) continue;
        EXPECT_GE(qosOf(won), qosOf(blocked))
            << "a lower-QOS job launched past a blocked higher band "
            << "(trial " << trial << ")";
      }
    }
    if (!picks.empty() && picks.size() < ctx.queue.size()) ++nontrivial;
  }
  EXPECT_GE(nontrivial, 50) << "oracle barely exercised";
}

// ---------------------------------------------------------------------
// Preemption end-to-end
// ---------------------------------------------------------------------

TEST(FairShare, PreemptionFreesNodesForHighQosExactlyOnce) {
  rt::ClusterConfig cfg;
  cfg.computeNodes = 4;
  cfg.seed = 11;
  rt::Cluster cluster(cfg);

  svc::ServiceNodeConfig snCfg;
  snCfg.policy = svc::SchedPolicyKind::kFairShare;
  svc::AccountSpec low;
  low.name = "batch";
  low.qos = svc::Qos::kLow;
  svc::AccountSpec high;
  high.name = "urgent";
  high.qos = svc::Qos::kHigh;
  snCfg.fairshare.accounts = {low, high};
  svc::ServiceHost host(cluster, snCfg);

  // Four long single-node low-QOS jobs occupy the whole machine...
  int arrived = 0;
  for (int i = 0; i < 4; ++i) {
    svc::JobDesc jd;
    jd.name = "low" + std::to_string(i);
    jd.nodes = 1;
    jd.account = 1;
    jd.exe = workImage(jd.name, 400, 10'000);
    jd.estCycles = 4'200'000;
    cluster.engine().scheduleAt(10'000, [&host, jd, &arrived]() mutable {
      host.submit(std::move(jd));
      ++arrived;
    });
  }
  // ...then a high-QOS job needing 3 of the 4 nodes arrives.
  svc::JobDesc hi;
  hi.name = "hi";
  hi.nodes = 3;
  hi.account = 2;
  hi.exe = workImage("hi", 10, 10'000);
  hi.estCycles = 200'000;
  cluster.engine().scheduleAt(600'000, [&host, hi, &arrived]() mutable {
    host.submit(std::move(hi));
    ++arrived;
  });

  host.start();
  ASSERT_TRUE(cluster.engine().runWhile(
      [&] { return arrived == 5 && host.drained(); }, 1'000'000'000));

  // Exactly the shortfall was preempted: 3 nodes needed, 0 free.
  EXPECT_EQ(host.node().preemptions(), 3u);
  const svc::JobRecord* hij = nullptr;
  int victims = 0;
  for (const auto& jr : host.node().jobs()) {
    EXPECT_EQ(jr.state, svc::JobState::kCompleted) << jr.desc.name;
    if (jr.desc.name == "hi") hij = &jr;
    if (jr.preemptCount > 0) {
      ++victims;
      EXPECT_EQ(jr.preemptCount, 1) << jr.desc.name << " killed twice";
      // No retry budget was charged: two launches on a zero-retry job.
      EXPECT_EQ(jr.attempts, 2) << jr.desc.name;
    }
  }
  ASSERT_NE(hij, nullptr);
  EXPECT_EQ(victims, 3);
  EXPECT_EQ(host.node().accounting().usage(1).preemptions, 3u);
  // The high job ran long before the 4.2M-cycle low jobs would have
  // finished on their own.
  EXPECT_LT(hij->startCycle, 4'000'000u);
  EXPECT_EQ(host.metrics().preemptions, 3u);
}

TEST(FairShare, NonPreemptableAndPeerQosAreNeverVictims) {
  rt::ClusterConfig cfg;
  cfg.computeNodes = 2;
  cfg.seed = 12;
  rt::Cluster cluster(cfg);

  svc::ServiceNodeConfig snCfg;
  snCfg.policy = svc::SchedPolicyKind::kFairShare;
  svc::AccountSpec pinned;
  pinned.name = "pinned";
  pinned.qos = svc::Qos::kLow;
  pinned.preemptable = false;
  svc::AccountSpec peer;
  peer.name = "peer";
  peer.qos = svc::Qos::kHigh;
  svc::AccountSpec rush;
  rush.name = "rush";
  rush.qos = svc::Qos::kHigh;
  snCfg.fairshare.accounts = {pinned, peer, rush};
  svc::ServiceHost host(cluster, snCfg);

  int arrived = 0;
  auto submitAt = [&](sim::Cycle at, const std::string& name,
                      svc::AccountId acct, std::uint64_t reps) {
    svc::JobDesc jd;
    jd.name = name;
    jd.nodes = 1;
    jd.account = acct;
    jd.exe = workImage(name, reps, 10'000);
    jd.estCycles = reps * 10'000 + 100'000;
    cluster.engine().scheduleAt(at, [&host, jd, &arrived]() mutable {
      host.submit(std::move(jd));
      ++arrived;
    });
  };
  submitAt(10'000, "pinned0", 1, 300);  // non-preemptable low
  submitAt(10'000, "peer0", 2, 300);    // high, same band as the rush
  submitAt(500'000, "rush0", 3, 10);    // high arrival finds no nodes

  host.start();
  ASSERT_TRUE(cluster.engine().runWhile(
      [&] { return arrived == 3 && host.drained(); }, 1'000'000'000));
  // Nothing could legally be killed: the low job is pinned and the
  // peer is not in a strictly lower band. The rush job just waits.
  EXPECT_EQ(host.node().preemptions(), 0u);
  for (const auto& jr : host.node().jobs()) {
    EXPECT_EQ(jr.preemptCount, 0) << jr.desc.name;
    EXPECT_EQ(jr.state, svc::JobState::kCompleted) << jr.desc.name;
  }
}

// ---------------------------------------------------------------------
// Share convergence (oracle 3)
// ---------------------------------------------------------------------

TEST(FairShare, SharesConvergeUnderSaturatedEqualDemand) {
  rt::ClusterConfig cfg;
  cfg.computeNodes = 4;
  cfg.seed = 21;
  rt::Cluster cluster(cfg);

  svc::ServiceNodeConfig snCfg;
  snCfg.policy = svc::SchedPolicyKind::kFairShare;
  snCfg.fairshare = twoAccounts(/*sharesA=*/3, /*sharesB=*/1);
  svc::ServiceHost host(cluster, snCfg);

  // Equal demand from both accounts, far more than the machine can
  // run at once: the only thing separating them is the 3:1 shares.
  int arrived = 0;
  const int kPer = 40;
  for (int i = 0; i < kPer * 2; ++i) {
    svc::JobDesc jd;
    jd.name = (i % 2 == 0 ? "a" : "b") + std::to_string(i / 2);
    jd.nodes = 1;
    jd.account = i % 2 == 0 ? 1 : 2;
    jd.exe = workImage(jd.name, 20, 10'000);
    jd.estCycles = 260'000;
    cluster.engine().scheduleAt(1'000 + i, [&host, jd, &arrived]() mutable {
      host.submit(std::move(jd));
      ++arrived;
    });
  }
  host.start();
  ASSERT_TRUE(cluster.engine().runWhile(
      [&] { return arrived == kPer * 2 && host.drained(); },
      1'000'000'000));

  const svc::Accounting& acct = host.node().accounting();
  const double ua = static_cast<double>(acct.usage(1).lifetimeUsage);
  const double ub = static_cast<double>(acct.usage(2).lifetimeUsage);
  ASSERT_GT(ub, 0.0);
  const double ratio = ua / ub;
  // Everything eventually runs (equal job sizes), so lifetime usage
  // ends 1:1 — convergence shows in WHO RAN FIRST. Compare usage at
  // the midpoint instead: account 1 must have harvested roughly 3x.
  // We approximate "midpoint" via completion order: the first 40
  // completions should lean ~3:1 toward account 1.
  int firstA = 0, firstB = 0;
  std::vector<std::pair<sim::Cycle, svc::AccountId>> ends;
  for (const auto& jr : host.node().jobs()) {
    ends.push_back({jr.endCycle, jr.desc.account});
  }
  std::sort(ends.begin(), ends.end());
  for (int i = 0; i < kPer; ++i) {
    (ends[i].second == 1 ? firstA : firstB)++;
  }
  EXPECT_GE(firstA, firstB * 2)
      << "3:1 shares did not dominate early completions (ratio "
      << ratio << ")";
  EXPECT_GT(firstB, 0) << "low-share account fully starved";
}

// ---------------------------------------------------------------------
// Single-tenant neutrality: golden-hash pin (satellite)
// ---------------------------------------------------------------------

std::uint64_t runPinnedStream(svc::SchedPolicyKind policy) {
  rt::ClusterConfig cfg;
  cfg.computeNodes = 6;
  cfg.seed = 7;
  rt::Cluster cluster(cfg);
  svc::ServiceNodeConfig snCfg;
  snCfg.policy = policy;
  svc::ServiceHost host(cluster, snCfg);

  sim::Rng rng(99, "fairshare-pin");
  int arrived = 0;
  const int kJobs = 40;
  for (int i = 0; i < kJobs; ++i) {
    svc::JobDesc jd;
    jd.name = "p" + std::to_string(i);
    jd.nodes = 1 + static_cast<int>(rng.nextBelow(3));
    const std::uint64_t reps = 5 + rng.nextBelow(12);
    jd.exe = workImage(jd.name, reps, 10'000);
    jd.estCycles = reps * 10'000 + 50'000;
    const sim::Cycle at = rng.nextBelow(1'500'000);
    cluster.engine().scheduleAt(at, [&host, jd, &arrived]() mutable {
      host.submit(std::move(jd));
      ++arrived;
    });
  }
  host.start();
  EXPECT_TRUE(cluster.engine().runWhile(
      [&] { return arrived == kJobs && host.drained(); }, 1'000'000'000));
  return host.metrics().scheduleHash;
}

TEST(FairShare, SingleTenantGoldenHashesUndisturbed) {
  // Pinned single-tenant schedules: the multi-tenant plumbing (account
  // fields, accounting hooks, SchedContext extensions) must leave
  // FIFO and backfill byte-for-byte where they were. If one of these
  // moves, a supposedly-neutral refactor changed scheduling behavior.
  EXPECT_EQ(runPinnedStream(svc::SchedPolicyKind::kFifo),
            0xe21ec28fcc1c0e95ULL);
  EXPECT_EQ(runPinnedStream(svc::SchedPolicyKind::kBackfill),
            0xfc400982c122871eULL);
  // Fair-share with ZERO accounts degenerates to FIFO order (same
  // pin), so the no-accounts fast path provably adds nothing.
  EXPECT_EQ(runPinnedStream(svc::SchedPolicyKind::kFairShare),
            0xe21ec28fcc1c0e95ULL);
}

// ---------------------------------------------------------------------
// Torture suite (tentpole oracles 1-4 on randomized streams)
// ---------------------------------------------------------------------

TEST(FairShareTorture, ZeroFaultStreamHoldsOraclesAndReplays) {
  const std::uint64_t seed = envU64("FAIRSHARE_SEED", 1);
  const int jobs = static_cast<int>(envU64("FAIRSHARE_JOBS", 120));
  const TortureOutcome a = runFairShareTorture(seed, jobs, false);
  const TortureOutcome b = runFairShareTorture(seed, jobs, false);
  EXPECT_EQ(a.hash, b.hash) << "zero-fault replay diverged";
  EXPECT_EQ(a.timeline, b.timeline);
  EXPECT_EQ(a.accountingDigest, b.accountingDigest)
      << "accounting state diverged across identical runs";
}

TEST(FairShareTorture, FaultedStreamSurvivesWarmRestartsAndReplays) {
  const std::uint64_t seed = envU64("FAIRSHARE_SEED", 1);
  const int jobs = static_cast<int>(envU64("FAIRSHARE_JOBS", 120));
  const TortureOutcome a = runFairShareTorture(seed, jobs, true);
  const TortureOutcome b = runFairShareTorture(seed, jobs, true);
  // Control-plane crashes + node deaths + warn storms: the schedule
  // (including every fair-share decision made before and after each
  // warm restart) and the final accounting state replay bit-identically
  // — the checkpointed accounting section is doing its job.
  EXPECT_EQ(a.hash, b.hash) << "faulted replay diverged";
  EXPECT_EQ(a.timeline, b.timeline);
  EXPECT_EQ(a.accountingDigest, b.accountingDigest);
}

// ---------------------------------------------------------------------
// Front door × fair share (satellite)
// ---------------------------------------------------------------------

std::shared_ptr<kernel::ElfImage> fdWorkImage() {
  vm::ProgramBuilder b("fdwork");
  const auto top = b.loopBegin(16, 12);
  b.compute(10'000);
  b.loopEnd(16, top);
  b.halt(0);
  return kernel::ElfImage::makeExecutable("fdwork", std::move(b).build());
}

struct QuotaRig {
  rt::Cluster cluster;
  svc::ServiceHost host;
  hw::CollectiveNet net;
  fd::FrontDoor door;
  std::vector<fd::Response> responses;

  QuotaRig(svc::FairShareConfig fs, fd::FrontDoorConfig fcfg)
      : cluster([] {
          rt::ClusterConfig c;
          c.computeNodes = 2;
          c.seed = 7;
          return c;
        }()),
        host(cluster,
             [&fs] {
               svc::ServiceNodeConfig s;
               s.policy = svc::SchedPolicyKind::kFairShare;
               s.fairshare = std::move(fs);
               s.checkpointEveryPumps = 0;
               return s;
             }()),
        net(cluster.engine(), hw::CollectiveConfig{}),
        door(cluster.engine(), host, net, fcfg) {
    host.store().registerImage(fdWorkImage());
    host.start();
    door.attach();
    net.setHandler(5, [this](hw::CollPacket&& p) {
      const auto r = fd::Response::decode(p.payload);
      if (r) responses.push_back(*r);
    });
  }

  void send(const fd::Request& q) {
    hw::CollPacket pkt;
    pkt.srcNode = 5;
    pkt.dstNode = 0;
    pkt.channel = fd::kChanFdRequest;
    pkt.payload = q.encode();
    net.send(std::move(pkt));
  }

  void settle(sim::Cycle cycles = 2'000'000) {
    cluster.engine().runUntil(cluster.engine().now() + cycles);
  }
};

TEST(FdFairShare, QuotaRejectIsDistinctLiveAndExactlyOnce) {
  svc::FairShareConfig fs = twoAccounts();
  fs.accounts[0].maxQueued = 2;
  fd::FrontDoorConfig fcfg;
  fcfg.accountOf = [](std::uint32_t cid) {
    return cid == 7 ? svc::AccountId{1} : svc::AccountId{0};
  };
  QuotaRig rig(std::move(fs), fcfg);

  auto submit = [&](std::uint64_t seq, bool retransmit = false) {
    fd::Request q;
    q.type = fd::MsgType::kSubmit;
    q.clientId = 7;
    q.seq = seq;
    q.retransmit = retransmit;
    q.jobName = "q" + std::to_string(seq);
    q.exeName = "fdwork";
    q.estCycles = 200'000;
    rig.send(q);
  };

  // Three rapid submits inside one batch window: the quota counts the
  // not-yet-flushed batch, so the third bounces even though nothing
  // has reached the scheduler queue yet.
  submit(1);
  submit(2);
  submit(3);
  rig.cluster.engine().runUntil(5'000);
  ASSERT_EQ(rig.responses.size(), 3u);
  EXPECT_EQ(rig.responses[0].status, fd::Status::kOk);
  EXPECT_EQ(rig.responses[1].status, fd::Status::kOk);
  // Distinct reject: a quota bounce is NOT kServerBusy — the client
  // must learn its account (not the server) is the bottleneck.
  EXPECT_EQ(rig.responses[2].status, fd::Status::kQuotaExceeded);
  EXPECT_EQ(rig.door.stats().quotaRejected, 1u);
  EXPECT_EQ(rig.door.stats().rejected, 0u);
  EXPECT_EQ(rig.door.stats().accepted, 2u);
  EXPECT_EQ(rig.host.node().ras().countByCode(
                kernel::RasEvent::Code::kQuotaRejected),
            1u);
  EXPECT_EQ(rig.host.node().accounting().usage(1).quotaRejects, 1u);

  // Exactly-once under retransmit: the cached kQuotaExceeded is
  // replayed; the reject is not re-counted and no job appears.
  submit(3, /*retransmit=*/true);
  rig.cluster.engine().runUntil(10'000);
  ASSERT_EQ(rig.responses.size(), 4u);
  EXPECT_EQ(rig.responses[3].status, fd::Status::kQuotaExceeded);
  EXPECT_EQ(rig.door.stats().quotaRejected, 1u);
  EXPECT_EQ(rig.door.stats().replays, 1u);

  // The quota is live, not sticky: once the queued work drains, the
  // same account submits again successfully.
  rig.settle(8'000'000);
  ASSERT_TRUE(rig.host.drained());
  submit(4);
  rig.settle();
  ASSERT_EQ(rig.responses.size(), 5u);
  EXPECT_EQ(rig.responses[4].status, fd::Status::kOk);
  EXPECT_EQ(rig.door.stats().accepted, 3u);
}

TEST(FdFairShare, SwarmMapsClientsToQosTiersDeterministically) {
  auto run = [](std::uint64_t seed) {
    rt::ClusterConfig cfg;
    cfg.computeNodes = 4;
    cfg.seed = seed;
    // The swarm's default job mix is ~25% FWK; without an FWK node
    // those jobs could never launch and the queue would never drain.
    cfg.nodeKernels = {rt::KernelKind::kCnk, rt::KernelKind::kCnk,
                       rt::KernelKind::kCnk, rt::KernelKind::kFwk};
    rt::Cluster cluster(cfg);

    svc::ServiceNodeConfig scfg;
    scfg.policy = svc::SchedPolicyKind::kFairShare;
    svc::AccountSpec hi, mid, lo;
    hi.name = "hi";
    hi.qos = svc::Qos::kHigh;
    mid.name = "mid";
    lo.name = "lo";
    lo.qos = svc::Qos::kLow;
    scfg.fairshare.accounts = {hi, mid, lo};
    scfg.checkpointEveryPumps = 0;
    svc::ServiceHost host(cluster, scfg);
    host.store().registerImage(fdWorkImage());

    hw::CollectiveNet fdnet(cluster.engine(), hw::CollectiveConfig{});
    fd::FrontDoorConfig fcfg;
    // Identity plumbing: wire clientId -> account (QOS tier).
    fcfg.accountOf = [](std::uint32_t cid) {
      return static_cast<svc::AccountId>(cid % 3 + 1);
    };
    fd::FrontDoor door(cluster.engine(), host, fdnet, fcfg);
    door.attach();

    fd::SwarmParams sp;
    sp.clients = 30;
    sp.submitsPerClient = 2;
    sp.seed = seed;
    sp.bursts = 2;
    sp.estCycles = 150'000;
    fd::Swarm swarm(cluster.engine(), fdnet, sp);

    host.start();
    swarm.start();
    const bool drained = cluster.engine().runWhile(
        [&] {
          return swarm.quiescent() && door.batchedCount() == 0 &&
                 host.drained();
        },
        200'000'000ULL);
    EXPECT_TRUE(drained) << "swarm quiescent=" << swarm.quiescent()
                         << " batched=" << door.batchedCount()
                         << " hostDrained=" << host.drained()
                         << " queueDepth=" << host.node().queueDepth()
                         << " completed=" << host.metrics().jobsCompleted;

    svc::SvcMetrics m = host.metrics();
    const fd::Swarm::Totals t = swarm.totals();
    EXPECT_EQ(t.acked, 60u);
    EXPECT_EQ(t.quotaRejected, 0u);  // no maxQueued configured
    EXPECT_EQ(m.jobsCompleted, 60u);
    // Every tier got identity-tagged work: 10 clients x 2 submits each.
    EXPECT_EQ(m.accounts.size(), 3u);
    for (const svc::AccountMetrics& am : m.accounts) {
      EXPECT_EQ(am.jobsCompleted, 20u) << am.name;
      EXPECT_GT(am.lifetimeUsage, 0u) << am.name;
    }
    return std::pair<std::uint64_t, std::uint64_t>{m.scheduleHash,
                                                   door.digest()};
  };
  const auto a = run(42);
  const auto b = run(42);
  EXPECT_EQ(a.first, b.first) << "fd x fairshare schedule diverged";
  EXPECT_EQ(a.second, b.second) << "admission digest diverged";
}

// ---------------------------------------------------------------------
// Slow lane: multi-seed sweep (satellite)
// ---------------------------------------------------------------------

TEST(FairShareSlow, MultiSeedTortureSweep) {
  if (std::getenv("FAIRSHARE_SLOW") == nullptr) {
    GTEST_SKIP() << "slow lane only (ctest -L slow)";
  }
  const int jobs = static_cast<int>(envU64("FAIRSHARE_JOBS", 150));
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const bool faults = seed % 2 == 0;  // alternate clean / faulted
    const TortureOutcome a = runFairShareTorture(seed, jobs, faults);
    const TortureOutcome b = runFairShareTorture(seed, jobs, faults);
    EXPECT_EQ(a.hash, b.hash) << "seed " << seed << " diverged";
    EXPECT_EQ(a.timeline, b.timeline) << "seed " << seed;
    EXPECT_EQ(a.accountingDigest, b.accountingDigest) << "seed " << seed;
  }
}

}  // namespace
}  // namespace bg

// Stress and property tests: determinism under randomized event
// storms, parameterized cache sweeps, futex stress with many threads,
// and scheduler affinity behaviour under migration.
#include <gtest/gtest.h>

#include "cluster_test_util.hpp"
#include "hw/cache.hpp"
#include "kernel/syscalls.hpp"
#include "runtime/rt_ids.hpp"
#include "sim/rng.hpp"

namespace bg {
namespace {

using test::emitExit;
using test::runProgram;

std::int64_t sys(kernel::Sys s) { return static_cast<std::int64_t>(s); }
std::int64_t rtc(rt::Rt r) { return static_cast<std::int64_t>(r); }

// ---------------- DES determinism under random storms ----------------

TEST(Stress, EngineDeterministicUnderRandomEventStorm) {
  auto storm = [](std::uint64_t seed) {
    sim::Engine eng;
    sim::Rng rng(seed);
    sim::Fnv1a trace;
    // Self-replicating random events: each event may schedule more.
    std::function<void(int)> spawn = [&](int depth) {
      trace.mix(eng.now()).mix(static_cast<std::uint64_t>(depth));
      if (depth <= 0) return;
      const int kids = static_cast<int>(rng.nextBelow(3));
      for (int i = 0; i < kids; ++i) {
        eng.schedule(rng.nextBelow(1000) + 1,
                     [&spawn, depth] { spawn(depth - 1); });
      }
    };
    for (int i = 0; i < 200; ++i) {
      eng.schedule(rng.nextBelow(5000), [&spawn] { spawn(4); });
    }
    eng.run();
    return std::make_pair(trace.digest(), eng.eventsProcessed());
  };
  const auto a = storm(42);
  const auto b = storm(42);
  EXPECT_EQ(a, b);
  const auto c = storm(43);
  EXPECT_NE(a.first, c.first);
}

// ---------------- parameterized cache sweep ----------------

struct CacheParam {
  std::uint32_t ways;
  std::uint32_t banks;
  hw::BankMap map;
  /// Whether a half-cache sequential working set must fully hit on the
  /// second pass. Not true for every geometry: the high-bits mapping
  /// funnels everything into one bank (capacity), and very low
  /// associativity conflict-misses under the fold.
  bool steadyStateHits;
};

class CacheSweep : public ::testing::TestWithParam<CacheParam> {};

TEST_P(CacheSweep, SteadyStateHitsAndStatsConsistency) {
  const CacheParam p = GetParam();
  hw::SharedCacheConfig cfg;
  cfg.sizeBytes = 1 << 20;
  cfg.ways = p.ways;
  cfg.banks = p.banks;
  cfg.bankMap = p.map;
  hw::SharedCache c(cfg);
  // Working set half the cache: second pass must hit everywhere.
  const std::uint64_t setBytes = cfg.sizeBytes / 2;
  sim::Cycle now = 0;
  for (hw::PAddr a = 0; a < setBytes; a += cfg.lineBytes) {
    c.access(a, now += 10);
  }
  const std::uint64_t missesAfterFill = c.stats().misses;
  for (hw::PAddr a = 0; a < setBytes; a += cfg.lineBytes) {
    c.access(a, now += 10);
  }
  if (p.steadyStateHits) {
    EXPECT_EQ(c.stats().misses, missesAfterFill);
  } else {
    // Capacity/conflict geometries: misses continue, but never exceed
    // the access count (sanity) and the first pass missed everything.
    EXPECT_GE(c.stats().misses, missesAfterFill);
    EXPECT_EQ(missesAfterFill, setBytes / cfg.lineBytes);
  }
  EXPECT_EQ(c.stats().accesses, c.stats().hits + c.stats().misses);
  // Every access landed in a valid bank.
  std::uint64_t total = 0;
  for (const auto v : c.bankAccesses()) total += v;
  EXPECT_EQ(total, c.stats().accesses);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheSweep,
    ::testing::Values(CacheParam{4, 1, hw::BankMap::kDirect, true},
                      CacheParam{8, 2, hw::BankMap::kDirect, true},
                      CacheParam{8, 2, hw::BankMap::kXorFold, true},
                      CacheParam{8, 4, hw::BankMap::kXorFold, true},
                      CacheParam{16, 4, hw::BankMap::kHighBits, false},
                      CacheParam{2, 8, hw::BankMap::kXorFold, false}));

// ---------------- futex stress ----------------

TEST(Stress, ManyThreadsContendOneMutexWithoutLostUpdates) {
  // 8 threads x 120 critical sections on a 4-core CNK node (2 threads
  // per core besides main on core 0): heavy futex traffic, core
  // sharing, handover unlocks.
  constexpr int kThreads = 8;
  constexpr int kRounds = 120;
  vm::ProgramBuilder b("t");
  constexpr vm::Reg rMutex = 16;
  constexpr vm::Reg rCount = 17;
  constexpr vm::Reg rTids = 18;
  b.mov(rMutex, 10);
  b.addi(rMutex, rMutex, 64);
  b.mov(rCount, 10);
  b.addi(rCount, rCount, 128);
  b.mov(rTids, 10);
  b.addi(rTids, rTids, 256);
  std::vector<std::size_t> fixes;
  for (int i = 0; i < kThreads; ++i) {
    fixes.push_back(b.size());
    b.li(1, -1);
    b.li(2, 0);
    b.rtcall(rtc(rt::Rt::kPthreadCreate));
    b.sample(0);
    b.store(rTids, 0, i * 8);
  }
  for (int i = 0; i < kThreads; ++i) {
    b.load(1, rTids, i * 8);
    b.rtcall(rtc(rt::Rt::kPthreadJoin));
  }
  b.load(20, rCount, 0);
  b.sample(20);
  emitExit(b);
  const auto worker = b.label();
  b.mov(rMutex, 10);
  b.addi(rMutex, rMutex, 64);
  b.mov(rCount, 10);
  b.addi(rCount, rCount, 128);
  const auto top = b.loopBegin(21, kRounds);
  b.mov(1, rMutex);
  b.rtcall(rtc(rt::Rt::kMutexLock));
  b.load(22, rCount, 0);
  b.addi(22, 22, 1);
  b.store(rCount, 22, 0);
  b.mov(1, rMutex);
  b.rtcall(rtc(rt::Rt::kMutexUnlock));
  b.loopEnd(21, top);
  b.halt();
  for (auto f : fixes) b.patchTarget(f, worker);

  auto r = runProgram({}, std::move(b).build());
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.samples.size(), static_cast<std::size_t>(kThreads) + 1);
  for (int i = 0; i < kThreads; ++i) {
    EXPECT_GT(static_cast<std::int64_t>(r.samples[i]), 0)
        << "create " << i;
  }
  EXPECT_EQ(r.samples.back(),
            static_cast<std::uint64_t>(kThreads) * kRounds);
}

// ---------------- affinity ----------------

TEST(Affinity, FwkAllowsMigrationCnkDoesNot) {
  // sched_setaffinity(self, core): Linux migrates; CNK's strict
  // affinity has no such call (-ENOSYS... the paper's "strict affinity
  // enforced by the scheduler").
  auto run = [&](rt::KernelKind kind) {
    rt::ClusterConfig cfg;
    cfg.kernel = kind;
    std::unique_ptr<rt::Cluster> cluster;
    vm::ProgramBuilder b("t");
    b.li(1, 0);  // self
    b.li(2, 2);  // core 2
    b.syscall(sys(kernel::Sys::kSchedSetaffinity));
    b.sample(0);
    b.compute(50'000);
    emitExit(b);
    auto r = runProgram(cfg, std::move(b).build(), &cluster);
    EXPECT_TRUE(r.completed);
    int finalCore = -1;
    if (kernel::Process* p = cluster->processOfRank(0)) {
      finalCore = p->mainThread()->ctx.coreAffinity;
    }
    return std::make_pair(
        r.samples.empty() ? std::int64_t{-999}
                          : static_cast<std::int64_t>(r.samples[0]),
        finalCore);
  };
  const auto fwk = run(rt::KernelKind::kFwk);
  EXPECT_EQ(fwk.first, 0);
  EXPECT_EQ(fwk.second, 2);  // really moved
  const auto cnk = run(rt::KernelKind::kCnk);
  EXPECT_EQ(cnk.first, -kernel::kENOSYS);
  EXPECT_EQ(cnk.second, 0);  // pinned where the job loader put it
}

TEST(Affinity, FwkMigratedThreadKeepsRunningCorrectly) {
  rt::ClusterConfig cfg;
  cfg.kernel = rt::KernelKind::kFwk;
  vm::ProgramBuilder b("t");
  b.li(20, 0);
  for (int core = 0; core < 4; ++core) {
    b.li(1, 0);
    b.li(2, core);
    b.syscall(sys(kernel::Sys::kSchedSetaffinity));
    b.addi(20, 20, 1);
  }
  b.sample(20);  // survived 4 migrations
  emitExit(b);
  auto r = runProgram(cfg, std::move(b).build());
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.samples.size(), 1u);
  EXPECT_EQ(r.samples[0], 4u);
}

// ---------------- shared-cache/TLB interaction under churn ----------

TEST(Stress, TlbChurnFromManyRegionsStillResolves) {
  // FWK: touch 200 distinct pages repeatedly — far beyond the 64-entry
  // TLB — and verify data integrity end to end despite constant
  // refills.
  rt::ClusterConfig cfg;
  cfg.kernel = rt::KernelKind::kFwk;
  vm::ProgramBuilder b("t");
  b.mov(16, 10);
  // Write a distinct value to each page...
  for (int i = 0; i < 200; ++i) {
    b.li(17, i + 1000);
    b.store(16, 17, i * 4096);
  }
  // ...then read them all back and sum.
  b.li(20, 0);
  for (int i = 0; i < 200; ++i) {
    b.load(17, 16, i * 4096);
    b.add(20, 20, 17);
  }
  b.sample(20);
  emitExit(b);
  std::unique_ptr<rt::Cluster> cluster;
  auto r = runProgram(cfg, std::move(b).build(), &cluster);
  ASSERT_TRUE(r.completed);
  std::uint64_t expect = 0;
  for (int i = 0; i < 200; ++i) expect += i + 1000;
  EXPECT_EQ(r.samples[0], expect);
  EXPECT_GT(cluster->fwkOn(0)->tlbRefillCount(), 200u);
}

}  // namespace
}  // namespace bg

// Unit tests: deterministic event engine, RNG, hashing, trace buffer.
#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/hash.hpp"
#include "sim/json.hpp"
#include "sim/rng.hpp"
#include "sim/trace.hpp"
#include "sim/types.hpp"

namespace bg::sim {
namespace {

TEST(Engine, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule(30, [&] { order.push_back(3); });
  e.schedule(10, [&] { order.push_back(1); });
  e.schedule(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30u);
}

TEST(Engine, SameCycleEventsFireInScheduleOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    e.schedule(5, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, NestedSchedulingFromHandlers) {
  Engine e;
  int hits = 0;
  e.schedule(1, [&] {
    ++hits;
    e.schedule(1, [&] {
      ++hits;
      e.schedule(1, [&] { ++hits; });
    });
  });
  e.run();
  EXPECT_EQ(hits, 3);
  EXPECT_EQ(e.now(), 3u);
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool ran = false;
  const EventId id = e.schedule(10, [&] { ran = true; });
  e.cancel(id);
  e.run();
  EXPECT_FALSE(ran);
}

TEST(Engine, CancelIsSelective) {
  Engine e;
  int ran = 0;
  e.schedule(10, [&] { ++ran; });
  const EventId id = e.schedule(10, [&] { ran += 100; });
  e.schedule(10, [&] { ++ran; });
  e.cancel(id);
  e.run();
  EXPECT_EQ(ran, 2);
}

TEST(Engine, RunUntilAdvancesClockWithoutEvents) {
  Engine e;
  e.runUntil(12345);
  EXPECT_EQ(e.now(), 12345u);
}

TEST(Engine, RunUntilExecutesOnlyDueEvents) {
  Engine e;
  int ran = 0;
  e.schedule(10, [&] { ++ran; });
  e.schedule(100, [&] { ++ran; });
  e.runUntil(50);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(e.now(), 50u);
  e.run();
  EXPECT_EQ(ran, 2);
}

TEST(Engine, RunWhileStopsOnPredicate) {
  Engine e;
  int count = 0;
  for (int i = 0; i < 100; ++i) {
    e.schedule(i + 1, [&] { ++count; });
  }
  const bool ok = e.runWhile([&] { return count >= 10; });
  EXPECT_TRUE(ok);
  EXPECT_EQ(count, 10);
}

TEST(Engine, PendingEventCountTracksCancellations) {
  Engine e;
  const EventId a = e.schedule(5, [] {});
  e.schedule(6, [] {});
  EXPECT_EQ(e.pendingEvents(), 2u);
  e.cancel(a);
  EXPECT_EQ(e.pendingEvents(), 1u);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ComponentStreamsDiffer) {
  Rng a(42, "torus"), b(42, "collective");
  bool anyDifferent = false;
  for (int i = 0; i < 10; ++i) {
    if (a.next() != b.next()) anyDifferent = true;
  }
  EXPECT_TRUE(anyDifferent);
}

TEST(Rng, NextBelowIsInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.nextBelow(17), 17u);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.nextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ExpHasRoughlyRightMean) {
  Rng r(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.nextExp(100.0);
  EXPECT_NEAR(sum / n, 100.0, 5.0);
}

TEST(Hash, OrderSensitive) {
  Fnv1a a, b;
  a.mix(1).mix(2);
  b.mix(2).mix(1);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Hash, BytesMatchManualMix) {
  const std::uint8_t raw[] = {1, 2, 3, 4};
  const auto bytes = std::as_bytes(std::span(raw));
  Fnv1a a;
  a.mixBytes(bytes);
  EXPECT_EQ(a.digest(), hashBytes(bytes));
}

TEST(Trace, DigestReflectsEveryRecord) {
  TraceBuffer t(4);
  for (int i = 0; i < 100; ++i) t.record(i, 1, i);
  TraceBuffer u(4);
  for (int i = 0; i < 100; ++i) u.record(i, 1, i);
  EXPECT_EQ(t.digest(), u.digest());
  u.record(100, 1, 1);
  EXPECT_NE(t.digest(), u.digest());
  EXPECT_EQ(t.totalRecords(), 100u);
}

TEST(Trace, RingKeepsMostRecent) {
  TraceBuffer t(4);
  for (int i = 0; i < 10; ++i) t.record(i, 0, i);
  const auto recent = t.recent();
  ASSERT_EQ(recent.size(), 4u);
  EXPECT_EQ(recent.front().value, 6u);
  EXPECT_EQ(recent.back().value, 9u);
}

TEST(Types, CycleConversionsRoundTrip) {
  EXPECT_EQ(usToCycles(1.0), 850u);
  EXPECT_DOUBLE_EQ(cyclesToUs(850), 1.0);
  EXPECT_DOUBLE_EQ(cyclesToSec(kCoreHz), 1.0);
}

TEST(Json, EscapesStringsAndControlBytes) {
  Json j = Json::object();
  j.set("quote", "a\"b");
  j.set("backslash", "a\\b");
  j.set("newline", "a\nb\tc");
  j.set("control", std::string("a\x01z"));
  const std::string out = j.dump(0);
  EXPECT_NE(out.find("\"a\\\"b\""), std::string::npos);
  EXPECT_NE(out.find("\"a\\\\b\""), std::string::npos);
  EXPECT_NE(out.find("\"a\\nb\\tc\""), std::string::npos);
  EXPECT_NE(out.find("\\u0001"), std::string::npos);
}

TEST(Json, EmptyContainersDump) {
  Json j = Json::object();
  j.set("arr", Json::array());
  j.set("obj", Json::object());
  EXPECT_EQ(j.dump(0), "{\"arr\":[],\"obj\":{}}");
}

// 64-bit hashes and counters above INT64_MAX must print as themselves;
// diff_runs.py reads them back and a negative value would silently
// corrupt every schedule-hash comparison.
TEST(Json, LargeU64RoundTripsUnsigned) {
  Json j = Json::object();
  j.set("max", static_cast<std::uint64_t>(0xFFFFFFFFFFFFFFFFULL));
  j.set("half", static_cast<std::uint64_t>(0x8000000000000000ULL));
  j.set("small", static_cast<std::uint64_t>(7));
  const std::string out = j.dump(0);
  EXPECT_NE(out.find("\"max\":18446744073709551615"), std::string::npos);
  EXPECT_NE(out.find("\"half\":9223372036854775808"), std::string::npos);
  EXPECT_NE(out.find("\"small\":7"), std::string::npos);
  EXPECT_EQ(out.find('-'), std::string::npos);
}

}  // namespace
}  // namespace bg::sim

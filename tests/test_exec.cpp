// Execution-engine tests: instruction semantics, timebase behaviour,
// atomics, batching, and fault edges — driven end-to-end through a
// one-node CNK cluster (the simplest deterministic harness).
#include <gtest/gtest.h>

#include "cluster_test_util.hpp"
#include "kernel/syscalls.hpp"

namespace bg {
namespace {

using test::emitExit;
using test::runProgram;
using vm::Reg;

TEST(Exec, ArithmeticAndLogic) {
  vm::ProgramBuilder b("t");
  b.li(1, 10);
  b.li(2, 3);
  b.add(3, 1, 2);
  b.sample(3);  // 13
  b.sub(3, 1, 2);
  b.sample(3);  // 7
  b.mul(3, 1, 2);
  b.sample(3);  // 30
  b.andr(3, 1, 2);
  b.sample(3);  // 2
  b.orr(3, 1, 2);
  b.sample(3);  // 11
  b.xorr(3, 1, 2);
  b.sample(3);  // 9
  b.shl(3, 1, 3);
  b.sample(3);  // 80
  b.shr(3, 1, 1);
  b.sample(3);  // 5
  emitExit(b);
  auto r = runProgram({}, std::move(b).build());
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.samples,
            (std::vector<std::uint64_t>{13, 7, 30, 2, 11, 9, 80, 5}));
}

TEST(Exec, BranchesTakeAndFallThrough) {
  vm::ProgramBuilder b("t");
  b.li(1, 0);
  const std::size_t beqz = b.emitForwardBranch(vm::Op::kBeqz, 1);
  b.li(2, 111);  // skipped
  b.sample(2);
  b.patchHere(beqz);
  b.li(2, 222);
  b.sample(2);
  b.li(1, 5);
  b.li(3, 9);
  const std::size_t blt = b.emitForwardBranch(vm::Op::kBlt, 1, 3);
  b.li(2, 333);  // skipped (5 < 9 taken)
  b.sample(2);
  b.patchHere(blt);
  b.li(2, 444);
  b.sample(2);
  emitExit(b);
  auto r = runProgram({}, std::move(b).build());
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.samples, (std::vector<std::uint64_t>{222, 444}));
}

TEST(Exec, CountedLoopRunsExactly) {
  vm::ProgramBuilder b("t");
  b.li(2, 0);
  const auto top = b.loopBegin(1, 37);
  b.addi(2, 2, 1);
  b.loopEnd(1, top);
  b.sample(2);
  emitExit(b);
  auto r = runProgram({}, std::move(b).build());
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.samples[0], 37u);
}

TEST(Exec, LoadStoreRoundTripThroughRealMemory) {
  vm::ProgramBuilder b("t");
  b.mov(1, 10);
  b.li(2, 0xDEADBEEFCAFE);
  b.store(1, 2, 24);
  b.load(3, 1, 24);
  b.sample(3);
  emitExit(b);
  auto r = runProgram({}, std::move(b).build());
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.samples[0], 0xDEADBEEFCAFEu);
}

TEST(Exec, CasSucceedsOnMatchFailsOnMismatch) {
  vm::ProgramBuilder b("t");
  b.mov(1, 10);
  b.li(2, 0);    // expected
  b.li(4, 77);   // desired
  b.cas(3, 1, 2, 4);
  b.sample(3);   // old value 0 (success)
  b.load(5, 1, 0);
  b.sample(5);   // 77
  b.li(2, 0);    // expected 0, but now 77
  b.li(4, 99);
  b.cas(3, 1, 2, 4);
  b.sample(3);   // old value 77 (failure indicator)
  b.load(5, 1, 0);
  b.sample(5);   // still 77
  emitExit(b);
  auto r = runProgram({}, std::move(b).build());
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.samples, (std::vector<std::uint64_t>{0, 77, 77, 77}));
}

TEST(Exec, FetchAddAccumulates) {
  vm::ProgramBuilder b("t");
  b.mov(1, 10);
  b.li(2, 5);
  b.fetchAdd(3, 1, 2);
  b.sample(3);  // 0
  b.fetchAdd(3, 1, 2);
  b.sample(3);  // 5
  b.load(4, 1, 0);
  b.sample(4);  // 10
  emitExit(b);
  auto r = runProgram({}, std::move(b).build());
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.samples, (std::vector<std::uint64_t>{0, 5, 10}));
}

TEST(Exec, TimebaseAdvancesWithComputeExactly) {
  vm::ProgramBuilder b("t");
  b.readTb(1);
  b.compute(12345);
  b.readTb(2);
  b.sub(3, 2, 1);
  b.sample(3);
  emitExit(b);
  auto r = runProgram({}, std::move(b).build());
  ASSERT_TRUE(r.completed);
  // compute(12345) plus the readTb instruction itself.
  EXPECT_EQ(r.samples[0], 12346u);
}

TEST(Exec, TimebaseMonotoneAcrossSliceBoundaries) {
  // A long straight-line run crosses many slice boundaries; timebase
  // reads must be strictly increasing with consistent deltas.
  vm::ProgramBuilder b("t");
  const auto top = b.loopBegin(1, 50);
  b.readTb(2);
  b.sample(2);
  b.compute(1'000);
  b.loopEnd(1, top);
  emitExit(b);
  auto r = runProgram({}, std::move(b).build());
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.samples.size(), 50u);
  // Per iteration: readTb(1) + sample(1) + compute(1000) + addi(1) +
  // bnez(1) = 1004 cycles, exactly, regardless of slice boundaries.
  for (std::size_t i = 1; i < r.samples.size(); ++i) {
    EXPECT_EQ(r.samples[i] - r.samples[i - 1], 1004u);
  }
}

TEST(Exec, RunningOffProgramEndKillsThread) {
  vm::ProgramBuilder b("t");
  b.li(1, 1);  // no halt/exit: falls off the end
  auto prog = std::move(b).build();
  std::unique_ptr<rt::Cluster> cluster;
  auto r = runProgram({}, std::move(prog), &cluster);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(cluster->kernelOn(0).threadsKilled(), 1u);
}

TEST(Exec, HaltSetsExitStatus) {
  vm::ProgramBuilder b("t");
  b.halt(42);
  std::unique_ptr<rt::Cluster> cluster;
  auto r = runProgram({}, std::move(b).build(), &cluster);
  ASSERT_TRUE(r.completed);
  kernel::Process* p = cluster->processOfRank(0);
  EXPECT_EQ(p->exitStatus, 42);
}

TEST(Exec, SliceBatchingBoundsEventCount) {
  // 10M cycles of 100-cycle computes = 100K instructions; with ~4000-
  // cycle quanta the engine should process ~2500 slices, not 100K
  // events — the batching that keeps the simulator fast.
  vm::ProgramBuilder b("t");
  const auto top = b.loopBegin(1, 100'000);
  b.compute(100);
  b.loopEnd(1, top);
  emitExit(b);
  std::unique_ptr<rt::Cluster> cluster;
  auto r = runProgram({}, std::move(b).build(), &cluster);
  ASSERT_TRUE(r.completed);
  const auto& core = cluster->machine().node(0).core(0);
  EXPECT_LT(core.slicesRun(), 10'000u);
  EXPECT_GT(core.cyclesBusy(), 10'000'000u);
}

TEST(Exec, MemTouchCostReflectsCacheHierarchy) {
  // Cold touch of 64KB (misses) vs immediate re-touch (L1-resident):
  // the first must cost much more.
  vm::ProgramBuilder b("t");
  b.mov(1, 10);
  b.readTb(2);
  b.memTouch(1, 0, 16 << 10);
  b.readTb(3);
  b.sub(4, 3, 2);
  b.sample(4);
  b.readTb(2);
  b.memTouch(1, 0, 16 << 10);
  b.readTb(3);
  b.sub(4, 3, 2);
  b.sample(4);
  emitExit(b);
  auto r = runProgram({}, std::move(b).build());
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.samples[0], 3 * r.samples[1]);
}

}  // namespace
}  // namespace bg

// Unit tests: physical memory, MMU/TLB/DAC, caches, DDR refresh.
#include <gtest/gtest.h>

#include "hw/cache.hpp"
#include "hw/ddr.hpp"
#include "hw/mmu.hpp"
#include "hw/phys_mem.hpp"

namespace bg::hw {
namespace {

// ---------------- PhysMem ----------------

TEST(PhysMem, RoundTripsBytes) {
  PhysMem m(1 << 20);
  const std::uint8_t raw[] = {1, 2, 3, 4, 5};
  m.write(100, std::as_bytes(std::span(raw)));
  std::uint8_t out[5] = {};
  m.read(100, std::as_writable_bytes(std::span(out)));
  EXPECT_TRUE(std::equal(std::begin(raw), std::end(raw), std::begin(out)));
}

TEST(PhysMem, UntouchedMemoryReadsZero) {
  PhysMem m(1 << 20);
  EXPECT_EQ(m.read64(0x8000), 0u);
  EXPECT_EQ(m.framesTouched(), 0u);
}

TEST(PhysMem, CrossFrameAccess) {
  PhysMem m(1 << 20);
  const PAddr addr = PhysMem::kFrameSize - 4;
  m.write64(addr, 0x1122334455667788ULL);
  EXPECT_EQ(m.read64(addr), 0x1122334455667788ULL);
  EXPECT_EQ(m.framesTouched(), 2u);
}

TEST(PhysMem, OutOfRangeThrows) {
  PhysMem m(4096);
  EXPECT_THROW(m.write64(4094, 1), std::out_of_range);
}

TEST(PhysMem, SelfRefreshBlocksAccessButPreservesContents) {
  PhysMem m(1 << 20);
  m.write64(64, 42);
  m.enterSelfRefresh();
  EXPECT_THROW(m.read64(64), std::runtime_error);
  m.exitSelfRefresh();
  EXPECT_EQ(m.read64(64), 42u);
}

TEST(PhysMem, HashMatchesForEqualContents) {
  PhysMem a(1 << 20), b(1 << 20);
  a.write64(128, 7);
  b.write64(128, 7);
  EXPECT_EQ(a.hashRange(0, 4096), b.hashRange(0, 4096));
  b.write64(200, 9);
  EXPECT_NE(a.hashRange(0, 4096), b.hashRange(0, 4096));
}

TEST(PhysMem, HashOfUntouchedEqualsHashOfZeroed) {
  PhysMem a(1 << 20), b(1 << 20);
  b.write64(64, 1);
  b.zero(64, 8);
  EXPECT_EQ(a.hashRange(0, 1024), b.hashRange(0, 1024));
}

TEST(PhysMem, ZeroClearsRange) {
  PhysMem m(1 << 20);
  m.write64(0, ~0ULL);
  m.zero(0, 8);
  EXPECT_EQ(m.read64(0), 0u);
}

// ---------------- Mmu / TLB / DAC ----------------

TlbEntry entry(std::uint32_t pid, VAddr va, PAddr pa, std::uint64_t size,
               std::uint8_t perms) {
  TlbEntry e;
  e.pid = pid;
  e.vaddr = va;
  e.paddr = pa;
  e.size = size;
  e.perms = perms;
  e.valid = true;
  return e;
}

TEST(Mmu, MissWithoutEntries) {
  Mmu mmu(4);
  Translation t;
  EXPECT_EQ(mmu.translate(1, 0x1000, Access::kRead, &t), TlbResult::kMiss);
  EXPECT_EQ(mmu.missCount(), 1u);
}

TEST(Mmu, HitTranslatesWithOffset) {
  Mmu mmu(4);
  mmu.install(entry(1, 0x100000, 0x500000, kPage1M, kPermRW));
  Translation t;
  ASSERT_EQ(mmu.translate(1, 0x100040, Access::kRead, &t),
            TlbResult::kHit);
  EXPECT_EQ(t.paddr, 0x500040u);
}

TEST(Mmu, PidMismatchMisses) {
  Mmu mmu(4);
  mmu.install(entry(1, 0x100000, 0x500000, kPage1M, kPermRW));
  Translation t;
  EXPECT_EQ(mmu.translate(2, 0x100000, Access::kRead, &t),
            TlbResult::kMiss);
}

TEST(Mmu, PermFaultOnWriteToReadOnly) {
  Mmu mmu(4);
  mmu.install(entry(1, 0x100000, 0x500000, kPage1M, kPermRX));
  Translation t;
  EXPECT_EQ(mmu.translate(1, 0x100000, Access::kWrite, &t),
            TlbResult::kPermFault);
  EXPECT_EQ(mmu.translate(1, 0x100000, Access::kExec, &t),
            TlbResult::kHit);
}

TEST(Mmu, ReinstallSamePageReplaces) {
  Mmu mmu(4);
  mmu.install(entry(1, 0x100000, 0x500000, kPage1M, kPermRW));
  mmu.install(entry(1, 0x100000, 0x700000, kPage1M, kPermRW));
  EXPECT_EQ(mmu.validCount(), 1);
  Translation t;
  mmu.translate(1, 0x100000, Access::kRead, &t);
  EXPECT_EQ(t.paddr, 0x700000u);
}

TEST(Mmu, EvictsRoundRobinWhenFull) {
  Mmu mmu(2);
  mmu.install(entry(1, 0x100000, 0x100000, kPage1M, kPermRW));
  mmu.install(entry(1, 0x200000, 0x200000, kPage1M, kPermRW));
  mmu.install(entry(1, 0x300000, 0x300000, kPage1M, kPermRW));
  EXPECT_EQ(mmu.validCount(), 2);
  // First entry was the round-robin victim.
  EXPECT_FALSE(mmu.probe(1, 0x100000).has_value());
  EXPECT_TRUE(mmu.probe(1, 0x300000).has_value());
}

TEST(Mmu, InvalidateByPid) {
  Mmu mmu(4);
  mmu.install(entry(1, 0x100000, 0x100000, kPage1M, kPermRW));
  mmu.install(entry(2, 0x100000, 0x200000, kPage1M, kPermRW));
  mmu.invalidate(1);
  EXPECT_FALSE(mmu.probe(1, 0x100000).has_value());
  EXPECT_TRUE(mmu.probe(2, 0x100000).has_value());
  mmu.invalidate();
  EXPECT_EQ(mmu.validCount(), 0);
}

TEST(Mmu, VariablePageSizesCoexist) {
  Mmu mmu(4);
  mmu.install(entry(1, 0x00100000, 0x00100000, kPage1M, kPermRW));
  mmu.install(entry(1, 0x10000000, 0x10000000, kPage256M, kPermRW));
  EXPECT_TRUE(mmu.probe(1, 0x1FFFFFFF).has_value());
  EXPECT_TRUE(mmu.probe(1, 0x001FFFFF).has_value());
  EXPECT_FALSE(mmu.probe(1, 0x00200000).has_value());
}

TEST(Dac, MatchesOnlyEnabledRangesAndAccessKinds) {
  Mmu mmu(4);
  DacRange& d = mmu.dac(0);
  d.enabled = true;
  d.lo = 0x1000;
  d.hi = 0x2000;
  d.onRead = false;
  EXPECT_TRUE(mmu.dacMatches(0x1800, 8, Access::kWrite));
  EXPECT_FALSE(mmu.dacMatches(0x1800, 8, Access::kRead));
  EXPECT_FALSE(mmu.dacMatches(0x2000, 8, Access::kWrite));
  // Straddling the low edge still matches.
  EXPECT_TRUE(mmu.dacMatches(0x0FFC, 8, Access::kWrite));
}

// ---------------- Caches ----------------

TEST(CacheArray, MissesThenHits) {
  CacheArray c(1024, 32, 2);
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(16));  // same line
  EXPECT_EQ(c.stats().misses, 1u);
  EXPECT_EQ(c.stats().hits, 2u);
}

TEST(CacheArray, LruEvictsOldest) {
  // 2-way, line 32, 1024 bytes -> 16 sets. Addresses 0, 16*32=512... use
  // same-set addresses: stride = sets*line = 512.
  CacheArray c(1024, 32, 2);
  c.access(0);
  c.access(512);
  c.access(0);      // refresh 0
  c.access(1024);   // evicts 512 (LRU)
  EXPECT_TRUE(c.access(0));
  EXPECT_FALSE(c.access(512));
}

TEST(CacheArray, FlushInvalidatesEverything) {
  CacheArray c(1024, 32, 2);
  c.access(0);
  c.flushAll();
  EXPECT_FALSE(c.access(0));
}

TEST(SharedCache, BankMappingPoliciesDiffer) {
  SharedCacheConfig cfg;
  cfg.banks = 4;
  cfg.bankMap = BankMap::kHighBits;
  SharedCache high(cfg);
  // Sequential traffic within 4MB lands in one bank under kHighBits.
  std::uint32_t firstBank = high.bankOf(0);
  for (PAddr a = 0; a < (1 << 20); a += 128) {
    EXPECT_EQ(high.bankOf(a), firstBank);
  }
  cfg.bankMap = BankMap::kDirect;
  SharedCache direct(cfg);
  EXPECT_NE(direct.bankOf(0), direct.bankOf(128));
}

TEST(SharedCache, ConflictStallsWhenBankBusy) {
  SharedCacheConfig cfg;
  cfg.banks = 1;
  cfg.bankBusy = 10;
  SharedCache c(cfg);
  auto r1 = c.access(0, 100);
  EXPECT_EQ(r1.extraStall, 0u);
  auto r2 = c.access(4096, 105);  // bank busy until 110
  EXPECT_EQ(r2.extraStall, 5u);
  EXPECT_EQ(c.bankConflicts(), 1u);
}

TEST(SharedCache, XorFoldSpreadsPowerOfTwoStrides) {
  SharedCacheConfig cfg;
  cfg.banks = 4;
  cfg.bankMap = BankMap::kXorFold;
  SharedCache c(cfg);
  for (PAddr a = 0; a < (4 << 20); a += 4096) c.access(a, 0);
  const auto& loads = c.bankAccesses();
  const std::uint64_t total = loads[0] + loads[1] + loads[2] + loads[3];
  for (std::uint64_t l : loads) {
    EXPECT_GT(l, total / 8);  // no bank starved
  }
}

// ---------------- DDR ----------------

TEST(Ddr, RefreshAddsDeterministicStall) {
  Ddr d;
  const auto& cfg = d.config();
  // At the start of a refresh window the full duration stalls.
  EXPECT_EQ(d.accessLatency(0), cfg.accessLatency + cfg.refreshDuration);
  // Past the window, no stall.
  EXPECT_EQ(d.accessLatency(cfg.refreshDuration), cfg.accessLatency);
  // Phase repeats every interval.
  EXPECT_EQ(d.accessLatency(cfg.refreshInterval),
            d.accessLatency(0));
}

}  // namespace
}  // namespace bg::hw

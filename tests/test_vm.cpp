// Unit tests: VM instruction encoding, the program builder, loops and
// branch patching.
#include <gtest/gtest.h>

#include "vm/builder.hpp"
#include "vm/program.hpp"

namespace bg::vm {
namespace {

TEST(Builder, EmitsInstructionsInOrder) {
  ProgramBuilder b("t");
  b.li(1, 42).addi(2, 1, 8).halt();
  Program p = std::move(b).build();
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p.at(0).op, Op::kLi);
  EXPECT_EQ(p.at(0).rd, 1);
  EXPECT_EQ(p.at(0).imm, 42);
  EXPECT_EQ(p.at(1).op, Op::kAddi);
  EXPECT_EQ(p.at(2).op, Op::kHalt);
}

TEST(Builder, LabelPointsToNextInstruction) {
  ProgramBuilder b("t");
  b.nop();
  EXPECT_EQ(b.label(), 1);
  b.nop();
  EXPECT_EQ(b.label(), 2);
}

TEST(Builder, LoopStructureDecrementsAndBranches) {
  ProgramBuilder b("t");
  const auto top = b.loopBegin(5, 10);
  b.compute(100);
  b.loopEnd(5, top);
  Program p = std::move(b).build();
  // li, compute, addi, bnez
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p.at(0).op, Op::kLi);
  EXPECT_EQ(p.at(0).imm, 10);
  EXPECT_EQ(p.at(3).op, Op::kBnez);
  EXPECT_EQ(p.at(3).imm, top);
}

TEST(Builder, ForwardBranchPatching) {
  ProgramBuilder b("t");
  const std::size_t br = b.emitForwardBranch(Op::kBeqz, 3);
  b.nop();
  b.nop();
  b.patchHere(br);
  Program p = std::move(b).build();
  EXPECT_EQ(p.at(br).imm, 3);
}

TEST(Builder, MemTouchEncodesSizeStrideWrite) {
  ProgramBuilder b("t");
  b.memTouch(4, 16, 4096, 128, true);
  Program p = std::move(b).build();
  const Instr& in = p.at(0);
  EXPECT_EQ(in.op, Op::kMemTouch);
  EXPECT_EQ(in.ra, 4);
  EXPECT_EQ(in.imm, 16);
  EXPECT_EQ(in.a, 4096u);
  EXPECT_EQ(in.b, 128u);
  EXPECT_EQ(in.flags & kMemTouchWrite, kMemTouchWrite);
}

TEST(Builder, CasEncodesDesiredRegisterInFlags) {
  ProgramBuilder b("t");
  b.cas(1, 2, 3, 4);
  Program p = std::move(b).build();
  EXPECT_EQ(p.at(0).op, Op::kCas);
  EXPECT_EQ(p.at(0).rd, 1);
  EXPECT_EQ(p.at(0).ra, 2);
  EXPECT_EQ(p.at(0).rb, 3);
  EXPECT_EQ(p.at(0).flags, 4);
}

TEST(Program, ValidChecksBounds) {
  ProgramBuilder b("t");
  b.nop();
  Program p = std::move(b).build();
  EXPECT_TRUE(p.valid(0));
  EXPECT_FALSE(p.valid(1));
}

TEST(Program, DisassemblyMentionsEveryOp) {
  ProgramBuilder b("t");
  b.li(1, 7).compute(50).syscall(4).rtcall(10).halt();
  Program p = std::move(b).build();
  const std::string d = p.disassemble();
  EXPECT_NE(d.find("li"), std::string::npos);
  EXPECT_NE(d.find("compute"), std::string::npos);
  EXPECT_NE(d.find("syscall"), std::string::npos);
  EXPECT_NE(d.find("rtcall"), std::string::npos);
  EXPECT_NE(d.find("halt"), std::string::npos);
}

TEST(Program, OpNamesAreUnique) {
  // Property: no two ops share a mnemonic (catches copy-paste in the
  // disassembler when ops are added).
  std::vector<std::string> names;
  for (int i = 0; i <= static_cast<int>(Op::kNop); ++i) {
    names.push_back(opName(static_cast<Op>(i)));
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
}

}  // namespace
}  // namespace bg::vm

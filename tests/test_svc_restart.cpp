// Crash-safe control plane: checkpoint/restart of the service node
// through a PersistRegistry-backed store, predictive drain on warn
// storms, and the determinism witness across injected control-plane
// crashes — the restarted scheduler must continue the *same* schedule
// (hash-identical to an uninterrupted run) when the outage covers no
// decision, and must replay identically from the same seed always.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "fault_schedule.hpp"
#include "runtime/app.hpp"
#include "sim/rng.hpp"
#include "svc/failover.hpp"
#include "vm/builder.hpp"

namespace bg {
namespace {

std::shared_ptr<kernel::ElfImage> workImage(const std::string& name,
                                            std::uint64_t reps,
                                            std::uint64_t cyclesPerRep) {
  vm::ProgramBuilder b(name);
  const auto top = b.loopBegin(16, static_cast<std::int64_t>(reps));
  b.compute(cyclesPerRep);
  b.loopEnd(16, top);
  b.halt(0);
  return kernel::ElfImage::makeExecutable(name, std::move(b).build());
}

struct RunResult {
  std::uint64_t hash = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t retries = 0;
  std::uint64_t predictiveDrains = 0;
  std::uint64_t rasFatal = 0;
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t coldStarts = 0;
  std::uint64_t checkpointSaves = 0;
  bool drained = false;
  std::vector<std::string> timeline;
};

RunResult runStream(std::uint64_t seed, int jobs,
                    const testing::FaultSchedule& faults,
                    svc::ServiceNodeConfig snCfg = {},
                    std::uint64_t repScale = 1) {
  rt::ClusterConfig cfg;
  cfg.computeNodes = 4;
  cfg.seed = seed;
  rt::Cluster cluster(cfg);
  svc::ServiceHost host(cluster, snCfg);

  sim::Rng rng(seed, "svc-restart-test");
  for (int i = 0; i < jobs; ++i) {
    svc::JobDesc jd;
    jd.name = "job" + std::to_string(i);
    jd.kernel = rt::KernelKind::kCnk;
    jd.nodes = 1 + static_cast<int>(rng.nextBelow(2));
    const std::uint64_t reps = (10 + rng.nextBelow(10)) * repScale;
    jd.exe = workImage(jd.name, reps, 10'000);
    jd.estCycles = reps * 10'000 + 50'000;
    host.submit(jd);
  }
  faults.arm(cluster, host);

  RunResult out;
  out.drained = host.runUntilDrained(100'000'000);
  svc::SvcMetrics m = host.metrics();
  out.hash = m.scheduleHash;
  out.completed = m.jobsCompleted;
  out.failed = m.jobsFailed;
  out.retries = m.jobRetries;
  out.predictiveDrains = m.predictiveDrains;
  out.rasFatal = m.rasFatal;
  out.crashes = m.serviceCrashes;
  out.restarts = m.serviceRestarts;
  out.coldStarts = host.coldStarts();
  out.checkpointSaves = m.checkpointSaves;
  if (host.alive()) out.timeline = host.node().timeline();
  return out;
}

/// Cycle of each hash-mixed decision, parsed from the timeline lines
/// ("[       12345] launch ...").
std::vector<sim::Cycle> decisionCycles(const RunResult& r) {
  std::vector<sim::Cycle> cycles;
  for (const std::string& line : r.timeline) {
    cycles.push_back(std::strtoull(line.c_str() + 1, nullptr, 10));
  }
  return cycles;
}

// --- Tentpole witness: restart is schedule-invisible --------------------

TEST(SvcRestart, TwoCrashesHashEqualToUninterruptedRun) {
  const std::uint64_t seed = 42;
  const int jobs = 10;
  // 10x-long jobs open wide decision-free windows to crash inside.
  const RunResult base = runStream(seed, jobs, {}, {}, 10);
  ASSERT_TRUE(base.drained);
  ASSERT_EQ(base.completed, static_cast<std::uint64_t>(jobs));
  ASSERT_GE(base.checkpointSaves, 1u);

  // Pick the two widest decision-free windows and crash inside them:
  // with no decision in the outage, a write-through checkpoint restart
  // must continue the identical schedule.
  const std::vector<sim::Cycle> cycles = decisionCycles(base);
  ASSERT_GE(cycles.size(), 2u);
  struct Gap {
    sim::Cycle start = 0, len = 0;
  };
  Gap g1, g2;
  for (std::size_t i = 1; i < cycles.size(); ++i) {
    const Gap g{cycles[i - 1], cycles[i] - cycles[i - 1]};
    if (g.len > g1.len) {
      g2 = g1;
      g1 = g;
    } else if (g.len > g2.len) {
      g2 = g;
    }
  }
  const sim::Cycle interval = svc::ServiceNodeConfig{}.pollIntervalCycles;
  ASSERT_GT(g1.len, 6 * interval) << "stream has no quiet window";
  ASSERT_GT(g2.len, 6 * interval) << "stream has no second quiet window";

  testing::FaultSchedule fs;
  for (const Gap& g : {g1, g2}) {
    // Crash one interval into the gap; restart with two intervals of
    // margin before the next decision.
    fs.svcCrash(g.start + interval + 1, g.len - 4 * interval);
  }
  const RunResult crashed = runStream(seed, jobs, fs, {}, 10);
  EXPECT_TRUE(crashed.drained);
  EXPECT_EQ(crashed.crashes, 2u);
  EXPECT_EQ(crashed.restarts, 2u);
  EXPECT_EQ(crashed.coldStarts, 0u) << "restart fell back to cold start";
  EXPECT_EQ(crashed.completed, static_cast<std::uint64_t>(jobs));
  EXPECT_EQ(crashed.hash, base.hash)
      << "restart from checkpoint changed the schedule";
}

TEST(SvcRestart, SameSeedSameCrashScheduleReplaysIdentically) {
  // Crash cycles chosen without regard to quiet windows: replay
  // determinism must hold even when the restart *does* perturb the
  // schedule (e.g. a decision lands inside the outage).
  const auto mkFaults = [] {
    testing::FaultSchedule fs;
    fs.svcCrash(250'000, 120'000);
    fs.svcCrash(700'000, 300'000);
    return fs;
  };
  const RunResult a = runStream(9, 8, mkFaults());
  const RunResult b = runStream(9, 8, mkFaults());
  ASSERT_TRUE(a.drained);
  ASSERT_TRUE(b.drained);
  EXPECT_EQ(a.crashes, 2u);
  EXPECT_EQ(a.completed + a.failed, 8u);
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.timeline, b.timeline);
}

TEST(SvcRestart, SubmissionsDuringOutageAreBufferedAndDelivered) {
  rt::ClusterConfig cfg;
  cfg.computeNodes = 2;
  rt::Cluster cluster(cfg);
  svc::ServiceHost host(cluster);

  svc::JobDesc early;
  early.name = "early";
  early.kernel = rt::KernelKind::kCnk;
  early.nodes = 1;
  early.exe = workImage(early.name, 50, 10'000);
  early.estCycles = 600'000;
  host.submit(early);

  host.scheduleCrashRestart(100'000, 200'000);
  // Client retries during the outage: the host buffers the submission
  // and delivers it (in order) to the restarted service node.
  cluster.engine().scheduleAt(150'000, [&] {
    EXPECT_FALSE(host.alive());
    svc::JobDesc late;
    late.name = "late";
    late.kernel = rt::KernelKind::kCnk;
    late.nodes = 1;
    late.exe = workImage(late.name, 10, 10'000);
    late.estCycles = 200'000;
    EXPECT_EQ(host.submit(late), 0u);  // id assigned after restart
  });

  ASSERT_TRUE(host.runUntilDrained(50'000'000));
  EXPECT_EQ(host.restarts(), 1u);
  EXPECT_EQ(host.coldStarts(), 0u);
  const auto& jobs = host.node().jobs();
  ASSERT_EQ(jobs.size(), 2u);
  for (const auto& jr : jobs) {
    EXPECT_EQ(jr.state, svc::JobState::kCompleted) << jr.desc.name;
  }
  EXPECT_EQ(jobs[1].desc.name, "late");
}

TEST(SvcRestart, CoarseCheckpointCadenceStillFinishesEveryJob) {
  // Checkpoint only every 4th pump: a crash can now lose decisions
  // made since the last save. Restart reconciliation must verify the
  // stale running-job leases against the kernels and requeue what no
  // longer checks out — no job may be lost or duplicated.
  svc::ServiceNodeConfig snCfg;
  snCfg.checkpointEveryPumps = 4;
  testing::FaultSchedule fs;
  fs.svcCrash(300'000, 150'000);
  fs.svcCrash(900'000, 150'000);
  const RunResult out = runStream(17, 8, fs, snCfg);
  ASSERT_TRUE(out.drained);
  EXPECT_EQ(out.crashes, 2u);
  EXPECT_EQ(out.coldStarts, 0u);
  EXPECT_EQ(out.completed + out.failed, 8u);
  // Determinism still holds under the coarse cadence.
  const RunResult again = runStream(17, 8, fs, snCfg);
  EXPECT_EQ(again.hash, out.hash);
}

TEST(SvcRestart, NodeDeathDuringOutageIsHandledAfterRestart) {
  // A node dies while the control plane is down. The fatal RAS event
  // sits in the kernel ring until the restarted instance's persisted
  // seq cursor sweeps it up — exactly once.
  testing::FaultSchedule fs;
  fs.svcCrash(200'000, 300'000);
  fs.nodeDeath(1, 350'000);  // inside the outage
  const RunResult out = runStream(23, 8, fs);
  ASSERT_TRUE(out.drained);
  EXPECT_EQ(out.crashes, 1u);
  EXPECT_EQ(out.coldStarts, 0u);
  EXPECT_EQ(out.rasFatal, 1u);
  EXPECT_EQ(out.completed + out.failed, 8u);
  const RunResult again = runStream(23, 8, fs);
  EXPECT_EQ(again.hash, out.hash);
}

// --- Predictive drain ---------------------------------------------------

TEST(SvcRestart, WarnStormDrainsNodePredictivelyBeforeFatal) {
  svc::ServiceNodeConfig snCfg;
  snCfg.ras.warnDrainThreshold = 5;
  snCfg.ras.warnWindowCycles = 2'000'000;
  testing::FaultSchedule fs;
  fs.warnStorm(0, 300'000, 8);  // 8 kWarn machine-checks in one burst
  const RunResult out = runStream(31, 8, fs, snCfg);
  ASSERT_TRUE(out.drained);
  EXPECT_GE(out.predictiveDrains, 1u);
  EXPECT_EQ(out.rasFatal, 0u) << "node went fatal before the drain";
  EXPECT_EQ(out.completed, 8u);  // drained node's job retried fine
  EXPECT_GE(out.retries, 1u);
}

TEST(SvcRestart, WarnStormBelowThresholdDoesNothing) {
  svc::ServiceNodeConfig snCfg;
  snCfg.ras.warnDrainThreshold = 5;
  testing::FaultSchedule fs;
  fs.warnStorm(0, 300'000, 4);  // under the threshold
  const RunResult out = runStream(31, 8, fs, snCfg);
  ASSERT_TRUE(out.drained);
  EXPECT_EQ(out.predictiveDrains, 0u);
  EXPECT_EQ(out.retries, 0u);
  EXPECT_EQ(out.completed, 8u);
}

TEST(SvcRestart, WarnWindowForgetsOldWarns) {
  // Same total warns, but spread wider than the sliding window: the
  // per-node rate never crosses the threshold, so no drain.
  svc::ServiceNodeConfig snCfg;
  snCfg.ras.warnDrainThreshold = 5;
  snCfg.ras.warnWindowCycles = 100'000;
  testing::FaultSchedule fs;
  for (int i = 0; i < 8; ++i) {
    fs.warnStorm(0, 200'000 + static_cast<sim::Cycle>(i) * 150'000, 1);
  }
  const RunResult out = runStream(31, 8, fs, snCfg);
  ASSERT_TRUE(out.drained);
  EXPECT_EQ(out.predictiveDrains, 0u);
}

// --- Checkpoint store robustness ----------------------------------------

TEST(SvcRestart, CorruptedCheckpointFallsBackToColdStart) {
  rt::ClusterConfig cfg;
  cfg.computeNodes = 2;
  rt::Cluster cluster(cfg);
  svc::ServiceHost host(cluster);

  svc::JobDesc jd;
  jd.name = "one";
  jd.kernel = rt::KernelKind::kCnk;
  jd.nodes = 1;
  jd.exe = workImage(jd.name, 10, 10'000);
  host.submit(jd);
  ASSERT_TRUE(host.runUntilDrained(50'000'000));
  ASSERT_TRUE(host.store().hasCheckpoint());

  // Flip bits in the persisted payload: the checksum must reject it.
  const cnk::PersistRegion* r =
      host.store().registry().find("svc.jobqueue");
  ASSERT_NE(r, nullptr);
  host.store().mem().write64(r->pbase + 32,
                             ~host.store().mem().read64(r->pbase + 32));
  host.crash();
  EXPECT_FALSE(host.restart()) << "corrupted checkpoint restored warm";
  EXPECT_EQ(host.coldStarts(), 1u);
  EXPECT_TRUE(host.alive());
}

TEST(SvcRestart, CheckpointSurvivesRegionReopenAtStableAddress) {
  // Every save reopens the region by name; the address must never
  // move (CNK persistent-memory contract) and the saved image must
  // round-trip bit-exactly.
  svc::CheckpointStore store;
  const cnk::PersistRegion* r0 = store.registry().find("svc.jobqueue");
  ASSERT_NE(r0, nullptr);
  const auto base = r0->vbase;
  std::vector<std::byte> img(1024);
  for (std::size_t i = 0; i < img.size(); ++i) {
    img[i] = static_cast<std::byte>(i * 7);
  }
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(store.save(img, 100 + i));
    const cnk::PersistRegion* r = store.registry().find("svc.jobqueue");
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->vbase, base);
  }
  const auto back = store.load();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, img);
  EXPECT_EQ(store.saves(), 5u);
}

TEST(SvcRestart, OversizedImageIsRejectedNotTorn) {
  svc::CheckpointStore::Config cfg;
  cfg.poolBytes = 4ULL << 20;
  cfg.regionBytes = 1ULL << 20;
  svc::CheckpointStore store(cfg);
  std::vector<std::byte> small(64, std::byte{0x5A});
  ASSERT_TRUE(store.save(small, 1));
  std::vector<std::byte> huge((1ULL << 20) + 1);
  EXPECT_FALSE(store.save(huge, 2));
  // The previous checkpoint is still intact.
  const auto back = store.load();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, small);
}

}  // namespace
}  // namespace bg

// Tests: the Clock-Stop unit (paper §III) — arming on exact cycles,
// scan capture, disarm, and the property that scans captured at the
// same cycle on identical runs are identical (the basis of the
// one-cycle-apart waveform assembly).
#include <gtest/gtest.h>

#include "apps/fwq.hpp"
#include "hw/clockstop.hpp"
#include "runtime/app.hpp"

namespace bg {
namespace {

TEST(ClockStop, FiresAtExactCycleAndCapturesScan) {
  rt::ClusterConfig cfg;
  rt::Cluster cluster(cfg);
  ASSERT_TRUE(cluster.bootAll());
  hw::ClockStop cs(cluster.machine().node(0));
  ASSERT_TRUE(cs.armAt(5'000'000));
  EXPECT_TRUE(cs.armed());
  cluster.engine().runUntil(10'000'000);
  EXPECT_TRUE(cs.fired());
  EXPECT_EQ(cs.firedAt(), 5'000'000u);
  EXPECT_NE(cs.capturedScan(), 0u);
}

TEST(ClockStop, RejectsPastCyclesAndDoubleArm) {
  rt::ClusterConfig cfg;
  rt::Cluster cluster(cfg);
  ASSERT_TRUE(cluster.bootAll());
  hw::ClockStop cs(cluster.machine().node(0));
  EXPECT_FALSE(cs.armAt(0));  // boot already passed cycle 0
  ASSERT_TRUE(cs.armAt(cluster.engine().now() + 1000));
  EXPECT_FALSE(cs.armAt(cluster.engine().now() + 2000));
}

TEST(ClockStop, DisarmPreventsFiring) {
  rt::ClusterConfig cfg;
  rt::Cluster cluster(cfg);
  ASSERT_TRUE(cluster.bootAll());
  hw::ClockStop cs(cluster.machine().node(0));
  ASSERT_TRUE(cs.armAt(cluster.engine().now() + 1000));
  cs.disarm();
  cluster.engine().runUntil(cluster.engine().now() + 10'000);
  EXPECT_FALSE(cs.fired());
  EXPECT_FALSE(cs.armed());
}

TEST(ClockStop, ScansAtSameCycleMatchAcrossIdenticalRuns) {
  auto scanAt = [](sim::Cycle cycle) {
    rt::ClusterConfig cfg;
    rt::Cluster cluster(cfg);
    EXPECT_TRUE(cluster.bootAll());
    apps::FwqParams fp;
    fp.samples = 20;
    kernel::JobSpec job;
    job.exe = apps::fwqImage(fp);
    EXPECT_TRUE(cluster.loadJob(job));
    hw::ClockStop cs(cluster.machine().node(0));
    EXPECT_TRUE(cs.armAt(cycle));
    cluster.engine().runUntil(cycle + 1);
    EXPECT_TRUE(cs.fired());
    return cs.capturedScan();
  };
  // Same cycle -> identical scans (cycle reproducibility); one cycle
  // later -> the chip has moved on.
  EXPECT_EQ(scanAt(3'000'000), scanAt(3'000'000));
  EXPECT_NE(scanAt(3'000'000), scanAt(3'400'000));
}

}  // namespace
}  // namespace bg

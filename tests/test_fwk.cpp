// Integration tests: the Linux-like FWK baseline — demand paging,
// preemptive scheduling, daemons, full memory protection, buddy
// allocator fragmentation behaviour.
#include <gtest/gtest.h>

#include "cluster_test_util.hpp"
#include "cnk/partitioner.hpp"
#include "fwk/buddy.hpp"
#include "kernel/syscalls.hpp"
#include "runtime/rt_ids.hpp"

namespace bg {
namespace {

using test::emitExit;
using test::runProgram;

std::int64_t sys(kernel::Sys s) { return static_cast<std::int64_t>(s); }
std::int64_t rtc(rt::Rt r) { return static_cast<std::int64_t>(r); }

rt::ClusterConfig fwkCfg() {
  rt::ClusterConfig cfg;
  cfg.kernel = rt::KernelKind::kFwk;
  return cfg;
}

// ---------------- buddy allocator ----------------

TEST(Buddy, AllocFreeRoundTrip) {
  fwk::BuddyAllocator b(0, 64 << 20);
  const auto a = b.alloc(4096);
  ASSERT_TRUE(a);
  EXPECT_EQ(*a % 4096, 0u);
  b.free(*a, 4096);
  EXPECT_EQ(b.bytesFree(), b.totalBytes());
}

TEST(Buddy, SplitsAndCoalesces) {
  fwk::BuddyAllocator b(0, 32 << 20);
  std::vector<hw::PAddr> pages;
  for (int i = 0; i < 1024; ++i) {
    const auto p = b.alloc(4096);
    ASSERT_TRUE(p);
    pages.push_back(*p);
  }
  for (const auto p : pages) b.free(p, 4096);
  // Everything coalesces back to max-order blocks.
  EXPECT_EQ(b.largestFreeBlock(), 1ULL << fwk::BuddyAllocator::kMaxOrder);
  EXPECT_EQ(b.bytesFree(), b.totalBytes());
}

TEST(Buddy, FragmentationShrinksLargestBlock) {
  // The Table II story for Linux: "large physically contiguous memory:
  // easy - hard ... depending on memory layout may not be granted".
  fwk::BuddyAllocator b(0, 32 << 20);
  std::vector<hw::PAddr> pages;
  // Drain the whole pool into 4KB pages...
  for (;;) {
    const auto p = b.alloc(4096);
    if (!p) break;
    pages.push_back(*p);
  }
  // ...then free every other page: plenty of free bytes, no big blocks.
  for (std::size_t i = 0; i < pages.size(); i += 2) b.free(pages[i], 4096);
  EXPECT_GE(b.bytesFree(), 4ULL << 20);
  EXPECT_EQ(b.largestFreeBlock(), 4096u);
  EXPECT_FALSE(b.alloc(1 << 20).has_value());  // request denied
}

TEST(Buddy, DistinctBlocksNeverOverlap) {
  fwk::BuddyAllocator b(0, 16 << 20);
  std::vector<std::pair<hw::PAddr, std::uint64_t>> blocks;
  std::uint64_t sizes[] = {4096, 8192, 65536, 4096, 1 << 20, 16384};
  for (const auto sz : sizes) {
    const auto p = b.alloc(sz);
    ASSERT_TRUE(p);
    blocks.emplace_back(*p, sz);
  }
  std::sort(blocks.begin(), blocks.end());
  for (std::size_t i = 1; i < blocks.size(); ++i) {
    EXPECT_LE(blocks[i - 1].first + blocks[i - 1].second, blocks[i].first);
  }
}

// ---------------- demand paging ----------------

TEST(FwkPaging, FirstTouchFaultsThenSteadyState) {
  vm::ProgramBuilder b("t");
  b.mov(16, 10);
  // Touch 32 pages twice.
  for (int pass = 0; pass < 2; ++pass) {
    b.memTouch(16, 0, 32 * 4096, 4096, true);
  }
  emitExit(b);
  std::unique_ptr<rt::Cluster> cluster;
  auto r = runProgram(fwkCfg(), std::move(b).build(), &cluster);
  ASSERT_TRUE(r.completed);
  auto* fwk = cluster->fwkOn(0);
  // Each touched page faulted exactly once (plus a handful from
  // startup); the second pass added none.
  EXPECT_GE(fwk->pageFaults(), 32u);
  EXPECT_LE(fwk->pageFaults(), 100u);
  EXPECT_GT(fwk->tlbRefillCount(), 0u);
}

TEST(FwkPaging, PrefaultAblationEliminatesRuntimeFaults) {
  rt::ClusterConfig cfg = fwkCfg();
  cfg.fwk.demandPaging = false;
  vm::ProgramBuilder b("t");
  b.mov(16, 10);
  b.memTouch(16, 0, 32 * 4096, 4096, true);
  emitExit(b);
  std::unique_ptr<rt::Cluster> cluster;
  auto r = runProgram(cfg, std::move(b).build(), &cluster);
  ASSERT_TRUE(r.completed);
  // All faults happened during load (prefault), none during execution:
  // the count equals what prefaulting itself did, and steady-state TLB
  // refills still occur (4KB pages never all fit).
  EXPECT_GT(cluster->fwkOn(0)->pageFaults(), 1000u);  // prefaulted VMAs
}

TEST(FwkProtection, TextIsNotWritable) {
  // Contrast with CnkMemory.TextIsModifiable: Linux protects text.
  vm::ProgramBuilder b("t");
  b.li(16, static_cast<std::int64_t>(cnk::kTextVBase));
  b.li(17, 0xDEAD);
  b.store(16, 17, 512);  // SIGSEGV
  b.sample(17);
  emitExit(b);
  std::unique_ptr<rt::Cluster> cluster;
  auto r = runProgram(fwkCfg(), std::move(b).build(), &cluster);
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(r.samples.empty());
  EXPECT_EQ(cluster->kernelOn(0).threadsKilled(), 1u);
}

TEST(FwkProtection, MprotectRevokesWriteAccess) {
  vm::ProgramBuilder b("t");
  // mmap RW, write ok; mprotect R, write faults.
  b.li(1, 0);
  b.li(2, 4096);
  b.li(3, static_cast<std::int64_t>(kernel::kProtRead | kernel::kProtWrite));
  b.li(4, static_cast<std::int64_t>(kernel::kMapPrivate |
                                    kernel::kMapAnonymous));
  b.syscall(sys(kernel::Sys::kMmap));
  b.mov(16, 0);
  b.li(17, 1);
  b.store(16, 17, 0);
  b.load(18, 16, 0);
  b.sample(18);  // 1
  b.mov(1, 16);
  b.li(2, 4096);
  b.li(3, static_cast<std::int64_t>(kernel::kProtRead));
  b.syscall(sys(kernel::Sys::kMprotect));
  b.sample(0);   // 0 on success
  b.store(16, 17, 0);  // faults now
  b.sample(17);
  emitExit(b);
  std::unique_ptr<rt::Cluster> cluster;
  auto r = runProgram(fwkCfg(), std::move(b).build(), &cluster);
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.samples.size(), 2u);  // third sample never reached
  EXPECT_EQ(r.samples[0], 1u);
  EXPECT_EQ(r.samples[1], 0u);
  EXPECT_EQ(cluster->kernelOn(0).threadsKilled(), 1u);
}

// ---------------- scheduling / noise sources ----------------

TEST(FwkSched, TicksAndDaemonsRun) {
  vm::ProgramBuilder b("t");
  b.compute(30'000'000);  // ~35ms: several ticks + daemon wakeups
  emitExit(b);
  std::unique_ptr<rt::Cluster> cluster;
  auto r = runProgram(fwkCfg(), std::move(b).build(), &cluster);
  ASSERT_TRUE(r.completed);
  auto* fwk = cluster->fwkOn(0);
  EXPECT_GT(fwk->ticks(), 30u);
  EXPECT_GT(fwk->daemonWakeups(), 0u);
  EXPECT_GT(fwk->preemptions(), 0u);
}

TEST(FwkSched, NoTickAblationSilencesPreemption) {
  rt::ClusterConfig cfg = fwkCfg();
  cfg.fwk.enableTick = false;
  cfg.fwk.enableDaemons = false;
  vm::ProgramBuilder b("t");
  b.compute(10'000'000);
  emitExit(b);
  std::unique_ptr<rt::Cluster> cluster;
  auto r = runProgram(cfg, std::move(b).build(), &cluster);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(cluster->fwkOn(0)->ticks(), 0u);
  EXPECT_EQ(cluster->fwkOn(0)->preemptions(), 0u);
}

TEST(FwkSched, ThreadOvercommitWorks) {
  // 10 threads on 4 cores — "over commit of threads" is native on
  // Linux (Table II) while CNK caps at its slot count.
  constexpr int kThreads = 10;
  vm::ProgramBuilder b("t");
  b.mov(18, 10);
  b.addi(18, 18, 2048);
  std::vector<std::size_t> fixes;
  for (int i = 0; i < kThreads; ++i) {
    fixes.push_back(b.size());
    b.li(1, -1);
    b.li(2, 0);
    b.rtcall(rtc(rt::Rt::kPthreadCreate));
    b.sample(0);
    b.store(18, 0, i * 8);
  }
  for (int i = 0; i < kThreads; ++i) {
    b.load(1, 18, i * 8);
    b.rtcall(rtc(rt::Rt::kPthreadJoin));
  }
  emitExit(b);
  const auto worker = b.label();
  b.compute(500'000);
  b.halt();
  for (auto f : fixes) b.patchTarget(f, worker);
  auto r = runProgram(fwkCfg(), std::move(b).build());
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.samples.size(), static_cast<std::size_t>(kThreads));
  for (auto v : r.samples) {
    EXPECT_GT(static_cast<std::int64_t>(v), 0);
  }
}

TEST(FwkSched, MachineCheckIsFatalNoRecoveryPath) {
  // Contrast with CnkRas: Linux has no application-recovery hook for
  // an L1 parity machine check in this model.
  rt::ClusterConfig cfg = fwkCfg();
  rt::Cluster cluster(cfg);
  ASSERT_TRUE(cluster.bootAll());
  vm::ProgramBuilder b("t");
  b.compute(5'000'000);
  emitExit(b);
  kernel::JobSpec job;
  job.exe = kernel::ElfImage::makeExecutable("t", std::move(b).build());
  ASSERT_TRUE(cluster.loadJob(job));
  // Inject mid-run.
  cluster.engine().schedule(1'000'000, [&] {
    cluster.machine().node(0).core(0).raise(hw::Irq::kMachineCheck);
  });
  ASSERT_TRUE(cluster.run());
  EXPECT_EQ(cluster.processOfRank(0)->exitStatus, -1);
}

// ---------------- dynamic linking (lazy) ----------------

TEST(FwkDlopen, LazyMappingFaultsFromRemoteStorageAtUse) {
  rt::ClusterConfig cfg = fwkCfg();
  vm::ProgramBuilder b("t");
  b.li(1, 0);
  b.rtcall(rtc(rt::Rt::kDlopen));
  b.sample(0);        // library base
  b.mov(16, 0);
  b.readTb(17);
  b.memTouch(16, 0, 16 << 10);  // first touch: remote page faults
  b.readTb(18);
  b.sub(19, 18, 17);
  b.sample(19);       // expensive
  b.readTb(17);
  b.memTouch(16, 0, 16 << 10);  // second touch: resident
  b.readTb(18);
  b.sub(19, 18, 17);
  b.sample(19);       // cheap
  emitExit(b);
  kernel::JobSpec tmpl;
  tmpl.libs.push_back(kernel::ElfImage::makeLibrary("liblazy.so"));
  std::unique_ptr<rt::Cluster> cluster;
  auto r = runProgram(cfg, std::move(b).build(), &cluster, tmpl);
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.samples.size(), 3u);
  EXPECT_GT(static_cast<std::int64_t>(r.samples[0]), 0);
  // First touch pays the networked-storage fault cost (paper §IV-B2);
  // it must dwarf the warm pass.
  EXPECT_GT(r.samples[1], 10 * r.samples[2]);
}

}  // namespace
}  // namespace bg

// Randomized torture of the service-node control plane: hundreds of
// jobs with staggered arrivals under FIFO and EASY backfill, with
// control-plane crashes, node deaths, warn storms and CIOD fail-stops
// injected at seeded cycles (fault_schedule.hpp). A slice of the jobs
// performs function-shipped I/O under tight fship watchdogs, so a
// killed CIOD is detected the honest way — timeout storms raising
// kIoNodeDead — and the service node must requeue the pset's jobs and
// repair the I/O node rather than wedge. Policy invariants checked on
// every stream:
//
//   - no job is lost or duplicated: every submission reaches exactly
//     one terminal state, completed + failed == submitted
//   - bounded retries: attempts never exceed maxRetries + 1
//   - every node returns to kReady once the stream drains
//   - same seed => identical scheduleHash and timeline (replay)
//   - EASY backfill never delays the blocked queue head (simulation
//     oracle over randomized contexts, against the policy directly)
//
// Seeds and stream size come from SVC_TORTURE_SEED / SVC_TORTURE_JOBS
// when set (CI sweeps several fixed seeds); the `slow` ctest lane
// (SVC_TORTURE_SLOW=1) runs a much longer stream.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "apps/io_kernel.hpp"
#include "fault_schedule.hpp"
#include "runtime/app.hpp"
#include "sim/rng.hpp"
#include "svc/failover.hpp"
#include "vm/builder.hpp"

namespace bg {
namespace {

std::uint64_t envU64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::strtoull(v, nullptr, 10)
                                    : fallback;
}

std::shared_ptr<kernel::ElfImage> workImage(const std::string& name,
                                            std::uint64_t reps,
                                            std::uint64_t cyclesPerRep) {
  vm::ProgramBuilder b(name);
  const auto top = b.loopBegin(16, static_cast<std::int64_t>(reps));
  b.compute(cyclesPerRep);
  b.loopEnd(16, top);
  b.halt(0);
  return kernel::ElfImage::makeExecutable(name, std::move(b).build());
}

struct TortureOutcome {
  std::uint64_t hash = 0;
  std::vector<std::string> timeline;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t retries = 0;
  std::uint64_t predictiveDrains = 0;
  std::uint64_t ioReboots = 0;
  std::uint64_t crashes = 0;
  std::uint64_t coldStarts = 0;
  bool drained = false;
};

TortureOutcome runTorture(std::uint64_t seed, svc::SchedPolicyKind policy,
                          int jobCount) {
  const int kNodes = 6;
  rt::ClusterConfig cfg;
  cfg.computeNodes = kNodes;
  cfg.seed = seed;
  // Tight fship watchdogs so a CIOD killed by the fault schedule is
  // declared dead within one control-loop cadence instead of the
  // (deliberately huge) fault-free defaults.
  cfg.cnk.fship.requestTimeout = 100'000;
  cfg.cnk.fship.maxTimeout = 400'000;
  cfg.cnk.fship.maxRetries = 2;
  rt::Cluster cluster(cfg);

  svc::ServiceNodeConfig snCfg;
  snCfg.policy = policy;
  snCfg.ras.warnDrainThreshold = 5;
  svc::ServiceHost host(cluster, snCfg);

  // Job stream: widths 1-3, staggered arrivals over the first part of
  // the run so crashes land between, before and after submissions.
  sim::Rng rng(seed, "svc-torture");
  const sim::Cycle arrivalSpan =
      static_cast<sim::Cycle>(jobCount) * 40'000;
  struct Arrival {
    sim::Cycle at;
    svc::JobDesc jd;
  };
  std::vector<Arrival> arrivals;
  for (int i = 0; i < jobCount; ++i) {
    svc::JobDesc jd;
    jd.name = "t" + std::to_string(i);
    jd.kernel = rt::KernelKind::kCnk;
    jd.nodes = 1 + static_cast<int>(rng.nextBelow(3));
    if (i % 5 == 2) {
      // Every fifth job function-ships real I/O, so a CIOD fail-stop
      // from the fault schedule actually produces a timeout storm.
      apps::IoKernelParams ip;
      ip.chunks = 2;
      ip.chunkBytes = 2 << 10;
      ip.computeBetween = 20'000;
      jd.exe = apps::ioKernelImage(ip);
      jd.estCycles = 500'000;
    } else {
      const std::uint64_t reps = 5 + rng.nextBelow(16);
      jd.exe = workImage(jd.name, reps, 10'000);
      jd.estCycles = reps * 10'000 + 50'000;
    }
    jd.maxRetries = 2;
    arrivals.push_back({rng.nextBelow(arrivalSpan), std::move(jd)});
  }
  int arrived = 0;
  for (Arrival& a : arrivals) {
    cluster.engine().scheduleAt(a.at, [&host, &arrived, &a] {
      host.submit(std::move(a.jd));
      ++arrived;
    });
  }

  const testing::FaultSchedule faults = testing::FaultSchedule::random(
      seed, kNodes, arrivalSpan + 2'000'000, /*crashes=*/3, /*deaths=*/4,
      /*storms=*/3, /*ioDeaths=*/2, /*ioNodes=*/1);
  faults.arm(cluster, host);

  host.start();
  TortureOutcome out;
  out.drained = cluster.engine().runWhile(
      [&] { return arrived == jobCount && host.drained(); },
      2'000'000'000);
  svc::SvcMetrics m = host.metrics();
  out.hash = m.scheduleHash;
  out.completed = m.jobsCompleted;
  out.failed = m.jobsFailed;
  out.retries = m.jobRetries;
  out.predictiveDrains = m.predictiveDrains;
  out.ioReboots = m.ioReboots + m.ioFailovers;
  out.crashes = m.serviceCrashes;
  out.coldStarts = host.coldStarts();
  if (host.alive()) out.timeline = host.node().timeline();

  // Structural invariants, checked here so every stream gets them.
  EXPECT_TRUE(out.drained) << "stream wedged (seed " << seed << ")";
  EXPECT_EQ(out.coldStarts, 0u) << "a checkpoint failed to restore";
  const auto& jobs = host.node().jobs();
  EXPECT_EQ(jobs.size(), static_cast<std::size_t>(jobCount))
      << "jobs lost or duplicated across crashes";
  std::set<std::string> names;
  std::set<svc::JobId> ids;
  for (const auto& jr : jobs) {
    names.insert(jr.desc.name);
    ids.insert(jr.id);
    EXPECT_TRUE(jr.state == svc::JobState::kCompleted ||
                jr.state == svc::JobState::kFailed)
        << jr.desc.name << " not terminal";
    EXPECT_LE(jr.attempts, jr.desc.maxRetries + 1)
        << jr.desc.name << " exceeded its retry budget";
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(jobCount));
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(jobCount));
  EXPECT_EQ(out.completed + out.failed,
            static_cast<std::uint64_t>(jobCount));
  svc::PartitionManager& pm = host.node().partitions();
  for (int n = 0; n < pm.size(); ++n) {
    EXPECT_EQ(pm.state(n), svc::NodeLifecycle::kReady)
        << "node " << n << " never returned to service";
  }
  return out;
}

TEST(SvcTorture, BackfillStreamSurvivesCrashesAndReplays) {
  const std::uint64_t seed = envU64("SVC_TORTURE_SEED", 1);
  const int jobCount =
      static_cast<int>(envU64("SVC_TORTURE_JOBS", 200));
  const TortureOutcome a =
      runTorture(seed, svc::SchedPolicyKind::kBackfill, jobCount);
  const TortureOutcome b =
      runTorture(seed, svc::SchedPolicyKind::kBackfill, jobCount);
  EXPECT_EQ(a.hash, b.hash) << "same-seed replay diverged";
  EXPECT_EQ(a.timeline, b.timeline);
}

TEST(SvcTorture, FifoStreamSurvivesCrashesAndReplays) {
  const std::uint64_t seed = envU64("SVC_TORTURE_SEED", 1);
  const int jobCount =
      static_cast<int>(envU64("SVC_TORTURE_JOBS", 200));
  const TortureOutcome a =
      runTorture(seed, svc::SchedPolicyKind::kFifo, jobCount);
  const TortureOutcome b =
      runTorture(seed, svc::SchedPolicyKind::kFifo, jobCount);
  EXPECT_EQ(a.hash, b.hash) << "same-seed replay diverged";
  // The two policies must actually schedule differently (otherwise
  // the torture isn't exercising the policy layer at all).
  const TortureOutcome bf =
      runTorture(seed, svc::SchedPolicyKind::kBackfill, jobCount);
  EXPECT_NE(a.hash, bf.hash);
}

// --- EASY property: backfill never delays the blocked head --------------

/// Earliest cycle at which `needed` nodes are simultaneously free,
/// given `availNow` free nodes plus (cycle, nodes) releases. Returns
/// max() when never.
sim::Cycle earliestFit(int availNow, int needed,
                       std::vector<std::pair<sim::Cycle, int>> releases,
                       sim::Cycle now) {
  if (availNow >= needed) return now;
  std::sort(releases.begin(), releases.end());
  int avail = availNow;
  for (const auto& [at, n] : releases) {
    avail += n;
    if (avail >= needed) return std::max(at, now);
  }
  return std::numeric_limits<sim::Cycle>::max();
}

TEST(SvcTorture, BackfillNeverDelaysBlockedHead) {
  const std::uint64_t seed = envU64("SVC_TORTURE_SEED", 1);
  sim::Rng rng(seed, "backfill-oracle");
  svc::BackfillPolicy bf;
  int blockedContexts = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const sim::Cycle now = 1'000 * rng.nextBelow(1'000);
    const int availNow = static_cast<int>(rng.nextBelow(9));

    std::vector<svc::JobRecord> storage(5 + rng.nextBelow(11));
    std::vector<svc::RunningJobInfo> running(rng.nextBelow(7));
    svc::SchedContext ctx;
    ctx.now = now;
    ctx.readyNodes = [availNow](rt::KernelKind) { return availNow; };
    for (std::size_t i = 0; i < storage.size(); ++i) {
      storage[i].id = static_cast<svc::JobId>(i + 1);
      storage[i].desc.kernel = rt::KernelKind::kCnk;
      storage[i].desc.nodes = 1 + static_cast<int>(rng.nextBelow(8));
      storage[i].desc.estCycles = 1'000 * (1 + rng.nextBelow(10'000));
      ctx.queue.push_back(&storage[i]);
    }
    for (std::size_t i = 0; i < running.size(); ++i) {
      running[i].id = static_cast<svc::JobId>(100 + i);
      running[i].kernel = rt::KernelKind::kCnk;
      running[i].nodes = 1 + static_cast<int>(rng.nextBelow(4));
      running[i].estEnd = now + 1'000 * (1 + rng.nextBelow(8'000));
    }
    ctx.running = running;

    const std::vector<std::size_t> picks = bf.select(ctx);

    // Find the blocked head: first queue index not in the FIFO prefix.
    std::size_t head = 0;
    {
      int avail = availNow;
      while (head < ctx.queue.size() &&
             ctx.queue[head]->desc.nodes <= avail) {
        avail -= ctx.queue[head]->desc.nodes;
        ++head;
      }
    }
    if (head >= ctx.queue.size()) continue;  // nothing blocked
    const int headNodes = ctx.queue[head]->desc.nodes;
    int fifoPrefixNodes = 0;
    for (std::size_t i = 0; i < head; ++i) {
      fifoPrefixNodes += ctx.queue[i]->desc.nodes;
    }

    // Oracle: the head's start time assuming estimates are exact, with
    // and without the backfilled jobs occupying nodes. Launched jobs
    // (FIFO prefix and backfills) hold nodes from `now` and release at
    // now + estCycles.
    std::vector<std::pair<sim::Cycle, int>> releases;
    for (const auto& r : running) releases.push_back({r.estEnd, r.nodes});
    for (std::size_t i = 0; i < head; ++i) {
      releases.push_back(
          {now + ctx.queue[i]->desc.estCycles, ctx.queue[i]->desc.nodes});
    }
    const sim::Cycle without =
        earliestFit(availNow - fifoPrefixNodes, headNodes, releases, now);

    int backfilledNodes = 0;
    for (std::size_t qi : picks) {
      if (qi < head) continue;
      ASSERT_NE(qi, head) << "policy launched the blocked head";
      releases.push_back(
          {now + ctx.queue[qi]->desc.estCycles, ctx.queue[qi]->desc.nodes});
      backfilledNodes += ctx.queue[qi]->desc.nodes;
    }
    const sim::Cycle with =
        earliestFit(availNow - fifoPrefixNodes - backfilledNodes,
                    headNodes, releases, now);
    if (without == std::numeric_limits<sim::Cycle>::max()) continue;
    EXPECT_LE(with, without)
        << "backfill delayed the head (trial " << trial << ", seed "
        << seed << ")";
    ++blockedContexts;
  }
  EXPECT_GE(blockedContexts, 50) << "oracle barely exercised";
}

// --- slow lane ----------------------------------------------------------

TEST(SvcTortureSlow, LongStream) {
  if (std::getenv("SVC_TORTURE_SLOW") == nullptr) {
    GTEST_SKIP() << "slow lane only (ctest -L slow)";
  }
  const std::uint64_t seed = envU64("SVC_TORTURE_SEED", 1);
  const int jobCount =
      static_cast<int>(envU64("SVC_TORTURE_JOBS", 1'000));
  const TortureOutcome a =
      runTorture(seed, svc::SchedPolicyKind::kBackfill, jobCount);
  const TortureOutcome b =
      runTorture(seed, svc::SchedPolicyKind::kBackfill, jobCount);
  EXPECT_EQ(a.hash, b.hash);
}

}  // namespace
}  // namespace bg

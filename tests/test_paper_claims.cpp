// Tests pinned directly to specific paper claims that are not covered
// by the broader suites.
#include <gtest/gtest.h>

#include "cluster_test_util.hpp"
#include "cnk/partitioner.hpp"
#include "kernel/syscalls.hpp"
#include "runtime/rt_ids.hpp"

namespace bg {
namespace {

using test::emitExit;
using test::runProgram;

std::int64_t sys(kernel::Sys s) { return static_cast<std::int64_t>(s); }
std::int64_t rtc(rt::Rt r) { return static_cast<std::int64_t>(r); }

// §VI-C: "I/O function shipping is made trivial by not yielding the
// core to another thread during an I/O system call." A sibling thread
// sharing the core must NOT run while the main thread spins in a
// shipped syscall — but runs fine while the main thread blocks on a
// futex (which DOES yield).
TEST(PaperClaims, CnkDoesNotYieldCoreDuringIoSyscall) {
  rt::ClusterConfig cfg;
  // Single-core node: main + sibling must share it.
  cfg.node.cores = 1;
  rt::Cluster cluster(cfg);
  ASSERT_TRUE(cluster.bootAll());

  vm::ProgramBuilder b("t");
  // Path "/tmp/f" at heap+256.
  b.mov(21, 10);
  b.addi(21, 21, 256);
  std::uint64_t w = 0;
  const char path[] = "/tmp/f";
  for (std::size_t i = 0; i < sizeof(path); ++i) {
    w |= static_cast<std::uint64_t>(static_cast<unsigned char>(path[i]))
         << (8 * i);
  }
  b.li(20, static_cast<std::int64_t>(w));
  b.store(21, 20, 0);

  // Spawn the sibling (lands on the same, single core).
  std::size_t fix = b.size();
  b.li(1, -1);
  b.li(2, 0);
  b.rtcall(rtc(rt::Rt::kPthreadCreate));

  // Ship an open(): the core spins in-kernel until the reply.
  b.mov(1, 21);
  b.li(2, static_cast<std::int64_t>(kernel::kOCreat));
  b.syscall(sys(kernel::Sys::kOpen));
  // Immediately after the syscall returns, check whether the sibling
  // made progress: it sets heap+512 as its FIRST action.
  b.load(16, 10, 512);
  b.sample(16);  // must still be 0: the sibling never got the core
  // Now block on a futex (yields); when we wake, the sibling ran.
  b.mov(1, 10);
  b.addi(1, 1, 640);
  b.li(2, static_cast<std::int64_t>(kernel::kFutexWait));
  b.li(3, 0);
  b.syscall(sys(kernel::Sys::kFutex));
  b.load(16, 10, 512);
  b.sample(16);  // sibling progressed while we yielded
  emitExit(b);

  const auto worker = b.label();
  b.mov(16, 10);
  b.li(17, 1);
  b.store(16, 17, 512);  // the progress flag
  // Wake the main thread's futex.
  b.mov(1, 10);
  b.addi(1, 1, 640);
  b.li(2, static_cast<std::int64_t>(kernel::kFutexWake));
  b.li(3, 1);
  b.syscall(sys(kernel::Sys::kFutex));
  b.halt();
  b.patchTarget(fix, worker);

  kernel::JobSpec job;
  job.exe = kernel::ElfImage::makeExecutable("t", std::move(b).build());
  std::vector<std::uint64_t> s;
  cluster.attachSamples(0, 0, &s);
  ASSERT_TRUE(cluster.loadJob(job));
  ASSERT_TRUE(cluster.run());
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], 0u);  // no progress during the shipped syscall
  EXPECT_EQ(s[1], 1u);  // progress once we yielded on the futex
}

// BG/P originally allowed ONE software thread per core; the footnote
// says three came later and next-gen makes it variable at compile
// time. The knob exists and enforces.
TEST(PaperClaims, ThreadsPerCoreIsConfigurable) {
  rt::ClusterConfig cfg;
  cfg.cnk.maxThreadsPerCore = 1;  // original BG/P model
  rt::Cluster cluster(cfg);
  ASSERT_TRUE(cluster.bootAll());
  // SMP mode on 4 cores with one thread slot each: 3 extra threads fit
  // (one per remaining core), the 4th does not.
  vm::ProgramBuilder b2("t");
  std::vector<std::size_t> fixes;
  for (int i = 0; i < 4; ++i) {
    fixes.push_back(b2.size());
    b2.li(1, -1);
    b2.li(2, 0);
    b2.rtcall(rtc(rt::Rt::kPthreadCreate));
    b2.sample(0);
  }
  emitExit(b2);
  const auto entry = b2.label();
  b2.compute(200'000);
  b2.halt();
  for (auto f : fixes) b2.patchTarget(f, entry);

  kernel::JobSpec job;
  job.exe = kernel::ElfImage::makeExecutable("t", std::move(b2).build());
  std::vector<std::uint64_t> s;
  cluster.attachSamples(0, 0, &s);
  ASSERT_TRUE(cluster.loadJob(job));
  ASSERT_TRUE(cluster.run());
  ASSERT_EQ(s.size(), 4u);
  int ok = 0, eagain = 0;
  for (auto v : s) {
    if (static_cast<std::int64_t>(v) > 0) ++ok;
    if (static_cast<std::int64_t>(v) == -kernel::kEAGAIN) ++eagain;
  }
  EXPECT_EQ(ok, 3);
  EXPECT_EQ(eagain, 1);
}

// §IV-B2: "ld.so needed to statically load at a fixed virtual address
// that was not equal to the initial virtual addresses of the
// application" — loaded libraries must land outside the text segment.
TEST(PaperClaims, DlopenedLibraryLandsOutsideApplicationText) {
  vm::ProgramBuilder b("t");
  b.li(1, 0);
  b.rtcall(rtc(rt::Rt::kDlopen));
  b.sample(0);
  emitExit(b);
  kernel::JobSpec tmpl;
  tmpl.libs.push_back(kernel::ElfImage::makeLibrary("libaddr.so"));
  std::unique_ptr<rt::Cluster> cluster;
  auto r = runProgram({}, std::move(b).build(), &cluster, tmpl);
  ASSERT_TRUE(r.completed);
  const std::uint64_t base = r.samples.at(0);
  kernel::Process* p = cluster->processOfRank(0);
  const auto* text = p->regionNamed("text");
  ASSERT_NE(text, nullptr);
  EXPECT_TRUE(base >= text->vbase + text->size || base < text->vbase);
  // And within the process's mapped space (the heap/stack range).
  EXPECT_NE(p->regionFor(base), nullptr);
}

// Rendezvous-size transfers must be correct through the FWK's
// kernel-mediated path too (bounce buffers, page walks).
TEST(PaperClaims, FwkRendezvousDeliversCorrectBytes) {
  rt::ClusterConfig cfg;
  cfg.computeNodes = 2;
  cfg.kernel = rt::KernelKind::kFwk;
  rt::Cluster cluster(cfg);
  ASSERT_TRUE(cluster.bootAll());
  constexpr std::uint64_t kBytes = 16384;
  vm::ProgramBuilder b("t");
  b.mov(16, 10);
  const std::size_t toRecv = b.emitForwardBranch(vm::Op::kBnez, 1);
  b.li(17, 0xABCD);
  b.store(16, 17, kBytes - 8);
  b.li(1, 1);
  b.mov(2, 16);
  b.li(3, kBytes);
  b.li(4, 2);
  b.rtcall(rtc(rt::Rt::kMpiSend));
  emitExit(b);
  b.patchHere(toRecv);
  b.li(1, 0);
  b.mov(2, 16);
  b.addi(2, 2, 1 << 20);
  b.li(3, kBytes);
  b.li(4, 2);
  b.rtcall(rtc(rt::Rt::kMpiRecv));
  b.sample(0);
  b.load(18, 16, (1 << 20) + kBytes - 8);
  b.sample(18);
  emitExit(b);
  kernel::JobSpec job;
  job.exe = kernel::ElfImage::makeExecutable("t", std::move(b).build());
  std::vector<std::uint64_t> s;
  cluster.attachSamples(1, 0, &s);
  ASSERT_TRUE(cluster.loadJob(job));
  ASSERT_TRUE(cluster.run());
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], kBytes);
  EXPECT_EQ(s[1], 0xABCDu);
}

// §VII-A: the 32-bit address-space claim — the static map keeps the
// whole task under 4GB while still reaching the shared and persistent
// windows near the top.
TEST(PaperClaims, StaticMapFitsIn32BitAddressSpace) {
  cnk::PartitionRequest req;
  req.physBase = 16ULL << 20;
  req.physSize = 464ULL << 20;
  req.processes = 1;
  req.textBytes = 1 << 20;
  req.dataBytes = 1 << 20;
  req.sharedBytes = 16 << 20;
  const auto res = cnk::partitionMemory(req);
  ASSERT_TRUE(res.ok);
  for (const auto* r :
       {&res.procs[0].text, &res.procs[0].data, &res.procs[0].heapStack,
        &res.procs[0].shared}) {
    EXPECT_LE(r->vbase + r->size, 1ULL << 32) << r->name;
  }
  EXPECT_LT(cnk::kPersistVBase, 1ULL << 32);
}

}  // namespace
}  // namespace bg

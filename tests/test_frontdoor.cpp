// Front-door RPC subsystem tests: protocol framing, admission
// control, batching, exactly-once duplicate suppression, cancel/query
// paths, warm-restart recovery of the in-flight table, and the
// determinism witnesses (same-seed identity; duplicate-injected runs
// schedule-identical to clean runs).
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "frontdoor/frontdoor.hpp"
#include "frontdoor/swarm.hpp"
#include "runtime/app.hpp"
#include "svc/failover.hpp"
#include "vm/builder.hpp"

namespace {

using namespace bg;

std::shared_ptr<kernel::ElfImage> fdWorkImage() {
  vm::ProgramBuilder b("fdwork");
  const auto top = b.loopBegin(16, 12);
  b.compute(10'000);
  b.loopEnd(16, top);
  b.halt(0);
  return kernel::ElfImage::makeExecutable("fdwork", std::move(b).build());
}

// ---------------------------------------------------------------------
// Protocol layer
// ---------------------------------------------------------------------

TEST(FdProtocol, RequestRoundTripAllTypes) {
  fd::Request q;
  q.type = fd::MsgType::kSubmit;
  q.clientId = 77;
  q.seq = 12345;
  q.retransmit = true;
  q.jobName = "alpha";
  q.kernel = 1;
  q.nodes = 3;
  q.processes = 2;
  q.estCycles = 900'000;
  q.maxRetries = 4;
  q.exeName = "fdwork";
  const auto back = fd::Request::decode(q.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->version, fd::kProtocolVersion);
  EXPECT_EQ(back->type, fd::MsgType::kSubmit);
  EXPECT_EQ(back->clientId, 77u);
  EXPECT_EQ(back->seq, 12345u);
  EXPECT_TRUE(back->retransmit);
  EXPECT_EQ(back->jobName, "alpha");
  EXPECT_EQ(back->kernel, 1u);
  EXPECT_EQ(back->nodes, 3u);
  EXPECT_EQ(back->processes, 2u);
  EXPECT_EQ(back->estCycles, 900'000u);
  EXPECT_EQ(back->maxRetries, 4u);
  EXPECT_EQ(back->exeName, "fdwork");

  for (const fd::MsgType t :
       {fd::MsgType::kCancel, fd::MsgType::kQuery, fd::MsgType::kStats}) {
    fd::Request r;
    r.type = t;
    r.clientId = 9;
    r.seq = 2;
    r.ticket = 31337;
    const auto rb = fd::Request::decode(r.encode());
    ASSERT_TRUE(rb.has_value()) << fd::msgTypeName(t);
    EXPECT_EQ(rb->type, t);
    if (t != fd::MsgType::kStats) EXPECT_EQ(rb->ticket, 31337u);
  }
}

TEST(FdProtocol, ResponseRoundTrip) {
  fd::Response p;
  p.type = fd::MsgType::kStatsResp;
  p.clientId = 5;
  p.seq = 8;
  p.status = fd::Status::kOk;
  p.accepted = 100;
  p.rejected = 7;
  p.duplicates = 3;
  p.queueDepth = 42;
  p.batchedNow = 11;
  const auto back = fd::Response::decode(p.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->type, fd::MsgType::kStatsResp);
  EXPECT_EQ(back->status, fd::Status::kOk);
  EXPECT_EQ(back->accepted, 100u);
  EXPECT_EQ(back->queueDepth, 42u);
}

TEST(FdProtocol, CorruptionRejectedEverywhere) {
  fd::Request q;
  q.type = fd::MsgType::kSubmit;
  q.clientId = 1;
  q.seq = 1;
  q.jobName = "j";
  q.exeName = "e";
  const std::vector<std::byte> frame = q.encode();
  for (std::size_t i = 0; i < frame.size(); ++i) {
    std::vector<std::byte> bad = frame;
    bad[i] ^= std::byte{0x10};
    // The length prefix, the checksum, or a field-validity check must
    // catch the damage — a corrupt frame never decodes.
    EXPECT_FALSE(fd::Request::decode(bad).has_value()) << "byte " << i;
  }
}

TEST(FdProtocol, VersionMismatchStillYieldsHeader) {
  fd::Request q;
  q.type = fd::MsgType::kSubmit;
  q.version = fd::kProtocolVersion + 7;
  q.clientId = 123;
  q.seq = 456;
  q.jobName = "ignored";
  q.exeName = "ignored";
  const auto back = fd::Request::decode(q.encode());
  // The server needs the header to answer kBadVersion to the right
  // client/seq even though it cannot trust the payload.
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->version, fd::kProtocolVersion + 7);
  EXPECT_EQ(back->clientId, 123u);
  EXPECT_EQ(back->seq, 456u);
}

// ---------------------------------------------------------------------
// Direct-packet rig: one hand-rolled client, no swarm
// ---------------------------------------------------------------------

struct DirectRig {
  rt::Cluster cluster;
  svc::ServiceHost host;
  hw::CollectiveNet net;
  fd::FrontDoor door;
  std::vector<fd::Response> responses;

  explicit DirectRig(fd::FrontDoorConfig fcfg = {})
      : cluster([] {
          rt::ClusterConfig c;
          c.computeNodes = 2;
          c.seed = 7;
          return c;
        }()),
        host(cluster, [] {
          svc::ServiceNodeConfig s;
          s.checkpointEveryPumps = 0;
          return s;
        }()),
        net(cluster.engine(), hw::CollectiveConfig{}),
        door(cluster.engine(), host, net, fcfg) {
    host.store().registerImage(fdWorkImage());
    door.attach();
    net.setHandler(5, [this](hw::CollPacket&& p) {
      const auto r = fd::Response::decode(p.payload);
      if (r) responses.push_back(*r);
    });
  }

  void send(const fd::Request& q) {
    hw::CollPacket pkt;
    pkt.srcNode = 5;
    pkt.dstNode = 0;
    pkt.channel = fd::kChanFdRequest;
    pkt.payload = q.encode();
    net.send(std::move(pkt));
  }

  void settle(sim::Cycle cycles = 2'000'000) {
    cluster.engine().runUntil(cluster.engine().now() + cycles);
  }
};

TEST(FdReplayCache, ExactlyOncePolicy) {
  DirectRig rig;
  fd::Request q;
  q.type = fd::MsgType::kSubmit;
  q.clientId = 7;
  q.seq = 1;
  q.jobName = "once";
  q.exeName = "fdwork";
  q.estCycles = 200'000;

  rig.send(q);
  rig.settle();
  ASSERT_EQ(rig.responses.size(), 1u);
  EXPECT_EQ(rig.responses[0].status, fd::Status::kOk);
  const std::uint64_t ticket = rig.responses[0].ticket;
  EXPECT_NE(ticket, 0u);
  EXPECT_EQ(rig.door.stats().accepted, 1u);

  // A wire-level duplicate (flag clear): recognized and dropped with
  // no second response — a resend would perturb every other client.
  rig.send(q);
  rig.settle();
  EXPECT_EQ(rig.responses.size(), 1u);
  EXPECT_EQ(rig.door.stats().dupSilent, 1u);
  EXPECT_EQ(rig.door.stats().accepted, 1u);

  // A client retransmit (flag set): the cached outcome is replayed,
  // with the SAME ticket — the submission is not re-admitted.
  fd::Request rt = q;
  rt.retransmit = true;
  rig.send(rt);
  rig.settle();
  ASSERT_EQ(rig.responses.size(), 2u);
  EXPECT_EQ(rig.responses[1].status, fd::Status::kOk);
  EXPECT_EQ(rig.responses[1].ticket, ticket);
  EXPECT_EQ(rig.door.stats().replays, 1u);
  EXPECT_EQ(rig.door.stats().accepted, 1u);
}

TEST(FdReplayCache, BadVersionAndBadRequestAnswered) {
  DirectRig rig;
  fd::Request q;
  q.type = fd::MsgType::kSubmit;
  q.version = 99;
  q.clientId = 1;
  q.seq = 1;
  rig.send(q);
  rig.settle();
  ASSERT_EQ(rig.responses.size(), 1u);
  EXPECT_EQ(rig.responses[0].status, fd::Status::kBadVersion);

  fd::Request miss;
  miss.type = fd::MsgType::kSubmit;
  miss.clientId = 1;
  miss.seq = 2;
  miss.jobName = "ghost";
  miss.exeName = "no-such-binary";
  rig.send(miss);
  rig.settle();
  ASSERT_EQ(rig.responses.size(), 2u);
  EXPECT_EQ(rig.responses[1].status, fd::Status::kBadRequest);

  fd::Request cancel;
  cancel.type = fd::MsgType::kCancel;
  cancel.clientId = 1;
  cancel.seq = 3;
  cancel.ticket = 424242;
  rig.send(cancel);
  rig.settle();
  ASSERT_EQ(rig.responses.size(), 3u);
  EXPECT_EQ(rig.responses[2].status, fd::Status::kUnknownTicket);
}

// ---------------------------------------------------------------------
// Swarm scenarios
// ---------------------------------------------------------------------

struct ScenOpts {
  std::uint32_t clients = 60;
  std::uint32_t submits = 2;
  std::uint64_t seed = 42;
  std::uint32_t bursts = 2;
  double dropRate = 0;
  double corruptRate = 0;
  double delayRate = 0;
  double dupRate = 0;
  double forcedDups = 0;
  double cancelRate = 0;
  double queryRate = 0;
  std::size_t maxQueue = 100'000;  // effectively unbounded
  std::size_t maxBatch = 64;
  int crashes = 0;
  sim::Cycle restartDelay = 250'000;
  bool persist = false;
  std::uint32_t checkpointEveryPumps = 0;
};

struct ScenResult {
  bool drained = false;
  fd::FrontDoorStats door;
  fd::Swarm::Totals totals;
  svc::SvcMetrics metrics;
  std::uint64_t fdDigest = 0;
  std::uint64_t rasClientRejected = 0;
  std::uint64_t rasFdRestart = 0;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ticketJobIds;
};

ScenResult runScenario(const ScenOpts& o) {
  rt::ClusterConfig cfg;
  cfg.computeNodes = 4;
  cfg.seed = o.seed;
  cfg.nodeKernels = {rt::KernelKind::kCnk, rt::KernelKind::kCnk,
                     rt::KernelKind::kCnk, rt::KernelKind::kFwk};
  rt::Cluster cluster(cfg);

  svc::ServiceNodeConfig scfg;
  scfg.checkpointEveryPumps = o.checkpointEveryPumps;
  svc::ServiceHost host(cluster, scfg);
  host.store().registerImage(fdWorkImage());

  hw::CollectiveNet fdnet(cluster.engine(), hw::CollectiveConfig{});
  hw::LinkFaultModel faults(o.seed, "fd.link");
  hw::LinkFaultRates rates;
  rates.dropRate = o.dropRate;
  rates.corruptRate = o.corruptRate;
  rates.delayRate = o.delayRate;
  rates.duplicateRate = o.dupRate;
  faults.setDefaultRates(rates);
  fdnet.setFaultModel(&faults);

  fd::FrontDoorConfig fcfg;
  fcfg.maxQueueDepth = o.maxQueue;
  fcfg.maxBatch = o.maxBatch;
  fcfg.persist = o.persist;
  fd::FrontDoor door(cluster.engine(), host, fdnet, fcfg);
  door.attach();

  fd::SwarmParams sp;
  sp.clients = o.clients;
  sp.submitsPerClient = o.submits;
  sp.seed = o.seed;
  sp.bursts = o.bursts;
  sp.estCycles = 150'000;
  sp.forcedDupRate = o.forcedDups;
  sp.cancelRate = o.cancelRate;
  sp.queryRate = o.queryRate;
  fd::Swarm swarm(cluster.engine(), fdnet, sp);

  sim::Rng crng(o.seed, "fd.crash");
  for (int c = 0; c < o.crashes; ++c) {
    const sim::Cycle at = 200'000 + crng.nextBelow(swarm.horizonCycles());
    host.scheduleCrashRestart(at, o.restartDelay);
  }

  host.start();
  swarm.start();

  ScenResult r;
  r.drained = cluster.engine().runWhile(
      [&] {
        return swarm.quiescent() && door.batchedCount() == 0 &&
               host.drained();
      },
      2'000'000'000ULL);
  r.door = door.stats();
  r.totals = swarm.totals();
  r.metrics = host.metrics();
  r.fdDigest = door.digest();
  r.rasClientRejected = host.node().ras().countByCode(
      kernel::RasEvent::Code::kClientRejected);
  r.rasFdRestart = host.node().ras().countByCode(
      kernel::RasEvent::Code::kFrontDoorRestart);
  r.ticketJobIds = door.ticketJobIds();
  return r;
}

TEST(Frontdoor, CleanSwarmEveryAckRunsExactlyOnce) {
  ScenOpts o;
  const ScenResult r = runScenario(o);
  ASSERT_TRUE(r.drained);
  const std::uint64_t n =
      static_cast<std::uint64_t>(o.clients) * o.submits;
  EXPECT_EQ(r.totals.submitsSent, n);
  EXPECT_EQ(r.totals.acked, n);
  EXPECT_EQ(r.totals.abandoned, 0u);
  EXPECT_EQ(r.door.accepted, n);
  EXPECT_EQ(r.door.rejected, 0u);
  EXPECT_EQ(r.door.corrupt, 0u);
  EXPECT_EQ(r.door.flushedJobs, n);
  EXPECT_EQ(r.metrics.jobsSubmitted, n);
  EXPECT_EQ(r.metrics.jobsCompleted, n);
  // Batching amortizes: far fewer flushes than submissions.
  EXPECT_LT(r.door.flushes, n / 2);
}

TEST(Frontdoor, DuplicatesAndRetriesAreExactlyOnce) {
  ScenOpts clean;
  const ScenResult base = runScenario(clean);
  ASSERT_TRUE(base.drained);

  // Same seed, same arrivals — but half the submits are sent twice by
  // the client and the links additionally duplicate 20% of packets.
  ScenOpts dup = clean;
  dup.forcedDups = 0.5;
  dup.dupRate = 0.2;
  const ScenResult faulted = runScenario(dup);
  ASSERT_TRUE(faulted.drained);

  EXPECT_GT(faulted.door.dupSilent, 0u);
  // Exactly-once, proven at three layers: identical admission digest,
  // identical job count, identical scheduler event hash. The duplicate
  // storm left no trace on what actually ran.
  EXPECT_EQ(faulted.fdDigest, base.fdDigest);
  EXPECT_EQ(faulted.metrics.jobsSubmitted, base.metrics.jobsSubmitted);
  EXPECT_EQ(faulted.metrics.scheduleHash, base.metrics.scheduleHash);
}

TEST(Frontdoor, DropsRecoverThroughRetransmits) {
  ScenOpts o;
  o.dropRate = 0.12;
  const ScenResult r = runScenario(o);
  ASSERT_TRUE(r.drained);
  EXPECT_GT(r.totals.retransmits, 0u);
  EXPECT_GT(r.totals.acked, 0u);
  // Whatever the wire did, the control plane ran exactly the accepted
  // set, once each.
  EXPECT_EQ(r.door.flushedJobs, r.door.accepted);
  EXPECT_EQ(r.metrics.jobsSubmitted, r.door.flushedJobs);
  // An accepted-but-unacked submit still runs; acks can only be lost
  // on the response path, never manufactured.
  EXPECT_LE(r.totals.acked, r.door.accepted);
}

TEST(Frontdoor, CorruptFramesNeverDecode) {
  ScenOpts o;
  o.corruptRate = 0.1;
  const ScenResult r = runScenario(o);
  ASSERT_TRUE(r.drained);
  EXPECT_GT(r.door.corrupt + r.totals.badResponses, 0u);
  // Corruption is detected (dropped + retransmitted), not absorbed.
  EXPECT_EQ(r.door.flushedJobs, r.door.accepted);
  EXPECT_EQ(r.metrics.jobsSubmitted, r.door.flushedJobs);
}

TEST(Frontdoor, AdmissionControlBouncesOverload) {
  ScenOpts o;
  o.clients = 150;
  o.submits = 2;
  o.bursts = 1;  // one dense burst to force overload
  o.maxQueue = 8;
  const ScenResult r = runScenario(o);
  ASSERT_TRUE(r.drained);
  EXPECT_GT(r.door.rejected, 0u);
  EXPECT_GT(r.totals.busyRetries, 0u);
  // Every rejection is a typed SERVER_BUSY the client saw (or will
  // retry past), and every one left a RAS record for the operator.
  EXPECT_EQ(r.rasClientRejected, r.door.rejected);
  // Backpressure bounds what the scheduler ever holds.
  EXPECT_LE(r.door.maxBatchSeen, o.maxQueue);
  EXPECT_EQ(r.door.flushedJobs, r.door.accepted);
}

TEST(Frontdoor, BatchSizeCapFlushesEarly) {
  ScenOpts o;
  o.clients = 120;
  o.submits = 2;
  o.bursts = 1;
  o.maxBatch = 16;
  const ScenResult r = runScenario(o);
  ASSERT_TRUE(r.drained);
  EXPECT_LE(r.door.maxBatchSeen, 16u);
  EXPECT_GE(r.door.flushes, (r.door.accepted + 15) / 16);
  EXPECT_EQ(r.door.flushedJobs, r.door.accepted);
}

TEST(Frontdoor, CancelUnwindsBatchedAndQueuedWork) {
  ScenOpts o;
  o.cancelRate = 1.0;  // every acked submit is followed by a cancel
  const ScenResult r = runScenario(o);
  ASSERT_TRUE(r.drained);
  // Each cancel lands in exactly one bucket.
  EXPECT_EQ(r.totals.cancelsAcked,
            r.door.cancelsBatched + r.door.cancelsQueued);
  EXPECT_EQ(r.totals.cancelsTooLate, r.door.cancelsTooLate);
  // A cancel caught pre-flush never reaches the scheduler at all.
  EXPECT_EQ(r.door.flushedJobs + r.door.cancelsBatched, r.door.accepted);
  // One caught in the queue becomes a cancelled job, not a run.
  EXPECT_EQ(r.metrics.jobsCancelled, r.door.cancelsQueued);
  EXPECT_EQ(r.metrics.jobsCompleted + r.metrics.jobsCancelled,
            r.metrics.jobsSubmitted);
}

TEST(Frontdoor, QueryReportsJobState) {
  ScenOpts o;
  o.queryRate = 1.0;
  const ScenResult r = runScenario(o);
  ASSERT_TRUE(r.drained);
  EXPECT_EQ(r.totals.queriesDone, r.totals.acked);
  EXPECT_EQ(r.door.queries, r.totals.queriesDone);
}

TEST(Frontdoor, WarmRestartLosesNoAckedSubmission) {
  ScenOpts o;
  o.clients = 80;
  o.submits = 2;
  o.crashes = 2;
  o.persist = true;
  o.checkpointEveryPumps = 1;  // write-through
  const ScenResult r = runScenario(o);
  ASSERT_TRUE(r.drained);
  EXPECT_GE(r.door.restarts, 1u);
  EXPECT_EQ(r.rasFdRestart, r.door.restarts);

  // Every ticket a client holds maps to exactly one real scheduler
  // job — nothing acknowledged fell into the outage.
  std::set<std::uint64_t> ackedTickets(r.totals.tickets.begin(),
                                       r.totals.tickets.end());
  std::set<std::uint32_t> jobIds;
  std::size_t matched = 0;
  for (const auto& [ticket, jobId] : r.ticketJobIds) {
    if (ackedTickets.count(ticket) == 0) continue;
    ++matched;
    EXPECT_NE(jobId, 0u) << "ticket " << ticket << " never reached svc";
    EXPECT_TRUE(jobIds.insert(jobId).second)
        << "ticket " << ticket << " shares job " << jobId;
  }
  EXPECT_EQ(matched, ackedTickets.size());
  EXPECT_EQ(r.metrics.jobsCompleted, r.metrics.jobsSubmitted);
}

TEST(Frontdoor, SameSeedFaultSoupIsIdentical) {
  ScenOpts o;
  o.clients = 70;
  o.dropRate = 0.05;
  o.corruptRate = 0.03;
  o.delayRate = 0.1;
  o.dupRate = 0.05;
  o.forcedDups = 0.2;
  o.cancelRate = 0.1;
  o.queryRate = 0.1;
  const ScenResult a = runScenario(o);
  const ScenResult b = runScenario(o);
  ASSERT_TRUE(a.drained);
  ASSERT_TRUE(b.drained);
  EXPECT_EQ(a.fdDigest, b.fdDigest);
  EXPECT_EQ(a.metrics.scheduleHash, b.metrics.scheduleHash);
  EXPECT_EQ(a.totals.acked, b.totals.acked);
  EXPECT_EQ(a.totals.retransmits, b.totals.retransmits);

  ScenOpts other = o;
  other.seed = 43;
  const ScenResult c = runScenario(other);
  ASSERT_TRUE(c.drained);
  EXPECT_NE(c.fdDigest, a.fdDigest);
}

// An attached-but-idle front door must not perturb the control plane:
// the scheduler's hash over a plain job stream is byte-identical with
// and without the endpoint wired up.
TEST(Frontdoor, IdleFrontDoorIsScheduleNeutral) {
  auto runStream = [](bool withDoor) {
    rt::ClusterConfig cfg;
    cfg.computeNodes = 4;
    cfg.seed = 11;
    rt::Cluster cluster(cfg);
    svc::ServiceHost host(cluster, svc::ServiceNodeConfig{});
    host.store().registerImage(fdWorkImage());

    hw::CollectiveNet fdnet(cluster.engine(), hw::CollectiveConfig{});
    std::unique_ptr<fd::FrontDoor> door;
    if (withDoor) {
      door = std::make_unique<fd::FrontDoor>(cluster.engine(), host, fdnet,
                                             fd::FrontDoorConfig{});
      door->attach();
    }

    for (int i = 0; i < 6; ++i) {
      svc::JobDesc jd;
      jd.name = "direct" + std::to_string(i);
      jd.nodes = 1;
      jd.exe = host.store().image("fdwork");
      jd.estCycles = 200'000;
      cluster.engine().scheduleAt(10'000 * (i + 1),
                                  [&host, jd] { host.submit(jd); });
    }
    host.start();
    cluster.engine().runWhile([&] { return host.drained(); },
                              500'000'000ULL);
    return host.metrics().scheduleHash;
  };
  EXPECT_EQ(runStream(false), runStream(true));
}

// ---------------------------------------------------------------------
// Slow lane: multi-seed replay under the full fault soup (ctest -C
// slow; GTEST_SKIPs without FRONTDOOR_SLOW=1).
// ---------------------------------------------------------------------

TEST(FrontdoorSlow, MultiSeedFaultSoupReplay) {
  if (std::getenv("FRONTDOOR_SLOW") == nullptr) {
    GTEST_SKIP() << "set FRONTDOOR_SLOW=1 to run";
  }
  for (const std::uint64_t seed : {9ULL, 23ULL, 71ULL}) {
    ScenOpts o;
    o.clients = 200;
    o.submits = 2;
    o.seed = seed;
    o.dropRate = 0.06;
    o.corruptRate = 0.04;
    o.delayRate = 0.1;
    o.dupRate = 0.06;
    o.forcedDups = 0.25;
    o.cancelRate = 0.1;
    o.queryRate = 0.1;
    o.crashes = 2;
    o.persist = true;
    o.checkpointEveryPumps = 1;
    const ScenResult a = runScenario(o);
    const ScenResult b = runScenario(o);
    ASSERT_TRUE(a.drained) << "seed " << seed;
    ASSERT_TRUE(b.drained) << "seed " << seed;
    EXPECT_EQ(a.fdDigest, b.fdDigest) << "seed " << seed;
    EXPECT_EQ(a.metrics.scheduleHash, b.metrics.scheduleHash)
        << "seed " << seed;
    EXPECT_EQ(a.totals.acked, b.totals.acked) << "seed " << seed;
  }
}

}  // namespace

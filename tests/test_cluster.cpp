// Integration tests: Cluster assembly — multi-node/multi-I/O-node
// topologies, pset routing of function-shipped I/O, rank wiring,
// consoles, DUAL mode, shared memory, getcwd mirroring, stat/fstat,
// file-backed mmap, and the FTQ companion benchmark.
#include <gtest/gtest.h>

#include <cstring>

#include "apps/ftq.hpp"
#include "cluster_test_util.hpp"
#include "kernel/syscalls.hpp"
#include "runtime/rt_ids.hpp"

namespace bg {
namespace {

using test::emitExit;
using test::runProgram;

std::int64_t sys(kernel::Sys s) { return static_cast<std::int64_t>(s); }

/// Emit code storing the NUL-terminated path (< 8 chars after the
/// first 8) at heapBase+256, leaving the address in r21.
void emitPath(vm::ProgramBuilder& b, const char* path) {
  b.mov(21, 10);
  b.addi(21, 21, 256);
  const std::size_t len = std::strlen(path) + 1;
  for (std::size_t i = 0; i < len; i += 8) {
    std::uint64_t w = 0;
    for (std::size_t j = 0; j < 8 && i + j < len; ++j) {
      w |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(path[i + j]))
           << (8 * j);
    }
    b.li(20, static_cast<std::int64_t>(w));
    b.store(21, 20, static_cast<std::int64_t>(i));
  }
}

TEST(Cluster, PsetRoutingSendsEachNodeToItsIoNode) {
  // 4 compute nodes, 2 I/O nodes, pset size 2: nodes 0,1 -> ION 0 and
  // nodes 2,3 -> ION 1; each rank's checkpoint lands on its own ION.
  rt::ClusterConfig cfg;
  cfg.computeNodes = 4;
  cfg.ioNodes = 2;
  cfg.computeNodesPerIoNode = 2;
  rt::Cluster cluster(cfg);
  ASSERT_TRUE(cluster.bootAll());

  vm::ProgramBuilder b("t");
  emitPath(b, "/tmp/x");
  b.mov(1, 21);
  b.li(2, static_cast<std::int64_t>(kernel::kOCreat | kernel::kOWronly));
  b.syscall(sys(kernel::Sys::kOpen));
  b.mov(16, 0);
  b.mov(1, 16);
  b.mov(2, 10);
  b.li(3, 64);
  b.syscall(sys(kernel::Sys::kWrite));
  b.mov(1, 16);
  b.syscall(sys(kernel::Sys::kClose));
  emitExit(b);

  kernel::JobSpec job;
  job.exe = kernel::ElfImage::makeExecutable("t", std::move(b).build());
  ASSERT_TRUE(cluster.loadJob(job));
  ASSERT_TRUE(cluster.run());

  EXPECT_EQ(cluster.ciod(0).proxyCount(), 2u);
  EXPECT_EQ(cluster.ciod(1).proxyCount(), 2u);
  EXPECT_EQ(cluster.ciod(0).stats().errors, 0u);
  EXPECT_EQ(cluster.ciod(1).stats().errors, 0u);
  EXPECT_TRUE(cluster.ioRootFs(0).exists("/tmp/x"));
  EXPECT_TRUE(cluster.ioRootFs(1).exists("/tmp/x"));
}

TEST(Cluster, DualModeRunsTwoProcessesTwoCoresEach) {
  rt::ClusterConfig cfg;
  rt::Cluster cluster(cfg);
  ASSERT_TRUE(cluster.bootAll());
  vm::ProgramBuilder b("t");
  b.sample(1);  // rank
  emitExit(b);
  kernel::JobSpec job;
  job.processes = 2;
  job.exe = kernel::ElfImage::makeExecutable("t", std::move(b).build());
  std::vector<std::uint64_t> s0, s1;
  cluster.attachSamples(0, 0, &s0);
  cluster.attachSamples(1, 0, &s1);
  ASSERT_TRUE(cluster.loadJob(job));
  ASSERT_TRUE(cluster.run());
  EXPECT_EQ(s0, std::vector<std::uint64_t>{0});
  EXPECT_EQ(s1, std::vector<std::uint64_t>{1});
  auto* cnk = cluster.cnkOn(0);
  for (auto& p : cnk->processes()) {
    EXPECT_EQ(cnk->coresOf(p->pid()).size(), 2u);
  }
}

TEST(Cluster, SharedMemoryIsVisibleAcrossProcesses) {
  // VN mode: rank 0 stores into the shared region (r12), rank 1 spins
  // until the value appears — same physical range, no messaging.
  rt::ClusterConfig cfg;
  rt::Cluster cluster(cfg);
  ASSERT_TRUE(cluster.bootAll());
  vm::ProgramBuilder b("t");
  const std::size_t toReader = b.emitForwardBranch(vm::Op::kBnez, 1);
  // rank 0: write the flag.
  b.compute(10'000);
  b.li(16, 0xA5A5);
  b.store(12, 16, 128);
  emitExit(b);
  b.patchHere(toReader);
  // other ranks: rank 1 polls, ranks 2/3 exit immediately.
  b.li(17, 1);
  b.sub(17, 1, 17);
  const std::size_t onlyRank1 = b.emitForwardBranch(vm::Op::kBnez, 17);
  const auto poll = b.label();
  b.load(16, 12, 128);
  b.beqz(16, poll);
  b.sample(16);
  b.patchHere(onlyRank1);
  emitExit(b);

  kernel::JobSpec job;
  job.processes = 4;
  job.sharedMemBytes = 1 << 20;
  job.exe = kernel::ElfImage::makeExecutable("t", std::move(b).build());
  std::vector<std::uint64_t> s1;
  cluster.attachSamples(1, 0, &s1);
  ASSERT_TRUE(cluster.loadJob(job));
  ASSERT_TRUE(cluster.run());
  ASSERT_EQ(s1.size(), 1u);
  EXPECT_EQ(s1[0], 0xA5A5u);
}

TEST(Cluster, GetcwdReflectsShippedChdir) {
  // chdir is function-shipped; getcwd must come back from the ioproxy's
  // mirrored state, not stale local state (paper Fig 2).
  rt::ClusterConfig cfg;
  rt::Cluster cluster(cfg);
  ASSERT_TRUE(cluster.bootAll());
  vm::ProgramBuilder b("t");
  emitPath(b, "/tmp");
  b.mov(1, 21);
  b.syscall(sys(kernel::Sys::kChdir));
  b.sample(0);
  b.mov(1, 10);
  b.addi(1, 1, 2048);
  b.li(2, 64);
  b.syscall(sys(kernel::Sys::kGetcwd));
  b.sample(0);  // strlen+1 of "/tmp" = 5
  b.load(16, 10, 2048);
  b.sample(16);  // the bytes themselves
  emitExit(b);
  kernel::JobSpec job;
  job.exe = kernel::ElfImage::makeExecutable("t", std::move(b).build());
  std::vector<std::uint64_t> s;
  cluster.attachSamples(0, 0, &s);
  ASSERT_TRUE(cluster.loadJob(job));
  ASSERT_TRUE(cluster.run());
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], 0u);
  EXPECT_EQ(s[1], 5u);
  // "/tmp\0" little-endian.
  EXPECT_EQ(s[2] & 0xFFFFFFFFFFULL, 0x00706D742FULL);
}

TEST(Cluster, StatShipsAndFillsUserStruct) {
  rt::ClusterConfig cfg;
  rt::Cluster cluster(cfg);
  ASSERT_TRUE(cluster.bootAll());
  cluster.ioRootFs(0).putFile("/tmp/st",
                              std::vector<std::byte>(123, std::byte{1}));
  vm::ProgramBuilder b("t");
  emitPath(b, "/tmp/st");
  b.mov(1, 21);
  b.mov(2, 10);
  b.addi(2, 2, 4096);
  b.syscall(sys(kernel::Sys::kStat));
  b.sample(0);
  b.load(16, 10, 4096);  // FileStat.size is the first field
  b.sample(16);
  emitExit(b);
  kernel::JobSpec job;
  job.exe = kernel::ElfImage::makeExecutable("t", std::move(b).build());
  std::vector<std::uint64_t> s;
  cluster.attachSamples(0, 0, &s);
  ASSERT_TRUE(cluster.loadJob(job));
  ASSERT_TRUE(cluster.run());
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], 0u);
  EXPECT_EQ(s[1], 123u);
}

TEST(Cluster, FileBackedMmapCopiesInEagerly) {
  // CNK §VI-A: "to mmap a file, CNK copies in the data" — one shipped
  // read at map time, contents visible immediately afterwards.
  rt::ClusterConfig cfg;
  rt::Cluster cluster(cfg);
  ASSERT_TRUE(cluster.bootAll());
  std::vector<std::byte> contents(4096);
  const std::uint64_t magic = 0x4D4D41502D464C45ULL;
  std::memcpy(contents.data(), &magic, 8);
  cluster.ioRootFs(0).putFile("/tmp/m", contents);

  vm::ProgramBuilder b("t");
  emitPath(b, "/tmp/m");
  b.mov(1, 21);
  b.li(2, 0);
  b.syscall(sys(kernel::Sys::kOpen));
  b.mov(16, 0);  // fd
  // mmap(addr=0, len=4096, prot=R, flags=0 (file), fd, off=0)
  b.li(1, 0);
  b.li(2, 4096);
  b.li(3, static_cast<std::int64_t>(kernel::kProtRead));
  b.li(4, 0);
  b.mov(5, 16);
  b.syscall(sys(kernel::Sys::kMmap));
  b.mov(17, 0);
  b.sample(17);          // mapped address
  b.load(18, 17, 0);
  b.sample(18);          // magic, already present (no faulting later)
  emitExit(b);
  kernel::JobSpec job;
  job.exe = kernel::ElfImage::makeExecutable("t", std::move(b).build());
  std::vector<std::uint64_t> s;
  cluster.attachSamples(0, 0, &s);
  ASSERT_TRUE(cluster.loadJob(job));
  ASSERT_TRUE(cluster.run());
  ASSERT_EQ(s.size(), 2u);
  EXPECT_GT(static_cast<std::int64_t>(s[0]), 0);
  EXPECT_EQ(s[1], magic);
}

TEST(Cluster, GetMemRegionsCountsStaticMap) {
  vm::ProgramBuilder b("t");
  b.syscall(sys(kernel::Sys::kGetMemRegions));
  b.sample(0);
  emitExit(b);
  kernel::JobSpec tmpl;
  tmpl.sharedMemBytes = 1 << 20;
  auto r = runProgram({}, std::move(b).build(), nullptr, tmpl);
  ASSERT_TRUE(r.completed);
  // text, data, heapStack, shared.
  EXPECT_EQ(r.samples[0], 4u);
}

TEST(Cluster, ConsolesAreSeparatePerNode) {
  rt::ClusterConfig cfg;
  cfg.computeNodes = 2;
  rt::Cluster cluster(cfg);
  ASSERT_TRUE(cluster.bootAll());
  vm::ProgramBuilder b("t");
  // write(1, &rank_as_char, 1): store '0'+rank at heap.
  b.addi(16, 1, '0');
  b.mov(17, 10);
  b.store(17, 16, 0);
  b.li(1, 1);
  b.mov(2, 10);
  b.li(3, 1);
  b.syscall(sys(kernel::Sys::kWrite));
  emitExit(b);
  kernel::JobSpec job;
  job.exe = kernel::ElfImage::makeExecutable("t", std::move(b).build());
  ASSERT_TRUE(cluster.loadJob(job));
  ASSERT_TRUE(cluster.run());
  EXPECT_EQ(cluster.consoleOf(0), "0");
  EXPECT_EQ(cluster.consoleOf(1), "1");
}

TEST(FtqApp, WindowsCountUnitsAndNoiseShowsAsDeficit) {
  auto run = [&](rt::KernelKind kind) {
    rt::ClusterConfig cfg;
    cfg.kernel = kind;
    rt::Cluster cluster(cfg);
    EXPECT_TRUE(cluster.bootAll());
    apps::FtqParams fp;
    fp.windows = 200;
    kernel::JobSpec job;
    job.exe = apps::ftqImage(fp);
    std::vector<std::uint64_t> s;
    cluster.attachSamples(0, 0, &s);
    EXPECT_TRUE(cluster.loadJob(job));
    EXPECT_TRUE(cluster.run());
    return s;
  };
  const auto cnk = run(rt::KernelKind::kCnk);
  const auto fwk = run(rt::KernelKind::kFwk);
  ASSERT_EQ(cnk.size(), 200u);
  ASSERT_EQ(fwk.size(), 200u);
  // CNK: every window completes the same number of units.
  const auto [cmn, cmx] = std::minmax_element(cnk.begin(), cnk.end());
  EXPECT_EQ(*cmn, *cmx);
  // FWK: some windows lose units to noise.
  const auto [fmn, fmx] = std::minmax_element(fwk.begin(), fwk.end());
  EXPECT_LT(*fmn, *fmx);
  EXPECT_LE(*fmn, *cmn);
}

}  // namespace
}  // namespace bg

// Application checkpoint/restart trajectory: what a ckpt_save costs
// and what a restore buys.
//
// Phase 1 runs an app that checkpoints K times mid-computation and
// measures per-commit latency (kCkptBegin -> kCkptCommit in the RAS
// stream: rendezvous + image build + two-phase ship to the I/O node)
// plus the committed image size. Each round dirties one more sparse
// granule of heap, so successive images grow and the latency column
// is a real distribution (p50 < p99), not K copies of one number.
//
// Phase 2 measures the requeue economics the checkpoint-then-preempt
// scheduler banks on: the same two-phase app is re-run from scratch
// and then restored from its committed image, and the difference is
// the compute the checkpoint saved.
//
// Both phases run twice and must produce bit-identical digests —
// checkpointing is part of the deterministic machine, not an observer.
// --quick shrinks the workload for CI; --json emits everything.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cnk/cnk_kernel.hpp"
#include "kernel/syscalls.hpp"
#include "runtime/app.hpp"
#include "sim/hash.hpp"
#include "vm/builder.hpp"

namespace {
using namespace bg;

std::int64_t sysNum(kernel::Sys s) { return static_cast<std::int64_t>(s); }

/// K rounds of (compute, dirty a fresh heap granule, ckpt_save): the
/// commit-latency workload. The image serializer elides all-zero 64KB
/// granules, so stamping one new granule per round grows the shipped
/// image round over round — without that, every commit ships an
/// identical image and the "distribution" collapses to p50 == p99.
vm::Program ckptLoopApp(std::int64_t rounds, std::uint64_t computeCycles) {
  constexpr std::int64_t kGranule = 64 << 10;  // ckpt::kChunkBytes
  vm::ProgramBuilder b("ckpt-loop");
  // Grow brk so the granule cursor stays inside the valid heap (the
  // main-thread guard follows brk; stores above it would DAC-trap).
  b.li(1, 0);
  b.syscall(sysNum(kernel::Sys::kBrk));
  b.mov(22, 0);  // r22 = granule cursor (starts at the old brk)
  b.mov(1, 0);
  b.addi(1, 1, (rounds + 1) * kGranule);
  b.syscall(sysNum(kernel::Sys::kBrk));
  b.li(23, 0x5a5a5a5a);  // non-zero stamp: keeps granules un-elidable
  const auto top = b.loopBegin(21, rounds);
  b.compute(computeCycles);
  b.store(22, 23, 0);
  b.addi(22, 22, kGranule);
  b.syscall(sysNum(kernel::Sys::kCkptSave));
  b.loopEnd(21, top);
  b.li(vm::kArg0, 0);
  b.syscall(sysNum(kernel::Sys::kExit));
  return std::move(b).build();
}

/// Heavy phase 1, checkpoint, light phase 2: the resume-economics
/// workload (restore skips all of phase 1).
vm::Program twoPhaseApp(std::int64_t reps1, std::int64_t reps2,
                        std::uint64_t computeCycles) {
  vm::ProgramBuilder b("ckpt-two-phase");
  auto top = b.loopBegin(21, reps1);
  b.compute(computeCycles);
  b.loopEnd(21, top);
  b.syscall(sysNum(kernel::Sys::kCkptSave));
  top = b.loopBegin(21, reps2);
  b.compute(computeCycles);
  b.loopEnd(21, top);
  b.li(vm::kArg0, 0);
  b.syscall(sysNum(kernel::Sys::kExit));
  return std::move(b).build();
}

bool runJob(rt::Cluster& cluster, vm::Program program, bool restore) {
  cluster.cnkOn(0)->unloadJob();
  kernel::JobSpec job;
  job.exe = kernel::ElfImage::makeExecutable("bench", std::move(program));
  job.restore = restore;
  if (!cluster.loadJob(job)) return false;
  return cluster.run(2'000'000'000ULL);
}

struct CommitPhase {
  bool ok = false;
  std::vector<std::uint64_t> latencies;  // kCkptBegin -> kCkptCommit
  std::uint64_t imageBytes = 0;
  std::uint64_t commits = 0;
  std::uint64_t failures = 0;
};

CommitPhase runCommitPhase(int rounds, std::uint64_t computeCycles) {
  CommitPhase out;
  rt::ClusterConfig cfg;
  rt::Cluster cluster(cfg);
  if (!cluster.bootAll(600'000'000)) return out;
  if (!runJob(cluster, ckptLoopApp(rounds, computeCycles), false)) return out;
  const cnk::CnkKernel* k = cluster.cnkOn(0);
  sim::Cycle begin = 0;
  bool open = false;
  for (const auto& e : k->rasLog()) {
    if (e.code == kernel::RasEvent::Code::kCkptBegin) {
      begin = e.cycle;
      open = true;
    } else if (e.code == kernel::RasEvent::Code::kCkptCommit && open) {
      out.latencies.push_back(e.cycle - begin);
      open = false;
    }
  }
  out.imageBytes = k->lastCkptBytes();
  out.commits = k->ckptCommits();
  out.failures = k->ckptFailures();
  out.ok = out.commits == static_cast<std::uint64_t>(rounds) &&
           out.latencies.size() == out.commits;
  return out;
}

struct ResumePhase {
  bool ok = false;
  sim::Cycle scratchCycles = 0;  // reload from scratch, full re-run
  sim::Cycle resumedCycles = 0;  // reload in restore mode
  std::uint64_t restores = 0;
};

ResumePhase runResumePhase(std::int64_t reps1, std::int64_t reps2,
                           std::uint64_t computeCycles) {
  ResumePhase out;
  rt::ClusterConfig cfg;
  rt::Cluster cluster(cfg);
  if (!cluster.bootAll(600'000'000)) return out;
  // Seed run: commits the image at the phase boundary.
  if (!runJob(cluster, twoPhaseApp(reps1, reps2, computeCycles), false)) {
    return out;
  }
  // Scratch requeue: the whole job again.
  sim::Cycle t0 = cluster.engine().now();
  if (!runJob(cluster, twoPhaseApp(reps1, reps2, computeCycles), false)) {
    return out;
  }
  out.scratchCycles = cluster.engine().now() - t0;
  // Checkpointed requeue: restore skips phase 1.
  t0 = cluster.engine().now();
  if (!runJob(cluster, twoPhaseApp(reps1, reps2, computeCycles), true)) {
    return out;
  }
  out.resumedCycles = cluster.engine().now() - t0;
  out.restores = cluster.cnkOn(0)->ckptRestores();
  out.ok = out.restores >= 1 && out.resumedCycles < out.scratchCycles;
  return out;
}

std::uint64_t digestOf(const CommitPhase& c, const ResumePhase& r) {
  sim::Fnv1a h;
  for (std::uint64_t v : c.latencies) h.mix(v);
  h.mix(c.imageBytes);
  h.mix(c.commits);
  h.mix(c.failures);
  h.mix(r.scratchCycles);
  h.mix(r.resumedCycles);
  h.mix(r.restores);
  return h.digest();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const int rounds = quick ? 16 : 40;
  const std::uint64_t computeCycles = 20'000;
  const std::int64_t reps1 = quick ? 120 : 400;
  const std::int64_t reps2 = quick ? 30 : 100;

  std::printf("bench_ckpt: %d commits, resume economics %lld+%lld x %llu "
              "cycles%s\n",
              rounds, static_cast<long long>(reps1),
              static_cast<long long>(reps2),
              static_cast<unsigned long long>(computeCycles),
              quick ? " (quick)" : "");
  bg::bench::printRule();

  const CommitPhase commit = runCommitPhase(rounds, computeCycles);
  const ResumePhase resume = runResumePhase(reps1, reps2, computeCycles);
  if (!commit.ok || !resume.ok) {
    std::fprintf(stderr, "bench_ckpt: phase failed (commit ok=%d resume "
                 "ok=%d)\n", commit.ok ? 1 : 0, resume.ok ? 1 : 0);
    return 1;
  }

  const bg::bench::Stats st = bg::bench::computeStats(commit.latencies);
  const std::uint64_t p50 = bg::bench::percentile(commit.latencies, 50);
  const std::uint64_t p99 = bg::bench::percentile(commit.latencies, 99);
  std::printf("commit latency (cycles): mean %.0f  p50 %llu  p99 %llu  "
              "max %llu  (n=%llu)\n",
              st.mean, static_cast<unsigned long long>(p50),
              static_cast<unsigned long long>(p99),
              static_cast<unsigned long long>(st.max),
              static_cast<unsigned long long>(st.n));
  std::printf("image size (final commit): %llu bytes\n",
              static_cast<unsigned long long>(commit.imageBytes));
  const std::uint64_t saved = resume.scratchCycles - resume.resumedCycles;
  std::printf("requeue: scratch %llu cycles, resumed %llu cycles -> "
              "%llu saved (%.1f%%)\n",
              static_cast<unsigned long long>(resume.scratchCycles),
              static_cast<unsigned long long>(resume.resumedCycles),
              static_cast<unsigned long long>(saved),
              bg::bench::pct(saved, resume.scratchCycles));

  // Determinism witness: the whole trajectory replayed from scratch.
  const CommitPhase commit2 = runCommitPhase(rounds, computeCycles);
  const ResumePhase resume2 = runResumePhase(reps1, reps2, computeCycles);
  const std::uint64_t d1 = digestOf(commit, resume);
  const std::uint64_t d2 = digestOf(commit2, resume2);
  std::printf("determinism: run1 %016llx run2 %016llx -> %s\n",
              static_cast<unsigned long long>(d1),
              static_cast<unsigned long long>(d2),
              d1 == d2 ? "IDENTICAL" : "MISMATCH");
  if (d1 != d2) return 1;

  bg::sim::Json j = bg::sim::Json::object();
  j.set("quick", static_cast<std::uint64_t>(quick ? 1 : 0));
  bg::sim::Json cj = bg::sim::Json::object();
  cj.set("stats", bg::bench::statsToJson(st));
  cj.set("p50", p50);
  cj.set("p99", p99);
  cj.set("image_bytes", commit.imageBytes);
  cj.set("commits", commit.commits);
  cj.set("failures", commit.failures);
  j.set("commit", std::move(cj));
  bg::sim::Json rj = bg::sim::Json::object();
  rj.set("scratch_cycles", resume.scratchCycles);
  rj.set("resumed_cycles", resume.resumedCycles);
  rj.set("saved_cycles", saved);
  rj.set("saved_pct", bg::bench::pct(saved, resume.scratchCycles));
  rj.set("restores", resume.restores);
  j.set("resume", std::move(rj));
  char digest[32];
  std::snprintf(digest, sizeof(digest), "%016llx",
                static_cast<unsigned long long>(d1));
  j.set("digest", digest);
  if (!bg::bench::maybeWriteJson(bg::bench::jsonPathArg(argc, argv), j)) {
    return 1;
  }
  return 0;
}

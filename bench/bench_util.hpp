// Shared helpers for the benchmark harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <vector>

#include "sim/json.hpp"
#include "sim/types.hpp"

namespace bg::bench {

struct Stats {
  std::uint64_t n = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  double mean = 0;
  double stddev = 0;
};

inline Stats computeStats(const std::vector<std::uint64_t>& v) {
  Stats s;
  if (v.empty()) return s;
  s.n = v.size();
  s.min = *std::min_element(v.begin(), v.end());
  s.max = *std::max_element(v.begin(), v.end());
  s.mean = std::accumulate(v.begin(), v.end(), 0.0) /
           static_cast<double>(v.size());
  double var = 0;
  for (std::uint64_t x : v) {
    const double d = static_cast<double>(x) - s.mean;
    var += d * d;
  }
  s.stddev = std::sqrt(var / static_cast<double>(v.size()));
  return s;
}

inline double pct(std::uint64_t delta, std::uint64_t base) {
  return 100.0 * static_cast<double>(delta) / static_cast<double>(base);
}

/// Nearest-rank percentile (q in [0, 100]) of an unsorted sample.
/// Copies + sorts; fine at bench scale. Returns 0 for an empty sample.
inline std::uint64_t percentile(std::vector<std::uint64_t> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const double rank = q / 100.0 * static_cast<double>(v.size());
  std::size_t idx = rank <= 1.0 ? 0 : static_cast<std::size_t>(rank + 0.5) - 1;
  if (idx >= v.size()) idx = v.size() - 1;
  return v[idx];
}

inline void printRule() {
  std::printf("--------------------------------------------------------------------------\n");
}

inline sim::Json statsToJson(const Stats& s) {
  sim::Json j = sim::Json::object();
  j.set("n", s.n);
  j.set("min", s.min);
  j.set("max", s.max);
  j.set("mean", s.mean);
  j.set("stddev", s.stddev);
  if (s.min > 0) j.set("spread_pct", pct(s.max - s.min, s.min));
  return j;
}

/// Returns the path following a `--json` flag, or nullptr.
inline const char* jsonPathArg(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) return argv[i + 1];
  }
  return nullptr;
}

/// Writes `j` to `path` (when non-null) and reports on stdout/stderr.
/// Returns false only on a write failure.
inline bool maybeWriteJson(const char* path, const sim::Json& j) {
  if (path == nullptr) return true;
  if (!j.writeFile(path)) {
    std::fprintf(stderr, "failed to write %s\n", path);
    return false;
  }
  std::printf("wrote %s\n", path);
  return true;
}

}  // namespace bg::bench

// Shared helpers for the benchmark harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <numeric>
#include <vector>

#include "sim/types.hpp"

namespace bg::bench {

struct Stats {
  std::uint64_t n = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  double mean = 0;
  double stddev = 0;
};

inline Stats computeStats(const std::vector<std::uint64_t>& v) {
  Stats s;
  if (v.empty()) return s;
  s.n = v.size();
  s.min = *std::min_element(v.begin(), v.end());
  s.max = *std::max_element(v.begin(), v.end());
  s.mean = std::accumulate(v.begin(), v.end(), 0.0) /
           static_cast<double>(v.size());
  double var = 0;
  for (std::uint64_t x : v) {
    const double d = static_cast<double>(x) - s.mean;
    var += d * d;
  }
  s.stddev = std::sqrt(var / static_cast<double>(v.size()));
  return s;
}

inline double pct(std::uint64_t delta, std::uint64_t base) {
  return 100.0 * static_cast<double>(delta) / static_cast<double>(base);
}

inline void printRule() {
  std::printf("--------------------------------------------------------------------------\n");
}

}  // namespace bg::bench

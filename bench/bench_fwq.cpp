// Regenerates paper Figs 5, 6, 7: the FWQ noise benchmark on Linux
// (FWK) and on CNK, per core, plus a noise-source ablation the paper's
// design discussion implies (tick / daemons / demand paging).
//
// Output: per-core min/max/mean/stddev tables matching the figures'
// content (the paper plots all 12,000 per-sample values; pass --dump
// to write fwq_<kernel>_core<i>.csv next to the binary for plotting).
//
// Paper reference points (658,958-cycle ideal sample):
//   Linux: max-min = 38,076 (core0), 10,194 (core1), 42,000 (core2),
//          36,470 (core3) — >5% on cores 0, 2, 3.
//   CNK:   maximum variation < 0.006%.
#include <cstring>
#include <fstream>
#include <string>

#include "apps/fwq.hpp"
#include "bench_util.hpp"
#include "runtime/app.hpp"

namespace {

using namespace bg;

struct FwqResult {
  std::vector<std::vector<std::uint64_t>> perCore;
};

FwqResult runFwq(rt::KernelKind kind, int samples, bool tick, bool daemons,
                 bool demandPaging) {
  rt::ClusterConfig cfg;
  cfg.kernel = kind;
  cfg.fwk.enableTick = tick;
  cfg.fwk.enableDaemons = daemons;
  cfg.fwk.demandPaging = demandPaging;
  rt::Cluster cluster(cfg);
  if (!cluster.bootAll(100'000'000)) {
    std::fprintf(stderr, "boot failed\n");
    return {};
  }
  apps::FwqParams fp;
  fp.samples = samples;
  kernel::JobSpec job;
  job.exe = apps::fwqImage(fp);

  FwqResult res;
  res.perCore.resize(4);
  for (int i = 0; i < 4; ++i) cluster.attachSamples(0, i, &res.perCore[i]);
  if (!cluster.loadJob(job) || !cluster.run(4'000'000'000ULL)) {
    std::fprintf(stderr, "run failed\n");
  }
  return res;
}

void printTable(const char* title, const FwqResult& r) {
  std::printf("\n%s\n", title);
  bg::bench::printRule();
  std::printf("%-6s %12s %12s %12s %12s %10s\n", "core", "min", "max",
              "mean", "stddev", "spread%");
  for (std::size_t i = 0; i < r.perCore.size(); ++i) {
    const auto s = bg::bench::computeStats(r.perCore[i]);
    if (s.n == 0) continue;
    std::printf("%-6zu %12llu %12llu %12.0f %12.1f %10.4f\n", i,
                static_cast<unsigned long long>(s.min),
                static_cast<unsigned long long>(s.max), s.mean, s.stddev,
                bg::bench::pct(s.max - s.min, s.min));
  }
}

sim::Json resultToJson(const FwqResult& r) {
  sim::Json cores = sim::Json::array();
  for (const auto& samples : r.perCore) {
    cores.push(bg::bench::statsToJson(bg::bench::computeStats(samples)));
  }
  return cores;
}

void dumpCsv(const char* kernelName, const FwqResult& r) {
  for (std::size_t i = 0; i < r.perCore.size(); ++i) {
    std::ofstream out("fwq_" + std::string(kernelName) + "_core" +
                      std::to_string(i) + ".csv");
    out << "iteration,cycles\n";
    for (std::size_t k = 0; k < r.perCore[i].size(); ++k) {
      out << k << "," << r.perCore[i][k] << "\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  int samples = 12000;
  bool dump = false;
  bool ablate = false;
  const char* jsonPath = bg::bench::jsonPathArg(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dump") == 0) dump = true;
    if (std::strcmp(argv[i], "--ablate") == 0) ablate = true;
    if (std::strcmp(argv[i], "--quick") == 0) samples = 1500;
  }

  std::printf("FWQ noise benchmark (paper Figs 5-7)\n");
  std::printf("samples=%d, ideal sample ~ 658.9K cycles (~0.775 ms)\n",
              samples);

  const FwqResult linux = runFwq(rt::KernelKind::kFwk, samples, true, true,
                                 true);
  printTable("Fig 5: FWQ on Linux (FWK baseline), per core", linux);
  if (dump) dumpCsv("linux", linux);

  const FwqResult cnk =
      runFwq(rt::KernelKind::kCnk, samples, true, true, true);
  printTable("Figs 6/7: FWQ on CNK, per core", cnk);
  if (dump) dumpCsv("cnk", cnk);

  if (ablate) {
    printTable("Ablation: FWK without timer tick",
               runFwq(rt::KernelKind::kFwk, samples, false, true, true));
    printTable("Ablation: FWK without daemons",
               runFwq(rt::KernelKind::kFwk, samples, true, false, true));
    printTable("Ablation: FWK prefaulted (no demand paging)",
               runFwq(rt::KernelKind::kFwk, samples, true, true, false));
    printTable("Ablation: FWK with no noise sources at all",
               runFwq(rt::KernelKind::kFwk, samples, false, false, false));
  }

  std::printf("\npaper: Linux spreads >5%% on cores 0/2/3, ~1.5%% on core 1;"
              " CNK <0.006%%\n");

  if (jsonPath != nullptr) {
    sim::Json j = sim::Json::object();
    j.set("bench", "fwq");
    j.set("samples", static_cast<std::int64_t>(samples));
    j.set("linux_per_core", resultToJson(linux));
    j.set("cnk_per_core", resultToJson(cnk));
    if (!bg::bench::maybeWriteJson(jsonPath, j)) return 1;
  }
  return 0;
}

// Front-door submission benchmark: a deterministic swarm of 1000+
// concurrent clients drives the versioned RPC protocol (SUBMIT /
// CANCEL / QUERY / STATS) at the service node's front door over a
// faultable collective link. The front door batches accepted submits
// into the scheduler, bounces overload with SERVER_BUSY + retry-after,
// and dedups retries/duplicates through per-client replay caches.
// Reports submits/s, ack-latency percentiles (p50/p99), rejection
// rate, and a determinism hash over the front door's admission digest
// plus the scheduler's schedule hash; every invocation runs the swarm
// twice and fails on a hash mismatch. With --crashes N the control
// plane fail-stops mid-swarm and the in-flight table recovers from
// persistent memory (no acknowledged submission may be lost).
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.hpp"
#include "frontdoor/frontdoor.hpp"
#include "frontdoor/swarm.hpp"
#include "runtime/app.hpp"
#include "svc/failover.hpp"
#include "vm/builder.hpp"

namespace {

using namespace bg;

struct FdParams {
  int clients = 1200;
  int submits = 2;  // per client
  std::uint64_t seed = 42;
  std::uint32_t bursts = 4;
  int nodes = 8;
  int fwkNodes = 2;
  std::size_t maxQueue = 512;
  // Link fault rates on the front-door net (client uplinks + server).
  double dropRate = 0;
  double corruptRate = 0;
  double delayRate = 0;
  double dupRate = 0;
  // Client-injected behavior.
  double forcedDups = 0;  // fraction of submits sent twice
  double cancelRate = 0;
  double queryRate = 0;
  // Control-plane fail-stops.
  int crashes = 0;
  sim::Cycle restartDelay = 250'000;
};

struct FdResult {
  bool drained = false;
  fd::FrontDoorStats door;
  fd::Swarm::Totals swarm;
  svc::SvcMetrics metrics;
  std::uint64_t fdDigest = 0;
  std::uint64_t determinismHash = 0;
  std::uint64_t faultDraws = 0;
  hw::LinkFaultStats link;
};

FdResult runSwarm(const FdParams& p) {
  rt::ClusterConfig cfg;
  cfg.computeNodes = p.nodes;
  cfg.seed = p.seed;
  cfg.nodeKernels.assign(static_cast<std::size_t>(p.nodes),
                         rt::KernelKind::kCnk);
  for (int n = p.nodes - p.fwkNodes; n < p.nodes; ++n) {
    cfg.nodeKernels[static_cast<std::size_t>(n)] = rt::KernelKind::kFwk;
  }
  rt::Cluster cluster(cfg);

  svc::ServiceNodeConfig scfg;
  // Write-through checkpointing only matters when the control plane
  // can actually crash; otherwise skip the per-accept save cost.
  scfg.checkpointEveryPumps = p.crashes > 0 ? 1 : 0;
  svc::ServiceHost host(cluster, scfg);

  // The one executable every swarm submit references, standing in for
  // a shared-filesystem binary: ~290K cycles of compute.
  {
    vm::ProgramBuilder b("fdwork");
    const auto top = b.loopBegin(16, 24);
    b.compute(12'000);
    b.loopEnd(16, top);
    b.halt(0);
    host.store().registerImage(
        kernel::ElfImage::makeExecutable("fdwork", std::move(b).build()));
  }

  // The front-door net is its own collective tree (submission traffic
  // does not contend with the compute-side I/O path), with one
  // faultable uplink per client.
  hw::CollectiveNet fdnet(cluster.engine(), hw::CollectiveConfig{});
  hw::LinkFaultModel faults(p.seed, "fd.link");
  hw::LinkFaultRates rates;
  rates.dropRate = p.dropRate;
  rates.corruptRate = p.corruptRate;
  rates.delayRate = p.delayRate;
  rates.duplicateRate = p.dupRate;
  faults.setDefaultRates(rates);
  fdnet.setFaultModel(&faults);

  fd::FrontDoorConfig fcfg;
  fcfg.netId = 0;
  fcfg.maxQueueDepth = p.maxQueue;
  fcfg.persist = p.crashes > 0;
  fd::FrontDoor door(cluster.engine(), host, fdnet, fcfg);
  door.attach();

  fd::SwarmParams sp;
  sp.clients = static_cast<std::uint32_t>(p.clients);
  sp.submitsPerClient = static_cast<std::uint32_t>(p.submits);
  sp.seed = p.seed;
  sp.serverNetId = 0;
  sp.bursts = p.bursts;
  sp.forcedDupRate = p.forcedDups;
  sp.cancelRate = p.cancelRate;
  sp.queryRate = p.queryRate;
  // A burst of this size genuinely overloads 8 nodes; give clients
  // enough linear-backoff budget to ride the backlog out rather than
  // abandon (the rejection-rate metric still shows the backpressure).
  sp.client.maxBusyRetries = 24;
  fd::Swarm swarm(cluster.engine(), fdnet, sp);

  // Seeded control-plane fail-stops inside the swarm window.
  sim::Rng crng(p.seed, "fd.crash");
  for (int c = 0; c < p.crashes; ++c) {
    const sim::Cycle at = 200'000 + crng.nextBelow(swarm.horizonCycles());
    host.scheduleCrashRestart(at, p.restartDelay);
  }

  host.start();
  swarm.start();

  FdResult r;
  r.drained = cluster.engine().runWhile(
      [&] {
        return swarm.quiescent() && door.batchedCount() == 0 &&
               host.drained();
      },
      4'000'000'000ULL);
  r.door = door.stats();
  r.swarm = swarm.totals();
  r.metrics = host.metrics();
  r.fdDigest = door.digest();
  r.faultDraws = faults.rngDraws();
  r.link = faults.stats();
  sim::Fnv1a h;
  h.mix(r.fdDigest);
  h.mix(r.metrics.scheduleHash);
  r.determinismHash = h.digest();
  return r;
}

void printResult(const char* title, const FdParams& p, const FdResult& r) {
  const fd::FrontDoorStats& d = r.door;
  const fd::Swarm::Totals& t = r.swarm;
  const double subsPerSec =
      r.metrics.elapsedSeconds > 0
          ? static_cast<double>(t.acked) / r.metrics.elapsedSeconds
          : 0;
  std::printf("\n%s\n", title);
  bg::bench::printRule();
  std::printf("clients: %d x %d submits; sent %llu, acked %llu, "
              "busy-retries %llu, abandoned %llu (busy %llu)\n",
              p.clients, p.submits,
              static_cast<unsigned long long>(t.submitsSent),
              static_cast<unsigned long long>(t.acked),
              static_cast<unsigned long long>(t.busyRetries),
              static_cast<unsigned long long>(t.abandoned),
              static_cast<unsigned long long>(t.busyAbandoned));
  std::printf("throughput: %.1f acked submits/sec over %.3f simulated sec\n",
              subsPerSec, r.metrics.elapsedSeconds);
  std::printf("ack latency: p50 %llu, p99 %llu, max %llu cycles "
              "(%zu samples)\n",
              static_cast<unsigned long long>(
                  bench::percentile(t.latencies, 50)),
              static_cast<unsigned long long>(
                  bench::percentile(t.latencies, 99)),
              static_cast<unsigned long long>(
                  bench::percentile(t.latencies, 100)),
              t.latencies.size());
  std::printf("admission: %llu accepted, %llu rejected busy (%.2f%%), "
              "max batch %llu, %llu flushes -> %llu jobs\n",
              static_cast<unsigned long long>(d.accepted),
              static_cast<unsigned long long>(d.rejected),
              d.accepted + d.rejected > 0
                  ? bench::pct(d.rejected, d.accepted + d.rejected)
                  : 0.0,
              static_cast<unsigned long long>(d.maxBatchSeen),
              static_cast<unsigned long long>(d.flushes),
              static_cast<unsigned long long>(d.flushedJobs));
  std::printf("exactly-once: %llu replays, %llu silent dups, "
              "%llu stale drops, %llu corrupt frames, "
              "%llu dropped while down\n",
              static_cast<unsigned long long>(d.replays),
              static_cast<unsigned long long>(d.dupSilent),
              static_cast<unsigned long long>(d.staleDrops),
              static_cast<unsigned long long>(d.corrupt),
              static_cast<unsigned long long>(d.droppedWhileDown));
  std::printf("cancels: %llu batched, %llu queued, %llu too late; "
              "queries %llu\n",
              static_cast<unsigned long long>(d.cancelsBatched),
              static_cast<unsigned long long>(d.cancelsQueued),
              static_cast<unsigned long long>(d.cancelsTooLate),
              static_cast<unsigned long long>(d.queries));
  std::printf("svc: %llu submitted, %llu completed, %llu cancelled, "
              "%llu failed; %llu crashes, %llu restarts, "
              "%llu resubmitted after restart\n",
              static_cast<unsigned long long>(r.metrics.jobsSubmitted),
              static_cast<unsigned long long>(r.metrics.jobsCompleted),
              static_cast<unsigned long long>(r.metrics.jobsCancelled),
              static_cast<unsigned long long>(r.metrics.jobsFailed),
              static_cast<unsigned long long>(r.metrics.serviceCrashes),
              static_cast<unsigned long long>(d.restarts),
              static_cast<unsigned long long>(d.resubmitted));
  std::printf("link faults: %llu dropped, %llu corrupted, %llu delayed, "
              "%llu duplicated (%llu rng draws)\n",
              static_cast<unsigned long long>(r.link.dropped),
              static_cast<unsigned long long>(r.link.corrupted),
              static_cast<unsigned long long>(r.link.delayed),
              static_cast<unsigned long long>(r.link.duplicated),
              static_cast<unsigned long long>(r.faultDraws));
  std::printf("determinism hash: %016llx (fd digest %016llx, "
              "schedule %016llx)\n",
              static_cast<unsigned long long>(r.determinismHash),
              static_cast<unsigned long long>(r.fdDigest),
              static_cast<unsigned long long>(r.metrics.scheduleHash));
}

/// Crash-free bookkeeping identities; with crashes, resubmission can
/// legitimately flush a ticket twice, so they only hold at zero.
bool checkInvariants(const FdParams& p, const FdResult& r) {
  if (p.crashes > 0) return true;
  bool ok = true;
  if (r.door.accepted != r.door.flushedJobs + r.door.cancelsBatched) {
    std::fprintf(stderr,
                 "invariant failed: accepted %llu != flushed %llu + "
                 "cancelled-in-batch %llu\n",
                 static_cast<unsigned long long>(r.door.accepted),
                 static_cast<unsigned long long>(r.door.flushedJobs),
                 static_cast<unsigned long long>(r.door.cancelsBatched));
    ok = false;
  }
  if (r.metrics.jobsSubmitted != r.door.flushedJobs) {
    std::fprintf(stderr,
                 "invariant failed: svc submitted %llu != flushed %llu\n",
                 static_cast<unsigned long long>(r.metrics.jobsSubmitted),
                 static_cast<unsigned long long>(r.door.flushedJobs));
    ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  FdParams p;
  std::string jsonPath;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      p.clients = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--submits") == 0 && i + 1 < argc) {
      p.submits = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      p.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--bursts") == 0 && i + 1 < argc) {
      p.bursts = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--max-queue") == 0 && i + 1 < argc) {
      p.maxQueue = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--drop-rate") == 0 && i + 1 < argc) {
      p.dropRate = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--corrupt-rate") == 0 && i + 1 < argc) {
      p.corruptRate = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--delay-rate") == 0 && i + 1 < argc) {
      p.delayRate = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--dup-rate") == 0 && i + 1 < argc) {
      p.dupRate = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--forced-dups") == 0 && i + 1 < argc) {
      p.forcedDups = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--cancel-rate") == 0 && i + 1 < argc) {
      p.cancelRate = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--query-rate") == 0 && i + 1 < argc) {
      p.queryRate = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--crashes") == 0 && i + 1 < argc) {
      p.crashes = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--restart-delay") == 0 && i + 1 < argc) {
      p.restartDelay = static_cast<sim::Cycle>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      p.clients = 1000;
      p.submits = 1;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      jsonPath = argv[++i];
    }
  }

  std::printf("front-door benchmark: %d clients x %d submits, %u bursts, "
              "max queue %zu, seed=%llu, faults drop=%.3f corrupt=%.3f "
              "delay=%.3f dup=%.3f forced-dups=%.3f, %d svc crashes\n",
              p.clients, p.submits, p.bursts, p.maxQueue,
              static_cast<unsigned long long>(p.seed), p.dropRate,
              p.corruptRate, p.delayRate, p.dupRate, p.forcedDups,
              p.crashes);

  const FdResult run1 = runSwarm(p);
  if (!run1.drained) {
    std::fprintf(stderr, "swarm did not drain\n");
    return 1;
  }
  printResult("run 1", p, run1);
  const bool invariantsOk = checkInvariants(p, run1);

  // Determinism witness: replay the identical swarm.
  const FdResult run2 = runSwarm(p);
  const bool match = run2.determinismHash == run1.determinismHash;
  std::printf("\nreplay determinism hash: %016llx (%s)\n",
              static_cast<unsigned long long>(run2.determinismHash),
              match ? "MATCH" : "MISMATCH");

  if (!jsonPath.empty()) {
    const fd::Swarm::Totals& t = run1.swarm;
    sim::Json j = sim::Json::object();
    j.set("bench", "frontdoor");
    j.set("clients", static_cast<std::int64_t>(p.clients));
    j.set("submits_per_client", static_cast<std::int64_t>(p.submits));
    j.set("seed", p.seed);
    j.set("bursts", static_cast<std::int64_t>(p.bursts));
    j.set("max_queue", static_cast<std::uint64_t>(p.maxQueue));
    j.set("crashes", static_cast<std::int64_t>(p.crashes));
    sim::Json fi = sim::Json::object();
    fi.set("drop_rate", p.dropRate);
    fi.set("corrupt_rate", p.corruptRate);
    fi.set("delay_rate", p.delayRate);
    fi.set("dup_rate", p.dupRate);
    fi.set("forced_dups", p.forcedDups);
    fi.set("cancel_rate", p.cancelRate);
    fi.set("query_rate", p.queryRate);
    j.set("fault_injection", std::move(fi));

    sim::Json m = sim::Json::object();
    m.set("submits_sent", t.submitsSent);
    m.set("acked", t.acked);
    m.set("acked_per_sec",
          run1.metrics.elapsedSeconds > 0
              ? static_cast<double>(t.acked) / run1.metrics.elapsedSeconds
              : 0.0);
    m.set("ack_p50_cycles", bench::percentile(t.latencies, 50));
    m.set("ack_p99_cycles", bench::percentile(t.latencies, 99));
    m.set("ack_latency", bench::statsToJson(bench::computeStats(t.latencies)));
    m.set("accepted", run1.door.accepted);
    m.set("rejected_busy", run1.door.rejected);
    m.set("rejection_rate_pct",
          run1.door.accepted + run1.door.rejected > 0
              ? bench::pct(run1.door.rejected,
                           run1.door.accepted + run1.door.rejected)
              : 0.0);
    m.set("busy_retries", t.busyRetries);
    m.set("abandoned", t.abandoned + t.busyAbandoned);
    m.set("replays", run1.door.replays);
    m.set("dup_silent", run1.door.dupSilent);
    m.set("stale_drops", run1.door.staleDrops);
    m.set("corrupt_frames", run1.door.corrupt);
    m.set("flushes", run1.door.flushes);
    m.set("flushed_jobs", run1.door.flushedJobs);
    m.set("max_batch", run1.door.maxBatchSeen);
    m.set("cancels_batched", run1.door.cancelsBatched);
    m.set("cancels_queued", run1.door.cancelsQueued);
    m.set("cancels_too_late", run1.door.cancelsTooLate);
    m.set("fd_restarts", run1.door.restarts);
    m.set("resubmitted", run1.door.resubmitted);
    j.set("frontdoor", std::move(m));

    j.set("svc", run1.metrics.toJson());
    j.set("determinism_hash", run1.determinismHash);
    j.set("fd_digest", run1.fdDigest);
    j.set("replay_hash_match", match);
    j.set("invariants_ok", invariantsOk);
    // Serializer probe: a u64 above INT64_MAX must round-trip through
    // the JSON layer unsigned (diff_runs.py reads it back).
    j.set("u64_probe", static_cast<std::uint64_t>(0xFFFFFFFFFFFFFFFFULL));
    if (!j.writeFile(jsonPath)) {
      std::fprintf(stderr, "failed to write %s\n", jsonPath.c_str());
      return 1;
    }
    std::printf("wrote %s\n", jsonPath.c_str());
  }
  return match && invariantsOk ? 0 : 1;
}

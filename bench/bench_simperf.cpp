// SIMPERF: host-side performance of the simulator itself — the one
// bench that measures *wall-clock* time; every other bench reports
// simulated cycles. It drives three workloads through the public API
// and reports simulated-cycles/sec and events/sec on this host:
//
//   events-micro   raw engine throughput: dense self-rescheduling
//                  chains (calendar-ring traffic), far-future events
//                  (heap tier), and a cancel/re-arm churn loop that
//                  mimics decrementer re-arming.
//   boot+fwq       a 32-node heterogeneous machine (CNK + FWK) boots
//                  and runs the FWQ noise kernel on every node.
//   jobstream      the service-node scheduler drains a seeded 60-job
//                  mix on 8 nodes (same code path as bench_jobstream);
//                  its schedule hash is reported as the determinism
//                  witness for this exact mix.
//
// --json <path> writes the per-phase and total numbers machine-
// readably; BENCH_simperf.json in the repo root records a before/after
// pair for the event-engine fast-path work.
//
// --lanes N runs the cluster phases (boot+fwq, jobstream) with N host
// threads driving per-node event lanes. The merge is deterministic:
// every phase hash must be bit-identical to the --lanes 1 run (the
// perf-smoke CI job diffs them). events-micro is a raw single engine
// with no nodes, so it always runs serially.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/fwq.hpp"
#include "bench_util.hpp"
#include "runtime/app.hpp"
#include "sim/engine.hpp"
#include "svc/failover.hpp"
#include "vm/builder.hpp"

namespace {

using namespace bg;
using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct PhaseResult {
  std::string name;
  double wallSec = 0;
  std::uint64_t simCycles = 0;
  std::uint64_t events = 0;
  std::uint64_t hash = 0;  // schedule hash when the phase has one
  sim::Engine::LaneStats lanes;  // all-zero when the phase ran serially
};

// Determinism witness for phases without a service-node schedule hash:
// fold every node's RAS stream (boot completions, job load/exit, ...)
// into one digest. Lane-mode runs must reproduce it bit-identically.
// The final engine clock is deliberately NOT mixed in: a lane window
// may overshoot the stop predicate by a few tick events, so wall-clock
// style counters are mode-dependent while the RAS record is not.
std::uint64_t rasDigest(rt::Cluster& cluster) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  for (int n = 0; n < cluster.config().computeNodes; ++n) {
    for (const kernel::RasEvent& e : cluster.kernelOn(n).rasLog()) {
      mix(static_cast<std::uint64_t>(n));
      mix(e.cycle);
      mix(static_cast<std::uint64_t>(e.code));
      mix(static_cast<std::uint64_t>(e.severity));
      mix(e.detail);
    }
  }
  return h;
}

double eventsPerSec(const PhaseResult& p) {
  return p.wallSec > 0 ? static_cast<double>(p.events) / p.wallSec : 0;
}

double mcyclesPerSec(const PhaseResult& p) {
  return p.wallSec > 0 ? static_cast<double>(p.simCycles) / p.wallSec / 1e6
                       : 0;
}

// --- Phase 1: engine micro ------------------------------------------------

PhaseResult runEventsMicro(bool quick) {
  PhaseResult r;
  r.name = "events-micro";
  const int chains = 64;
  const std::uint64_t perChain = quick ? 20'000 : 200'000;
  const int churn = quick ? 5'000 : 20'000;
  const Clock::time_point t0 = Clock::now();

  sim::Engine e;
  // Dense tier: self-rescheduling chains with core-like short delays.
  struct Chain {
    sim::Engine* e;
    sim::Cycle delay;
    std::uint64_t remaining;
    void fire() {
      if (--remaining == 0) return;
      e->schedule(delay, [this] { fire(); });
    }
  };
  std::vector<Chain> cs(chains);
  for (int i = 0; i < chains; ++i) {
    cs[i] = Chain{&e, static_cast<sim::Cycle>(1 + i % 7), perChain};
    e.schedule(static_cast<sim::Cycle>(i), [c = &cs[i]] { c->fire(); });
  }
  // Far tier: events past any near-future window.
  for (int i = 0; i < 1024; ++i) {
    e.schedule(1'000'000 + static_cast<sim::Cycle>(i) * 997, [] {});
  }
  // Cancel churn: decrementer-style re-arm (schedule far, cancel,
  // repeat) — the pattern that grew the old engine's tombstone list.
  for (int i = 0; i < churn; ++i) {
    const sim::EventId id = e.schedule(2'000'000 + i, [] {});
    e.cancel(id);
  }
  e.run();

  r.wallSec = secondsSince(t0);
  r.simCycles = e.now();
  r.events = e.eventsProcessed();
  return r;
}

// --- Phase 2: 32-node boot + FWQ ------------------------------------------

PhaseResult runBootFwq(bool quick, int lanes) {
  PhaseResult r;
  r.name = "boot+fwq";
  const Clock::time_point t0 = Clock::now();

  rt::ClusterConfig cfg;
  cfg.computeNodes = 32;
  cfg.kernel = rt::KernelKind::kCnk;
  // Heterogeneous mix: the last 8 nodes run the Linux-like FWK (timer
  // tick + daemons), which keeps the decrementer re-arm path hot.
  cfg.nodeKernels.assign(32, rt::KernelKind::kCnk);
  for (int n = 24; n < 32; ++n) cfg.nodeKernels[n] = rt::KernelKind::kFwk;
  cfg.hostLanes = lanes;
  rt::Cluster cluster(cfg);
  if (!cluster.bootAll(200'000'000)) {
    std::fprintf(stderr, "boot+fwq: boot failed\n");
    return r;
  }
  apps::FwqParams fp;
  fp.samples = quick ? 60 : 400;
  kernel::JobSpec job;
  job.exe = apps::fwqImage(fp);
  if (!cluster.loadJob(job) || !cluster.run(4'000'000'000ULL)) {
    std::fprintf(stderr, "boot+fwq: run failed\n");
  }

  r.wallSec = secondsSince(t0);
  r.simCycles = cluster.engine().now();
  r.events = cluster.engine().eventsProcessed();
  r.hash = rasDigest(cluster);
  r.lanes = cluster.engine().laneStats();
  return r;
}

// --- Phase 3: service-node jobstream ---------------------------------------

std::shared_ptr<kernel::ElfImage> workImage(int id, std::uint64_t reps,
                                            std::uint64_t cyclesPerRep) {
  vm::ProgramBuilder b("job" + std::to_string(id));
  const auto top = b.loopBegin(16, static_cast<std::int64_t>(reps));
  b.compute(cyclesPerRep);
  b.loopEnd(16, top);
  b.halt(0);
  return kernel::ElfImage::makeExecutable("job" + std::to_string(id),
                                          std::move(b).build());
}

PhaseResult runJobstream(bool quick, int lanes) {
  PhaseResult r;
  r.name = "jobstream";
  const int jobs = quick ? 30 : 60;
  const Clock::time_point t0 = Clock::now();

  rt::ClusterConfig cfg;
  cfg.computeNodes = 8;
  cfg.seed = 42;
  cfg.nodeKernels.assign(8, rt::KernelKind::kCnk);
  cfg.nodeKernels[6] = rt::KernelKind::kFwk;
  cfg.nodeKernels[7] = rt::KernelKind::kFwk;
  cfg.hostLanes = lanes;
  rt::Cluster cluster(cfg);
  svc::ServiceHost host(cluster, svc::ServiceNodeConfig{});

  sim::Rng rng(cfg.seed, "jobstream");
  int submitted = 0;
  sim::Cycle arrival = 0;
  for (int i = 0; i < jobs; ++i) {
    const bool fwk = rng.nextBelow(4) == 0;
    const int width = fwk ? 1 : 1 + static_cast<int>(rng.nextBelow(3));
    const std::uint64_t reps = 8 + rng.nextBelow(25);
    svc::JobDesc jd;
    jd.name = "job" + std::to_string(i);
    jd.kernel = fwk ? rt::KernelKind::kFwk : rt::KernelKind::kCnk;
    jd.nodes = width;
    jd.exe = workImage(i, reps, 12'000);
    jd.estCycles = reps * 12'000 + 120'000;
    arrival += rng.nextBelow(60'000);
    cluster.engine().scheduleAt(arrival, [&host, jd, &submitted] {
      host.submit(jd);
      ++submitted;
    });
  }
  host.start();
  if (!cluster.engine().runWhile(
          [&] { return submitted == jobs && host.drained(); },
          2'000'000'000ULL)) {
    std::fprintf(stderr, "jobstream: did not drain\n");
  }

  r.wallSec = secondsSince(t0);
  r.simCycles = cluster.engine().now();
  r.events = cluster.engine().eventsProcessed();
  r.hash = host.metrics().scheduleHash;
  r.lanes = cluster.engine().laneStats();
  return r;
}

void printPhase(const PhaseResult& p) {
  std::printf("%-14s %8.3f s  %14llu cycles  %12llu events  "
              "%9.2f Mcyc/s  %10.0f events/s",
              p.name.c_str(), p.wallSec,
              static_cast<unsigned long long>(p.simCycles),
              static_cast<unsigned long long>(p.events), mcyclesPerSec(p),
              eventsPerSec(p));
  if (p.hash != 0) {
    std::printf("  hash=%016llx", static_cast<unsigned long long>(p.hash));
  }
  std::printf("\n");
}

sim::Json phaseJson(const PhaseResult& p) {
  sim::Json j = sim::Json::object();
  j.set("name", p.name);
  j.set("wall_sec", p.wallSec);
  j.set("sim_cycles", p.simCycles);
  j.set("events", p.events);
  j.set("mcycles_per_sec", mcyclesPerSec(p));
  j.set("events_per_sec", eventsPerSec(p));
  if (p.hash != 0) {
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(p.hash));
    j.set("schedule_hash", std::string(buf));
  }
  if (p.lanes.windows != 0) {
    sim::Json l = sim::Json::object();
    l.set("windows", p.lanes.windows);
    l.set("shared_ops", p.lanes.sharedOps);
    l.set("lane_events", p.lanes.laneEvents);
    l.set("serial_events", p.lanes.serialEvents);
    l.set("causality_violations", p.lanes.causalityViolations);
    l.set("max_outbox_depth", p.lanes.maxOutboxDepth);
    j.set("lane_stats", std::move(l));
  }
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  int lanes = 1;
  const char* jsonPath = bg::bench::jsonPathArg(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--lanes") == 0 && i + 1 < argc) {
      lanes = std::atoi(argv[++i]);
      if (lanes < 1) lanes = 1;
    }
  }

  std::printf("simperf: host throughput of the simulator (wall clock)\n");
  std::printf("mix: events-micro + 32-node boot+FWQ + 8-node jobstream%s\n",
              quick ? " (--quick)" : "");
  if (lanes > 1) {
    std::printf("lanes: %d host threads over per-node event lanes "
                "(%u cores on this host)\n",
                lanes, std::thread::hardware_concurrency());
  }
  bg::bench::printRule();

  std::vector<PhaseResult> phases;
  phases.push_back(runEventsMicro(quick));
  printPhase(phases.back());
  phases.push_back(runBootFwq(quick, lanes));
  printPhase(phases.back());
  phases.push_back(runJobstream(quick, lanes));
  printPhase(phases.back());

  PhaseResult total;
  total.name = "TOTAL";
  for (const PhaseResult& p : phases) {
    total.wallSec += p.wallSec;
    total.simCycles += p.simCycles;
    total.events += p.events;
  }
  bg::bench::printRule();
  printPhase(total);

  if (jsonPath != nullptr) {
    bg::sim::Json j = bg::sim::Json::object();
    j.set("bench", "simperf");
    j.set("quick", quick);
    j.set("lanes", static_cast<std::int64_t>(lanes));
    j.set("cores_used",
          static_cast<std::int64_t>(std::min(
              static_cast<unsigned>(lanes),
              std::max(1u, std::thread::hardware_concurrency()))));
    bg::sim::Json arr = bg::sim::Json::array();
    for (const PhaseResult& p : phases) arr.push(phaseJson(p));
    j.set("phases", std::move(arr));
    j.set("total", phaseJson(total));
    if (!bg::bench::maybeWriteJson(jsonPath, j)) return 1;
  }
  return 0;
}

// SIMPERF: host-side performance of the simulator itself — the one
// bench that measures *wall-clock* time; every other bench reports
// simulated cycles. It drives three workloads through the public API
// and reports simulated-cycles/sec and events/sec on this host:
//
//   events-micro   raw engine throughput: dense self-rescheduling
//                  chains (calendar-ring traffic), far-future events
//                  (heap tier), and a cancel/re-arm churn loop that
//                  mimics decrementer re-arming.
//   boot+fwq       a 32-node heterogeneous machine (CNK + FWK) boots
//                  and runs the FWQ noise kernel on every node.
//   jobstream      the service-node scheduler drains a seeded 60-job
//                  mix on 8 nodes (same code path as bench_jobstream);
//                  its schedule hash is reported as the determinism
//                  witness for this exact mix.
//
// --json <path> writes the per-phase and total numbers machine-
// readably; BENCH_simperf.json in the repo root records a before/after
// pair for the event-engine fast-path work.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "apps/fwq.hpp"
#include "bench_util.hpp"
#include "runtime/app.hpp"
#include "sim/engine.hpp"
#include "svc/failover.hpp"
#include "vm/builder.hpp"

namespace {

using namespace bg;
using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct PhaseResult {
  std::string name;
  double wallSec = 0;
  std::uint64_t simCycles = 0;
  std::uint64_t events = 0;
  std::uint64_t hash = 0;  // schedule hash when the phase has one
};

double eventsPerSec(const PhaseResult& p) {
  return p.wallSec > 0 ? static_cast<double>(p.events) / p.wallSec : 0;
}

double mcyclesPerSec(const PhaseResult& p) {
  return p.wallSec > 0 ? static_cast<double>(p.simCycles) / p.wallSec / 1e6
                       : 0;
}

// --- Phase 1: engine micro ------------------------------------------------

PhaseResult runEventsMicro(bool quick) {
  PhaseResult r;
  r.name = "events-micro";
  const int chains = 64;
  const std::uint64_t perChain = quick ? 20'000 : 200'000;
  const int churn = quick ? 5'000 : 20'000;
  const Clock::time_point t0 = Clock::now();

  sim::Engine e;
  // Dense tier: self-rescheduling chains with core-like short delays.
  struct Chain {
    sim::Engine* e;
    sim::Cycle delay;
    std::uint64_t remaining;
    void fire() {
      if (--remaining == 0) return;
      e->schedule(delay, [this] { fire(); });
    }
  };
  std::vector<Chain> cs(chains);
  for (int i = 0; i < chains; ++i) {
    cs[i] = Chain{&e, static_cast<sim::Cycle>(1 + i % 7), perChain};
    e.schedule(static_cast<sim::Cycle>(i), [c = &cs[i]] { c->fire(); });
  }
  // Far tier: events past any near-future window.
  for (int i = 0; i < 1024; ++i) {
    e.schedule(1'000'000 + static_cast<sim::Cycle>(i) * 997, [] {});
  }
  // Cancel churn: decrementer-style re-arm (schedule far, cancel,
  // repeat) — the pattern that grew the old engine's tombstone list.
  for (int i = 0; i < churn; ++i) {
    const sim::EventId id = e.schedule(2'000'000 + i, [] {});
    e.cancel(id);
  }
  e.run();

  r.wallSec = secondsSince(t0);
  r.simCycles = e.now();
  r.events = e.eventsProcessed();
  return r;
}

// --- Phase 2: 32-node boot + FWQ ------------------------------------------

PhaseResult runBootFwq(bool quick) {
  PhaseResult r;
  r.name = "boot+fwq";
  const Clock::time_point t0 = Clock::now();

  rt::ClusterConfig cfg;
  cfg.computeNodes = 32;
  cfg.kernel = rt::KernelKind::kCnk;
  // Heterogeneous mix: the last 8 nodes run the Linux-like FWK (timer
  // tick + daemons), which keeps the decrementer re-arm path hot.
  cfg.nodeKernels.assign(32, rt::KernelKind::kCnk);
  for (int n = 24; n < 32; ++n) cfg.nodeKernels[n] = rt::KernelKind::kFwk;
  rt::Cluster cluster(cfg);
  if (!cluster.bootAll(200'000'000)) {
    std::fprintf(stderr, "boot+fwq: boot failed\n");
    return r;
  }
  apps::FwqParams fp;
  fp.samples = quick ? 60 : 400;
  kernel::JobSpec job;
  job.exe = apps::fwqImage(fp);
  if (!cluster.loadJob(job) || !cluster.run(4'000'000'000ULL)) {
    std::fprintf(stderr, "boot+fwq: run failed\n");
  }

  r.wallSec = secondsSince(t0);
  r.simCycles = cluster.engine().now();
  r.events = cluster.engine().eventsProcessed();
  return r;
}

// --- Phase 3: service-node jobstream ---------------------------------------

std::shared_ptr<kernel::ElfImage> workImage(int id, std::uint64_t reps,
                                            std::uint64_t cyclesPerRep) {
  vm::ProgramBuilder b("job" + std::to_string(id));
  const auto top = b.loopBegin(16, static_cast<std::int64_t>(reps));
  b.compute(cyclesPerRep);
  b.loopEnd(16, top);
  b.halt(0);
  return kernel::ElfImage::makeExecutable("job" + std::to_string(id),
                                          std::move(b).build());
}

PhaseResult runJobstream(bool quick) {
  PhaseResult r;
  r.name = "jobstream";
  const int jobs = quick ? 30 : 60;
  const Clock::time_point t0 = Clock::now();

  rt::ClusterConfig cfg;
  cfg.computeNodes = 8;
  cfg.seed = 42;
  cfg.nodeKernels.assign(8, rt::KernelKind::kCnk);
  cfg.nodeKernels[6] = rt::KernelKind::kFwk;
  cfg.nodeKernels[7] = rt::KernelKind::kFwk;
  rt::Cluster cluster(cfg);
  svc::ServiceHost host(cluster, svc::ServiceNodeConfig{});

  sim::Rng rng(cfg.seed, "jobstream");
  int submitted = 0;
  sim::Cycle arrival = 0;
  for (int i = 0; i < jobs; ++i) {
    const bool fwk = rng.nextBelow(4) == 0;
    const int width = fwk ? 1 : 1 + static_cast<int>(rng.nextBelow(3));
    const std::uint64_t reps = 8 + rng.nextBelow(25);
    svc::JobDesc jd;
    jd.name = "job" + std::to_string(i);
    jd.kernel = fwk ? rt::KernelKind::kFwk : rt::KernelKind::kCnk;
    jd.nodes = width;
    jd.exe = workImage(i, reps, 12'000);
    jd.estCycles = reps * 12'000 + 120'000;
    arrival += rng.nextBelow(60'000);
    cluster.engine().scheduleAt(arrival, [&host, jd, &submitted] {
      host.submit(jd);
      ++submitted;
    });
  }
  host.start();
  if (!cluster.engine().runWhile(
          [&] { return submitted == jobs && host.drained(); },
          2'000'000'000ULL)) {
    std::fprintf(stderr, "jobstream: did not drain\n");
  }

  r.wallSec = secondsSince(t0);
  r.simCycles = cluster.engine().now();
  r.events = cluster.engine().eventsProcessed();
  r.hash = host.metrics().scheduleHash;
  return r;
}

void printPhase(const PhaseResult& p) {
  std::printf("%-14s %8.3f s  %14llu cycles  %12llu events  "
              "%9.2f Mcyc/s  %10.0f events/s",
              p.name.c_str(), p.wallSec,
              static_cast<unsigned long long>(p.simCycles),
              static_cast<unsigned long long>(p.events), mcyclesPerSec(p),
              eventsPerSec(p));
  if (p.hash != 0) {
    std::printf("  hash=%016llx", static_cast<unsigned long long>(p.hash));
  }
  std::printf("\n");
}

sim::Json phaseJson(const PhaseResult& p) {
  sim::Json j = sim::Json::object();
  j.set("name", p.name);
  j.set("wall_sec", p.wallSec);
  j.set("sim_cycles", p.simCycles);
  j.set("events", p.events);
  j.set("mcycles_per_sec", mcyclesPerSec(p));
  j.set("events_per_sec", eventsPerSec(p));
  if (p.hash != 0) {
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(p.hash));
    j.set("schedule_hash", std::string(buf));
  }
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  const char* jsonPath = bg::bench::jsonPathArg(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  std::printf("simperf: host throughput of the simulator (wall clock)\n");
  std::printf("mix: events-micro + 32-node boot+FWQ + 8-node jobstream%s\n",
              quick ? " (--quick)" : "");
  bg::bench::printRule();

  std::vector<PhaseResult> phases;
  phases.push_back(runEventsMicro(quick));
  printPhase(phases.back());
  phases.push_back(runBootFwq(quick));
  printPhase(phases.back());
  phases.push_back(runJobstream(quick));
  printPhase(phases.back());

  PhaseResult total;
  total.name = "TOTAL";
  for (const PhaseResult& p : phases) {
    total.wallSec += p.wallSec;
    total.simCycles += p.simCycles;
    total.events += p.events;
  }
  bg::bench::printRule();
  printPhase(total);

  if (jsonPath != nullptr) {
    bg::sim::Json j = bg::sim::Json::object();
    j.set("bench", "simperf");
    j.set("quick", quick);
    bg::sim::Json arr = bg::sim::Json::array();
    for (const PhaseResult& p : phases) arr.push(phaseJson(p));
    j.set("phases", std::move(arr));
    j.set("total", phaseJson(total));
    if (!bg::bench::maybeWriteJson(jsonPath, j)) return 1;
  }
  return 0;
}

// SIMPERF (meta-benchmark): host-side performance of the simulator
// itself — event throughput, RNG, hashing, cache-model accesses.
// This is the one bench measuring wall-clock time; every other bench
// reports *simulated* cycles.
#include <benchmark/benchmark.h>

#include "hw/cache.hpp"
#include "sim/engine.hpp"
#include "sim/hash.hpp"
#include "sim/rng.hpp"

namespace {

void BM_EventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    bg::sim::Engine e;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      e.schedule(static_cast<bg::sim::Cycle>(i), [] {});
    }
    benchmark::DoNotOptimize(e.run());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventThroughput)->Arg(1000)->Arg(100000);

void BM_Rng(benchmark::State& state) {
  bg::sim::Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next());
  }
}
BENCHMARK(BM_Rng);

void BM_HashBytes(benchmark::State& state) {
  std::vector<std::byte> data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bg::sim::hashBytes(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashBytes)->Arg(4096)->Arg(65536);

void BM_CacheAccess(benchmark::State& state) {
  bg::hw::CacheArray l1(32 << 10, 32, 8);
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(l1.access(addr));
    addr += 32;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

}  // namespace

BENCHMARK_MAIN();

// Regenerates the paper §III design-time study: "CNK enabled
// application kernels to be run with varied mappings of code and data
// memory traffic to the L2 cache banks, allowing measurement of cache
// effects, and optimizing the memory system hierarchy to minimize
// conflicts."
//
// The same strided application kernel runs under each phys->bank
// mapping policy of the shared cache; the harness reports per-mapping
// run cycles, bank-conflict counts, and the bank-load imbalance the
// logic designers were screening for.
#include <cstdio>

#include "bench_util.hpp"
#include "kernel/syscalls.hpp"
#include "runtime/app.hpp"
#include "vm/builder.hpp"

namespace {

using namespace bg;

vm::Program stridedKernel(std::uint32_t regionBytes, std::uint32_t stride,
                          int passes) {
  using vm::Reg;
  constexpr Reg rBuf = 16;
  constexpr Reg rPass = 17;
  constexpr Reg rT0 = 18;
  constexpr Reg rT1 = 19;
  vm::ProgramBuilder b("strided");
  b.mov(rBuf, 10);
  b.readTb(rT0);
  const auto top = b.loopBegin(rPass, passes);
  b.memTouch(rBuf, 0, regionBytes, stride, /*write=*/true);
  b.loopEnd(rPass, top);
  b.readTb(rT1);
  b.sub(rT0, rT1, rT0);
  b.sample(rT0);
  b.li(vm::kArg0, 0);
  b.syscall(static_cast<std::int64_t>(kernel::Sys::kExit));
  return std::move(b).build();
}

struct MapResult {
  std::uint64_t cycles = 0;
  std::uint64_t conflicts = 0;
  double imbalance = 0;  // max/mean bank load
  std::uint64_t misses = 0;
};

MapResult runWithMapping(hw::BankMap map, std::uint32_t stride) {
  rt::ClusterConfig cfg;
  cfg.node.l3.bankMap = map;
  cfg.node.l3.banks = 4;
  rt::Cluster cluster(cfg);
  MapResult res;
  if (!cluster.bootAll(100'000'000)) return res;
  kernel::JobSpec job;
  // Work on all four cores (VN mode) so bank conflicts between cores
  // are visible, as on the real chip.
  job.processes = 4;
  job.exe = kernel::ElfImage::makeExecutable(
      "strided", stridedKernel(512 << 10, stride, 24));
  std::vector<std::vector<std::uint64_t>> samples(4);
  for (int r = 0; r < 4; ++r) cluster.attachSamples(r, 0, &samples[r]);
  if (!cluster.loadJob(job) || !cluster.run(4'000'000'000ULL)) return res;

  for (const auto& s : samples) {
    if (!s.empty()) res.cycles = std::max(res.cycles, s.front());
  }
  const hw::SharedCache& l3 = cluster.machine().node(0).l3();
  res.conflicts = l3.bankConflicts();
  res.misses = l3.stats().misses;
  const auto& loads = l3.bankAccesses();
  std::uint64_t total = 0, peak = 0;
  for (const std::uint64_t v : loads) {
    total += v;
    peak = std::max(peak, v);
  }
  if (total > 0) {
    res.imbalance = static_cast<double>(peak) /
                    (static_cast<double>(total) / loads.size());
  }
  return res;
}

const char* mapName(hw::BankMap m) {
  switch (m) {
    case hw::BankMap::kDirect: return "direct (line % banks)";
    case hw::BankMap::kXorFold: return "xor-fold";
    case hw::BankMap::kHighBits: return "high address bits";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("L2/L3 bank-mapping sensitivity study (paper SectionIII)\n");
  std::printf("strided kernel on 4 cores, 512KB region per process\n\n");
  sim::Json strides = sim::Json::array();
  for (const std::uint32_t stride : {128u, 4096u}) {
    std::printf("stride %u bytes:\n", stride);
    std::printf("  %-26s %14s %12s %12s %10s\n", "bank mapping", "cycles",
                "conflicts", "L3 misses", "imbalance");
    sim::Json sj = sim::Json::object();
    sj.set("stride", static_cast<std::uint64_t>(stride));
    sim::Json maps = sim::Json::array();
    for (const auto map : {hw::BankMap::kXorFold, hw::BankMap::kDirect,
                           hw::BankMap::kHighBits}) {
      const MapResult r = runWithMapping(map, stride);
      std::printf("  %-26s %14llu %12llu %12llu %9.2fx\n", mapName(map),
                  static_cast<unsigned long long>(r.cycles),
                  static_cast<unsigned long long>(r.conflicts),
                  static_cast<unsigned long long>(r.misses), r.imbalance);
      sim::Json mj = sim::Json::object();
      mj.set("mapping", mapName(map));
      mj.set("cycles", r.cycles);
      mj.set("conflicts", r.conflicts);
      mj.set("l3_misses", r.misses);
      mj.set("imbalance", r.imbalance);
      maps.push(std::move(mj));
    }
    sj.set("mappings", std::move(maps));
    strides.push(std::move(sj));
    std::printf("\n");
  }
  std::printf("expected shape: the high-bits mapping concentrates traffic "
              "in few banks (imbalance >> 1)\nand pays conflict stalls; "
              "xor-fold spreads it evenly.\n");
  sim::Json j = sim::Json::object();
  j.set("strides", std::move(strides));
  if (!bench::maybeWriteJson(bench::jsonPathArg(argc, argv), j)) return 1;
  return 0;
}

// Regenerates paper §V-D (performance stability):
//
//  1. 36 repeated LINPACK-proxy runs on CNK — the paper saw a maximum
//     variation of 2.11 s on a 16,081 s run (0.01%), sigma < 1.14 s.
//  2. mpiBench_Allreduce: per-iteration double-sum allreduce on CNK
//     (paper: sigma 0.0007 us over 1M iterations on 16 nodes —
//     "effectively 0") vs the same test on Linux (paper: sigma 8.9 us
//     over 20 runs on 4 I/O nodes over ethernet, with NFS activity
//     between tests).
#include <cstring>

#include "apps/allreduce.hpp"
#include "apps/linpack.hpp"
#include "bench_util.hpp"
#include "runtime/app.hpp"

namespace {

using namespace bg;

/// Run the LINPACK proxy `runs` times on one cluster (fresh job each
/// time), returning each run's total cycles.
std::vector<std::uint64_t> linpackRuns(rt::KernelKind kind, int runs,
                                       int nodes) {
  rt::ClusterConfig cfg;
  cfg.computeNodes = nodes;
  cfg.kernel = kind;
  rt::Cluster cluster(cfg);
  if (!cluster.bootAll(400'000'000)) return {};

  apps::LinpackParams lp;
  std::vector<std::uint64_t> totals;
  for (int run = 0; run < runs; ++run) {
    kernel::JobSpec job;
    job.exe = apps::linpackImage(lp);
    std::vector<std::vector<std::uint64_t>> samples(nodes);
    for (int r = 0; r < nodes; ++r) cluster.attachSamples(r, 0, &samples[r]);
    // CNK requires an explicit unload between jobs (static map rebuild);
    // old FWK processes simply stay exited.
    for (int n = 0; n < nodes; ++n) {
      if (auto* cnk = cluster.cnkOn(n)) cnk->unloadJob();
    }
    if (!cluster.loadJob(job) || !cluster.run(8'000'000'000ULL)) break;
    std::uint64_t worst = 0;
    for (const auto& s : samples) {
      if (!s.empty()) worst = std::max(worst, s.front());
    }
    totals.push_back(worst);
  }
  return totals;
}

/// Per-iteration allreduce samples of rank 0.
std::vector<std::uint64_t> allreduceRun(rt::KernelKind kind, int nodes,
                                        int iters) {
  rt::ClusterConfig cfg;
  cfg.computeNodes = nodes;
  cfg.kernel = kind;
  rt::Cluster cluster(cfg);
  if (!cluster.bootAll(400'000'000)) return {};
  apps::AllreduceParams ap;
  ap.iterations = iters;
  kernel::JobSpec job;
  job.exe = apps::allreduceImage(ap);
  std::vector<std::uint64_t> samples;
  cluster.attachSamples(0, 0, &samples);
  if (!cluster.loadJob(job) || !cluster.run(8'000'000'000ULL)) return {};
  // Drop warmup iterations.
  if (samples.size() > 16) samples.erase(samples.begin(),
                                         samples.begin() + 8);
  return samples;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const char* jsonPath = bg::bench::jsonPathArg(argc, argv);
  const int linpackRunsCount = quick ? 8 : 36;
  const int allreduceIters = quick ? 400 : 4000;

  std::printf("Performance stability (paper SectionV-D)\n\n");

  // ---- LINPACK repeatability ----
  sim::Json jlinpack = sim::Json::object();
  std::printf("LINPACK proxy, %d runs, 4 nodes\n", linpackRunsCount);
  bg::bench::printRule();
  for (auto kind : {rt::KernelKind::kCnk, rt::KernelKind::kFwk}) {
    const char* name = kind == rt::KernelKind::kCnk ? "CNK" : "Linux(FWK)";
    const auto totals = linpackRuns(kind, linpackRunsCount, 4);
    const auto s = bg::bench::computeStats(totals);
    std::printf("%-12s runs=%llu min=%llu max=%llu variation=%.5f%% "
                "stddev=%.1f cyc (%.3f us)\n",
                name,
                static_cast<unsigned long long>(s.n),
                static_cast<unsigned long long>(s.min),
                static_cast<unsigned long long>(s.max),
                s.min ? bg::bench::pct(s.max - s.min, s.min) : 0.0,
                s.stddev, sim::cyclesToUs(static_cast<sim::Cycle>(s.stddev)));
    sim::Json row = bg::bench::statsToJson(s);
    row.set("stddev_us", sim::cyclesToUs(static_cast<sim::Cycle>(s.stddev)));
    jlinpack.set(name, std::move(row));
  }
  std::printf("paper: CNK 36 runs varied 2.11s over 16081s = 0.013%%, "
              "sigma < 1.14s\n\n");

  // ---- mpiBench_Allreduce ----
  sim::Json jallreduce = sim::Json::object();
  std::printf("mpiBench_Allreduce double-sum, per-iteration sigma\n");
  bg::bench::printRule();
  {
    const auto cnk = allreduceRun(rt::KernelKind::kCnk, 16, allreduceIters);
    const auto s = bg::bench::computeStats(cnk);
    const double sigmaUs = s.stddev * 1e6 / static_cast<double>(sim::kCoreHz);
    std::printf("%-12s 16 nodes, %zu iters: mean=%.3f us sigma=%.4f us\n",
                "CNK", cnk.size(), sim::cyclesToUs(
                    static_cast<sim::Cycle>(s.mean)),
                sigmaUs);
    sim::Json row = bg::bench::statsToJson(s);
    row.set("mean_us", sim::cyclesToUs(static_cast<sim::Cycle>(s.mean)));
    row.set("sigma_us", sigmaUs);
    jallreduce.set("CNK", std::move(row));
  }
  {
    const auto fwk = allreduceRun(rt::KernelKind::kFwk, 4, allreduceIters);
    const auto s = bg::bench::computeStats(fwk);
    const double sigmaUs = s.stddev * 1e6 / static_cast<double>(sim::kCoreHz);
    std::printf("%-12s  4 nodes, %zu iters: mean=%.3f us sigma=%.4f us\n",
                "Linux(FWK)", fwk.size(), sim::cyclesToUs(
                    static_cast<sim::Cycle>(s.mean)),
                sigmaUs);
    sim::Json row = bg::bench::statsToJson(s);
    row.set("mean_us", sim::cyclesToUs(static_cast<sim::Cycle>(s.mean)));
    row.set("sigma_us", sigmaUs);
    jallreduce.set("Linux(FWK)", std::move(row));
  }
  std::printf("paper: CNK sigma = 0.0007 us (effectively 0); "
              "Linux sigma = 8.9 us\n");

  if (jsonPath != nullptr) {
    sim::Json j = sim::Json::object();
    j.set("bench", "stability");
    j.set("quick", quick);
    j.set("linpack", std::move(jlinpack));
    j.set("allreduce", std::move(jallreduce));
    if (!bg::bench::maybeWriteJson(jsonPath, j)) return 1;
  }
  return 0;
}

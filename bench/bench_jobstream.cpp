// Multi-tenant job-stream benchmark for the service-node control
// subsystem (src/svc): a seeded stream of 100+ mixed CNK/FWK jobs
// arrives at an 8-node heterogeneous machine, one node dies mid-run
// (injected fatal RAS event), and the scheduler drains the backlog
// through drain/retry/reboot. With --crashes N the service node itself
// fail-stops N times at seeded cycles and restarts from its
// persistent-memory checkpoint (--restart-delay sets the outage).
// --link-deaths / --link-storms arm the torus hard-fault plane:
// seeded directed-link fail-stops and CRC-retry storms, with
// RAS-driven checkpoint-then-migrate enabled and the migration /
// route-around counters reported (and emitted in --json).
// Reports jobs/sec, queue wait, node utilization, RAS counts, and
// failover counters; --json writes them machine-readably.
//
// The whole stream — arrivals, placements, the failure, the retry,
// every crash and restart — runs on the deterministic event engine, so
// two runs with the same seed produce an identical schedule hash
// (verified every run).
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "bench_util.hpp"
#include "fault_schedule.hpp"
#include "runtime/app.hpp"
#include "svc/failover.hpp"
#include "svc/service_node.hpp"
#include "vm/builder.hpp"

namespace {

using namespace bg;

struct StreamParams {
  int jobs = 120;
  int nodes = 8;
  int fwkNodes = 2;  // trailing nodes run the FWK personality
  std::uint64_t seed = 42;
  svc::SchedPolicyKind policy = svc::SchedPolicyKind::kBackfill;
  int failNode = 2;
  sim::Cycle failCycle = 4'000'000;
  int crashes = 0;                     // service-node fail-stops
  sim::Cycle restartDelay = 250'000;   // outage length per crash
  // Compute-node fault plane (seeded; all-zero default changes nothing).
  int memUes = 0;                      // uncorrectable-ECC panics
  int ceStorms = 0;                    // correctable-ECC bursts
  int coreHangs = 0;                   // frozen cores (watchdog bait)
  sim::Cycle hangTimeout = 400'000;    // watchdog freeze threshold
  std::uint32_t budget = 0;            // per-node failure budget (0 = off)
  // Torus hard-fault plane (seeded; arming it enables migration).
  int linkDeaths = 0;                  // fail-stopped directed links
  int linkStorms = 0;                  // CRC-retry storms (degraded links)
  std::string rasLogPath;              // dump the aggregated RAS stream
};

std::shared_ptr<kernel::ElfImage> workImage(int id, std::uint64_t reps,
                                            std::uint64_t cyclesPerRep) {
  vm::ProgramBuilder b("job" + std::to_string(id));
  const auto top = b.loopBegin(16, static_cast<std::int64_t>(reps));
  b.compute(cyclesPerRep);
  b.loopEnd(16, top);
  b.halt(0);
  return kernel::ElfImage::makeExecutable("job" + std::to_string(id),
                                          std::move(b).build());
}

struct StreamResult {
  svc::SvcMetrics metrics;
  bool drained = false;
  std::uint64_t retries = 0;
  std::uint64_t coldStarts = 0;
  cnk::FshipStats fship;  // cluster-wide function-shipping counters
  io::CiodStats ciod;     // cluster-wide daemon counters
  std::uint64_t coredumps = 0;    // lightweight coredumps shipped (CNK)
  std::uint64_t eccScrubbed = 0;  // correctables scrubbed by kernels
};

StreamResult runStream(const StreamParams& p) {
  rt::ClusterConfig cfg;
  cfg.computeNodes = p.nodes;
  cfg.seed = p.seed;
  cfg.nodeKernels.assign(static_cast<std::size_t>(p.nodes),
                         rt::KernelKind::kCnk);
  for (int n = p.nodes - p.fwkNodes; n < p.nodes; ++n) {
    cfg.nodeKernels[static_cast<std::size_t>(n)] = rt::KernelKind::kFwk;
  }
  rt::Cluster cluster(cfg);

  svc::ServiceNodeConfig scfg;
  scfg.policy = p.policy;
  // Watchdog + budget knobs arm only with injected compute faults so
  // the zero-fault stream stays schedule-identical to the seed run.
  if (p.coreHangs > 0) scfg.hangTimeoutCycles = p.hangTimeout;
  if (p.ceStorms > 0) scfg.ras.warnDrainThreshold = 8;
  scfg.nodeFailureBudget = p.budget;
  // Link faults arm checkpoint-then-migrate and the CRC-storm
  // predictor; the zero-fault stream keeps its pinned schedule.
  if (p.linkDeaths > 0 || p.linkStorms > 0) {
    scfg.migrate.enabled = true;
    scfg.ras.linkSickThreshold = 6;
  }
  svc::ServiceHost host(cluster, scfg);

  // Seeded job mix: width 1-3, ~1/4 FWK, work 100K-600K cycles.
  sim::Rng rng(p.seed, "jobstream");
  int submitted = 0;
  sim::Cycle arrival = 0;
  for (int i = 0; i < p.jobs; ++i) {
    const bool fwk = rng.nextBelow(4) == 0;
    const int width = fwk ? 1 : 1 + static_cast<int>(rng.nextBelow(3));
    const std::uint64_t reps = 8 + rng.nextBelow(25);
    const std::uint64_t perRep = 12'000;
    svc::JobDesc jd;
    jd.name = "job" + std::to_string(i);
    jd.kernel = fwk ? rt::KernelKind::kFwk : rt::KernelKind::kCnk;
    jd.nodes = width;
    jd.exe = workImage(i, reps, perRep);
    jd.estCycles = reps * perRep + 120'000;  // user estimate incl. slack
    arrival += rng.nextBelow(60'000);
    cluster.engine().scheduleAt(arrival, [&host, jd, &submitted] {
      host.submit(jd);
      ++submitted;
    });
  }
  const sim::Cycle lastArrival = arrival;

  // The node death goes straight into the victim kernel's RAS ring so
  // it lands even if the service node happens to be down at that
  // cycle; the (restarted) control plane picks it up on its next poll.
  cluster.engine().scheduleAt(p.failCycle, [&cluster, &host, n = p.failNode] {
    cluster.kernelOn(n).logRas(kernel::RasEvent::Code::kNodeFailure,
                               kernel::RasEvent::Severity::kFatal, 0, 0,
                               0xFA11);
    if (host.alive()) host.node().poke();
  });

  // Seeded service-node fail-stops spread across the arrival window.
  sim::Rng crng(p.seed, "svc-crash");
  for (int c = 0; c < p.crashes; ++c) {
    const sim::Cycle at = 200'000 + crng.nextBelow(lastArrival + 2'000'000);
    host.scheduleCrashRestart(at, p.restartDelay);
  }

  // Seeded compute-node faults (UE panics, CE storms, core hangs) over
  // the same window. Zero counts build an empty schedule and draw no
  // random numbers.
  const testing::FaultSchedule faults = testing::FaultSchedule::random(
      p.seed, p.nodes, lastArrival + 2'000'000, 0, 0, 0, 0, 1, p.memUes,
      p.ceStorms, p.coreHangs, /*ckptIoCrashes=*/0, /*ckptUes=*/0,
      /*ckptSvcCrashes=*/0, p.linkDeaths, p.linkStorms);
  faults.arm(cluster, host);

  host.start();

  StreamResult r;
  r.drained = cluster.engine().runWhile(
      [&] { return submitted == p.jobs && host.drained(); },
      2'000'000'000ULL);
  r.metrics = host.metrics();
  r.retries = r.metrics.jobRetries;
  r.coldStarts = host.coldStarts();
  r.fship = cluster.fshipTotals();
  r.ciod = cluster.ciodTotals();
  for (int n = 0; n < p.nodes; ++n) {
    if (const cnk::CnkKernel* k = cluster.cnkOn(n)) {
      r.coredumps += k->coredumpsShipped();
      r.eccScrubbed += k->eccScrubbed();
    }
  }

  if (!p.rasLogPath.empty()) {
    // One line per aggregated RAS event — the seed-identity witness the
    // CI sweep diffs across runs (and uploads as an artifact).
    if (std::FILE* f = std::fopen(p.rasLogPath.c_str(), "w")) {
      for (const svc::SvcRasEvent& e : host.node().ras().stream()) {
        std::fprintf(f, "%llu node=%d %s sev=%d pid=%u tid=%u detail=%llx\n",
                     static_cast<unsigned long long>(e.event.cycle), e.node,
                     kernel::rasCodeName(e.event.code),
                     static_cast<int>(e.event.severity), e.event.pid,
                     e.event.tid,
                     static_cast<unsigned long long>(e.event.detail));
      }
      std::fclose(f);
    }
  }
  return r;
}

sim::Json ioCountersJson(const StreamResult& r) {
  sim::Json io = sim::Json::object();
  sim::Json f = sim::Json::object();
  f.set("requests", r.fship.requests);
  f.set("retransmits", r.fship.retransmits);
  f.set("timeouts", r.fship.timeouts);
  f.set("duplicate_replies", r.fship.duplicateReplies);
  f.set("corrupt_replies", r.fship.corruptReplies);
  f.set("eio_returns", r.fship.eioReturns);
  f.set("rehomes", r.fship.rehomes);
  io.set("fship", std::move(f));
  sim::Json c = sim::Json::object();
  c.set("requests", r.ciod.requests);
  c.set("errors", r.ciod.errors);
  c.set("bad_checksums", r.ciod.badChecksums);
  c.set("replays", r.ciod.replays);
  c.set("stale_drops", r.ciod.staleDrops);
  c.set("restores", r.ciod.restores);
  io.set("ciod", std::move(c));
  return io;
}

void printMetrics(const char* title, const StreamResult& res,
                  bool showFaultPlane, bool showLinkPlane) {
  const svc::SvcMetrics& m = res.metrics;
  std::printf("\n%s\n", title);
  bg::bench::printRule();
  std::printf("jobs: %llu submitted, %llu completed, %llu failed, "
              "%llu retries after node loss\n",
              static_cast<unsigned long long>(m.jobsSubmitted),
              static_cast<unsigned long long>(m.jobsCompleted),
              static_cast<unsigned long long>(m.jobsFailed),
              static_cast<unsigned long long>(m.jobRetries));
  std::printf("throughput: %.1f jobs/sec over %.3f simulated sec\n",
              m.jobsPerSecond, m.elapsedSeconds);
  std::printf("queue wait: mean %.0f cycles, max %llu cycles\n",
              m.meanQueueWaitCycles,
              static_cast<unsigned long long>(m.maxQueueWaitCycles));
  std::printf("utilization: %.1f%% across %d nodes (%llu node failures)\n",
              100.0 * m.utilization, m.nodes,
              static_cast<unsigned long long>(m.nodeFailures));
  std::printf("RAS: %llu info / %llu warn / %llu error / %llu fatal; "
              "%llu throttled, %llu dropped\n",
              static_cast<unsigned long long>(m.rasInfo),
              static_cast<unsigned long long>(m.rasWarn),
              static_cast<unsigned long long>(m.rasError),
              static_cast<unsigned long long>(m.rasFatal),
              static_cast<unsigned long long>(m.rasThrottled),
              static_cast<unsigned long long>(m.rasDropped));
  std::printf("failover: %llu svc crashes, %llu restarts (%llu cold), "
              "%llu checkpoint saves (%llu bytes last), "
              "%llu predictive drains\n",
              static_cast<unsigned long long>(m.serviceCrashes),
              static_cast<unsigned long long>(m.serviceRestarts),
              static_cast<unsigned long long>(res.coldStarts),
              static_cast<unsigned long long>(m.checkpointSaves),
              static_cast<unsigned long long>(m.checkpointBytes),
              static_cast<unsigned long long>(m.predictiveDrains));
  std::printf("I/O path: %llu ops shipped, %llu retransmits, "
              "%llu ciod errors, %llu replays, "
              "%llu io failovers + %llu io reboots\n",
              static_cast<unsigned long long>(res.fship.requests),
              static_cast<unsigned long long>(res.fship.retransmits),
              static_cast<unsigned long long>(res.ciod.errors),
              static_cast<unsigned long long>(res.ciod.replays),
              static_cast<unsigned long long>(m.ioFailovers),
              static_cast<unsigned long long>(m.ioReboots));
  if (showFaultPlane) {
    std::printf("fault plane: %llu CE scrubbed, %llu coredumps shipped, "
                "%llu hangs detected, %llu nodes retired, "
                "mean requeue %.0f cycles (%llu samples)\n",
                static_cast<unsigned long long>(res.eccScrubbed),
                static_cast<unsigned long long>(res.coredumps),
                static_cast<unsigned long long>(m.hangsDetected),
                static_cast<unsigned long long>(m.nodesRetired),
                m.meanRequeueCycles,
                static_cast<unsigned long long>(m.requeueSamples));
  }
  if (showLinkPlane) {
    std::printf("link plane: %llu migrations (%llu requests, "
                "%llu fallbacks), %llu degraded jobs, %llu sick nodes, "
                "%llu cycles saved vs scratch\n",
                static_cast<unsigned long long>(m.migrations),
                static_cast<unsigned long long>(m.migrateRequests),
                static_cast<unsigned long long>(m.migrateFallbacks),
                static_cast<unsigned long long>(m.degradedJobs),
                static_cast<unsigned long long>(m.linkSickNodes),
                static_cast<unsigned long long>(m.migrateCyclesSaved));
    std::printf("route-around: %llu detours (+%llu hops), "
                "%llu unroutable, %llu CRC retries\n",
                static_cast<unsigned long long>(m.linkDetours),
                static_cast<unsigned long long>(m.linkDetourHops),
                static_cast<unsigned long long>(m.linkUnroutable),
                static_cast<unsigned long long>(m.linkCrcRetries));
  }
  std::printf("schedule hash: %016llx\n",
              static_cast<unsigned long long>(m.scheduleHash));
}

}  // namespace

int main(int argc, char** argv) {
  StreamParams p;
  std::string jsonPath;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      p.jobs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      p.nodes = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      p.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--fifo") == 0) {
      p.policy = svc::SchedPolicyKind::kFifo;
    } else if (std::strcmp(argv[i], "--crashes") == 0 && i + 1 < argc) {
      p.crashes = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--restart-delay") == 0 && i + 1 < argc) {
      p.restartDelay = static_cast<sim::Cycle>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--mem-ues") == 0 && i + 1 < argc) {
      p.memUes = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--ce-storms") == 0 && i + 1 < argc) {
      p.ceStorms = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--hangs") == 0 && i + 1 < argc) {
      p.coreHangs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--hang-timeout") == 0 && i + 1 < argc) {
      p.hangTimeout = static_cast<sim::Cycle>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--budget") == 0 && i + 1 < argc) {
      p.budget = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--link-deaths") == 0 && i + 1 < argc) {
      p.linkDeaths = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--link-storms") == 0 && i + 1 < argc) {
      p.linkStorms = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--ras-log") == 0 && i + 1 < argc) {
      p.rasLogPath = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      jsonPath = argv[++i];
    }
  }
  const bool computeFaults =
      p.memUes > 0 || p.ceStorms > 0 || p.coreHangs > 0;
  const bool linkFaults = p.linkDeaths > 0 || p.linkStorms > 0;

  std::printf("job-stream benchmark: %d jobs, %d nodes (%d FWK), "
              "policy=%s, node %d dies at cycle %llu, seed=%llu, "
              "%d svc crashes (outage %llu cycles)\n",
              p.jobs, p.nodes, p.fwkNodes,
              p.policy == svc::SchedPolicyKind::kFifo ? "fifo" : "backfill",
              p.failNode, static_cast<unsigned long long>(p.failCycle),
              static_cast<unsigned long long>(p.seed), p.crashes,
              static_cast<unsigned long long>(p.restartDelay));
  if (computeFaults) {
    std::printf("compute faults: %d UE panics, %d CE storms, %d core hangs "
                "(watchdog timeout %llu cycles, failure budget %u)\n",
                p.memUes, p.ceStorms, p.coreHangs,
                static_cast<unsigned long long>(p.hangTimeout), p.budget);
  }
  if (linkFaults) {
    std::printf("link faults: %d link deaths, %d CRC storms "
                "(migration armed, storm threshold 6)\n",
                p.linkDeaths, p.linkStorms);
  }

  const StreamResult run1 = runStream(p);
  if (!run1.drained) {
    std::fprintf(stderr, "stream did not drain\n");
    return 1;
  }
  printMetrics("run 1", run1, computeFaults, linkFaults);

  // Determinism witness: replay the identical stream.
  const StreamResult run2 = runStream(p);
  const bool match =
      run2.metrics.scheduleHash == run1.metrics.scheduleHash;
  std::printf("\nreplay schedule hash: %016llx (%s)\n",
              static_cast<unsigned long long>(run2.metrics.scheduleHash),
              match ? "MATCH" : "MISMATCH");

  if (!jsonPath.empty()) {
    sim::Json j = sim::Json::object();
    j.set("bench", "jobstream");
    j.set("jobs", static_cast<std::int64_t>(p.jobs));
    j.set("nodes", static_cast<std::int64_t>(p.nodes));
    j.set("seed", p.seed);
    j.set("policy",
          p.policy == svc::SchedPolicyKind::kFifo ? "fifo" : "backfill");
    j.set("crashes", static_cast<std::int64_t>(p.crashes));
    j.set("restart_delay", p.restartDelay);
    sim::Json fi = sim::Json::object();
    fi.set("mem_ues", static_cast<std::int64_t>(p.memUes));
    fi.set("ce_storms", static_cast<std::int64_t>(p.ceStorms));
    fi.set("core_hangs", static_cast<std::int64_t>(p.coreHangs));
    fi.set("hang_timeout", p.hangTimeout);
    fi.set("failure_budget", static_cast<std::int64_t>(p.budget));
    fi.set("link_deaths", static_cast<std::int64_t>(p.linkDeaths));
    fi.set("link_storms", static_cast<std::int64_t>(p.linkStorms));
    j.set("fault_injection", std::move(fi));
    j.set("metrics", run1.metrics.toJson());
    j.set("io", ioCountersJson(run1));
    j.set("cold_starts", run1.coldStarts);
    j.set("coredumps_shipped", run1.coredumps);
    j.set("ecc_scrubbed", run1.eccScrubbed);
    j.set("replay_hash_match", match);
    if (!j.writeFile(jsonPath)) {
      std::fprintf(stderr, "failed to write %s\n", jsonPath.c_str());
      return 1;
    }
    std::printf("wrote %s\n", jsonPath.c_str());
  }
  return match ? 0 : 1;
}

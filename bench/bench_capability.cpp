// Regenerates paper Tables II and III from the in-code capability
// registries of the two kernels.
//
// Table II: ease of USING each capability on CNK vs Linux.
// Table III: for capabilities listed "not avail", the ease of
// IMPLEMENTING them in that OS.
#include <cstdio>
#include <map>
#include <string>

#include "cnk/capability.hpp"
#include "fwk/capability.hpp"

int main() {
  using namespace bg;
  const auto cnk = cnk::cnkCapabilities();
  const auto lnx = fwk::linuxCapabilities();

  std::map<std::string, const kernel::Capability*> cnkBy, lnxBy;
  for (const auto& c : cnk) cnkBy[c.feature] = &c;
  for (const auto& c : lnx) lnxBy[c.feature] = &c;

  std::printf("Table II: ease of USING capabilities in CNK and Linux\n");
  std::printf("%-36s %-18s %-18s\n", "Description", "CNK", "Linux");
  std::printf("%s\n", std::string(74, '-').c_str());
  for (const auto& feature : kernel::capabilityFeatures()) {
    const auto* c = cnkBy.at(feature);
    const auto* l = lnxBy.at(feature);
    std::printf("%-36s %-18s %-18s\n", feature.c_str(),
                kernel::easeLabel(c->use), kernel::easeLabel(l->use));
  }

  std::printf("\nTable III: ease of IMPLEMENTING the capabilities not "
              "available in that OS\n");
  std::printf("%-36s %-18s %-18s\n", "Description", "CNK", "Linux");
  std::printf("%s\n", std::string(74, '-').c_str());
  for (const auto& feature : kernel::capabilityFeatures()) {
    const auto* c = cnkBy.at(feature);
    const auto* l = lnxBy.at(feature);
    const bool cnkMissing = c->use == kernel::Ease::kNotAvail;
    const bool lnxMissing = l->use == kernel::Ease::kNotAvail ||
                            l->use == kernel::Ease::kEasyToHard;
    if (!cnkMissing && !lnxMissing) continue;
    std::printf("%-36s %-18s %-18s\n", feature.c_str(),
                cnkMissing ? kernel::easeLabel(c->implement) : "avail",
                lnxMissing ? kernel::easeLabel(l->implement) : "avail");
  }
  return 0;
}

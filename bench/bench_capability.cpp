// Regenerates paper Tables II and III from the in-code capability
// registries of the two kernels.
//
// Table II: ease of USING each capability on CNK vs Linux.
// Table III: for capabilities listed "not avail", the ease of
// IMPLEMENTING them in that OS.
#include <cstdio>
#include <map>
#include <string>

#include "bench_util.hpp"
#include "cnk/capability.hpp"
#include "fwk/capability.hpp"

int main(int argc, char** argv) {
  using namespace bg;
  const char* jsonPath = bench::jsonPathArg(argc, argv);
  const auto cnk = cnk::cnkCapabilities();
  const auto lnx = fwk::linuxCapabilities();

  std::map<std::string, const kernel::Capability*> cnkBy, lnxBy;
  for (const auto& c : cnk) cnkBy[c.feature] = &c;
  for (const auto& c : lnx) lnxBy[c.feature] = &c;

  sim::Json tableUse = sim::Json::array();
  sim::Json tableImpl = sim::Json::array();

  std::printf("Table II: ease of USING capabilities in CNK and Linux\n");
  std::printf("%-36s %-18s %-18s\n", "Description", "CNK", "Linux");
  std::printf("%s\n", std::string(74, '-').c_str());
  for (const auto& feature : kernel::capabilityFeatures()) {
    const auto* c = cnkBy.at(feature);
    const auto* l = lnxBy.at(feature);
    std::printf("%-36s %-18s %-18s\n", feature.c_str(),
                kernel::easeLabel(c->use), kernel::easeLabel(l->use));
    sim::Json row = sim::Json::object();
    row.set("feature", feature);
    row.set("cnk", kernel::easeLabel(c->use));
    row.set("linux", kernel::easeLabel(l->use));
    tableUse.push(std::move(row));
  }

  std::printf("\nTable III: ease of IMPLEMENTING the capabilities not "
              "available in that OS\n");
  std::printf("%-36s %-18s %-18s\n", "Description", "CNK", "Linux");
  std::printf("%s\n", std::string(74, '-').c_str());
  for (const auto& feature : kernel::capabilityFeatures()) {
    const auto* c = cnkBy.at(feature);
    const auto* l = lnxBy.at(feature);
    const bool cnkMissing = c->use == kernel::Ease::kNotAvail;
    const bool lnxMissing = l->use == kernel::Ease::kNotAvail ||
                            l->use == kernel::Ease::kEasyToHard;
    if (!cnkMissing && !lnxMissing) continue;
    std::printf("%-36s %-18s %-18s\n", feature.c_str(),
                cnkMissing ? kernel::easeLabel(c->implement) : "avail",
                lnxMissing ? kernel::easeLabel(l->implement) : "avail");
    sim::Json row = sim::Json::object();
    row.set("feature", feature);
    row.set("cnk",
            cnkMissing ? kernel::easeLabel(c->implement) : "avail");
    row.set("linux",
            lnxMissing ? kernel::easeLabel(l->implement) : "avail");
    tableImpl.push(std::move(row));
  }

  sim::Json j = sim::Json::object();
  j.set("bench", "capability");
  j.set("features",
        static_cast<std::int64_t>(kernel::capabilityFeatures().size()));
  j.set("table_use", std::move(tableUse));
  j.set("table_implement", std::move(tableImpl));
  if (!bench::maybeWriteJson(jsonPath, j)) return 1;
  return 0;
}

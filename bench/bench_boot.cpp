// Regenerates paper §III's boot-time comparison under the 10 Hz VHDL
// cycle-accurate simulator: "CNK boots in a couple of hours, while
// Linux takes weeks. Even stripped down, Linux takes days."
//
// Both kernels' boot sequences are executed on the simulated node; the
// measured simulated-cycle totals are converted to wall time at the
// VHDL rate (10 cycles/second).
#include <cstdio>

#include "bench_util.hpp"
#include "cnk/cnk_kernel.hpp"
#include "fwk/fwk_kernel.hpp"
#include "hw/machine.hpp"

namespace {

using namespace bg;

constexpr double kVhdlHz = 10.0;

struct BootRow {
  const char* name;
  sim::Cycle cycles;
  std::size_t phases;
};

template <typename MakeKernel>
BootRow bootOne(const char* name, MakeKernel make) {
  hw::MachineConfig mc;
  mc.computeNodes = 1;
  hw::Machine machine(mc);
  auto kern = make(machine.node(0));
  kern->boot();
  machine.engine().run();
  return BootRow{name, kern->bootCycles(), kern->bootLog().size()};
}

void printRow(const BootRow& r) {
  const double secs = static_cast<double>(r.cycles) / kVhdlHz;
  const double hours = secs / 3600.0;
  const double days = hours / 24.0;
  std::printf("%-22s %12llu cycles  %8zu phases  %10.1f h  %8.2f d\n",
              r.name, static_cast<unsigned long long>(r.cycles), r.phases,
              hours, days);
}

bg::sim::Json rowToJson(const BootRow& r) {
  const double hours = static_cast<double>(r.cycles) / kVhdlHz / 3600.0;
  bg::sim::Json j = bg::sim::Json::object();
  j.set("kernel", r.name);
  j.set("boot_cycles", static_cast<std::uint64_t>(r.cycles));
  j.set("boot_phases", static_cast<std::uint64_t>(r.phases));
  j.set("vhdl_hours", hours);
  j.set("vhdl_days", hours / 24.0);
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("Boot cost under a 10 Hz VHDL cycle-accurate simulator "
              "(paper SectionIII)\n");
  std::printf("%-22s %19s  %14s  %12s  %10s\n", "kernel", "boot work",
              "boot phases", "@10Hz", "");
  const BootRow cnk = bootOne("CNK", [](hw::Node& n) {
    return std::make_unique<cnk::CnkKernel>(n);
  });
  printRow(cnk);
  const BootRow full = bootOne("Linux (full)", [](hw::Node& n) {
    return std::make_unique<fwk::FwkKernel>(n);
  });
  printRow(full);
  const BootRow stripped = bootOne("Linux (stripped)", [](hw::Node& n) {
    fwk::FwkKernel::Config cfg;
    cfg.strippedBoot = true;
    return std::make_unique<fwk::FwkKernel>(n, cfg);
  });
  printRow(stripped);
  std::printf("\npaper: CNK boots in a couple of hours at 10Hz; Linux "
              "takes weeks; stripped Linux days.\n");

  if (const char* jsonPath = bg::bench::jsonPathArg(argc, argv)) {
    bg::sim::Json j = bg::sim::Json::object();
    j.set("bench", "boot");
    j.set("vhdl_hz", kVhdlHz);
    bg::sim::Json rows = bg::sim::Json::array();
    rows.push(rowToJson(cnk));
    rows.push(rowToJson(full));
    rows.push(rowToJson(stripped));
    j.set("kernels", rows);
    if (!bg::bench::maybeWriteJson(jsonPath, j)) return 1;
  }
  return 0;
}

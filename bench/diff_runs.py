#!/usr/bin/env python3
"""Diff two benchmark --json runs.

Walks both JSON trees, compares every numeric leaf they share, and
reports the relative change. Exits nonzero when any leaf moved by more
than the tolerance, so CI can pin a baseline run and fail on drift:

    bench_jobstream --json base.json
    ... change something ...
    bench_jobstream --json new.json
    python3 bench/diff_runs.py base.json new.json --tol-pct 5

Non-numeric leaves (names, hashes, booleans) are compared for equality
and reported when they differ, but only numeric drift beyond tolerance
fails the run. Keys present in just one file are listed as added or
removed and do not fail the diff.
"""

import argparse
import json
import sys


def leaves(obj, prefix=""):
    """Yield (path, value) for every leaf in a JSON tree."""
    if isinstance(obj, dict):
        for k, v in obj.items():
            yield from leaves(v, f"{prefix}/{k}")
    elif isinstance(obj, list):
        for i, v in enumerate(obj):
            yield from leaves(v, f"{prefix}[{i}]")
    else:
        yield prefix, obj


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("base", help="baseline run JSON")
    ap.add_argument("new", help="new run JSON")
    ap.add_argument("--tol-pct", type=float, default=5.0,
                    help="allowed relative change per numeric leaf "
                         "(percent, default 5)")
    ap.add_argument("--abs-floor", type=float, default=1e-9,
                    help="absolute deltas below this never fail "
                         "(guards near-zero baselines)")
    ap.add_argument("--all", action="store_true",
                    help="print every compared leaf, not just changes")
    args = ap.parse_args()

    with open(args.base) as f:
        base = dict(leaves(json.load(f)))
    with open(args.new) as f:
        new = dict(leaves(json.load(f)))

    removed = sorted(set(base) - set(new))
    added = sorted(set(new) - set(base))
    shared = sorted(set(base) & set(new))

    failures = 0
    for path in shared:
        b, n = base[path], new[path]
        if is_number(b) and is_number(n):
            delta = n - b
            if abs(delta) <= args.abs_floor:
                if args.all:
                    print(f"  ok      {path}: {b}")
                continue
            rel = abs(delta) / abs(b) * 100.0 if b != 0 else float("inf")
            over = rel > args.tol_pct
            if over or args.all:
                tag = "FAIL" if over else "ok"
                print(f"  {tag:7} {path}: {b} -> {n} "
                      f"({'+' if delta >= 0 else ''}{rel:.2f}%)"
                      if b != 0 else
                      f"  {tag:7} {path}: {b} -> {n}")
            failures += over
        elif b != n:
            print(f"  CHANGED {path}: {b!r} -> {n!r}")

    for path in removed:
        print(f"  removed {path}")
    for path in added:
        print(f"  added   {path}")

    print(f"{len(shared)} leaves compared, {failures} over "
          f"{args.tol_pct}% tolerance, "
          f"{len(added)} added, {len(removed)} removed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

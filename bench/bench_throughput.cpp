// Regenerates paper Fig 8: throughput of the rendezvous protocol for a
// near-neighbour exchange, as a function of message size.
//
// Each rank sends to its +1 ring neighbour and receives from its -1
// neighbour (dimension-ordered routing gives each pair its own links),
// using MPI rendezvous. Reported per-node throughput should rise with
// message size and saturate at the per-link bandwidth (425 MB/s on
// BG/P, which is also this model's link rate).
//
// A second series runs the same exchange through the Linux-style
// kernel path (per-page pinning, bounce buffers) to show what the
// paper means by "these came effectively for free with CNK ... but
// modifying a vanilla Linux ... would be difficult" (§V-C).
#include <cstring>

#include "bench_util.hpp"
#include "kernel/syscalls.hpp"
#include "runtime/app.hpp"
#include "runtime/rt_ids.hpp"
#include "vm/builder.hpp"

namespace {

using namespace bg;
using vm::Reg;

constexpr Reg rIter = 16;
constexpr Reg rBuf = 17;
constexpr Reg rT = 18;
constexpr Reg rDst = 19;
constexpr Reg rSrc = 20;
constexpr int kIters = 8;

/// Ring exchange: send `bytes` to (rank+1)%npes, receive from
/// (rank-1+npes)%npes, repeated kIters times; the main thread samples
/// total exchange cycles.
vm::Program exchangeProgram(std::uint64_t bytes) {
  vm::ProgramBuilder b("exchange");
  b.mov(rBuf, 10);

  // dst = rank+1; if (dst >= npes) dst -= npes;
  b.addi(rDst, 1, 1);
  const std::size_t noWrapD = b.emitForwardBranch(vm::Op::kBlt, rDst, 2);
  b.sub(rDst, rDst, 2);
  b.patchHere(noWrapD);
  // src = rank-1; if (rank == 0) src = npes-1;
  const std::size_t rankZero = b.emitForwardBranch(vm::Op::kBeqz, 1);
  b.addi(rSrc, 1, -1);
  const std::size_t srcDone = b.emitForwardBranch(vm::Op::kJump);
  b.patchHere(rankZero);
  b.addi(rSrc, 2, -1);
  b.patchHere(srcDone);

  b.rtcall(static_cast<std::int64_t>(rt::Rt::kMpiBarrier));
  b.readTb(rT);
  b.sample(rT);

  const auto top = b.loopBegin(rIter, kIters);
  // Non-blocking-ish: send first (rendezvous blocks until drained, the
  // partner's recv posts concurrently on its own core).
  // Even ranks send then recv; odd ranks recv then send — avoids the
  // classic head-to-head rendezvous deadlock on a blocking API.
  b.andr(rT, 1, 1);  // placeholder to keep rT warm (overwritten below)
  {
    // parity test: r1 & 1
    constexpr Reg rPar = 21;
    b.li(rPar, 1);
    b.andr(rPar, 1, rPar);
    const std::size_t odd = b.emitForwardBranch(vm::Op::kBnez, rPar);
    // even: send, recv
    b.mov(1, rDst);
    b.mov(2, rBuf);
    b.li(3, static_cast<std::int64_t>(bytes));
    b.li(4, 9);
    b.rtcall(static_cast<std::int64_t>(rt::Rt::kMpiSend));
    b.mov(1, rSrc);
    b.mov(2, rBuf);
    b.addi(2, 2, 1 << 22);
    b.li(3, static_cast<std::int64_t>(bytes));
    b.li(4, 9);
    b.rtcall(static_cast<std::int64_t>(rt::Rt::kMpiRecv));
    const std::size_t done = b.emitForwardBranch(vm::Op::kJump);
    // odd: recv, send
    b.patchHere(odd);
    b.mov(1, rSrc);
    b.mov(2, rBuf);
    b.addi(2, 2, 1 << 22);
    b.li(3, static_cast<std::int64_t>(bytes));
    b.li(4, 9);
    b.rtcall(static_cast<std::int64_t>(rt::Rt::kMpiRecv));
    b.mov(1, rDst);
    b.mov(2, rBuf);
    b.li(3, static_cast<std::int64_t>(bytes));
    b.li(4, 9);
    b.rtcall(static_cast<std::int64_t>(rt::Rt::kMpiSend));
    b.patchHere(done);
  }
  b.loopEnd(rIter, top);

  b.readTb(rT);
  b.sample(rT);
  b.li(vm::kArg0, 0);
  b.syscall(static_cast<std::int64_t>(kernel::Sys::kExit));
  return std::move(b).build();
}

/// Returns per-node throughput in MB/s for the given message size.
double runExchange(std::uint64_t bytes, rt::KernelKind kind, int nodes) {
  rt::ClusterConfig cfg;
  cfg.computeNodes = nodes;
  cfg.kernel = kind;
  // Ring exchange with rendezvous for every size in the sweep.
  cfg.mpi.eagerThreshold = 512;
  rt::Cluster cluster(cfg);
  if (!cluster.bootAll(400'000'000)) return -1;

  kernel::JobSpec job;
  job.exe = kernel::ElfImage::makeExecutable("exch", exchangeProgram(bytes),
                                             1 << 20, 1 << 20);
  std::vector<std::vector<std::uint64_t>> samples(nodes);
  for (int r = 0; r < nodes; ++r) cluster.attachSamples(r, 0, &samples[r]);
  if (!cluster.loadJob(job) || !cluster.run(4'000'000'000ULL)) return -1;

  // Slowest rank bounds the exchange.
  sim::Cycle worst = 0;
  for (const auto& s : samples) {
    if (s.size() == 2) worst = std::max(worst, s[1] - s[0]);
  }
  if (worst == 0) return -1;
  const double secs = sim::cyclesToSec(worst);
  // An exchange moves bytes in AND out of every node per iteration.
  const double mb = 2.0 * static_cast<double>(bytes) * kIters / 1e6;
  return mb / secs;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const char* jsonPath = bg::bench::jsonPathArg(argc, argv);
  const int nodes = 8;

  std::vector<std::uint64_t> sizes = {1 << 10, 4 << 10,  16 << 10,
                                      64 << 10, 256 << 10, 1 << 20,
                                      4 << 20};
  if (quick) sizes.resize(5);

  std::printf("Fig 8: rendezvous near-neighbour exchange throughput "
              "(%d-node ring)\n", nodes);
  std::printf("link rate: 425 MB/s (0.5 B/cycle at 850MHz)\n");
  bg::bench::printRule();
  std::printf("%12s %18s %18s\n", "bytes", "CNK MB/s/node",
              "Linux-path MB/s/node");
  sim::Json series = sim::Json::array();
  for (std::uint64_t sz : sizes) {
    const double cnk = runExchange(sz, rt::KernelKind::kCnk, nodes);
    const double fwk = runExchange(sz, rt::KernelKind::kFwk, nodes);
    std::printf("%12llu %18.1f %18.1f\n",
                static_cast<unsigned long long>(sz), cnk, fwk);
    sim::Json row = sim::Json::object();
    row.set("bytes", sz);
    row.set("cnk_mb_s", cnk);
    row.set("fwk_mb_s", fwk);
    series.push(std::move(row));
  }
  std::printf("\npaper shape: throughput rises with message size and "
              "saturates at link bandwidth;\nthe kernel-mediated path "
              "saturates lower and later.\n");

  sim::Json j = sim::Json::object();
  j.set("bench", "throughput");
  j.set("nodes", static_cast<std::int64_t>(nodes));
  j.set("iters", static_cast<std::int64_t>(kIters));
  j.set("quick", quick);
  j.set("series", std::move(series));
  if (!bg::bench::maybeWriteJson(jsonPath, j)) return 1;
  return 0;
}

// Regenerates paper Table I: latency for various programming models in
// SMP mode — DCMF eager / put / get, MPI eager / rendezvous, ARMCI
// blocking put / get — between two adjacent nodes on the torus.
//
// Measurement: simulated-cycle timestamps from the machine-global
// timebase. One-way operations are timed sender-timestamp to
// receiver-timestamp (or to remote-visibility for put); request/
// response operations are timed at the requester.
//
// Paper reference (us): DCMF eager 1.6, MPI eager 2.4, MPI rendezvous
// 5.6, DCMF put 0.9, DCMF get 1.6, ARMCI put 2.0, ARMCI get 3.3.
#include <cstring>
#include <functional>
#include <string>

#include "bench_util.hpp"
#include "kernel/syscalls.hpp"
#include "runtime/app.hpp"
#include "runtime/rt_ids.hpp"
#include "vm/builder.hpp"

namespace {

using namespace bg;
using vm::Reg;

constexpr Reg rIter = 16;
constexpr Reg rBuf = 17;
constexpr Reg rT = 18;
constexpr int kIters = 32;

enum class Proto {
  kDcmfEager,
  kMpiEager,
  kMpiRendezvous,
  kDcmfPut,
  kDcmfGet,
  kArmciPut,
  kArmciGet,
};

bool isOneSided(Proto p) {
  return p == Proto::kDcmfPut || p == Proto::kDcmfGet ||
         p == Proto::kArmciPut || p == Proto::kArmciGet;
}

// The paper's Table I measures small-message latency; the rendezvous
// row uses a payload just over the (benchmark-lowered) eager
// threshold so the handshake, not serialization, dominates.
constexpr std::uint64_t kRndvEagerThreshold = 256;

std::uint64_t payloadBytes(Proto p) {
  return p == Proto::kMpiRendezvous ? 512 : 8;
}

void emitBarrier(vm::ProgramBuilder& b) {
  b.rtcall(static_cast<std::int64_t>(rt::Rt::kMpiBarrier));
}

/// Build the two-rank ping program for one protocol. Rank 0 initiates;
/// rank 1 receives (two-sided) or just barriers along (one-sided).
vm::Program pingProgram(Proto p) {
  vm::ProgramBuilder b("latency");
  const std::uint64_t bytes = payloadBytes(p);

  b.mov(rBuf, 10);  // heap base buffer
  // Rank test: r1 = rank at startup.
  const std::size_t toRecv = b.emitForwardBranch(vm::Op::kBnez, 1);

  // ---- rank 0: initiator ----
  {
    const auto top = b.loopBegin(rIter, kIters);
    emitBarrier(b);
    b.readTb(rT);
    b.sample(rT);
    switch (p) {
      case Proto::kDcmfEager:
        b.li(1, 1);          // dst rank
        b.mov(2, rBuf);
        b.li(3, static_cast<std::int64_t>(bytes));
        b.li(4, 7);          // tag
        b.rtcall(static_cast<std::int64_t>(rt::Rt::kDcmfSend));
        break;
      case Proto::kMpiEager:
      case Proto::kMpiRendezvous:
        b.li(1, 1);
        b.mov(2, rBuf);
        b.li(3, static_cast<std::int64_t>(bytes));
        b.li(4, 7);
        b.rtcall(static_cast<std::int64_t>(rt::Rt::kMpiSend));
        break;
      case Proto::kDcmfPut:
        b.li(1, 1);
        b.mov(2, rBuf);
        b.mov(3, rBuf);      // same vaddr layout on the peer
        b.addi(3, 3, 512);
        b.li(4, static_cast<std::int64_t>(bytes));
        b.li(5, 1);          // wait for remote visibility
        b.rtcall(static_cast<std::int64_t>(rt::Rt::kDcmfPut));
        break;
      case Proto::kDcmfGet:
        b.li(1, 1);
        b.mov(2, rBuf);
        b.addi(2, 2, 512);   // remote source
        b.mov(3, rBuf);      // local destination
        b.li(4, static_cast<std::int64_t>(bytes));
        b.rtcall(static_cast<std::int64_t>(rt::Rt::kDcmfGet));
        break;
      case Proto::kArmciPut:
        b.li(1, 1);
        b.mov(2, rBuf);
        b.mov(3, rBuf);
        b.addi(3, 3, 512);
        b.li(4, static_cast<std::int64_t>(bytes));
        b.rtcall(static_cast<std::int64_t>(rt::Rt::kArmciPut));
        break;
      case Proto::kArmciGet:
        b.li(1, 1);
        b.mov(2, rBuf);
        b.addi(2, 2, 512);
        b.mov(3, rBuf);
        b.li(4, static_cast<std::int64_t>(bytes));
        b.rtcall(static_cast<std::int64_t>(rt::Rt::kArmciGet));
        break;
    }
    if (isOneSided(p)) {
      // Completion timestamp at the initiator.
      b.readTb(rT);
      b.sample(rT);
    }
    b.loopEnd(rIter, top);
    b.li(vm::kArg0, 0);
    b.syscall(static_cast<std::int64_t>(kernel::Sys::kExit));
  }

  // ---- rank 1: target ----
  b.patchHere(toRecv);
  {
    const auto top = b.loopBegin(rIter, kIters);
    emitBarrier(b);
    if (!isOneSided(p)) {
      b.li(1, 0);  // source rank
      b.mov(2, rBuf);
      b.addi(2, 2, 1024);
      b.li(3, static_cast<std::int64_t>(bytes));
      b.li(4, 7);
      b.rtcall(static_cast<std::int64_t>(
          p == Proto::kDcmfEager ? rt::Rt::kDcmfRecv : rt::Rt::kMpiRecv));
      b.readTb(rT);
      b.sample(rT);
    }
    b.loopEnd(rIter, top);
    b.li(vm::kArg0, 0);
    b.syscall(static_cast<std::int64_t>(kernel::Sys::kExit));
  }
  return std::move(b).build();
}

struct Row {
  const char* name;
  Proto proto;
  double paperUs;
};

double measure(Proto p, rt::KernelKind kind) {
  rt::ClusterConfig cfg;
  cfg.computeNodes = 2;
  cfg.kernel = kind;
  if (p == Proto::kMpiRendezvous) {
    cfg.mpi.eagerThreshold = kRndvEagerThreshold;
  }
  rt::Cluster cluster(cfg);
  if (!cluster.bootAll(200'000'000)) return -1;

  kernel::JobSpec job;
  job.exe = kernel::ElfImage::makeExecutable("lat", pingProgram(p));
  std::vector<std::uint64_t> s0, s1;
  cluster.attachSamples(0, 0, &s0);
  cluster.attachSamples(1, 0, &s1);
  if (!cluster.loadJob(job) || !cluster.run(1'000'000'000ULL)) return -1;

  std::vector<std::uint64_t> lat;
  if (isOneSided(p)) {
    // s0 alternates T0, T1.
    for (std::size_t i = 0; i + 1 < s0.size(); i += 2) {
      lat.push_back(s0[i + 1] - s0[i]);
    }
  } else {
    const std::size_t n = std::min(s0.size(), s1.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (s1[i] > s0[i]) lat.push_back(s1[i] - s0[i]);
    }
  }
  if (lat.size() > 4) lat.erase(lat.begin(), lat.begin() + 2);  // warmup
  const auto st = bg::bench::computeStats(lat);
  return sim::cyclesToUs(static_cast<sim::Cycle>(st.mean));
}

}  // namespace

int main(int argc, char** argv) {
  bool compareFwk = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fwk") == 0) compareFwk = true;
  }
  const char* jsonPath = bg::bench::jsonPathArg(argc, argv);

  const Row rows[] = {
      {"DCMF Eager One-way", Proto::kDcmfEager, 1.6},
      {"MPI Eager One-way", Proto::kMpiEager, 2.4},
      {"MPI Rendezvous One-way", Proto::kMpiRendezvous, 5.6},
      {"DCMF Put", Proto::kDcmfPut, 0.9},
      {"DCMF Get", Proto::kDcmfGet, 1.6},
      {"ARMCI blocking Put", Proto::kArmciPut, 2.0},
      {"ARMCI blocking Get", Proto::kArmciGet, 3.3},
  };

  sim::Json jcnk = sim::Json::object();
  std::printf("Table I: latency for various programming models, SMP mode\n");
  bg::bench::printRule();
  std::printf("%-26s %14s %12s\n", "Protocol", "measured(us)", "paper(us)");
  for (const Row& r : rows) {
    const double us = measure(r.proto, rt::KernelKind::kCnk);
    std::printf("%-26s %14.2f %12.1f\n", r.name, us, r.paperUs);
    sim::Json row = sim::Json::object();
    row.set("measured_us", us);
    row.set("paper_us", r.paperUs);
    jcnk.set(r.name, std::move(row));
  }

  sim::Json jfwk = sim::Json::object();
  if (compareFwk) {
    std::printf("\nSame operations with a Linux-style kernel path "
                "(per-page pinning + bounce buffers):\n");
    bg::bench::printRule();
    for (const Row& r : rows) {
      const double us = measure(r.proto, rt::KernelKind::kFwk);
      std::printf("%-26s %14.2f %12s\n", r.name, us, "-");
      sim::Json row = sim::Json::object();
      row.set("measured_us", us);
      jfwk.set(r.name, std::move(row));
    }
  }

  if (jsonPath != nullptr) {
    sim::Json j = sim::Json::object();
    j.set("bench", "latency");
    j.set("cnk", std::move(jcnk));
    if (compareFwk) j.set("fwk", std::move(jfwk));
    if (!bg::bench::maybeWriteJson(jsonPath, j)) return 1;
  }
  return 0;
}

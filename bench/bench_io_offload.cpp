// Regenerates paper Fig 2 / §IV-A / §VII-A as a measurement: the
// function-shipped I/O path end-to-end, the 1:1 ioproxy mapping, and
// the reduction in filesystem clients ("up to two orders of magnitude"
// — every compute process funnels through its pset's single I/O node).
//
// Phase 2 measures the reliability layer (PR 3): the same checkpoint
// kernel runs with a cold spare I/O node, the CIOD is fail-stopped
// mid-run, and the bench plays service node — it watches for the
// compute kernels' timeout-storm declaration and re-homes the pset to
// the spare. Reported: detection latency, time to completion after the
// crash, overhead vs. the fault-free run, and whether every rank's
// results (fd numbers, bytes read back) match the fault-free run
// exactly. --json emits everything plus the CIOD/fship counters for
// bench/diff_runs.py.
#include <cstdio>
#include <functional>
#include <vector>

#include "apps/io_kernel.hpp"
#include "bench_util.hpp"
#include "runtime/app.hpp"

namespace {
using namespace bg;

sim::Json fshipJson(const cnk::FshipStats& f) {
  sim::Json j = sim::Json::object();
  j.set("requests", f.requests);
  j.set("retransmits", f.retransmits);
  j.set("timeouts", f.timeouts);
  j.set("duplicate_replies", f.duplicateReplies);
  j.set("corrupt_replies", f.corruptReplies);
  j.set("eio_returns", f.eioReturns);
  j.set("rehomes", f.rehomes);
  j.set("restores_sent", f.restoresSent);
  return j;
}

sim::Json ciodJson(const io::CiodStats& c) {
  sim::Json j = sim::Json::object();
  j.set("requests", c.requests);
  j.set("errors", c.errors);
  j.set("bad_checksums", c.badChecksums);
  j.set("replays", c.replays);
  j.set("stale_drops", c.staleDrops);
  j.set("restores", c.restores);
  return j;
}

// One failover-phase run; crashAt == 0 means fault-free control.
struct FailoverRun {
  bool ok = false;
  sim::Cycle elapsed = 0;
  sim::Cycle detectCycle = 0;  // first timeout-storm declaration seen
  sim::Cycle failoverCycle = 0;
  std::vector<std::vector<std::uint64_t>> samples;
  cnk::FshipStats fship;
  io::CiodStats ciod;
};

FailoverRun runFailoverPhase(int computeNodes, int procsPerNode,
                             const apps::IoKernelParams& ip,
                             sim::Cycle crashAt) {
  rt::ClusterConfig cfg;
  cfg.computeNodes = computeNodes;
  cfg.ioNodes = 1;
  cfg.computeNodesPerIoNode = computeNodes;
  cfg.spareIoNodes = 1;
  // Tight watchdogs so the storm declares quickly; a long grace parks
  // in-flight ops for the failover instead of failing them with EIO.
  cfg.cnk.fship.requestTimeout = 500'000;
  cfg.cnk.fship.maxTimeout = 2'000'000;
  cfg.cnk.fship.maxRetries = 3;
  cfg.cnk.fship.failoverGrace = 200'000'000;

  FailoverRun r;
  rt::Cluster cluster(cfg);
  if (!cluster.bootAll(600'000'000)) return r;

  kernel::JobSpec job;
  job.processes = procsPerNode;
  job.exe = apps::ioKernelImage(ip);

  const int ranks = computeNodes * procsPerNode;
  r.samples.resize(static_cast<std::size_t>(ranks));
  for (int rank = 0; rank < ranks; ++rank) {
    cluster.attachSamples(rank, 0, &r.samples[static_cast<std::size_t>(rank)]);
  }

  sim::Engine& eng = cluster.engine();
  const sim::Cycle start = eng.now();
  bool failedOver = false;
  std::function<void()> watchStorm = [&] {
    if (failedOver) return;
    bool dead = false;
    for (int n = 0; n < computeNodes; ++n) {
      if (auto* c = cluster.cnkOn(n); c != nullptr && c->fship().ioNodeDead()) {
        dead = true;
      }
    }
    if (dead) {
      // The bench plays service node: react to the RAS storm by
      // re-homing the pset onto the cold spare.
      r.detectCycle = eng.now();
      cluster.failoverIoNode(0);
      r.failoverCycle = eng.now();
      failedOver = true;
      return;
    }
    eng.schedule(50'000, watchStorm);
  };
  if (crashAt != 0) {
    eng.scheduleAt(crashAt, [&cluster] { cluster.ciod(0).crash(); });
    eng.scheduleAt(crashAt + 50'000, watchStorm);
  }

  if (!cluster.loadJob(job) || !cluster.run(8'000'000'000ULL)) return r;
  r.elapsed = eng.now() - start;
  r.fship = cluster.fshipTotals();
  r.ciod = cluster.ciodTotals();
  r.ok = true;
  return r;
}

/// Result-equality oracle: fd numbers (sample 0) and verification
/// read-back bytes (sample 2) must match the fault-free run; sample 1
/// is elapsed cycles and legitimately differs under faults.
bool sameResults(const FailoverRun& a, const FailoverRun& b) {
  if (a.samples.size() != b.samples.size()) return false;
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    if (a.samples[i].size() < 3 || b.samples[i].size() < 3) return false;
    if (a.samples[i][0] != b.samples[i][0]) return false;
    if (a.samples[i][2] != b.samples[i][2]) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const char* jsonPath = bg::bench::jsonPathArg(argc, argv);
  const int computeNodes = 8;
  const int procsPerNode = 4;  // VN mode

  rt::ClusterConfig cfg;
  cfg.computeNodes = computeNodes;
  cfg.ioNodes = 1;
  cfg.computeNodesPerIoNode = computeNodes;
  rt::Cluster cluster(cfg);
  if (!cluster.bootAll(600'000'000)) {
    std::fprintf(stderr, "boot failed\n");
    return 1;
  }

  apps::IoKernelParams ip;
  ip.chunks = 6;
  ip.chunkBytes = 32 << 10;
  kernel::JobSpec job;
  job.processes = procsPerNode;
  job.exe = apps::ioKernelImage(ip);

  const int ranks = computeNodes * procsPerNode;
  std::vector<std::vector<std::uint64_t>> samples(ranks);
  for (int r = 0; r < ranks; ++r) cluster.attachSamples(r, 0, &samples[r]);

  const sim::Cycle start = cluster.engine().now();
  if (!cluster.loadJob(job) || !cluster.run(8'000'000'000ULL)) {
    std::fprintf(stderr, "run failed\n");
    return 1;
  }
  const sim::Cycle elapsed = cluster.engine().now() - start;

  int opened = 0;
  std::uint64_t readBack = 0;
  for (const auto& s : samples) {
    if (s.size() >= 3) {
      if (static_cast<std::int64_t>(s[0]) >= 0) ++opened;
      readBack += s[2];
    }
  }

  const io::Ciod& ciod = cluster.ciod(0);
  const io::CiodStats& st = ciod.stats();
  const cnk::FshipStats fs = cluster.fshipTotals();
  const std::uint64_t totalWritten =
      static_cast<std::uint64_t>(ranks) * ip.chunks * ip.chunkBytes;

  std::printf("Function-shipped I/O offload (paper Fig 2, SectionIV-A)\n");
  bg::bench::printRule();
  std::printf("compute processes              %12d\n", ranks);
  std::printf("ranks with successful open()   %12d\n", opened);
  std::printf("ioproxies at CIOD (1:1)        %12zu\n", ciod.proxyCount());
  std::printf("dedicated proxy threads        %12zu\n",
              ciod.proxyThreadCount());
  std::printf("fship requests served          %12llu\n",
              static_cast<unsigned long long>(st.requests));
  std::printf("protocol errors                %12llu\n",
              static_cast<unsigned long long>(st.errors));
  std::printf("retransmits / timeouts         %12llu / %llu\n",
              static_cast<unsigned long long>(fs.retransmits),
              static_cast<unsigned long long>(fs.timeouts));
  std::printf("bytes written (app)            %12llu\n",
              static_cast<unsigned long long>(totalWritten));
  std::printf("bytes read back (verify)       %12llu\n",
              static_cast<unsigned long long>(readBack));
  std::printf("filesystem clients seen by FS  %12d (vs %d app processes"
              " -> %.0fx reduction)\n",
              cluster.machine().numIoNodes(), ranks,
              static_cast<double>(ranks) /
                  cluster.machine().numIoNodes());
  std::printf("aggregate write bandwidth      %9.1f MB/s over %.2f ms\n",
              static_cast<double>(totalWritten) / 1e6 /
                  sim::cyclesToSec(elapsed),
              sim::cyclesToUs(elapsed) / 1000.0);

  // --- Phase 2: CIOD crash + failover to a cold spare ------------------
  apps::IoKernelParams fp;
  fp.chunks = 3;
  fp.chunkBytes = 4 << 10;
  const int fNodes = 4;
  const int fProcs = 2;

  const FailoverRun control = runFailoverPhase(fNodes, fProcs, fp, 0);
  if (!control.ok) {
    std::fprintf(stderr, "failover control run failed\n");
    return 1;
  }
  const sim::Cycle crashAt = control.elapsed / 3;
  const FailoverRun faulted = runFailoverPhase(fNodes, fProcs, fp, crashAt);
  if (!faulted.ok) {
    std::fprintf(stderr, "failover run did not complete\n");
    return 1;
  }
  const bool match = sameResults(control, faulted);
  const sim::Cycle overhead =
      faulted.elapsed > control.elapsed ? faulted.elapsed - control.elapsed
                                        : 0;

  std::printf("\nCIOD crash + failover to cold spare (PR 3 reliability)\n");
  bg::bench::printRule();
  std::printf("CIOD fail-stop at cycle        %12llu\n",
              static_cast<unsigned long long>(crashAt));
  std::printf("timeout-storm detect latency   %12llu cycles\n",
              static_cast<unsigned long long>(faulted.detectCycle - crashAt));
  std::printf("completion after crash         %12llu cycles\n",
              static_cast<unsigned long long>(faulted.elapsed - crashAt));
  std::printf("overhead vs fault-free run     %12llu cycles (%.1f%%)\n",
              static_cast<unsigned long long>(overhead),
              100.0 * static_cast<double>(overhead) /
                  static_cast<double>(control.elapsed));
  std::printf("ioproxy restores on spare      %12llu\n",
              static_cast<unsigned long long>(faulted.ciod.restores));
  std::printf("retransmits / replay-served    %12llu / %llu\n",
              static_cast<unsigned long long>(faulted.fship.retransmits),
              static_cast<unsigned long long>(faulted.ciod.replays));
  std::printf("results identical to fault-free %11s\n",
              match ? "yes" : "NO");

  std::printf("\npaper: the offload keeps POSIX semantics on the compute "
              "node while the I/O node's Linux\nprovides the filesystem; "
              "client count drops by the pset fan-in.\n");

  if (jsonPath != nullptr) {
    sim::Json j = sim::Json::object();
    j.set("bench", "io_offload");
    j.set("processes", static_cast<std::int64_t>(ranks));
    j.set("opened", static_cast<std::int64_t>(opened));
    j.set("bytes_written", totalWritten);
    j.set("bytes_read_back", readBack);
    j.set("elapsed_cycles", elapsed);
    j.set("bandwidth_mb_s", static_cast<double>(totalWritten) / 1e6 /
                                sim::cyclesToSec(elapsed));
    j.set("ciod", ciodJson(st));
    j.set("fship", fshipJson(fs));
    sim::Json f = sim::Json::object();
    f.set("crash_cycle", crashAt);
    f.set("detect_cycles", faulted.detectCycle - crashAt);
    f.set("completion_after_crash", faulted.elapsed - crashAt);
    f.set("overhead_cycles", overhead);
    f.set("overhead_pct", 100.0 * static_cast<double>(overhead) /
                              static_cast<double>(control.elapsed));
    f.set("results_match", match);
    f.set("ciod", ciodJson(faulted.ciod));
    f.set("fship", fshipJson(faulted.fship));
    j.set("failover", std::move(f));
    if (!bg::bench::maybeWriteJson(jsonPath, j)) return 1;
  }
  return match ? 0 : 1;
}

// Regenerates paper Fig 2 / §IV-A / §VII-A as a measurement: the
// function-shipped I/O path end-to-end, the 1:1 ioproxy mapping, and
// the reduction in filesystem clients ("up to two orders of magnitude"
// — every compute process funnels through its pset's single I/O node).
#include <cstdio>

#include "apps/io_kernel.hpp"
#include "bench_util.hpp"
#include "runtime/app.hpp"

namespace {
using namespace bg;
}

int main() {
  const int computeNodes = 8;
  const int procsPerNode = 4;  // VN mode

  rt::ClusterConfig cfg;
  cfg.computeNodes = computeNodes;
  cfg.ioNodes = 1;
  cfg.computeNodesPerIoNode = computeNodes;
  rt::Cluster cluster(cfg);
  if (!cluster.bootAll(600'000'000)) {
    std::fprintf(stderr, "boot failed\n");
    return 1;
  }

  apps::IoKernelParams ip;
  ip.chunks = 6;
  ip.chunkBytes = 32 << 10;
  kernel::JobSpec job;
  job.processes = procsPerNode;
  job.exe = apps::ioKernelImage(ip);

  const int ranks = computeNodes * procsPerNode;
  std::vector<std::vector<std::uint64_t>> samples(ranks);
  for (int r = 0; r < ranks; ++r) cluster.attachSamples(r, 0, &samples[r]);

  const sim::Cycle start = cluster.engine().now();
  if (!cluster.loadJob(job) || !cluster.run(8'000'000'000ULL)) {
    std::fprintf(stderr, "run failed\n");
    return 1;
  }
  const sim::Cycle elapsed = cluster.engine().now() - start;

  int opened = 0;
  std::uint64_t readBack = 0;
  for (const auto& s : samples) {
    if (s.size() >= 3) {
      if (static_cast<std::int64_t>(s[0]) >= 0) ++opened;
      readBack += s[2];
    }
  }

  const io::Ciod& ciod = cluster.ciod(0);
  const io::CiodStats& st = ciod.stats();
  const std::uint64_t totalWritten =
      static_cast<std::uint64_t>(ranks) * ip.chunks * ip.chunkBytes;

  std::printf("Function-shipped I/O offload (paper Fig 2, SectionIV-A)\n");
  bg::bench::printRule();
  std::printf("compute processes              %12d\n", ranks);
  std::printf("ranks with successful open()   %12d\n", opened);
  std::printf("ioproxies at CIOD (1:1)        %12zu\n", ciod.proxyCount());
  std::printf("dedicated proxy threads        %12zu\n",
              ciod.proxyThreadCount());
  std::printf("fship requests served          %12llu\n",
              static_cast<unsigned long long>(st.requests));
  std::printf("protocol errors                %12llu\n",
              static_cast<unsigned long long>(st.errors));
  std::printf("bytes written (app)            %12llu\n",
              static_cast<unsigned long long>(totalWritten));
  std::printf("bytes read back (verify)       %12llu\n",
              static_cast<unsigned long long>(readBack));
  std::printf("filesystem clients seen by FS  %12d (vs %d app processes"
              " -> %.0fx reduction)\n",
              cluster.machine().numIoNodes(), ranks,
              static_cast<double>(ranks) /
                  cluster.machine().numIoNodes());
  std::printf("aggregate write bandwidth      %9.1f MB/s over %.2f ms\n",
              static_cast<double>(totalWritten) / 1e6 /
                  sim::cyclesToSec(elapsed),
              sim::cyclesToUs(elapsed) / 1000.0);
  std::printf("\npaper: the offload keeps POSIX semantics on the compute "
              "node while the I/O node's Linux\nprovides the filesystem; "
              "client count drops by the pset fan-in.\n");
  return 0;
}

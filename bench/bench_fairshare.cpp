// Fair-share scheduling benchmark: a saturating multi-account job
// stream drives the multi-tenant control plane (hierarchical shares,
// QOS bands, per-account limits, preemption) on one cluster. Reports,
// per account, achieved vs configured share of delivered node-cycles,
// queue-wait percentiles, completions, and preemption counts — the
// matrix EXPERIMENTS.md tracks. Every invocation runs the identical
// stream twice and fails on a determinism-digest mismatch (FNV over
// the schedule hash and the accounting state digest), so the bench
// doubles as a replay witness for the fair-share plane.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "runtime/app.hpp"
#include "sim/hash.hpp"
#include "sim/rng.hpp"
#include "svc/failover.hpp"
#include "vm/builder.hpp"

namespace {

using namespace bg;

struct FsParams {
  int nodes = 8;
  int jobs = 240;
  std::uint64_t seed = 42;
  sim::Cycle arrivalGapCycles = 15'000;  // mean inter-arrival
};

struct AccountReport {
  std::string name;
  const char* qos = "normal";
  std::uint32_t shares = 0;
  double configuredSharePct = 0;
  double achievedSharePct = 0;
  std::uint64_t completed = 0;
  std::uint64_t lifetimeUsage = 0;
  std::uint64_t preemptions = 0;
  std::vector<sim::Cycle> waits;
};

struct FsResult {
  bool drained = false;
  svc::SvcMetrics metrics;
  std::uint64_t accountingDigest = 0;
  std::uint64_t determinismHash = 0;
  std::vector<AccountReport> accounts;
};

// The share matrix under test: two bulk tenants at 4:2, a low-QOS
// tenant capped at 3 concurrent jobs, and a small high-QOS tenant
// whose arrivals preempt the low band when the cluster is full.
svc::FairShareConfig benchAccounts() {
  svc::FairShareConfig fs;
  svc::AccountSpec alpha;
  alpha.name = "alpha";
  alpha.shares = 4;
  svc::AccountSpec beta;
  beta.name = "beta";
  beta.shares = 2;
  svc::AccountSpec gamma;
  gamma.name = "gamma";
  gamma.shares = 1;
  gamma.qos = svc::Qos::kLow;
  gamma.maxRunning = 3;
  svc::AccountSpec urgent;
  urgent.name = "urgent";
  urgent.shares = 1;
  urgent.qos = svc::Qos::kHigh;
  urgent.preemptable = false;
  fs.accounts = {alpha, beta, gamma, urgent};
  return fs;
}

std::shared_ptr<kernel::ElfImage> workImage(const std::string& name,
                                            std::uint64_t reps) {
  vm::ProgramBuilder b(name);
  const auto top = b.loopBegin(16, static_cast<std::int64_t>(reps));
  b.compute(10'000);
  b.loopEnd(16, top);
  b.halt(0);
  return kernel::ElfImage::makeExecutable(name, std::move(b).build());
}

FsResult runStream(const FsParams& p) {
  rt::ClusterConfig cfg;
  cfg.computeNodes = p.nodes;
  cfg.seed = p.seed;
  rt::Cluster cluster(cfg);

  svc::ServiceNodeConfig scfg;
  scfg.policy = svc::SchedPolicyKind::kFairShare;
  scfg.fairshare = benchAccounts();
  scfg.checkpointEveryPumps = 0;
  svc::ServiceHost host(cluster, scfg);

  // Weighted account draw: bulk tenants dominate demand, urgent is a
  // trickle. The draw count per job is fixed, so the stream is a pure
  // function of (seed, jobs).
  sim::Rng rng(p.seed, "fairshare.bench");
  int arrived = 0;
  sim::Cycle at = 20'000;
  for (int i = 0; i < p.jobs; ++i) {
    const std::uint64_t a = rng.nextBelow(16);
    svc::JobDesc jd;
    jd.account = a < 7 ? 1 : a < 12 ? 2 : a < 15 ? 3 : 4;
    jd.name = "b" + std::to_string(i);
    jd.nodes = 1 + static_cast<int>(rng.nextBelow(3));
    const std::uint64_t reps = 6 + rng.nextBelow(10);
    jd.exe = workImage(jd.name, reps);
    jd.estCycles = reps * 10'000 + 50'000;
    at += 1 + rng.nextBelow(2 * p.arrivalGapCycles);
    cluster.engine().scheduleAt(at, [&host, jd, &arrived]() mutable {
      host.submit(std::move(jd));
      ++arrived;
    });
  }
  host.start();

  FsResult r;
  const int total = p.jobs;
  r.drained = cluster.engine().runWhile(
      [&] { return arrived == total && host.drained(); }, 2'000'000'000ULL);
  r.metrics = host.metrics();
  r.accountingDigest = host.node().accounting().stateDigest();
  sim::Fnv1a h;
  h.mix(r.metrics.scheduleHash);
  h.mix(r.accountingDigest);
  r.determinismHash = h.digest();

  // Per-account report: shares/usage from metrics, waits from the job
  // table (submit -> first launch).
  std::uint64_t usageTotal = 0;
  std::uint32_t sharesTotal = 0;
  for (const svc::AccountMetrics& am : r.metrics.accounts) {
    usageTotal += am.lifetimeUsage;
    sharesTotal += am.shares;
  }
  for (const svc::AccountMetrics& am : r.metrics.accounts) {
    AccountReport ar;
    ar.name = am.name;
    ar.qos = am.qos;
    ar.shares = am.shares;
    ar.configuredSharePct =
        sharesTotal > 0 ? 100.0 * am.shares / sharesTotal : 0;
    ar.achievedSharePct =
        usageTotal > 0 ? bg::bench::pct(am.lifetimeUsage, usageTotal) : 0;
    ar.completed = am.jobsCompleted;
    ar.lifetimeUsage = am.lifetimeUsage;
    ar.preemptions = am.preemptions;
    r.accounts.push_back(ar);
  }
  for (const svc::JobRecord& jr : host.node().jobs()) {
    const svc::AccountId id = jr.desc.account;
    if (id == 0 || id > r.accounts.size()) continue;
    if (jr.firstStartCycle == 0) continue;
    r.accounts[id - 1].waits.push_back(jr.firstStartCycle - jr.submitCycle);
  }
  return r;
}

void printResult(const char* title, const FsResult& r) {
  std::printf("\n%s\n", title);
  bg::bench::printRule();
  std::printf("svc: %llu submitted, %llu completed, %llu failed, "
              "%llu preemptions; utilization %.1f%%\n",
              static_cast<unsigned long long>(r.metrics.jobsSubmitted),
              static_cast<unsigned long long>(r.metrics.jobsCompleted),
              static_cast<unsigned long long>(r.metrics.jobsFailed),
              static_cast<unsigned long long>(r.metrics.preemptions),
              100.0 * r.metrics.utilization);
  std::printf("%-8s %-7s %6s  %9s  %9s  %6s  %6s %10s %10s\n", "account",
              "qos", "shares", "cfg-share", "ach-share", "done", "preempt",
              "wait-p50", "wait-p99");
  for (const AccountReport& a : r.accounts) {
    std::printf("%-8s %-7s %6u  %8.1f%%  %8.1f%%  %6llu  %6llu %10llu %10llu\n",
                a.name.c_str(), a.qos, a.shares, a.configuredSharePct,
                a.achievedSharePct,
                static_cast<unsigned long long>(a.completed),
                static_cast<unsigned long long>(a.preemptions),
                static_cast<unsigned long long>(
                    bench::percentile(a.waits, 50)),
                static_cast<unsigned long long>(
                    bench::percentile(a.waits, 99)));
  }
  std::printf("determinism hash: %016llx (schedule %016llx, "
              "accounting %016llx)\n",
              static_cast<unsigned long long>(r.determinismHash),
              static_cast<unsigned long long>(r.metrics.scheduleHash),
              static_cast<unsigned long long>(r.accountingDigest));
}

}  // namespace

int main(int argc, char** argv) {
  FsParams p;
  std::string jsonPath;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      p.nodes = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      p.jobs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      p.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      p.jobs = 96;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      jsonPath = argv[++i];
    }
  }

  std::printf("fair-share benchmark: %d jobs on %d nodes, seed=%llu "
              "(accounts alpha:4 beta:2 gamma:1/low/maxRunning=3 "
              "urgent:1/high)\n",
              p.jobs, p.nodes, static_cast<unsigned long long>(p.seed));

  const FsResult run1 = runStream(p);
  if (!run1.drained) {
    std::fprintf(stderr, "stream did not drain\n");
    return 1;
  }
  printResult("run 1", run1);

  // Determinism witness: replay the identical stream.
  const FsResult run2 = runStream(p);
  const bool match = run2.determinismHash == run1.determinismHash;
  std::printf("\nreplay determinism hash: %016llx (%s)\n",
              static_cast<unsigned long long>(run2.determinismHash),
              match ? "MATCH" : "MISMATCH");

  if (!jsonPath.empty()) {
    sim::Json j = sim::Json::object();
    j.set("bench", "fairshare");
    j.set("nodes", static_cast<std::int64_t>(p.nodes));
    j.set("jobs", static_cast<std::int64_t>(p.jobs));
    j.set("seed", p.seed);
    sim::Json arr = sim::Json::array();
    for (const AccountReport& a : run1.accounts) {
      sim::Json aj = sim::Json::object();
      aj.set("name", a.name);
      aj.set("qos", a.qos);
      aj.set("shares", static_cast<std::uint64_t>(a.shares));
      aj.set("configured_share_pct", a.configuredSharePct);
      aj.set("achieved_share_pct", a.achievedSharePct);
      aj.set("jobs_completed", a.completed);
      aj.set("lifetime_usage", a.lifetimeUsage);
      aj.set("preemptions", a.preemptions);
      aj.set("wait_p50_cycles", bench::percentile(a.waits, 50));
      aj.set("wait_p99_cycles", bench::percentile(a.waits, 99));
      aj.set("wait", bench::statsToJson(bench::computeStats(a.waits)));
      arr.push(std::move(aj));
    }
    j.set("accounts", std::move(arr));
    j.set("preemptions", run1.metrics.preemptions);
    j.set("svc", run1.metrics.toJson());
    j.set("accounting_digest", run1.accountingDigest);
    j.set("determinism_hash", run1.determinismHash);
    j.set("replay_hash_match", match);
    if (!j.writeFile(jsonPath)) {
      std::fprintf(stderr, "failed to write %s\n", jsonPath.c_str());
      return 1;
    }
    std::printf("wrote %s\n", jsonPath.c_str());
  }
  return match ? 0 : 1;
}

// Regenerates paper §III: cycle reproducibility.
//
//  1. Run-to-run: two freshly-built identical CNK machines execute the
//     same workload; their per-sample timings, logic-scan digests
//     (architectural-state hashes captured at a ladder of cycle
//     offsets — the simulator analogue of assembling scans taken one
//     cycle apart into a waveform), and completion cycles must be
//     IDENTICAL. The FWK baseline with different boot entropy (the
//     real-world run-to-run variation Linux cannot exclude) diverges.
//  2. Reset tolerance: a CNK node runs the job, performs the
//     reproducible-reset sequence (core rendezvous, cache flush, DDR
//     self-refresh, reset toggle, restart without the service node),
//     and re-runs the job: timings identical, and DRAM contents in the
//     persistent pool survive the reset.
//  3. Multichip: two chips coordinate their reboot over the global
//     barrier network; a packet injected a fixed delay after release
//     arrives at the same relative cycle on every trial.
//
// --json <path> writes the results machine-readably, including a
// double-run determinism digest: the full CNK witness (per-sample
// timings, logic-scan ladder, completion cycle) folded to one value
// for two independent runs — equal digests are the reproducibility
// receipt CI can diff across hosts and revisions.
#include <cstdio>
#include <string>
#include <vector>

#include "apps/fwq.hpp"
#include "bench_util.hpp"
#include "hw/barrier_net.hpp"
#include "runtime/app.hpp"

namespace {

using namespace bg;

struct RunWitness {
  std::vector<std::uint64_t> samples;
  std::vector<std::uint64_t> scans;  // logic-scan ladder
  sim::Cycle doneAt = 0;
};

RunWitness witnessRun(rt::KernelKind kind, std::uint64_t entropy) {
  rt::ClusterConfig cfg;
  cfg.kernel = kind;
  cfg.fwk.entropy = entropy;
  rt::Cluster cluster(cfg);
  RunWitness w;
  if (!cluster.bootAll(100'000'000)) return w;

  apps::FwqParams fp;
  fp.samples = 60;
  kernel::JobSpec job;
  job.exe = apps::fwqImage(fp);
  cluster.attachSamples(0, 0, &w.samples);
  if (!cluster.loadJob(job)) return w;

  // Logic-scan ladder: snapshot architectural state at fixed cycles.
  const sim::Cycle base = cluster.engine().now();
  for (int i = 1; i <= 24; ++i) {
    cluster.engine().runUntil(base + static_cast<sim::Cycle>(i) * 1'000'000);
    w.scans.push_back(cluster.machine().scanHash());
    if (cluster.jobDone()) break;
  }
  cluster.run(2'000'000'000ULL);
  w.doneAt = cluster.engine().now();
  return w;
}

bool sameWitness(const RunWitness& a, const RunWitness& b) {
  return a.samples == b.samples && a.scans == b.scans &&
         a.doneAt == b.doneAt;
}

/// Fold a witness (every sample, every scan, the completion cycle)
/// into one digest; two reproducible runs must produce equal digests.
std::uint64_t witnessDigest(const RunWitness& w) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(w.samples.size());
  for (const std::uint64_t s : w.samples) mix(s);
  mix(w.scans.size());
  for (const std::uint64_t s : w.scans) mix(s);
  mix(w.doneAt);
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

/// Reset-tolerance experiment on one machine.
bool resetTolerance() {
  rt::ClusterConfig cfg;
  rt::Cluster cluster(cfg);
  if (!cluster.bootAll(100'000'000)) return false;
  auto* cnk = cluster.cnkOn(0);

  apps::FwqParams fp;
  fp.samples = 40;
  kernel::JobSpec job;
  job.exe = apps::fwqImage(fp);

  // Scribble a witness value into the persistent pool's DRAM.
  const hw::PAddr poolProbe =
      cluster.machine().node(0).mem().size() - (16ULL << 20);
  cluster.machine().node(0).mem().write64(poolProbe, 0xFEEDFACECAFED00DULL);

  std::vector<std::uint64_t> runA;
  cluster.attachSamples(0, 0, &runA);
  if (!cluster.loadJob(job) || !cluster.run(2'000'000'000ULL)) return false;

  // Reproducible reset: flush, self-refresh, toggle reset, restart.
  bool restarted = false;
  cnk->requestReproducibleReset([&] { restarted = true; });
  cluster.engine().runWhile([&] { return restarted; }, 10'000'000);
  if (!restarted) return false;

  const bool dramSurvived =
      cluster.machine().node(0).mem().read64(poolProbe) ==
      0xFEEDFACECAFED00DULL;

  std::vector<std::uint64_t> runB;
  cluster.attachSamples(0, 0, &runB);
  if (!cluster.loadJob(job) || !cluster.run(2'000'000'000ULL)) return false;

  std::printf("  reset tolerance: DRAM survived self-refresh: %s, "
              "re-run timings identical: %s (%zu samples)\n",
              dramSurvived ? "yes" : "NO",
              runA == runB ? "yes" : "NO", runA.size());
  return dramSurvived && runA == runB;
}

/// Multichip coordinated reboot: relative packet arrival is constant.
bool multichip(sim::Cycle* relOut) {
  rt::ClusterConfig cfg;
  cfg.computeNodes = 2;
  rt::Cluster cluster(cfg);
  if (!cluster.bootAll(200'000'000)) return false;
  hw::BarrierNet& bar = cluster.machine().barrier();
  bar.setPersistentAcrossReset(true);
  bar.configureGroup(/*groupId=*/0x51C, /*members=*/2);

  std::vector<sim::Cycle> relativeArrivals;
  for (int trial = 0; trial < 3; ++trial) {
    // Both chips perform the reproducible reboot; the barrier network
    // stays active and configured across it (§III).
    int restarted = 0;
    for (int n = 0; n < 2; ++n) {
      cluster.cnkOn(n)->requestReproducibleReset([&] { ++restarted; });
    }
    cluster.engine().runWhile([&] { return restarted == 2; }, 10'000'000);

    // Rendezvous on the global barrier, then chip 0 injects a packet a
    // fixed delay after release; record its arrival relative to the
    // release cycle at chip 1.
    sim::Cycle releaseAt = 0;
    sim::Cycle arrivalAt = 0;
    cluster.machine().torus().setPacketHandler(
        1, [&](hw::TorusPacket&&) {
          arrivalAt = cluster.engine().now();
        });
    int released = 0;
    for (int n = 0; n < 2; ++n) {
      bar.arrive(0x51C, n, [&, n] {
        ++released;
        if (n == 0) {
          releaseAt = cluster.engine().now();
          cluster.engine().schedule(500, [&] {
            hw::TorusPacket p;
            p.srcNode = 0;
            p.dstNode = 1;
            p.tag = 0x77;
            p.payload.resize(64);
            cluster.machine().torus().sendPacket(std::move(p));
          });
        }
      });
    }
    cluster.engine().runWhile([&] { return arrivalAt != 0; }, 10'000'000);
    if (arrivalAt == 0) return false;
    relativeArrivals.push_back(arrivalAt - releaseAt);
  }
  bool allEqual = true;
  for (const sim::Cycle c : relativeArrivals) {
    if (c != relativeArrivals.front()) allEqual = false;
  }
  if (relOut != nullptr) *relOut = relativeArrivals.front();
  std::printf("  multichip: packet arrival %llu cycles after barrier "
              "release on every trial: %s\n",
              static_cast<unsigned long long>(relativeArrivals.front()),
              allEqual ? "yes" : "NO");
  return allEqual;
}

}  // namespace

int main(int argc, char** argv) {
  const char* jsonPath = bg::bench::jsonPathArg(argc, argv);
  std::printf("Cycle reproducibility (paper SectionIII)\n\n");

  std::printf("Run-to-run reproducibility (two fresh machines, "
              "same workload):\n");
  // Double-run determinism digest: the same CNK configuration built
  // and driven twice; the full witnesses must fold to equal digests.
  const RunWitness cnkRun1 = witnessRun(rt::KernelKind::kCnk, 1);
  const RunWitness cnkRun2 = witnessRun(rt::KernelKind::kCnk, 2);
  const std::uint64_t digest1 = witnessDigest(cnkRun1);
  const std::uint64_t digest2 = witnessDigest(cnkRun2);
  const bool cnkIdentical = sameWitness(cnkRun1, cnkRun2);
  std::printf("  CNK: scans=%zu  identical samples/scans/completion: "
              "%s  digest=%s\n",
              cnkRun1.scans.size(), cnkIdentical ? "yes" : "NO",
              hex64(digest1).c_str());
  const RunWitness fwkRun1 = witnessRun(rt::KernelKind::kFwk, 1);
  const RunWitness fwkRun2 = witnessRun(rt::KernelKind::kFwk, 2);
  const bool fwkDiverges = !sameWitness(fwkRun1, fwkRun2);
  std::printf("  Linux(FWK), different boot entropy: diverges: %s\n",
              fwkDiverges ? "yes" : "NO (unexpectedly identical)");

  std::printf("\nReset tolerance (flush, DDR self-refresh, restart):\n");
  const bool resetOk = resetTolerance();

  std::printf("\nMultichip barrier-coordinated reproducible reboot:\n");
  sim::Cycle relArrival = 0;
  const bool multichipOk = multichip(&relArrival);

  std::printf("\npaper: CNK restarts identically from reset; the barrier "
              "network alignment lets one chip\ninject on exactly the same "
              "cycle relative to the other across reboots.\n");

  const bool allOk =
      cnkIdentical && digest1 == digest2 && fwkDiverges && resetOk &&
      multichipOk;
  if (jsonPath != nullptr) {
    sim::Json j = sim::Json::object();
    j.set("bench", "repro");
    sim::Json d = sim::Json::object();
    d.set("run1", hex64(digest1));
    d.set("run2", hex64(digest2));
    d.set("match", digest1 == digest2);
    d.set("samples", cnkRun1.samples.size());
    d.set("scans", cnkRun1.scans.size());
    d.set("done_at", cnkRun1.doneAt);
    j.set("determinism_digest", std::move(d));
    j.set("cnk_run_to_run_identical", cnkIdentical);
    j.set("fwk_entropy_diverges", fwkDiverges);
    j.set("reset_tolerance", resetOk);
    sim::Json m = sim::Json::object();
    m.set("stable", multichipOk);
    m.set("relative_arrival_cycles", relArrival);
    j.set("multichip", std::move(m));
    j.set("pass", allOk);
    if (!bg::bench::maybeWriteJson(jsonPath, j)) return 1;
  }
  return allOk ? 0 : 1;
}

// Ablation for the paper's §VII-B memory trade-off: "In order to
// provide static mapping with a limited number of TLB entries, the
// memory subsystem may waste physical memory as large pages are tiled
// together."
//
// Sweeps the TLB-entry budget the partitioner may spend and reports
// the resulting page-size choices, entries used, and physical memory
// wasted — the dial between TLB pressure (more, smaller pages) and
// tiling waste (fewer, larger pages).
// --json emits the full sweep grid for bench/diff_runs.py.
#include <cstdio>

#include "bench_util.hpp"
#include "cnk/partitioner.hpp"

using namespace bg;

namespace {

const char* pageName(std::uint64_t p) {
  switch (p) {
    case hw::kPage1M: return "1MB";
    case hw::kPage16M: return "16MB";
    case hw::kPage256M: return "256MB";
    case hw::kPage1G: return "1GB";
  }
  return "-";
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("Static-map trade-off: TLB budget vs tiling waste "
              "(paper SectionVII-B)\n");
  sim::Json configs = sim::Json::array();

  const struct {
    const char* label;
    std::uint64_t physMB;
    std::uint64_t textMB;
    std::uint64_t dataMB;
  } nodes[] = {
      {"512MB node, 1MB text/data", 464, 1, 1},
      {"2GB node, 16MB text, 64MB data", 2000, 16, 64},
      {"4GB node, 1MB text, 256MB data", 4000, 1, 256},
  };

  for (const auto& n : nodes) {
    std::printf("\n%s (SMP mode):\n", n.label);
    std::printf("  %8s %10s %10s %12s %14s\n", "budget", "heap page",
                "entries", "waste(MB)", "waste(%)");
    sim::Json cj = sim::Json::object();
    cj.set("label", n.label);
    sim::Json points = sim::Json::array();
    for (const int budget : {8, 12, 16, 24, 32, 48, 64}) {
      cnk::PartitionRequest req;
      req.physBase = 16ULL << 20;
      req.physSize = n.physMB << 20;
      req.processes = 1;
      req.textBytes = n.textMB << 20;
      req.dataBytes = n.dataMB << 20;
      req.tlbBudget = budget;
      const auto res = cnk::partitionMemory(req);
      if (!res.ok) {
        std::printf("  %8d %10s  -- %s\n", budget, "-", res.error.c_str());
        continue;
      }
      const auto& hs = res.procs[0].heapStack;
      std::printf("  %8d %10s %10d %12.1f %13.2f%%\n", budget,
                  pageName(hs.pageSize), res.tlbEntriesPerProcess,
                  static_cast<double>(res.wastedBytes) / (1 << 20),
                  100.0 * static_cast<double>(res.wastedBytes) /
                      static_cast<double>(req.physSize));
      sim::Json pt = sim::Json::object();
      pt.set("tlb_budget", static_cast<std::int64_t>(budget));
      pt.set("heap_page", pageName(hs.pageSize));
      pt.set("entries", static_cast<std::int64_t>(res.tlbEntriesPerProcess));
      pt.set("wasted_bytes", res.wastedBytes);
      pt.set("waste_pct", 100.0 * static_cast<double>(res.wastedBytes) /
                              static_cast<double>(req.physSize));
      points.push(std::move(pt));
    }
    cj.set("points", std::move(points));
    configs.push(std::move(cj));
  }
  sim::Json j = sim::Json::object();
  j.set("configs", std::move(configs));
  if (!bench::maybeWriteJson(bench::jsonPathArg(argc, argv), j)) return 1;
  std::printf("\nshape: smaller budgets force larger pages; alignment and "
              "rounding to those pages\nis the physical memory the paper "
              "says the static map may waste.\n");
  return 0;
}

// Quickstart: boot a one-node CNK machine, run a small FWQ job, and
// print the noise statistics.
//
//   $ ./build/examples/quickstart
//
// This is the 60-second tour: Cluster assembly, job launch, sample
// collection, and the "CNK is quiet" headline result in miniature.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/fwq.hpp"
#include "runtime/app.hpp"

int main() {
  using namespace bg;

  // One compute node (4 cores), one I/O node, CNK.
  rt::ClusterConfig cfg;
  cfg.computeNodes = 1;
  cfg.kernel = rt::KernelKind::kCnk;
  rt::Cluster cluster(cfg);

  std::printf("booting CNK ...\n");
  if (!cluster.bootAll()) {
    std::printf("boot failed\n");
    return 1;
  }
  std::printf("booted in %llu cycles (%.3f ms simulated)\n",
              static_cast<unsigned long long>(
                  cluster.kernelOn(0).bootCycles()),
              sim::cyclesToUs(cluster.kernelOn(0).bootCycles()) / 1000.0);

  // A small FWQ: 200 samples on each of the 4 cores.
  apps::FwqParams fp;
  fp.samples = 200;
  kernel::JobSpec job;
  job.exe = apps::fwqImage(fp);

  std::vector<std::vector<std::uint64_t>> samples(4);
  for (int tidx = 0; tidx < 4; ++tidx) {
    cluster.attachSamples(/*rank=*/0, tidx, &samples[tidx]);
  }

  if (!cluster.loadJob(job) || !cluster.run()) {
    std::printf("job failed\n");
    return 1;
  }

  std::printf("\n%-8s %12s %12s %14s\n", "thread", "min(cyc)", "max(cyc)",
              "spread");
  for (int tidx = 0; tidx < 4; ++tidx) {
    const auto& s = samples[tidx];
    if (s.empty()) continue;
    const auto [mn, mx] = std::minmax_element(s.begin(), s.end());
    std::printf("%-8d %12llu %12llu %13.4f%%\n", tidx,
                static_cast<unsigned long long>(*mn),
                static_cast<unsigned long long>(*mx),
                100.0 * static_cast<double>(*mx - *mn) /
                    static_cast<double>(*mn));
  }
  std::printf("\nCNK noise spread should be well under 0.01%% "
              "(paper: <0.006%%).\n");
  return 0;
}

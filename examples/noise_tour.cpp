// Noise tour: the paper's §V-A story in one run — the same FWQ
// workload on CNK and on the Linux-like FWK, plus the FWK with each
// noise source disabled, showing where Linux's jitter comes from
// mechanistically (ticks, daemons, demand paging).
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "apps/fwq.hpp"
#include "runtime/app.hpp"

using namespace bg;

namespace {

struct NoiseRow {
  const char* label;
  std::uint64_t maxDelta = 0;
  double spreadPct = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t pageFaults = 0;
};

NoiseRow measure(const char* label, rt::KernelKind kind, bool tick,
                 bool daemons, bool paging) {
  NoiseRow row;
  row.label = label;
  rt::ClusterConfig cfg;
  cfg.kernel = kind;
  cfg.fwk.enableTick = tick;
  cfg.fwk.enableDaemons = daemons;
  cfg.fwk.demandPaging = paging;
  rt::Cluster cluster(cfg);
  if (!cluster.bootAll(100'000'000)) return row;
  apps::FwqParams fp;
  fp.samples = 800;
  kernel::JobSpec job;
  job.exe = apps::fwqImage(fp);
  std::vector<std::uint64_t> s;
  cluster.attachSamples(0, 0, &s);  // core 0, the noisiest
  if (!cluster.loadJob(job) || !cluster.run(4'000'000'000ULL) || s.empty()) {
    return row;
  }
  const auto [mn, mx] = std::minmax_element(s.begin(), s.end());
  row.maxDelta = *mx - *mn;
  row.spreadPct = 100.0 * static_cast<double>(*mx - *mn) /
                  static_cast<double>(*mn);
  if (auto* fwk = cluster.fwkOn(0)) {
    row.preemptions = fwk->preemptions();
    row.pageFaults = fwk->pageFaults();
  }
  return row;
}

}  // namespace

int main() {
  std::printf("Where does OS noise come from? FWQ on core 0, 800 "
              "samples of ~659K cycles each.\n\n");
  std::printf("%-34s %12s %9s %11s %10s\n", "configuration", "max-min",
              "spread%", "preemptions", "pagefaults");

  const NoiseRow rows[] = {
      measure("Linux (tick+daemons+paging)", rt::KernelKind::kFwk, true,
              true, true),
      measure("Linux, no daemons", rt::KernelKind::kFwk, true, false, true),
      measure("Linux, no tick", rt::KernelKind::kFwk, false, true, true),
      measure("Linux, prefaulted", rt::KernelKind::kFwk, true, true, false),
      measure("Linux, all sources off", rt::KernelKind::kFwk, false, false,
              false),
      measure("CNK", rt::KernelKind::kCnk, true, true, true),
  };
  for (const NoiseRow& r : rows) {
    std::printf("%-34s %12llu %8.4f%% %11llu %10llu\n", r.label,
                static_cast<unsigned long long>(r.maxDelta), r.spreadPct,
                static_cast<unsigned long long>(r.preemptions),
                static_cast<unsigned long long>(r.pageFaults));
  }
  std::printf("\nCNK does not ablate noise away — it never creates it: "
              "no tick to disable,\nno daemons to suspend, no faults to "
              "prefault (paper SectionV-A).\n");
  return 0;
}

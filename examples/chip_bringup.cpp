// Chip-bringup walkthrough (paper §III): the workflow the CNK team
// used to hunt a borderline timing bug.
//
// A flaky chip misbehaves only on some runs; consistent re-creation is
// impossible. The reproducible-execution methodology:
//   1. run the test case in reproducible mode, capturing a "logic
//      scan" (architectural-state digest) at a ladder of cycles;
//   2. reset the chip (cache flush, DDR self-refresh, reset toggle),
//      restart identically, and capture scans one step later;
//   3. assemble the scans into a waveform; a healthy chip's waveform
//      is identical run over run — the FIRST cycle where a flaky
//      chip's digest diverges localizes the failure.
//
// We inject a "manufacturing defect" (a spurious register flip at a
// secret cycle) into one run and show the scan ladder pinpointing it.
#include <cstdio>
#include <vector>

#include "apps/fwq.hpp"
#include "runtime/app.hpp"

using namespace bg;

namespace {

std::vector<std::uint64_t> scanLadder(rt::Cluster& cluster, int steps,
                                      sim::Cycle stride,
                                      sim::Cycle defectAt = 0) {
  apps::FwqParams fp;
  fp.samples = 30;
  kernel::JobSpec job;
  job.exe = apps::fwqImage(fp);
  if (!cluster.loadJob(job)) return {};

  if (defectAt != 0) {
    // The flaky chip: at one cycle, a latch flips that should not.
    cluster.engine().schedule(defectAt, [&cluster] {
      cluster.machine().node(0).core(2).raise(hw::Irq::kExternal);
    });
  }

  std::vector<std::uint64_t> scans;
  const sim::Cycle base = cluster.engine().now();
  for (int i = 1; i <= steps; ++i) {
    cluster.engine().runUntil(base + static_cast<sim::Cycle>(i) * stride);
    scans.push_back(cluster.machine().scanHash());
  }
  cluster.run(2'000'000'000ULL);
  return scans;
}

}  // namespace

int main() {
  constexpr int kSteps = 20;
  constexpr sim::Cycle kStride = 1'000'000;

  std::printf("chip bringup: reproducible-run logic-scan methodology\n\n");

  // Golden run on a healthy chip.
  rt::ClusterConfig cfg;
  rt::Cluster golden(cfg);
  if (!golden.bootAll()) return 1;
  const auto goldenScans = scanLadder(golden, kSteps, kStride);

  // Confirm reproducibility: a second healthy chip scans identically.
  rt::Cluster healthy(cfg);
  if (!healthy.bootAll()) return 1;
  const auto healthyScans = scanLadder(healthy, kSteps, kStride);
  std::printf("healthy chip vs golden: %s\n",
              goldenScans == healthyScans
                  ? "all scans identical (cycle-reproducible)"
                  : "DIVERGED (should not happen)");

  // The flaky chip: defect fires at a cycle the debugger doesn't know.
  constexpr sim::Cycle kSecretDefect = 13'400'000;
  rt::Cluster flaky(cfg);
  if (!flaky.bootAll()) return 1;
  const auto flakyScans = scanLadder(flaky, kSteps, kStride, kSecretDefect);

  std::printf("\nassembling waveform against the golden run:\n");
  int firstBad = -1;
  for (int i = 0; i < kSteps; ++i) {
    const bool ok = flakyScans[i] == goldenScans[i];
    if (!ok && firstBad < 0) firstBad = i;
    std::printf("  scan @ %2d Mcycles: %016llx  %s\n", i + 1,
                static_cast<unsigned long long>(flakyScans[i]),
                ok ? "match" : "DIVERGED");
  }
  if (firstBad >= 0) {
    std::printf("\nfirst divergence between scans %d and %d Mcycles -> "
                "the defect fired in that window\n(injected at %.1f "
                "Mcycles: localized correctly)\n",
                firstBad, firstBad + 1,
                static_cast<double>(kSecretDefect) / 1e6);
  } else {
    std::printf("\nno divergence found (unexpected)\n");
  }
  return firstBad >= 0 ? 0 : 1;
}

// MPI-style multi-node example: a 4-node ring pipeline.
//
// Each rank receives a token from its left neighbour, adds its rank,
// and passes it right; after a full loop rank 0 holds sum(0..3). Then
// everyone allreduces their rank and prints the (identical) result —
// the two communication substrates of the machine in one program: the
// torus for point-to-point, the collective tree for the reduction.
#include <cstdio>

#include "kernel/syscalls.hpp"
#include "runtime/app.hpp"
#include "runtime/rt_ids.hpp"
#include "vm/builder.hpp"

using namespace bg;

namespace {

std::int64_t sys(kernel::Sys s) { return static_cast<std::int64_t>(s); }
std::int64_t rtc(rt::Rt r) { return static_cast<std::int64_t>(r); }

vm::Program ringProgram() {
  using vm::Reg;
  constexpr Reg rBuf = 16;
  constexpr Reg rDst = 17;
  constexpr Reg rSrc = 18;
  constexpr Reg rRank = 19;  // r1 is an argument register: keep a copy
  vm::ProgramBuilder b("ring");
  b.mov(rBuf, 10);
  b.mov(rRank, 1);

  // dst = (rank+1) mod npes ; src = (rank-1) mod npes.
  b.addi(rDst, 1, 1);
  const std::size_t noWrap = b.emitForwardBranch(vm::Op::kBlt, rDst, 2);
  b.li(rDst, 0);
  b.patchHere(noWrap);
  const std::size_t rank0 = b.emitForwardBranch(vm::Op::kBeqz, 1);
  b.addi(rSrc, 1, -1);
  const std::size_t srcDone = b.emitForwardBranch(vm::Op::kJump);
  b.patchHere(rank0);
  b.addi(rSrc, 2, -1);
  b.patchHere(srcDone);

  // Rank 0 starts the token; everyone else receives first.
  const std::size_t notStarter = b.emitForwardBranch(vm::Op::kBnez, rRank);
  b.li(20, 0);
  b.store(rBuf, 20, 0);
  b.mov(1, rDst);
  b.mov(2, rBuf);
  b.li(3, 8);
  b.li(4, 1);
  b.rtcall(rtc(rt::Rt::kMpiSend));
  b.patchHere(notStarter);

  // Receive, add rank, forward (rank 0's final recv closes the loop).
  b.mov(1, rSrc);
  b.mov(2, rBuf);
  b.addi(2, 2, 64);
  b.li(3, 8);
  b.li(4, 1);
  b.rtcall(rtc(rt::Rt::kMpiRecv));
  b.load(20, rBuf, 64);
  b.add(20, 20, rRank);  // += rank
  b.store(rBuf, 20, 64);
  const std::size_t lastHop = b.emitForwardBranch(vm::Op::kBeqz, rRank);
  b.mov(1, rDst);
  b.mov(2, rBuf);
  b.addi(2, 2, 64);
  b.li(3, 8);
  b.li(4, 1);
  b.rtcall(rtc(rt::Rt::kMpiSend));
  b.patchHere(lastHop);
  b.sample(20);  // rank's view of the running token

  // Allreduce of (rank+1) over the tree: (src, count, dst) in r1..r3.
  b.addi(20, rRank, 1);
  b.store(rBuf, 20, 128);
  b.mov(1, rBuf);
  b.addi(1, 1, 128);
  b.li(2, 1);
  b.mov(3, rBuf);
  b.addi(3, 3, 192);
  b.rtcall(rtc(rt::Rt::kMpiAllreduce));

  b.li(1, 0);
  b.syscall(sys(kernel::Sys::kExit));
  return std::move(b).build();
}

}  // namespace

int main() {
  constexpr int kNodes = 4;
  rt::ClusterConfig cfg;
  cfg.computeNodes = kNodes;
  rt::Cluster cluster(cfg);
  if (!cluster.bootAll()) return 1;

  kernel::JobSpec job;
  job.exe = kernel::ElfImage::makeExecutable("ring", ringProgram());
  std::vector<std::vector<std::uint64_t>> samples(kNodes);
  for (int r = 0; r < kNodes; ++r) cluster.attachSamples(r, 0, &samples[r]);
  if (!cluster.loadJob(job) || !cluster.run()) {
    std::printf("run failed; thread states:\n");
    for (int r = 0; r < kNodes; ++r) {
      if (kernel::Process* p = cluster.processOfRank(r)) {
        const auto& t = p->mainThread()->ctx;
        std::printf("  rank %d: pc=%llu state=%d\n", r,
                    static_cast<unsigned long long>(t.pc),
                    static_cast<int>(t.state));
      }
    }
    return 1;
  }

  std::printf("ring pipeline over the torus:\n");
  for (int r = 0; r < kNodes; ++r) {
    if (samples[r].empty()) continue;
    std::printf("  rank %d saw token = %llu\n", r,
                static_cast<unsigned long long>(samples[r][0]));
  }
  // Rank 0 receives last: token = 1+2+3+0 = 6.
  const bool ringOk =
      !samples[0].empty() && samples[0][0] == 0 + 1 + 2 + 3;

  std::printf("\nallreduce over the collective tree: every rank reads "
              "back the same sum\n");
  bool allSame = true;
  std::uint64_t v0 = 0;
  for (int r = 0; r < kNodes; ++r) {
    kernel::Process* p = cluster.processOfRank(r);
    std::uint64_t v = 0;
    cluster.kernelOn(r).copyFromUser(
        *p, p->heapBase + 192, std::as_writable_bytes(std::span(&v, 1)));
    if (r == 0) v0 = v;
    if (v != v0) allSame = false;
  }
  std::printf("  consistent: %s\n", allSame ? "yes" : "NO");
  std::printf("\n%s\n", ringOk && allSame ? "OK" : "FAILED");
  return ringOk && allSame ? 0 : 1;
}

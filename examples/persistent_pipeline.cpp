// Persistent-memory pipeline (paper §IV-D): two consecutive jobs share
// a named in-memory region instead of round-tripping through the
// filesystem — the producer leaves a pointer-linked structure in
// persistent memory, the consumer (a separate job, new process) maps
// it by name at the SAME virtual address and walks the pointers.
#include <cstdio>

#include "kernel/syscalls.hpp"
#include "runtime/app.hpp"
#include "vm/builder.hpp"

using namespace bg;

namespace {

std::int64_t sys(kernel::Sys s) { return static_cast<std::int64_t>(s); }

/// Store the region name "mesh" at heapBase; leave heapBase in r21.
void emitName(vm::ProgramBuilder& b) {
  b.li(16, 0x6873656D);  // "mesh"
  b.mov(21, 10);
  b.store(21, 16, 0);
}

vm::Program producer(int items) {
  vm::ProgramBuilder b("producer");
  emitName(b);
  b.mov(1, 21);
  b.li(2, 1 << 20);
  b.syscall(sys(kernel::Sys::kPersistOpen));
  b.sample(0);  // region base
  b.mov(16, 0);
  // Build a linked list of `items` nodes: node i at base + i*32,
  // node.next = &node[i+1], node.value = (i+1)^2.
  for (int i = 0; i < items; ++i) {
    b.mov(17, 16);
    b.addi(17, 17, (i + 1) * 32);        // next pointer (real vaddr)
    if (i == items - 1) b.li(17, 0);     // terminator
    b.store(16, 17, i * 32);
    b.li(18, (i + 1) * (i + 1));
    b.store(16, 18, i * 32 + 8);
  }
  b.li(1, 0);
  b.syscall(sys(kernel::Sys::kExit));
  return std::move(b).build();
}

vm::Program consumer() {
  vm::ProgramBuilder b("consumer");
  emitName(b);
  b.mov(1, 21);
  b.li(2, 1 << 20);
  b.syscall(sys(kernel::Sys::kPersistOpen));
  b.sample(0);   // must equal the producer's base
  b.mov(16, 0);  // cursor = head
  // Walk: sum values until next == 0.
  b.li(20, 0);
  const auto loop = b.label();
  b.load(18, 16, 8);   // value
  b.add(20, 20, 18);
  b.load(16, 16, 0);   // follow next
  b.bnez(16, loop);
  b.sample(20);         // the sum
  b.li(1, 0);
  b.syscall(sys(kernel::Sys::kExit));
  return std::move(b).build();
}

}  // namespace

int main() {
  constexpr int kItems = 6;  // 1+4+9+16+25+36 = 91
  rt::ClusterConfig cfg;
  rt::Cluster cluster(cfg);
  if (!cluster.bootAll()) return 1;

  std::printf("job 1 (producer): building a %d-node linked list in "
              "persistent region \"mesh\"\n", kItems);
  kernel::JobSpec j1;
  j1.exe = kernel::ElfImage::makeExecutable("producer", producer(kItems));
  std::vector<std::uint64_t> s1;
  cluster.attachSamples(0, 0, &s1);
  if (!cluster.loadJob(j1) || !cluster.run()) return 1;
  std::printf("  region mapped at 0x%llx\n",
              static_cast<unsigned long long>(s1.at(0)));

  // Job boundary: CNK tears the process down; persistent regions (and
  // their DRAM contents) survive.
  cluster.cnkOn(0)->unloadJob();

  std::printf("job 2 (consumer): reopening \"mesh\" and walking the "
              "pointers\n");
  kernel::JobSpec j2;
  j2.exe = kernel::ElfImage::makeExecutable("consumer", consumer());
  std::vector<std::uint64_t> s2;
  cluster.attachSamples(0, 0, &s2);
  if (!cluster.loadJob(j2) || !cluster.run()) return 1;

  std::printf("  region mapped at 0x%llx (%s)\n",
              static_cast<unsigned long long>(s2.at(0)),
              s2.at(0) == s1.at(0) ? "same vaddr: pointers stay valid"
                                   : "DIFFERENT vaddr!");
  const std::uint64_t expect = 1 + 4 + 9 + 16 + 25 + 36;
  std::printf("  sum over linked list: %llu (expected %llu) -> %s\n",
              static_cast<unsigned long long>(s2.at(1)),
              static_cast<unsigned long long>(expect),
              s2.at(1) == expect ? "OK" : "MISMATCH");
  return s2.at(1) == expect && s2.at(0) == s1.at(0) ? 0 : 1;
}

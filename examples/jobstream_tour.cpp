// Service-node tour (paper §III): the control system that makes CNK's
// thinness possible. Blue Gene offloads everything stateful — booting
// partitions, queueing jobs, collecting RAS, swapping dead nodes out
// of service — to an external service node, so the compute kernel
// never needs a process manager or a fault handler of its own.
//
// This walkthrough drives a 6-node machine (4 CNK + 2 FWK/Linux nodes,
// MultiK-style) through a mixed job stream, then kills node 1 with an
// injected fatal RAS event mid-job and watches the control system:
//   kill the victim's threads, mark the node down;
//   drain the job's surviving partition nodes (grace period, scrub);
//   requeue the job and relaunch it on healthy nodes;
//   repair + reboot the dead node and fold it back into service.
// The decision timeline and the final metrics are printed; running it
// twice would replay the identical schedule (see bench_jobstream for
// the hash witness).
#include <cstdio>
#include <string>

#include "runtime/app.hpp"
#include "svc/service_node.hpp"
#include "vm/builder.hpp"

using namespace bg;

namespace {

std::shared_ptr<kernel::ElfImage> workImage(const std::string& name,
                                            std::uint64_t reps) {
  vm::ProgramBuilder b(name);
  const auto top = b.loopBegin(16, static_cast<std::int64_t>(reps));
  b.compute(12'000);
  b.loopEnd(16, top);
  b.halt(0);
  return kernel::ElfImage::makeExecutable(name, std::move(b).build());
}

}  // namespace

int main() {
  std::printf("== service-node tour: jobs, a node death, drain + retry ==\n");

  rt::ClusterConfig cfg;
  cfg.computeNodes = 6;
  cfg.nodeKernels = {rt::KernelKind::kCnk, rt::KernelKind::kCnk,
                     rt::KernelKind::kCnk, rt::KernelKind::kCnk,
                     rt::KernelKind::kFwk, rt::KernelKind::kFwk};
  rt::Cluster cluster(cfg);

  svc::ServiceNodeConfig scfg;
  scfg.policy = svc::SchedPolicyKind::kBackfill;
  svc::ServiceNode sn(cluster, scfg);

  // A mixed stream: wide and narrow CNK jobs plus two Linux-node jobs.
  struct JobPlan {
    const char* name;
    rt::KernelKind kind;
    int nodes;
    std::uint64_t reps;
  };
  const JobPlan plan[] = {
      {"wide-cnk", rt::KernelKind::kCnk, 3, 40},
      {"narrow-cnk-a", rt::KernelKind::kCnk, 1, 12},
      {"fwk-daemon-job", rt::KernelKind::kFwk, 1, 20},
      {"narrow-cnk-b", rt::KernelKind::kCnk, 2, 24},
      {"fwk-tail", rt::KernelKind::kFwk, 1, 10},
      {"narrow-cnk-c", rt::KernelKind::kCnk, 1, 16},
  };
  for (const JobPlan& jp : plan) {
    svc::JobDesc jd;
    jd.name = jp.name;
    jd.kernel = jp.kind;
    jd.nodes = jp.nodes;
    jd.exe = workImage(jp.name, jp.reps);
    jd.estCycles = jp.reps * 12'000 + 100'000;
    const svc::JobId id = sn.submit(jd);
    std::printf("submitted job %u: %-15s %d x %s\n", id, jp.name, jp.nodes,
                jp.kind == rt::KernelKind::kCnk ? "CNK" : "FWK");
  }

  // Node 1 dies while the wide job owns it: a fatal RAS event injected
  // through the same aggregator path a machine check would take.
  sn.injectNodeFailure(1, 300'000);
  std::printf("\nnode 1 will suffer a fatal RAS event at cycle 300000\n");

  if (!sn.runUntilDrained()) {
    std::printf("stream did not drain!\n");
    return 1;
  }

  std::printf("\ndecision timeline (cycle / action / job / nodes):\n");
  for (const std::string& line : sn.timeline()) {
    std::printf("%s\n", line.c_str());
  }

  const svc::SvcMetrics m = sn.metrics();
  std::printf("\n%llu/%llu jobs completed, %llu retried after node loss, "
              "%llu node failure(s) repaired\n",
              static_cast<unsigned long long>(m.jobsCompleted),
              static_cast<unsigned long long>(m.jobsSubmitted),
              static_cast<unsigned long long>(m.jobRetries),
              static_cast<unsigned long long>(m.nodeFailures));
  std::printf("utilization %.1f%%, mean queue wait %.0f cycles, RAS "
              "%llu info / %llu warn / %llu error / %llu fatal\n",
              100.0 * m.utilization, m.meanQueueWaitCycles,
              static_cast<unsigned long long>(m.rasInfo),
              static_cast<unsigned long long>(m.rasWarn),
              static_cast<unsigned long long>(m.rasError),
              static_cast<unsigned long long>(m.rasFatal));
  std::printf("schedule hash %016llx — same seed, same hash, every run\n",
              static_cast<unsigned long long>(m.scheduleHash));

  std::printf("\nthe paper's lesson: the compute kernel stays simple "
              "because this machinery lives elsewhere.\n");
  return 0;
}

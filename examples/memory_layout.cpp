// Prints the CNK static memory layout (paper Fig 3) for the three node
// modes — SMP (1 process), DUAL (2), VN (4) — including the page sizes
// the partitioner picked, the TLB entry counts, and the physical
// memory wasted to large-page tiling (the §VII-B trade-off).
#include <cstdio>

#include "cnk/partitioner.hpp"

using namespace bg;

namespace {

const char* pageName(std::uint64_t p) {
  switch (p) {
    case hw::kPage1M: return "1MB";
    case hw::kPage16M: return "16MB";
    case hw::kPage256M: return "256MB";
    case hw::kPage1G: return "1GB";
  }
  return "?";
}

void printRegion(const kernel::MemRegionDesc& r) {
  if (r.size == 0) return;
  std::printf("    %-10s v[0x%08llx..0x%08llx)  p[0x%08llx..0x%08llx)  "
              "%4d x %-6s perms=%s%s%s\n",
              r.name.c_str(), static_cast<unsigned long long>(r.vbase),
              static_cast<unsigned long long>(r.vbase + r.size),
              static_cast<unsigned long long>(r.pbase),
              static_cast<unsigned long long>(r.pbase + r.size),
              cnk::tileCount(r.size, r.pageSize), pageName(r.pageSize),
              (r.perms & hw::kPermR) ? "r" : "-",
              (r.perms & hw::kPermW) ? "w" : "-",
              (r.perms & hw::kPermX) ? "x" : "-");
}

}  // namespace

int main() {
  std::printf("CNK static memory layout (paper Fig 3)\n");
  std::printf("node: 512MB DDR, 16MB kernel-reserved, 32MB persistent "
              "pool, app exe: 1MB text, 1MB data, 8MB shared\n");

  for (const int procs : {1, 2, 4}) {
    cnk::PartitionRequest req;
    req.physBase = 16ULL << 20;
    req.physSize = (512ULL - 16 - 32) << 20;
    req.processes = procs;
    req.textBytes = 1 << 20;
    req.dataBytes = 1 << 20;
    req.sharedBytes = 8 << 20;
    const auto res = cnk::partitionMemory(req);
    if (!res.ok) {
      std::printf("partition failed: %s\n", res.error.c_str());
      return 1;
    }
    const char* mode = procs == 1 ? "SMP" : procs == 2 ? "DUAL" : "VN";
    std::printf("\n%s mode (%d process%s per node):\n", mode, procs,
                procs == 1 ? "" : "es");
    for (int p = 0; p < procs; ++p) {
      std::printf("  process %d:\n", p);
      const auto& lay = res.procs[static_cast<std::size_t>(p)];
      printRegion(lay.text);
      printRegion(lay.data);
      printRegion(lay.heapStack);
      printRegion(lay.shared);
    }
    std::printf("  TLB entries/process: %d of 64   wasted to tiling: "
                "%.1f MB of %.0f MB\n",
                res.tlbEntriesPerProcess,
                static_cast<double>(res.wastedBytes) / (1 << 20),
                static_cast<double>(req.physSize) / (1 << 20));
  }
  std::printf("\nThe map is static for the life of the process: no TLB "
              "misses, no page faults,\nand user space can compute "
              "virtual-to-physical itself (user-space DMA).\n");
  return 0;
}

// OpenMP-phase application (paper §V-B functionality + §VIII extended
// thread affinity).
//
// The program alternates an "MPI phase" (rank-parallel compute +
// allreduce) with an "OpenMP phase" in which the process tries to
// spawn `ompThreads` worker pthreads, synchronize them on a
// pthread-barrier, and join. Under CNK in VN mode (4 processes/node) a
// process owns one core, so extra threads only fit if the §VIII
// remote-thread extension designates other cores — exactly the
// alternation the paper says motivated the extension.
#pragma once

#include <cstdint>
#include <memory>

#include "kernel/elf.hpp"

namespace bg::apps {

struct OmpAppParams {
  int ompThreads = 4;                 // team size incl. the master
  std::uint64_t phaseCycles = 80'000; // per-thread work per phase
  int phases = 3;
};

/// Samples emitted by the main thread, in order:
///   per phase: number of workers successfully created.
std::shared_ptr<kernel::ElfImage> ompAppImage(const OmpAppParams& p = {});

}  // namespace bg::apps

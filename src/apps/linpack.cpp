#include "apps/linpack.hpp"

#include "kernel/syscalls.hpp"
#include "runtime/rt_ids.hpp"
#include "vm/builder.hpp"

namespace bg::apps {

std::shared_ptr<kernel::ElfImage> linpackImage(const LinpackParams& p) {
  using vm::Reg;
  constexpr Reg rPhase = 16;
  constexpr Reg rT0 = 17;
  constexpr Reg rT1 = 18;
  constexpr Reg rTmp = 19;
  constexpr Reg rPanel = 20;

  vm::ProgramBuilder b("linpack");
  b.mov(rPanel, 10);  // panel storage at heap base
  b.readTb(rT0);

  const auto top = b.loopBegin(rPhase, p.phases);
  b.compute(p.computePerPhase);
  b.memTouch(rPanel, 0, p.touchBytes, p.touchStride, /*write=*/true);
  if (p.useCollective) {
    b.mov(1, 10);
    b.li(2, 1);
    b.mov(3, 10);
    b.addi(3, 3, 4096);
    b.rtcall(static_cast<std::int64_t>(rt::Rt::kMpiAllreduce));
  }
  b.loopEnd(rPhase, top);

  b.readTb(rT1);
  b.sub(rTmp, rT1, rT0);
  b.sample(rTmp);  // one sample: total run cycles
  b.li(vm::kArg0, 0);
  b.syscall(static_cast<std::int64_t>(kernel::Sys::kExit));
  return kernel::ElfImage::makeExecutable("linpack", std::move(b).build(),
                                          1 << 20, 2 << 20);
}

}  // namespace bg::apps

// LINPACK proxy (paper §V-D performance-stability experiment).
//
// Blocked-DGEMM-shaped phases: heavy compute + L2/L3-visible memory
// sweeps, with a collective every phase (panel broadcast proxy). One
// sample per run: total wall cycles, which the stability bench runs 36
// times the way the paper ran 36 LINPACKs.
#pragma once

#include <cstdint>
#include <memory>

#include "kernel/elf.hpp"

namespace bg::apps {

struct LinpackParams {
  int phases = 24;
  std::uint64_t computePerPhase = 300'000;
  std::uint32_t touchBytes = 128 << 10;  // per-phase panel sweep
  std::uint32_t touchStride = 128;
  bool useCollective = true;  // allreduce per phase (multi-rank runs)
};

std::shared_ptr<kernel::ElfImage> linpackImage(const LinpackParams& p = {});

}  // namespace bg::apps

// Checkpoint-style I/O kernel (paper §IV-A / Fig 2 / bench_io_offload).
//
// Each rank opens its own checkpoint file, writes `chunks` buffers of
// `chunkBytes`, seeks back, reads one chunk to verify the path, and
// closes. On CNK every call function-ships to the rank's ioproxy.
//
// Samples emitted per rank, in order:
//   0: open() result (fd, or -errno)
//   1: total cycles spent writing
//   2: bytes read back on verification
#pragma once

#include <cstdint>
#include <memory>

#include "kernel/elf.hpp"

namespace bg::apps {

struct IoKernelParams {
  int chunks = 4;
  std::uint32_t chunkBytes = 16 << 10;
  /// Compute between chunks (overlap pattern of real checkpointers).
  std::uint64_t computeBetween = 30'000;
};

std::shared_ptr<kernel::ElfImage> ioKernelImage(
    const IoKernelParams& p = {});

}  // namespace bg::apps

// mpiBench_Allreduce-style benchmark (Phloem suite; paper §V-D).
//
// Each rank loops: MPI_Allreduce of a double-sum, timing every
// iteration. On CNK the per-iteration times are essentially constant
// (the paper measured sigma = 0.0007us over a million iterations); on
// the FWK, daemons and ticks delay individual ranks, and since the
// combine completes only when the LAST contributor arrives, one node's
// noise becomes everyone's latency.
#pragma once

#include <cstdint>
#include <memory>

#include "kernel/elf.hpp"

namespace bg::apps {

struct AllreduceParams {
  int iterations = 1000;
  std::uint64_t doubles = 1;  // double-sum payload elements
  /// Compute between iterations (models the application work whose
  /// duration noise perturbs).
  std::uint64_t computeCycles = 20'000;
};

std::shared_ptr<kernel::ElfImage> allreduceImage(
    const AllreduceParams& p = {});

}  // namespace bg::apps

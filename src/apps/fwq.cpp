#include "apps/fwq.hpp"

#include "kernel/syscalls.hpp"
#include "runtime/rt_ids.hpp"
#include "vm/builder.hpp"

namespace bg::apps {

namespace {

using vm::Reg;

// Register conventions inside this program (r0-r6 are the ABI regs).
constexpr Reg rBuf = 16;     // this thread's vector buffer
constexpr Reg rSamp = 17;    // outer sample counter
constexpr Reg rRep = 18;     // inner repetition counter
constexpr Reg rT0 = 19;
constexpr Reg rT1 = 20;
constexpr Reg rTmp = 21;
constexpr Reg rTidBase = 23; // where created tids are stored

// Per-thread 64KB block at heapBase + 64KB + i*64KB: the DAXPY vectors
// live at offset 0, the L3-visible stream region at offset 8KB.
constexpr std::int64_t kBlockBase = 64 * 1024;
constexpr std::int64_t kBlockStride = 64 * 1024;
constexpr std::int64_t kStreamOffset = 8 * 1024;

/// Emit the timed FWQ loop reading its buffer-block address from rBuf.
void emitFwqLoop(vm::ProgramBuilder& b, const FwqParams& p) {
  // Untimed warmup: two full iterations pull the vectors into L1,
  // settle the shared cache, and let sibling threads get past their
  // own cold starts (the FWQ methodology measures steady state).
  for (int w = 0; w < 2; ++w) {
    b.memTouch(rBuf, 0, p.vecBytes);
    if (p.streamBytes > 0) {
      b.memTouch(rBuf, kStreamOffset, p.streamBytes, p.streamStride);
    }
    const auto warm = b.loopBegin(rRep, p.repsPerSample);
    b.compute(p.cyclesPerRep);
    b.loopEnd(rRep, warm);
  }

  const auto outer = b.loopBegin(rSamp, p.samples);
  b.readTb(rT0);
  b.memTouch(rBuf, 0, p.vecBytes);
  if (p.streamBytes > 0) {
    b.memTouch(rBuf, kStreamOffset, p.streamBytes, p.streamStride);
  }
  const auto inner = b.loopBegin(rRep, p.repsPerSample);
  b.compute(p.cyclesPerRep);
  b.loopEnd(rRep, inner);
  b.readTb(rT1);
  b.sub(rTmp, rT1, rT0);
  b.sample(rTmp);
  b.loopEnd(rSamp, outer);
}

}  // namespace

std::shared_ptr<kernel::ElfImage> fwqImage(const FwqParams& p) {
  vm::ProgramBuilder b("fwq");

  // --- main ---
  // Worker buffers at heapBase + 64KB + i*16KB; created tids saved at
  // heapBase + 1KB + i*8 so main can join them.
  b.mov(rTidBase, 10);
  b.addi(rTidBase, rTidBase, 1024);

  std::vector<std::size_t> startPcFixups;
  for (int i = 1; i < p.threads; ++i) {
    // r1 = worker entry pc (patched below), r2 = worker buffer.
    startPcFixups.push_back(b.size());
    b.li(vm::kArg0, -1);  // placeholder for worker pc
    b.mov(2, 10);
    b.addi(2, 2, kBlockBase + i * kBlockStride);
    b.rtcall(static_cast<std::int64_t>(rt::Rt::kPthreadCreate));
    b.store(rTidBase, vm::kRetReg, (i - 1) * 8);
  }

  // Main runs the loop on its own buffer block.
  b.mov(rBuf, 10);
  b.addi(rBuf, rBuf, kBlockBase);
  emitFwqLoop(b, p);

  // Join the workers.
  for (int i = 1; i < p.threads; ++i) {
    b.load(vm::kArg0, rTidBase, (i - 1) * 8);
    b.rtcall(static_cast<std::int64_t>(rt::Rt::kPthreadJoin));
  }
  b.li(vm::kArg0, 0);
  b.syscall(static_cast<std::int64_t>(kernel::Sys::kExit));

  // --- worker ---
  const std::int64_t workerEntry = b.label();
  b.mov(rBuf, vm::kArg0);  // arg = buffer address
  emitFwqLoop(b, p);
  b.halt();

  for (std::size_t fix : startPcFixups) b.patchTarget(fix, workerEntry);

  return kernel::ElfImage::makeExecutable("fwq", std::move(b).build(),
                                          /*textBytes=*/1 << 20,
                                          /*dataBytes=*/1 << 20);
}

}  // namespace bg::apps

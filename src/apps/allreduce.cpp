#include "apps/allreduce.hpp"

#include "kernel/syscalls.hpp"
#include "runtime/rt_ids.hpp"
#include "vm/builder.hpp"

namespace bg::apps {

std::shared_ptr<kernel::ElfImage> allreduceImage(const AllreduceParams& p) {
  using vm::Reg;
  constexpr Reg rIter = 16;
  constexpr Reg rT0 = 17;
  constexpr Reg rT1 = 18;
  constexpr Reg rTmp = 19;
  constexpr Reg rSrc = 20;
  constexpr Reg rDst = 21;

  vm::ProgramBuilder b("allreduce");
  // Source vector at heapBase, destination 4KB above it. Seed the
  // source with rank+1 so the sum is checkable host-side.
  b.mov(rSrc, 10);
  b.mov(rDst, 10);
  b.addi(rDst, rDst, 4096);
  // Write rank+1 as a crude "double": store the integer bits; the
  // host-side check reads them back symmetrically.
  b.addi(rTmp, 1, 1);
  b.store(rSrc, rTmp, 0);

  const auto top = b.loopBegin(rIter, p.iterations);
  if (p.computeCycles > 0) b.compute(p.computeCycles);
  b.readTb(rT0);
  b.mov(1, rSrc);
  b.li(2, static_cast<std::int64_t>(p.doubles));
  b.mov(3, rDst);
  b.rtcall(static_cast<std::int64_t>(rt::Rt::kMpiAllreduce));
  b.readTb(rT1);
  b.sub(rTmp, rT1, rT0);
  b.sample(rTmp);
  b.loopEnd(rIter, top);

  b.li(vm::kArg0, 0);
  b.syscall(static_cast<std::int64_t>(kernel::Sys::kExit));
  return kernel::ElfImage::makeExecutable("allreduce", std::move(b).build());
}

}  // namespace bg::apps

// FTQ (Fixed Time Quanta), the companion of FWQ in the LLNL benchmark
// pair the paper cites (§V-A ref [8]).
//
// Where FWQ times a fixed amount of work, FTQ counts how many fixed
// work units complete inside each fixed time window: noise shows up as
// windows with FEWER completed units. Each sample is the unit count of
// one window.
#pragma once

#include <cstdint>
#include <memory>

#include "kernel/elf.hpp"

namespace bg::apps {

struct FtqParams {
  int windows = 1000;
  std::uint64_t windowCycles = 850'000;  // 1ms at 850MHz
  std::uint64_t unitCycles = 2'000;      // one work unit
  int threads = 4;
};

std::shared_ptr<kernel::ElfImage> ftqImage(const FtqParams& p = {});

}  // namespace bg::apps

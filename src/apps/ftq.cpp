#include "apps/ftq.hpp"

#include "kernel/syscalls.hpp"
#include "runtime/rt_ids.hpp"
#include "vm/builder.hpp"

namespace bg::apps {

namespace {

using vm::Reg;
constexpr Reg rWin = 16;    // window counter
constexpr Reg rCount = 17;  // units completed this window
constexpr Reg rEnd = 18;    // window end timebase
constexpr Reg rNow = 19;
constexpr Reg rTidBase = 20;

void emitFtqLoop(vm::ProgramBuilder& b, const FtqParams& p) {
  const auto outer = b.loopBegin(rWin, p.windows);
  b.readTb(rEnd);
  b.addi(rEnd, rEnd, static_cast<std::int64_t>(p.windowCycles));
  b.li(rCount, 0);
  const auto unit = b.label();
  b.compute(p.unitCycles);
  b.addi(rCount, rCount, 1);
  b.readTb(rNow);
  b.blt(rNow, rEnd, unit);
  b.sample(rCount);
  b.loopEnd(rWin, outer);
}

}  // namespace

std::shared_ptr<kernel::ElfImage> ftqImage(const FtqParams& p) {
  vm::ProgramBuilder b("ftq");
  b.mov(rTidBase, 10);
  b.addi(rTidBase, rTidBase, 1024);

  std::vector<std::size_t> fixes;
  for (int i = 1; i < p.threads; ++i) {
    fixes.push_back(b.size());
    b.li(vm::kArg0, -1);
    b.li(2, 0);
    b.rtcall(static_cast<std::int64_t>(rt::Rt::kPthreadCreate));
    b.store(rTidBase, vm::kRetReg, (i - 1) * 8);
  }
  emitFtqLoop(b, p);
  for (int i = 1; i < p.threads; ++i) {
    b.load(vm::kArg0, rTidBase, (i - 1) * 8);
    b.rtcall(static_cast<std::int64_t>(rt::Rt::kPthreadJoin));
  }
  b.li(vm::kArg0, 0);
  b.syscall(static_cast<std::int64_t>(kernel::Sys::kExit));

  const std::int64_t worker = b.label();
  emitFtqLoop(b, p);
  b.halt();
  for (auto f : fixes) b.patchTarget(f, worker);

  return kernel::ElfImage::makeExecutable("ftq", std::move(b).build());
}

}  // namespace bg::apps

#include "apps/io_kernel.hpp"

#include "kernel/syscalls.hpp"
#include "vm/builder.hpp"

namespace bg::apps {

namespace {
using vm::Reg;
constexpr Reg rFd = 16;
constexpr Reg rChunk = 17;
constexpr Reg rT0 = 18;
constexpr Reg rT1 = 19;
constexpr Reg rTmp = 20;
constexpr Reg rPath = 21;

/// Store "ckpt.<rank>" at heapBase+256: build the digits from the rank
/// register so every rank writes a distinct file.
void emitPathBuild(vm::ProgramBuilder& b) {
  b.mov(rPath, 10);
  b.addi(rPath, rPath, 256);
  // "/tmp/ckpt." is 10 chars; append rank as a single byte digit char
  // ('0' + rank%10) plus NUL. Rank digit arithmetic in-VM.
  const char prefix[] = "/tmp/ckpt.";
  std::uint64_t w0 = 0;
  for (int i = 0; i < 8; ++i) {
    w0 |= static_cast<std::uint64_t>(
              static_cast<unsigned char>(prefix[i]))
          << (8 * i);
  }
  b.li(rTmp, static_cast<std::int64_t>(w0));
  b.store(rPath, rTmp, 0);
  // Second word: "t." + digit + NUL...
  std::uint64_t w1 = static_cast<unsigned char>(prefix[8]) |
                     (static_cast<std::uint64_t>(
                          static_cast<unsigned char>(prefix[9]))
                      << 8);
  b.li(rTmp, static_cast<std::int64_t>(w1));
  // digit = '0' + rank%10; assume rank < 10 per node file namespace —
  // larger ranks reuse digits, which is still a valid distinct-file
  // test per pset. digit char goes to byte 2.
  constexpr Reg rDigit = 22;
  b.li(rDigit, 10);
  // rank % 10 via repeated subtract (ranks are small).
  constexpr Reg rRank = 23;
  b.mov(rRank, 1);
  const auto modTop = b.label();
  const std::size_t modDone = b.emitForwardBranch(vm::Op::kBlt, rRank,
                                                  rDigit);
  b.sub(rRank, rRank, rDigit);
  b.jump(modTop);
  b.patchHere(modDone);
  b.addi(rRank, rRank, '0');
  b.shl(rRank, rRank, 16);
  b.orr(rTmp, rTmp, rRank);
  b.store(rPath, rTmp, 8);
}
}  // namespace

std::shared_ptr<kernel::ElfImage> ioKernelImage(const IoKernelParams& p) {
  vm::ProgramBuilder b("io_kernel");
  emitPathBuild(b);

  // open(path, O_CREAT|O_WRONLY|O_TRUNC)
  b.mov(1, rPath);
  b.li(2, static_cast<std::int64_t>(kernel::kOCreat | kernel::kOWronly |
                                    kernel::kOTrunc));
  b.syscall(static_cast<std::int64_t>(kernel::Sys::kOpen));
  b.mov(rFd, vm::kRetReg);
  b.sample(rFd);

  // Write chunks, timing the whole write phase.
  b.readTb(rT0);
  const auto top = b.loopBegin(rChunk, p.chunks);
  if (p.computeBetween > 0) b.compute(p.computeBetween);
  b.mov(1, rFd);
  b.mov(2, 10);  // write data from heap base
  b.li(3, p.chunkBytes);
  b.syscall(static_cast<std::int64_t>(kernel::Sys::kWrite));
  b.loopEnd(rChunk, top);
  b.readTb(rT1);
  b.sub(rTmp, rT1, rT0);
  b.sample(rTmp);

  // Seek to 0 and read one chunk back.
  b.mov(1, rFd);
  b.li(2, 0);
  b.li(3, static_cast<std::int64_t>(kernel::kSeekSet));
  b.syscall(static_cast<std::int64_t>(kernel::Sys::kLseek));

  b.mov(1, rFd);
  b.mov(2, 10);
  b.li(3, p.chunkBytes);
  b.syscall(static_cast<std::int64_t>(kernel::Sys::kRead));
  b.sample(vm::kRetReg);

  b.mov(1, rFd);
  b.syscall(static_cast<std::int64_t>(kernel::Sys::kClose));

  b.li(vm::kArg0, 0);
  b.syscall(static_cast<std::int64_t>(kernel::Sys::kExit));
  return kernel::ElfImage::makeExecutable("io_kernel", std::move(b).build());
}

}  // namespace bg::apps

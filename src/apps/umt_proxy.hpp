// UMT proxy (paper §V-B): a Python-driven application's kernel-visible
// behaviour — dlopen of multiple dynamic libraries at startup, then
// OpenMP-style threaded compute, then an output file written through
// the I/O path.
//
// Samples emitted by the main thread, in order:
//   0: cycles spent in the dlopen phase (eager on CNK, lazy on FWK)
//   1: cycles spent in the threaded compute phase (where the FWK pays
//      its lazy library page faults from networked storage)
//   2: bytes written to the output file (syscall result)
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "kernel/elf.hpp"

namespace bg::apps {

struct UmtParams {
  int libs = 2;             // dynamic libraries to dlopen
  int threads = 4;
  std::uint64_t computeCycles = 120'000;  // per thread
  std::uint32_t libTouchBytes = 16 << 10; // library text executed/touched
  std::uint32_t outputBytes = 8192;
};

std::shared_ptr<kernel::ElfImage> umtImage(const UmtParams& p = {});

/// The library images the job must carry (pass as JobSpec::libs).
std::vector<std::shared_ptr<kernel::ElfImage>> umtLibraries(
    const UmtParams& p = {});

}  // namespace bg::apps

#include "apps/omp_app.hpp"

#include "kernel/syscalls.hpp"
#include "runtime/rt_ids.hpp"
#include "vm/builder.hpp"

namespace bg::apps {

std::shared_ptr<kernel::ElfImage> ompAppImage(const OmpAppParams& p) {
  using vm::Reg;
  constexpr Reg rPhase = 16;
  constexpr Reg rI = 17;
  constexpr Reg rOk = 18;      // workers created this phase
  constexpr Reg rTidBase = 19;
  constexpr Reg rTmp = 20;

  vm::ProgramBuilder b("omp_app");
  b.mov(rTidBase, 10);
  b.addi(rTidBase, rTidBase, 1024);

  std::vector<std::size_t> entryFixups;

  const auto phaseTop = b.loopBegin(rPhase, p.phases);

  // MPI phase: compute + allreduce with the other ranks.
  b.compute(p.phaseCycles);
  b.mov(1, 10);
  b.li(2, 1);
  b.mov(3, 10);
  b.addi(3, 3, 256);
  b.rtcall(static_cast<std::int64_t>(rt::Rt::kMpiAllreduce));

  // OpenMP phase: fork a team of ompThreads (master + workers). On a
  // statically-partitioned CNK node, worker creation fails with EAGAIN
  // unless this process may run threads on other cores (§VIII).
  b.li(rOk, 0);
  for (int i = 1; i < p.ompThreads; ++i) {
    entryFixups.push_back(b.size());
    b.li(vm::kArg0, -1);  // worker entry pc, patched below
    b.li(2, 0);
    b.rtcall(static_cast<std::int64_t>(rt::Rt::kPthreadCreate));
    // Success iff 0 < tid < 2^20 (errors are -errno as unsigned).
    b.li(rTmp, 1 << 20);
    const std::size_t skip =
        b.emitForwardBranch(vm::Op::kBlt, rTmp, vm::kRetReg);
    b.shl(rI, rOk, 3);
    b.add(rI, rTidBase, rI);
    b.store(rI, vm::kRetReg, 0);
    b.addi(rOk, rOk, 1);
    b.patchHere(skip);
  }
  b.sample(rOk);  // per-phase sample: team workers actually created

  // Master does its chunk of the parallel work, then joins the team.
  b.compute(p.phaseCycles);
  b.li(rI, 0);
  const auto joinTop = b.label();
  const std::size_t joinDone = b.emitForwardBranch(vm::Op::kBeqz, rOk);
  b.shl(rTmp, rI, 3);
  b.add(rTmp, rTidBase, rTmp);
  b.load(vm::kArg0, rTmp, 0);
  b.rtcall(static_cast<std::int64_t>(rt::Rt::kPthreadJoin));
  b.addi(rI, rI, 1);
  b.blt(rI, rOk, joinTop);
  b.patchHere(joinDone);

  b.loopEnd(rPhase, phaseTop);

  b.li(vm::kArg0, 0);
  b.syscall(static_cast<std::int64_t>(kernel::Sys::kExit));

  // Worker: compute its chunk, exit (join synchronizes the team).
  const std::int64_t workerEntry = b.label();
  b.compute(p.phaseCycles);
  b.halt();

  for (std::size_t fix : entryFixups) b.patchTarget(fix, workerEntry);

  return kernel::ElfImage::makeExecutable("omp_app", std::move(b).build());
}

}  // namespace bg::apps

#include "apps/umt_proxy.hpp"

#include "kernel/syscalls.hpp"
#include "runtime/rt_ids.hpp"
#include "vm/builder.hpp"

namespace bg::apps {

std::vector<std::shared_ptr<kernel::ElfImage>> umtLibraries(
    const UmtParams& p) {
  std::vector<std::shared_ptr<kernel::ElfImage>> libs;
  for (int i = 0; i < p.libs; ++i) {
    libs.push_back(kernel::ElfImage::makeLibrary(
        "libumt" + std::to_string(i) + ".so", /*textBytes=*/48 << 10,
        /*dataBytes=*/16 << 10));
  }
  return libs;
}

std::shared_ptr<kernel::ElfImage> umtImage(const UmtParams& p) {
  using vm::Reg;
  constexpr Reg rT0 = 16;
  constexpr Reg rT1 = 17;
  constexpr Reg rTmp = 18;
  constexpr Reg rLibBase = 19;  // first dlopened library handle/base
  constexpr Reg rTidBase = 20;
  constexpr Reg rFd = 21;
  constexpr Reg rPathBuf = 22;

  vm::ProgramBuilder b("umt");
  b.mov(rTidBase, 10);
  b.addi(rTidBase, rTidBase, 1024);

  // --- dlopen phase (Python extension loading) ---
  b.readTb(rT0);
  for (int i = 0; i < p.libs; ++i) {
    b.li(vm::kArg0, i);
    b.rtcall(static_cast<std::int64_t>(rt::Rt::kDlopen));
    if (i == 0) b.mov(rLibBase, vm::kRetReg);
  }
  b.readTb(rT1);
  b.sub(rTmp, rT1, rT0);
  b.sample(rTmp);

  // --- threaded compute phase ---
  b.readTb(rT0);
  std::vector<std::size_t> fixups;
  for (int i = 1; i < p.threads; ++i) {
    fixups.push_back(b.size());
    b.li(vm::kArg0, -1);
    b.mov(2, rLibBase);  // workers touch the dlopened library too
    b.rtcall(static_cast<std::int64_t>(rt::Rt::kPthreadCreate));
    b.store(rTidBase, vm::kRetReg, (i - 1) * 8);
  }
  // Master executes out of the library image as well: on the FWK this
  // is where lazy library pages fault in from networked storage.
  b.memTouch(rLibBase, 0, p.libTouchBytes);
  b.compute(p.computeCycles);
  for (int i = 1; i < p.threads; ++i) {
    b.load(vm::kArg0, rTidBase, (i - 1) * 8);
    b.rtcall(static_cast<std::int64_t>(rt::Rt::kPthreadJoin));
  }
  b.readTb(rT1);
  b.sub(rTmp, rT1, rT0);
  b.sample(rTmp);

  // --- output file via the I/O path ---
  // Path string "/tmp/umt.out" built in memory at heapBase+256.
  b.mov(rPathBuf, 10);
  b.addi(rPathBuf, rPathBuf, 256);
  const char path[] = "/tmp/umt.out";
  for (std::size_t i = 0; i < sizeof(path); i += 8) {
    std::uint64_t word = 0;
    for (std::size_t j = 0; j < 8 && i + j < sizeof(path); ++j) {
      word |= static_cast<std::uint64_t>(
                  static_cast<unsigned char>(path[i + j]))
              << (8 * j);
    }
    b.li(rTmp, static_cast<std::int64_t>(word));
    b.store(rPathBuf, rTmp, static_cast<std::int64_t>(i));
  }
  b.mov(1, rPathBuf);
  b.li(2, static_cast<std::int64_t>(kernel::kOCreat | kernel::kOWronly));
  b.syscall(static_cast<std::int64_t>(kernel::Sys::kOpen));
  b.mov(rFd, vm::kRetReg);

  b.mov(1, rFd);
  b.mov(2, 10);  // write from heap base
  b.li(3, p.outputBytes);
  b.syscall(static_cast<std::int64_t>(kernel::Sys::kWrite));
  b.sample(vm::kRetReg);  // bytes written

  b.mov(1, rFd);
  b.syscall(static_cast<std::int64_t>(kernel::Sys::kClose));

  b.li(vm::kArg0, 0);
  b.syscall(static_cast<std::int64_t>(kernel::Sys::kExit));

  // Worker: touch the library, compute, exit.
  const std::int64_t workerEntry = b.label();
  b.mov(rLibBase, vm::kArg0);
  b.memTouch(rLibBase, 0, p.libTouchBytes);
  b.compute(p.computeCycles);
  b.halt();

  for (std::size_t fix : fixups) b.patchTarget(fix, workerEntry);

  return kernel::ElfImage::makeExecutable("umt", std::move(b).build());
}

}  // namespace bg::apps

// FWQ (Fixed Work Quanta) noise benchmark (paper §V-A, Figs 5-7).
//
// Single-node, no communication: a fixed loop of work (a DAXPY on a
// 256-element vector that fits in L1, repeated 256 times per sample)
// timed 12,000 times on each of the node's four cores. Without noise
// every sample takes the same number of cycles; the per-sample
// timebase deltas land in host-visible sample sinks.
#pragma once

#include <cstdint>
#include <memory>

#include "kernel/elf.hpp"

namespace bg::apps {

struct FwqParams {
  int samples = 12000;
  int repsPerSample = 256;  // DAXPY repetitions per sample
  /// Cycles of one 256-element DAXPY repetition. Calibrated so a clean
  /// sample costs ~658.9K cycles (~0.775ms at 850MHz; the paper's
  /// minimum was 658,958).
  std::uint64_t cyclesPerRep = 2570;
  std::uint32_t vecBytes = 6144;  // 3 x 256 doubles: x, y, and result
  /// A light per-sample sweep over a region larger than L1, so each
  /// sample generates a little shared-cache traffic. This is what
  /// gives CNK its tiny-but-nonzero noise floor (cross-core bank
  /// arbitration), matching the paper's <0.006% rather than an
  /// implausible exact zero. Set to 0 to disable.
  std::uint32_t streamBytes = 48 << 10;
  std::uint32_t streamStride = 4096;  // one L1 set: ~12 L3 accesses/sample
  int threads = 4;  // one per core
};

/// Executable image: main thread spawns (threads-1) workers, runs the
/// FWQ loop itself, joins, exits. Sample sink indices are the thread
/// creation order: 0 = main.
std::shared_ptr<kernel::ElfImage> fwqImage(const FwqParams& p = {});

}  // namespace bg::apps

#include "kernel/futex.hpp"

#include <algorithm>

namespace bg::kernel {

void FutexTable::enqueue(std::uint32_t pid, hw::VAddr uaddr, Thread* t) {
  queues_[{pid, uaddr}].push_back(t);
}

std::vector<Thread*> FutexTable::dequeue(std::uint32_t pid, hw::VAddr uaddr,
                                         std::uint64_t n) {
  std::vector<Thread*> out;
  auto it = queues_.find({pid, uaddr});
  if (it == queues_.end()) return out;
  auto& q = it->second;
  while (!q.empty() && out.size() < n) {
    out.push_back(q.front());
    q.pop_front();
  }
  if (q.empty()) queues_.erase(it);
  return out;
}

void FutexTable::remove(Thread* t) {
  for (auto it = queues_.begin(); it != queues_.end();) {
    auto& q = it->second;
    q.erase(std::remove(q.begin(), q.end(), t), q.end());
    it = q.empty() ? queues_.erase(it) : std::next(it);
  }
}

std::size_t FutexTable::waiterCount(std::uint32_t pid,
                                    hw::VAddr uaddr) const {
  auto it = queues_.find({pid, uaddr});
  return it == queues_.end() ? 0 : it->second.size();
}

std::size_t FutexTable::totalWaiters() const {
  std::size_t n = 0;
  for (const auto& [k, q] : queues_) n += q.size();
  return n;
}

}  // namespace bg::kernel

// Syscall ABI shared by CNK and the FWK baseline.
//
// Numbers follow the Linux/PPC32 table where one exists — the paper's
// whole point in §IV-B is that CNK speaks enough of the *standard* ABI
// (clone, futex, set_tid_address, sigaction, uname, brk, mmap) for
// unmodified glibc/NPTL to run. BG-specific SPI extensions live above
// 1000.
#pragma once

#include <cstdint>

namespace bg::kernel {

enum class Sys : std::int64_t {
  kExit = 1,
  kRead = 3,
  kWrite = 4,
  kOpen = 5,
  kClose = 6,
  kUnlink = 10,
  kChdir = 12,
  kLseek = 19,
  kGetpid = 20,
  kMkdir = 39,
  kDup = 41,
  kBrk = 45,
  kGettimeofday = 78,
  kMmap = 90,
  kMunmap = 91,
  kStat = 106,
  kFstat = 108,
  kClone = 120,
  kUname = 122,
  kMprotect = 125,
  kSchedYield = 158,
  kNanosleep = 162,
  kRtSigreturn = 173,
  kRtSigaction = 174,
  kGetcwd = 183,
  kGettid = 207,
  kFutex = 221,
  kSchedSetaffinity = 241,
  kSetTidAddress = 232,
  kExitGroup = 234,
  kTgkill = 250,

  // --- Blue Gene SPI extensions (CNK-only; FWK returns -ENOSYS) ---
  kPersistOpen = 1001,   // named persistent memory (paper §IV-D)
  kVirt2Phys = 1002,     // static-map query for user-space DMA (§V-C)
  kGetMemRegions = 1003, // dump of the static partition map
  kRasEvent = 1004,      // inject/ack RAS events (L1 parity test path)
  kClockStop = 1005,     // arm the Clock-Stop unit (bringup tooling)
  kCkptSave = 1006,      // coordinated checkpoint: barrier across the
                         // node's processes, image shipped to /ckpt
  kCkptRestore = 1007,   // rebuild job state from the committed image
};

// ---- errno (returned as negative values, Linux-style) ----
inline constexpr std::int64_t kENOENT = 2;
inline constexpr std::int64_t kEIO = 5;
inline constexpr std::int64_t kEBADF = 9;
inline constexpr std::int64_t kEAGAIN = 11;
inline constexpr std::int64_t kENOMEM = 12;
inline constexpr std::int64_t kEACCES = 13;
inline constexpr std::int64_t kEFAULT = 14;
inline constexpr std::int64_t kEBUSY = 16;
inline constexpr std::int64_t kEEXIST = 17;
inline constexpr std::int64_t kENOTDIR = 20;
inline constexpr std::int64_t kEISDIR = 21;
inline constexpr std::int64_t kEINVAL = 22;
inline constexpr std::int64_t kENOSPC = 28;
inline constexpr std::int64_t kESPIPE = 29;
inline constexpr std::int64_t kENOSYS = 38;
inline constexpr std::int64_t kENOTEMPTY = 39;

// ---- clone flags (Linux values) ----
inline constexpr std::uint64_t kCloneVm = 0x00000100;
inline constexpr std::uint64_t kCloneFs = 0x00000200;
inline constexpr std::uint64_t kCloneFiles = 0x00000400;
inline constexpr std::uint64_t kCloneSighand = 0x00000800;
inline constexpr std::uint64_t kCloneThread = 0x00010000;
inline constexpr std::uint64_t kCloneSysvsem = 0x00040000;
inline constexpr std::uint64_t kCloneSettls = 0x00080000;
inline constexpr std::uint64_t kCloneParentSettid = 0x00100000;
inline constexpr std::uint64_t kCloneChildCleartid = 0x00200000;

/// The exact flag set glibc's NPTL passes to clone. CNK validates the
/// incoming flags against this mask and rejects anything else — the
/// paper's "static set of flags" observation (§IV-B1).
inline constexpr std::uint64_t kNptlCloneFlags =
    kCloneVm | kCloneFs | kCloneFiles | kCloneSighand | kCloneThread |
    kCloneSysvsem | kCloneSettls | kCloneParentSettid | kCloneChildCleartid;

// ---- futex ops ----
inline constexpr std::uint64_t kFutexWait = 0;
inline constexpr std::uint64_t kFutexWake = 1;

// ---- mmap prot/flags (Linux values) ----
inline constexpr std::uint64_t kProtRead = 1;
inline constexpr std::uint64_t kProtWrite = 2;
inline constexpr std::uint64_t kProtExec = 4;
inline constexpr std::uint64_t kMapShared = 0x01;
inline constexpr std::uint64_t kMapPrivate = 0x02;
inline constexpr std::uint64_t kMapFixed = 0x10;
inline constexpr std::uint64_t kMapAnonymous = 0x20;
/// MAP_COPY: load the whole file image eagerly (the ld.so requirement
/// CNK satisfies; paper §IV-B2).
inline constexpr std::uint64_t kMapCopy = 0x0400'0000;

// ---- open flags ----
inline constexpr std::uint64_t kORdonly = 0;
inline constexpr std::uint64_t kOWronly = 1;
inline constexpr std::uint64_t kORdwr = 2;
inline constexpr std::uint64_t kOCreat = 0x40;
inline constexpr std::uint64_t kOTrunc = 0x200;
inline constexpr std::uint64_t kOAppend = 0x400;

// ---- lseek whence ----
inline constexpr std::uint64_t kSeekSet = 0;
inline constexpr std::uint64_t kSeekCur = 1;
inline constexpr std::uint64_t kSeekEnd = 2;

// ---- signals ----
inline constexpr int kSigBus = 7;
inline constexpr int kSigKill = 9;
inline constexpr int kSigUsr1 = 10;
inline constexpr int kSigSegv = 11;
inline constexpr int kSigUsr2 = 12;
inline constexpr int kNumSignals = 32;

/// The kernel version string CNK reports through uname so glibc
/// believes NPTL's kernel requirements are met (paper §IV-B1).
inline constexpr const char* kCnkUnameRelease = "2.6.19.2";

}  // namespace bg::kernel

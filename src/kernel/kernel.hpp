// KernelBase: machinery shared by CNK and the FWK baseline — boot
// phase sequencing, process/thread tables, signal delivery, user-memory
// copies, and the syscalls whose semantics are kernel-agnostic.
#pragma once

#include <array>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "hw/kernel_if.hpp"
#include "hw/node.hpp"
#include "kernel/futex.hpp"
#include "kernel/job.hpp"
#include "kernel/process.hpp"
#include "kernel/syscalls.hpp"
#include "sim/types.hpp"

namespace bg::kernel {

struct BootPhase {
  std::string name;
  sim::Cycle cycles;
};

/// RAS (Reliability/Availability/Serviceability) event, as reported to
/// the control system on a real machine. The L1-parity recovery story
/// (paper §V-B) and fatal-fault diagnoses flow through this log.
struct RasEvent {
  enum class Code : std::uint8_t {
    kMachineCheck,   // L1 parity or similar hardware error
    kSegv,           // wild access / guard-page trap
    kThreadKilled,   // fatal signal took a thread down
    kJobLoaded,
    kJobExited,
    kNodeFailure,    // the whole node is lost (injected or diagnosed)
    kIoTimeout,      // a shipped I/O syscall gave up (EIO to the app)
    kIoNodeDead,     // timeout storm: this node's I/O node is gone
    kEccCorrectable,    // single-bit DDR flip, scrubbed transparently
    kEccUncorrectable,  // multi-bit DDR flip: clean panic + coredump
    kCoreHang,          // heartbeat monitor: core stopped retiring
    kCoredump,          // lightweight coredump landed on the I/O node
    // Front-door admission plane (src/frontdoor). Appended at the end:
    // RAS codes persist as raw u8 values in checkpoints and RAS logs,
    // so existing enumerator values must never shift.
    kClientRejected,    // submit bounced with SERVER_BUSY backpressure
    kFrontDoorRestart,  // in-flight request table rebuilt from persist
    // Multi-tenant control plane (svc::Accounting).
    kQuotaRejected,     // submit bounced on a per-account limit
    // Application checkpoint/restart (cnk checkpoint engine).
    kCkptBegin,         // quiesce reached, image cut started
    kCkptCommit,        // two-phase commit renamed tmp -> final image
    kCkptRestore,       // job state rebuilt from a committed image
    kCkptFailed,        // cut/ship/restore failed; previous image or
                        // scratch restart remains the truth
    // Torus hard-fault plane (hw::TorusNet link health).
    kLinkDead,          // directed torus link fail-stopped; routed around
    kLinkDegraded,      // CRC-retry storm on a directed torus link
    // RAS-driven proactive checkpoint-migrate (svc link predictor).
    kCkptMigrateBegin,     // migration window opened on a sick node
    kCkptMigrateDone,      // victim checkpointed + requeued to resume
    kCkptMigrateFallback,  // window failed; job stays in degraded mode
  };
  /// How the control system should react (src/svc aggregates on this):
  /// kInfo is bookkeeping, kWarn is recoverable (L1 parity scrubbed),
  /// kError ends a process, kFatal takes the node out of service.
  enum class Severity : std::uint8_t { kInfo, kWarn, kError, kFatal };
  sim::Cycle cycle = 0;
  Code code = Code::kMachineCheck;
  Severity severity = Severity::kError;
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  std::uint64_t detail = 0;  // faulting address / exit status / ...
  /// Monotonic per-kernel sequence number; lets a poller resume after
  /// the bounded log has dropped old entries under it.
  std::uint64_t seq = 0;
};

/// The reaction a code implies when the reporter does not say.
constexpr RasEvent::Severity defaultRasSeverity(RasEvent::Code c) {
  switch (c) {
    case RasEvent::Code::kJobLoaded:
    case RasEvent::Code::kJobExited:
    case RasEvent::Code::kCoredump:
    case RasEvent::Code::kFrontDoorRestart:
    case RasEvent::Code::kCkptBegin:
    case RasEvent::Code::kCkptCommit:
    case RasEvent::Code::kCkptRestore:
      return RasEvent::Severity::kInfo;
    case RasEvent::Code::kCkptMigrateBegin:
    case RasEvent::Code::kCkptMigrateDone:
      return RasEvent::Severity::kInfo;
    case RasEvent::Code::kIoTimeout:
    case RasEvent::Code::kEccCorrectable:
    case RasEvent::Code::kClientRejected:
    case RasEvent::Code::kQuotaRejected:
    case RasEvent::Code::kCkptFailed:
    case RasEvent::Code::kLinkDegraded:
    case RasEvent::Code::kCkptMigrateFallback:
      return RasEvent::Severity::kWarn;
    case RasEvent::Code::kNodeFailure:
    case RasEvent::Code::kEccUncorrectable:
    case RasEvent::Code::kCoreHang:
      return RasEvent::Severity::kFatal;
    default:
      return RasEvent::Severity::kError;
  }
}

/// Stable short names for RAS codes (metrics JSON keys, log dumps).
constexpr const char* rasCodeName(RasEvent::Code c) {
  switch (c) {
    case RasEvent::Code::kMachineCheck: return "machine_check";
    case RasEvent::Code::kSegv: return "segv";
    case RasEvent::Code::kThreadKilled: return "thread_killed";
    case RasEvent::Code::kJobLoaded: return "job_loaded";
    case RasEvent::Code::kJobExited: return "job_exited";
    case RasEvent::Code::kNodeFailure: return "node_failure";
    case RasEvent::Code::kIoTimeout: return "io_timeout";
    case RasEvent::Code::kIoNodeDead: return "io_node_dead";
    case RasEvent::Code::kEccCorrectable: return "ecc_correctable";
    case RasEvent::Code::kEccUncorrectable: return "ecc_uncorrectable";
    case RasEvent::Code::kCoreHang: return "core_hang";
    case RasEvent::Code::kCoredump: return "coredump";
    case RasEvent::Code::kClientRejected: return "client_rejected";
    case RasEvent::Code::kFrontDoorRestart: return "frontdoor_restart";
    case RasEvent::Code::kQuotaRejected: return "quota_rejected";
    case RasEvent::Code::kCkptBegin: return "ckpt_begin";
    case RasEvent::Code::kCkptCommit: return "ckpt_commit";
    case RasEvent::Code::kCkptRestore: return "ckpt_restore";
    case RasEvent::Code::kCkptFailed: return "ckpt_failed";
    case RasEvent::Code::kLinkDead: return "link_dead";
    case RasEvent::Code::kLinkDegraded: return "link_degraded";
    case RasEvent::Code::kCkptMigrateBegin: return "ckpt_migrate_begin";
    case RasEvent::Code::kCkptMigrateDone: return "ckpt_migrate_done";
    case RasEvent::Code::kCkptMigrateFallback:
      return "ckpt_migrate_fallback";
  }
  return "?";
}

/// Number of RasEvent::Code values (array sizing in src/svc).
inline constexpr std::size_t kNumRasCodes = 24;

class KernelBase : public hw::KernelIf {
 public:
  explicit KernelBase(hw::Node& node);

  hw::Node& node() { return node_; }
  sim::Engine& engine() { return node_.engine(); }

  /// Run the boot phase sequence; onBooted fires when complete.
  void boot(std::function<void()> onBooted = nullptr);
  bool booted() const { return booted_; }
  sim::Cycle bootCycles() const { return bootCycles_; }
  const std::vector<std::string>& bootLog() const { return bootLog_; }

  /// The phase list is the kernel's "personality": CNK's is short and
  /// flat, the FWK's is long and spawns daemons (bench_boot).
  virtual std::vector<BootPhase> bootPhases() const = 0;

  /// Load a job onto this node: create processes/threads, build memory
  /// maps, and start the main threads. Returns false on failure.
  virtual bool loadJob(const JobSpec& spec) = 0;

  /// Kernel name for reports.
  virtual const char* kernelName() const = 0;

  /// Messaging-relevant capabilities (paper §V-C): CNK lets user space
  /// drive the DMA directly and guarantees physically-contiguous
  /// regions; a stock Linux does neither cheaply.
  virtual bool supportsUserSpaceDma() const { return false; }
  virtual bool hasContiguousPhysRegions() const { return false; }

  // --- process/thread tables ---
  Process* processByPid(std::uint32_t pid);
  Thread* threadByTid(std::uint32_t tid);
  std::vector<std::unique_ptr<Process>>& processes() { return processes_; }
  /// True when every loaded process has exited (job completion).
  bool jobDone() const;

  // --- user memory ---
  /// Resolve one user virtual address to physical, possibly faulting
  /// pages in (FWK). Contiguity is guaranteed only within 4KB.
  virtual std::optional<hw::PAddr> resolveUser(Process& p, hw::VAddr va) = 0;
  bool copyFromUser(Process& p, hw::VAddr va, std::span<std::byte> out);
  bool copyToUser(Process& p, hw::VAddr va, std::span<const std::byte> in);
  std::optional<std::string> readUserString(Process& p, hw::VAddr va,
                                            std::size_t maxLen = 4096);

  // --- signals ---
  /// Deliver signo to t: push a frame resuming at `resumePc` and enter
  /// the registered handler; kills the thread if none is registered.
  /// Returns delivery cost.
  sim::Cycle deliverSignal(Thread& t, int signo, std::uint64_t resumePc);
  void killThread(Thread& t);

  /// Make a blocked thread runnable with the given syscall result and
  /// kick its core.
  void wakeThread(Thread& t, std::uint64_t result);

  // --- hw::KernelIf defaults ---
  sim::Cycle onFault(hw::Core& core, hw::ThreadCtx& t, hw::FaultKind kind,
                     hw::VAddr va) override;
  void onThreadHalt(hw::Core& core, hw::ThreadCtx& t) override;
  sim::Cycle contextSwitchCost() const override { return 150; }

  /// Experiment harness hook: provides the host-visible sample sink
  /// for thread `threadIndex` of a process (0 = main thread). Applied
  /// at thread creation so cloned FWQ workers get their own sinks.
  using SampleSinkProvider =
      std::function<std::vector<std::uint64_t>*(const Process&, int)>;
  void setSampleSinkProvider(SampleSinkProvider f) {
    sampleSink_ = std::move(f);
  }

  /// Access to the kernel's futex table (used by the user-space mutex
  /// runtime for handover unlocks). May be null.
  virtual FutexTable* futexTable() { return nullptr; }

  // statistics
  std::uint64_t syscallCount() const { return syscallCount_; }
  std::uint64_t signalsDelivered() const { return signalsDelivered_; }
  std::uint64_t threadsKilled() const { return threadsKilled_; }

  /// RAS event stream (what a service node collects; see src/svc).
  /// Bounded: oldest entries are dropped once the capacity is reached,
  /// so long fault-injection runs can't grow it without limit. Entries
  /// stay in chronological order; `seq` survives drops.
  const std::deque<RasEvent>& rasLog() const { return rasLog_; }
  std::uint64_t rasDropped() const { return rasDropped_; }
  /// Lifetime count of events logged at `s`, kept at log time so it
  /// stays accurate even after the bounded ring drops the entries.
  /// The service node's predictive-drain accounting (src/svc) checks
  /// its own sliding-window warn counts against these totals.
  std::uint64_t rasLoggedBySeverity(RasEvent::Severity s) const {
    return rasBySeverity_[static_cast<std::size_t>(s)];
  }
  std::uint64_t rasNextSeq() const { return rasNextSeq_; }
  void setRasLogCapacity(std::size_t cap) { rasLogCap_ = cap; trimRasLog(); }
  std::size_t rasLogCapacity() const { return rasLogCap_; }
  void logRas(RasEvent::Code code, std::uint32_t pid, std::uint32_t tid,
              std::uint64_t detail);
  void logRas(RasEvent::Code code, RasEvent::Severity severity,
              std::uint32_t pid, std::uint32_t tid, std::uint64_t detail);

 protected:
  /// Handle the kernel-agnostic syscall subset (gettid/getpid/uname/
  /// sigaction/sigreturn/gettimeofday/tgkill/nanosleep-as-spin...).
  /// Returns nullopt if the syscall is not in the common subset.
  std::optional<hw::HandlerResult> commonSyscall(hw::Core& core, Thread& t,
                                                 const hw::SyscallArgs& args);

  virtual const char* unameRelease() const = 0;

  std::uint32_t allocPid() { return nextPid_++; }
  std::uint32_t allocTid() { return nextTid_++; }

  static Thread& threadOf(hw::ThreadCtx& ctx) {
    return *static_cast<Thread*>(ctx.owner);
  }

  SampleSinkProvider sampleSink_;
  hw::Node& node_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::uint32_t nextPid_ = 1;
  std::uint32_t nextTid_ = 1;
  bool booted_ = false;
  sim::Cycle bootCycles_ = 0;
  std::vector<std::string> bootLog_;
  std::uint64_t syscallCount_ = 0;
  std::uint64_t signalsDelivered_ = 0;
  std::uint64_t threadsKilled_ = 0;
  std::deque<RasEvent> rasLog_;
  std::size_t rasLogCap_ = 1024;
  std::uint64_t rasDropped_ = 0;
  std::uint64_t rasNextSeq_ = 0;
  std::array<std::uint64_t, 4> rasBySeverity_{};

 private:
  void trimRasLog();
};

}  // namespace bg::kernel

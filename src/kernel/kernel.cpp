#include "kernel/kernel.hpp"

#include <algorithm>
#include <cstring>

namespace bg::kernel {

KernelBase::KernelBase(hw::Node& node) : node_(node) {
  node_.attachKernel(this);
}

void KernelBase::boot(std::function<void()> onBooted) {
  // Boot is initiated from control code (cluster bring-up, service
  // node): pin the whole event chain onto this node's lane so the
  // kernel comes up inside its own lane, not the serial lane.
  sim::Engine::LaneGuard laneGuard(engine(), node_.laneTag());
  const auto phases = bootPhases();
  const sim::Cycle start = engine().now();
  sim::Cycle at = 0;
  for (const BootPhase& ph : phases) {
    at += ph.cycles;
    engine().schedule(at, [this, name = ph.name] {
      bootLog_.push_back(name);
    });
  }
  engine().schedule(at, [this, start, cb = std::move(onBooted)] {
    booted_ = true;
    bootCycles_ = engine().now() - start;
    // The completion callback belongs to whoever initiated the boot
    // (service node, cluster) — cross-lane state, so it merges at the
    // window barrier instead of running on this node's lane.
    if (cb) engine().sharedOp([cb = std::move(cb)]() mutable { cb(); });
  });
}

Process* KernelBase::processByPid(std::uint32_t pid) {
  for (auto& p : processes_) {
    if (p->pid() == pid) return p.get();
  }
  return nullptr;
}

Thread* KernelBase::threadByTid(std::uint32_t tid) {
  for (auto& p : processes_) {
    if (Thread* t = p->threadByTid(tid)) return t;
  }
  return nullptr;
}

bool KernelBase::jobDone() const {
  bool sawUserProcess = false;
  for (const auto& p : processes_) {
    if (p->kernelResident) continue;  // daemons never exit
    sawUserProcess = true;
    if (!p->exited) return false;
  }
  return sawUserProcess;
}

bool KernelBase::copyFromUser(Process& p, hw::VAddr va,
                              std::span<std::byte> out) {
  std::size_t off = 0;
  while (off < out.size()) {
    const auto pa = resolveUser(p, va + off);
    if (!pa) return false;
    const std::uint64_t pageOff = (va + off) % hw::kPage4K;
    const std::size_t n = std::min<std::size_t>(
        out.size() - off, static_cast<std::size_t>(hw::kPage4K - pageOff));
    node_.mem().read(*pa, out.subspan(off, n));
    off += n;
  }
  return true;
}

bool KernelBase::copyToUser(Process& p, hw::VAddr va,
                            std::span<const std::byte> in) {
  std::size_t off = 0;
  while (off < in.size()) {
    const auto pa = resolveUser(p, va + off);
    if (!pa) return false;
    const std::uint64_t pageOff = (va + off) % hw::kPage4K;
    const std::size_t n = std::min<std::size_t>(
        in.size() - off, static_cast<std::size_t>(hw::kPage4K - pageOff));
    node_.mem().write(*pa, in.subspan(off, n));
    off += n;
  }
  return true;
}

std::optional<std::string> KernelBase::readUserString(Process& p, hw::VAddr va,
                                                      std::size_t maxLen) {
  std::string out;
  while (out.size() < maxLen) {
    std::byte b;
    if (!copyFromUser(p, va + out.size(), std::span(&b, 1))) {
      return std::nullopt;
    }
    if (b == std::byte{0}) return out;
    out.push_back(static_cast<char>(b));
  }
  return std::nullopt;
}

sim::Cycle KernelBase::deliverSignal(Thread& t, int signo,
                                     std::uint64_t resumePc) {
  if (signo < 0 || signo >= kNumSignals ||
      !t.proc.sig[signo].installed || signo == kSigKill) {
    killThread(t);
    return 300;
  }
  ++signalsDelivered_;
  hw::ThreadCtx& ctx = t.ctx;
  const std::uint64_t savedPc = ctx.pc;
  ctx.pc = resumePc;
  ctx.pushSignalFrame();
  ctx.pc = t.proc.sig[signo].entry;
  ctx.regs[vm::kArg0] = static_cast<std::uint64_t>(signo);
  (void)savedPc;
  if (ctx.state == hw::ThreadState::kBlocked) {
    // Signals interrupt blocked threads (handler runs, syscall is not
    // restarted in this model).
    ctx.state = hw::ThreadState::kReady;
    node_.core(ctx.coreAffinity).kick();
  }
  return 250;
}

void KernelBase::logRas(RasEvent::Code code, std::uint32_t pid,
                        std::uint32_t tid, std::uint64_t detail) {
  logRas(code, defaultRasSeverity(code), pid, tid, detail);
}

void KernelBase::logRas(RasEvent::Code code, RasEvent::Severity severity,
                        std::uint32_t pid, std::uint32_t tid,
                        std::uint64_t detail) {
  rasLog_.push_back(
      RasEvent{engine().now(), code, severity, pid, tid, detail, rasNextSeq_++});
  ++rasBySeverity_[static_cast<std::size_t>(severity)];
  trimRasLog();
}

void KernelBase::trimRasLog() {
  while (rasLog_.size() > rasLogCap_) {
    rasLog_.pop_front();
    ++rasDropped_;
  }
}

void KernelBase::killThread(Thread& t) {
  ++threadsKilled_;
  t.ctx.state = hw::ThreadState::kFaulted;
  t.proc.exited = true;  // a fatal signal takes down the process
  t.proc.exitStatus = -1;
  logRas(RasEvent::Code::kThreadKilled, t.proc.pid(), t.ctx.tid,
         static_cast<std::uint64_t>(t.ctx.pc));
}

void KernelBase::wakeThread(Thread& t, std::uint64_t result) {
  if (t.ctx.done()) return;
  t.ctx.regs[vm::kRetReg] = result;
  t.ctx.state = hw::ThreadState::kReady;
  if (t.ctx.coreAffinity >= 0) {
    node_.core(t.ctx.coreAffinity).kick();
  }
}

sim::Cycle KernelBase::onFault(hw::Core& core, hw::ThreadCtx& ctx,
                               hw::FaultKind kind, hw::VAddr va) {
  (void)core;
  Thread& t = threadOf(ctx);
  int signo = kSigSegv;
  if (kind == hw::FaultKind::kMachineCheck) signo = kSigBus;
  logRas(kind == hw::FaultKind::kMachineCheck
             ? RasEvent::Code::kMachineCheck
             : RasEvent::Code::kSegv,
         t.proc.pid(), t.ctx.tid, va);
  // Faulting instruction is skipped on handler return (documented
  // convention; real kernels would re-execute after the handler fixed
  // the mapping — our workloads use handlers for notification).
  return deliverSignal(t, signo, ctx.pc + 1);
}

void KernelBase::onThreadHalt(hw::Core& core, hw::ThreadCtx& ctx) {
  (void)core;
  Thread& t = threadOf(ctx);
  // CLONE_CHILD_CLEARTID semantics: clear the tid word and wake any
  // joiners. The futex wake itself is kernel-specific; both kernels
  // route through their futex table via this virtual-free mechanism:
  // the joiner waits on the tid word going to zero, which we signal by
  // waking all threads blocked on that address in the derived class's
  // syscall layer. Here we only clear the word.
  if (t.clearChildTid != 0) {
    const auto pa = resolveUser(t.proc, t.clearChildTid);
    if (pa) node_.mem().write64(*pa, 0);
  }
  if (t.proc.liveThreads() == 0) {
    t.proc.exited = true;
    t.proc.exitStatus = t.ctx.exitStatus;
    logRas(RasEvent::Code::kJobExited, t.proc.pid(), t.ctx.tid,
           static_cast<std::uint64_t>(t.proc.exitStatus));
  }
}

std::optional<hw::HandlerResult> KernelBase::commonSyscall(
    hw::Core& core, Thread& t, const hw::SyscallArgs& args) {
  (void)core;
  ++syscallCount_;
  using R = hw::HandlerResult;
  Process& p = t.proc;
  switch (static_cast<Sys>(args.nr)) {
    case Sys::kGetpid:
      return R::done(p.pid(), 40);
    case Sys::kGettid:
      return R::done(t.ctx.tid, 40);
    case Sys::kUname: {
      // Write the release string at the user pointer (arg0). glibc
      // checks this to decide NPTL support (paper §IV-B1).
      const char* rel = unameRelease();
      const std::size_t n = std::strlen(rel) + 1;
      if (!copyToUser(p, args.arg[0],
                      std::as_bytes(std::span(rel, n)))) {
        return R::done(static_cast<std::uint64_t>(-kEFAULT), 60);
      }
      return R::done(0, 60);
    }
    case Sys::kGettimeofday:
      return R::done(static_cast<std::uint64_t>(
                         sim::cyclesToUs(engine().now())),
                     50);
    case Sys::kRtSigaction: {
      const int signo = static_cast<int>(args.arg[0]);
      if (signo <= 0 || signo >= kNumSignals) {
        return R::done(static_cast<std::uint64_t>(-kEINVAL), 50);
      }
      p.sig[signo].installed = args.arg[1] != 0;
      p.sig[signo].entry = args.arg[1];
      return R::done(0, 60);
    }
    case Sys::kRtSigreturn: {
      if (!t.ctx.popSignalFrame()) {
        killThread(t);
        return R::halt(50);
      }
      // Result register was restored from the frame; return it so the
      // core's kDone write is a no-op value-wise.
      return R::done(t.ctx.regs[vm::kRetReg], 80);
    }
    case Sys::kSetTidAddress:
      t.clearChildTid = args.arg[0];
      return R::done(t.ctx.tid, 40);
    case Sys::kTgkill: {
      Thread* target = threadByTid(static_cast<std::uint32_t>(args.arg[1]));
      if (target == nullptr) {
        return R::done(static_cast<std::uint64_t>(-kEINVAL), 60);
      }
      const int signo = static_cast<int>(args.arg[2]);
      deliverSignal(*target, signo, target->ctx.pc);
      return R::done(0, 120);
    }
    case Sys::kGetcwd: {
      const std::string& cwd = p.cwd;
      if (args.arg[1] < cwd.size() + 1) {
        return R::done(static_cast<std::uint64_t>(-kEINVAL), 50);
      }
      copyToUser(p, args.arg[0],
                 std::as_bytes(std::span(cwd.data(), cwd.size() + 1)));
      return R::done(cwd.size() + 1, 80);
    }
    default:
      return std::nullopt;
  }
}

}  // namespace bg::kernel

#include "kernel/elf.hpp"

#include "sim/hash.hpp"
#include "sim/rng.hpp"

namespace bg::kernel {

namespace {
std::vector<std::byte> synthesizeText(const std::string& name,
                                      std::uint64_t bytes) {
  // Cap the materialized image; the logical size may be larger (the
  // partitioner works with logical sizes) but only this prefix carries
  // checkable content.
  const std::uint64_t materialized = std::min<std::uint64_t>(bytes, 64 << 10);
  std::vector<std::byte> out(materialized);
  sim::Rng rng(0xE1F0, name);
  for (auto& b : out) {
    b = static_cast<std::byte>(rng.next() & 0xFF);
  }
  return out;
}
}  // namespace

std::shared_ptr<ElfImage> ElfImage::makeExecutable(std::string name,
                                                   vm::Program program,
                                                   std::uint64_t textBytes,
                                                   std::uint64_t dataBytes) {
  auto img = std::shared_ptr<ElfImage>(new ElfImage());
  img->name_ = std::move(name);
  img->program_ = std::move(program);
  img->textBytes_ = textBytes;
  img->dataBytes_ = dataBytes;
  img->pic_ = false;
  img->text_ = synthesizeText(img->name_, textBytes);
  return img;
}

std::shared_ptr<ElfImage> ElfImage::makeLibrary(std::string name,
                                                std::uint64_t textBytes,
                                                std::uint64_t dataBytes) {
  auto img = std::shared_ptr<ElfImage>(new ElfImage());
  img->name_ = std::move(name);
  img->textBytes_ = textBytes;
  img->dataBytes_ = dataBytes;
  img->pic_ = true;
  img->text_ = synthesizeText(img->name_, textBytes);
  return img;
}

std::uint64_t ElfImage::textChecksum() const {
  return sim::hashBytes(text_);
}

}  // namespace bg::kernel

// Futex wait-queue table, shared by CNK and the FWK.
//
// The paper calls out that a *full* futex implementation was the key
// syscall needed for NPTL's pthread_mutex and friends (§IV-B1). Wait
// queues are keyed by (pid, user vaddr); the value check against real
// user memory is done by the caller (which owns address resolution).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "hw/addr.hpp"

namespace bg::kernel {

class Thread;

class FutexTable {
 public:
  /// Enqueue t as a waiter on (pid, uaddr). Caller has already set the
  /// thread state to Blocked.
  void enqueue(std::uint32_t pid, hw::VAddr uaddr, Thread* t);

  /// Dequeue up to n waiters in FIFO order.
  std::vector<Thread*> dequeue(std::uint32_t pid, hw::VAddr uaddr,
                               std::uint64_t n);

  /// Remove a thread from any queue it is on (exit/kill path).
  void remove(Thread* t);

  std::size_t waiterCount(std::uint32_t pid, hw::VAddr uaddr) const;
  std::size_t totalWaiters() const;

 private:
  using Key = std::pair<std::uint32_t, hw::VAddr>;
  std::map<Key, std::deque<Thread*>> queues_;
};

}  // namespace bg::kernel

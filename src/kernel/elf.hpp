// Synthetic ELF images.
//
// Real ELF parsing is out of scope; what the kernels need from an
// executable is exactly what the paper says the loader consumes
// (§IV-C): section sizes and locations for text/read-only data and
// data/bss, plus (for dynamic executables) the list of needed
// libraries. The entry point is a VM program. Text contents are
// synthesized deterministically so that copies (dynamic linking, the
// MAP_COPY path) move real, checkable bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "vm/program.hpp"

namespace bg::kernel {

class ElfImage {
 public:
  /// Build a (static) executable image.
  static std::shared_ptr<ElfImage> makeExecutable(
      std::string name, vm::Program program,
      std::uint64_t textBytes = 1 << 20, std::uint64_t dataBytes = 1 << 20);

  /// Build a position-independent shared library image. Libraries may
  /// carry callable entry points (programs) too.
  static std::shared_ptr<ElfImage> makeLibrary(
      std::string name, std::uint64_t textBytes = 256 << 10,
      std::uint64_t dataBytes = 64 << 10);

  const std::string& name() const { return name_; }
  const vm::Program& program() const { return program_; }
  std::uint64_t textBytes() const { return textBytes_; }
  std::uint64_t dataBytes() const { return dataBytes_; }
  bool isPic() const { return pic_; }

  std::vector<std::string>& neededLibs() { return needed_; }
  const std::vector<std::string>& neededLibs() const { return needed_; }

  /// Deterministic synthesized text image (used by loaders that copy
  /// real bytes; contents derived from the name so two libraries never
  /// alias).
  const std::vector<std::byte>& textContents() const { return text_; }

  /// Checksum a loader can use to verify a copied image.
  std::uint64_t textChecksum() const;

 private:
  ElfImage() = default;

  std::string name_;
  vm::Program program_;
  std::uint64_t textBytes_ = 0;
  std::uint64_t dataBytes_ = 0;
  bool pic_ = false;
  std::vector<std::string> needed_;
  std::vector<std::byte> text_;
};

}  // namespace bg::kernel

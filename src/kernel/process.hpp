// Kernel-side process and thread objects, shared by CNK and the FWK.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "hw/addr.hpp"
#include "hw/thread_ctx.hpp"
#include "kernel/elf.hpp"
#include "kernel/syscalls.hpp"

namespace bg::kernel {

class Process;

/// One entry of a process's memory map. For CNK these are the four
/// static ranges of paper Fig 3 (plus persistent regions); for the FWK
/// they are VMAs whose pages materialize on demand.
struct MemRegionDesc {
  std::string name;
  hw::VAddr vbase = 0;
  hw::PAddr pbase = 0;  // meaningful only for statically-mapped regions
  std::uint64_t size = 0;
  std::uint8_t perms = hw::kPermNone;
  std::uint64_t pageSize = hw::kPage1M;

  bool contains(hw::VAddr va) const {
    return va >= vbase && va - vbase < size;
  }
};

struct SigHandler {
  bool installed = false;
  std::uint64_t entry = 0;  // pc in the process's program
};

class Thread {
 public:
  Thread(Process& proc, std::uint32_t tid);

  hw::ThreadCtx ctx;
  Process& proc;

  /// CLONE_CHILD_CLEARTID / set_tid_address target: cleared and
  /// futex-woken on exit (this is what pthread_join waits on).
  hw::VAddr clearChildTid = 0;

  /// Guard range protecting this thread's stack (paper Fig 4).
  hw::VAddr guardLo = 0;
  hw::VAddr guardHi = 0;

  bool isMain() const;
};

class Process {
 public:
  Process(std::uint32_t pid, std::shared_ptr<ElfImage> exe);

  std::uint32_t pid() const { return pid_; }
  const std::shared_ptr<ElfImage>& exe() const { return exe_; }

  int rank = 0;      // MPI rank assigned by the job loader
  int nodeId = 0;

  std::vector<MemRegionDesc> regions;

  // Heap management (brk) within the heap/stack range.
  hw::VAddr heapBase = 0;
  hw::VAddr brk = 0;
  hw::VAddr heapLimit = 0;
  hw::VAddr stackTop = 0;
  hw::VAddr sharedBase = 0;

  std::string cwd = "/";

  SigHandler sig[kNumSignals] = {};

  /// CNK remembers the most recent mprotect() range and assumes it is
  /// the guard area for the next clone (paper §IV-C).
  hw::VAddr lastMprotectAddr = 0;
  std::uint64_t lastMprotectLen = 0;

  bool exited = false;
  std::int64_t exitStatus = 0;
  /// Kernel-resident processes (FWK daemons) never exit and do not
  /// count toward job completion.
  bool kernelResident = false;

  Thread& addThread(std::uint32_t tid);
  Thread* threadByTid(std::uint32_t tid);
  Thread* mainThread();
  const std::vector<std::unique_ptr<Thread>>& threads() const {
    return threads_;
  }
  std::size_t liveThreads() const;

  /// Resolve a virtual address through the static region map.
  std::optional<hw::PAddr> resolveStatic(hw::VAddr va) const;
  const MemRegionDesc* regionFor(hw::VAddr va) const;
  const MemRegionDesc* regionNamed(const std::string& name) const;

 private:
  std::uint32_t pid_;
  std::shared_ptr<ElfImage> exe_;
  std::vector<std::unique_ptr<Thread>> threads_;
};

}  // namespace bg::kernel

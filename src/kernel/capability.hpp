// Capability/difficulty registry behind paper Tables II and III.
//
// Each kernel declares, in code, how easy each HPC-relevant mechanism
// is to USE on it, and — when not available — how hard it would be to
// IMPLEMENT. bench_capability joins the two registries to regenerate
// the paper's tables; tests assert the qualitative orderings the paper
// claims (e.g. "No TLB misses": easy on CNK, not available on Linux).
#pragma once

#include <string>
#include <vector>

namespace bg::kernel {

enum class Ease {
  kEasy,
  kMedium,
  kHard,
  kNotAvail,
  kEasyToHard,      // "easy - hard" (depends on circumstances)
  kEasyToNotAvail,  // "easy - not avail" (version dependent)
  kMediumToHard,    // "medium - hard"
};

const char* easeLabel(Ease e);

/// Numeric difficulty for ordering assertions (lower = easier;
/// not-avail ranks hardest to use).
int easeRank(Ease e);

struct Capability {
  std::string feature;
  Ease use;              // Table II: ease of using the capability
  Ease implement;        // Table III: ease of implementing if absent
  std::string note;
};

/// The canonical feature list, in the paper's Table II row order.
std::vector<std::string> capabilityFeatures();

}  // namespace bg::kernel

// Job description: what the control system hands a node kernel at
// launch time. Mirrors the knobs the paper describes: process count
// per node (SMP/DUAL/VN modes), up-front shared memory size (§VII-B),
// and the dynamic libraries to make loadable.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "kernel/elf.hpp"

namespace bg::kernel {

struct JobSpec {
  std::shared_ptr<ElfImage> exe;
  int processes = 1;            // per node: 1 (SMP), 2 (DUAL), 4 (VN)
  std::uint64_t sharedMemBytes = 0;  // must be declared up-front on CNK
  std::vector<std::shared_ptr<ElfImage>> libs;  // available to dlopen
  /// Persistent-memory regions to import by name (paper §IV-D).
  std::vector<std::string> persistentRegions;
  int firstRank = 0;            // MPI rank of process 0 on this node
  /// Scheduler-assigned job id; names the node's checkpoint image
  /// (/ckpt/job<id>.r<firstRank>.ckpt). 0 = anonymous (no checkpoints).
  std::uint32_t jobId = 0;
  /// Boot into restore: after loading, rebuild state from the node's
  /// committed checkpoint image; on any failure run from scratch.
  bool restore = false;
};

}  // namespace bg::kernel

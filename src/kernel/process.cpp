#include "kernel/process.hpp"

namespace bg::kernel {

Thread::Thread(Process& p, std::uint32_t tid) : proc(p) {
  ctx.pid = p.pid();
  ctx.tid = tid;
  ctx.owner = this;
}

bool Thread::isMain() const {
  return !proc.threads().empty() && proc.threads().front().get() == this;
}

Process::Process(std::uint32_t pid, std::shared_ptr<ElfImage> exe)
    : pid_(pid), exe_(std::move(exe)) {}

Thread& Process::addThread(std::uint32_t tid) {
  threads_.push_back(std::make_unique<Thread>(*this, tid));
  return *threads_.back();
}

Thread* Process::threadByTid(std::uint32_t tid) {
  for (auto& t : threads_) {
    if (t->ctx.tid == tid) return t.get();
  }
  return nullptr;
}

Thread* Process::mainThread() {
  return threads_.empty() ? nullptr : threads_.front().get();
}

std::size_t Process::liveThreads() const {
  std::size_t n = 0;
  for (const auto& t : threads_) {
    if (!t->ctx.done()) ++n;
  }
  return n;
}

std::optional<hw::PAddr> Process::resolveStatic(hw::VAddr va) const {
  if (const MemRegionDesc* r = regionFor(va)) {
    return r->pbase + (va - r->vbase);
  }
  return std::nullopt;
}

const MemRegionDesc* Process::regionFor(hw::VAddr va) const {
  for (const MemRegionDesc& r : regions) {
    if (r.contains(va)) return &r;
  }
  return nullptr;
}

const MemRegionDesc* Process::regionNamed(const std::string& name) const {
  for (const MemRegionDesc& r : regions) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

}  // namespace bg::kernel

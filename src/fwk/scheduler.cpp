#include "fwk/scheduler.hpp"

#include <algorithm>

namespace bg::fwk {

FwkScheduler::FwkScheduler(int cores)
    : queues_(static_cast<std::size_t>(cores)) {}

void FwkScheduler::enqueue(kernel::Thread& t, int core, bool daemon,
                           bool front) {
  CoreQ& q = queues_[static_cast<std::size_t>(core)];
  auto& dq = daemon ? q.daemons : q.users;
  if (std::find(dq.begin(), dq.end(), &t) == dq.end()) {
    if (front) {
      dq.push_front(&t);
    } else {
      dq.push_back(&t);
    }
  }
  t.ctx.coreAffinity = core;
}

void FwkScheduler::remove(kernel::Thread& t) {
  for (CoreQ& q : queues_) {
    q.daemons.erase(std::remove(q.daemons.begin(), q.daemons.end(), &t),
                    q.daemons.end());
    q.users.erase(std::remove(q.users.begin(), q.users.end(), &t),
                  q.users.end());
  }
}

kernel::Thread* FwkScheduler::pickNext(int core) {
  CoreQ& q = queues_[static_cast<std::size_t>(core)];
  for (kernel::Thread* t : q.daemons) {
    if (t->ctx.runnable()) return t;
  }
  for (kernel::Thread* t : q.users) {
    if (t->ctx.runnable()) return t;
  }
  return nullptr;
}

void FwkScheduler::rotate(kernel::Thread& t) {
  for (CoreQ& q : queues_) {
    for (auto* dq : {&q.daemons, &q.users}) {
      auto it = std::find(dq->begin(), dq->end(), &t);
      if (it != dq->end()) {
        dq->erase(it);
        dq->push_back(&t);
        return;
      }
    }
  }
}

bool FwkScheduler::isDaemon(const kernel::Thread& t) const {
  for (const CoreQ& q : queues_) {
    if (std::find(q.daemons.begin(), q.daemons.end(), &t) !=
        q.daemons.end()) {
      return true;
    }
  }
  return false;
}

bool FwkScheduler::daemonReady(int core) const {
  const CoreQ& q = queues_[static_cast<std::size_t>(core)];
  return std::any_of(q.daemons.begin(), q.daemons.end(),
                     [](const kernel::Thread* t) {
                       return t->ctx.state == hw::ThreadState::kReady;
                     });
}

bool FwkScheduler::hasOtherReady(int core,
                                 const kernel::Thread& t) const {
  const CoreQ& q = queues_[static_cast<std::size_t>(core)];
  auto otherReady = [&](const kernel::Thread* c) {
    return c != &t && c->ctx.state == hw::ThreadState::kReady;
  };
  return std::any_of(q.daemons.begin(), q.daemons.end(), otherReady) ||
         std::any_of(q.users.begin(), q.users.end(), otherReady);
}

std::size_t FwkScheduler::queueLength(int core) const {
  const CoreQ& q = queues_[static_cast<std::size_t>(core)];
  return q.daemons.size() + q.users.size();
}

int FwkScheduler::coreOf(const kernel::Thread& t) const {
  return t.ctx.coreAffinity;
}

int FwkScheduler::nextUserCore() {
  const int c = rrCursor_;
  rrCursor_ = (rrCursor_ + 1) % static_cast<int>(queues_.size());
  return c;
}

void FwkScheduler::clearUserThreads() {
  for (CoreQ& q : queues_) q.users.clear();
  rrCursor_ = 0;
}

}  // namespace bg::fwk

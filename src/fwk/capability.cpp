#include "fwk/capability.hpp"

namespace bg::fwk {

using kernel::Capability;
using kernel::Ease;

std::vector<Capability> linuxCapabilities() {
  return {
      {"Large page use", Ease::kMedium, Ease::kEasy,
       "hugetlbfs/libhugetlbfs: needs tuning, not automatic"},
      {"Using multiple large page sizes", Ease::kMedium, Ease::kEasy,
       "multiple page sizes only recently available"},
      {"Large physically contiguous memory", Ease::kEasyToHard,
       Ease::kMedium,
       "easy to request; grant depends on fragmentation"},
      {"No TLB misses", Ease::kNotAvail, Ease::kHard,
       "demand paging makes misses structural"},
      {"Full memory protection", Ease::kEasy, Ease::kEasy,
       "page-granular perms enforced"},
      {"General dynamic linking", Ease::kEasy, Ease::kEasy,
       "stock ld.so"},
      {"Full mmap support", Ease::kEasy, Ease::kEasy,
       "demand paging + page cache"},
      {"Predictable scheduling", Ease::kMedium, Ease::kEasy,
       "isolcpus/affinity tuning required"},
      {"Over commit of threads", Ease::kMedium, Ease::kEasy,
       "native, with scheduler interference"},
      {"Performance reproducible", Ease::kMediumToHard, Ease::kMedium,
       "daemons/ticks perturb runs"},
      {"Cycle reproducible execution", Ease::kNotAvail, Ease::kMedium,
       "interrupt/entropy timing varies per run"},
  };
}

}  // namespace bg::fwk

// FWK: the full-weight (Linux-like) kernel baseline.
//
// Structurally faithful to what the paper compares against (SUSE
// 2.6.16 on BG/P hardware): 4KB demand paging with a software TLB
// refill path, a preemptive tick scheduler, a resident daemon
// population, full mmap/mprotect semantics, and a local VFS. Noise is
// never sampled from a distribution and added to results — it emerges
// from ticks, daemon preemption, TLB refills and page faults actually
// happening in the simulation.
//
// Ablation knobs (enableTick / enableDaemons / demandPaging) exist so
// bench_fwq can decompose the noise by source.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "fwk/buddy.hpp"
#include "fwk/daemons.hpp"
#include "fwk/paging.hpp"
#include "fwk/scheduler.hpp"
#include "io/nfs_sim.hpp"
#include "io/ramfs.hpp"
#include "io/vfs.hpp"
#include "kernel/futex.hpp"
#include "kernel/kernel.hpp"
#include "sim/rng.hpp"

namespace bg::fwk {

class FwkKernel final : public kernel::KernelBase {
 public:
  struct Config {
    sim::Cycle tickCycles = 850'000;  // HZ=1000 at 850MHz
    int timesliceTicks = 6;
    bool enableTick = true;
    bool enableDaemons = true;
    bool demandPaging = true;  // false => prefault at job load
    bool strippedBoot = false;
    std::uint64_t kernelReservedBytes = 48ULL << 20;
    sim::Cycle syscallBaseCost = 260;
    sim::Cycle tickHandlerCost = 1'150;
    sim::Cycle pageFaultCost = 2'600;
    sim::Cycle tlbRefillCost = 48;
    /// External entropy (interrupt timing, device init) that varies
    /// between real-world runs; vary it to model Linux's lack of
    /// cycle-reproducibility (paper Table II last row).
    std::uint64_t entropy = 0x5EED;
    std::vector<DaemonSpec> daemons = defaultDaemons();
  };

  explicit FwkKernel(hw::Node& node) : FwkKernel(node, Config()) {}
  FwkKernel(hw::Node& node, Config cfg);
  ~FwkKernel() override;

  // ---- KernelBase ----
  std::vector<kernel::BootPhase> bootPhases() const override;
  bool loadJob(const kernel::JobSpec& spec) override;
  const char* kernelName() const override { return "Linux(FWK)"; }
  std::optional<hw::PAddr> resolveUser(kernel::Process& p,
                                       hw::VAddr va) override;

  // ---- hw::KernelIf ----
  hw::HandlerResult syscall(hw::Core& core, hw::ThreadCtx& ctx,
                            const hw::SyscallArgs& args) override;
  hw::HandlerResult onTlbMiss(hw::Core& core, hw::ThreadCtx& ctx,
                              hw::VAddr va, hw::Access access) override;
  hw::HandlerResult onInterrupt(hw::Core& core, hw::Irq irq) override;
  hw::ThreadCtx* pickNext(hw::Core& core) override;
  void onThreadHalt(hw::Core& core, hw::ThreadCtx& ctx) override;
  sim::Cycle contextSwitchCost() const override { return 1'400; }

  // ---- services ----
  io::Vfs& vfs() { return vfs_; }
  io::RamFs& rootFs() { return *rootFs_; }
  io::NfsSim& nfs() { return *nfs_; }
  FwkScheduler& scheduler() { return sched_; }
  kernel::FutexTable& futexes() { return futex_; }
  kernel::FutexTable* futexTable() override { return &futex_; }
  BuddyAllocator& buddy() { return *buddy_; }
  AddressSpace& spaceOf(kernel::Process& p) { return spaces_[p.pid()]; }
  const std::string& console() const { return console_; }
  const Config& config() const { return cfg_; }

  /// FWK dynamic loading: instant VMA creation, pages fault in lazily
  /// from (remote) storage as they are touched — the structural
  /// opposite of CNK's eager full-image load.
  hw::HandlerResult dlopenForThread(kernel::Thread& t,
                                    const std::string& name);
  void registerLibImage(std::shared_ptr<kernel::ElfImage> img);

  std::uint64_t pageFaults() const { return pageFaults_; }
  std::uint64_t tlbRefillCount() const { return tlbRefills_; }
  std::uint64_t daemonWakeups() const { return daemonWakeups_; }
  std::uint64_t preemptions() const { return preemptions_; }
  std::uint64_t ticks() const { return ticks_; }

 protected:
  const char* unameRelease() const override { return "2.6.16.60-bgp-smp"; }

 private:
  hw::HandlerResult sysBrk(kernel::Thread& t, std::uint64_t newBrk);
  hw::HandlerResult sysMmap(kernel::Thread& t, const hw::SyscallArgs& a);
  hw::HandlerResult sysMunmap(kernel::Thread& t, const hw::SyscallArgs& a);
  hw::HandlerResult sysMprotect(kernel::Thread& t, const hw::SyscallArgs& a);
  hw::HandlerResult sysClone(kernel::Thread& t, const hw::SyscallArgs& a);
  hw::HandlerResult sysFutex(kernel::Thread& t, const hw::SyscallArgs& a);
  hw::HandlerResult sysNanosleep(kernel::Thread& t, std::uint64_t us);
  hw::HandlerResult sysFileIo(kernel::Thread& t, const hw::SyscallArgs& a);

  /// Materialize the page containing va. Returns the fault cost, or
  /// nullopt if the address is not covered by any VMA.
  std::optional<sim::Cycle> faultInPage(kernel::Process& p, hw::VAddr va);
  void spawnDaemons();
  void startTick();
  io::VfsClient& clientOf(kernel::Process& p);

  Config cfg_;
  FwkScheduler sched_;
  kernel::FutexTable futex_;
  std::unique_ptr<BuddyAllocator> buddy_;
  std::map<std::uint32_t, AddressSpace> spaces_;
  std::map<std::uint32_t, std::unique_ptr<io::VfsClient>> clients_;
  io::Vfs vfs_;
  std::shared_ptr<io::RamFs> rootFs_;
  std::shared_ptr<io::NfsSim> nfs_;
  std::map<std::string, std::shared_ptr<kernel::ElfImage>> libImages_;
  std::vector<vm::Program> daemonPrograms_;
  kernel::Process* daemonProc_ = nullptr;
  sim::Rng rng_;
  std::string console_;
  std::map<int, int> ticksSinceSwitch_;
  std::map<int, kernel::Thread*> lastOnCore_;
  std::uint64_t pageFaults_ = 0;
  std::uint64_t tlbRefills_ = 0;
  std::uint64_t daemonWakeups_ = 0;
  std::uint64_t preemptions_ = 0;
  std::uint64_t ticks_ = 0;
  std::uint64_t mmapCursor_ = 0x8000'0000;
};

}  // namespace bg::fwk

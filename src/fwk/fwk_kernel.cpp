#include "fwk/fwk_kernel.hpp"

#include <algorithm>
#include <cassert>

#include "cnk/partitioner.hpp"  // shared virtual-layout constants

namespace bg::fwk {

using kernel::JobSpec;
using kernel::Process;
using kernel::Sys;
using kernel::Thread;
using hw::HandlerResult;

FwkKernel::FwkKernel(hw::Node& node, Config cfg)
    : KernelBase(node),
      cfg_(std::move(cfg)),
      sched_(node.numCores()),
      rng_(cfg_.entropy, "fwk") {
  buddy_ = std::make_unique<BuddyAllocator>(
      cfg_.kernelReservedBytes,
      node.mem().size() - cfg_.kernelReservedBytes);
  rootFs_ = std::make_shared<io::RamFs>();
  nfs_ = std::make_shared<io::NfsSim>();
  vfs_.mount("/", rootFs_);
  vfs_.mount("/nfs", nfs_);
  rootFs_->mkdir("/tmp");
  rootFs_->mkdir("/lib");
}

FwkKernel::~FwkKernel() = default;

std::vector<kernel::BootPhase> FwkKernel::bootPhases() const {
  // Calibrated to §III: at the 10Hz VHDL rate a full Linux boot takes
  // weeks (~18M cycles ~ 3 weeks) and "even stripped down, Linux takes
  // days" (~4M cycles ~ 4.6 days).
  if (cfg_.strippedBoot) {
    return {
        {"bootloader + decompress kernel", 600'000},
        {"arch setup + memory init", 900'000},
        {"core kernel init", 1'100'000},
        {"minimal drivers", 700'000},
        {"initramfs + init", 700'000},
    };
  }
  // Clocksource calibration depends on interrupt/device timing that
  // varies between real-world boots (the entropy input): boot length —
  // and with it the phase of everything the kernel does afterwards —
  // is not reproducible run to run (paper Table II, last row).
  std::uint64_t e = cfg_.entropy;
  const sim::Cycle calib = 1'700'000 + sim::splitmix64(e) % 180'000;
  return {
      {"bootloader + decompress kernel", 900'000},
      {"arch setup", 650'000},
      {"buddy/slab init", 800'000},
      {"scheduler + RCU init", 550'000},
      {"timers + clocksource calibration", calib},
      {"console init", 450'000},
      {"VFS + page cache init", 900'000},
      {"driver model + bus probes", 2'600'000},
      {"network stack init", 1'400'000},
      {"block layer + disk probe", 1'900'000},
      {"filesystem mounts", 1'300'000},
      {"udev coldplug", 1'600'000},
      {"syslog/cron/services", 1'500'000},
      {"NFS client + portmap", 900'000},
      {"init scripts + getty", 850'000},
  };
}

void FwkKernel::spawnDaemons() {
  // Daemons live in a resident kernel process with an anonymous heap.
  auto proc = std::make_unique<Process>(allocPid(), nullptr);
  proc->kernelResident = true;
  daemonProc_ = proc.get();
  AddressSpace& space = spaces_[proc->pid()];
  Vma heap;
  heap.base = 0x1000'0000;
  heap.size = 16ULL << 20;
  heap.perms = hw::kPermRW;
  space.addVma(heap);
  proc->heapBase = heap.base;
  proc->brk = heap.base;
  proc->heapLimit = heap.base + heap.size;

  daemonPrograms_.reserve(cfg_.daemons.size());
  int i = 0;
  for (const DaemonSpec& spec : cfg_.daemons) {
    daemonPrograms_.push_back(daemonProgram(spec));
    Thread& t = proc->addThread(allocTid());
    t.ctx.prog = &daemonPrograms_.back();
    t.ctx.pc = 0;
    // Each daemon gets a private scratch buffer inside the heap.
    t.ctx.regs[10] = heap.base + static_cast<std::uint64_t>(i) * (64 << 10);
    t.ctx.state = hw::ThreadState::kReady;
    sched_.enqueue(t, spec.core, /*daemon=*/true);
    node_.core(spec.core).kick();
    ++i;
  }
  processes_.push_back(std::move(proc));
}

void FwkKernel::startTick() {
  // The tick grid's phase relative to application start differs per
  // boot (clocksource calibration, init timing) — a per-boot offset
  // drawn from the entropy stream.
  for (int c = 0; c < node_.numCores(); ++c) {
    node_.core(c).setDecrementer(cfg_.tickCycles +
                                 rng_.nextBelow(cfg_.tickCycles));
  }
}

bool FwkKernel::loadJob(const JobSpec& spec) {
  if (!booted_ || spec.exe == nullptr) return false;
  if (!cfg_.daemons.empty() && daemonProc_ == nullptr &&
      cfg_.enableDaemons) {
    spawnDaemons();
  }
  if (cfg_.enableTick) startTick();

  for (const auto& lib : spec.libs) registerLibImage(lib);

  for (int i = 0; i < spec.processes; ++i) {
    const std::uint32_t pid = allocPid();
    auto proc = std::make_unique<Process>(pid, spec.exe);
    Process& p = *proc;
    p.rank = spec.firstRank + i;
    p.nodeId = node_.id();
    AddressSpace& space = spaces_[pid];

    // Text: lazily paged from the executable image (local storage).
    Vma text;
    text.base = cnk::kTextVBase;
    text.size = hw::alignUp(std::max<std::uint64_t>(spec.exe->textBytes(),
                                                    hw::kPage4K),
                            hw::kPage4K);
    text.perms = hw::kPermRX;  // Linux protects text
    text.kind = Vma::Kind::kFileLazy;
    text.file = spec.exe;
    space.addVma(text);

    Vma data;
    data.base = hw::alignUp(text.base + text.size, hw::kPage4K);
    data.size = hw::alignUp(std::max<std::uint64_t>(spec.exe->dataBytes(),
                                                    hw::kPage4K),
                            hw::kPage4K);
    data.perms = hw::kPermRW;
    space.addVma(data);

    // Heap + main stack. Linux 32-bit convention: ~3GB task limit
    // (paper §VII-A); the heap VMA is generous but demand-paged.
    Vma heap;
    heap.base = hw::alignUp(data.base + data.size, hw::kPage4K);
    heap.size = 512ULL << 20;
    heap.perms = hw::kPermRW;
    space.addVma(heap);
    p.heapBase = heap.base;
    p.brk = heap.base;
    p.heapLimit = heap.base + heap.size;

    Vma stack;
    stack.size = 8ULL << 20;
    stack.base = 0xBF00'0000 - stack.size;
    stack.perms = hw::kPermRW;
    space.addVma(stack);
    p.stackTop = stack.base + stack.size;

    if (spec.sharedMemBytes > 0) {
      Vma shm;
      shm.base = cnk::kSharedVBase;
      shm.size = hw::alignUp(spec.sharedMemBytes, hw::kPage4K);
      shm.perms = hw::kPermRW;
      space.addVma(shm);
      p.sharedBase = shm.base;
    }

    if (!cfg_.demandPaging) {
      // Prefault ablation: touch every page the program can reach now.
      // The heap VMA is generous (demand-paged by design); prefault
      // only a working-set prefix of it so the frame pool is not
      // exhausted.
      const std::uint64_t heapPrefix =
          std::min<std::uint64_t>(heap.size, 32ULL << 20);
      const struct {
        hw::VAddr base;
        std::uint64_t size;
      } ranges[] = {{text.base, text.size},
                    {data.base, data.size},
                    {heap.base, heapPrefix},
                    {stack.base, stack.size}};
      for (const auto& rge : ranges) {
        for (hw::VAddr va = rge.base; va < rge.base + rge.size;
             va += hw::kPage4K) {
          faultInPage(p, va);
        }
      }
    }

    Thread& main = p.addThread(allocTid());
    main.ctx.prog = &spec.exe->program();
    main.ctx.pc = 0;
    main.ctx.regs[1] = static_cast<std::uint64_t>(p.rank);
    main.ctx.regs[2] = 1;
    main.ctx.regs[10] = p.heapBase;
    main.ctx.regs[11] = p.stackTop;
    main.ctx.regs[12] = p.sharedBase;
    main.ctx.regs[13] = data.base;
    main.ctx.regs[14] = p.heapLimit;
    main.ctx.state = hw::ThreadState::kReady;
    if (sampleSink_) main.ctx.samples = sampleSink_(p, 0);

    const int core = sched_.nextUserCore();
    sched_.enqueue(main, core);
    node_.core(core).kick();
    processes_.push_back(std::move(proc));
  }
  logRas(kernel::RasEvent::Code::kJobLoaded,
         processes_.empty() ? 0 : processes_.back()->pid(), 0,
         static_cast<std::uint64_t>(spec.processes));
  return true;
}

void FwkKernel::registerLibImage(std::shared_ptr<kernel::ElfImage> img) {
  libImages_[img->name()] = std::move(img);
}

std::optional<sim::Cycle> FwkKernel::faultInPage(Process& p, hw::VAddr va) {
  AddressSpace& space = spaces_[p.pid()];
  const hw::VAddr page = hw::alignDown(va, hw::kPage4K);
  if (space.page(page) != nullptr) return 0;
  Vma* v = space.vmaFor(va);
  if (v == nullptr) return std::nullopt;
  const auto frame = buddy_->alloc(hw::kPage4K);
  if (!frame) return std::nullopt;  // OOM
  ++pageFaults_;
  sim::Cycle cost = cfg_.pageFaultCost;
  node_.mem().zero(*frame, hw::kPage4K);
  if (v->kind == Vma::Kind::kFileLazy && v->file != nullptr) {
    const auto& img = v->file->textContents();
    const std::uint64_t off = (page - v->base) + v->fileOffset;
    if (off < img.size()) {
      const std::uint64_t n =
          std::min<std::uint64_t>(hw::kPage4K, img.size() - off);
      node_.mem().write(*frame,
                        std::span(img.data() + off, n));
    }
    // Faulting a page across networked storage: the §IV-B2 cost CNK
    // refuses to pay at run time.
    cost += v->remoteBacked
                ? nfs_->opLatency(io::FsOpKind::kRead, hw::kPage4K,
                                  engine().now())
                : 1'900;
  }
  space.mapPage(page, *frame, v->perms);
  return cost;
}

std::optional<hw::PAddr> FwkKernel::resolveUser(Process& p, hw::VAddr va) {
  AddressSpace& space = spaces_[p.pid()];
  const hw::VAddr page = hw::alignDown(va, hw::kPage4K);
  PageEntry* pe = space.page(page);
  if (pe == nullptr) {
    if (!faultInPage(p, va)) return std::nullopt;
    pe = space.page(page);
    if (pe == nullptr) return std::nullopt;
  }
  return pe->frame + (va - page);
}

// ---------------------------------------------------------------------------
// Faults / interrupts / scheduling
// ---------------------------------------------------------------------------

hw::HandlerResult FwkKernel::onTlbMiss(hw::Core& core, hw::ThreadCtx& ctx,
                                       hw::VAddr va, hw::Access access) {
  Thread& t = threadOf(ctx);
  Process& p = t.proc;
  AddressSpace& space = spaces_[p.pid()];
  const hw::VAddr page = hw::alignDown(va, hw::kPage4K);

  sim::Cycle cost = 0;
  PageEntry* pe = space.page(page);
  if (pe == nullptr) {
    const auto faultCost = faultInPage(p, va);
    if (!faultCost) {
      logRas(kernel::RasEvent::Code::kSegv, p.pid(), ctx.tid, va);
      const sim::Cycle c = deliverSignal(t, kernel::kSigSegv, ctx.pc + 1);
      return HandlerResult::resched(c);
    }
    cost += *faultCost;
    pe = space.page(page);
  }
  if (!hw::permAllows(pe->perms, access)) {
    logRas(kernel::RasEvent::Code::kSegv, p.pid(), ctx.tid, va);
    const sim::Cycle c = deliverSignal(t, kernel::kSigSegv, ctx.pc + 1);
    return HandlerResult::resched(c);
  }
  hw::TlbEntry e;
  e.pid = p.pid();
  e.vaddr = page;
  e.paddr = pe->frame;
  e.size = hw::kPage4K;
  e.perms = pe->perms;
  e.valid = true;
  core.mmu().install(e);
  ++tlbRefills_;
  return HandlerResult::done(0, cost + cfg_.tlbRefillCost);
}

hw::HandlerResult FwkKernel::onInterrupt(hw::Core& core, hw::Irq irq) {
  switch (irq) {
    case hw::Irq::kDecrementer: {
      ++ticks_;
      if (cfg_.enableTick) core.setDecrementer(cfg_.tickCycles);
      sim::Cycle cost = cfg_.tickHandlerCost;
      int& slice = ticksSinceSwitch_[core.id()];
      ++slice;
      hw::ThreadCtx* cur = core.current();
      if (cur != nullptr && cur->state == hw::ThreadState::kRunning) {
        Thread& t = threadOf(*cur);
        const bool daemonWants = sched_.daemonReady(core.id());
        const bool expired = slice >= cfg_.timesliceTicks &&
                             sched_.hasOtherReady(core.id(), t);
        if (daemonWants || expired) {
          // Preempt: back of the queue, switch to the next runnable.
          t.ctx.state = hw::ThreadState::kReady;
          sched_.rotate(t);
          Thread* next = sched_.pickNext(core.id());
          if (next != nullptr && next != &t) {
            ++preemptions_;
            if (sched_.isDaemon(*next)) ++daemonWakeups_;
            cost += contextSwitchCost();
            slice = 0;
            lastOnCore_[core.id()] = next;
            core.bind(&next->ctx);
          }
        }
      }
      return HandlerResult::done(0, cost);
    }
    case hw::Irq::kIpi:
      return HandlerResult::done(0, 900);
    case hw::Irq::kExternal: {
      // Timer/device interrupt (e.g. a daemon's sleep expiry): on
      // return from interrupt the kernel reschedules if a higher-
      // priority (daemon) thread became runnable.
      sim::Cycle cost = 700;
      hw::ThreadCtx* cur = core.current();
      if (cur != nullptr && cur->state == hw::ThreadState::kRunning &&
          sched_.daemonReady(core.id())) {
        Thread& t = threadOf(*cur);
        if (!sched_.isDaemon(t)) {
          t.ctx.state = hw::ThreadState::kReady;
          sched_.rotate(t);
          Thread* next = sched_.pickNext(core.id());
          if (next != nullptr && next != &t) {
            ++preemptions_;
            ++daemonWakeups_;
            cost += contextSwitchCost();
            ticksSinceSwitch_[core.id()] = 0;
            lastOnCore_[core.id()] = next;
            core.bind(&next->ctx);
          }
        }
      }
      return HandlerResult::done(0, cost);
    }
    case hw::Irq::kMachineCheck: {
      hw::McSyndrome syn;
      if (!node_.takeMc(&syn)) {
        // Legacy injection: Linux treats an L1 parity machine check
        // as fatal to the task (no application-recovery path —
        // contrast with CNK §V-B).
        hw::ThreadCtx* cur = core.current();
        if (cur != nullptr && !cur->done()) killThread(threadOf(*cur));
        return HandlerResult::done(0, 2'000);
      }
      // Latched hardware syndromes: Linux scrubs correctables like
      // any EDAC driver, but an uncorrectable error or parity flip
      // kills the task — and with it the node's usefulness to the
      // job. No coredump either: the page cache can't be trusted
      // after a machine check, so the FWK just reports and dies.
      hw::ThreadCtx* cur = core.current();
      const std::uint32_t pid = cur != nullptr ? cur->pid : 0;
      sim::Cycle cost = 0;
      bool fatal = false;
      hw::PAddr fatalAddr = 0;
      do {
        switch (syn.kind) {
          case hw::McSyndrome::Kind::kCorrectable:
            logRas(kernel::RasEvent::Code::kEccCorrectable,
                   kernel::RasEvent::Severity::kWarn, pid, 0, syn.paddr);
            cost += 400;  // EDAC path is heavier than CNK's scrub
            break;
          case hw::McSyndrome::Kind::kSpurious:
            logRas(kernel::RasEvent::Code::kMachineCheck,
                   kernel::RasEvent::Severity::kWarn, 0, 0, 0);
            cost += 300;
            break;
          case hw::McSyndrome::Kind::kParity:
            if (cur != nullptr && !cur->done()) killThread(threadOf(*cur));
            logRas(kernel::RasEvent::Code::kMachineCheck,
                   kernel::RasEvent::Severity::kError, pid, 0, syn.paddr);
            cost += 2'000;
            break;
          case hw::McSyndrome::Kind::kUncorrectable:
            fatal = true;
            fatalAddr = syn.paddr;
            break;
        }
      } while (node_.takeMc(&syn));
      if (fatal) {
        // Panic: fail-stop every user thread and let the service
        // node requeue the job and reboot the node.
        logRas(kernel::RasEvent::Code::kEccUncorrectable,
               kernel::RasEvent::Severity::kFatal, pid, 0, fatalAddr);
        for (auto& p : processes_) {
          if (p->kernelResident) continue;
          for (const auto& t : p->threads()) {
            if (!t->ctx.done()) killThread(*t);
          }
        }
        cost += 5'000;
      }
      return HandlerResult::done(0, cost == 0 ? 50 : cost);
    }
  }
  return HandlerResult::done(0, 50);
}

hw::ThreadCtx* FwkKernel::pickNext(hw::Core& core) {
  Thread* t = sched_.pickNext(core.id());
  if (t == nullptr) return nullptr;
  if (lastOnCore_[core.id()] != t) {
    ticksSinceSwitch_[core.id()] = 0;
    lastOnCore_[core.id()] = t;
  }
  return &t->ctx;
}

void FwkKernel::onThreadHalt(hw::Core& core, hw::ThreadCtx& ctx) {
  Thread& t = threadOf(ctx);
  const hw::VAddr ctid = t.clearChildTid;
  KernelBase::onThreadHalt(core, ctx);
  if (ctid != 0) {
    for (Thread* w : futex_.dequeue(t.proc.pid(), ctid, UINT64_MAX)) {
      wakeThread(*w, 0);
    }
  }
  futex_.remove(&t);
  sched_.remove(t);
}

// ---------------------------------------------------------------------------
// Syscalls
// ---------------------------------------------------------------------------

io::VfsClient& FwkKernel::clientOf(Process& p) {
  auto it = clients_.find(p.pid());
  if (it == clients_.end()) {
    it = clients_
             .emplace(p.pid(),
                      std::make_unique<io::VfsClient>(vfs_, engine()))
             .first;
  }
  return *it->second;
}

hw::HandlerResult FwkKernel::syscall(hw::Core& core, hw::ThreadCtx& ctx,
                                     const hw::SyscallArgs& args) {
  Thread& t = threadOf(ctx);
  if (auto r = commonSyscall(core, t, args)) {
    r->cost += cfg_.syscallBaseCost;
    return *r;
  }
  const sim::Cycle base = cfg_.syscallBaseCost;
  switch (static_cast<Sys>(args.nr)) {
    case Sys::kExit:
    case Sys::kExitGroup:
      return HandlerResult::halt(base);
    case Sys::kBrk:
      return sysBrk(t, args.arg[0]);
    case Sys::kMmap:
      return sysMmap(t, args);
    case Sys::kMunmap:
      return sysMunmap(t, args);
    case Sys::kMprotect:
      return sysMprotect(t, args);
    case Sys::kClone:
      return sysClone(t, args);
    case Sys::kFutex:
      return sysFutex(t, args);
    case Sys::kSchedYield:
      t.ctx.state = hw::ThreadState::kReady;
      sched_.rotate(t);
      return HandlerResult::resched(base + 120);
    case Sys::kSchedSetaffinity: {
      // arg0 = tid (0 = self), arg1 = target core. Linux allows thread
      // migration; the thread comes off its current core and requeues
      // on the target.
      Thread* target = args.arg[0] == 0
                           ? &t
                           : threadByTid(
                                 static_cast<std::uint32_t>(args.arg[0]));
      const int core = static_cast<int>(args.arg[1]);
      if (target == nullptr || core < 0 || core >= node_.numCores()) {
        return HandlerResult::done(
            static_cast<std::uint64_t>(-kernel::kEINVAL), base);
      }
      sched_.remove(*target);
      sched_.enqueue(*target, core);
      node_.core(core).kick();
      if (target == &t) {
        // Self-migration: leave this core now.
        t.ctx.state = hw::ThreadState::kReady;
        return HandlerResult::resched(base + 900);
      }
      return HandlerResult::done(0, base + 700);
    }
    case Sys::kNanosleep:
      return sysNanosleep(t, args.arg[0]);
    case Sys::kRead:
    case Sys::kWrite:
    case Sys::kOpen:
    case Sys::kClose:
    case Sys::kLseek:
    case Sys::kStat:
    case Sys::kUnlink:
    case Sys::kMkdir:
    case Sys::kChdir:
    case Sys::kDup:
      return sysFileIo(t, args);
    default:
      // The BG SPI extensions (virt2phys, persist, ...) do not exist
      // on Linux.
      return HandlerResult::done(static_cast<std::uint64_t>(-kernel::kENOSYS),
                                 base);
  }
}

hw::HandlerResult FwkKernel::sysBrk(Thread& t, std::uint64_t newBrk) {
  Process& p = t.proc;
  const sim::Cycle base = cfg_.syscallBaseCost;
  if (newBrk == 0) return HandlerResult::done(p.brk, base + 40);
  if (newBrk < p.heapBase || newBrk > p.heapLimit) {
    return HandlerResult::done(p.brk, base + 40);
  }
  p.brk = newBrk;  // pages materialize on first touch
  return HandlerResult::done(p.brk, base + 110);
}

hw::HandlerResult FwkKernel::sysMmap(Thread& t, const hw::SyscallArgs& a) {
  Process& p = t.proc;
  AddressSpace& space = spaces_[p.pid()];
  const std::uint64_t len = hw::alignUp(a.arg[1], hw::kPage4K);
  const std::uint64_t flags = a.arg[3];
  const sim::Cycle base = cfg_.syscallBaseCost;
  if (len == 0) {
    return HandlerResult::done(static_cast<std::uint64_t>(-kernel::kEINVAL),
                               base);
  }
  hw::VAddr addr;
  if (flags & kernel::kMapFixed) {
    addr = a.arg[0];
  } else {
    addr = mmapCursor_;
    mmapCursor_ += len + hw::kPage4K;
  }
  Vma v;
  v.base = addr;
  v.size = len;
  v.perms = static_cast<std::uint8_t>(a.arg[2] & 7);
  if (v.perms == 0) v.perms = hw::kPermRW;
  space.addVma(v);
  return HandlerResult::done(addr, base + 190);
}

hw::HandlerResult FwkKernel::sysMunmap(Thread& t, const hw::SyscallArgs& a) {
  Process& p = t.proc;
  AddressSpace& space = spaces_[p.pid()];
  const hw::VAddr base = hw::alignDown(a.arg[0], hw::kPage4K);
  const std::uint64_t len = hw::alignUp(a.arg[1], hw::kPage4K);
  // Reclaim frames before dropping the VMA.
  for (hw::VAddr va = base; va < base + len; va += hw::kPage4K) {
    if (PageEntry* pe = space.page(va)) {
      buddy_->free(pe->frame, hw::kPage4K);
      space.unmapPage(va);
    }
  }
  space.removeVma(base, len);
  for (int c = 0; c < node_.numCores(); ++c) {
    node_.core(c).mmu().invalidate(p.pid());
  }
  return HandlerResult::done(0, cfg_.syscallBaseCost + 260);
}

hw::HandlerResult FwkKernel::sysMprotect(Thread& t,
                                         const hw::SyscallArgs& a) {
  Process& p = t.proc;
  AddressSpace& space = spaces_[p.pid()];
  p.lastMprotectAddr = a.arg[0];
  p.lastMprotectLen = a.arg[1];
  const bool ok = space.protect(a.arg[0], hw::alignUp(a.arg[1], hw::kPage4K),
                                static_cast<std::uint8_t>(a.arg[2] & 7));
  // Stale translations must go: TLB shootdown across cores.
  for (int c = 0; c < node_.numCores(); ++c) {
    node_.core(c).mmu().invalidate(p.pid());
  }
  return HandlerResult::done(
      ok ? 0 : static_cast<std::uint64_t>(-kernel::kEINVAL),
      cfg_.syscallBaseCost + 350);
}

hw::HandlerResult FwkKernel::sysClone(Thread& t, const hw::SyscallArgs& a) {
  Process& p = t.proc;
  const std::uint64_t flags = a.arg[0];
  const sim::Cycle base = cfg_.syscallBaseCost;
  if ((flags & kernel::kCloneVm) == 0) {
    // fork() would be supported by a real Linux; out of scope for the
    // compute-node model.
    return HandlerResult::done(static_cast<std::uint64_t>(-kernel::kENOSYS),
                               base);
  }
  Thread& child = p.addThread(allocTid());
  child.ctx.prog = t.ctx.prog;
  child.ctx.pc = a.arg[5];
  for (int i = 0; i < vm::kNumRegs; ++i) child.ctx.regs[i] = t.ctx.regs[i];
  child.ctx.regs[vm::kRetReg] = 0;
  child.ctx.regs[1] = a.arg[4];
  child.ctx.state = hw::ThreadState::kReady;
  child.ctx.samples =
      sampleSink_
          ? sampleSink_(p, static_cast<int>(p.threads().size()) - 1)
          : nullptr;
  if (flags & kernel::kCloneChildCleartid) child.clearChildTid = a.arg[3];
  if (flags & kernel::kCloneParentSettid) {
    const auto pa = resolveUser(p, a.arg[2]);
    if (pa) node_.mem().write64(*pa, child.ctx.tid);
  }
  const int core = sched_.nextUserCore();
  sched_.enqueue(child, core);
  node_.core(core).kick();
  return HandlerResult::done(child.ctx.tid, base + 2'100);
}

hw::HandlerResult FwkKernel::sysFutex(Thread& t, const hw::SyscallArgs& a) {
  const hw::VAddr uaddr = a.arg[0];
  const std::uint64_t op = a.arg[1];
  const std::uint64_t val = a.arg[2];
  const sim::Cycle base = cfg_.syscallBaseCost;
  Process& p = t.proc;
  if (op == kernel::kFutexWait) {
    const auto pa = resolveUser(p, uaddr);
    if (!pa) {
      return HandlerResult::done(static_cast<std::uint64_t>(-kernel::kEFAULT),
                                 base);
    }
    if (node_.mem().read64(*pa) != val) {
      return HandlerResult::done(static_cast<std::uint64_t>(-kernel::kEAGAIN),
                                 base + 80);
    }
    futex_.enqueue(p.pid(), uaddr, &t);
    t.ctx.state = hw::ThreadState::kBlocked;
    t.ctx.yieldOnBlock = true;
    return HandlerResult::blocked(base + 160);
  }
  if (op == kernel::kFutexWake) {
    auto woken = futex_.dequeue(p.pid(), uaddr, val == 0 ? 1 : val);
    for (Thread* w : woken) wakeThread(*w, 0);
    return HandlerResult::done(woken.size(), base + 120 + 60 * woken.size());
  }
  return HandlerResult::done(static_cast<std::uint64_t>(-kernel::kENOSYS),
                             base);
}

hw::HandlerResult FwkKernel::sysNanosleep(Thread& t, std::uint64_t us) {
  // Timer-based sleep with wakeup jitter from the entropy stream (timer
  // slack, interrupt coalescing).
  const sim::Cycle dur = sim::usToCycles(static_cast<double>(us));
  const sim::Cycle jitter = static_cast<sim::Cycle>(
      rng_.nextExp(static_cast<double>(cfg_.tickCycles) * 0.03));
  t.ctx.state = hw::ThreadState::kBlocked;
  t.ctx.yieldOnBlock = true;
  Thread* tp = &t;
  const bool isDaemon = sched_.isDaemon(t);
  engine().schedule(dur + jitter, [this, tp, isDaemon] {
    wakeThread(*tp, 0);
    // The expiry is a hardware timer interrupt; a waking daemon
    // preempts user work on its core at the next interrupt boundary.
    if (isDaemon && tp->ctx.coreAffinity >= 0) {
      node_.core(tp->ctx.coreAffinity).raise(hw::Irq::kExternal);
    }
  });
  return HandlerResult::blocked(cfg_.syscallBaseCost + 180);
}

hw::HandlerResult FwkKernel::sysFileIo(Thread& t, const hw::SyscallArgs& a) {
  Process& p = t.proc;
  io::VfsClient& c = clientOf(p);
  const sim::Cycle base = cfg_.syscallBaseCost;
  switch (static_cast<Sys>(a.nr)) {
    case Sys::kWrite: {
      const std::uint64_t fd = a.arg[0];
      const std::uint64_t len = a.arg[2];
      std::vector<std::byte> buf(len);
      if (!copyFromUser(p, a.arg[1], buf)) {
        return HandlerResult::done(
            static_cast<std::uint64_t>(-kernel::kEFAULT), base);
      }
      if (fd == 1 || fd == 2) {
        console_.append(reinterpret_cast<const char*>(buf.data()),
                        buf.size());
        return HandlerResult::done(len, base + 350 + len / 16);
      }
      const std::int64_t rc = c.write(static_cast<int>(fd), buf);
      return HandlerResult::done(static_cast<std::uint64_t>(rc),
                                 base + c.lastLatency());
    }
    case Sys::kRead: {
      std::vector<std::byte> buf(a.arg[2]);
      const std::int64_t rc = c.read(static_cast<int>(a.arg[0]), buf);
      if (rc > 0) {
        copyToUser(p, a.arg[1],
                   std::span(buf.data(), static_cast<std::size_t>(rc)));
      }
      return HandlerResult::done(static_cast<std::uint64_t>(rc),
                                 base + c.lastLatency());
    }
    case Sys::kOpen: {
      const auto path = readUserString(p, a.arg[0]);
      if (!path) {
        return HandlerResult::done(
            static_cast<std::uint64_t>(-kernel::kEFAULT), base);
      }
      const std::int64_t rc = c.open(*path, a.arg[1]);
      return HandlerResult::done(static_cast<std::uint64_t>(rc),
                                 base + c.lastLatency());
    }
    case Sys::kClose: {
      const std::int64_t rc = c.close(static_cast<int>(a.arg[0]));
      return HandlerResult::done(static_cast<std::uint64_t>(rc),
                                 base + c.lastLatency());
    }
    case Sys::kLseek: {
      const std::int64_t rc =
          c.lseek(static_cast<int>(a.arg[0]),
                  static_cast<std::int64_t>(a.arg[1]), a.arg[2]);
      return HandlerResult::done(static_cast<std::uint64_t>(rc),
                                 base + c.lastLatency());
    }
    case Sys::kStat: {
      const auto path = readUserString(p, a.arg[0]);
      if (!path) {
        return HandlerResult::done(
            static_cast<std::uint64_t>(-kernel::kEFAULT), base);
      }
      io::FileStat st;
      const std::int64_t rc = c.stat(*path, &st);
      if (rc == 0) {
        copyToUser(p, a.arg[1], std::as_bytes(std::span(&st, 1)));
      }
      return HandlerResult::done(static_cast<std::uint64_t>(rc),
                                 base + c.lastLatency());
    }
    case Sys::kUnlink: {
      const auto path = readUserString(p, a.arg[0]);
      if (!path) {
        return HandlerResult::done(
            static_cast<std::uint64_t>(-kernel::kEFAULT), base);
      }
      const std::int64_t rc = c.unlink(*path);
      return HandlerResult::done(static_cast<std::uint64_t>(rc),
                                 base + c.lastLatency());
    }
    case Sys::kMkdir: {
      const auto path = readUserString(p, a.arg[0]);
      if (!path) {
        return HandlerResult::done(
            static_cast<std::uint64_t>(-kernel::kEFAULT), base);
      }
      const std::int64_t rc = c.mkdir(*path);
      return HandlerResult::done(static_cast<std::uint64_t>(rc),
                                 base + c.lastLatency());
    }
    case Sys::kChdir: {
      const auto path = readUserString(p, a.arg[0]);
      if (!path) {
        return HandlerResult::done(
            static_cast<std::uint64_t>(-kernel::kEFAULT), base);
      }
      const std::int64_t rc = c.chdir(*path);
      if (rc == 0) p.cwd = c.cwd();
      return HandlerResult::done(static_cast<std::uint64_t>(rc),
                                 base + c.lastLatency());
    }
    case Sys::kDup: {
      const std::int64_t rc = c.dup(static_cast<int>(a.arg[0]));
      return HandlerResult::done(static_cast<std::uint64_t>(rc),
                                 base + c.lastLatency());
    }
    default:
      return HandlerResult::done(static_cast<std::uint64_t>(-kernel::kENOSYS),
                                 base);
  }
}

hw::HandlerResult FwkKernel::dlopenForThread(Thread& t,
                                             const std::string& name) {
  auto it = libImages_.find(name);
  if (it == libImages_.end()) {
    return HandlerResult::done(static_cast<std::uint64_t>(-kernel::kENOENT),
                               cfg_.syscallBaseCost);
  }
  Process& p = t.proc;
  AddressSpace& space = spaces_[p.pid()];
  const auto& img = it->second;
  // Instant VMA creation; pages fault in from remote storage as the
  // application touches them.
  Vma text;
  text.base = mmapCursor_;
  text.size = hw::alignUp(std::max<std::uint64_t>(img->textBytes(),
                                                  hw::kPage4K),
                          hw::kPage4K);
  text.perms = hw::kPermRX;  // Linux honors library page permissions
  text.kind = Vma::Kind::kFileLazy;
  text.file = img;
  text.remoteBacked = true;
  mmapCursor_ += text.size + hw::kPage4K;
  space.addVma(text);

  Vma data;
  data.base = mmapCursor_;
  data.size = hw::alignUp(std::max<std::uint64_t>(img->dataBytes(),
                                                  hw::kPage4K),
                          hw::kPage4K);
  data.perms = hw::kPermRW;
  mmapCursor_ += data.size + hw::kPage4K;
  space.addVma(data);

  // dlopen itself is quick: just mapping metadata.
  return HandlerResult::done(text.base, cfg_.syscallBaseCost + 2'500);
}

}  // namespace bg::fwk

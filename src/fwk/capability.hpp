// Linux capability registry (paper Tables II & III, Linux column).
#pragma once

#include "kernel/capability.hpp"

namespace bg::fwk {

/// Capabilities as offered by a 2.6.30-generation Linux (the version
/// the paper's tables evaluate).
std::vector<kernel::Capability> linuxCapabilities();

}  // namespace bg::fwk

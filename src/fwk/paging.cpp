#include "fwk/paging.hpp"

#include <algorithm>

namespace bg::fwk {

void AddressSpace::addVma(Vma vma) { vmas_.push_back(std::move(vma)); }

void AddressSpace::removeVma(hw::VAddr base, std::uint64_t size) {
  vmas_.erase(std::remove_if(vmas_.begin(), vmas_.end(),
                             [&](const Vma& v) {
                               return v.base < base + size &&
                                      base < v.base + v.size;
                             }),
              vmas_.end());
  for (hw::VAddr va = hw::alignDown(base, hw::kPage4K); va < base + size;
       va += hw::kPage4K) {
    pages_.erase(va / hw::kPage4K);
  }
}

Vma* AddressSpace::vmaFor(hw::VAddr va) {
  for (Vma& v : vmas_) {
    if (v.contains(va)) return &v;
  }
  return nullptr;
}

const Vma* AddressSpace::vmaFor(hw::VAddr va) const {
  for (const Vma& v : vmas_) {
    if (v.contains(va)) return &v;
  }
  return nullptr;
}

bool AddressSpace::protect(hw::VAddr base, std::uint64_t size,
                           std::uint8_t perms) {
  Vma* v = vmaFor(base);
  if (v == nullptr) return false;
  if (base == v->base && size == v->size) {
    v->perms = perms;
  } else {
    // Split: carve the protected subrange into its own VMA.
    if (base + size > v->base + v->size) return false;
    Vma head = *v;
    Vma mid = *v;
    Vma tail = *v;
    head.size = base - v->base;
    mid.base = base;
    mid.size = size;
    mid.perms = perms;
    tail.base = base + size;
    tail.size = (v->base + v->size) - (base + size);
    *v = mid;
    if (head.size > 0) vmas_.push_back(head);
    if (tail.size > 0) vmas_.push_back(tail);
  }
  for (hw::VAddr va = hw::alignDown(base, hw::kPage4K); va < base + size;
       va += hw::kPage4K) {
    auto it = pages_.find(va / hw::kPage4K);
    if (it != pages_.end()) it->second.perms = perms;
  }
  return true;
}

PageEntry* AddressSpace::page(hw::VAddr va) {
  auto it = pages_.find(va / hw::kPage4K);
  return it == pages_.end() ? nullptr : &it->second;
}

void AddressSpace::mapPage(hw::VAddr va, hw::PAddr frame,
                           std::uint8_t perms) {
  pages_[va / hw::kPage4K] = PageEntry{frame, perms, true};
}

void AddressSpace::unmapPage(hw::VAddr va) {
  pages_.erase(va / hw::kPage4K);
}

}  // namespace bg::fwk

#include "fwk/daemons.hpp"

#include "vm/builder.hpp"

namespace bg::fwk {

std::vector<DaemonSpec> defaultDaemons() {
  return {
      // Core 0: interrupt/softirq handling and memory housekeeping —
      // the paper's noisiest core (max excursion ~38K cycles).
      {"ksoftirqd/0", 0, 10'000, 11'000, 4096},
      {"kswapd0", 0, 500'000, 24'000, 8192},
      // Core 1: the quietest core (max ~10K): only a light events
      // worker lands here.
      {"events/1", 1, 150'000, 5'500, 2048},
      // Core 2: filesystem writeback + RPC for the network filesystem
      // (max ~42K).
      {"pdflush", 2, 400'000, 30'000, 8192},
      {"rpciod/2", 2, 50'000, 9'000, 2048},
      // Core 3: housekeeping plus init and the single shell the FWQ
      // methodology leaves running (max ~36K).
      {"events/3", 3, 40'000, 9'500, 2048},
      {"init", 3, 1'000'000, 31'000, 4096},
      {"shell", 3, 900'000, 11'000, 4096},
  };
}

vm::Program daemonProgram(const DaemonSpec& spec) {
  using vm::Reg;
  vm::ProgramBuilder b("daemon:" + spec.name);
  constexpr Reg rBuf = 20;
  // Daemons work out of their process's heap base (r10 at start).
  b.mov(rBuf, 10);
  const auto top = b.label();
  b.memTouch(rBuf, 0, spec.touchBytes, 0, /*write=*/true);
  b.compute(spec.burstCycles);
  // nanosleep(periodUs): args in r1.
  b.li(vm::kArg0, static_cast<std::int64_t>(spec.periodUs));
  b.syscall(static_cast<std::int64_t>(162 /* kNanosleep */));
  b.jump(top);
  return std::move(b).build();
}

}  // namespace bg::fwk

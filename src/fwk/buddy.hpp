// Buddy physical-page allocator for the FWK baseline.
//
// Beyond serving demand paging, this is the mechanism behind the
// paper's Table II row "Large physically contiguous memory:
// easy - hard" for Linux: a request is easy to make, but whether a
// high-order block exists depends on fragmentation — which
// largestFreeBlock() exposes and tests exercise.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "hw/addr.hpp"

namespace bg::fwk {

class BuddyAllocator {
 public:
  /// Manage [base, base+size). size is rounded down to a multiple of
  /// the max block; minOrder block is 4KB.
  BuddyAllocator(hw::PAddr base, std::uint64_t size);

  /// Allocate a block of at least `size` bytes (rounded up to a power
  /// of two, min 4KB). Returns nullopt when no suitable block exists.
  std::optional<hw::PAddr> alloc(std::uint64_t size);
  /// Free a block previously returned by alloc with the same size.
  void free(hw::PAddr addr, std::uint64_t size);

  std::uint64_t bytesFree() const { return bytesFree_; }
  std::uint64_t largestFreeBlock() const;
  std::uint64_t totalBytes() const { return size_; }

  static constexpr int kMinOrder = 12;  // 4KB
  static constexpr int kMaxOrder = 24;  // 16MB max single block

 private:
  int orderFor(std::uint64_t size) const;

  hw::PAddr base_;
  std::uint64_t size_;
  std::uint64_t bytesFree_ = 0;
  // Free lists per order, kept sorted for deterministic buddy merging.
  std::vector<std::set<hw::PAddr>> freeLists_;
};

}  // namespace bg::fwk

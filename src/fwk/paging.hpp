// Demand-paged address space for the FWK baseline.
//
// VMAs describe ranges; pages materialize on first touch (page fault:
// buddy frame allocation + zeroing, or a copy from the backing file
// image — over simulated networked storage for dynamic libraries).
// This is the structural contrast with CNK's static map: translation
// state changes during execution, and faults happen at
// application-determined (noisy) times.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "hw/addr.hpp"
#include "kernel/elf.hpp"

namespace bg::fwk {

struct Vma {
  enum class Kind : std::uint8_t { kAnon, kFileLazy };
  hw::VAddr base = 0;
  std::uint64_t size = 0;
  std::uint8_t perms = hw::kPermRW;
  Kind kind = Kind::kAnon;
  std::shared_ptr<kernel::ElfImage> file;  // for kFileLazy
  std::uint64_t fileOffset = 0;
  /// kFileLazy pages of a library fetched over networked storage pay
  /// the remote latency on each first-touch (paper §IV-B2 argument).
  bool remoteBacked = false;

  bool contains(hw::VAddr va) const {
    return va >= base && va - base < size;
  }
};

struct PageEntry {
  hw::PAddr frame = 0;
  std::uint8_t perms = 0;
  bool present = false;
};

class AddressSpace {
 public:
  void addVma(Vma vma);
  /// Remove VMAs overlapping [base, base+size); frees nothing (caller
  /// owns frame reclamation via forEachPresentPage).
  void removeVma(hw::VAddr base, std::uint64_t size);
  Vma* vmaFor(hw::VAddr va);
  const Vma* vmaFor(hw::VAddr va) const;

  /// Change permissions over a range (affects the VMA and any present
  /// pages) — full memory protection, which CNK lacks.
  bool protect(hw::VAddr base, std::uint64_t size, std::uint8_t perms);

  PageEntry* page(hw::VAddr va);
  void mapPage(hw::VAddr va, hw::PAddr frame, std::uint8_t perms);
  void unmapPage(hw::VAddr va);

  std::size_t presentPages() const { return pages_.size(); }
  std::size_t vmaCount() const { return vmas_.size(); }
  template <typename Fn>
  void forEachPresentPage(Fn&& fn) const {
    for (const auto& [vp, pe] : pages_) {
      fn(vp * hw::kPage4K, pe);
    }
  }

 private:
  std::vector<Vma> vmas_;
  std::unordered_map<std::uint64_t, PageEntry> pages_;  // keyed by vpage
};

}  // namespace bg::fwk

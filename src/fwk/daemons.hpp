// The FWK's background daemon population — the OS-noise sources.
//
// Noise in this model is mechanistic: each daemon is a real kernel
// thread running a real VM program (touch some memory, burn a burst of
// cycles, nanosleep). Its wakeups preempt the benchmark thread on its
// core, its memory touches churn the TLB and caches. The population
// below is shaped after the paper's FWQ measurement (Figs 5-7): core 0
// carries the interrupt/softirq load and is the noisiest, core 1 is
// the quietest, cores 2 and 3 carry filesystem and housekeeping
// daemons.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vm/program.hpp"

namespace bg::fwk {

struct DaemonSpec {
  std::string name;
  int core = 0;            // affinity
  std::uint64_t periodUs = 1000;
  std::uint64_t burstCycles = 5000;
  std::uint32_t touchBytes = 2048;  // memory it dirties per wakeup
};

/// The default daemon set (calibrated against the paper's Fig 5 noise
/// profile on SUSE 2.6.16). "Efforts were made to reduce noise on
/// Linux": this is already the reduced set — init, a shell, and the
/// kernel daemons that cannot be suspended.
std::vector<DaemonSpec> defaultDaemons();

/// Build the VM program a daemon thread runs forever:
///   loop { memtouch(touchBytes); compute(burst); nanosleep(period) }
vm::Program daemonProgram(const DaemonSpec& spec);

}  // namespace bg::fwk

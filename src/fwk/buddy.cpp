#include "fwk/buddy.hpp"

#include <bit>
#include <cassert>

namespace bg::fwk {

BuddyAllocator::BuddyAllocator(hw::PAddr base, std::uint64_t size)
    : base_(base), freeLists_(kMaxOrder + 1) {
  const std::uint64_t maxBlock = 1ULL << kMaxOrder;
  size_ = hw::alignDown(size, maxBlock);
  for (std::uint64_t off = 0; off < size_; off += maxBlock) {
    freeLists_[kMaxOrder].insert(base_ + off);
  }
  bytesFree_ = size_;
}

int BuddyAllocator::orderFor(std::uint64_t size) const {
  if (size == 0) size = 1;
  int order = 64 - std::countl_zero(size - 1);
  if (order < kMinOrder) order = kMinOrder;
  return order;
}

std::optional<hw::PAddr> BuddyAllocator::alloc(std::uint64_t size) {
  const int want = orderFor(size);
  if (want > kMaxOrder) return std::nullopt;
  int order = want;
  while (order <= kMaxOrder && freeLists_[order].empty()) ++order;
  if (order > kMaxOrder) return std::nullopt;
  hw::PAddr block = *freeLists_[order].begin();
  freeLists_[order].erase(freeLists_[order].begin());
  // Split down to the wanted order, returning the high halves to the
  // free lists.
  while (order > want) {
    --order;
    freeLists_[order].insert(block + (1ULL << order));
  }
  bytesFree_ -= 1ULL << want;
  return block;
}

void BuddyAllocator::free(hw::PAddr addr, std::uint64_t size) {
  int order = orderFor(size);
  bytesFree_ += 1ULL << order;
  // Coalesce with the buddy while possible.
  while (order < kMaxOrder) {
    const std::uint64_t blockSize = 1ULL << order;
    const hw::PAddr rel = addr - base_;
    const hw::PAddr buddy = base_ + (rel ^ blockSize);
    auto it = freeLists_[order].find(buddy);
    if (it == freeLists_[order].end()) break;
    freeLists_[order].erase(it);
    if (buddy < addr) addr = buddy;
    ++order;
  }
  freeLists_[order].insert(addr);
}

std::uint64_t BuddyAllocator::largestFreeBlock() const {
  for (int order = kMaxOrder; order >= kMinOrder; --order) {
    if (!freeLists_[order].empty()) return 1ULL << order;
  }
  return 0;
}

}  // namespace bg::fwk

// Preemptive per-core scheduler for the FWK baseline.
//
// Round-robin runqueues with a timeslice enforced by the decrementer
// tick; daemon threads get priority (they model kernel threads that
// preempt user work on wakeup). Threads may migrate only at explicit
// assignment — like Linux with affinity masks set, matching the FWQ
// measurement methodology.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "kernel/process.hpp"
#include "sim/types.hpp"

namespace bg::fwk {

class FwkScheduler {
 public:
  explicit FwkScheduler(int cores);

  void enqueue(kernel::Thread& t, int core, bool daemon = false,
               bool front = false);
  void remove(kernel::Thread& t);

  /// Next runnable thread for the core (daemons first, FIFO within
  /// class). Does not pop — the picked thread stays associated.
  kernel::Thread* pickNext(int core);

  /// Rotate the current thread to the back of its class (timeslice
  /// expiry / yield).
  void rotate(kernel::Thread& t);

  bool isDaemon(const kernel::Thread& t) const;
  /// True if a daemon on `core` is ready to run (preemption trigger).
  bool daemonReady(int core) const;
  /// True if any other ready thread shares the core with t.
  bool hasOtherReady(int core, const kernel::Thread& t) const;

  std::size_t queueLength(int core) const;
  int coreOf(const kernel::Thread& t) const;
  /// Round-robin core assignment for new user threads.
  int nextUserCore();

  void clearUserThreads();

 private:
  struct CoreQ {
    std::deque<kernel::Thread*> daemons;
    std::deque<kernel::Thread*> users;
  };
  std::vector<CoreQ> queues_;
  int rrCursor_ = 0;
};

}  // namespace bg::fwk

#include "io/ciod.hpp"

#include <algorithm>
#include <cstring>

#include "kernel/syscalls.hpp"

namespace bg::io {

Ciod::Ciod(hw::Node& ioNode, Vfs& vfs, sim::Cycle perOpOverhead)
    : ioNode_(ioNode), vfs_(vfs), perOpOverhead_(perOpOverhead) {
  ioNode_.collective()->setHandler(
      ioNode_.id(), [this](hw::CollPacket&& pkt) { onPacket(std::move(pkt)); });
}

IoProxy& Ciod::proxyFor(std::int32_t cnNode, std::uint32_t pid) {
  auto key = std::make_pair(cnNode, pid);
  auto it = proxies_.find(key);
  if (it == proxies_.end()) {
    it = proxies_
             .emplace(key, std::make_unique<IoProxy>(vfs_, ioNode_.engine()))
             .first;
  }
  return *it->second;
}

std::size_t Ciod::proxyThreadCount() const {
  std::size_t n = 0;
  for (const auto& [k, p] : proxies_) n += p->proxyThreads();
  return n;
}

void Ciod::onPacket(hw::CollPacket&& pkt) {
  if (pkt.channel != kChanFshipRequest) return;
  auto req = FsRequest::decode(pkt.payload);
  if (!req) {
    ++stats_.errors;
    return;
  }
  ++stats_.requests;
  stats_.bytesIn += pkt.payload.size();
  serve(*req);
}

void Ciod::serve(const FsRequest& req) {
  IoProxy& proxy = proxyFor(req.srcNode, req.pid);
  VfsClient& c = proxy.client();

  FsReply rep;
  rep.seq = req.seq;
  rep.srcNode = req.srcNode;
  rep.pid = req.pid;
  rep.tid = req.tid;

  // The ioproxy performs the actual Linux system call; result codes
  // and filesystem nuances come straight from the VFS (paper §IV-A:
  // "the calls produce the same result codes, network filesystem
  // nuances, etc.").
  switch (req.op) {
    case FsOp::kOpen:
      rep.result = c.open(req.path, req.a0);
      break;
    case FsOp::kClose:
      rep.result = c.close(static_cast<int>(req.a0));
      break;
    case FsOp::kRead: {
      rep.payload.resize(req.a1);
      rep.result = c.read(static_cast<int>(req.a0), rep.payload);
      rep.payload.resize(rep.result > 0
                             ? static_cast<std::size_t>(rep.result)
                             : 0);
      break;
    }
    case FsOp::kWrite:
      rep.result = c.write(static_cast<int>(req.a0), req.payload);
      break;
    case FsOp::kLseek:
      rep.result = c.lseek(static_cast<int>(req.a0),
                           static_cast<std::int64_t>(req.a1), req.a2);
      break;
    case FsOp::kStat: {
      FileStat st;
      rep.result = c.stat(req.path, &st);
      if (rep.result == 0) {
        rep.payload.resize(sizeof(FileStat));
        std::memcpy(rep.payload.data(), &st, sizeof st);
      }
      break;
    }
    case FsOp::kUnlink:
      rep.result = c.unlink(req.path);
      break;
    case FsOp::kMkdir:
      rep.result = c.mkdir(req.path);
      break;
    case FsOp::kChdir:
      rep.result = c.chdir(req.path);
      break;
    case FsOp::kGetcwd: {
      const std::string& cwd = c.cwd();
      rep.result = static_cast<std::int64_t>(cwd.size() + 1);
      rep.payload.resize(cwd.size() + 1);
      std::memcpy(rep.payload.data(), cwd.c_str(), cwd.size() + 1);
      break;
    }
    case FsOp::kDup:
      rep.result = c.dup(static_cast<int>(req.a0));
      break;
  }
  if (rep.result < 0) ++stats_.errors;

  // Serialize per proxy thread: the dedicated proxy thread for this
  // compute thread finishes its previous op first.
  sim::Engine& eng = ioNode_.engine();
  sim::Cycle& busy = proxy.threadBusyUntil(req.tid);
  const sim::Cycle start = std::max(eng.now(), busy);
  const sim::Cycle done = start + perOpOverhead_ + c.lastLatency();
  busy = done;

  auto bytes = rep.encode();
  stats_.bytesOut += bytes.size();
  const int dst = rep.srcNode;
  const int self = ioNode_.id();
  hw::CollectiveNet* net = ioNode_.collective();
  eng.scheduleAt(done, [net, self, dst, bytes = std::move(bytes)]() mutable {
    hw::CollPacket out;
    out.srcNode = self;
    out.dstNode = dst;
    out.channel = kChanFshipReply;
    out.payload = std::move(bytes);
    net->send(std::move(out));
  });
}

}  // namespace bg::io

#include "io/ciod.hpp"

#include <algorithm>
#include <cstring>

#include "kernel/syscalls.hpp"

namespace bg::io {

Ciod::Ciod(hw::Node& ioNode, Vfs& vfs, sim::Cycle perOpOverhead)
    : ioNode_(ioNode),
      vfs_(vfs),
      perOpOverhead_(perOpOverhead),
      alive_(std::make_shared<bool>(true)) {
  ioNode_.collective()->setHandler(
      ioNode_.id(), [this](hw::CollPacket&& pkt) { onPacket(std::move(pkt)); });
}

Ciod::~Ciod() {
  if (!crashed_) crash();
}

void Ciod::crash() {
  if (crashed_) return;
  crashed_ = true;
  ioNode_.collective()->setHandler(ioNode_.id(), nullptr);
  alive_.reset();  // in-flight scheduled replies dissolve
}

IoProxy& Ciod::proxyFor(std::int32_t cnNode, std::uint32_t pid) {
  auto key = std::make_pair(cnNode, pid);
  auto it = proxies_.find(key);
  if (it == proxies_.end()) {
    it = proxies_
             .emplace(key, std::make_unique<IoProxy>(vfs_, ioNode_.engine()))
             .first;
  }
  return *it->second;
}

std::size_t Ciod::proxyThreadCount() const {
  std::size_t n = 0;
  for (const auto& [k, p] : proxies_) n += p->proxyThreads();
  return n;
}

void Ciod::onPacket(hw::CollPacket&& pkt) {
  if (crashed_ || pkt.channel != kChanFshipRequest) return;
  auto req = FsRequest::decode(pkt.payload);
  if (!req) {
    // Checksum or framing failure: drop silently — the client's
    // watchdog owns recovery.
    ++stats_.errors;
    ++stats_.badChecksums;
    return;
  }

  // Replay suppression per (node, pid, tid): the client sends at most
  // one op at a time per channel, so one cached reply per channel is
  // an exactly-once filter for retransmitted non-idempotent ops.
  const ChanKey chan{{req->srcNode, req->pid}, req->tid};
  auto rit = replay_.find(chan);
  if (rit != replay_.end()) {
    if (req->seq == rit->second.seq) {
      ++stats_.replays;
      stats_.bytesOut += rit->second.encodedReply.size();
      // Resend from cache without re-executing; charge only the
      // daemon handoff, not a filesystem op.
      sendReplyAt(ioNode_.engine().now() + perOpOverhead_,
                  rit->second.encodedReply, req->srcNode);
      return;
    }
    if (req->seq < rit->second.seq) {
      ++stats_.staleDrops;
      return;
    }
  }

  ++stats_.requests;
  stats_.bytesIn += pkt.payload.size();
  serve(*req);
}

std::int64_t Ciod::serveRestore(const FsRequest& req) {
  auto snap = ShadowSnapshot::decode(req.payload);
  if (!snap) return -kernel::kEINVAL;
  // Rebuild the ioproxy from the compute node's shadow: a fresh
  // VfsClient whose fd numbers, offsets, dup groups, cwd and next-fd
  // counter match the client's last-acknowledged view. Ops the old
  // CIOD acked after that view are rolled back from this proxy's
  // perspective — the client retransmits them once the restore acks.
  auto key = std::make_pair(req.srcNode, req.pid);
  proxies_[key] = std::make_unique<IoProxy>(vfs_, ioNode_.engine());
  VfsClient& c = proxies_[key]->client();
  std::int64_t firstErr = 0;
  for (const auto& f : snap->fds) {
    const std::int64_t rc =
        c.restoreFd(f.fd, f.path, f.flags, f.offset, f.shareWithFd);
    if (rc < 0 && firstErr == 0) firstErr = rc;
  }
  c.setCwd(snap->cwd);
  c.setNextFd(snap->nextFd);
  ++stats_.restores;
  return firstErr;
}

void Ciod::sendReplyAt(sim::Cycle when, std::vector<std::byte> bytes,
                       int dst) {
  const int self = ioNode_.id();
  hw::CollectiveNet* net = ioNode_.collective();
  std::weak_ptr<bool> alive = alive_;
  ioNode_.engine().scheduleAt(
      when, [net, self, dst, bytes = std::move(bytes), alive]() mutable {
        if (alive.lock() == nullptr) return;  // daemon died under us
        hw::CollPacket out;
        out.srcNode = self;
        out.dstNode = dst;
        out.channel = kChanFshipReply;
        out.payload = std::move(bytes);
        net->send(std::move(out));
      });
}

void Ciod::serve(const FsRequest& req) {
  IoProxy& proxy = proxyFor(req.srcNode, req.pid);
  VfsClient& c = proxy.client();

  FsReply rep;
  rep.seq = req.seq;
  rep.srcNode = req.srcNode;
  rep.pid = req.pid;
  rep.tid = req.tid;

  // The ioproxy performs the actual Linux system call; result codes
  // and filesystem nuances come straight from the VFS (paper §IV-A:
  // "the calls produce the same result codes, network filesystem
  // nuances, etc.").
  switch (req.op) {
    case FsOp::kOpen: {
      rep.result = c.open(req.path, req.a0);
      if (rep.result >= 0) {
        // Tell the client the fd's initial offset (nonzero only for
        // O_APPEND) so its shadow can reserve write offsets.
        const auto off = c.offsetOf(static_cast<int>(rep.result));
        const std::uint64_t v = off.value_or(0);
        rep.payload.resize(sizeof v);
        std::memcpy(rep.payload.data(), &v, sizeof v);
      }
      break;
    }
    case FsOp::kClose:
      rep.result = c.close(static_cast<int>(req.a0));
      break;
    case FsOp::kRead: {
      // Explicit offset (a2) reserved by the client's shadow: a
      // retransmitted read re-reads the same range.
      rep.payload.resize(req.a1);
      rep.result = c.preadAt(static_cast<int>(req.a0), rep.payload, req.a2);
      rep.payload.resize(rep.result > 0
                             ? static_cast<std::size_t>(rep.result)
                             : 0);
      break;
    }
    case FsOp::kWrite:
      rep.result = c.pwriteAt(static_cast<int>(req.a0), req.payload, req.a2);
      break;
    case FsOp::kLseek:
      rep.result = c.lseek(static_cast<int>(req.a0),
                           static_cast<std::int64_t>(req.a1), req.a2);
      break;
    case FsOp::kStat: {
      FileStat st;
      rep.result = c.stat(req.path, &st);
      if (rep.result == 0) {
        rep.payload.resize(sizeof(FileStat));
        std::memcpy(rep.payload.data(), &st, sizeof st);
      }
      break;
    }
    case FsOp::kUnlink:
      rep.result = c.unlink(req.path);
      break;
    case FsOp::kMkdir:
      rep.result = c.mkdir(req.path);
      break;
    case FsOp::kChdir:
      rep.result = c.chdir(req.path);
      break;
    case FsOp::kGetcwd: {
      const std::string& cwd = c.cwd();
      rep.result = static_cast<std::int64_t>(cwd.size() + 1);
      rep.payload.resize(cwd.size() + 1);
      std::memcpy(rep.payload.data(), cwd.c_str(), cwd.size() + 1);
      break;
    }
    case FsOp::kDup:
      rep.result = c.dup(static_cast<int>(req.a0));
      break;
    case FsOp::kRestoreState:
      rep.result = serveRestore(req);
      break;
    case FsOp::kRename: {
      // New name rides the payload as raw chars; `path` is the old
      // name. One op == one replay-cache entry, so a retransmit after
      // the commit landed replays the cached reply instead of failing
      // on the now-missing old name.
      std::string newPath(reinterpret_cast<const char*>(req.payload.data()),
                          req.payload.size());
      rep.result = c.rename(req.path, newPath);
      break;
    }
  }
  if (rep.result < 0) ++stats_.errors;

  // Serialize per proxy thread: the dedicated proxy thread for this
  // compute thread finishes its previous op first. (kRestoreState
  // replaced the proxy above; re-resolve rather than reuse `proxy`.)
  sim::Engine& eng = ioNode_.engine();
  IoProxy& p2 = proxyFor(req.srcNode, req.pid);
  sim::Cycle& busy = p2.threadBusyUntil(req.tid);
  const sim::Cycle start = std::max(eng.now(), busy);
  const sim::Cycle done = start + perOpOverhead_ + p2.client().lastLatency();
  busy = done;

  auto bytes = rep.encode();
  stats_.bytesOut += bytes.size();
  replay_[ChanKey{{req.srcNode, req.pid}, req.tid}] =
      ReplayEntry{req.seq, bytes};
  sendReplyAt(done, std::move(bytes), rep.srcNode);
}

}  // namespace bg::io

// CIOD: the Control and I/O Daemon running on an I/O node, plus its
// per-compute-process ioproxies (paper §IV-A, Fig 2).
//
// Each compute-node process has a dedicated ioproxy whose filesystem
// state (fd table with seek offsets, cwd) mirrors the CNK process's
// state; each thread of the process has a dedicated proxy thread,
// modelled as an independent service timeline per (pid, tid) so
// operations from different threads of one process can overlap.
//
// Reliability: requests are checksummed (corrupted ones are dropped —
// the client's watchdog retransmits) and carry per-(pid, tid) sequence
// numbers. A per-channel replay cache makes retried non-idempotent ops
// (open, write-at-offset) execute exactly once: a request whose seq
// matches the channel's last served op gets the cached reply resent,
// an older seq is a stale duplicate and is dropped. crash() makes the
// daemon fail-stop (for the CIOD-failover experiments): the handler
// detaches and every in-flight reply dies with it.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "hw/collective.hpp"
#include "hw/node.hpp"
#include "io/protocol.hpp"
#include "io/vfs.hpp"

namespace bg::io {

struct CiodStats {
  std::uint64_t requests = 0;
  std::uint64_t bytesIn = 0;
  std::uint64_t bytesOut = 0;
  std::uint64_t errors = 0;        // decode failures + negative results
  std::uint64_t badChecksums = 0;  // corrupted requests dropped
  std::uint64_t replays = 0;       // duplicate requests answered from cache
  std::uint64_t staleDrops = 0;    // requests older than the cached seq
  std::uint64_t restores = 0;      // kRestoreState ops served

  CiodStats& operator+=(const CiodStats& o) {
    requests += o.requests;
    bytesIn += o.bytesIn;
    bytesOut += o.bytesOut;
    errors += o.errors;
    badChecksums += o.badChecksums;
    replays += o.replays;
    staleDrops += o.staleDrops;
    restores += o.restores;
    return *this;
  }
};

class IoProxy {
 public:
  IoProxy(Vfs& vfs, sim::Engine& engine) : client_(vfs, engine) {}

  VfsClient& client() { return client_; }
  sim::Cycle& threadBusyUntil(std::uint32_t tid) { return busy_[tid]; }
  std::size_t proxyThreads() const { return busy_.size(); }

 private:
  VfsClient client_;
  std::map<std::uint32_t, sim::Cycle> busy_;
};

class Ciod {
 public:
  /// Attaches to the I/O node's collective tap and serves requests
  /// against the given VFS. `perOpOverhead` models CIOD's shared-buffer
  /// handoff plus the Linux syscall made by the ioproxy.
  Ciod(hw::Node& ioNode, Vfs& vfs, sim::Cycle perOpOverhead = 4200);
  ~Ciod();

  /// Fail-stop the daemon: detach from the network and kill every
  /// reply still in flight. A crashed Ciod never serves again — the
  /// cluster boots a replacement (same node or a spare) instead.
  void crash();
  bool crashed() const { return crashed_; }

  const CiodStats& stats() const { return stats_; }
  /// Number of live ioproxies == number of compute processes served.
  std::size_t proxyCount() const { return proxies_.size(); }
  /// Total dedicated proxy threads across all proxies.
  std::size_t proxyThreadCount() const;

  hw::Node& ioNode() { return ioNode_; }

 private:
  using ChanKey = std::pair<std::pair<std::int32_t, std::uint32_t>,
                            std::uint32_t>;  // ((node, pid), tid)
  struct ReplayEntry {
    std::uint64_t seq = 0;
    std::vector<std::byte> encodedReply;
  };

  void onPacket(hw::CollPacket&& pkt);
  void serve(const FsRequest& req);
  std::int64_t serveRestore(const FsRequest& req);
  void sendReplyAt(sim::Cycle when, std::vector<std::byte> bytes, int dst);
  IoProxy& proxyFor(std::int32_t cnNode, std::uint32_t pid);

  hw::Node& ioNode_;
  Vfs& vfs_;
  sim::Cycle perOpOverhead_;
  bool crashed_ = false;
  /// Liveness token for scheduled reply sends: crash() drops it, so
  /// replies already on the engine queue dissolve instead of sending.
  std::shared_ptr<bool> alive_;
  // Keyed by (compute node id, pid).
  std::map<std::pair<std::int32_t, std::uint32_t>, std::unique_ptr<IoProxy>>
      proxies_;
  std::map<ChanKey, ReplayEntry> replay_;
  CiodStats stats_;
};

}  // namespace bg::io

// CIOD: the Control and I/O Daemon running on an I/O node, plus its
// per-compute-process ioproxies (paper §IV-A, Fig 2).
//
// Each compute-node process has a dedicated ioproxy whose filesystem
// state (fd table with seek offsets, cwd) mirrors the CNK process's
// state; each thread of the process has a dedicated proxy thread,
// modelled as an independent service timeline per (pid, tid) so
// operations from different threads of one process can overlap.
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "hw/collective.hpp"
#include "hw/node.hpp"
#include "io/protocol.hpp"
#include "io/vfs.hpp"

namespace bg::io {

struct CiodStats {
  std::uint64_t requests = 0;
  std::uint64_t bytesIn = 0;
  std::uint64_t bytesOut = 0;
  std::uint64_t errors = 0;
};

class IoProxy {
 public:
  IoProxy(Vfs& vfs, sim::Engine& engine) : client_(vfs, engine) {}

  VfsClient& client() { return client_; }
  sim::Cycle& threadBusyUntil(std::uint32_t tid) { return busy_[tid]; }
  std::size_t proxyThreads() const { return busy_.size(); }

 private:
  VfsClient client_;
  std::map<std::uint32_t, sim::Cycle> busy_;
};

class Ciod {
 public:
  /// Attaches to the I/O node's collective tap and serves requests
  /// against the given VFS. `perOpOverhead` models CIOD's shared-buffer
  /// handoff plus the Linux syscall made by the ioproxy.
  Ciod(hw::Node& ioNode, Vfs& vfs, sim::Cycle perOpOverhead = 4200);

  const CiodStats& stats() const { return stats_; }
  /// Number of live ioproxies == number of compute processes served.
  std::size_t proxyCount() const { return proxies_.size(); }
  /// Total dedicated proxy threads across all proxies.
  std::size_t proxyThreadCount() const;

  hw::Node& ioNode() { return ioNode_; }

 private:
  void onPacket(hw::CollPacket&& pkt);
  void serve(const FsRequest& req);
  IoProxy& proxyFor(std::int32_t cnNode, std::uint32_t pid);

  hw::Node& ioNode_;
  Vfs& vfs_;
  sim::Cycle perOpOverhead_;
  // Keyed by (compute node id, pid).
  std::map<std::pair<std::int32_t, std::uint32_t>, std::unique_ptr<IoProxy>>
      proxies_;
  CiodStats stats_;
};

}  // namespace bg::io

#include "io/protocol.hpp"

#include "msg/wire.hpp"

namespace bg::io {

namespace {

// Field framing and the FNV checksum seal are shared with the RPC
// front door (src/frontdoor) — one wire idiom, pinned byte-for-byte by
// tests/test_wire.cpp.
using msg::wire::Reader;
using msg::wire::Writer;
using msg::wire::seal;
using msg::wire::unseal;

}  // namespace

std::vector<std::byte> FsRequest::encode() const {
  Writer w;
  w.u64(seq);
  w.i32(srcNode);
  w.u32(pid);
  w.u32(tid);
  w.u32(static_cast<std::uint32_t>(op));
  w.u64(a0);
  w.u64(a1);
  w.u64(a2);
  w.str(path);
  w.bytes(payload);
  return seal(std::move(w));
}

std::optional<FsRequest> FsRequest::decode(std::span<const std::byte> buf) {
  const auto body = unseal(buf);
  if (!body) return std::nullopt;
  FsRequest r;
  Reader rd(*body);
  std::uint32_t op = 0;
  if (!rd.u64(&r.seq) || !rd.i32(&r.srcNode) || !rd.u32(&r.pid) ||
      !rd.u32(&r.tid) || !rd.u32(&op) || !rd.u64(&r.a0) || !rd.u64(&r.a1) ||
      !rd.u64(&r.a2) || !rd.str(&r.path) || !rd.bytes(&r.payload)) {
    return std::nullopt;
  }
  r.op = static_cast<FsOp>(op);
  return r;
}

std::vector<std::byte> FsReply::encode() const {
  Writer w;
  w.u64(seq);
  w.i32(srcNode);
  w.u32(pid);
  w.u32(tid);
  w.i64(result);
  w.bytes(payload);
  return seal(std::move(w));
}

std::optional<FsReply> FsReply::decode(std::span<const std::byte> buf) {
  const auto body = unseal(buf);
  if (!body) return std::nullopt;
  FsReply r;
  Reader rd(*body);
  if (!rd.u64(&r.seq) || !rd.i32(&r.srcNode) || !rd.u32(&r.pid) ||
      !rd.u32(&r.tid) || !rd.i64(&r.result) || !rd.bytes(&r.payload)) {
    return std::nullopt;
  }
  return r;
}

std::vector<std::byte> ShadowSnapshot::encode() const {
  Writer w;
  w.u32(pid);
  w.i32(nextFd);
  w.str(cwd);
  w.u32(static_cast<std::uint32_t>(fds.size()));
  for (const Fd& f : fds) {
    w.i32(f.fd);
    w.i32(f.shareWithFd);
    w.u64(f.flags);
    w.u64(f.offset);
    w.str(f.path);
  }
  // No checksum of its own: a snapshot always travels inside a sealed
  // FsRequest payload.
  return std::move(w).take();
}

std::optional<ShadowSnapshot> ShadowSnapshot::decode(
    std::span<const std::byte> buf) {
  ShadowSnapshot s;
  Reader rd(buf);
  std::uint32_t n = 0;
  if (!rd.u32(&s.pid) || !rd.i32(&s.nextFd) || !rd.str(&s.cwd) ||
      !rd.u32(&n)) {
    return std::nullopt;
  }
  // Each entry needs at least 28 bytes; reject absurd counts before
  // resize so a truncated buffer can't trigger a huge allocation.
  if (static_cast<std::size_t>(n) * 28 > buf.size()) return std::nullopt;
  s.fds.resize(n);
  for (Fd& f : s.fds) {
    if (!rd.i32(&f.fd) || !rd.i32(&f.shareWithFd) || !rd.u64(&f.flags) ||
        !rd.u64(&f.offset) || !rd.str(&f.path)) {
      return std::nullopt;
    }
  }
  return s;
}

}  // namespace bg::io

#include "io/protocol.hpp"

#include <cstring>

#include "sim/hash.hpp"

namespace bg::io {

namespace {

class Writer {
 public:
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i32(std::int32_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }
  void bytes(const std::vector<std::byte>& b) {
    u32(static_cast<std::uint32_t>(b.size()));
    raw(b.data(), b.size());
  }
  std::vector<std::byte> take() { return std::move(buf_); }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::byte*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<std::byte> buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::byte> buf) : buf_(buf) {}

  bool u32(std::uint32_t* v) { return raw(v, sizeof *v); }
  bool u64(std::uint64_t* v) { return raw(v, sizeof *v); }
  bool i32(std::int32_t* v) { return raw(v, sizeof *v); }
  bool i64(std::int64_t* v) { return raw(v, sizeof *v); }
  bool str(std::string* s) {
    std::uint32_t n = 0;
    if (!u32(&n) || buf_.size() - pos_ < n) return false;
    s->assign(reinterpret_cast<const char*>(buf_.data() + pos_), n);
    pos_ += n;
    return true;
  }
  bool bytes(std::vector<std::byte>* b) {
    std::uint32_t n = 0;
    if (!u32(&n) || buf_.size() - pos_ < n) return false;
    b->assign(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
              buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return true;
  }

 private:
  bool raw(void* p, std::size_t n) {
    if (buf_.size() - pos_ < n) return false;
    std::memcpy(p, buf_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  std::span<const std::byte> buf_;
  std::size_t pos_ = 0;
};

/// Append an FNV-1a digest of everything written so far; the wire
/// format is <body><u64 checksum>.
std::vector<std::byte> seal(Writer&& w) {
  std::vector<std::byte> buf = std::move(w).take();
  const std::uint64_t sum = sim::hashBytes(buf);
  Writer tail;
  tail.u64(sum);
  const std::vector<std::byte> t = std::move(tail).take();
  buf.insert(buf.end(), t.begin(), t.end());
  return buf;
}

/// Verify and strip the trailing checksum; nullopt span on mismatch
/// (corruption anywhere in the message, checksum included).
std::optional<std::span<const std::byte>> unseal(
    std::span<const std::byte> buf) {
  if (buf.size() < sizeof(std::uint64_t)) return std::nullopt;
  const std::span<const std::byte> body =
      buf.first(buf.size() - sizeof(std::uint64_t));
  std::uint64_t sum = 0;
  std::memcpy(&sum, buf.data() + body.size(), sizeof sum);
  if (sim::hashBytes(body) != sum) return std::nullopt;
  return body;
}

}  // namespace

std::vector<std::byte> FsRequest::encode() const {
  Writer w;
  w.u64(seq);
  w.i32(srcNode);
  w.u32(pid);
  w.u32(tid);
  w.u32(static_cast<std::uint32_t>(op));
  w.u64(a0);
  w.u64(a1);
  w.u64(a2);
  w.str(path);
  w.bytes(payload);
  return seal(std::move(w));
}

std::optional<FsRequest> FsRequest::decode(std::span<const std::byte> buf) {
  const auto body = unseal(buf);
  if (!body) return std::nullopt;
  FsRequest r;
  Reader rd(*body);
  std::uint32_t op = 0;
  if (!rd.u64(&r.seq) || !rd.i32(&r.srcNode) || !rd.u32(&r.pid) ||
      !rd.u32(&r.tid) || !rd.u32(&op) || !rd.u64(&r.a0) || !rd.u64(&r.a1) ||
      !rd.u64(&r.a2) || !rd.str(&r.path) || !rd.bytes(&r.payload)) {
    return std::nullopt;
  }
  r.op = static_cast<FsOp>(op);
  return r;
}

std::vector<std::byte> FsReply::encode() const {
  Writer w;
  w.u64(seq);
  w.i32(srcNode);
  w.u32(pid);
  w.u32(tid);
  w.i64(result);
  w.bytes(payload);
  return seal(std::move(w));
}

std::optional<FsReply> FsReply::decode(std::span<const std::byte> buf) {
  const auto body = unseal(buf);
  if (!body) return std::nullopt;
  FsReply r;
  Reader rd(*body);
  if (!rd.u64(&r.seq) || !rd.i32(&r.srcNode) || !rd.u32(&r.pid) ||
      !rd.u32(&r.tid) || !rd.i64(&r.result) || !rd.bytes(&r.payload)) {
    return std::nullopt;
  }
  return r;
}

std::vector<std::byte> ShadowSnapshot::encode() const {
  Writer w;
  w.u32(pid);
  w.i32(nextFd);
  w.str(cwd);
  w.u32(static_cast<std::uint32_t>(fds.size()));
  for (const Fd& f : fds) {
    w.i32(f.fd);
    w.i32(f.shareWithFd);
    w.u64(f.flags);
    w.u64(f.offset);
    w.str(f.path);
  }
  // No checksum of its own: a snapshot always travels inside a sealed
  // FsRequest payload.
  return std::move(w).take();
}

std::optional<ShadowSnapshot> ShadowSnapshot::decode(
    std::span<const std::byte> buf) {
  ShadowSnapshot s;
  Reader rd(buf);
  std::uint32_t n = 0;
  if (!rd.u32(&s.pid) || !rd.i32(&s.nextFd) || !rd.str(&s.cwd) ||
      !rd.u32(&n)) {
    return std::nullopt;
  }
  // Each entry needs at least 28 bytes; reject absurd counts before
  // resize so a truncated buffer can't trigger a huge allocation.
  if (static_cast<std::size_t>(n) * 28 > buf.size()) return std::nullopt;
  s.fds.resize(n);
  for (Fd& f : s.fds) {
    if (!rd.i32(&f.fd) || !rd.i32(&f.shareWithFd) || !rd.u64(&f.flags) ||
        !rd.u64(&f.offset) || !rd.str(&f.path)) {
      return std::nullopt;
    }
  }
  return s;
}

}  // namespace bg::io

// Virtual filesystem used on the I/O nodes (and by the FWK baseline).
//
// The paper's point (§VI-A) is that CNK has essentially *no* I/O
// subsystem: POSIX semantics come from Linux on the I/O node. This VFS
// is that Linux-side substrate: mounted backends (RamFS, NFS-sim) with
// POSIX-ish result codes, per-client fd tables with seek offsets and a
// cwd — the state each ioproxy mirrors for its compute-node process.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/types.hpp"

namespace bg::io {

struct FileStat {
  std::uint64_t size = 0;
  bool isDir = false;
};

enum class FsOpKind : std::uint8_t {
  kOpen,
  kClose,
  kRead,
  kWrite,
  kLseek,
  kStat,
  kUnlink,
  kMkdir,
  kRename,
};

/// A mounted filesystem backend. All calls return >= 0 on success or a
/// negative errno.
class FsBackend {
 public:
  virtual ~FsBackend() = default;

  virtual std::int64_t open(const std::string& path, std::uint64_t flags) = 0;
  virtual std::int64_t close(std::int64_t handle) = 0;
  virtual std::int64_t pread(std::int64_t handle, std::span<std::byte> out,
                             std::uint64_t offset) = 0;
  virtual std::int64_t pwrite(std::int64_t handle,
                              std::span<const std::byte> in,
                              std::uint64_t offset) = 0;
  virtual std::int64_t stat(const std::string& path, FileStat* out) = 0;
  virtual std::int64_t unlink(const std::string& path) = 0;
  virtual std::int64_t mkdir(const std::string& path) = 0;
  /// Atomic within one backend; the default backend refuses (-ENOSYS)
  /// so pre-rename backends keep compiling unchanged.
  virtual std::int64_t rename(const std::string& oldPath,
                              const std::string& newPath);
  virtual std::int64_t fileSize(std::int64_t handle) = 0;

  /// Simulated service time for an operation of `bytes` payload,
  /// issued at cycle `now` (lets backends model jitter deterministically).
  virtual sim::Cycle opLatency(FsOpKind op, std::uint64_t bytes,
                               sim::Cycle now) = 0;
};

/// Mount table shared by every client on a node.
class Vfs {
 public:
  void mount(std::string prefix, std::shared_ptr<FsBackend> backend);

  struct Resolved {
    FsBackend* backend;
    std::string relPath;
  };
  /// Longest-prefix mount resolution of an absolute path.
  std::optional<Resolved> resolve(const std::string& absPath) const;

 private:
  // Longest prefix first: ordered map on descending prefix length.
  std::vector<std::pair<std::string, std::shared_ptr<FsBackend>>> mounts_;
};

/// Per-process filesystem state: fd table (with offsets and flags) and
/// current working directory. This is exactly the state an ioproxy
/// mirrors for its compute-node process (paper Fig 2).
class VfsClient {
 public:
  VfsClient(Vfs& vfs, sim::Engine& engine) : vfs_(vfs), engine_(engine) {}

  /// Returns fd >= 0 or -errno.
  std::int64_t open(const std::string& path, std::uint64_t flags);
  std::int64_t close(int fd);
  std::int64_t read(int fd, std::span<std::byte> out);
  std::int64_t write(int fd, std::span<const std::byte> in);
  /// Positioned variants: operate at an explicit offset and leave the
  /// fd's offset at offset+n. The function-shipping protocol uses
  /// these so a retransmitted read/write is idempotent — re-executing
  /// it hits the same file range and re-produces the same state.
  std::int64_t preadAt(int fd, std::span<std::byte> out,
                       std::uint64_t offset);
  std::int64_t pwriteAt(int fd, std::span<const std::byte> in,
                        std::uint64_t offset);
  std::int64_t lseek(int fd, std::int64_t offset, std::uint64_t whence);
  std::int64_t stat(const std::string& path, FileStat* out);
  std::int64_t unlink(const std::string& path);
  std::int64_t mkdir(const std::string& path);
  /// Both paths must resolve to the same backend (-EINVAL otherwise);
  /// atomicity is the backend's.
  std::int64_t rename(const std::string& oldPath, const std::string& newPath);
  std::int64_t dup(int fd);
  std::int64_t chdir(const std::string& path);
  const std::string& cwd() const { return cwd_; }

  /// Service latency for the most recent operation (the caller charges
  /// this to the simulated clock).
  sim::Cycle lastLatency() const { return lastLatency_; }

  std::string absolutize(const std::string& path) const;

  int openFdCount() const { return static_cast<int>(fds_.size()); }
  /// Current seek offset of an open fd (nullopt when fd is not open).
  std::optional<std::uint64_t> offsetOf(int fd) const {
    auto it = fds_.find(fd);
    if (it == fds_.end()) return std::nullopt;
    return it->second->offset;
  }

  // --- failover restore (CIOD rebuilding an ioproxy from CNK's
  // shadow state; see io/ciod.cpp) ---
  /// Recreate `fd` at its exact number by reopening `path`, or — when
  /// shareWithFd >= 0 — by sharing that fd's open file description
  /// (a dup group). Returns fd on success or -errno.
  std::int64_t restoreFd(int fd, const std::string& path,
                         std::uint64_t flags, std::uint64_t offset,
                         int shareWithFd);
  void setCwd(std::string cwd) { cwd_ = std::move(cwd); }
  void setNextFd(int next) { nextFd_ = next; }

 private:
  /// Shared "open file description": dup'd fds share the offset, and
  /// the backend handle closes only when the last fd drops.
  struct OpenFile {
    FsBackend* backend;
    std::int64_t handle;
    std::uint64_t offset;
    std::uint64_t flags;
  };
  OpenFile* fdGet(int fd);
  int fdAlloc();

  Vfs& vfs_;
  sim::Engine& engine_;
  std::string cwd_ = "/";
  std::map<int, std::shared_ptr<OpenFile>> fds_;
  int nextFd_ = 3;  // 0/1/2 reserved for std streams
  sim::Cycle lastLatency_ = 0;
};

/// Normalize a path: collapse //, resolve . and .. lexically.
std::string normalizePath(const std::string& path);

}  // namespace bg::io

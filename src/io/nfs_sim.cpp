#include "io/nfs_sim.hpp"

// NfsSim is header-only; this TU anchors the build target.

// The CNK <-> CIOD function-shipping wire protocol (paper Fig 2).
//
// Requests and replies are really marshalled to byte vectors and
// carried over the collective-network model; nothing is passed by
// host pointer. A write() request carries the user's buffer bytes, a
// read() reply carries the data that lands back in user memory.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace bg::io {

enum class FsOp : std::uint32_t {
  kOpen,
  kClose,
  kRead,
  kWrite,
  kLseek,
  kStat,
  kUnlink,
  kMkdir,
  kChdir,
  kGetcwd,
  kDup,
};

/// Collective-network channel tags.
inline constexpr std::uint32_t kChanFshipRequest = 1;
inline constexpr std::uint32_t kChanFshipReply = 2;

struct FsRequest {
  std::uint64_t seq = 0;
  std::int32_t srcNode = 0;
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  FsOp op = FsOp::kOpen;
  std::uint64_t a0 = 0;  // fd / flags / whence ...
  std::uint64_t a1 = 0;  // count / offset ...
  std::uint64_t a2 = 0;
  std::string path;                // for path-based ops
  std::vector<std::byte> payload;  // write data

  std::vector<std::byte> encode() const;
  static std::optional<FsRequest> decode(std::span<const std::byte> buf);
};

struct FsReply {
  std::uint64_t seq = 0;
  std::int32_t srcNode = 0;  // compute node the reply returns to
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  std::int64_t result = 0;
  std::vector<std::byte> payload;  // read data / getcwd string

  std::vector<std::byte> encode() const;
  static std::optional<FsReply> decode(std::span<const std::byte> buf);
};

}  // namespace bg::io

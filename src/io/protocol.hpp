// The CNK <-> CIOD function-shipping wire protocol (paper Fig 2).
//
// Requests and replies are really marshalled to byte vectors and
// carried over the collective-network model; nothing is passed by
// host pointer. A write() request carries the user's buffer bytes, a
// read() reply carries the data that lands back in user memory.
//
// Reliability layer: every message ends in an FNV-1a checksum of the
// preceding bytes, so link corruption is *detected* (decode returns
// nullopt) rather than silently absorbed; `seq` is monotone per
// (pid, tid) channel, which lets CIOD suppress duplicate requests via
// its replay cache and lets CNK discard stale or duplicated replies.
// kRead/kWrite carry an explicit file offset (a2) reserved by the
// client against its shadow fd table, making retransmits idempotent.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace bg::io {

enum class FsOp : std::uint32_t {
  kOpen,
  kClose,
  kRead,
  kWrite,
  kLseek,
  kStat,
  kUnlink,
  kMkdir,
  kChdir,
  kGetcwd,
  kDup,
  // Failover: bulk-restore a process's ioproxy state (fd table, cwd)
  // on a replacement I/O node from the CNK-side shadow. Sent on the
  // reserved (pid, tid=0) control channel.
  kRestoreState,
  // Atomic rename (two-phase checkpoint commit): `path` is the old
  // name, the new name rides the payload. A single op, so the replay
  // cache makes a retransmitted rename exactly-once.
  kRename,
};

/// Collective-network channel tags.
inline constexpr std::uint32_t kChanFshipRequest = 1;
inline constexpr std::uint32_t kChanFshipReply = 2;

struct FsRequest {
  std::uint64_t seq = 0;
  std::int32_t srcNode = 0;
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  FsOp op = FsOp::kOpen;
  std::uint64_t a0 = 0;  // fd / flags / whence ...
  std::uint64_t a1 = 0;  // count / offset ...
  std::uint64_t a2 = 0;
  std::string path;                // for path-based ops
  std::vector<std::byte> payload;  // write data

  std::vector<std::byte> encode() const;
  static std::optional<FsRequest> decode(std::span<const std::byte> buf);
};

struct FsReply {
  std::uint64_t seq = 0;
  std::int32_t srcNode = 0;  // compute node the reply returns to
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  std::int64_t result = 0;
  std::vector<std::byte> payload;  // read data / getcwd string

  std::vector<std::byte> encode() const;
  static std::optional<FsReply> decode(std::span<const std::byte> buf);
};

/// CNK's shadow of one process's I/O state — enough to rebuild the
/// ioproxy on a spare I/O node after a CIOD death (paper Fig 2's
/// mirrored fd/cwd state, turned into a recovery mechanism). Sent as
/// the payload of a kRestoreState request.
struct ShadowSnapshot {
  struct Fd {
    std::int32_t fd = 0;
    std::int32_t shareWithFd = -1;  // dup group leader, or -1
    std::uint64_t flags = 0;        // O_TRUNC is stripped on restore
    std::uint64_t offset = 0;
    std::string path;               // absolute, normalized
  };
  std::uint32_t pid = 0;
  std::int32_t nextFd = 3;
  std::string cwd = "/";
  std::vector<Fd> fds;

  std::vector<std::byte> encode() const;
  static std::optional<ShadowSnapshot> decode(
      std::span<const std::byte> buf);
};

}  // namespace bg::io

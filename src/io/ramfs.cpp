#include "io/ramfs.hpp"

#include <algorithm>

#include "kernel/syscalls.hpp"

namespace bg::io {

using namespace bg::kernel;

std::int64_t RamFs::open(const std::string& path, std::uint64_t flags) {
  const std::string p = normalizePath(path);
  auto it = files_.find(p);
  if (it == files_.end()) {
    if ((flags & kOCreat) == 0) return -kENOENT;
    if (dirs_.contains(p)) return -kEISDIR;
    // Parent directory must exist (the root always does).
    const auto slash = p.find_last_of('/');
    const std::string parent = slash == 0 ? "/" : p.substr(0, slash);
    if (!dirs_.contains(parent)) return -kENOENT;
    it = files_.emplace(p, std::make_shared<File>()).first;
  } else if (flags & kOTrunc) {
    it->second->data.clear();
  }
  if (dirs_.contains(p)) return -kEISDIR;
  const std::int64_t h = nextHandle_++;
  handles_[h] = it->second;
  ++it->second->openCount;
  return h;
}

std::int64_t RamFs::close(std::int64_t handle) {
  auto it = handles_.find(handle);
  if (it == handles_.end()) return -kEBADF;
  --it->second->openCount;
  handles_.erase(it);
  return 0;
}

std::int64_t RamFs::pread(std::int64_t handle, std::span<std::byte> out,
                          std::uint64_t offset) {
  auto it = handles_.find(handle);
  if (it == handles_.end()) return -kEBADF;
  const auto& data = it->second->data;
  if (offset >= data.size()) return 0;
  const std::size_t n =
      std::min<std::size_t>(out.size(), data.size() - offset);
  std::copy_n(data.begin() + static_cast<std::ptrdiff_t>(offset), n,
              out.begin());
  return static_cast<std::int64_t>(n);
}

std::int64_t RamFs::pwrite(std::int64_t handle, std::span<const std::byte> in,
                           std::uint64_t offset) {
  auto it = handles_.find(handle);
  if (it == handles_.end()) return -kEBADF;
  auto& data = it->second->data;
  if (offset + in.size() > data.size()) data.resize(offset + in.size());
  std::copy(in.begin(), in.end(),
            data.begin() + static_cast<std::ptrdiff_t>(offset));
  return static_cast<std::int64_t>(in.size());
}

std::int64_t RamFs::stat(const std::string& path, FileStat* out) {
  const std::string p = normalizePath(path);
  if (dirs_.contains(p)) {
    if (out != nullptr) *out = FileStat{0, true};
    return 0;
  }
  auto it = files_.find(p);
  if (it == files_.end()) return -kENOENT;
  if (out != nullptr) *out = FileStat{it->second->data.size(), false};
  return 0;
}

std::int64_t RamFs::unlink(const std::string& path) {
  const std::string p = normalizePath(path);
  if (dirs_.contains(p)) return -kEISDIR;
  auto it = files_.find(p);
  if (it == files_.end()) return -kENOENT;
  files_.erase(it);  // open handles keep the shared_ptr alive
  return 0;
}

std::int64_t RamFs::mkdir(const std::string& path) {
  const std::string p = normalizePath(path);
  if (dirs_.contains(p) || files_.contains(p)) return -kEEXIST;
  const auto slash = p.find_last_of('/');
  const std::string parent = slash == 0 ? "/" : p.substr(0, slash);
  if (!dirs_.contains(parent)) return -kENOENT;
  dirs_.insert(p);
  return 0;
}

std::int64_t RamFs::rename(const std::string& oldPath,
                           const std::string& newPath) {
  const std::string o = normalizePath(oldPath);
  const std::string n = normalizePath(newPath);
  if (dirs_.contains(o)) return -kEISDIR;  // directory moves unsupported
  auto it = files_.find(o);
  if (it == files_.end()) return -kENOENT;
  if (dirs_.contains(n)) return -kEISDIR;
  const auto slash = n.find_last_of('/');
  const std::string parent = slash == 0 ? "/" : n.substr(0, slash);
  if (!dirs_.contains(parent)) return -kENOENT;
  if (o == n) return 0;
  // POSIX semantics: an existing destination is replaced atomically.
  files_[n] = std::move(it->second);
  files_.erase(it);
  return 0;
}

std::int64_t RamFs::fileSize(std::int64_t handle) {
  auto it = handles_.find(handle);
  if (it == handles_.end()) return -kEBADF;
  return static_cast<std::int64_t>(it->second->data.size());
}

sim::Cycle RamFs::opLatency(FsOpKind op, std::uint64_t bytes, sim::Cycle) {
  // Local page-cache speeds: a couple of microseconds per op plus
  // memory-copy time.
  switch (op) {
    case FsOpKind::kRead:
    case FsOpKind::kWrite:
      return 1700 + bytes / 4;
    default:
      return 1700;
  }
}

void RamFs::putFile(const std::string& path, std::vector<std::byte> contents) {
  auto f = std::make_shared<File>();
  f->data = std::move(contents);
  files_[normalizePath(path)] = std::move(f);
}

std::vector<std::byte> RamFs::fileContents(const std::string& path) const {
  auto it = files_.find(normalizePath(path));
  return it == files_.end() ? std::vector<std::byte>{} : it->second->data;
}

bool RamFs::exists(const std::string& path) const {
  const std::string p = normalizePath(path);
  return files_.contains(p) || dirs_.contains(p);
}

}  // namespace bg::io

// In-memory filesystem backend with real byte contents.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "io/vfs.hpp"

namespace bg::io {

class RamFs : public FsBackend {
 public:
  RamFs() = default;

  std::int64_t open(const std::string& path, std::uint64_t flags) override;
  std::int64_t close(std::int64_t handle) override;
  std::int64_t pread(std::int64_t handle, std::span<std::byte> out,
                     std::uint64_t offset) override;
  std::int64_t pwrite(std::int64_t handle, std::span<const std::byte> in,
                      std::uint64_t offset) override;
  std::int64_t stat(const std::string& path, FileStat* out) override;
  std::int64_t unlink(const std::string& path) override;
  std::int64_t mkdir(const std::string& path) override;
  std::int64_t rename(const std::string& oldPath,
                      const std::string& newPath) override;
  std::int64_t fileSize(std::int64_t handle) override;
  sim::Cycle opLatency(FsOpKind op, std::uint64_t bytes,
                       sim::Cycle now) override;

  /// Host-side helper to preload file content (e.g. dynamic library
  /// images staged for the job).
  void putFile(const std::string& path, std::vector<std::byte> contents);
  /// Host-side read of a full file (test inspection).
  std::vector<std::byte> fileContents(const std::string& path) const;
  bool exists(const std::string& path) const;
  std::size_t fileCount() const { return files_.size(); }

 private:
  struct File {
    std::vector<std::byte> data;
    int openCount = 0;
  };
  std::map<std::string, std::shared_ptr<File>> files_;
  std::set<std::string> dirs_{"/"};
  std::map<std::int64_t, std::shared_ptr<File>> handles_;
  std::int64_t nextHandle_ = 1;
};

}  // namespace bg::io

#include "io/vfs.hpp"

#include <algorithm>

#include "kernel/syscalls.hpp"

namespace bg::io {

using kernel::kEBADF;
using kernel::kEINVAL;
using kernel::kENOENT;

std::string normalizePath(const std::string& path) {
  std::vector<std::string> parts;
  std::string cur;
  auto flush = [&] {
    if (cur.empty() || cur == ".") {
      // skip
    } else if (cur == "..") {
      if (!parts.empty()) parts.pop_back();
    } else {
      parts.push_back(cur);
    }
    cur.clear();
  };
  for (char c : path) {
    if (c == '/') {
      flush();
    } else {
      cur.push_back(c);
    }
  }
  flush();
  std::string out = "/";
  for (std::size_t i = 0; i < parts.size(); ++i) {
    out += parts[i];
    if (i + 1 < parts.size()) out += "/";
  }
  return out;
}

std::int64_t FsBackend::rename(const std::string& oldPath,
                               const std::string& newPath) {
  (void)oldPath;
  (void)newPath;
  return -kernel::kENOSYS;
}

void Vfs::mount(std::string prefix, std::shared_ptr<FsBackend> backend) {
  mounts_.emplace_back(normalizePath(prefix), std::move(backend));
  std::sort(mounts_.begin(), mounts_.end(),
            [](const auto& a, const auto& b) {
              return a.first.size() > b.first.size();
            });
}

std::optional<Vfs::Resolved> Vfs::resolve(const std::string& absPath) const {
  const std::string p = normalizePath(absPath);
  for (const auto& [prefix, backend] : mounts_) {
    if (p == prefix) return Resolved{backend.get(), "/"};
    const std::string pfx = prefix == "/" ? "" : prefix;
    if (p.size() > pfx.size() && p.compare(0, pfx.size(), pfx) == 0 &&
        p[pfx.size()] == '/') {
      return Resolved{backend.get(), p.substr(pfx.size())};
    }
  }
  return std::nullopt;
}

std::string VfsClient::absolutize(const std::string& path) const {
  if (!path.empty() && path[0] == '/') return normalizePath(path);
  return normalizePath(cwd_ + "/" + path);
}

VfsClient::OpenFile* VfsClient::fdGet(int fd) {
  auto it = fds_.find(fd);
  return it == fds_.end() ? nullptr : it->second.get();
}

int VfsClient::fdAlloc() { return nextFd_++; }

std::int64_t VfsClient::open(const std::string& path, std::uint64_t flags) {
  const std::string abs = absolutize(path);
  auto res = vfs_.resolve(abs);
  if (!res) {
    lastLatency_ = 200;
    return -kENOENT;
  }
  const std::int64_t h = res->backend->open(res->relPath, flags);
  lastLatency_ = res->backend->opLatency(FsOpKind::kOpen, 0, engine_.now());
  if (h < 0) return h;
  const int fd = fdAlloc();
  std::uint64_t offset = 0;
  if (flags & kernel::kOAppend) {
    const std::int64_t sz = res->backend->fileSize(h);
    if (sz > 0) offset = static_cast<std::uint64_t>(sz);
  }
  fds_[fd] = std::make_shared<OpenFile>(
      OpenFile{res->backend, h, offset, flags});
  return fd;
}

std::int64_t VfsClient::close(int fd) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    lastLatency_ = 100;
    return -kEBADF;
  }
  std::shared_ptr<OpenFile> f = std::move(it->second);
  fds_.erase(it);
  lastLatency_ = f->backend->opLatency(FsOpKind::kClose, 0, engine_.now());
  if (f.use_count() == 1) {
    // Last fd on this description: release the backend handle.
    f->backend->close(f->handle);
  }
  return 0;
}

std::int64_t VfsClient::read(int fd, std::span<std::byte> out) {
  OpenFile* f = fdGet(fd);
  if (f == nullptr) {
    lastLatency_ = 100;
    return -kEBADF;
  }
  const std::int64_t n = f->backend->pread(f->handle, out, f->offset);
  lastLatency_ = f->backend->opLatency(FsOpKind::kRead,
                                       n > 0 ? static_cast<std::uint64_t>(n) : 0,
                                       engine_.now());
  if (n > 0) f->offset += static_cast<std::uint64_t>(n);
  return n;
}

std::int64_t VfsClient::write(int fd, std::span<const std::byte> in) {
  OpenFile* f = fdGet(fd);
  if (f == nullptr) {
    lastLatency_ = 100;
    return -kEBADF;
  }
  const std::int64_t n = f->backend->pwrite(f->handle, in, f->offset);
  lastLatency_ = f->backend->opLatency(FsOpKind::kWrite,
                                       n > 0 ? static_cast<std::uint64_t>(n) : 0,
                                       engine_.now());
  if (n > 0) f->offset += static_cast<std::uint64_t>(n);
  return n;
}

std::int64_t VfsClient::preadAt(int fd, std::span<std::byte> out,
                                std::uint64_t offset) {
  OpenFile* f = fdGet(fd);
  if (f == nullptr) {
    lastLatency_ = 100;
    return -kEBADF;
  }
  const std::int64_t n = f->backend->pread(f->handle, out, offset);
  lastLatency_ = f->backend->opLatency(FsOpKind::kRead,
                                       n > 0 ? static_cast<std::uint64_t>(n) : 0,
                                       engine_.now());
  if (n >= 0) f->offset = offset + static_cast<std::uint64_t>(n);
  return n;
}

std::int64_t VfsClient::pwriteAt(int fd, std::span<const std::byte> in,
                                 std::uint64_t offset) {
  OpenFile* f = fdGet(fd);
  if (f == nullptr) {
    lastLatency_ = 100;
    return -kEBADF;
  }
  const std::int64_t n = f->backend->pwrite(f->handle, in, offset);
  lastLatency_ = f->backend->opLatency(FsOpKind::kWrite,
                                       n > 0 ? static_cast<std::uint64_t>(n) : 0,
                                       engine_.now());
  if (n >= 0) f->offset = offset + static_cast<std::uint64_t>(n);
  return n;
}

std::int64_t VfsClient::lseek(int fd, std::int64_t offset,
                              std::uint64_t whence) {
  OpenFile* f = fdGet(fd);
  lastLatency_ = 120;
  if (f == nullptr) return -kEBADF;
  std::int64_t base = 0;
  switch (whence) {
    case kernel::kSeekSet: base = 0; break;
    case kernel::kSeekCur: base = static_cast<std::int64_t>(f->offset); break;
    case kernel::kSeekEnd: base = f->backend->fileSize(f->handle); break;
    default: return -kEINVAL;
  }
  const std::int64_t target = base + offset;
  if (target < 0) return -kEINVAL;
  f->offset = static_cast<std::uint64_t>(target);
  return target;
}

std::int64_t VfsClient::stat(const std::string& path, FileStat* out) {
  const std::string abs = absolutize(path);
  auto res = vfs_.resolve(abs);
  if (!res) {
    lastLatency_ = 200;
    return -kENOENT;
  }
  lastLatency_ = res->backend->opLatency(FsOpKind::kStat, 0, engine_.now());
  return res->backend->stat(res->relPath, out);
}

std::int64_t VfsClient::unlink(const std::string& path) {
  const std::string abs = absolutize(path);
  auto res = vfs_.resolve(abs);
  if (!res) {
    lastLatency_ = 200;
    return -kENOENT;
  }
  lastLatency_ = res->backend->opLatency(FsOpKind::kUnlink, 0, engine_.now());
  return res->backend->unlink(res->relPath);
}

std::int64_t VfsClient::mkdir(const std::string& path) {
  const std::string abs = absolutize(path);
  auto res = vfs_.resolve(abs);
  if (!res) {
    lastLatency_ = 200;
    return -kENOENT;
  }
  lastLatency_ = res->backend->opLatency(FsOpKind::kMkdir, 0, engine_.now());
  return res->backend->mkdir(res->relPath);
}

std::int64_t VfsClient::rename(const std::string& oldPath,
                               const std::string& newPath) {
  const std::string absOld = absolutize(oldPath);
  const std::string absNew = absolutize(newPath);
  auto resOld = vfs_.resolve(absOld);
  auto resNew = vfs_.resolve(absNew);
  if (!resOld || !resNew) {
    lastLatency_ = 200;
    return -kENOENT;
  }
  if (resOld->backend != resNew->backend) {
    // Cross-mount rename would not be atomic; refuse like EXDEV.
    lastLatency_ = 200;
    return -kEINVAL;
  }
  lastLatency_ =
      resOld->backend->opLatency(FsOpKind::kRename, 0, engine_.now());
  return resOld->backend->rename(resOld->relPath, resNew->relPath);
}

std::int64_t VfsClient::dup(int fd) {
  auto it = fds_.find(fd);
  lastLatency_ = 120;
  if (it == fds_.end()) return -kEBADF;
  const int nfd = fdAlloc();
  fds_[nfd] = it->second;  // shared description: offset and handle
  return nfd;
}

std::int64_t VfsClient::restoreFd(int fd, const std::string& path,
                                  std::uint64_t flags, std::uint64_t offset,
                                  int shareWithFd) {
  if (fds_.count(fd) != 0) return -kEBADF;
  if (shareWithFd >= 0) {
    auto it = fds_.find(shareWithFd);
    if (it == fds_.end()) return -kEBADF;
    fds_[fd] = it->second;
    return fd;
  }
  auto res = vfs_.resolve(normalizePath(path));
  if (!res) return -kENOENT;
  // Strip O_TRUNC: the file's contents are the survivor's state, not
  // something to re-truncate on every failover.
  const std::uint64_t openFlags = flags & ~kernel::kOTrunc;
  const std::int64_t h = res->backend->open(res->relPath, openFlags);
  if (h < 0) return h;
  fds_[fd] = std::make_shared<OpenFile>(
      OpenFile{res->backend, h, offset, openFlags});
  return fd;
}

std::int64_t VfsClient::chdir(const std::string& path) {
  const std::string abs = absolutize(path);
  auto res = vfs_.resolve(abs);
  lastLatency_ = 150;
  if (!res) return -kENOENT;
  FileStat st;
  const std::int64_t rc = res->backend->stat(res->relPath, &st);
  if (rc < 0) return rc;
  if (!st.isDir) return -kernel::kENOTDIR;
  cwd_ = abs;
  return 0;
}

}  // namespace bg::io

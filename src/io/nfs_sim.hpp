// NFS-like remote filesystem: a RamFs reached over a simulated
// server link, with deterministic-but-jittered service times.
//
// This models the network filesystems (NFS/GPFS/PVFS/Lustre) that are
// "installed on the I/O nodes and available to CNK processes via the
// ioproxy" (paper §IV-A). The jitter stream is seeded, so runs are
// reproducible while still showing realistic variance — it is also the
// reason the paper's Linux allreduce experiment (NFS needed between
// tests) is noisier than CNK's.
#pragma once

#include <memory>

#include "io/ramfs.hpp"
#include "sim/rng.hpp"

namespace bg::io {

struct NfsConfig {
  sim::Cycle baseLatency = 170'000;   // ~200us round trip at 850MHz
  double cyclesPerByte = 8.5;         // ~100MB/s server bandwidth
  sim::Cycle jitterMean = 25'000;     // exponential service-time jitter
  std::uint64_t seed = 7;
};

class NfsSim : public FsBackend {
 public:
  explicit NfsSim(const NfsConfig& cfg = {})
      : cfg_(cfg), rng_(cfg.seed, "nfs") {}

  std::int64_t open(const std::string& path, std::uint64_t flags) override {
    return inner_.open(path, flags);
  }
  std::int64_t close(std::int64_t h) override { return inner_.close(h); }
  std::int64_t pread(std::int64_t h, std::span<std::byte> out,
                     std::uint64_t off) override {
    return inner_.pread(h, out, off);
  }
  std::int64_t pwrite(std::int64_t h, std::span<const std::byte> in,
                      std::uint64_t off) override {
    return inner_.pwrite(h, in, off);
  }
  std::int64_t stat(const std::string& path, FileStat* out) override {
    return inner_.stat(path, out);
  }
  std::int64_t unlink(const std::string& path) override {
    return inner_.unlink(path);
  }
  std::int64_t mkdir(const std::string& path) override {
    return inner_.mkdir(path);
  }
  std::int64_t rename(const std::string& oldPath,
                      const std::string& newPath) override {
    return inner_.rename(oldPath, newPath);
  }
  std::int64_t fileSize(std::int64_t h) override { return inner_.fileSize(h); }

  sim::Cycle opLatency(FsOpKind, std::uint64_t bytes, sim::Cycle) override {
    const sim::Cycle jitter =
        static_cast<sim::Cycle>(rng_.nextExp(
            static_cast<double>(cfg_.jitterMean)));
    return cfg_.baseLatency +
           static_cast<sim::Cycle>(cfg_.cyclesPerByte *
                                   static_cast<double>(bytes)) +
           jitter;
  }

  RamFs& storage() { return inner_; }

 private:
  NfsConfig cfg_;
  RamFs inner_;
  sim::Rng rng_;
};

}  // namespace bg::io

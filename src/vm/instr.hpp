// Instruction set of the workload virtual machine.
//
// We do not emulate the PPC450 ISA. Workloads (FWQ, LINPACK proxy,
// allreduce, ...) are expressed as small deterministic programs over 32
// virtual registers, with explicit cost-bearing instructions for
// compute blocks and memory traffic. This keeps simulated cycle counts
// a first-class, exactly-reproducible quantity — which is the property
// the paper's bringup methodology (§III) depends on.
#pragma once

#include <cstdint>

namespace bg::vm {

using Reg = std::uint8_t;  // register index, 0..31
inline constexpr int kNumRegs = 32;

// ABI convention used by the runtime: r0 holds syscall/rtcall results,
// r1..r6 hold arguments.
inline constexpr Reg kRetReg = 0;
inline constexpr Reg kArg0 = 1;

enum class Op : std::uint8_t {
  kHalt,     // terminate thread; r1 = exit status
  kLi,       // rd = imm
  kMov,      // rd = ra
  kAdd,      // rd = ra + rb
  kAddi,     // rd = ra + imm
  kSub,      // rd = ra - rb
  kMul,      // rd = ra * rb
  kAnd,      // rd = ra & rb
  kOr,       // rd = ra | rb
  kXor,      // rd = ra ^ rb
  kShl,      // rd = ra << (imm & 63)
  kShr,      // rd = ra >> (imm & 63)
  kJump,     // pc = imm
  kBeqz,     // if (ra == 0) pc = imm
  kBnez,     // if (ra != 0) pc = imm
  kBlt,      // if (ra < rb) pc = imm   (unsigned)
  kCompute,  // burn imm cycles of pure computation (no memory traffic)
  kMemTouch, // touch a(bytes) of memory at vaddr ra+imm, stride b,
             // write if flags&1; cost comes from the cache/TLB model
  kLoad,     // rd = *(u64*)(ra + imm); real data via MMU
  kStore,    // *(u64*)(ra + imm) = rb; real data via MMU
  kCas,      // atomic: if (*(u64*)(ra) == rb) { *(ra) = imm-reg b? }
             // encoding: rd = old value; compare rb, swap in reg flags
  kFetchAdd, // rd = atomic_fetch_add((u64*)(ra), rb)
  kSyscall,  // r0 = kernel syscall; imm = syscall number, args r1..r6
  kRtCall,   // r0 = user-runtime call; imm = function id, args r1..r6
  kReadTB,   // rd = current timebase (cycle counter)
  kSample,   // append ra to the thread's host-visible sample buffer
  kNop,
};

/// One decoded instruction. `a`/`b` are operand fields whose meaning is
/// per-op (see Op comments); imm is a 64-bit immediate.
struct Instr {
  Op op = Op::kNop;
  Reg rd = 0;
  Reg ra = 0;
  Reg rb = 0;
  std::uint8_t flags = 0;
  std::uint32_t a = 0;  // kMemTouch: byte count
  std::uint32_t b = 0;  // kMemTouch: stride (0 => sequential lines)
  std::int64_t imm = 0;
};

/// kCas detail: rd = old; success iff old == regs[rb]; on success the
/// stored value is regs[flags] (flags doubles as a register index).
inline constexpr std::uint8_t kMemTouchWrite = 1;

const char* opName(Op op);

}  // namespace bg::vm

#include "vm/program.hpp"

#include <sstream>

namespace bg::vm {

const char* opName(Op op) {
  switch (op) {
    case Op::kHalt: return "halt";
    case Op::kLi: return "li";
    case Op::kMov: return "mov";
    case Op::kAdd: return "add";
    case Op::kAddi: return "addi";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kShl: return "shl";
    case Op::kShr: return "shr";
    case Op::kJump: return "jump";
    case Op::kBeqz: return "beqz";
    case Op::kBnez: return "bnez";
    case Op::kBlt: return "blt";
    case Op::kCompute: return "compute";
    case Op::kMemTouch: return "memtouch";
    case Op::kLoad: return "load";
    case Op::kStore: return "store";
    case Op::kCas: return "cas";
    case Op::kFetchAdd: return "fetchadd";
    case Op::kSyscall: return "syscall";
    case Op::kRtCall: return "rtcall";
    case Op::kReadTB: return "readtb";
    case Op::kSample: return "sample";
    case Op::kNop: return "nop";
  }
  return "?";
}

void Program::decode() {
  decoded_.resize(code_.size());
  for (std::size_t i = 0; i < code_.size(); ++i) {
    const Instr& in = code_[i];
    DecodedInstr& d = decoded_[i];
    d.op = in.op;
    d.rd = in.rd;
    d.ra = in.ra;
    d.rb = in.rb;
    d.flags = in.flags;
    d.a = in.a;
    d.b = in.b;
    d.imm = in.imm;
    d.uimm = static_cast<std::uint64_t>(in.imm);
  }
}

std::string Program::disassemble() const {
  std::ostringstream os;
  os << "; program " << name_ << " (" << code_.size() << " instrs)\n";
  for (std::size_t i = 0; i < code_.size(); ++i) {
    const Instr& in = code_[i];
    os << i << ":\t" << opName(in.op) << " rd=" << int(in.rd)
       << " ra=" << int(in.ra) << " rb=" << int(in.rb)
       << " imm=" << in.imm;
    if (in.a || in.b) os << " a=" << in.a << " b=" << in.b;
    os << "\n";
  }
  return os.str();
}

}  // namespace bg::vm

// A program is an immutable sequence of instructions plus metadata.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vm/instr.hpp"

namespace bg::vm {

/// One pre-decoded instruction: the same operand fields as Instr with
/// the immediate's unsigned reinterpretation folded in at decode time.
/// Cores execute straight from a Program's dense DecodedInstr array
/// (the decoded-instruction cache), so the per-instruction hot path
/// never re-derives anything from the encoding.
struct DecodedInstr {
  Op op = Op::kNop;
  Reg rd = 0;
  Reg ra = 0;
  Reg rb = 0;
  std::uint8_t flags = 0;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint64_t uimm = 0;  // imm as unsigned: branch targets, addends
  std::int64_t imm = 0;
};

class Program {
 public:
  Program() = default;
  Program(std::string name, std::vector<Instr> code)
      : name_(std::move(name)), code_(std::move(code)) {
    decode();
  }

  const std::string& name() const { return name_; }
  const std::vector<Instr>& code() const { return code_; }
  std::size_t size() const { return code_.size(); }
  const Instr& at(std::uint64_t pc) const { return code_[pc]; }
  bool valid(std::uint64_t pc) const { return pc < code_.size(); }

  /// Dense decoded image, built once at construction; size() entries.
  const DecodedInstr* decoded() const { return decoded_.data(); }

  /// Human-readable disassembly (debugging aid).
  std::string disassemble() const;

 private:
  void decode();

  std::string name_;
  std::vector<Instr> code_;
  std::vector<DecodedInstr> decoded_;
};

}  // namespace bg::vm

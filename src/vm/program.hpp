// A program is an immutable sequence of instructions plus metadata.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vm/instr.hpp"

namespace bg::vm {

class Program {
 public:
  Program() = default;
  Program(std::string name, std::vector<Instr> code)
      : name_(std::move(name)), code_(std::move(code)) {}

  const std::string& name() const { return name_; }
  const std::vector<Instr>& code() const { return code_; }
  std::size_t size() const { return code_.size(); }
  const Instr& at(std::uint64_t pc) const { return code_[pc]; }
  bool valid(std::uint64_t pc) const { return pc < code_.size(); }

  /// Human-readable disassembly (debugging aid).
  std::string disassemble() const;

 private:
  std::string name_;
  std::vector<Instr> code_;
};

}  // namespace bg::vm

#include "vm/builder.hpp"

#include <cassert>

namespace bg::vm {

ProgramBuilder& ProgramBuilder::li(Reg rd, std::int64_t imm) {
  return emit({.op = Op::kLi, .rd = rd, .imm = imm});
}
ProgramBuilder& ProgramBuilder::mov(Reg rd, Reg ra) {
  return emit({.op = Op::kMov, .rd = rd, .ra = ra});
}
ProgramBuilder& ProgramBuilder::add(Reg rd, Reg ra, Reg rb) {
  return emit({.op = Op::kAdd, .rd = rd, .ra = ra, .rb = rb});
}
ProgramBuilder& ProgramBuilder::addi(Reg rd, Reg ra, std::int64_t imm) {
  return emit({.op = Op::kAddi, .rd = rd, .ra = ra, .imm = imm});
}
ProgramBuilder& ProgramBuilder::sub(Reg rd, Reg ra, Reg rb) {
  return emit({.op = Op::kSub, .rd = rd, .ra = ra, .rb = rb});
}
ProgramBuilder& ProgramBuilder::mul(Reg rd, Reg ra, Reg rb) {
  return emit({.op = Op::kMul, .rd = rd, .ra = ra, .rb = rb});
}
ProgramBuilder& ProgramBuilder::andr(Reg rd, Reg ra, Reg rb) {
  return emit({.op = Op::kAnd, .rd = rd, .ra = ra, .rb = rb});
}
ProgramBuilder& ProgramBuilder::orr(Reg rd, Reg ra, Reg rb) {
  return emit({.op = Op::kOr, .rd = rd, .ra = ra, .rb = rb});
}
ProgramBuilder& ProgramBuilder::xorr(Reg rd, Reg ra, Reg rb) {
  return emit({.op = Op::kXor, .rd = rd, .ra = ra, .rb = rb});
}
ProgramBuilder& ProgramBuilder::shl(Reg rd, Reg ra, std::int64_t amount) {
  return emit({.op = Op::kShl, .rd = rd, .ra = ra, .imm = amount});
}
ProgramBuilder& ProgramBuilder::shr(Reg rd, Reg ra, std::int64_t amount) {
  return emit({.op = Op::kShr, .rd = rd, .ra = ra, .imm = amount});
}
ProgramBuilder& ProgramBuilder::jump(std::int64_t target) {
  return emit({.op = Op::kJump, .imm = target});
}
ProgramBuilder& ProgramBuilder::beqz(Reg ra, std::int64_t target) {
  return emit({.op = Op::kBeqz, .ra = ra, .imm = target});
}
ProgramBuilder& ProgramBuilder::bnez(Reg ra, std::int64_t target) {
  return emit({.op = Op::kBnez, .ra = ra, .imm = target});
}
ProgramBuilder& ProgramBuilder::blt(Reg ra, Reg rb, std::int64_t target) {
  return emit({.op = Op::kBlt, .ra = ra, .rb = rb, .imm = target});
}
ProgramBuilder& ProgramBuilder::compute(std::uint64_t cycles) {
  return emit({.op = Op::kCompute, .imm = static_cast<std::int64_t>(cycles)});
}
ProgramBuilder& ProgramBuilder::memTouch(Reg base, std::int64_t offset,
                                         std::uint32_t bytes,
                                         std::uint32_t stride, bool write) {
  return emit({.op = Op::kMemTouch,
               .ra = base,
               .flags = static_cast<std::uint8_t>(write ? kMemTouchWrite : 0),
               .a = bytes,
               .b = stride,
               .imm = offset});
}
ProgramBuilder& ProgramBuilder::load(Reg rd, Reg base, std::int64_t offset) {
  return emit({.op = Op::kLoad, .rd = rd, .ra = base, .imm = offset});
}
ProgramBuilder& ProgramBuilder::store(Reg base, Reg src, std::int64_t offset) {
  return emit({.op = Op::kStore, .ra = base, .rb = src, .imm = offset});
}
ProgramBuilder& ProgramBuilder::cas(Reg rd, Reg addr, Reg expect,
                                    Reg desired) {
  return emit(
      {.op = Op::kCas, .rd = rd, .ra = addr, .rb = expect, .flags = desired});
}
ProgramBuilder& ProgramBuilder::fetchAdd(Reg rd, Reg addr, Reg delta) {
  return emit({.op = Op::kFetchAdd, .rd = rd, .ra = addr, .rb = delta});
}
ProgramBuilder& ProgramBuilder::syscall(std::int64_t nr) {
  return emit({.op = Op::kSyscall, .imm = nr});
}
ProgramBuilder& ProgramBuilder::rtcall(std::int64_t fnId) {
  return emit({.op = Op::kRtCall, .imm = fnId});
}
ProgramBuilder& ProgramBuilder::readTb(Reg rd) {
  return emit({.op = Op::kReadTB, .rd = rd});
}
ProgramBuilder& ProgramBuilder::sample(Reg ra) {
  return emit({.op = Op::kSample, .ra = ra});
}
ProgramBuilder& ProgramBuilder::halt(std::int64_t status) {
  return emit({.op = Op::kHalt, .imm = status});
}
ProgramBuilder& ProgramBuilder::nop() { return emit({.op = Op::kNop}); }

std::size_t ProgramBuilder::emitForwardBranch(Op op, Reg ra, Reg rb) {
  assert(op == Op::kJump || op == Op::kBeqz || op == Op::kBnez ||
         op == Op::kBlt);
  const std::size_t idx = code_.size();
  emit({.op = op, .ra = ra, .rb = rb, .imm = -1});
  return idx;
}

void ProgramBuilder::patchTarget(std::size_t instrIndex,
                                 std::int64_t target) {
  assert(instrIndex < code_.size());
  code_[instrIndex].imm = target;
}

std::int64_t ProgramBuilder::loopBegin(Reg counter, std::int64_t n) {
  assert(n >= 1);
  li(counter, n);
  return label();
}

ProgramBuilder& ProgramBuilder::loopEnd(Reg counter, std::int64_t top) {
  addi(counter, counter, -1);
  return bnez(counter, top);
}

Program ProgramBuilder::build() && {
  return Program(std::move(name_), std::move(code_));
}

}  // namespace bg::vm

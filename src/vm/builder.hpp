// Fluent builder for VM programs, with labels and structured loops.
//
// Workload authors (src/apps) use this DSL instead of hand-writing
// instruction vectors:
//
//   ProgramBuilder b("fwq");
//   b.li(R, 12000);
//   auto top = b.label();
//   b.compute(2574);
//   b.addi(R, R, -1).bnez(R, top);
//   b.halt();
//   Program p = std::move(b).build();
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "vm/program.hpp"

namespace bg::vm {

class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name) : name_(std::move(name)) {}

  /// Position of the next emitted instruction; use as a branch target.
  std::int64_t label() const { return static_cast<std::int64_t>(code_.size()); }

  ProgramBuilder& li(Reg rd, std::int64_t imm);
  ProgramBuilder& mov(Reg rd, Reg ra);
  ProgramBuilder& add(Reg rd, Reg ra, Reg rb);
  ProgramBuilder& addi(Reg rd, Reg ra, std::int64_t imm);
  ProgramBuilder& sub(Reg rd, Reg ra, Reg rb);
  ProgramBuilder& mul(Reg rd, Reg ra, Reg rb);
  ProgramBuilder& andr(Reg rd, Reg ra, Reg rb);
  ProgramBuilder& orr(Reg rd, Reg ra, Reg rb);
  ProgramBuilder& xorr(Reg rd, Reg ra, Reg rb);
  ProgramBuilder& shl(Reg rd, Reg ra, std::int64_t amount);
  ProgramBuilder& shr(Reg rd, Reg ra, std::int64_t amount);
  ProgramBuilder& jump(std::int64_t target);
  ProgramBuilder& beqz(Reg ra, std::int64_t target);
  ProgramBuilder& bnez(Reg ra, std::int64_t target);
  ProgramBuilder& blt(Reg ra, Reg rb, std::int64_t target);
  ProgramBuilder& compute(std::uint64_t cycles);
  ProgramBuilder& memTouch(Reg base, std::int64_t offset,
                           std::uint32_t bytes, std::uint32_t stride = 0,
                           bool write = false);
  ProgramBuilder& load(Reg rd, Reg base, std::int64_t offset = 0);
  ProgramBuilder& store(Reg base, Reg src, std::int64_t offset = 0);
  ProgramBuilder& cas(Reg rd, Reg addr, Reg expect, Reg desired);
  ProgramBuilder& fetchAdd(Reg rd, Reg addr, Reg delta);
  /// r0 = syscall(nr) with args already placed in r1..r6 by caller code.
  ProgramBuilder& syscall(std::int64_t nr);
  ProgramBuilder& rtcall(std::int64_t fnId);
  ProgramBuilder& readTb(Reg rd);
  ProgramBuilder& sample(Reg ra);
  ProgramBuilder& halt(std::int64_t status = 0);
  ProgramBuilder& nop();

  /// Emit a forward jump placeholder; returns the instruction index to
  /// patch later with patchTarget().
  std::size_t emitForwardBranch(Op op, Reg ra = 0, Reg rb = 0);
  void patchTarget(std::size_t instrIndex, std::int64_t target);
  void patchHere(std::size_t instrIndex) { patchTarget(instrIndex, label()); }

  /// Structured counted loop: loopBegin(reg, n) ... loopEnd(reg).
  /// The body executes exactly n times (n >= 1).
  std::int64_t loopBegin(Reg counter, std::int64_t n);
  ProgramBuilder& loopEnd(Reg counter, std::int64_t top);

  std::size_t size() const { return code_.size(); }

  Program build() &&;

 private:
  ProgramBuilder& emit(Instr in) {
    code_.push_back(in);
    return *this;
  }
  std::string name_;
  std::vector<Instr> code_;
};

}  // namespace bg::vm

// DDR timing model: access latency, periodic refresh, self-refresh.
//
// Refresh matters for two reasons. First, it is the only deterministic
// source of residual jitter on CNK (everything else is cycle-exact), so
// the FWQ-on-CNK plot shows the paper's tiny <0.006% spread instead of
// an implausible flat line. Second, self-refresh is the mechanism CNK
// uses to preserve DRAM contents across a full chip reset in
// reproducible mode (paper §III).
#pragma once

#include <cstdint>

#include "sim/types.hpp"

namespace bg::hw {

class MemFaultModel;
enum class EccOutcome : std::uint8_t;

struct DdrConfig {
  sim::Cycle accessLatency = 60;      // L3-miss-to-DDR cycles
  sim::Cycle refreshInterval = 6630;  // ~7.8us at 850MHz
  sim::Cycle refreshDuration = 28;
};

class Ddr {
 public:
  explicit Ddr(const DdrConfig& cfg = {}) : cfg_(cfg) {}

  /// Latency of an access issued at `now`, including any stall caused
  /// by an in-progress refresh window. Purely a function of `now`, so
  /// reproducible runs see identical stalls.
  sim::Cycle accessLatency(sim::Cycle now) const {
    const sim::Cycle phase = now % cfg_.refreshInterval;
    const sim::Cycle stall =
        phase < cfg_.refreshDuration ? cfg_.refreshDuration - phase : 0;
    return cfg_.accessLatency + stall;
  }

  void enterSelfRefresh() { selfRefresh_ = true; }
  void exitSelfRefresh() { selfRefresh_ = false; }
  bool inSelfRefresh() const { return selfRefresh_; }

  const DdrConfig& config() const { return cfg_; }

  /// ECC fault injection (paper §III: ECC DDR). The Node attaches the
  /// machine-wide MemFaultModel and keeps `armed_` in sync with the
  /// node's effective ECC rates, so the hot DDR path pays one branch
  /// on a member bool when injection is off.
  void attachFaults(MemFaultModel* m, int nodeId) {
    faults_ = m;
    nodeId_ = nodeId;
  }
  void armFaults(bool armed) { armed_ = armed && faults_ != nullptr; }
  bool faultsArmed() const { return armed_; }

  /// Judge one access against the fault model (defined in ddr.cpp).
  /// Only call when faultsArmed(); draws nothing at zero rates.
  EccOutcome judgeEcc();

 private:
  DdrConfig cfg_;
  bool selfRefresh_ = false;
  bool armed_ = false;
  MemFaultModel* faults_ = nullptr;
  int nodeId_ = 0;
};

}  // namespace bg::hw

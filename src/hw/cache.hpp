// Cache hierarchy model: per-core L1 and a shared banked L2/L3.
//
// The shared cache exposes the configuration knob the paper describes
// in §III: "L2 Cache configuration parameters that control the mapping
// of physical memory to cache controllers and to memory banks within
// the cache". Varying the mapping changes bank-conflict behaviour,
// which bench_cachemap measures (the design-time sensitivity study).
#pragma once

#include <cstdint>
#include <vector>

#include "hw/addr.hpp"
#include "sim/types.hpp"

namespace bg::hw {

class MemFaultModel;

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

/// Set-associative cache with true tag state and LRU replacement.
class CacheArray {
 public:
  CacheArray(std::uint64_t sizeBytes, std::uint32_t lineBytes,
             std::uint32_t ways);

  /// Returns true on hit; on miss the line is filled (evicting LRU).
  ///
  /// The header-inline fast path is a last-line hint: the hint always
  /// points at the line touched by the most recent access (which is
  /// therefore MRU and cannot have been evicted since), so a repeat
  /// access to the same line skips the set walk while keeping stats
  /// and LRU clocks bit-identical to the slow path.
  bool access(PAddr pa) {
    const std::uint64_t lineAddr = pa / lineBytes_;
    if (lastLine_ != nullptr && lineAddr == lastLineAddr_) {
      ++stats_.accesses;
      ++useClock_;
      lastLine_->lastUse = useClock_;
      ++stats_.hits;
      return true;
    }
    return accessSlow(lineAddr);
  }

  /// Invalidate everything (used by the reproducible-reset path, which
  /// flushes all caches to DDR before toggling reset — paper §III).
  void flushAll();

  std::uint32_t lineBytes() const { return lineBytes_; }
  const CacheStats& stats() const { return stats_; }
  void resetStats() { stats_ = {}; }

  /// Parity fault injection (paper §V-B: parity-protected L1). The
  /// Node attaches the machine-wide MemFaultModel; the hot access()
  /// fast path above is untouched — Core judges line fills behind
  /// the parityArmed() flag, out of line in cache.cpp.
  void attachFaults(MemFaultModel* m, int nodeId) {
    faults_ = m;
    nodeId_ = nodeId;
  }
  void armParityFaults(bool armed) {
    parityArmed_ = armed && faults_ != nullptr;
  }
  bool parityArmed() const { return parityArmed_; }

  /// Judge one line fill against the fault model (defined in
  /// cache.cpp). Only call when parityArmed(); draws nothing at
  /// zero rates.
  bool judgeParity();

 private:
  struct Line {
    std::uint64_t tag = 0;
    bool valid = false;
    std::uint64_t lastUse = 0;
  };

  bool accessSlow(std::uint64_t lineAddr);

  std::uint32_t lineBytes_;
  std::uint32_t ways_;
  std::uint32_t sets_;
  std::uint64_t useClock_ = 0;
  std::vector<Line> lines_;  // sets_ * ways_
  Line* lastLine_ = nullptr;        // line touched by the last access
  std::uint64_t lastLineAddr_ = 0;  // its line address (pa / lineBytes_)
  CacheStats stats_;
  bool parityArmed_ = false;
  MemFaultModel* faults_ = nullptr;
  int nodeId_ = 0;
};

/// Bank-mapping policies for the shared cache (paper §III knob).
enum class BankMap : std::uint8_t {
  kDirect,   // bank = (pa / lineBytes) % banks
  kXorFold,  // bank = fold of several address bit groups (conflict-resistant)
  kHighBits, // bank = high physical address bits (pathological for tiling)
};

struct SharedCacheConfig {
  std::uint64_t sizeBytes = 8ULL << 20;  // BG/P: 8MB L3
  std::uint32_t lineBytes = 128;
  std::uint32_t ways = 8;
  std::uint32_t banks = 2;
  BankMap bankMap = BankMap::kXorFold;
  sim::Cycle hitLatency = 12;
  sim::Cycle bankBusy = 4;  // cycles a bank stays busy per access
};

/// Shared cache with banking and a configurable phys->bank mapping.
class SharedCache {
 public:
  explicit SharedCache(const SharedCacheConfig& cfg);

  struct Result {
    bool hit;
    sim::Cycle extraStall;  // bank-conflict stall cycles
  };

  /// Access at simulated time `now`; tracks per-bank busy windows to
  /// model conflicts between cores.
  Result access(PAddr pa, sim::Cycle now);

  std::uint32_t bankOf(PAddr pa) const;
  void flushAll();

  const SharedCacheConfig& config() const { return cfg_; }
  const CacheStats& stats() const { return stats_; }
  std::uint64_t bankConflicts() const { return conflicts_; }
  const std::vector<std::uint64_t>& bankAccesses() const {
    return bankAccesses_;
  }
  void resetStats();

 private:
  SharedCacheConfig cfg_;
  std::vector<CacheArray> bankArrays_;
  std::vector<sim::Cycle> bankBusyUntil_;
  std::vector<std::uint64_t> bankAccesses_;
  std::uint64_t conflicts_ = 0;
  CacheStats stats_;
};

}  // namespace bg::hw

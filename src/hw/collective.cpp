#include "hw/collective.hpp"

#include <algorithm>
#include <cassert>
#include <memory>

namespace bg::hw {

void CollectiveNet::deliver(CollPacket&& p) {
  ++packetsDelivered_;
  bytesDelivered_ += p.payload.size();
  auto it = handlers_.find(p.dstNode);
  if (it != handlers_.end() && it->second) it->second(std::move(p));
}

void CollectiveNet::scheduleDelivery(sim::Cycle when, CollPacket&& p) {
  if (engine_.laneMode()) {
    // Count at schedule time (serial context); the delivery event runs
    // on the destination's lane and must touch only that node's state.
    ++packetsDelivered_;
    bytesDelivered_ += p.payload.size();
    const int dst = p.dstNode;
    engine_.scheduleAtForNode(dst, when, [this, p = std::move(p)]() mutable {
      auto it = handlers_.find(p.dstNode);
      if (it != handlers_.end() && it->second) it->second(std::move(p));
    });
    return;
  }
  engine_.scheduleAt(when, [this, p = std::move(p)]() mutable {
    deliver(std::move(p));
  });
}

void CollectiveNet::send(CollPacket packet) {
  engine_.sharedOp([this, p = std::move(packet)]() mutable {
    sendNow(std::move(p));
  });
}

void CollectiveNet::sendNow(CollPacket&& packet) {
  const std::uint64_t bytes = packet.payload.size();
  const sim::Cycle now = engine_.now();
  sim::Cycle& busy = uplinkBusyUntil_[packet.srcNode];
  const sim::Cycle start = std::max(now, busy);
  const sim::Cycle ser = serialize(bytes);
  busy = start + ser;
  sim::Cycle arrive =
      start + ser + cfg_.perHopLatency * static_cast<sim::Cycle>(cfg_.treeDepth);

  if (faults_ != nullptr && faults_->anyEnabled()) {
    LinkFaultOutcome f = faults_->judge(
        static_cast<std::uint64_t>(static_cast<std::int64_t>(packet.srcNode)),
        packet.payload.size());
    if (f.drop) return;  // serialization stays charged; nothing arrives
    if (f.corrupt) {
      packet.payload[f.corruptByteIndex] ^= std::byte{f.corruptXor};
    }
    arrive += f.extraDelay;
    if (f.duplicate) {
      CollPacket dup = packet;  // copy
      scheduleDelivery(arrive + f.duplicateDelay, std::move(dup));
    }
  }

  scheduleDelivery(arrive, std::move(packet));
}

void CollectiveNet::contribute(std::uint64_t groupId, int nodeId,
                               std::vector<double> values, int groupSize,
                               ReduceHandler onResult) {
  engine_.sharedOp([this, groupId, nodeId, values = std::move(values),
                    groupSize, onResult = std::move(onResult)]() mutable {
    contributeNow(groupId, nodeId, std::move(values), groupSize,
                  std::move(onResult));
  });
}

void CollectiveNet::contributeNow(std::uint64_t groupId, int nodeId,
                                  std::vector<double>&& values,
                                  int groupSize,
                                  ReduceHandler&& onResult) {
  Reduction& r = reductions_[groupId];
  if (r.expected == 0) {
    r.expected = groupSize;
    r.sum.assign(values.size(), 0.0);
  }
  assert(r.sum.size() == values.size());
  for (std::size_t i = 0; i < values.size(); ++i) r.sum[i] += values[i];
  r.waiters.emplace_back(nodeId, std::move(onResult));
  ++r.arrived;
  if (r.arrived < r.expected) return;

  // Last contributor: results flow up and back down the tree.
  const std::uint64_t bytes = r.sum.size() * sizeof(double);
  const sim::Cycle lat =
      2 * cfg_.perHopLatency * static_cast<sim::Cycle>(cfg_.treeDepth) +
      2 * serialize(bytes);
  auto done = std::move(r.waiters);
  auto result = std::move(r.sum);
  reductions_.erase(groupId);
  if (engine_.laneMode()) {
    // Fan the release out per waiter so each handler runs on its own
    // node's lane (all at the same cycle, lane-merge ordered).
    auto shared =
        std::make_shared<const std::vector<double>>(std::move(result));
    const sim::Cycle when = engine_.now() + lat;
    for (auto& [node, handler] : done) {
      if (!handler) continue;
      engine_.scheduleAtForNode(
          node, when, [h = std::move(handler), shared] { h(*shared); });
    }
    return;
  }
  engine_.schedule(lat, [done = std::move(done),
                         result = std::move(result)]() {
    for (const auto& [node, handler] : done) {
      if (handler) handler(result);
    }
  });
}

}  // namespace bg::hw

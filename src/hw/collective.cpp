#include "hw/collective.hpp"

#include <algorithm>
#include <cassert>

namespace bg::hw {

void CollectiveNet::deliver(CollPacket&& p) {
  ++packetsDelivered_;
  bytesDelivered_ += p.payload.size();
  auto it = handlers_.find(p.dstNode);
  if (it != handlers_.end() && it->second) it->second(std::move(p));
}

void CollectiveNet::send(CollPacket packet) {
  const std::uint64_t bytes = packet.payload.size();
  const sim::Cycle now = engine_.now();
  sim::Cycle& busy = uplinkBusyUntil_[packet.srcNode];
  const sim::Cycle start = std::max(now, busy);
  const sim::Cycle ser = serialize(bytes);
  busy = start + ser;
  sim::Cycle arrive =
      start + ser + cfg_.perHopLatency * static_cast<sim::Cycle>(cfg_.treeDepth);

  if (faults_ != nullptr && faults_->anyEnabled()) {
    LinkFaultOutcome f = faults_->judge(
        static_cast<std::uint64_t>(static_cast<std::int64_t>(packet.srcNode)),
        packet.payload.size());
    if (f.drop) return;  // serialization stays charged; nothing arrives
    if (f.corrupt) {
      packet.payload[f.corruptByteIndex] ^= std::byte{f.corruptXor};
    }
    arrive += f.extraDelay;
    if (f.duplicate) {
      engine_.scheduleAt(arrive + f.duplicateDelay,
                         [this, p = packet]() mutable {  // copy
                           deliver(std::move(p));
                         });
    }
  }

  engine_.scheduleAt(arrive, [this, p = std::move(packet)]() mutable {
    deliver(std::move(p));
  });
}

void CollectiveNet::contribute(std::uint64_t groupId, int nodeId,
                               std::vector<double> values, int groupSize,
                               ReduceHandler onResult) {
  Reduction& r = reductions_[groupId];
  if (r.expected == 0) {
    r.expected = groupSize;
    r.sum.assign(values.size(), 0.0);
  }
  assert(r.sum.size() == values.size());
  for (std::size_t i = 0; i < values.size(); ++i) r.sum[i] += values[i];
  r.waiters.emplace_back(nodeId, std::move(onResult));
  ++r.arrived;
  if (r.arrived < r.expected) return;

  // Last contributor: results flow up and back down the tree.
  const std::uint64_t bytes = r.sum.size() * sizeof(double);
  const sim::Cycle lat =
      2 * cfg_.perHopLatency * static_cast<sim::Cycle>(cfg_.treeDepth) +
      2 * serialize(bytes);
  auto done = std::move(r.waiters);
  auto result = std::move(r.sum);
  reductions_.erase(groupId);
  engine_.schedule(lat, [done = std::move(done),
                         result = std::move(result)]() {
    for (const auto& [node, handler] : done) {
      if (handler) handler(result);
    }
  });
}

}  // namespace bg::hw

// Physical memory with real backing bytes.
//
// Backed sparsely by 64KB frames so a 2GB simulated DDR costs only what
// is actually touched. Real contents matter: function-shipped I/O
// marshals real buffers, the persistent-memory feature must preserve
// real linked-list bytes across job boundaries, and the reproducibility
// hash digests real memory images.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "hw/addr.hpp"

namespace bg::hw {

class PhysMem {
 public:
  explicit PhysMem(std::uint64_t size) : size_(size) {}

  std::uint64_t size() const { return size_; }

  void write(PAddr addr, std::span<const std::byte> data);
  void read(PAddr addr, std::span<std::byte> out) const;

  std::uint64_t read64(PAddr addr) const;
  void write64(PAddr addr, std::uint64_t value);

  /// Zero a range (releases nothing; just clears bytes).
  void zero(PAddr addr, std::uint64_t len);

  /// FNV-1a digest of a physical range (untouched frames hash as zero
  /// bytes, matching their read value).
  std::uint64_t hashRange(PAddr addr, std::uint64_t len) const;

  /// DDR self-refresh (paper §III): while in self-refresh, contents are
  /// preserved but any access is a hardware error.
  void enterSelfRefresh() { selfRefresh_ = true; }
  void exitSelfRefresh() { selfRefresh_ = false; }
  bool inSelfRefresh() const { return selfRefresh_; }

  /// Number of frames actually materialized (for tests/metrics).
  std::size_t framesTouched() const { return frames_.size(); }

  static constexpr std::uint64_t kFrameSize = 64ULL << 10;

 private:
  std::byte* frameFor(std::uint64_t frameIndex);
  const std::byte* frameIfPresent(std::uint64_t frameIndex) const;
  void checkAccess(PAddr addr, std::uint64_t len) const;

  std::uint64_t size_;
  bool selfRefresh_ = false;
  std::unordered_map<std::uint64_t, std::unique_ptr<std::byte[]>> frames_;
};

}  // namespace bg::hw

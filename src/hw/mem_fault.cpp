#include "hw/mem_fault.hpp"

namespace bg::hw {

// Each judge draws at most once per enabled fault class, in a fixed
// order, from the judged node's own stream, so a node's stream
// advances identically for identical traffic on that node — whatever
// the rest of the machine does, and whichever host lane runs it.
// A zero rate draws nothing at all — the `> 0.0` guards are the
// zero-RNG-when-clean contract, not an optimization.

EccOutcome MemFaultModel::judgeDdr(int node) {
  const MemFaultRates& r = ratesFor(node);
  if (!r.eccEnabled()) return EccOutcome::kNone;
  sim::Rng& rng = rngFor(node);
  if (r.ueRate > 0.0 && rng.nextDouble() < r.ueRate) {
    ++statsAt(node).uncorrectable;
    return EccOutcome::kUncorrectable;
  }
  if (r.ceRate > 0.0 && rng.nextDouble() < r.ceRate) {
    ++statsAt(node).correctable;
    return EccOutcome::kCorrectable;
  }
  return EccOutcome::kNone;
}

bool MemFaultModel::judgeParity(int node) {
  const MemFaultRates& r = ratesFor(node);
  if (!r.parityEnabled()) return false;
  if (rngFor(node).nextDouble() < r.parityRate) {
    ++statsAt(node).parityFlips;
    return true;
  }
  return false;
}

SliceFaultOutcome MemFaultModel::judgeSlice(int node) {
  SliceFaultOutcome out;
  const MemFaultRates& r = ratesFor(node);
  if (!r.sliceEnabled()) return out;
  sim::Rng& rng = rngFor(node);
  if (r.hangRate > 0.0 && rng.nextDouble() < r.hangRate) {
    ++statsAt(node).coreHangs;
    out.hang = true;
    return out;  // a hung core takes no further faults this slice
  }
  if (r.spuriousMcRate > 0.0 && rng.nextDouble() < r.spuriousMcRate) {
    ++statsAt(node).spuriousMcs;
    out.spuriousMc = true;
  }
  return out;
}

}  // namespace bg::hw

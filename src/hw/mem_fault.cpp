#include "hw/mem_fault.hpp"

namespace bg::hw {

// Each judge draws at most once per enabled fault class, in a fixed
// order, so the stream advances identically for identical traffic.
// A zero rate draws nothing at all — the `> 0.0` guards are the
// zero-RNG-when-clean contract, not an optimization.

EccOutcome MemFaultModel::judgeDdr(int node) {
  const MemFaultRates& r = ratesFor(node);
  if (!r.eccEnabled()) return EccOutcome::kNone;
  if (r.ueRate > 0.0 && rng_.nextDouble() < r.ueRate) {
    ++stats_.uncorrectable;
    return EccOutcome::kUncorrectable;
  }
  if (r.ceRate > 0.0 && rng_.nextDouble() < r.ceRate) {
    ++stats_.correctable;
    return EccOutcome::kCorrectable;
  }
  return EccOutcome::kNone;
}

bool MemFaultModel::judgeParity(int node) {
  const MemFaultRates& r = ratesFor(node);
  if (!r.parityEnabled()) return false;
  if (rng_.nextDouble() < r.parityRate) {
    ++stats_.parityFlips;
    return true;
  }
  return false;
}

SliceFaultOutcome MemFaultModel::judgeSlice(int node) {
  SliceFaultOutcome out;
  const MemFaultRates& r = ratesFor(node);
  if (!r.sliceEnabled()) return out;
  if (r.hangRate > 0.0 && rng_.nextDouble() < r.hangRate) {
    ++stats_.coreHangs;
    out.hang = true;
    return out;  // a hung core takes no further faults this slice
  }
  if (r.spuriousMcRate > 0.0 && rng_.nextDouble() < r.spuriousMcRate) {
    ++stats_.spuriousMcs;
    out.spuriousMc = true;
  }
  return out;
}

}  // namespace bg::hw

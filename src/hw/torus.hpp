// 3-D torus network with a per-node DMA engine.
//
// The torus is the point-to-point fabric DCMF drives *from user space*
// (paper §V-C): the kernel's only involvement is having set up the
// static physical mapping that lets the application hand physical
// addresses to the DMA. dmaPut/dmaGet move real bytes between nodes'
// physical memories. Links are dimension-order routed with per-link
// serialization, so near-neighbour exchanges saturate per-link
// bandwidth the way Fig 8 shows.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "hw/addr.hpp"
#include "hw/link_fault.hpp"
#include "sim/engine.hpp"
#include "sim/types.hpp"

namespace bg::hw {

class Node;

struct TorusConfig {
  std::array<int, 3> dims{1, 1, 1};
  sim::Cycle hopLatency = 85;     // ~100ns per hop at 850MHz
  double bytesPerCycle = 0.5;     // 425MB/s per link at 850MHz
  sim::Cycle dmaInjectCost = 180; // descriptor processing at the source
  sim::Cycle dmaRecvCost = 120;   // reception FIFO processing
};

/// Small control/eager packet delivered to the destination node's
/// registered handler (the messaging runtime).
struct TorusPacket {
  int srcNode = 0;
  int dstNode = 0;
  std::uint32_t tag = 0;
  std::vector<std::byte> payload;
};

class TorusNet {
 public:
  using PacketHandler = std::function<void(TorusPacket&&)>;

  TorusNet(sim::Engine& engine, const TorusConfig& cfg)
      : engine_(engine), cfg_(cfg) {}

  /// Register a node (gives the net access to its physical memory for
  /// DMA) and assign its coordinates from its id.
  void attachNode(int nodeId, Node* node);

  void setPacketHandler(int nodeId, PacketHandler h) {
    handlers_[nodeId] = std::move(h);
  }

  /// Memory-mapped eager/control packet send (no kernel involvement).
  void sendPacket(TorusPacket packet);

  /// Remote write: copy `bytes` from srcNode:srcPa to dstNode:dstPa.
  /// onRemoteDelivered fires at the destination when the payload has
  /// landed; onLocalComplete fires at the source when its injection
  /// FIFO drains (the "message sent" completion counter).
  void dmaPut(int srcNode, PAddr srcPa, int dstNode, PAddr dstPa,
              std::uint64_t bytes, std::function<void()> onRemoteDelivered,
              std::function<void()> onLocalComplete);

  /// Remote read: fetch `bytes` from dstNode:remotePa into
  /// srcNode:localPa. Completion fires at the requester.
  void dmaGet(int srcNode, PAddr localPa, int dstNode, PAddr remotePa,
              std::uint64_t bytes, std::function<void()> onComplete);

  /// Attach a seeded fault model; nullptr detaches. Not owned. Torus
  /// links carry hardware CRC + link-level retransmit (as on BG/P), so
  /// drops and corruptions never reach software: they surface as a
  /// deterministic retry *delay* on the transfer (serialization +
  /// NACK turnaround), and duplicates are absorbed by the link layer.
  /// Link key for per-link overrides: source node id << 3.
  void setFaultModel(LinkFaultModel* m) { faults_ = m; }
  LinkFaultModel* faultModel() const { return faults_; }

  // --- hard directed-link faults + deterministic route-around --------

  /// Fired when a directed link hard-faults: killLink reports
  /// dead = true, degradeLink dead = false. The cluster harness wires
  /// this to the source node's kernel RAS log (kLinkDead /
  /// kLinkDegraded) so the control plane can react.
  using LinkEventHandler =
      std::function<void(int srcNode, int dim, bool positive, bool dead)>;
  void setLinkEventHandler(LinkEventHandler h) {
    linkEvent_ = std::move(h);
  }

  /// Fail-stop the directed link leaving `nodeId` in `dim` towards
  /// `positive`. Routing recomputes a deterministic detour table (BFS
  /// shortest path over the healthy directed-link graph, fixed
  /// neighbor order, so the same fault set always yields the same
  /// routes). Returns false for a nonexistent link (bad dim, a
  /// size-1 ring) or one that is already dead.
  bool killLink(int nodeId, int dim, bool positive);

  /// Degrade the directed link: every traversal pays `retries` CRC
  /// retransmit rounds (re-serialization + NACK turnaround each), and
  /// the retries are charged to the fault model's per-link counters.
  /// retries <= 0 heals the link. Returns false for a nonexistent
  /// link.
  bool degradeLink(int nodeId, int dim, bool positive, int retries);

  bool linkDead(int nodeId, int dim, bool positive) const;

  /// Transfers that left the minimal dimension-order route because a
  /// dead link forced a detour, and the extra hops they paid.
  std::uint64_t detours() const { return detours_; }
  std::uint64_t detourHops() const { return detourHops_; }
  /// Transfers dropped because no healthy route reached the
  /// destination (the packet vanishes; DMA local completion still
  /// fires so injection FIFOs drain).
  std::uint64_t unroutable() const { return unroutable_; }

  /// Fault-aware hop count: with no dead links this is the minimal
  /// wraparound distance; with dead links it is the length of the
  /// detour route actually taken, or -1 when `b` is unreachable
  /// from `a`.
  int hops(int a, int b) const;
  const TorusConfig& config() const { return cfg_; }
  sim::Engine& engine() { return engine_; }
  std::uint64_t bytesMoved() const { return bytesMoved_; }

 private:
  /// Bodies of the three transfer entry points; run serially (inline
  /// in plain mode, merged at the lane barrier in lane mode) because
  /// they reserve shared links and draw fault judgements. Note the
  /// torus floor latencies sit below the machine's default lane
  /// lookahead (collective-derived), so in-window torus traffic is
  /// counted against the engine's causality-violation counter —
  /// messaging-heavy workloads should run with --lanes 1.
  void sendPacketNow(TorusPacket&& packet);
  void dmaPutNow(int srcNode, PAddr srcPa, int dstNode, PAddr dstPa,
                 std::uint64_t bytes,
                 std::function<void()>&& onRemoteDelivered,
                 std::function<void()>&& onLocalComplete);
  void dmaGetNow(int srcNode, PAddr localPa, int dstNode, PAddr remotePa,
                 std::uint64_t bytes, std::function<void()>&& onComplete);

  /// reserveRoute's arrive value for an unreachable destination.
  static constexpr sim::Cycle kUnreachable = static_cast<sim::Cycle>(-1);

  std::array<int, 3> coordsOf(int nodeId) const;
  int nodeIdOf(const std::array<int, 3>& c) const {
    return c[0] + cfg_.dims[0] * (c[1] + cfg_.dims[1] * c[2]);
  }
  /// One traversed directed link on a detour route.
  struct Hop {
    int node;
    int dim;
    bool positive;
  };
  int neighborOf(int nodeId, int dim, bool positive) const;
  /// Deterministic detour route over the healthy directed-link graph
  /// (BFS shortest path, fixed neighbor order), cached per (src, dst)
  /// and invalidated on link death. nullptr = unreachable.
  const std::vector<Hop>* routeFor(int src, int dst) const;
  /// Minimal wraparound distance, ignoring link health.
  int minimalHops(int a, int b) const;
  /// Reserve the dimension-order route; returns (start, arrive) cycles.
  /// arrive == kUnreachable when every healthy route to dst is gone.
  std::pair<sim::Cycle, sim::Cycle> reserveRoute(int src, int dst,
                                                 std::uint64_t bytes);
  /// Extra cycles the link layer spends recovering from injected
  /// faults on this transfer (0 when no model or no fault).
  sim::Cycle faultRecoveryDelay(int srcNode, std::uint64_t bytes);

  sim::Engine& engine_;
  TorusConfig cfg_;
  LinkFaultModel* faults_ = nullptr;
  LinkEventHandler linkEvent_;
  std::unordered_map<int, Node*> nodes_;
  std::unordered_map<int, PacketHandler> handlers_;
  // Directed link key: (nodeId << 3) | (dim << 1) | direction.
  std::unordered_map<std::uint64_t, sim::Cycle> linkBusyUntil_;
  // (src << 32) | dst -> detour route; entries absent until first use,
  // empty vector = cached "unreachable". Cleared on every killLink.
  mutable std::map<std::uint64_t, std::vector<Hop>> routeCache_;
  std::uint64_t bytesMoved_ = 0;
  std::uint64_t detours_ = 0;
  std::uint64_t detourHops_ = 0;
  std::uint64_t unroutable_ = 0;
};

}  // namespace bg::hw

// 3-D torus network with a per-node DMA engine.
//
// The torus is the point-to-point fabric DCMF drives *from user space*
// (paper §V-C): the kernel's only involvement is having set up the
// static physical mapping that lets the application hand physical
// addresses to the DMA. dmaPut/dmaGet move real bytes between nodes'
// physical memories. Links are dimension-order routed with per-link
// serialization, so near-neighbour exchanges saturate per-link
// bandwidth the way Fig 8 shows.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "hw/addr.hpp"
#include "hw/link_fault.hpp"
#include "sim/engine.hpp"
#include "sim/types.hpp"

namespace bg::hw {

class Node;

struct TorusConfig {
  std::array<int, 3> dims{1, 1, 1};
  sim::Cycle hopLatency = 85;     // ~100ns per hop at 850MHz
  double bytesPerCycle = 0.5;     // 425MB/s per link at 850MHz
  sim::Cycle dmaInjectCost = 180; // descriptor processing at the source
  sim::Cycle dmaRecvCost = 120;   // reception FIFO processing
};

/// Small control/eager packet delivered to the destination node's
/// registered handler (the messaging runtime).
struct TorusPacket {
  int srcNode = 0;
  int dstNode = 0;
  std::uint32_t tag = 0;
  std::vector<std::byte> payload;
};

class TorusNet {
 public:
  using PacketHandler = std::function<void(TorusPacket&&)>;

  TorusNet(sim::Engine& engine, const TorusConfig& cfg)
      : engine_(engine), cfg_(cfg) {}

  /// Register a node (gives the net access to its physical memory for
  /// DMA) and assign its coordinates from its id.
  void attachNode(int nodeId, Node* node);

  void setPacketHandler(int nodeId, PacketHandler h) {
    handlers_[nodeId] = std::move(h);
  }

  /// Memory-mapped eager/control packet send (no kernel involvement).
  void sendPacket(TorusPacket packet);

  /// Remote write: copy `bytes` from srcNode:srcPa to dstNode:dstPa.
  /// onRemoteDelivered fires at the destination when the payload has
  /// landed; onLocalComplete fires at the source when its injection
  /// FIFO drains (the "message sent" completion counter).
  void dmaPut(int srcNode, PAddr srcPa, int dstNode, PAddr dstPa,
              std::uint64_t bytes, std::function<void()> onRemoteDelivered,
              std::function<void()> onLocalComplete);

  /// Remote read: fetch `bytes` from dstNode:remotePa into
  /// srcNode:localPa. Completion fires at the requester.
  void dmaGet(int srcNode, PAddr localPa, int dstNode, PAddr remotePa,
              std::uint64_t bytes, std::function<void()> onComplete);

  /// Attach a seeded fault model; nullptr detaches. Not owned. Torus
  /// links carry hardware CRC + link-level retransmit (as on BG/P), so
  /// drops and corruptions never reach software: they surface as a
  /// deterministic retry *delay* on the transfer (serialization +
  /// NACK turnaround), and duplicates are absorbed by the link layer.
  /// Link key for per-link overrides: source node id << 3.
  void setFaultModel(LinkFaultModel* m) { faults_ = m; }
  LinkFaultModel* faultModel() const { return faults_; }

  int hops(int a, int b) const;
  const TorusConfig& config() const { return cfg_; }
  sim::Engine& engine() { return engine_; }
  std::uint64_t bytesMoved() const { return bytesMoved_; }

 private:
  /// Bodies of the three transfer entry points; run serially (inline
  /// in plain mode, merged at the lane barrier in lane mode) because
  /// they reserve shared links and draw fault judgements. Note the
  /// torus floor latencies sit below the machine's default lane
  /// lookahead (collective-derived), so in-window torus traffic is
  /// counted against the engine's causality-violation counter —
  /// messaging-heavy workloads should run with --lanes 1.
  void sendPacketNow(TorusPacket&& packet);
  void dmaPutNow(int srcNode, PAddr srcPa, int dstNode, PAddr dstPa,
                 std::uint64_t bytes,
                 std::function<void()>&& onRemoteDelivered,
                 std::function<void()>&& onLocalComplete);
  void dmaGetNow(int srcNode, PAddr localPa, int dstNode, PAddr remotePa,
                 std::uint64_t bytes, std::function<void()>&& onComplete);

  std::array<int, 3> coordsOf(int nodeId) const;
  /// Reserve the dimension-order route; returns (start, arrive) cycles.
  std::pair<sim::Cycle, sim::Cycle> reserveRoute(int src, int dst,
                                                 std::uint64_t bytes);
  /// Extra cycles the link layer spends recovering from injected
  /// faults on this transfer (0 when no model or no fault).
  sim::Cycle faultRecoveryDelay(int srcNode, std::uint64_t bytes);

  sim::Engine& engine_;
  TorusConfig cfg_;
  LinkFaultModel* faults_ = nullptr;
  std::unordered_map<int, Node*> nodes_;
  std::unordered_map<int, PacketHandler> handlers_;
  // Directed link key: (nodeId << 3) | (dim << 1) | direction.
  std::unordered_map<std::uint64_t, sim::Cycle> linkBusyUntil_;
  std::uint64_t bytesMoved_ = 0;
};

}  // namespace bg::hw

// A Blue Gene-style System-On-a-Chip node: cores, memory hierarchy,
// and taps onto the machine-wide networks.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "hw/cache.hpp"
#include "hw/core.hpp"
#include "hw/ddr.hpp"
#include "hw/kernel_if.hpp"
#include "hw/phys_mem.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace bg::hw {

class CollectiveNet;
class TorusNet;
class BarrierNet;

struct NodeConfig {
  int cores = 4;                          // BG/P: quad PPC450
  std::uint64_t memBytes = 512ULL << 20;  // simulated DDR size
  SharedCacheConfig l3;
  DdrConfig ddr;
  std::uint64_t bootSramBytes = 64ULL << 10;
};

/// A latched machine-check syndrome. Hardware that detects a memory
/// or CPU fault pushes one of these into the node's syndrome queue
/// and raises Irq::kMachineCheck; the kernel's handler pops the queue
/// to learn what actually happened (ECC scrub vs parity vs panic).
/// An empty queue on a machine-check IRQ means a legacy/external
/// injection (e.g. CnkKernel::injectL1ParityError) — kernels keep
/// their historical behaviour for that case.
struct McSyndrome {
  enum class Kind : std::uint8_t {
    kCorrectable,    // single-bit ECC, scrubbed transparently
    kUncorrectable,  // multi-bit ECC, node must panic
    kParity,         // L1 parity flip, recovered by invalidate+refill
    kSpurious,       // machine check with no real fault behind it
  };
  Kind kind = Kind::kSpurious;
  PAddr paddr = 0;  // faulting physical address (0 if n/a)
  int core = 0;     // core that observed the fault
};

class Node {
 public:
  Node(sim::Engine& engine, int id, const NodeConfig& cfg);
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  sim::Engine& engine() { return engine_; }
  int id() const { return id_; }
  const NodeConfig& config() const { return cfg_; }
  /// Event lane owning this node (0 = serial lane / plain mode);
  /// cached at construction from the engine's node→lane mapping.
  std::uint32_t laneTag() const { return lane_; }

  PhysMem& mem() { return mem_; }
  Ddr& ddr() { return ddr_; }
  SharedCache& l3() { return l3_; }
  Core& core(int i) { return *cores_[static_cast<std::size_t>(i)]; }
  int numCores() const { return static_cast<int>(cores_.size()); }

  KernelIf* kernel() { return kernel_; }
  void attachKernel(KernelIf* k) { kernel_ = k; }
  RuntimeIf* runtime() { return runtime_; }
  void attachRuntime(RuntimeIf* r) { runtime_ = r; }

  sim::TraceBuffer& trace() { return trace_; }

  CollectiveNet* collective() { return collective_; }
  void attachCollective(CollectiveNet* n) { collective_ = n; }
  TorusNet* torus() { return torus_; }
  void attachTorus(TorusNet* n) { torus_ = n; }
  BarrierNet* barrier() { return barrier_; }
  void attachBarrier(BarrierNet* n) { barrier_ = n; }

  std::array<int, 3> coords{0, 0, 0};

  /// Send an inter-processor interrupt to a core on this node.
  void sendIpi(int coreId) { core(coreId).raise(Irq::kIpi); }

  /// Reproducible-reset support (paper §III): flush all caches to DDR,
  /// put DDR into self-refresh. The kernel performs the core rendezvous
  /// before calling this.
  void prepareForReset();
  /// Take DDR out of self-refresh and clear volatile chip state.
  void restartFromSelfRefresh();

  /// Architectural state digest: all cores + L3/DDR flags. Used as the
  /// per-cycle "logic scan" witness.
  std::uint64_t scanHash() const;

  // --- compute-node fault plane -------------------------------------

  /// Attach the machine-wide fault model and refresh the cached
  /// per-component armed flags from its current rates.
  void attachMemFaults(MemFaultModel* m);
  /// Re-derive the armed flags after a rate change (Machine calls
  /// this so the hot paths only ever test cached bools).
  void refreshMemFaultView();
  MemFaultModel* memFaults() { return memFaults_; }
  bool sliceFaultsArmed() const { return sliceFaultsArmed_; }

  /// Syndrome queue (drained by the kernel's machine-check handler).
  void pushMc(const McSyndrome& s) { mcQueue_.push_back(s); }
  bool takeMc(McSyndrome* out) {
    if (mcQueue_.empty()) return false;
    *out = mcQueue_.front();
    mcQueue_.erase(mcQueue_.begin());
    return true;
  }

  /// Judge slice-granular faults (hang / spurious MC) for `core`.
  /// Returns true when the core was hung and must stop executing.
  bool judgeSliceFaults(Core& c);

  /// Schedule-driven injection: latch a syndrome and raise the
  /// machine-check IRQ on `coreId` (used by tests/fault schedules and
  /// the service node's fault-injection hooks).
  void injectUncorrectable(PAddr addr, int coreId = 0);
  void injectCorrectable(PAddr addr, int coreId = 0);

  /// Forward-progress counter for the service node's heartbeat
  /// monitor: total busy cycles across cores. A hung or dead node
  /// stops advancing it.
  std::uint64_t progressCounter() const;

 private:
  sim::Engine& engine_;
  int id_;
  std::uint32_t lane_ = 0;
  NodeConfig cfg_;
  PhysMem mem_;
  Ddr ddr_;
  SharedCache l3_;
  std::vector<std::unique_ptr<Core>> cores_;
  sim::TraceBuffer trace_;
  KernelIf* kernel_ = nullptr;
  RuntimeIf* runtime_ = nullptr;
  CollectiveNet* collective_ = nullptr;
  TorusNet* torus_ = nullptr;
  BarrierNet* barrier_ = nullptr;
  MemFaultModel* memFaults_ = nullptr;
  bool sliceFaultsArmed_ = false;
  std::vector<McSyndrome> mcQueue_;
};

}  // namespace bg::hw

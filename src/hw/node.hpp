// A Blue Gene-style System-On-a-Chip node: cores, memory hierarchy,
// and taps onto the machine-wide networks.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "hw/cache.hpp"
#include "hw/core.hpp"
#include "hw/ddr.hpp"
#include "hw/kernel_if.hpp"
#include "hw/phys_mem.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace bg::hw {

class CollectiveNet;
class TorusNet;
class BarrierNet;

struct NodeConfig {
  int cores = 4;                          // BG/P: quad PPC450
  std::uint64_t memBytes = 512ULL << 20;  // simulated DDR size
  SharedCacheConfig l3;
  DdrConfig ddr;
  std::uint64_t bootSramBytes = 64ULL << 10;
};

class Node {
 public:
  Node(sim::Engine& engine, int id, const NodeConfig& cfg);
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  sim::Engine& engine() { return engine_; }
  int id() const { return id_; }
  const NodeConfig& config() const { return cfg_; }

  PhysMem& mem() { return mem_; }
  Ddr& ddr() { return ddr_; }
  SharedCache& l3() { return l3_; }
  Core& core(int i) { return *cores_[static_cast<std::size_t>(i)]; }
  int numCores() const { return static_cast<int>(cores_.size()); }

  KernelIf* kernel() { return kernel_; }
  void attachKernel(KernelIf* k) { kernel_ = k; }
  RuntimeIf* runtime() { return runtime_; }
  void attachRuntime(RuntimeIf* r) { runtime_ = r; }

  sim::TraceBuffer& trace() { return trace_; }

  CollectiveNet* collective() { return collective_; }
  void attachCollective(CollectiveNet* n) { collective_ = n; }
  TorusNet* torus() { return torus_; }
  void attachTorus(TorusNet* n) { torus_ = n; }
  BarrierNet* barrier() { return barrier_; }
  void attachBarrier(BarrierNet* n) { barrier_ = n; }

  std::array<int, 3> coords{0, 0, 0};

  /// Send an inter-processor interrupt to a core on this node.
  void sendIpi(int coreId) { core(coreId).raise(Irq::kIpi); }

  /// Reproducible-reset support (paper §III): flush all caches to DDR,
  /// put DDR into self-refresh. The kernel performs the core rendezvous
  /// before calling this.
  void prepareForReset();
  /// Take DDR out of self-refresh and clear volatile chip state.
  void restartFromSelfRefresh();

  /// Architectural state digest: all cores + L3/DDR flags. Used as the
  /// per-cycle "logic scan" witness.
  std::uint64_t scanHash() const;

 private:
  sim::Engine& engine_;
  int id_;
  NodeConfig cfg_;
  PhysMem mem_;
  Ddr ddr_;
  SharedCache l3_;
  std::vector<std::unique_ptr<Core>> cores_;
  sim::TraceBuffer trace_;
  KernelIf* kernel_ = nullptr;
  RuntimeIf* runtime_ = nullptr;
  CollectiveNet* collective_ = nullptr;
  TorusNet* torus_ = nullptr;
  BarrierNet* barrier_ = nullptr;
};

}  // namespace bg::hw

#include "hw/node.hpp"

#include "sim/hash.hpp"

namespace bg::hw {

Node::Node(sim::Engine& engine, int id, const NodeConfig& cfg)
    : engine_(engine), id_(id), cfg_(cfg), mem_(cfg.memBytes),
      ddr_(cfg.ddr), l3_(cfg.l3) {
  cores_.reserve(static_cast<std::size_t>(cfg.cores));
  for (int i = 0; i < cfg.cores; ++i) {
    cores_.push_back(std::make_unique<Core>(i, *this));
  }
}

void Node::prepareForReset() {
  for (auto& c : cores_) c->flushCaches();
  l3_.flushAll();
  ddr_.enterSelfRefresh();
  mem_.enterSelfRefresh();
}

void Node::restartFromSelfRefresh() {
  ddr_.exitSelfRefresh();
  mem_.exitSelfRefresh();
  for (auto& c : cores_) {
    c->flushCaches();
    c->mmu().invalidate();
  }
}

std::uint64_t Node::scanHash() const {
  sim::Fnv1a h;
  h.mix(static_cast<std::uint64_t>(id_));
  for (const auto& c : cores_) h.mix(c->scanHash());
  h.mix(ddr_.inSelfRefresh() ? 1 : 0);
  return h.digest();
}

}  // namespace bg::hw

#include "hw/node.hpp"

#include "hw/mem_fault.hpp"
#include "sim/hash.hpp"

namespace bg::hw {

Node::Node(sim::Engine& engine, int id, const NodeConfig& cfg)
    : engine_(engine), id_(id), lane_(engine.laneForNode(id)), cfg_(cfg),
      mem_(cfg.memBytes), ddr_(cfg.ddr), l3_(cfg.l3) {
  cores_.reserve(static_cast<std::size_t>(cfg.cores));
  for (int i = 0; i < cfg.cores; ++i) {
    cores_.push_back(std::make_unique<Core>(i, *this));
  }
}

void Node::prepareForReset() {
  for (auto& c : cores_) c->flushCaches();
  l3_.flushAll();
  ddr_.enterSelfRefresh();
  mem_.enterSelfRefresh();
}

void Node::restartFromSelfRefresh() {
  ddr_.exitSelfRefresh();
  mem_.exitSelfRefresh();
  for (auto& c : cores_) {
    c->flushCaches();
    c->mmu().invalidate();
    c->unhang();  // a reboot-in-place clears a hung core
  }
  mcQueue_.clear();  // latched syndromes do not survive a reset
}

void Node::attachMemFaults(MemFaultModel* m) {
  memFaults_ = m;
  ddr_.attachFaults(m, id_);
  for (auto& c : cores_) c->l1().attachFaults(m, id_);
  refreshMemFaultView();
}

void Node::refreshMemFaultView() {
  if (memFaults_ == nullptr) {
    ddr_.armFaults(false);
    for (auto& c : cores_) c->l1().armParityFaults(false);
    sliceFaultsArmed_ = false;
    return;
  }
  const MemFaultRates& r = memFaults_->ratesFor(id_);
  ddr_.armFaults(r.eccEnabled());
  for (auto& c : cores_) c->l1().armParityFaults(r.parityEnabled());
  sliceFaultsArmed_ = r.sliceEnabled();
}

bool Node::judgeSliceFaults(Core& c) {
  const SliceFaultOutcome out = memFaults_->judgeSlice(id_);
  if (out.hang) {
    c.hang();
    return true;
  }
  if (out.spuriousMc) {
    pushMc(McSyndrome{McSyndrome::Kind::kSpurious, 0, c.id()});
    c.raise(Irq::kMachineCheck);
  }
  return false;
}

void Node::injectUncorrectable(PAddr addr, int coreId) {
  pushMc(McSyndrome{McSyndrome::Kind::kUncorrectable, addr, coreId});
  core(coreId).raise(Irq::kMachineCheck);
}

void Node::injectCorrectable(PAddr addr, int coreId) {
  pushMc(McSyndrome{McSyndrome::Kind::kCorrectable, addr, coreId});
  core(coreId).raise(Irq::kMachineCheck);
}

std::uint64_t Node::progressCounter() const {
  std::uint64_t p = 0;
  for (const auto& c : cores_) p += c->cyclesBusy();
  return p;
}

std::uint64_t Node::scanHash() const {
  sim::Fnv1a h;
  h.mix(static_cast<std::uint64_t>(id_));
  for (const auto& c : cores_) h.mix(c->scanHash());
  h.mix(ddr_.inSelfRefresh() ? 1 : 0);
  return h.digest();
}

}  // namespace bg::hw

// Seeded compute-node memory/CPU fault injection (paper §III, §V-B).
//
// The paper's reliability story rests on the compute node's hardware
// fault plane: ECC DDR that corrects single-bit flips and machine-
// checks on multi-bit ones, parity-protected L1 lines the kernel can
// recover by invalidate+refill, and the occasional core that simply
// stops making forward progress. MemFaultModel injects all of those
// as seeded probabilistic events, mirroring LinkFaultModel's
// zero-RNG-when-clean contract: when a node's rates are all zero the
// judge helpers return immediately without touching the generator, so
// a fault-free run is bit-identical to a build without the model.
//
// Each node draws from its own named stream (`Rng(seed ^ nodeId,
// "mem-faults")`) created up front by the Machine, and judging happens
// at deterministic points in the simulation (DDR accesses, L1 line
// fills, slice starts), so the same seed yields the same fault pattern
// on every run — and, because streams and their counters are strictly
// per node, judging is safe from parallel per-node event lanes.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/rng.hpp"

namespace bg::hw {

/// Per-access / per-slice fault probabilities for one compute node.
struct MemFaultRates {
  double ceRate = 0.0;          ///< correctable ECC per DDR access
  double ueRate = 0.0;          ///< uncorrectable ECC per DDR access
  double parityRate = 0.0;      ///< L1 parity flip per line fill
  double hangRate = 0.0;        ///< core hang per executed slice
  double spuriousMcRate = 0.0;  ///< spurious machine check per slice

  bool eccEnabled() const { return ceRate > 0.0 || ueRate > 0.0; }
  bool parityEnabled() const { return parityRate > 0.0; }
  bool sliceEnabled() const {
    return hangRate > 0.0 || spuriousMcRate > 0.0;
  }
  bool enabled() const {
    return eccEnabled() || parityEnabled() || sliceEnabled();
  }
};

struct MemFaultStats {
  std::uint64_t correctable = 0;    ///< CE events injected
  std::uint64_t uncorrectable = 0;  ///< UE events injected
  std::uint64_t parityFlips = 0;    ///< L1 parity events injected
  std::uint64_t coreHangs = 0;      ///< cores hung
  std::uint64_t spuriousMcs = 0;    ///< spurious machine checks
};

/// What a single DDR access judgement decided.
enum class EccOutcome : std::uint8_t { kNone, kCorrectable, kUncorrectable };

/// What a single slice judgement decided.
struct SliceFaultOutcome {
  bool hang = false;
  bool spuriousMc = false;
};

class MemFaultModel {
 public:
  MemFaultModel(std::uint64_t seed, std::string_view component)
      : seed_(seed), component_(component) {}

  /// Create the per-node RNG streams (seed ^ nodeId) and per-node
  /// stats slots. Must be called once, before any judging, from a
  /// single thread — the Machine does this at construction so lanes
  /// never mutate shared state.
  void attachNodes(int count) {
    rngs_.reserve(static_cast<std::size_t>(count));
    for (int n = static_cast<int>(rngs_.size()); n < count; ++n) {
      rngs_.emplace_back(seed_ ^ static_cast<std::uint64_t>(n),
                         component_);
    }
    stats_.resize(static_cast<std::size_t>(count));
  }
  int attachedNodes() const { return static_cast<int>(rngs_.size()); }

  /// Rates applied to nodes without a per-node override.
  void setDefaultRates(const MemFaultRates& r) { defaults_ = r; }
  /// Per-node override (e.g. one flaky DIMM in the rack).
  void setNodeRates(int node, const MemFaultRates& r) {
    perNode_[node] = r;
  }

  const MemFaultRates& ratesFor(int node) const {
    auto it = perNode_.find(node);
    return it == perNode_.end() ? defaults_ : it->second;
  }

  bool anyEnabled() const {
    if (defaults_.enabled()) return true;
    for (const auto& [n, r] : perNode_) {
      if (r.enabled()) return true;
    }
    return false;
  }

  /// Judge one DDR access on `node`. Draws nothing when the node's
  /// ECC rates are zero.
  EccOutcome judgeDdr(int node);

  /// Judge one L1 line fill on `node`. Draws nothing at rate zero.
  bool judgeParity(int node);

  /// Judge one executed core slice on `node`. Draws nothing when the
  /// node's slice rates are zero.
  SliceFaultOutcome judgeSlice(int node);

  /// Aggregated across nodes (cheap: the fleet is small).
  MemFaultStats stats() const {
    MemFaultStats total;
    for (const MemFaultStats& s : stats_) {
      total.correctable += s.correctable;
      total.uncorrectable += s.uncorrectable;
      total.parityFlips += s.parityFlips;
      total.coreHangs += s.coreHangs;
      total.spuriousMcs += s.spuriousMcs;
    }
    return total;
  }
  const MemFaultStats& statsFor(int node) const {
    return stats_[static_cast<std::size_t>(node)];
  }

  /// Determinism witness: raw RNG steps consumed, summed over every
  /// node's stream. Must stay zero for a model whose rates are all
  /// zero, however much traffic it judged.
  std::uint64_t rngDraws() const {
    std::uint64_t total = 0;
    for (const sim::Rng& r : rngs_) total += r.draws();
    return total;
  }
  /// Per-node draw-count witness (one stream per node).
  std::uint64_t rngDraws(int node) const {
    return rngs_[static_cast<std::size_t>(node)].draws();
  }

 private:
  sim::Rng& rngFor(int node) { return rngs_[static_cast<std::size_t>(node)]; }
  MemFaultStats& statsAt(int node) {
    return stats_[static_cast<std::size_t>(node)];
  }

  std::uint64_t seed_;
  std::string component_;
  std::vector<sim::Rng> rngs_;          // one stream per node
  MemFaultRates defaults_;
  std::unordered_map<int, MemFaultRates> perNode_;
  std::vector<MemFaultStats> stats_;    // one slot per node (lane-safe)
};

}  // namespace bg::hw

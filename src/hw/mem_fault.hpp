// Seeded compute-node memory/CPU fault injection (paper §III, §V-B).
//
// The paper's reliability story rests on the compute node's hardware
// fault plane: ECC DDR that corrects single-bit flips and machine-
// checks on multi-bit ones, parity-protected L1 lines the kernel can
// recover by invalidate+refill, and the occasional core that simply
// stops making forward progress. MemFaultModel injects all of those
// as seeded probabilistic events, mirroring LinkFaultModel's
// zero-RNG-when-clean contract: when a node's rates are all zero the
// judge helpers return immediately without touching the generator, so
// a fault-free run is bit-identical to a build without the model.
//
// All draws come from one named stream (`Rng(seed, "mem-faults")`)
// owned by the Machine, and judging happens at deterministic points
// in the simulation (DDR accesses, L1 line fills, slice starts), so
// the same seed yields the same fault pattern on every run.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "sim/rng.hpp"

namespace bg::hw {

/// Per-access / per-slice fault probabilities for one compute node.
struct MemFaultRates {
  double ceRate = 0.0;          ///< correctable ECC per DDR access
  double ueRate = 0.0;          ///< uncorrectable ECC per DDR access
  double parityRate = 0.0;      ///< L1 parity flip per line fill
  double hangRate = 0.0;        ///< core hang per executed slice
  double spuriousMcRate = 0.0;  ///< spurious machine check per slice

  bool eccEnabled() const { return ceRate > 0.0 || ueRate > 0.0; }
  bool parityEnabled() const { return parityRate > 0.0; }
  bool sliceEnabled() const {
    return hangRate > 0.0 || spuriousMcRate > 0.0;
  }
  bool enabled() const {
    return eccEnabled() || parityEnabled() || sliceEnabled();
  }
};

struct MemFaultStats {
  std::uint64_t correctable = 0;    ///< CE events injected
  std::uint64_t uncorrectable = 0;  ///< UE events injected
  std::uint64_t parityFlips = 0;    ///< L1 parity events injected
  std::uint64_t coreHangs = 0;      ///< cores hung
  std::uint64_t spuriousMcs = 0;    ///< spurious machine checks
};

/// What a single DDR access judgement decided.
enum class EccOutcome : std::uint8_t { kNone, kCorrectable, kUncorrectable };

/// What a single slice judgement decided.
struct SliceFaultOutcome {
  bool hang = false;
  bool spuriousMc = false;
};

class MemFaultModel {
 public:
  MemFaultModel(std::uint64_t seed, std::string_view component)
      : rng_(seed, component) {}

  /// Rates applied to nodes without a per-node override.
  void setDefaultRates(const MemFaultRates& r) { defaults_ = r; }
  /// Per-node override (e.g. one flaky DIMM in the rack).
  void setNodeRates(int node, const MemFaultRates& r) {
    perNode_[node] = r;
  }

  const MemFaultRates& ratesFor(int node) const {
    auto it = perNode_.find(node);
    return it == perNode_.end() ? defaults_ : it->second;
  }

  bool anyEnabled() const {
    if (defaults_.enabled()) return true;
    for (const auto& [n, r] : perNode_) {
      if (r.enabled()) return true;
    }
    return false;
  }

  /// Judge one DDR access on `node`. Draws nothing when the node's
  /// ECC rates are zero.
  EccOutcome judgeDdr(int node);

  /// Judge one L1 line fill on `node`. Draws nothing at rate zero.
  bool judgeParity(int node);

  /// Judge one executed core slice on `node`. Draws nothing when the
  /// node's slice rates are zero.
  SliceFaultOutcome judgeSlice(int node);

  const MemFaultStats& stats() const { return stats_; }

  /// Determinism witness: raw RNG steps consumed. Must stay zero for
  /// a model whose rates are all zero, however much traffic it
  /// judged.
  std::uint64_t rngDraws() const { return rng_.draws(); }

 private:
  sim::Rng rng_;
  MemFaultRates defaults_;
  std::unordered_map<int, MemFaultRates> perNode_;
  MemFaultStats stats_;
};

}  // namespace bg::hw

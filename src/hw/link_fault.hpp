// Deterministic link-fault injection for the network models.
//
// The paper's RAS story (§III, §IV) exists because real machines drop,
// corrupt and delay packets; this model makes those events first-class
// *and reproducible*: every fault decision flows from a seeded
// sim::Rng, never from wall-clock state, so a faulty run replays
// cycle-exactly under the same seed. With all rates zero the model
// draws no random numbers at all — a fault-free run is bit-identical
// to a build without the model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace bg::hw {

/// Per-packet fault rates. Probabilities in [0, 1); delays in cycles.
struct LinkFaultRates {
  double dropRate = 0.0;       // packet vanishes (charged to the wire)
  double corruptRate = 0.0;    // one payload byte is flipped
  double delayRate = 0.0;      // extra latency is added
  double duplicateRate = 0.0;  // packet is delivered twice
  sim::Cycle delayMinCycles = 1'000;
  sim::Cycle delayMaxCycles = 50'000;

  bool enabled() const {
    return dropRate > 0.0 || corruptRate > 0.0 || delayRate > 0.0 ||
           duplicateRate > 0.0;
  }
};

struct LinkFaultStats {
  std::uint64_t packetsSeen = 0;  // packets on faulted links only
  std::uint64_t dropped = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t delayed = 0;
  std::uint64_t duplicated = 0;
  /// CRC retransmit rounds charged on degraded links (hard-fault
  /// plane; see markDegraded below).
  std::uint64_t crcRetries = 0;
};

/// One fault decision for a packet about to traverse a link.
struct LinkFaultOutcome {
  bool drop = false;
  bool corrupt = false;
  bool duplicate = false;
  sim::Cycle extraDelay = 0;            // applied to the (first) delivery
  sim::Cycle duplicateDelay = 0;        // second copy lags the first
  std::size_t corruptByteIndex = 0;     // which payload byte to damage
  std::uint8_t corruptXor = 0;          // how to damage it (never 0)
};

/// Seeded fault model shared by the collective and torus networks.
/// Link identity is an opaque uint64 key chosen by the caller (the
/// collective uses the source node id; the torus its directed-link
/// key); per-link rate overrides take precedence over the defaults.
class LinkFaultModel {
 public:
  LinkFaultModel(std::uint64_t seed, const char* component)
      : rng_(seed, component) {}

  void setDefaultRates(const LinkFaultRates& r) { defaults_ = r; }
  void setLinkRates(std::uint64_t linkKey, const LinkFaultRates& r) {
    perLink_[linkKey] = r;
  }
  const LinkFaultRates& ratesFor(std::uint64_t linkKey) const {
    auto it = perLink_.find(linkKey);
    return it != perLink_.end() ? it->second : defaults_;
  }

  /// True when any link could fault — callers may skip the hook (and
  /// thus all RNG draws) entirely when false.
  bool anyEnabled() const {
    if (defaults_.enabled()) return true;
    for (const auto& [k, r] : perLink_) {
      if (r.enabled()) return true;
    }
    return false;
  }

  /// Decide the fate of one packet of `payloadBytes` bytes on
  /// `linkKey`. Draws from the RNG only for fault classes whose rate
  /// is nonzero, and nothing at all when the link's rates are clean.
  LinkFaultOutcome judge(std::uint64_t linkKey, std::size_t payloadBytes);

  const LinkFaultStats& stats() const { return stats_; }

  // --- hard directed-link faults (fail-stop + degraded) --------------
  //
  // Unlike the probabilistic per-packet rates above, these are state:
  // a dead link carries no traffic at all until the machine is rebuilt
  // (the torus routes around it deterministically), and a degraded
  // link pays a fixed CRC-retry-storm penalty on every traversal. No
  // RNG is involved, so arming them changes only the links they name.

  /// Fail-stop a directed link. Returns false when it was already
  /// dead. Dead links are permanent for the life of the model.
  bool markDead(std::uint64_t linkKey) {
    return dead_.insert(linkKey).second;
  }
  bool isDead(std::uint64_t linkKey) const {
    return dead_.count(linkKey) != 0;
  }
  bool anyDead() const { return !dead_.empty(); }
  const std::set<std::uint64_t>& deadLinks() const { return dead_; }

  /// Degrade a directed link: every traversal is charged `retries`
  /// CRC retransmit rounds (re-serialization + NACK turnaround — a
  /// retry storm, not a loss). retries <= 0 heals the link.
  void markDegraded(std::uint64_t linkKey, int retries) {
    if (retries <= 0) {
      degraded_.erase(linkKey);
    } else {
      degraded_[linkKey] = retries;
    }
  }
  int degradeOf(std::uint64_t linkKey) const {
    auto it = degraded_.find(linkKey);
    return it == degraded_.end() ? 0 : it->second;
  }
  bool anyDegraded() const { return !degraded_.empty(); }

  /// Charge `retries` retransmit rounds against `linkKey` (the torus
  /// calls this per traversal of a degraded link).
  void chargeRetries(std::uint64_t linkKey, int retries) {
    stats_.crcRetries += static_cast<std::uint64_t>(retries);
    retriesByLink_[linkKey] += static_cast<std::uint64_t>(retries);
  }
  std::uint64_t retriesOn(std::uint64_t linkKey) const {
    auto it = retriesByLink_.find(linkKey);
    return it == retriesByLink_.end() ? 0 : it->second;
  }
  const std::map<std::uint64_t, std::uint64_t>& retriesByLink() const {
    return retriesByLink_;
  }

  /// Raw generator steps taken so far. The zero-RNG-when-clean witness:
  /// a run with all rates zero must leave this at exactly 0.
  std::uint64_t rngDraws() const { return rng_.draws(); }

 private:
  sim::Rng rng_;
  LinkFaultRates defaults_;
  std::map<std::uint64_t, LinkFaultRates> perLink_;
  LinkFaultStats stats_;
  std::set<std::uint64_t> dead_;             // fail-stopped directed links
  std::map<std::uint64_t, int> degraded_;    // linkKey -> retries/traversal
  std::map<std::uint64_t, std::uint64_t> retriesByLink_;
};

}  // namespace bg::hw

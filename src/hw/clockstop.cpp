#include "hw/clockstop.hpp"

#include "hw/node.hpp"

namespace bg::hw {

bool ClockStop::armAt(sim::Cycle cycle, std::function<void()> onStop) {
  if (armed_ || cycle < node_.engine().now()) return false;
  armed_ = true;
  fired_ = false;
  event_ = node_.engine().scheduleAt(
      cycle, [this, cb = std::move(onStop)] {
        armed_ = false;
        fired_ = true;
        firedAt_ = node_.engine().now();
        scan_ = node_.scanHash();
        if (cb) cb();
      });
  return true;
}

void ClockStop::disarm() {
  if (!armed_) return;
  node_.engine().cancel(event_);
  armed_ = false;
}

}  // namespace bg::hw

#include "hw/ddr.hpp"

#include "hw/mem_fault.hpp"

namespace bg::hw {

// ECC judgement lives out of line: the header stays free of the fault
// model, and the hot accessLatency() path never sees it — Core only
// calls judgeEcc() behind the faultsArmed() flag the Node maintains.
EccOutcome Ddr::judgeEcc() {
  if (faults_ == nullptr) return EccOutcome::kNone;
  return faults_->judgeDdr(nodeId_);
}

}  // namespace bg::hw

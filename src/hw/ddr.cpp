#include "hw/ddr.hpp"

// Ddr is header-only today; this TU anchors the target and reserves a
// home for future timing-model extensions (bank scheduling, open-page
// policy) without touching the build graph.

// Software-managed MMU: TLB with variable page sizes + DAC registers.
//
// Models the PPC450-style software-loaded TLB that both kernels
// program. CNK installs a *static* set of large-page entries at job
// load and never takes a miss (paper §IV-C); the FWK refills 4KB
// entries on demand. The Debug Address Compare (DAC) registers are the
// mechanism CNK uses for stack guard pages (paper Fig 4).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "hw/addr.hpp"

namespace bg::hw {

struct TlbEntry {
  std::uint32_t pid = 0;  // address-space id; 0 matches nothing
  VAddr vaddr = 0;        // page-aligned
  PAddr paddr = 0;
  std::uint64_t size = 0;  // page size in bytes (power of two)
  std::uint8_t perms = kPermNone;
  bool valid = false;

  bool covers(std::uint32_t p, VAddr va) const {
    return valid && pid == p && va >= vaddr && va - vaddr < size;
  }
};

struct Translation {
  PAddr paddr;
  std::uint8_t perms;
};

enum class TlbResult : std::uint8_t { kHit, kMiss, kPermFault };

/// A Debug Address Compare register pair: raises a debug exception when
/// a data access falls inside [lo, hi). CNK points one at the stack
/// guard range of the thread running on the core.
struct DacRange {
  bool enabled = false;
  VAddr lo = 0;
  VAddr hi = 0;
  bool onWrite = true;
  bool onRead = true;

  bool matches(VAddr va, std::uint64_t len, Access a) const {
    if (!enabled) return false;
    if (a == Access::kWrite && !onWrite) return false;
    if (a == Access::kRead && !onRead) return false;
    return va < hi && va + len > lo;
  }
};

class Mmu {
 public:
  explicit Mmu(int tlbEntries = 64) : tlb_(tlbEntries) {}

  /// Look up a translation. On kHit, *out is filled. Updates round-robin
  /// reference info for replacement.
  ///
  /// The header-inline fast path is a 1-entry micro-TLB holding the
  /// last page whose hit is provably order-independent (no earlier TLB
  /// slot overlaps it — see translateSlow); with CNK's static large
  /// pages nearly every data access resolves here without walking the
  /// TLB array.
  TlbResult translate(std::uint32_t pid, VAddr va, Access access,
                      Translation* out) {
    if (microValid_ && pid == microPid_ && va - microVa_ < microSize_) {
      if (!permAllows(microPerms_, access)) return TlbResult::kPermFault;
      ++hits_;
      if (out != nullptr) {
        out->paddr = microPa_ + (va - microVa_);
        out->perms = microPerms_;
      }
      return TlbResult::kHit;
    }
    return translateSlow(pid, va, access, out);
  }

  /// Install an entry (kernel-privileged). Replaces an invalid slot if
  /// any, otherwise evicts round-robin. Returns slot index.
  int install(const TlbEntry& entry);

  /// Invalidate all entries for a pid (or all if pid == 0).
  void invalidate(std::uint32_t pid = 0);

  /// Probe whether a translation exists (no fault side effects).
  std::optional<Translation> probe(std::uint32_t pid, VAddr va) const;

  int entryCount() const { return static_cast<int>(tlb_.size()); }
  int validCount() const;
  std::uint64_t missCount() const { return misses_; }
  std::uint64_t hitCount() const { return hits_; }
  void resetCounters() { misses_ = hits_ = 0; }

  // DAC registers (2 pairs, as on the 450 core).
  static constexpr int kNumDac = 2;
  DacRange& dac(int i) { return dac_[i]; }
  const DacRange& dac(int i) const { return dac_[i]; }

  /// True if any DAC range traps this access.
  bool dacMatches(VAddr va, std::uint64_t len, Access a) const;

  const std::vector<TlbEntry>& entries() const { return tlb_; }

 private:
  TlbResult translateSlow(std::uint32_t pid, VAddr va, Access access,
                          Translation* out);

  std::vector<TlbEntry> tlb_;
  DacRange dac_[kNumDac];
  int nextVictim_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t hits_ = 0;

  // Micro-TLB: snapshot of one uniquely-covering entry; dropped on any
  // install/invalidate.
  bool microValid_ = false;
  std::uint8_t microPerms_ = kPermNone;
  std::uint32_t microPid_ = 0;
  VAddr microVa_ = 0;
  PAddr microPa_ = 0;
  std::uint64_t microSize_ = 0;
};

}  // namespace bg::hw

// Clock-Stop unit (paper §III): "BG/P provides 'Clock Stop' hardware
// that assists the kernel in stopping on specific cycles."
//
// Arm it at an absolute cycle; when the machine reaches that cycle the
// unit freezes the chip (no further events from this node's cores are
// meaningful — the harness stops stepping) and captures a logic scan
// of the architectural state. The paper's caveat is modeled too: the
// unit is per-chip — coordinated multichip stops need the barrier
// network (see bench_repro's multichip experiment).
#pragma once

#include <cstdint>
#include <functional>

#include "sim/engine.hpp"
#include "sim/types.hpp"

namespace bg::hw {

class Node;

class ClockStop {
 public:
  explicit ClockStop(Node& node) : node_(node) {}

  /// Arm the unit to fire at an absolute cycle (must be in the
  /// future). When it fires, the chip state is captured and the unit
  /// records the scan; onStop (if any) runs at that exact cycle.
  /// Returns false if already armed or the cycle is in the past.
  bool armAt(sim::Cycle cycle, std::function<void()> onStop = nullptr);

  /// Disarm a pending stop.
  void disarm();

  bool armed() const { return armed_; }
  bool fired() const { return fired_; }
  sim::Cycle firedAt() const { return firedAt_; }
  /// The logic scan captured at the stop cycle.
  std::uint64_t capturedScan() const { return scan_; }

 private:
  Node& node_;
  bool armed_ = false;
  bool fired_ = false;
  sim::Cycle firedAt_ = 0;
  std::uint64_t scan_ = 0;
  sim::EventId event_ = 0;
};

}  // namespace bg::hw

// Interfaces the hardware calls into: the kernel and the user runtime.
//
// Dependency direction: hw knows only these abstract interfaces; the
// concrete CNK / FWK kernels (src/cnk, src/fwk) and the user-space
// runtime (src/runtime, src/msg) implement them.
#pragma once

#include <cstdint>

#include "hw/addr.hpp"
#include "hw/thread_ctx.hpp"
#include "sim/types.hpp"

namespace bg::hw {

class Core;

enum class Irq : std::uint8_t {
  kDecrementer = 0,  // per-core timer (the FWK tick; CNK leaves it off)
  kIpi,              // inter-processor interrupt (guard-page reposition)
  kExternal,         // device: DMA/network completion
  kMachineCheck,     // L1 parity error (RAS event, paper §V-B)
};
inline constexpr int kNumIrqs = 4;

enum class FaultKind : std::uint8_t {
  kSegv,         // no translation and the kernel could not resolve it
  kPermFault,    // translation exists but permission denied
  kDacHit,       // Debug Address Compare (guard page) trap
  kMachineCheck, // parity machine check escalated to the thread
};

struct SyscallArgs {
  std::int64_t nr = 0;
  std::uint64_t arg[6] = {};
};

/// Outcome of a syscall / rtcall / interrupt handler.
struct HandlerResult {
  enum class Kind : std::uint8_t {
    kDone,        // result valid; thread continues
    kBlocked,     // thread is now Blocked; kernel will wake it later
    kHaltThread,  // thread exited
    kReschedule,  // thread still Ready but must come off the core now
  };
  Kind kind = Kind::kDone;
  sim::Cycle cost = 0;
  std::uint64_t result = 0;

  static HandlerResult done(std::uint64_t r, sim::Cycle c) {
    return {Kind::kDone, c, r};
  }
  static HandlerResult blocked(sim::Cycle c) { return {Kind::kBlocked, c, 0}; }
  static HandlerResult halt(sim::Cycle c) { return {Kind::kHaltThread, c, 0}; }
  static HandlerResult resched(sim::Cycle c) {
    return {Kind::kReschedule, c, 0};
  }
};

/// Kernel-side hooks invoked by a Core.
class KernelIf {
 public:
  virtual ~KernelIf() = default;

  virtual HandlerResult syscall(Core& core, ThreadCtx& t,
                                const SyscallArgs& args) = 0;

  /// TLB refill opportunity. kDone => translation installed (cost =
  /// refill penalty, result unused); anything else => fault path taken.
  virtual HandlerResult onTlbMiss(Core& core, ThreadCtx& t, VAddr va,
                                  Access access) = 0;

  /// Unrecoverable-by-refill fault (SEGV / perm / DAC / machine check).
  /// The kernel may deliver a signal (adjusting t's pc) or kill t.
  /// Returns handling cost.
  virtual sim::Cycle onFault(Core& core, ThreadCtx& t, FaultKind kind,
                             VAddr va) = 0;

  /// Asynchronous interrupt taken at a slice boundary.
  virtual HandlerResult onInterrupt(Core& core, Irq irq) = 0;

  /// Pick the next thread for this core (nullptr => idle). Called when
  /// the current thread blocks/halts or after kReschedule.
  virtual ThreadCtx* pickNext(Core& core) = 0;

  /// Notification that a thread halted (exit bookkeeping).
  virtual void onThreadHalt(Core& core, ThreadCtx& t) = 0;

  /// Context-switch cost charged when the core changes threads.
  virtual sim::Cycle contextSwitchCost() const = 0;
};

/// User-space runtime dispatch (glibc/NPTL/DCMF analogues). RtCall ids
/// are defined in runtime/rt_ids.hpp.
class RuntimeIf {
 public:
  virtual ~RuntimeIf() = default;
  virtual HandlerResult rtcall(Core& core, ThreadCtx& t, std::int64_t fnId) = 0;
};

}  // namespace bg::hw

#include "hw/barrier_net.hpp"

#include <cassert>

namespace bg::hw {

void BarrierNet::configureGroup(std::uint64_t groupId, int members) {
  Group& g = groups_[groupId];
  g.expected = members;
}

void BarrierNet::arrive(std::uint64_t groupId, int nodeId,
                        std::function<void()> onRelease) {
  engine_.sharedOp([this, groupId, nodeId,
                    onRelease = std::move(onRelease)]() mutable {
    arriveNow(groupId, nodeId, std::move(onRelease));
  });
}

void BarrierNet::arriveNow(std::uint64_t groupId, int nodeId,
                           std::function<void()>&& onRelease) {
  Group& g = groups_[groupId];
  assert(g.expected > 0 && "barrier group not configured");
  g.waiters.emplace_back(nodeId, std::move(onRelease));
  ++g.arrived;
  if (g.arrived < g.expected) return;

  auto waiters = std::move(g.waiters);
  g.arrived = 0;
  g.waiters.clear();
  ++completed_;
  if (engine_.laneMode()) {
    // Per-waiter release events so each callback runs on its own
    // node's lane; all members still release at the same cycle.
    const sim::Cycle when = engine_.now() + cfg_.latency;
    for (auto& [node, fn] : waiters) {
      if (!fn) continue;
      engine_.scheduleAtForNode(node, when,
                                [fn = std::move(fn)] { fn(); });
    }
    return;
  }
  engine_.schedule(cfg_.latency, [waiters = std::move(waiters)]() {
    for (const auto& [node, fn] : waiters) {
      if (fn) fn();
    }
  });
}

void BarrierNet::resetArbiters() {
  if (persistent_) return;
  groups_.clear();
}

std::uint64_t BarrierNet::stateHash() const {
  sim::Fnv1a h;
  h.mix(persistent_ ? 1 : 0);
  h.mix(groups_.size());
  // Order-independent mix of group occupancy.
  std::uint64_t acc = 0;
  for (const auto& [id, g] : groups_) {
    sim::Fnv1a gh;
    gh.mix(id).mix(static_cast<std::uint64_t>(g.expected))
        .mix(static_cast<std::uint64_t>(g.arrived));
    acc ^= gh.digest();
  }
  h.mix(acc);
  return h.digest();
}

}  // namespace bg::hw

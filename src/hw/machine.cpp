#include "hw/machine.hpp"

#include <cmath>

#include "sim/hash.hpp"

namespace bg::hw {

MachineConfig Machine::normalize(MachineConfig cfg) {
  if (cfg.torus.dims[0] * cfg.torus.dims[1] * cfg.torus.dims[2] <
      cfg.computeNodes) {
    // Derive a roughly-cubic torus that holds all compute nodes.
    int x = 1, y = 1, z = 1;
    while (x * y * z < cfg.computeNodes) {
      if (x <= y && x <= z) {
        ++x;
      } else if (y <= z) {
        ++y;
      } else {
        ++z;
      }
    }
    cfg.torus.dims = {x, y, z};
  }
  if (cfg.ioNodes < 1) cfg.ioNodes = 1;
  if (cfg.spareIoNodes < 0) cfg.spareIoNodes = 0;
  return cfg;
}

Machine::Machine(const MachineConfig& cfg)
    : cfg_(normalize(cfg)),
      collective_(engine_, cfg_.collective),
      torus_(engine_, cfg_.torus),
      barrier_(engine_, cfg_.barrier),
      collFaults_(cfg_.seed, "collective-faults"),
      torusFaults_(cfg_.seed, "torus-faults"),
      memFaults_(cfg_.seed, "mem-faults") {
  // Per-node fault streams (seed ^ nodeId) and stats slots, created
  // serially up front so parallel lanes never mutate shared state.
  memFaults_.attachNodes(cfg_.computeNodes);
  if (cfg_.hostLanes > 1) {
    // One lane per node (compute, I/O, spares); lane tags are a pure
    // function of node ids, so the schedule cannot depend on which
    // host thread runs which lane.
    const int totalIo = cfg_.ioNodes + cfg_.spareIoNodes;
    const auto lanes =
        static_cast<std::uint32_t>(cfg_.computeNodes + totalIo);
    sim::Cycle la = cfg_.laneLookahead;
    if (la == 0) {
      la = std::min(static_cast<sim::Cycle>(cfg_.collective.perHopLatency) *
                        static_cast<sim::Cycle>(cfg_.collective.treeDepth),
                    cfg_.barrier.latency);
    }
    engine_.configureLanes(lanes, static_cast<std::uint32_t>(cfg_.hostLanes),
                           la);
    for (int i = 0; i < cfg_.computeNodes; ++i) {
      engine_.setNodeLane(i, static_cast<std::uint32_t>(1 + i));
    }
    for (int j = 0; j < totalIo; ++j) {
      engine_.setNodeLane(
          kIoNodeIdBase + j,
          static_cast<std::uint32_t>(1 + cfg_.computeNodes + j));
    }
  }
  collFaults_.setDefaultRates(cfg_.collectiveFaults);
  torusFaults_.setDefaultRates(cfg_.torusFaults);
  collective_.setFaultModel(&collFaults_);
  torus_.setFaultModel(&torusFaults_);
  memFaults_.setDefaultRates(cfg_.memFaults);
  compute_.reserve(static_cast<std::size_t>(cfg_.computeNodes));
  for (int i = 0; i < cfg_.computeNodes; ++i) {
    auto n = std::make_unique<Node>(engine_, i, cfg_.node);
    n->attachCollective(&collective_);
    n->attachTorus(&torus_);
    n->attachBarrier(&barrier_);
    n->attachMemFaults(&memFaults_);
    torus_.attachNode(i, n.get());
    compute_.push_back(std::move(n));
  }
  const int totalIo = cfg_.ioNodes + cfg_.spareIoNodes;
  io_.reserve(static_cast<std::size_t>(totalIo));
  for (int i = 0; i < totalIo; ++i) {
    auto n = std::make_unique<Node>(engine_, kIoNodeIdBase + i, cfg_.node);
    n->attachCollective(&collective_);
    n->attachBarrier(&barrier_);
    io_.push_back(std::move(n));
  }
}

void Machine::resetNode(int i) {
  Node& n = node(i);
  n.prepareForReset();
  n.restartFromSelfRefresh();
}

void Machine::setDefaultMemFaultRates(const MemFaultRates& r) {
  memFaults_.setDefaultRates(r);
  for (auto& n : compute_) n->refreshMemFaultView();
}

void Machine::setNodeMemFaultRates(int node, const MemFaultRates& r) {
  memFaults_.setNodeRates(node, r);
  this->node(node).refreshMemFaultView();
}

std::uint64_t Machine::scanHash() const {
  sim::Fnv1a h;
  for (const auto& n : compute_) h.mix(n->scanHash());
  for (const auto& n : io_) h.mix(n->scanHash());
  h.mix(barrier_.stateHash());
  return h.digest();
}

}  // namespace bg::hw

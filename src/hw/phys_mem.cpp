#include "hw/phys_mem.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "sim/hash.hpp"

namespace bg::hw {

void PhysMem::checkAccess(PAddr addr, std::uint64_t len) const {
  if (selfRefresh_) {
    throw std::runtime_error("PhysMem: access while DDR in self-refresh");
  }
  if (addr + len > size_ || addr + len < addr) {
    throw std::out_of_range("PhysMem: access beyond physical memory");
  }
}

std::byte* PhysMem::frameFor(std::uint64_t frameIndex) {
  auto it = frames_.find(frameIndex);
  if (it == frames_.end()) {
    auto buf = std::make_unique<std::byte[]>(kFrameSize);
    std::memset(buf.get(), 0, kFrameSize);
    it = frames_.emplace(frameIndex, std::move(buf)).first;
  }
  return it->second.get();
}

const std::byte* PhysMem::frameIfPresent(std::uint64_t frameIndex) const {
  auto it = frames_.find(frameIndex);
  return it == frames_.end() ? nullptr : it->second.get();
}

void PhysMem::write(PAddr addr, std::span<const std::byte> data) {
  checkAccess(addr, data.size());
  std::uint64_t off = 0;
  while (off < data.size()) {
    const std::uint64_t fi = (addr + off) / kFrameSize;
    const std::uint64_t fo = (addr + off) % kFrameSize;
    const std::uint64_t n =
        std::min<std::uint64_t>(kFrameSize - fo, data.size() - off);
    std::memcpy(frameFor(fi) + fo, data.data() + off, n);
    off += n;
  }
}

void PhysMem::read(PAddr addr, std::span<std::byte> out) const {
  checkAccess(addr, out.size());
  std::uint64_t off = 0;
  while (off < out.size()) {
    const std::uint64_t fi = (addr + off) / kFrameSize;
    const std::uint64_t fo = (addr + off) % kFrameSize;
    const std::uint64_t n =
        std::min<std::uint64_t>(kFrameSize - fo, out.size() - off);
    if (const std::byte* f = frameIfPresent(fi)) {
      std::memcpy(out.data() + off, f + fo, n);
    } else {
      std::memset(out.data() + off, 0, n);
    }
    off += n;
  }
}

std::uint64_t PhysMem::read64(PAddr addr) const {
  std::uint64_t v = 0;
  read(addr, std::as_writable_bytes(std::span(&v, 1)));
  return v;
}

void PhysMem::write64(PAddr addr, std::uint64_t value) {
  write(addr, std::as_bytes(std::span(&value, 1)));
}

void PhysMem::zero(PAddr addr, std::uint64_t len) {
  checkAccess(addr, len);
  std::uint64_t off = 0;
  while (off < len) {
    const std::uint64_t fi = (addr + off) / kFrameSize;
    const std::uint64_t fo = (addr + off) % kFrameSize;
    const std::uint64_t n = std::min<std::uint64_t>(kFrameSize - fo, len - off);
    // Only touch frames that exist; absent frames already read as zero.
    if (frames_.contains(fi)) std::memset(frameFor(fi) + fo, 0, n);
    off += n;
  }
}

std::uint64_t PhysMem::hashRange(PAddr addr, std::uint64_t len) const {
  checkAccess(addr, len);
  sim::Fnv1a h;
  std::uint64_t off = 0;
  static const std::byte zeros[256] = {};
  while (off < len) {
    const std::uint64_t fi = (addr + off) / kFrameSize;
    const std::uint64_t fo = (addr + off) % kFrameSize;
    const std::uint64_t n = std::min<std::uint64_t>(kFrameSize - fo, len - off);
    if (const std::byte* f = frameIfPresent(fi)) {
      h.mixBytes(std::span(f + fo, n));
    } else {
      std::uint64_t z = 0;
      while (z < n) {
        const std::uint64_t c = std::min<std::uint64_t>(sizeof zeros, n - z);
        h.mixBytes(std::span(zeros, c));
        z += c;
      }
    }
    off += n;
  }
  return h.digest();
}

}  // namespace bg::hw

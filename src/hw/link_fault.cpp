#include "hw/link_fault.hpp"

namespace bg::hw {

LinkFaultOutcome LinkFaultModel::judge(std::uint64_t linkKey,
                                       std::size_t payloadBytes) {
  LinkFaultOutcome out;
  const LinkFaultRates& r = ratesFor(linkKey);
  if (!r.enabled()) return out;
  ++stats_.packetsSeen;

  if (r.dropRate > 0.0 && rng_.nextDouble() < r.dropRate) {
    out.drop = true;
    ++stats_.dropped;
    return out;  // a dropped packet can't also be corrupted or delayed
  }
  if (r.corruptRate > 0.0 && rng_.nextDouble() < r.corruptRate) {
    out.corrupt = true;
    if (payloadBytes > 0) {
      out.corruptByteIndex = static_cast<std::size_t>(
          rng_.nextBelow(static_cast<std::uint64_t>(payloadBytes)));
      out.corruptXor =
          static_cast<std::uint8_t>(1 + rng_.nextBelow(255));  // never 0
      ++stats_.corrupted;
    } else {
      out.corrupt = false;  // nothing to damage
    }
  }
  if (r.delayRate > 0.0 && rng_.nextDouble() < r.delayRate) {
    const sim::Cycle span = r.delayMaxCycles > r.delayMinCycles
                                ? r.delayMaxCycles - r.delayMinCycles
                                : 0;
    out.extraDelay =
        r.delayMinCycles +
        (span > 0 ? static_cast<sim::Cycle>(rng_.nextBelow(span + 1)) : 0);
    ++stats_.delayed;
  }
  if (r.duplicateRate > 0.0 && rng_.nextDouble() < r.duplicateRate) {
    out.duplicate = true;
    out.duplicateDelay =
        1 + static_cast<sim::Cycle>(rng_.nextBelow(r.delayMinCycles + 1));
    ++stats_.duplicated;
  }
  return out;
}

}  // namespace bg::hw

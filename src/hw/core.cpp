#include "hw/core.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "hw/mem_fault.hpp"
#include "hw/node.hpp"
#include "sim/hash.hpp"

namespace bg::hw {

namespace {
// Fixed per-instruction base costs (cycles).
constexpr sim::Cycle kAluCost = 1;
constexpr sim::Cycle kBranchCost = 1;
constexpr sim::Cycle kTrapEntryCost = 4;   // enter-kernel overhead floor
constexpr sim::Cycle kLoadStoreCost = 2;   // plus memory-system cost
constexpr sim::Cycle kAtomicCost = 8;      // lwarx/stwcx-style pair
}  // namespace

Core::Core(int id, Node& node)
    : id_(id), node_(node), mmu_(64),
      l1_(32ULL << 10, /*lineBytes=*/32, /*ways=*/8) {}

void Core::bind(ThreadCtx* t) {
  cur_ = t;
  if (t != nullptr && t->state == ThreadState::kReady) {
    t->state = ThreadState::kRunning;
  }
  kick();
}

void Core::kick() {
  // During a slice the follow-on scheduling at slice end covers any
  // state change a handler made; scheduling here would create a second
  // concurrent slice stream for the core (time compression).
  // A hung core ignores kicks outright: raised IRQs stay latched in
  // pendingIrqs_ and are delivered after unhang().
  if (hung_ || inSlice_ || sliceScheduled_) return;
  sliceScheduled_ = true;
  // Kicks can come from control code (job load, IRQ injection from the
  // service node); pin the slice stream onto this node's lane.
  sim::Engine::LaneGuard laneGuard(node_.engine(), node_.laneTag());
  node_.engine().scheduleTask(0, &sliceTask_);
}

void Core::raise(Irq irq) {
  pendingIrqs_ |= (1u << static_cast<int>(irq));
  kick();
}

void Core::setDecrementer(sim::Cycle delay) {
  sim::Engine::LaneGuard laneGuard(node_.engine(), node_.laneTag());
  if (delay == 0) {
    decDeadline_ = 0;
    if (decEvent_ != 0) {
      node_.engine().cancel(decEvent_);
      decEvent_ = 0;
    }
    return;
  }
  decDeadline_ = node_.engine().now() + delay;
  if (decEvent_ != 0) {
    // Re-arm to a deadline at or past the outstanding event: keep the
    // event. It fires (possibly early) and decFired() re-arms for the
    // remainder, so a tick handler that pushes the deadline out does
    // not pay a cancel+schedule pair per re-arm.
    if (decEventAt_ <= decDeadline_) return;
    node_.engine().cancel(decEvent_);
  }
  decEvent_ = node_.engine().scheduleTask(delay, &decTask_);
  decEventAt_ = decDeadline_;
}

void Core::decFired() {
  decEvent_ = 0;
  if (decDeadline_ == 0) return;  // disarmed after the event was queued
  const sim::Cycle now = node_.engine().now();
  if (now < decDeadline_) {
    // Deadline was pushed later while we were in flight; sleep out the
    // remainder.
    decEvent_ = node_.engine().scheduleTask(decDeadline_ - now, &decTask_);
    decEventAt_ = decDeadline_;
    return;
  }
  decDeadline_ = 0;
  raise(Irq::kDecrementer);
}

void Core::scheduleSlice(sim::Cycle delay) {
  if (sliceScheduled_) return;
  sliceScheduled_ = true;
  node_.engine().scheduleTask(delay, &sliceTask_);
}

sim::Cycle Core::lineCost(PAddr pa, sim::Cycle atRelativeCost) {
  // L1 hit: 1 cycle. L1 miss -> shared cache; miss there -> DDR.
  if (l1_.access(pa)) return 1;
  if (l1_.parityArmed() && l1_.judgeParity()) {
    // Parity flip on the freshly filled line: latch a syndrome and
    // machine-check; the kernel recovers by invalidate+refill
    // (paper §V-B), so the access itself completes.
    node_.pushMc(McSyndrome{McSyndrome::Kind::kParity, pa, id_});
    raise(Irq::kMachineCheck);
  }
  const sim::Cycle now = node_.engine().now() + sliceCost_ + atRelativeCost;
  const SharedCache::Result r = node_.l3().access(pa, now);
  sim::Cycle c = node_.l3().config().hitLatency + r.extraStall;
  if (!r.hit) {
    c += node_.ddr().accessLatency(now + c);
    if (node_.ddr().faultsArmed()) {
      switch (node_.ddr().judgeEcc()) {
        case EccOutcome::kCorrectable:
          // Single-bit flip: ECC already fixed the data in flight;
          // report so the kernel can scrub and count it.
          node_.pushMc(McSyndrome{McSyndrome::Kind::kCorrectable, pa, id_});
          raise(Irq::kMachineCheck);
          break;
        case EccOutcome::kUncorrectable:
          // Multi-bit flip: the data is gone. Latch so dataAccess
          // refuses to complete; the machine-check IRQ panics the
          // kernel at the next slice boundary.
          node_.pushMc(McSyndrome{McSyndrome::Kind::kUncorrectable, pa, id_});
          raise(Irq::kMachineCheck);
          ueLatched_ = true;
          break;
        case EccOutcome::kNone:
          break;
      }
    }
  }
  return c;
}

Core::AccessOutcome Core::dataAccess(ThreadCtx& t, VAddr va,
                                     std::uint32_t len, Access access) {
  AccessOutcome out;
  KernelIf* kern = node_.kernel();
  assert(kern != nullptr);

  // DAC (guard-page) check happens before translation: the debug
  // comparators watch effective addresses.
  if (mmu_.dacMatches(va, len, access)) {
    out.cost += kern->onFault(*this, t, FaultKind::kDacHit, va);
    return out;  // ok=false; fault path has run
  }

  Translation tr;
  TlbResult res = mmu_.translate(t.pid, va, access, &tr);
  if (res == TlbResult::kMiss) {
    HandlerResult hr = kern->onTlbMiss(*this, t, va, access);
    out.cost += hr.cost;
    if (hr.kind != HandlerResult::Kind::kDone) {
      return out;  // fault path handled by kernel (signal or kill)
    }
    res = mmu_.translate(t.pid, va, access, &tr);
    if (res == TlbResult::kMiss) {
      out.cost += kern->onFault(*this, t, FaultKind::kSegv, va);
      return out;
    }
  }
  if (res == TlbResult::kPermFault) {
    out.cost += kern->onFault(*this, t, FaultKind::kPermFault, va);
    return out;
  }
  out.cost += lineCost(tr.paddr, out.cost);
  if (ueLatched_) {
    // Uncorrectable ECC during the fill: the access must not retire.
    // The thread stops on the faulting instruction; the latched
    // machine check decides its fate before the core runs again.
    ueLatched_ = false;
    return out;  // ok=false
  }
  out.ok = true;
  out.pa = tr.paddr;
  return out;
}

Core::TouchOutcome Core::memTouch(ThreadCtx& t, VAddr va,
                                  std::uint32_t bytes, std::uint32_t stride,
                                  bool write) {
  TouchOutcome out;
  const std::uint32_t line = l1_.lineBytes();
  const std::uint32_t step = stride == 0 ? line : stride;
  const Access acc = write ? Access::kWrite : Access::kRead;
  VAddr cur = va;
  const VAddr end = va + bytes;
  while (cur < end) {
    AccessOutcome a = dataAccess(t, cur, std::min<std::uint64_t>(step, 8),
                                 acc);
    out.cost += a.cost;
    if (!a.ok) return out;  // fault path already ran
    cur += step;
  }
  out.ok = true;
  return out;
}

sim::Cycle Core::execOne(ThreadCtx& t, bool* stop) {
  if (t.prog == nullptr || t.pc >= t.prog->size()) {
    // Running off the end of a program is a bug in the workload;
    // treat as a fault so the kernel can kill the thread cleanly.
    sim::Cycle c = node_.kernel()->onFault(*this, t, FaultKind::kSegv, t.pc);
    *stop = true;
    return c;
  }
  const vm::DecodedInstr& in = t.prog->decoded()[t.pc];
  std::uint64_t* r = t.regs;
  ++t.instrRetired;
  sim::Cycle c = 0;
  bool advance = true;

  using vm::Op;
  switch (in.op) {
    case Op::kNop:
      c = kAluCost;
      break;
    case Op::kLi:
      r[in.rd] = in.uimm;
      c = kAluCost;
      break;
    case Op::kMov:
      r[in.rd] = r[in.ra];
      c = kAluCost;
      break;
    case Op::kAdd:
      r[in.rd] = r[in.ra] + r[in.rb];
      c = kAluCost;
      break;
    case Op::kAddi:
      r[in.rd] = r[in.ra] + in.uimm;
      c = kAluCost;
      break;
    case Op::kSub:
      r[in.rd] = r[in.ra] - r[in.rb];
      c = kAluCost;
      break;
    case Op::kMul:
      r[in.rd] = r[in.ra] * r[in.rb];
      c = kAluCost + 4;
      break;
    case Op::kAnd:
      r[in.rd] = r[in.ra] & r[in.rb];
      c = kAluCost;
      break;
    case Op::kOr:
      r[in.rd] = r[in.ra] | r[in.rb];
      c = kAluCost;
      break;
    case Op::kXor:
      r[in.rd] = r[in.ra] ^ r[in.rb];
      c = kAluCost;
      break;
    case Op::kShl:
      r[in.rd] = r[in.ra] << (in.uimm & 63);
      c = kAluCost;
      break;
    case Op::kShr:
      r[in.rd] = r[in.ra] >> (in.uimm & 63);
      c = kAluCost;
      break;
    case Op::kJump:
      t.pc = in.uimm;
      advance = false;
      c = kBranchCost;
      break;
    case Op::kBeqz:
      if (r[in.ra] == 0) {
        t.pc = in.uimm;
        advance = false;
      }
      c = kBranchCost;
      break;
    case Op::kBnez:
      if (r[in.ra] != 0) {
        t.pc = in.uimm;
        advance = false;
      }
      c = kBranchCost;
      break;
    case Op::kBlt:
      if (r[in.ra] < r[in.rb]) {
        t.pc = in.uimm;
        advance = false;
      }
      c = kBranchCost;
      break;
    case Op::kCompute:
      c = static_cast<sim::Cycle>(in.uimm);
      break;
    case Op::kMemTouch: {
      const VAddr va = r[in.ra] + in.uimm;
      TouchOutcome o =
          memTouch(t, va, in.a, in.b, (in.flags & vm::kMemTouchWrite) != 0);
      c = o.cost + kAluCost;
      if (!o.ok) {
        *stop = true;
        advance = t.runnable();  // signal delivery may have moved pc
        if (!t.runnable()) advance = false;
        advance = false;  // fault path controls pc
      }
      break;
    }
    case Op::kLoad: {
      const VAddr va = r[in.ra] + in.uimm;
      AccessOutcome a = dataAccess(t, va, 8, Access::kRead);
      c = a.cost + kLoadStoreCost;
      if (a.ok) {
        r[in.rd] = node_.mem().read64(a.pa);
      } else {
        *stop = true;
        advance = false;
      }
      break;
    }
    case Op::kStore: {
      const VAddr va = r[in.ra] + in.uimm;
      AccessOutcome a = dataAccess(t, va, 8, Access::kWrite);
      c = a.cost + kLoadStoreCost;
      if (a.ok) {
        node_.mem().write64(a.pa, r[in.rb]);
      } else {
        *stop = true;
        advance = false;
      }
      break;
    }
    case Op::kCas: {
      const VAddr va = r[in.ra];
      AccessOutcome a = dataAccess(t, va, 8, Access::kWrite);
      c = a.cost + kAtomicCost;
      if (a.ok) {
        const std::uint64_t old = node_.mem().read64(a.pa);
        r[in.rd] = old;
        if (old == r[in.rb]) node_.mem().write64(a.pa, r[in.flags]);
      } else {
        *stop = true;
        advance = false;
      }
      break;
    }
    case Op::kFetchAdd: {
      const VAddr va = r[in.ra];
      AccessOutcome a = dataAccess(t, va, 8, Access::kWrite);
      c = a.cost + kAtomicCost;
      if (a.ok) {
        const std::uint64_t old = node_.mem().read64(a.pa);
        r[in.rd] = old;
        node_.mem().write64(a.pa, old + r[in.rb]);
      } else {
        *stop = true;
        advance = false;
      }
      break;
    }
    case Op::kSyscall: {
      SyscallArgs args;
      args.nr = in.imm;
      for (int i = 0; i < 6; ++i) args.arg[i] = r[vm::kArg0 + i];
      // pc advances before the handler runs so blocked threads resume
      // after the syscall, and signal frames capture the resume point.
      ++t.pc;
      advance = false;
      HandlerResult hr = node_.kernel()->syscall(*this, t, args);
      c = kTrapEntryCost + hr.cost;
      switch (hr.kind) {
        case HandlerResult::Kind::kDone:
          r[vm::kRetReg] = hr.result;
          break;
        case HandlerResult::Kind::kBlocked:
          assert(t.state == ThreadState::kBlocked);
          *stop = true;
          break;
        case HandlerResult::Kind::kHaltThread:
          t.state = ThreadState::kHalted;
          node_.kernel()->onThreadHalt(*this, t);
          *stop = true;
          break;
        case HandlerResult::Kind::kReschedule:
          // Come off the core: the next slice asks the scheduler,
          // which may hand the core to someone else (or to another
          // core entirely, after a migration).
          cur_ = nullptr;
          *stop = true;
          break;
      }
      break;
    }
    case Op::kRtCall: {
      ++t.pc;
      advance = false;
      RuntimeIf* rt = node_.runtime();
      if (rt == nullptr) {
        c = node_.kernel()->onFault(*this, t, FaultKind::kSegv, t.pc);
        *stop = true;
        break;
      }
      HandlerResult hr = rt->rtcall(*this, t, in.imm);
      c = kTrapEntryCost + hr.cost;
      switch (hr.kind) {
        case HandlerResult::Kind::kDone:
          r[vm::kRetReg] = hr.result;
          break;
        case HandlerResult::Kind::kBlocked:
          *stop = true;
          break;
        case HandlerResult::Kind::kHaltThread:
          t.state = ThreadState::kHalted;
          node_.kernel()->onThreadHalt(*this, t);
          *stop = true;
          break;
        case HandlerResult::Kind::kReschedule:
          cur_ = nullptr;
          *stop = true;
          break;
      }
      break;
    }
    case Op::kReadTB:
      // Timebase reads must see intra-slice progress, or every read in
      // a batch would alias to the slice start.
      r[in.rd] = node_.engine().now() + sliceCost_ + c;
      c = kAluCost;
      break;
    case Op::kSample:
      if (t.samples != nullptr) t.samples->push_back(r[in.ra]);
      c = kAluCost;
      break;
    case Op::kHalt:
      t.exitStatus = in.imm;
      t.state = ThreadState::kHalted;
      node_.kernel()->onThreadHalt(*this, t);
      *stop = true;
      advance = false;
      break;
  }

  if (advance) ++t.pc;
  if (!t.runnable()) *stop = true;
  return c;
}

void Core::runSlice() {
  sliceScheduled_ = false;
  if (hung_) return;  // executes nothing; quiescent until unhang()
  inSlice_ = true;
  ++slicesRun_;
  sim::Cycle cost = 0;
  sliceCost_ = 0;
  KernelIf* kern = node_.kernel();

  // 1. Deliver pending interrupts (the handler may preempt / rebind).
  while (pendingIrqs_ != 0 && kern != nullptr) {
    const int bit = std::countr_zero(pendingIrqs_);
    pendingIrqs_ &= pendingIrqs_ - 1;
    HandlerResult hr = kern->onInterrupt(*this, static_cast<Irq>(bit));
    cost += hr.cost;
    sliceCost_ = cost;
  }

  // 2. Make sure we have a runnable current thread.
  if ((cur_ == nullptr || !cur_->runnable()) && kern != nullptr) {
    ThreadCtx* next = kern->pickNext(*this);
    if (next != nullptr && next != cur_) {
      cost += kern->contextSwitchCost();
      cur_ = next;
    } else if (next == nullptr) {
      cur_ = nullptr;
    }
  }

  if (cur_ == nullptr || !cur_->runnable()) {
    // Idle. If interrupt handling consumed time or more interrupts are
    // pending, probe again after the cost elapses; else go quiescent
    // until a kick.
    cyclesBusy_ += cost;
    inSlice_ = false;
    if (pendingIrqs_ != 0 || cost > 0) {
      scheduleSlice(std::max<sim::Cycle>(cost, 1));
    }
    return;
  }

  // Slice-granular fault injection (hang / spurious machine check),
  // judged only when a runnable thread is about to execute so the
  // draw sequence tracks work done, not idle probes.
  if (node_.sliceFaultsArmed() && node_.judgeSliceFaults(*this)) {
    // Hung mid-schedule: the slice never runs and no follow-on is
    // scheduled. cyclesBusy_ freezes — the heartbeat monitor's cue.
    cyclesBusy_ += cost;
    inSlice_ = false;
    return;
  }

  cur_->state = ThreadState::kRunning;

  // 3. Execute a batch.
  bool stop = false;
  while (!stop && cost < quantum_) {
    sliceCost_ = cost;
    cost += execOne(*cur_, &stop);
  }
  sliceCost_ = 0;
  cyclesBusy_ += cost;
  inSlice_ = false;

  // 4. Schedule exactly one follow-on slice after the accumulated cost
  //    elapses. If the thread blocked or halted, that slice performs
  //    the pickNext decision at the correct time; if nothing is
  //    runnable then, it goes quiescent and a later kick revives us.
  scheduleSlice(std::max<sim::Cycle>(cost, 1));
}

std::uint64_t Core::scanHash() const {
  sim::Fnv1a h;
  h.mix(static_cast<std::uint64_t>(id_));
  h.mix(pendingIrqs_);
  if (hung_) h.mix(0xAC1D);  // conditional: fault-free digests unchanged
  if (cur_ != nullptr) {
    h.mix(cur_->pc).mix(cur_->tid).mix(static_cast<std::uint64_t>(cur_->state));
    for (int i = 0; i < vm::kNumRegs; ++i) h.mix(cur_->regs[i]);
  }
  for (const TlbEntry& e : mmu_.entries()) {
    if (e.valid) h.mix(e.vaddr).mix(e.paddr).mix(e.size).mix(e.perms);
  }
  return h.digest();
}

}  // namespace bg::hw

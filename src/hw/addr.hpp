// Address-space primitives shared by the hardware model and kernels.
#pragma once

#include <cstdint>

namespace bg::hw {

using VAddr = std::uint64_t;
using PAddr = std::uint64_t;

enum class Access : std::uint8_t { kRead, kWrite, kExec };

/// Page permission bits.
enum Perm : std::uint8_t {
  kPermNone = 0,
  kPermR = 1,
  kPermW = 2,
  kPermX = 4,
  kPermRW = kPermR | kPermW,
  kPermRX = kPermR | kPermX,
  kPermRWX = kPermR | kPermW | kPermX,
};

constexpr bool permAllows(std::uint8_t perms, Access a) {
  switch (a) {
    case Access::kRead: return (perms & kPermR) != 0;
    case Access::kWrite: return (perms & kPermW) != 0;
    case Access::kExec: return (perms & kPermX) != 0;
  }
  return false;
}

// BG/P-style hardware page sizes available to the static mapper
// (paper §IV-C: 1MB, 16MB, 256MB, 1GB), plus the FWK's 4KB base pages.
inline constexpr std::uint64_t kPage4K = 4ULL << 10;
inline constexpr std::uint64_t kPage1M = 1ULL << 20;
inline constexpr std::uint64_t kPage16M = 16ULL << 20;
inline constexpr std::uint64_t kPage256M = 256ULL << 20;
inline constexpr std::uint64_t kPage1G = 1ULL << 30;

constexpr std::uint64_t alignUp(std::uint64_t v, std::uint64_t a) {
  return (v + a - 1) & ~(a - 1);
}
constexpr std::uint64_t alignDown(std::uint64_t v, std::uint64_t a) {
  return v & ~(a - 1);
}

}  // namespace bg::hw

// Global barrier/interrupt network.
//
// A dedicated low-latency network whose arbiters CNK keeps in a known
// state across reproducible reboots so that multichip packet transfers
// can be re-aligned cycle-for-cycle (paper §III). Also backs
// MPI_Barrier.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/engine.hpp"
#include "sim/hash.hpp"
#include "sim/types.hpp"

namespace bg::hw {

struct BarrierConfig {
  sim::Cycle latency = 1100;  // ~1.3us global barrier at 850MHz
};

class BarrierNet {
 public:
  BarrierNet(sim::Engine& engine, const BarrierConfig& cfg)
      : engine_(engine), cfg_(cfg) {}

  /// Define the membership of a barrier group.
  void configureGroup(std::uint64_t groupId, int members);

  /// Arrive at the barrier; onRelease fires `latency` after the last
  /// member arrives. All members release at the same cycle — this is
  /// the property the multichip-reproducibility reboot relies on.
  void arrive(std::uint64_t groupId, int nodeId,
              std::function<void()> onRelease);

  /// Keep-alive across reset: arbiters/state machines stay configured
  /// (paper: "the barrier network was set to remain active and
  /// configured" across reproducible reboots).
  void setPersistentAcrossReset(bool v) { persistent_ = v; }
  bool persistentAcrossReset() const { return persistent_; }

  /// Reset volatile arbiter state (non-reproducible boot path drops
  /// group state; reproducible path preserves it).
  void resetArbiters();

  /// Deterministic digest of arbiter state — part of the logic scan.
  std::uint64_t stateHash() const;

  std::uint64_t barriersCompleted() const { return completed_; }

 private:
  struct Group {
    int expected = 0;
    int arrived = 0;
    std::vector<std::pair<int, std::function<void()>>> waiters;
  };

  /// Body of arrive(); runs serially (inline in plain mode, merged at
  /// the lane barrier in lane mode) because it mutates group state.
  void arriveNow(std::uint64_t groupId, int nodeId,
                 std::function<void()>&& onRelease);

  sim::Engine& engine_;
  BarrierConfig cfg_;
  bool persistent_ = false;
  std::unordered_map<std::uint64_t, Group> groups_;
  std::uint64_t completed_ = 0;
};

}  // namespace bg::hw

// Machine assembly: compute nodes + I/O nodes wired to the three
// networks, plus service-node style control (reset, boot ordering).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "hw/barrier_net.hpp"
#include "hw/collective.hpp"
#include "hw/link_fault.hpp"
#include "hw/mem_fault.hpp"
#include "hw/node.hpp"
#include "hw/torus.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace bg::hw {

/// I/O nodes share the network id space with compute nodes, offset so
/// the two populations never collide.
inline constexpr int kIoNodeIdBase = 100000;

struct MachineConfig {
  int computeNodes = 1;
  int ioNodes = 1;
  int computeNodesPerIoNode = 64;  // pset size (BG/P: 16..128)
  /// Cold spare I/O nodes (net ids follow the primaries). A spare has
  /// no pset of its own; the cluster activates one when a primary's
  /// CIOD dies and re-homes the pset onto it.
  int spareIoNodes = 0;
  NodeConfig node;
  TorusConfig torus;              // dims default derived if {1,1,1}
  CollectiveConfig collective;
  BarrierConfig barrier;
  /// Seeded link-fault injection (defaults: all rates zero = off, no
  /// RNG draws, bit-identical to a fault-free build).
  LinkFaultRates collectiveFaults;
  LinkFaultRates torusFaults;
  /// Seeded compute-node memory/CPU fault injection (same contract:
  /// all-zero defaults draw nothing and change nothing).
  MemFaultRates memFaults;
  std::uint64_t seed = 42;
  /// Host threads executing per-node event lanes (tentpole: parallel
  /// lane mode). 1 = the plain single-threaded engine, bit-exact with
  /// every prior release. N>1 splits the event stream into one lane
  /// per node; the merged schedule is identical at any thread count.
  /// Compatible with memFaults: each node judges against its own RNG
  /// stream (seed ^ nodeId) and stats slot, so per-lane execution
  /// never races on the fault model.
  int hostLanes = 1;
  /// Conservative lane lookahead in cycles; 0 derives it from the
  /// cheapest cross-node interaction that merges at the window barrier
  /// (collective tree traversal vs. global barrier latency). Torus
  /// hop floors sit below that window, so torus-heavy workloads are
  /// only timing-exact with hostLanes = 1 (the engine counts such
  /// sub-lookahead deliveries as causality violations).
  sim::Cycle laneLookahead = 0;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& cfg);
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  sim::Engine& engine() { return engine_; }
  const MachineConfig& config() const { return cfg_; }

  int numComputeNodes() const { return static_cast<int>(compute_.size()); }
  /// Primary I/O nodes only; the pset mapping never lands on a spare.
  int numIoNodes() const { return cfg_.ioNodes; }
  int numSpareIoNodes() const { return cfg_.spareIoNodes; }
  Node& node(int i) { return *compute_[static_cast<std::size_t>(i)]; }
  Node& ioNode(int i) { return *io_[static_cast<std::size_t>(i)]; }
  /// Spare s lives at net id kIoNodeIdBase + numIoNodes() + s.
  Node& spareIoNode(int s) {
    return *io_[static_cast<std::size_t>(cfg_.ioNodes + s)];
  }

  /// The I/O node serving a given compute node (pset mapping).
  int ioNodeIndexFor(int computeNodeId) const {
    return computeNodeId / cfg_.computeNodesPerIoNode % std::max(1, numIoNodes());
  }
  /// Network id of that I/O node.
  int ioNodeNetIdFor(int computeNodeId) const {
    return kIoNodeIdBase + ioNodeIndexFor(computeNodeId);
  }

  CollectiveNet& collective() { return collective_; }
  TorusNet& torus() { return torus_; }
  BarrierNet& barrier() { return barrier_; }

  /// Seeded fault models wired into the two packet networks. Rates
  /// default from the config; tests may tighten/loosen them per link
  /// at any time (deterministically — the RNG stream is the seed's).
  LinkFaultModel& collectiveFaults() { return collFaults_; }
  LinkFaultModel& torusFaults() { return torusFaults_; }

  /// Seeded compute-node fault model (ECC/parity/hang/spurious-MC).
  /// Always change rates through the setters below, not the model
  /// directly: the nodes cache armed flags for the hot paths.
  MemFaultModel& memFaults() { return memFaults_; }
  void setDefaultMemFaultRates(const MemFaultRates& r);
  void setNodeMemFaultRates(int node, const MemFaultRates& r);

  std::uint64_t seed() const { return cfg_.seed; }

  /// Service-node control hook: pull one compute node through a
  /// hardware reset (flush caches to DDR, DDR self-refresh, restart,
  /// TLBs invalidated). The kernel must be quiesced first — the
  /// control system kills/unloads the node's job before resetting.
  void resetNode(int i);

  /// Logic-scan digest over the whole machine at the current cycle.
  std::uint64_t scanHash() const;

 private:
  static MachineConfig normalize(MachineConfig cfg);

  MachineConfig cfg_;
  sim::Engine engine_;
  CollectiveNet collective_;
  TorusNet torus_;
  BarrierNet barrier_;
  LinkFaultModel collFaults_;
  LinkFaultModel torusFaults_;
  MemFaultModel memFaults_;
  std::vector<std::unique_ptr<Node>> compute_;
  std::vector<std::unique_ptr<Node>> io_;  // primaries, then spares
};

}  // namespace bg::hw

#include "hw/mmu.hpp"

namespace bg::hw {

TlbResult Mmu::translateSlow(std::uint32_t pid, VAddr va, Access access,
                             Translation* out) {
  for (std::size_t i = 0; i < tlb_.size(); ++i) {
    const TlbEntry& e = tlb_[i];
    if (!e.covers(pid, va)) continue;
    if (!permAllows(e.perms, access)) return TlbResult::kPermFault;
    ++hits_;
    if (out != nullptr) {
      out->paddr = e.paddr + (va - e.vaddr);
      out->perms = e.perms;
    }
    // Fill the micro-TLB only when no earlier slot overlaps this
    // entry's range. Lookup returns the *first* covering slot, so an
    // earlier overlapping slot could win for other addresses inside
    // this page; caching it would change which entry serves them.
    bool unique = true;
    for (std::size_t j = 0; j < i; ++j) {
      const TlbEntry& o = tlb_[j];
      if (o.valid && o.pid == e.pid && o.vaddr < e.vaddr + e.size &&
          e.vaddr < o.vaddr + o.size) {
        unique = false;
        break;
      }
    }
    if (unique) {
      microValid_ = true;
      microPerms_ = e.perms;
      microPid_ = e.pid;
      microVa_ = e.vaddr;
      microPa_ = e.paddr;
      microSize_ = e.size;
    }
    return TlbResult::kHit;
  }
  ++misses_;
  return TlbResult::kMiss;
}

int Mmu::install(const TlbEntry& entry) {
  microValid_ = false;
  // Prefer replacing an existing entry that maps the same page.
  for (std::size_t i = 0; i < tlb_.size(); ++i) {
    TlbEntry& e = tlb_[i];
    if (e.valid && e.pid == entry.pid && e.vaddr == entry.vaddr &&
        e.size == entry.size) {
      e = entry;
      return static_cast<int>(i);
    }
  }
  for (std::size_t i = 0; i < tlb_.size(); ++i) {
    if (!tlb_[i].valid) {
      tlb_[i] = entry;
      return static_cast<int>(i);
    }
  }
  const int victim = nextVictim_;
  nextVictim_ = (nextVictim_ + 1) % static_cast<int>(tlb_.size());
  tlb_[victim] = entry;
  return victim;
}

void Mmu::invalidate(std::uint32_t pid) {
  microValid_ = false;
  for (TlbEntry& e : tlb_) {
    if (pid == 0 || e.pid == pid) e.valid = false;
  }
}

std::optional<Translation> Mmu::probe(std::uint32_t pid, VAddr va) const {
  for (const TlbEntry& e : tlb_) {
    if (e.covers(pid, va)) {
      return Translation{e.paddr + (va - e.vaddr), e.perms};
    }
  }
  return std::nullopt;
}

int Mmu::validCount() const {
  int n = 0;
  for (const TlbEntry& e : tlb_) n += e.valid ? 1 : 0;
  return n;
}

bool Mmu::dacMatches(VAddr va, std::uint64_t len, Access a) const {
  for (const DacRange& d : dac_) {
    if (d.matches(va, len, a)) return true;
  }
  return false;
}

}  // namespace bg::hw

#include "hw/mmu.hpp"

namespace bg::hw {

TlbResult Mmu::translate(std::uint32_t pid, VAddr va, Access access,
                         Translation* out) {
  for (const TlbEntry& e : tlb_) {
    if (e.covers(pid, va)) {
      if (!permAllows(e.perms, access)) return TlbResult::kPermFault;
      ++hits_;
      if (out != nullptr) {
        out->paddr = e.paddr + (va - e.vaddr);
        out->perms = e.perms;
      }
      return TlbResult::kHit;
    }
  }
  ++misses_;
  return TlbResult::kMiss;
}

int Mmu::install(const TlbEntry& entry) {
  // Prefer replacing an existing entry that maps the same page.
  for (std::size_t i = 0; i < tlb_.size(); ++i) {
    TlbEntry& e = tlb_[i];
    if (e.valid && e.pid == entry.pid && e.vaddr == entry.vaddr &&
        e.size == entry.size) {
      e = entry;
      return static_cast<int>(i);
    }
  }
  for (std::size_t i = 0; i < tlb_.size(); ++i) {
    if (!tlb_[i].valid) {
      tlb_[i] = entry;
      return static_cast<int>(i);
    }
  }
  const int victim = nextVictim_;
  nextVictim_ = (nextVictim_ + 1) % static_cast<int>(tlb_.size());
  tlb_[victim] = entry;
  return victim;
}

void Mmu::invalidate(std::uint32_t pid) {
  for (TlbEntry& e : tlb_) {
    if (pid == 0 || e.pid == pid) e.valid = false;
  }
}

std::optional<Translation> Mmu::probe(std::uint32_t pid, VAddr va) const {
  for (const TlbEntry& e : tlb_) {
    if (e.covers(pid, va)) {
      return Translation{e.paddr + (va - e.vaddr), e.perms};
    }
  }
  return std::nullopt;
}

int Mmu::validCount() const {
  int n = 0;
  for (const TlbEntry& e : tlb_) n += e.valid ? 1 : 0;
  return n;
}

bool Mmu::dacMatches(VAddr va, std::uint64_t len, Access a) const {
  for (const DacRange& d : dac_) {
    if (d.matches(va, len, a)) return true;
  }
  return false;
}

}  // namespace bg::hw

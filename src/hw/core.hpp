// A processor core: executes VM instructions for the bound thread,
// charges cycle costs through the cache/TLB models, and delivers traps
// and interrupts to the attached kernel.
//
// Execution is batched: a core runs straight-line instructions until a
// quantum of simulated cycles accumulates or a trap occurs, then
// schedules its next slice. Interrupts raised by events are taken at
// slice boundaries — the same granularity at which real interrupts wait
// for instruction retirement.
#pragma once

#include <cstdint>

#include "hw/addr.hpp"
#include "hw/cache.hpp"
#include "hw/kernel_if.hpp"
#include "hw/mmu.hpp"
#include "hw/thread_ctx.hpp"
#include "sim/engine.hpp"
#include "sim/types.hpp"

namespace bg::hw {

class Node;

class Core {
 public:
  Core(int id, Node& node);
  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;

  int id() const { return id_; }
  Node& node() { return node_; }
  Mmu& mmu() { return mmu_; }
  const Mmu& mmu() const { return mmu_; }
  CacheArray& l1() { return l1_; }

  /// Bind a thread to this core (it becomes the current thread) and
  /// ensure execution is scheduled. Does not charge switch cost.
  void bind(ThreadCtx* t);
  ThreadCtx* current() { return cur_; }

  /// Ensure a run slice is scheduled (idempotent).
  void kick();

  /// Raise an asynchronous interrupt; taken at the next slice boundary.
  void raise(Irq irq);
  bool irqPending(Irq irq) const {
    return (pendingIrqs_ & (1u << static_cast<int>(irq))) != 0;
  }

  /// Program the per-core decrementer; 0 disables it. The kernel
  /// re-arms it from its tick handler (CNK simply never arms it).
  void setDecrementer(sim::Cycle delay);

  /// Translate + charge memory-system cost for one data access of
  /// `len` bytes at va. Handles TLB refill via the kernel and DAC
  /// traps. On failure the kernel's fault path has already run.
  struct AccessOutcome {
    bool ok = false;
    sim::Cycle cost = 0;
    PAddr pa = 0;
  };
  AccessOutcome dataAccess(ThreadCtx& t, VAddr va, std::uint32_t len,
                           Access access);

  /// Cost-only touch of [va, va+bytes) with the given stride, modelling
  /// cache-line traffic without moving data.
  struct TouchOutcome {
    bool ok = false;
    sim::Cycle cost = 0;
  };
  TouchOutcome memTouch(ThreadCtx& t, VAddr va, std::uint32_t bytes,
                        std::uint32_t stride, bool write);

  sim::Cycle quantum() const { return quantum_; }
  void setQuantum(sim::Cycle q) { quantum_ = q; }

  std::uint64_t cyclesBusy() const { return cyclesBusy_; }
  std::uint64_t slicesRun() const { return slicesRun_; }
  bool idle() const { return !sliceScheduled_; }

  /// Flush L1 (reproducible-reset path).
  void flushCaches() { l1_.flushAll(); }

  /// Fault-plane hooks: a hung core stops executing slices and
  /// ignores kicks until unhang() — it makes no forward progress and
  /// takes no interrupts, exactly the failure the service node's
  /// heartbeat monitor exists to catch. Reboot-in-place clears it.
  void hang() { hung_ = true; }
  void unhang() {
    if (!hung_) return;
    hung_ = false;
    kick();
  }
  bool hung() const { return hung_; }

  /// Hash of the architectural state visible to a logic scan: register
  /// file, pc, TLB contents, pending interrupts.
  std::uint64_t scanHash() const;

 private:
  // Persistent sim::Task objects for the two recurring events a core
  // generates (its run slice and its decrementer): re-arming schedules
  // the same object again, so the hot slice loop never constructs a
  // closure.
  struct SliceTask final : sim::Task {
    explicit SliceTask(Core* c) : core(c) {}
    void run() override { core->runSlice(); }
    Core* core;
  };
  struct DecTask final : sim::Task {
    explicit DecTask(Core* c) : core(c) {}
    void run() override { core->decFired(); }
    Core* core;
  };

  void runSlice();
  void scheduleSlice(sim::Cycle delay);
  void decFired();
  /// Execute one instruction of t; returns cost; sets *stop when the
  /// slice must end (trap, block, halt, fault).
  sim::Cycle execOne(ThreadCtx& t, bool* stop);
  sim::Cycle lineCost(PAddr pa, sim::Cycle atRelativeCost);

  int id_;
  Node& node_;
  Mmu mmu_;
  CacheArray l1_;
  ThreadCtx* cur_ = nullptr;
  std::uint32_t pendingIrqs_ = 0;
  bool sliceScheduled_ = false;
  bool inSlice_ = false;
  sim::Cycle sliceCost_ = 0;  // cost accumulated in the slice in progress
  sim::Cycle quantum_ = 4000;
  SliceTask sliceTask_{this};
  DecTask decTask_{this};
  sim::EventId decEvent_ = 0;
  sim::Cycle decDeadline_ = 0;  // absolute cycle the decrementer expires; 0 = off
  sim::Cycle decEventAt_ = 0;   // fire time of the outstanding dec event
  std::uint64_t cyclesBusy_ = 0;
  std::uint64_t slicesRun_ = 0;
  bool hung_ = false;       // core stopped by fault injection
  bool ueLatched_ = false;  // uncorrectable ECC hit the in-flight access
};

}  // namespace bg::hw

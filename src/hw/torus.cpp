#include "hw/torus.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#include "hw/node.hpp"

namespace bg::hw {

namespace {
std::uint64_t linkKey(int nodeId, int dim, bool positive) {
  return (static_cast<std::uint64_t>(nodeId) << 3) |
         (static_cast<std::uint64_t>(dim) << 1) | (positive ? 1u : 0u);
}
}  // namespace

void TorusNet::attachNode(int nodeId, Node* node) {
  nodes_[nodeId] = node;
  node->coords = coordsOf(nodeId);
}

std::array<int, 3> TorusNet::coordsOf(int nodeId) const {
  const int x = nodeId % cfg_.dims[0];
  const int y = (nodeId / cfg_.dims[0]) % cfg_.dims[1];
  const int z = nodeId / (cfg_.dims[0] * cfg_.dims[1]);
  return {x, y, z};
}

int TorusNet::hops(int a, int b) const {
  const auto ca = coordsOf(a);
  const auto cb = coordsOf(b);
  int total = 0;
  for (int d = 0; d < 3; ++d) {
    const int size = cfg_.dims[d];
    const int diff = std::abs(ca[d] - cb[d]);
    total += std::min(diff, size - diff);  // torus wraps
  }
  return total;
}

std::pair<sim::Cycle, sim::Cycle> TorusNet::reserveRoute(
    int src, int dst, std::uint64_t bytes) {
  const sim::Cycle ser = static_cast<sim::Cycle>(
      static_cast<double>(bytes) / cfg_.bytesPerCycle);
  auto cur = coordsOf(src);
  const auto target = coordsOf(dst);
  sim::Cycle start = engine_.now();
  int curId = src;
  int hopCount = 0;

  // Dimension-order routing; each directed link on the route is
  // reserved for the serialization time, pushing start past any
  // in-flight transfer sharing a link.
  for (int d = 0; d < 3; ++d) {
    while (cur[d] != target[d]) {
      const int size = cfg_.dims[d];
      int fwd = (target[d] - cur[d] + size) % size;
      const bool positive = fwd <= size / 2;
      sim::Cycle& busy = linkBusyUntil_[linkKey(curId, d, positive)];
      start = std::max(start, busy);
      busy = start + ser;
      cur[d] = (cur[d] + (positive ? 1 : size - 1)) % size;
      // Recompute node id from coords.
      curId = cur[0] + cfg_.dims[0] * (cur[1] + cfg_.dims[1] * cur[2]);
      ++hopCount;
    }
  }
  const sim::Cycle arrive =
      start + ser + cfg_.hopLatency * static_cast<sim::Cycle>(hopCount);
  return {start, arrive};
}

sim::Cycle TorusNet::faultRecoveryDelay(int srcNode, std::uint64_t bytes) {
  if (faults_ == nullptr || !faults_->anyEnabled()) return 0;
  const LinkFaultOutcome f =
      faults_->judge(static_cast<std::uint64_t>(srcNode) << 3, bytes);
  sim::Cycle extra = f.extraDelay;
  if (f.drop || f.corrupt) {
    // Link-level CRC retransmit: the packet is re-serialized after a
    // NACK turnaround; software above never sees the loss.
    extra += static_cast<sim::Cycle>(static_cast<double>(bytes) /
                                     cfg_.bytesPerCycle) +
             2 * cfg_.hopLatency;
  }
  return extra;
}

void TorusNet::sendPacket(TorusPacket packet) {
  engine_.sharedOp([this, p = std::move(packet)]() mutable {
    sendPacketNow(std::move(p));
  });
}

void TorusNet::sendPacketNow(TorusPacket&& packet) {
  auto [start, arrive] =
      reserveRoute(packet.srcNode, packet.dstNode, packet.payload.size());
  (void)start;
  arrive += faultRecoveryDelay(packet.srcNode, packet.payload.size());
  bytesMoved_ += packet.payload.size();
  const int dst = packet.dstNode;
  engine_.scheduleAtForNode(dst, arrive + cfg_.dmaRecvCost,
                            [this, p = std::move(packet)]() mutable {
                              auto it = handlers_.find(p.dstNode);
                              if (it != handlers_.end() && it->second) {
                                it->second(std::move(p));
                              }
                            });
}

void TorusNet::dmaPut(int srcNode, PAddr srcPa, int dstNode, PAddr dstPa,
                      std::uint64_t bytes,
                      std::function<void()> onRemoteDelivered,
                      std::function<void()> onLocalComplete) {
  engine_.sharedOp([this, srcNode, srcPa, dstNode, dstPa, bytes,
                    rd = std::move(onRemoteDelivered),
                    lc = std::move(onLocalComplete)]() mutable {
    dmaPutNow(srcNode, srcPa, dstNode, dstPa, bytes, std::move(rd),
              std::move(lc));
  });
}

void TorusNet::dmaPutNow(int srcNode, PAddr srcPa, int dstNode, PAddr dstPa,
                         std::uint64_t bytes,
                         std::function<void()>&& onRemoteDelivered,
                         std::function<void()>&& onLocalComplete) {
  Node* src = nodes_.at(srcNode);
  Node* dst = nodes_.at(dstNode);
  bytesMoved_ += bytes;

  if (srcNode == dstNode) {
    // Local loopback: memory-to-memory copy through the DMA engine.
    std::vector<std::byte> buf(bytes);
    src->mem().read(srcPa, buf);
    dst->mem().write(dstPa, buf);
    const sim::Cycle done =
        engine_.now() + cfg_.dmaInjectCost +
        static_cast<sim::Cycle>(static_cast<double>(bytes) /
                                cfg_.bytesPerCycle / 4.0);
    engine_.scheduleAtForNode(srcNode, done,
                              [cb = std::move(onRemoteDelivered)] {
                                if (cb) cb();
                              });
    engine_.scheduleAtForNode(srcNode, done,
                              [cb = std::move(onLocalComplete)] {
                                if (cb) cb();
                              });
    return;
  }

  auto [start, arrive] = reserveRoute(srcNode, dstNode, bytes);
  arrive += faultRecoveryDelay(srcNode, bytes);
  const sim::Cycle injectDone =
      std::max(start, engine_.now() + cfg_.dmaInjectCost) +
      static_cast<sim::Cycle>(static_cast<double>(bytes) /
                              cfg_.bytesPerCycle);

  // The payload is captured at injection time (the DMA streams from
  // memory as it goes; we snapshot at send which is equivalent for
  // correct programs that do not scribble on in-flight buffers).
  std::vector<std::byte> buf(bytes);
  src->mem().read(srcPa, buf);

  engine_.scheduleAtForNode(
      dstNode, arrive + cfg_.dmaInjectCost + cfg_.dmaRecvCost,
      [dst, dstPa, buf = std::move(buf),
       cb = std::move(onRemoteDelivered)]() mutable {
        dst->mem().write(dstPa, buf);
        if (cb) cb();
      });
  engine_.scheduleAtForNode(srcNode, injectDone,
                            [cb = std::move(onLocalComplete)] {
                              if (cb) cb();
                            });
}

void TorusNet::dmaGet(int srcNode, PAddr localPa, int dstNode,
                      PAddr remotePa, std::uint64_t bytes,
                      std::function<void()> onComplete) {
  engine_.sharedOp([this, srcNode, localPa, dstNode, remotePa, bytes,
                    cb = std::move(onComplete)]() mutable {
    dmaGetNow(srcNode, localPa, dstNode, remotePa, bytes, std::move(cb));
  });
}

void TorusNet::dmaGetNow(int srcNode, PAddr localPa, int dstNode,
                         PAddr remotePa, std::uint64_t bytes,
                         std::function<void()>&& onComplete) {
  // A get is a small request packet followed by a put coming back.
  auto [reqStart, reqArrive] = reserveRoute(srcNode, dstNode, 32);
  (void)reqStart;
  reqArrive += faultRecoveryDelay(srcNode, 32);
  engine_.scheduleAtForNode(
      dstNode, reqArrive + cfg_.dmaRecvCost,
      [this, srcNode, localPa, dstNode, remotePa, bytes,
       cb = std::move(onComplete)]() mutable {
        // dmaPut re-enters via sharedOp, so the reverse transfer's
        // link reservations merge deterministically even though this
        // request-arrival event runs on the destination's lane.
        dmaPut(dstNode, remotePa, srcNode, localPa, bytes,
               std::move(cb), nullptr);
      });
}

}  // namespace bg::hw

#include "hw/torus.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#include "hw/node.hpp"

namespace bg::hw {

namespace {
std::uint64_t linkKey(int nodeId, int dim, bool positive) {
  return (static_cast<std::uint64_t>(nodeId) << 3) |
         (static_cast<std::uint64_t>(dim) << 1) | (positive ? 1u : 0u);
}
}  // namespace

void TorusNet::attachNode(int nodeId, Node* node) {
  nodes_[nodeId] = node;
  node->coords = coordsOf(nodeId);
}

std::array<int, 3> TorusNet::coordsOf(int nodeId) const {
  const int x = nodeId % cfg_.dims[0];
  const int y = (nodeId / cfg_.dims[0]) % cfg_.dims[1];
  const int z = nodeId / (cfg_.dims[0] * cfg_.dims[1]);
  return {x, y, z};
}

int TorusNet::minimalHops(int a, int b) const {
  const auto ca = coordsOf(a);
  const auto cb = coordsOf(b);
  int total = 0;
  for (int d = 0; d < 3; ++d) {
    const int size = cfg_.dims[d];
    const int diff = std::abs(ca[d] - cb[d]);
    total += std::min(diff, size - diff);  // torus wraps
  }
  return total;
}

int TorusNet::hops(int a, int b) const {
  if (faults_ != nullptr && faults_->anyDead()) {
    if (a == b) return 0;
    const std::vector<Hop>* path = routeFor(a, b);
    return path != nullptr ? static_cast<int>(path->size()) : -1;
  }
  return minimalHops(a, b);
}

int TorusNet::neighborOf(int nodeId, int dim, bool positive) const {
  auto c = coordsOf(nodeId);
  const int size = cfg_.dims[dim];
  c[dim] = (c[dim] + (positive ? 1 : size - 1)) % size;
  return nodeIdOf(c);
}

bool TorusNet::linkDead(int nodeId, int dim, bool positive) const {
  return faults_ != nullptr && faults_->isDead(linkKey(nodeId, dim, positive));
}

bool TorusNet::killLink(int nodeId, int dim, bool positive) {
  if (faults_ == nullptr || dim < 0 || dim >= 3) return false;
  if (cfg_.dims[dim] <= 1) return false;  // no such ring
  const int total = cfg_.dims[0] * cfg_.dims[1] * cfg_.dims[2];
  if (nodeId < 0 || nodeId >= total) return false;
  if (!faults_->markDead(linkKey(nodeId, dim, positive))) return false;
  routeCache_.clear();  // detour table is recomputed lazily
  if (linkEvent_) linkEvent_(nodeId, dim, positive, /*dead=*/true);
  return true;
}

bool TorusNet::degradeLink(int nodeId, int dim, bool positive, int retries) {
  if (faults_ == nullptr || dim < 0 || dim >= 3) return false;
  if (cfg_.dims[dim] <= 1) return false;
  const int total = cfg_.dims[0] * cfg_.dims[1] * cfg_.dims[2];
  if (nodeId < 0 || nodeId >= total) return false;
  faults_->markDegraded(linkKey(nodeId, dim, positive), retries);
  if (linkEvent_ && retries > 0) {
    linkEvent_(nodeId, dim, positive, /*dead=*/false);
  }
  return true;
}

const std::vector<TorusNet::Hop>* TorusNet::routeFor(int src, int dst) const {
  const std::uint64_t key = (static_cast<std::uint64_t>(
                                 static_cast<std::uint32_t>(src))
                             << 32) |
                            static_cast<std::uint32_t>(dst);
  auto it = routeCache_.find(key);
  if (it == routeCache_.end()) {
    // BFS over the healthy directed-link graph. Neighbor order is
    // fixed (dim 0..2, positive before negative) and nodes are visited
    // in queue order, so the detour table is a pure function of the
    // dead-link set — the determinism the double-run oracle pins.
    const int total = cfg_.dims[0] * cfg_.dims[1] * cfg_.dims[2];
    std::vector<Hop> via(static_cast<std::size_t>(total),
                         Hop{-1, 0, false});
    std::vector<int> frontier{src};
    via[static_cast<std::size_t>(src)] = Hop{src, 0, false};
    bool found = src == dst;
    while (!frontier.empty() && !found) {
      std::vector<int> next;
      for (const int n : frontier) {
        for (int d = 0; d < 3 && !found; ++d) {
          if (cfg_.dims[d] <= 1) continue;  // size-1 ring: no links
          for (const bool positive : {true, false}) {
            if (faults_->isDead(linkKey(n, d, positive))) continue;
            const int m = neighborOf(n, d, positive);
            if (via[static_cast<std::size_t>(m)].node >= 0 || m == src) {
              continue;  // already reached
            }
            via[static_cast<std::size_t>(m)] = Hop{n, d, positive};
            next.push_back(m);
            if (m == dst) {
              found = true;
              break;
            }
          }
        }
        if (found) break;
      }
      frontier = std::move(next);
    }
    std::vector<Hop> path;
    if (found && src != dst) {
      for (int n = dst; n != src;) {
        const Hop& h = via[static_cast<std::size_t>(n)];
        path.push_back(h);
        n = h.node;
      }
      std::reverse(path.begin(), path.end());
    }
    it = routeCache_.emplace(key, std::move(path)).first;
  }
  if (src != dst && it->second.empty()) return nullptr;  // unreachable
  return &it->second;
}

std::pair<sim::Cycle, sim::Cycle> TorusNet::reserveRoute(
    int src, int dst, std::uint64_t bytes) {
  const sim::Cycle ser = static_cast<sim::Cycle>(
      static_cast<double>(bytes) / cfg_.bytesPerCycle);
  // Degraded links inflate their reservation by `retries` CRC
  // retransmit rounds; the lookup is gated so a clean machine pays
  // nothing on the hot path.
  const bool anyDegraded = faults_ != nullptr && faults_->anyDegraded();
  sim::Cycle retryExtra = 0;
  sim::Cycle start = engine_.now();
  int hopCount = 0;

  auto reserveLink = [&](std::uint64_t key) {
    sim::Cycle linkSer = ser;
    if (anyDegraded) {
      const int deg = faults_->degradeOf(key);
      if (deg > 0) {
        const sim::Cycle penalty =
            static_cast<sim::Cycle>(deg) * (ser + 2 * cfg_.hopLatency);
        linkSer += penalty;
        retryExtra += penalty;
        faults_->chargeRetries(key, deg);
      }
    }
    sim::Cycle& busy = linkBusyUntil_[key];
    start = std::max(start, busy);
    busy = start + linkSer;
    ++hopCount;
  };

  if (faults_ != nullptr && faults_->anyDead()) {
    // Route-around mode: walk the deterministic detour route.
    if (src != dst) {
      const std::vector<Hop>* path = routeFor(src, dst);
      if (path == nullptr) {
        ++unroutable_;
        return {start, kUnreachable};
      }
      for (const Hop& h : *path) {
        reserveLink(linkKey(h.node, h.dim, h.positive));
      }
      const int minimal = minimalHops(src, dst);
      if (hopCount > minimal) {
        ++detours_;
        detourHops_ += static_cast<std::uint64_t>(hopCount - minimal);
      }
    }
  } else {
    // Dimension-order routing; each directed link on the route is
    // reserved for the serialization time, pushing start past any
    // in-flight transfer sharing a link.
    auto cur = coordsOf(src);
    const auto target = coordsOf(dst);
    int curId = src;
    for (int d = 0; d < 3; ++d) {
      while (cur[d] != target[d]) {
        const int size = cfg_.dims[d];
        int fwd = (target[d] - cur[d] + size) % size;
        const bool positive = fwd <= size / 2;
        reserveLink(linkKey(curId, d, positive));
        cur[d] = (cur[d] + (positive ? 1 : size - 1)) % size;
        // Recompute node id from coords.
        curId = nodeIdOf(cur);
      }
    }
  }
  const sim::Cycle arrive = start + ser +
                            cfg_.hopLatency * static_cast<sim::Cycle>(hopCount) +
                            retryExtra;
  return {start, arrive};
}

sim::Cycle TorusNet::faultRecoveryDelay(int srcNode, std::uint64_t bytes) {
  if (faults_ == nullptr || !faults_->anyEnabled()) return 0;
  const LinkFaultOutcome f =
      faults_->judge(static_cast<std::uint64_t>(srcNode) << 3, bytes);
  sim::Cycle extra = f.extraDelay;
  if (f.drop || f.corrupt) {
    // Link-level CRC retransmit: the packet is re-serialized after a
    // NACK turnaround; software above never sees the loss.
    extra += static_cast<sim::Cycle>(static_cast<double>(bytes) /
                                     cfg_.bytesPerCycle) +
             2 * cfg_.hopLatency;
  }
  return extra;
}

void TorusNet::sendPacket(TorusPacket packet) {
  engine_.sharedOp([this, p = std::move(packet)]() mutable {
    sendPacketNow(std::move(p));
  });
}

void TorusNet::sendPacketNow(TorusPacket&& packet) {
  auto [start, arrive] =
      reserveRoute(packet.srcNode, packet.dstNode, packet.payload.size());
  (void)start;
  if (arrive == kUnreachable) return;  // no healthy route; counted
  arrive += faultRecoveryDelay(packet.srcNode, packet.payload.size());
  bytesMoved_ += packet.payload.size();
  const int dst = packet.dstNode;
  engine_.scheduleAtForNode(dst, arrive + cfg_.dmaRecvCost,
                            [this, p = std::move(packet)]() mutable {
                              auto it = handlers_.find(p.dstNode);
                              if (it != handlers_.end() && it->second) {
                                it->second(std::move(p));
                              }
                            });
}

void TorusNet::dmaPut(int srcNode, PAddr srcPa, int dstNode, PAddr dstPa,
                      std::uint64_t bytes,
                      std::function<void()> onRemoteDelivered,
                      std::function<void()> onLocalComplete) {
  engine_.sharedOp([this, srcNode, srcPa, dstNode, dstPa, bytes,
                    rd = std::move(onRemoteDelivered),
                    lc = std::move(onLocalComplete)]() mutable {
    dmaPutNow(srcNode, srcPa, dstNode, dstPa, bytes, std::move(rd),
              std::move(lc));
  });
}

void TorusNet::dmaPutNow(int srcNode, PAddr srcPa, int dstNode, PAddr dstPa,
                         std::uint64_t bytes,
                         std::function<void()>&& onRemoteDelivered,
                         std::function<void()>&& onLocalComplete) {
  Node* src = nodes_.at(srcNode);
  Node* dst = nodes_.at(dstNode);
  bytesMoved_ += bytes;

  if (srcNode == dstNode) {
    // Local loopback: memory-to-memory copy through the DMA engine.
    std::vector<std::byte> buf(bytes);
    src->mem().read(srcPa, buf);
    dst->mem().write(dstPa, buf);
    const sim::Cycle done =
        engine_.now() + cfg_.dmaInjectCost +
        static_cast<sim::Cycle>(static_cast<double>(bytes) /
                                cfg_.bytesPerCycle / 4.0);
    engine_.scheduleAtForNode(srcNode, done,
                              [cb = std::move(onRemoteDelivered)] {
                                if (cb) cb();
                              });
    engine_.scheduleAtForNode(srcNode, done,
                              [cb = std::move(onLocalComplete)] {
                                if (cb) cb();
                              });
    return;
  }

  auto [start, arrive] = reserveRoute(srcNode, dstNode, bytes);
  if (arrive == kUnreachable) {
    // The destination fell off the healthy graph: the payload is lost
    // but the injection FIFO still drains, so the source's completion
    // counter advances and the app is not wedged on its own send.
    engine_.scheduleAtForNode(srcNode, engine_.now() + cfg_.dmaInjectCost,
                              [cb = std::move(onLocalComplete)] {
                                if (cb) cb();
                              });
    return;
  }
  arrive += faultRecoveryDelay(srcNode, bytes);
  const sim::Cycle injectDone =
      std::max(start, engine_.now() + cfg_.dmaInjectCost) +
      static_cast<sim::Cycle>(static_cast<double>(bytes) /
                              cfg_.bytesPerCycle);

  // The payload is captured at injection time (the DMA streams from
  // memory as it goes; we snapshot at send which is equivalent for
  // correct programs that do not scribble on in-flight buffers).
  std::vector<std::byte> buf(bytes);
  src->mem().read(srcPa, buf);

  engine_.scheduleAtForNode(
      dstNode, arrive + cfg_.dmaInjectCost + cfg_.dmaRecvCost,
      [dst, dstPa, buf = std::move(buf),
       cb = std::move(onRemoteDelivered)]() mutable {
        dst->mem().write(dstPa, buf);
        if (cb) cb();
      });
  engine_.scheduleAtForNode(srcNode, injectDone,
                            [cb = std::move(onLocalComplete)] {
                              if (cb) cb();
                            });
}

void TorusNet::dmaGet(int srcNode, PAddr localPa, int dstNode,
                      PAddr remotePa, std::uint64_t bytes,
                      std::function<void()> onComplete) {
  engine_.sharedOp([this, srcNode, localPa, dstNode, remotePa, bytes,
                    cb = std::move(onComplete)]() mutable {
    dmaGetNow(srcNode, localPa, dstNode, remotePa, bytes, std::move(cb));
  });
}

void TorusNet::dmaGetNow(int srcNode, PAddr localPa, int dstNode,
                         PAddr remotePa, std::uint64_t bytes,
                         std::function<void()>&& onComplete) {
  // A get is a small request packet followed by a put coming back.
  auto [reqStart, reqArrive] = reserveRoute(srcNode, dstNode, 32);
  (void)reqStart;
  if (reqArrive == kUnreachable) return;  // request lost; counted
  reqArrive += faultRecoveryDelay(srcNode, 32);
  engine_.scheduleAtForNode(
      dstNode, reqArrive + cfg_.dmaRecvCost,
      [this, srcNode, localPa, dstNode, remotePa, bytes,
       cb = std::move(onComplete)]() mutable {
        // dmaPut re-enters via sharedOp, so the reverse transfer's
        // link reservations merge deterministically even though this
        // request-arrival event runs on the destination's lane.
        dmaPut(dstNode, remotePa, srcNode, localPa, bytes,
               std::move(cb), nullptr);
      });
}

}  // namespace bg::hw

// Hardware-level thread context: what a core needs to run a thread.
//
// Kernel-side thread objects (bg::kernel::Thread) own one of these;
// the core only ever sees the ThreadCtx.
#pragma once

#include <cstdint>
#include <vector>

#include "vm/program.hpp"

namespace bg::hw {

enum class ThreadState : std::uint8_t {
  kReady,    // runnable, not currently on a core
  kRunning,  // bound to a core and executing
  kBlocked,  // waiting (futex, I/O reply, DMA, join, ...)
  kHalted,   // exited
  kFaulted,  // killed by an unhandled fault
};

struct SavedFrame {
  std::uint64_t pc;
  std::uint64_t regs[vm::kNumRegs];
};

struct ThreadCtx {
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;

  std::uint64_t regs[vm::kNumRegs] = {};
  std::uint64_t pc = 0;
  const vm::Program* prog = nullptr;

  ThreadState state = ThreadState::kReady;
  int coreAffinity = -1;  // hardware core this thread is pinned/assigned to

  /// If true, a block (futex/yield) lets the core switch to a sibling
  /// thread; if false (CNK I/O syscalls) the core spins in-kernel.
  bool yieldOnBlock = true;

  std::int64_t exitStatus = 0;

  /// Host-visible sample sink for the kSample instruction (no simulated
  /// cost beyond the instruction itself). Owned by the experiment
  /// harness; may be null.
  std::vector<std::uint64_t>* samples = nullptr;

  /// Signal-frame stack for nested handler execution.
  std::vector<SavedFrame> sigStack;

  /// Opaque pointer back to the owning kernel thread object.
  void* owner = nullptr;

  /// Cumulative retired-instruction count (metrics/debug).
  std::uint64_t instrRetired = 0;

  bool runnable() const {
    return state == ThreadState::kReady || state == ThreadState::kRunning;
  }
  bool done() const {
    return state == ThreadState::kHalted || state == ThreadState::kFaulted;
  }

  void pushSignalFrame() {
    SavedFrame f;
    f.pc = pc;
    for (int i = 0; i < vm::kNumRegs; ++i) f.regs[i] = regs[i];
    sigStack.push_back(f);
  }
  /// Returns false if there was no frame to pop.
  bool popSignalFrame() {
    if (sigStack.empty()) return false;
    const SavedFrame& f = sigStack.back();
    pc = f.pc;
    for (int i = 0; i < vm::kNumRegs; ++i) regs[i] = f.regs[i];
    sigStack.pop_back();
    return true;
  }
};

}  // namespace bg::hw

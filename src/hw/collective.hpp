// Collective (tree) network model.
//
// On BG/P the tree connects compute nodes to their I/O node and has an
// ALU for combining operations. Two services are modelled:
//  - point-to-point packets CN <-> ION (the CIOD function-shipping
//    transport, paper Fig 2), with per-node uplink serialization;
//  - hardware combine/broadcast ("allreduce") over a participant group,
//    completing a fixed pipeline latency after the LAST contributor
//    arrives — which is exactly how OS noise on one node becomes
//    everyone's collective latency (paper §V-A/V-D).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "hw/link_fault.hpp"
#include "sim/engine.hpp"
#include "sim/types.hpp"

namespace bg::hw {

struct CollPacket {
  int srcNode = 0;
  int dstNode = 0;
  std::uint32_t channel = 0;  // receiver demux tag
  std::vector<std::byte> payload;
};

struct CollectiveConfig {
  sim::Cycle perHopLatency = 250;   // per tree hop
  double bytesPerCycle = 0.8;       // ~700MB/s at 850MHz
  int treeDepth = 4;                // CN -> ION hops
};

class CollectiveNet {
 public:
  using PacketHandler = std::function<void(CollPacket&&)>;
  using ReduceHandler = std::function<void(const std::vector<double>&)>;

  CollectiveNet(sim::Engine& engine, const CollectiveConfig& cfg)
      : engine_(engine), cfg_(cfg) {}

  void setHandler(int nodeId, PacketHandler h) {
    handlers_[nodeId] = std::move(h);
  }

  /// Send a packet; delivery is scheduled per the latency/serialization
  /// model. Payload bytes are moved, not copied. When a fault model is
  /// attached (link key = source node id) the packet may be dropped
  /// (serialization is still charged — the bytes went onto the wire),
  /// corrupted in place, delayed, or delivered twice.
  void send(CollPacket packet);

  /// Attach a seeded fault model; nullptr detaches. Not owned.
  void setFaultModel(LinkFaultModel* m) { faults_ = m; }
  LinkFaultModel* faultModel() const { return faults_; }

  /// Contribute to a double-sum combine over `groupSize` participants
  /// identified by groupId. When the last contribution arrives, every
  /// contributor's handler fires after the pipeline latency.
  void contribute(std::uint64_t groupId, int nodeId,
                  std::vector<double> values, int groupSize,
                  ReduceHandler onResult);

  const CollectiveConfig& config() const { return cfg_; }
  std::uint64_t packetsDelivered() const { return packetsDelivered_; }
  std::uint64_t bytesDelivered() const { return bytesDelivered_; }

 private:
  struct Reduction {
    std::vector<double> sum;
    int arrived = 0;
    int expected = 0;
    std::vector<std::pair<int, ReduceHandler>> waiters;
  };

  sim::Cycle serialize(std::uint64_t bytes) const {
    return static_cast<sim::Cycle>(
        static_cast<double>(bytes) / cfg_.bytesPerCycle);
  }

  void deliver(CollPacket&& p);
  /// Bodies of send/contribute; run serially (directly in plain mode,
  /// via the engine's shared-op merge in lane mode) because they touch
  /// cross-node state: uplink serialization, reductions, fault draws.
  void sendNow(CollPacket&& packet);
  void contributeNow(std::uint64_t groupId, int nodeId,
                     std::vector<double>&& values, int groupSize,
                     ReduceHandler&& onResult);
  void scheduleDelivery(sim::Cycle when, CollPacket&& p);

  sim::Engine& engine_;
  CollectiveConfig cfg_;
  LinkFaultModel* faults_ = nullptr;
  std::unordered_map<int, PacketHandler> handlers_;
  std::unordered_map<int, sim::Cycle> uplinkBusyUntil_;
  std::map<std::uint64_t, Reduction> reductions_;
  std::uint64_t packetsDelivered_ = 0;
  std::uint64_t bytesDelivered_ = 0;
};

}  // namespace bg::hw

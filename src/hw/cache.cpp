#include "hw/cache.hpp"

#include <cassert>

#include "hw/mem_fault.hpp"

namespace bg::hw {

CacheArray::CacheArray(std::uint64_t sizeBytes, std::uint32_t lineBytes,
                       std::uint32_t ways)
    : lineBytes_(lineBytes), ways_(ways) {
  assert(sizeBytes % (static_cast<std::uint64_t>(lineBytes) * ways) == 0);
  sets_ = static_cast<std::uint32_t>(sizeBytes / lineBytes / ways);
  lines_.resize(static_cast<std::size_t>(sets_) * ways_);
}

bool CacheArray::accessSlow(std::uint64_t lineAddr) {
  ++stats_.accesses;
  const std::uint32_t set = static_cast<std::uint32_t>(lineAddr % sets_);
  const std::uint64_t tag = lineAddr / sets_;
  Line* base = &lines_[static_cast<std::size_t>(set) * ways_];
  ++useClock_;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      base[w].lastUse = useClock_;
      ++stats_.hits;
      lastLine_ = &base[w];
      lastLineAddr_ = lineAddr;
      return true;
    }
  }
  ++stats_.misses;
  // Fill: pick invalid or LRU way.
  Line* victim = base;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
    if (base[w].lastUse < victim->lastUse) victim = &base[w];
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lastUse = useClock_;
  lastLine_ = victim;
  lastLineAddr_ = lineAddr;
  return false;
}

void CacheArray::flushAll() {
  lastLine_ = nullptr;
  for (Line& l : lines_) l.valid = false;
}

// Out of line so the header (and the inline access() fast path) stays
// free of the fault model. A line fill is the natural injection point:
// parity is checked when the line is brought in and first used.
bool CacheArray::judgeParity() {
  if (faults_ == nullptr) return false;
  return faults_->judgeParity(nodeId_);
}

SharedCache::SharedCache(const SharedCacheConfig& cfg) : cfg_(cfg) {
  assert(cfg_.banks >= 1);
  for (std::uint32_t b = 0; b < cfg_.banks; ++b) {
    bankArrays_.emplace_back(cfg_.sizeBytes / cfg_.banks, cfg_.lineBytes,
                             cfg_.ways);
  }
  bankBusyUntil_.assign(cfg_.banks, 0);
  bankAccesses_.assign(cfg_.banks, 0);
}

std::uint32_t SharedCache::bankOf(PAddr pa) const {
  const std::uint64_t line = pa / cfg_.lineBytes;
  switch (cfg_.bankMap) {
    case BankMap::kDirect:
      return static_cast<std::uint32_t>(line % cfg_.banks);
    case BankMap::kXorFold: {
      // Fold three disjoint bit groups; resists power-of-two strides.
      const std::uint64_t f = line ^ (line >> 7) ^ (line >> 13);
      return static_cast<std::uint32_t>(f % cfg_.banks);
    }
    case BankMap::kHighBits:
      // High bits of a contiguous allocation barely vary: most traffic
      // lands in one bank. This is the "bad mapping" the design-time
      // studies were screening for.
      return static_cast<std::uint32_t>((pa >> 22) % cfg_.banks);
  }
  return 0;
}

SharedCache::Result SharedCache::access(PAddr pa, sim::Cycle now) {
  const std::uint32_t bank = bankOf(pa);
  ++bankAccesses_[bank];
  ++stats_.accesses;
  sim::Cycle stall = 0;
  if (bankBusyUntil_[bank] > now) {
    stall = bankBusyUntil_[bank] - now;
    ++conflicts_;
  }
  bankBusyUntil_[bank] = now + stall + cfg_.bankBusy;
  const bool hit = bankArrays_[bank].access(pa);
  if (hit) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
  }
  return Result{hit, stall};
}

void SharedCache::flushAll() {
  for (CacheArray& a : bankArrays_) a.flushAll();
}

void SharedCache::resetStats() {
  stats_ = {};
  conflicts_ = 0;
  bankAccesses_.assign(cfg_.banks, 0);
  for (CacheArray& a : bankArrays_) a.resetStats();
}

}  // namespace bg::hw

// Lightweight coredump for a clean CNK panic.
//
// When an uncorrectable machine check fires, CNK cannot trust DDR —
// so instead of a full memory image it writes a compact, fully
// deterministic summary: the syndrome (kind + faulting physical
// address + core), every process's thread table with architectural
// registers, and the static region map (paper Fig 3). The bytes are a
// pure function of kernel state at panic time, so the same seed
// yields a bit-identical dump — the coredump file itself is one of
// the fault plane's determinism witnesses.
//
// The dump ships to the I/O node over the normal function-shipping
// path (mkdir/creat/write/close) and lands as /cores/node<N>.core in
// the CIOD's filesystem.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "hw/node.hpp"
#include "sim/types.hpp"

namespace bg::kernel {
class KernelBase;
}

namespace bg::cnk {

inline constexpr std::uint32_t kCoredumpMagic = 0x42474331;  // "BGC1"

/// Serialize the panic summary. `now` is stamped into the header so a
/// dump identifies the panic instant.
std::vector<std::byte> buildCoredump(kernel::KernelBase& kern,
                                     const hw::McSyndrome& syn,
                                     sim::Cycle now);

/// Where node `nodeId`'s dump lands on the I/O node's filesystem.
std::string coredumpPath(int nodeId);

}  // namespace bg::cnk

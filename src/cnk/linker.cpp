#include "cnk/linker.hpp"

#include <utility>

#include "cnk/cnk_kernel.hpp"
#include "sim/hash.hpp"

namespace bg::cnk {

using kernel::Thread;

hw::HandlerResult Linker::dlopen(Thread& t, const std::string& libName) {
  // ld.so model (§IV-B2): open the library file on the I/O node,
  // read the WHOLE image (MAP_COPY semantics — no demand paging), close
  // it, then map text+data into the process. The calling thread blocks
  // through the entire sequence: the load cost is contained in dlopen,
  // not smeared over compute as page-fault noise.
  auto img = kern_.libImage(libName);
  if (img == nullptr) {
    return hw::HandlerResult::done(
        static_cast<std::uint64_t>(-kernel::kENOENT), 120);
  }

  Thread* tp = &t;
  const std::string path = "/lib/" + libName;
  const sim::Cycle cost = kern_.fship().shipRaw(
      io::FsOp::kOpen, t.ctx.pid, t.ctx.tid, kernel::kORdonly, 0, 0, path,
      {}, [this, tp, name = libName](io::FsReply&& rep) {
        if (rep.result < 0) {
          kern_.wakeThread(*tp, static_cast<std::uint64_t>(rep.result));
          return;
        }
        step2Read(*tp, name, rep.result);
      });

  t.ctx.state = hw::ThreadState::kBlocked;
  t.ctx.yieldOnBlock = false;
  return hw::HandlerResult::blocked(300 + cost);
}

void Linker::step2Read(Thread& t, const std::string& name, std::int64_t fd) {
  auto img = kern_.libImage(name);
  const std::uint64_t want = img->textContents().size();
  Thread* tp = &t;
  kern_.fship().shipRaw(
      io::FsOp::kRead, t.ctx.pid, t.ctx.tid,
      static_cast<std::uint64_t>(fd), want, 0, {}, {},
      [this, tp, name, fd](io::FsReply&& rep) {
        if (rep.result < 0) {
          kern_.wakeThread(*tp, static_cast<std::uint64_t>(rep.result));
          return;
        }
        step3CloseAndMap(*tp, name, fd, std::move(rep.payload));
      });
}

void Linker::step3CloseAndMap(Thread& t, const std::string& name,
                              std::int64_t fd,
                              std::vector<std::byte> image) {
  Thread* tp = &t;
  kern_.fship().shipRaw(
      io::FsOp::kClose, t.ctx.pid, t.ctx.tid,
      static_cast<std::uint64_t>(fd), 0, 0, {}, {},
      [this, tp, name, image = std::move(image)](io::FsReply&&) mutable {
        auto img = kern_.libImage(name);
        kernel::Process& p = tp->proc;
        MmapTracker& mt = kern_.mmapOf(p);

        const std::uint64_t textLen =
            hw::alignUp(std::max<std::uint64_t>(img->textBytes(), 4096),
                        4096);
        const std::uint64_t dataLen =
            hw::alignUp(std::max<std::uint64_t>(img->dataBytes(), 4096),
                        4096);
        const auto textBase = mt.alloc(textLen);
        const auto dataBase = mt.alloc(dataLen);
        if (!textBase || !dataBase) {
          kern_.wakeThread(*tp,
                           static_cast<std::uint64_t>(-kernel::kENOMEM));
          return;
        }

        // Copy the real image bytes into place. The text lands in
        // plain RW heap pages: read-only/executable protections are
        // deliberately NOT applied (§IV-B2) — the application could
        // scribble on this and CNK will not stop it.
        kern_.copyToUser(p, *textBase, image);

        LoadedLib lib;
        lib.name = name;
        lib.textBase = *textBase;
        lib.textSize = textLen;
        lib.dataBase = *dataBase;
        lib.dataSize = dataLen;
        lib.checksum = sim::hashBytes(image);
        const std::uint64_t handle = nextHandle_++;
        libs_[{p.pid(), handle}] = lib;

        // dlopen returns the mapped base (directly usable, like the
        // pointer a real dlopen hands back).
        kern_.wakeThread(*tp, *textBase);
      });
}

const LoadedLib* Linker::byHandle(std::uint32_t pid,
                                  std::uint64_t handle) const {
  auto it = libs_.find({pid, handle});
  return it == libs_.end() ? nullptr : &it->second;
}

const LoadedLib* Linker::byName(std::uint32_t pid,
                                const std::string& name) const {
  for (const auto& [key, lib] : libs_) {
    if (key.first == pid && lib.name == name) return &lib;
  }
  return nullptr;
}

std::size_t Linker::loadedCount(std::uint32_t pid) const {
  std::size_t n = 0;
  for (const auto& [key, lib] : libs_) {
    if (key.first == pid) ++n;
  }
  return n;
}

}  // namespace bg::cnk

#include "cnk/scheduler.hpp"

#include <algorithm>

namespace bg::cnk {

CnkScheduler::CnkScheduler(int cores, int maxThreadsPerCore)
    : maxThreadsPerCore_(maxThreadsPerCore),
      slots_(static_cast<std::size_t>(cores)) {}

bool CnkScheduler::assign(kernel::Thread& t, int core) {
  auto& slot = slots_[static_cast<std::size_t>(core)];
  if (static_cast<int>(slot.size()) >= maxThreadsPerCore_) return false;
  slot.push_back(&t);
  t.ctx.coreAffinity = core;
  return true;
}

void CnkScheduler::remove(kernel::Thread& t) {
  for (auto& slot : slots_) {
    slot.erase(std::remove(slot.begin(), slot.end(), &t), slot.end());
  }
}

int CnkScheduler::coreWithFreeSlot(
    std::uint32_t pid, const std::vector<int>& candidateCores) const {
  // Prefer an empty core of the process, then the least-loaded one.
  int best = -1;
  std::size_t bestLoad = static_cast<std::size_t>(maxThreadsPerCore_);
  for (int c : candidateCores) {
    const auto& slot = slots_[static_cast<std::size_t>(c)];
    (void)pid;
    if (slot.size() < bestLoad) {
      bestLoad = slot.size();
      best = c;
    }
  }
  return best;
}

kernel::Thread* CnkScheduler::pickNext(int core) {
  auto& slot = slots_[static_cast<std::size_t>(core)];
  // A thread spinning in-kernel (no-yield block) holds the core.
  for (kernel::Thread* t : slot) {
    if (t->ctx.state == hw::ThreadState::kBlocked && !t->ctx.yieldOnBlock) {
      return nullptr;
    }
  }
  for (kernel::Thread* t : slot) {
    if (t->ctx.runnable()) return t;
  }
  return nullptr;
}

void CnkScheduler::reapDone() {
  for (auto& slot : slots_) {
    slot.erase(std::remove_if(slot.begin(), slot.end(),
                              [](kernel::Thread* t) {
                                return t->ctx.done();
                              }),
               slot.end());
  }
}

void CnkScheduler::clear() {
  for (auto& slot : slots_) slot.clear();
}

}  // namespace bg::cnk

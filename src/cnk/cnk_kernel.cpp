#include "cnk/cnk_kernel.hpp"

#include <algorithm>
#include <cassert>

#include "cnk/coredump.hpp"
#include "io/vfs.hpp"

namespace bg::cnk {

using kernel::JobSpec;
using kernel::Process;
using kernel::Sys;
using kernel::Thread;
using hw::HandlerResult;

CnkKernel::CnkKernel(hw::Node& node, Config cfg)
    : KernelBase(node),
      cfg_(cfg),
      sched_(node.numCores(), cfg.maxThreadsPerCore),
      pendingGuard_(static_cast<std::size_t>(node.numCores())) {
  fship_ = std::make_unique<FshipClient>(*this, cfg_.ioNodeNetId,
                                         cfg_.fship);
  fship_->attach();
  linker_ = std::make_unique<Linker>(*this);
  clockStop_ = std::make_unique<hw::ClockStop>(node);
  // Persistent pool sits at the top of physical memory.
  const std::uint64_t poolBase = node.mem().size() - cfg_.persistPoolBytes;
  persist_.configurePool(poolBase, cfg_.persistPoolBytes, kPersistVBase);
}

CnkKernel::~CnkKernel() = default;

std::vector<kernel::BootPhase> CnkKernel::bootPhases() const {
  // Calibrated so that at the 10Hz VHDL-simulator rate of §III, a CNK
  // boot takes "a couple of hours" (~100K cycles / 10 Hz ~ 2.8h).
  return {
      {"firmware handoff / boot SRAM", 8'000},
      {"core + FPU init", 12'000},
      {"L2/L3 cache config", 9'000},
      {"DDR controller init", 15'000},
      {"torus/collective/barrier unit init", 18'000},
      {"static TLB map construction", 6'000},
      {"personality + service-node handshake", 20'000},
      {"runtime/CIOD channel init", 12'000},
  };
}

std::shared_ptr<kernel::ElfImage> CnkKernel::libImage(
    const std::string& name) const {
  auto it = libImages_.find(name);
  return it == libImages_.end() ? nullptr : it->second;
}

void CnkKernel::installRegionOnCores(const kernel::MemRegionDesc& r,
                                     std::uint32_t pid,
                                     const std::vector<int>& cores) {
  if (r.size == 0) return;
  const auto entries = tlbEntriesFor(r, pid);
  for (int c : cores) {
    for (const hw::TlbEntry& e : entries) {
      node_.core(c).mmu().install(e);
    }
  }
}

bool CnkKernel::loadJob(const JobSpec& spec) {
  if (!booted_ || spec.exe == nullptr) return false;

  PartitionRequest req;
  req.physBase = cfg_.kernelReservedBytes;
  req.physSize =
      node_.mem().size() - cfg_.kernelReservedBytes - cfg_.persistPoolBytes;
  req.processes = spec.processes;
  req.textBytes = spec.exe->textBytes();
  req.dataBytes = spec.exe->dataBytes();
  req.sharedBytes = spec.sharedMemBytes;
  part_ = partitionMemory(req);
  if (!part_.ok) return false;

  for (const auto& lib : spec.libs) libImages_[lib->name()] = lib;

  const int coresPerProc =
      std::max(1, node_.numCores() / std::max(1, spec.processes));

  // Per-job checkpoint identity: any in-flight attempt from a previous
  // job is already torn down (unloadJob), and the sequence space
  // restarts per job. A restoring load advances it again from the
  // applied image's sequence.
  ckpt_.jobId = spec.jobId;
  ckpt_.firstRank = spec.firstRank;
  ckpt_.nextSeq = 1;
  ckpt_.committedSeq = 0;
  std::vector<Process*> newProcs;

  for (int i = 0; i < spec.processes; ++i) {
    const ProcLayout& lay = part_.procs[static_cast<std::size_t>(i)];
    const std::uint32_t pid = allocPid();
    auto proc = std::make_unique<Process>(pid, spec.exe);
    Process& p = *proc;
    p.rank = spec.firstRank + i;
    p.nodeId = node_.id();
    p.regions = {lay.text, lay.data, lay.heapStack};
    if (lay.shared.size > 0) p.regions.push_back(lay.shared);

    // Copy the real text image into place and zero data.
    const auto& text = spec.exe->textContents();
    if (!text.empty()) node_.mem().write(lay.text.pbase, text);
    node_.mem().zero(lay.data.pbase, lay.data.size);

    // Heap/stack internal layout: brk zone low, mmap zone above it,
    // main stack at the very top (Fig 3).
    const hw::VAddr hsBase = lay.heapStack.vbase;
    const hw::VAddr hsEnd = lay.heapStack.vbase + lay.heapStack.size;
    p.heapBase = hsBase;
    // Initial brk leaves the program a 1MB scratch arena, so the
    // heap-boundary guard starts above it.
    p.brk = hsBase + (1ULL << 20);
    p.heapLimit = hsBase + lay.heapStack.size / 2;
    p.stackTop = hsEnd;
    p.sharedBase = lay.shared.size > 0 ? lay.shared.vbase : 0;
    mmap_[pid].reset(p.heapLimit, hsEnd - cfg_.mainStackBytes);

    // Core assignment: contiguous blocks (VN mode: one core each; SMP:
    // all cores to the single process).
    std::vector<int> cores;
    for (int c = i * coresPerProc;
         c < (i + 1) * coresPerProc && c < node_.numCores(); ++c) {
      cores.push_back(c);
    }
    if (spec.processes == 1) {
      cores.clear();
      for (int c = 0; c < node_.numCores(); ++c) cores.push_back(c);
    }
    procCores_[pid] = cores;

    installRegionOnCores(lay.text, pid, cores);
    installRegionOnCores(lay.data, pid, cores);
    installRegionOnCores(lay.heapStack, pid, cores);
    if (lay.shared.size > 0) installRegionOnCores(lay.shared, pid, cores);

    // Import persistent regions requested by the job.
    for (const std::string& name : spec.persistentRegions) {
      auto r = persist_.openOrCreate(name, hw::kPage1M, cfg_.jobUid);
      if (r) {
        kernel::MemRegionDesc d;
        d.name = "persist:" + name;
        d.vbase = r->vbase;
        d.pbase = r->pbase;
        d.size = r->size;
        d.perms = hw::kPermRW;
        d.pageSize = r->pageSize;
        p.regions.push_back(d);
        installRegionOnCores(d, pid, cores);
      }
    }

    // Main thread.
    Thread& main = p.addThread(allocTid());
    main.ctx.prog = &spec.exe->program();
    main.ctx.pc = 0;
    main.ctx.regs[1] = static_cast<std::uint64_t>(p.rank);
    main.ctx.regs[2] = 1;  // npes; the cluster harness overwrites this
    main.ctx.regs[10] = p.heapBase;
    main.ctx.regs[11] = p.stackTop;
    main.ctx.regs[12] = p.sharedBase;
    main.ctx.regs[13] = lay.data.vbase;
    main.ctx.regs[14] = p.heapLimit;
    main.ctx.state = hw::ThreadState::kReady;
    if (sampleSink_) main.ctx.samples = sampleSink_(p, 0);

    // Main-thread guard page at the heap boundary (Fig 4).
    main.guardLo = p.brk;
    main.guardHi = p.brk + cfg_.guardBytes;

    sched_.assign(main, cores.front());
    newProcs.push_back(&p);
    processes_.push_back(std::move(proc));
  }

  const bool restoring = spec.restore && cfg_.ioNodeNetId >= 0;
  if (restoring) {
    // Hold every main thread at the gate: the cores below get kicked
    // but find nothing runnable, and the restore chain (or its scratch
    // fallback) releases them.
    for (Process* p : newProcs) {
      if (Thread* m = p->mainThread()) {
        m->ctx.state = hw::ThreadState::kBlocked;
        m->ctx.yieldOnBlock = false;
      }
    }
  }

  for (auto& [pid, cores] : procCores_) {
    for (int c : cores) node_.core(c).kick();
  }
  logRas(kernel::RasEvent::Code::kJobLoaded,
         processes_.empty() ? 0 : processes_.back()->pid(), 0,
         static_cast<std::uint64_t>(spec.processes));

  if (restoring) {
    ckpt_.restorePending = true;
    restoreFromImageFile([this, newProcs](bool ok) {
      if (ok) return;  // threads resumed from the image, cores kicked
      // Scratch fallback: release the gate and run from the entry
      // point — a missing or torn image is never a wedge.
      for (Process* p : newProcs) {
        if (Thread* m = p->mainThread()) {
          if (m->ctx.state == hw::ThreadState::kBlocked) {
            m->ctx.state = hw::ThreadState::kReady;
            m->ctx.yieldOnBlock = true;
          }
        }
        for (int c : procCores_[p->pid()]) node_.core(c).kick();
      }
    });
  }
  return true;
}

void CnkKernel::unloadJob() {
  // Drop in-flight shipped I/O first: pending completions hold Thread
  // pointers that are about to be freed, and their watchdog timers
  // must not fire into a torn-down job.
  fship_->reset();
  // Abandon any in-flight checkpoint attempt or restore chain without
  // resolving it: the waiter threads are being destroyed and a
  // service-side requester resolves through its own deadline. The
  // lifetime counters and a committed on-disk image survive.
  ++ckpt_.gen;
  ckpt_.inProgress = false;
  ckpt_.restorePending = false;
  ckpt_.repolls = 0;
  ckpt_.waiters.clear();
  ckpt_.done = nullptr;
  for (auto& p : processes_) {
    for (const int c : procCores_[p->pid()]) {
      node_.core(c).mmu().invalidate(p->pid());
      node_.core(c).bind(nullptr);
    }
  }
  sched_.clear();
  processes_.clear();
  mmap_.clear();
  procCores_.clear();
  remoteProcOfCore_.clear();
  panicked_ = false;  // scrub/reboot path: the node may serve again
  // persist_ and its DRAM contents deliberately survive (§IV-D).
}

std::optional<hw::PAddr> CnkKernel::resolveUser(Process& p, hw::VAddr va) {
  return p.resolveStatic(va);
}

// ---------------------------------------------------------------------------
// Syscalls
// ---------------------------------------------------------------------------

hw::HandlerResult CnkKernel::syscall(hw::Core& core, hw::ThreadCtx& ctx,
                                     const hw::SyscallArgs& args) {
  Thread& t = threadOf(ctx);
  // getcwd must reflect the ioproxy's mirrored state (chdir is
  // function-shipped, so the authoritative cwd lives there) — route it
  // around the local-state common handler.
  if (static_cast<Sys>(args.nr) == Sys::kGetcwd) {
    return fship_->ship(t, io::FsOp::kGetcwd, 0, 0, 0, {}, {}, args.arg[0],
                        args.arg[1]);
  }
  if (auto r = commonSyscall(core, t, args)) {
    r->cost += cfg_.syscallBaseCost;
    return *r;
  }
  const sim::Cycle base = cfg_.syscallBaseCost;
  switch (static_cast<Sys>(args.nr)) {
    case Sys::kExit:
    case Sys::kExitGroup:
      return HandlerResult::halt(base);
    case Sys::kBrk:
      return sysBrk(t, args.arg[0]);
    case Sys::kMmap:
      return sysMmap(t, args);
    case Sys::kMunmap:
      return sysMunmap(t, args);
    case Sys::kMprotect:
      return sysMprotect(t, args);
    case Sys::kClone:
      return sysClone(core, t, args);
    case Sys::kFutex:
      return sysFutex(t, args);
    case Sys::kSchedYield: {
      // Rare in HPC; reschedule among the core's slot threads.
      t.ctx.state = hw::ThreadState::kReady;
      return HandlerResult::resched(base + 30);
    }
    case Sys::kNanosleep: {
      // CNK has no timer tick: a sleeping thread simply spins for the
      // requested duration (arg0 in microseconds).
      const sim::Cycle spin = sim::usToCycles(
          static_cast<double>(args.arg[0]));
      return HandlerResult::done(0, base + spin);
    }
    case Sys::kVirt2Phys: {
      // User-space DMA support: query the static map (§V-C). This is
      // the capability vanilla Linux cannot cheaply offer.
      const auto pa = resolveUser(t.proc, args.arg[0]);
      if (!pa) {
        return HandlerResult::done(
            static_cast<std::uint64_t>(-kernel::kEFAULT), base);
      }
      return HandlerResult::done(*pa, base + 20);
    }
    case Sys::kGetMemRegions:
      return HandlerResult::done(t.proc.regions.size(), base + 15);
    case Sys::kPersistOpen:
      return sysPersistOpen(t, args);
    case Sys::kRasEvent: {
      // Precise machine-check delivery: log the RAS event and signal
      // the calling thread immediately (the application's recovery
      // handler runs before anything else executes — §V-B).
      // Recoverable by construction (the handler scrubs and resumes),
      // so the control system sees a warning, not a node loss.
      logRas(kernel::RasEvent::Code::kMachineCheck,
             kernel::RasEvent::Severity::kWarn, t.proc.pid(), t.ctx.tid,
             t.ctx.pc);
      const sim::Cycle c = deliverSignal(t, kernel::kSigBus, t.ctx.pc);
      return HandlerResult::done(0, base + 200 + c);
    }
    case Sys::kClockStop: {
      // arg0 = absolute cycle to stop at (0 disarms).
      if (args.arg[0] == 0) {
        clockStop_->disarm();
        return HandlerResult::done(0, base + 25);
      }
      const bool ok = clockStop_->armAt(args.arg[0]);
      return HandlerResult::done(
          ok ? 0 : static_cast<std::uint64_t>(-kernel::kEINVAL),
          base + 25);
    }
    case Sys::kCkptSave:
      return sysCkptSave(t);
    case Sys::kCkptRestore:
      return sysCkptRestore(t);
    case Sys::kRead:
    case Sys::kWrite:
    case Sys::kOpen:
    case Sys::kClose:
    case Sys::kLseek:
    case Sys::kStat:
    case Sys::kUnlink:
    case Sys::kMkdir:
    case Sys::kChdir:
    case Sys::kDup:
      return sysFileIo(t, args);
    default:
      return HandlerResult::done(static_cast<std::uint64_t>(-kernel::kENOSYS),
                                 base);
  }
}

hw::HandlerResult CnkKernel::sysBrk(Thread& t, std::uint64_t newBrk) {
  Process& p = t.proc;
  const sim::Cycle base = cfg_.syscallBaseCost;
  if (newBrk == 0) return HandlerResult::done(p.brk, base + 10);
  if (newBrk < p.heapBase || newBrk > p.heapLimit) {
    return HandlerResult::done(p.brk, base + 10);  // Linux brk semantics
  }
  const bool growing = newBrk > p.brk;
  p.brk = newBrk;
  sim::Cycle cost = base + 25;
  if (growing) {
    // The heap boundary moved: the main-thread guard must follow it.
    // If the caller is not on the main thread's core, this takes an
    // IPI to reposition the DAC registers there (paper §IV-C).
    Thread* main = p.mainThread();
    if (main != nullptr && newBrk + cfg_.guardBytes > main->guardLo) {
      main->guardLo = p.brk;
      main->guardHi = p.brk + cfg_.guardBytes;
      const int mainCore = main->ctx.coreAffinity;
      if (mainCore >= 0 && mainCore != t.ctx.coreAffinity) {
        pendingGuard_[static_cast<std::size_t>(mainCore)] = {
            main->guardLo, main->guardHi};
        ++ipisSent_;
        node_.sendIpi(mainCore);
        cost += 60;
      } else if (mainCore >= 0) {
        applyGuardDac(node_.core(mainCore), *main);
        cost += 20;
      }
    }
  }
  return HandlerResult::done(p.brk, cost);
}

hw::HandlerResult CnkKernel::sysMmap(Thread& t, const hw::SyscallArgs& a) {
  Process& p = t.proc;
  MmapTracker& mt = mmap_[p.pid()];
  const std::uint64_t len = a.arg[1];
  const std::uint64_t flags = a.arg[3];
  const sim::Cycle base = cfg_.syscallBaseCost;

  if (len == 0) {
    return HandlerResult::done(static_cast<std::uint64_t>(-kernel::kEINVAL),
                               base);
  }

  if (flags & kernel::kMapAnonymous) {
    std::optional<hw::VAddr> addr;
    if (flags & kernel::kMapFixed) {
      if (mt.allocFixed(a.arg[0], len)) addr = a.arg[0];
    } else {
      addr = mt.alloc(len);
    }
    if (!addr) {
      return HandlerResult::done(
          static_cast<std::uint64_t>(-kernel::kENOMEM), base + 40);
    }
    // No page faults, no zeroing-on-fault: the static map means mmap
    // "merely provides free addresses" (§IV-C). Memory content at the
    // address is whatever physical memory held (zeroed at job load).
    return HandlerResult::done(*addr, base + 60);
  }

  // File-backed mmap: CNK copies in the data eagerly and allows only
  // read access (§VI-A). Implemented as a function-shipped read into
  // the allocated range.
  const auto addr = mt.alloc(len);
  if (!addr) {
    return HandlerResult::done(static_cast<std::uint64_t>(-kernel::kENOMEM),
                               base + 40);
  }
  const std::uint64_t fd = a.arg[4];
  Thread* tp = &t;
  CnkKernel* self = this;
  const hw::VAddr mapped = *addr;
  const sim::Cycle cost = fship_->shipRaw(
      io::FsOp::kRead, t.ctx.pid, t.ctx.tid, fd, len, 0, {}, {},
      [self, tp, mapped, len](io::FsReply&& rep) {
        if (rep.result > 0) {
          const std::size_t n = std::min<std::size_t>(
              rep.payload.size(), static_cast<std::size_t>(len));
          self->copyToUser(tp->proc, mapped,
                           std::span(rep.payload.data(), n));
          self->wakeThread(*tp, mapped);
        } else {
          self->mmap_[tp->proc.pid()].free(mapped,
                                           hw::alignUp(len, 4096));
          self->wakeThread(
              *tp, static_cast<std::uint64_t>(-kernel::kEACCES));
        }
      });
  t.ctx.state = hw::ThreadState::kBlocked;
  t.ctx.yieldOnBlock = false;
  return HandlerResult::blocked(base + cost);
}

hw::HandlerResult CnkKernel::sysMunmap(Thread& t, const hw::SyscallArgs& a) {
  MmapTracker& mt = mmap_[t.proc.pid()];
  const bool ok = mt.free(a.arg[0], hw::alignUp(a.arg[1], 4096));
  return HandlerResult::done(
      ok ? 0 : static_cast<std::uint64_t>(-kernel::kEINVAL),
      cfg_.syscallBaseCost + 50);
}

hw::HandlerResult CnkKernel::sysMprotect(Thread& t,
                                         const hw::SyscallArgs& a) {
  Process& p = t.proc;
  // CNK does not change hardware permissions (static map); it records
  // the range. NPTL calls mprotect(PROT_NONE) on the stack guard just
  // before clone, and CNK "remembers the last mprotect range and
  // assumes it applies to the new thread" (§IV-C).
  p.lastMprotectAddr = a.arg[0];
  p.lastMprotectLen = a.arg[1];
  mmap_[p.pid()].setProt(a.arg[0], a.arg[1],
                         static_cast<std::uint8_t>(a.arg[2] & 7));
  return HandlerResult::done(0, cfg_.syscallBaseCost + 30);
}

hw::HandlerResult CnkKernel::sysClone(hw::Core& core, Thread& t,
                                      const hw::SyscallArgs& a) {
  Process& p = t.proc;
  const std::uint64_t flags = a.arg[0];
  const sim::Cycle base = cfg_.syscallBaseCost;

  // Validate against the static NPTL flag set (§IV-B1). CNK supports
  // thread creation only — no fork/exec (§VII-B).
  if (flags != kernel::kNptlCloneFlags) {
    return HandlerResult::done(static_cast<std::uint64_t>(-kernel::kEINVAL),
                               base + 20);
  }

  // Pick a core: prefer this process's own cores; under the §VIII
  // extension a core designated to accept this process remotely also
  // qualifies.
  std::vector<int> candidates = procCores_[p.pid()];
  if (cfg_.remoteThreadExtension) {
    for (const auto& [c, pid] : remoteProcOfCore_) {
      if (pid == p.pid() &&
          std::find(candidates.begin(), candidates.end(), c) ==
              candidates.end()) {
        candidates.push_back(c);
      }
    }
  }
  int target = -1;
  for (int c : candidates) {
    if (static_cast<int>(sched_.threadCount(c)) <
        sched_.maxThreadsPerCore()) {
      // Prefer an idle core for the first thread on it.
      if (sched_.threadCount(c) == 0) {
        target = c;
        break;
      }
      if (target < 0) target = c;
    }
  }
  if (target < 0) {
    return HandlerResult::done(static_cast<std::uint64_t>(-kernel::kEAGAIN),
                               base + 30);
  }

  Thread& child = p.addThread(allocTid());
  child.ctx.prog = t.ctx.prog;
  child.ctx.pc = a.arg[5];  // start pc (set up by the pthread runtime)
  for (int i = 0; i < vm::kNumRegs; ++i) child.ctx.regs[i] = t.ctx.regs[i];
  child.ctx.regs[vm::kRetReg] = 0;  // clone returns 0 in the child
  child.ctx.regs[1] = a.arg[4];     // TLS pointer = thread argument
  child.ctx.state = hw::ThreadState::kReady;
  child.ctx.samples =
      sampleSink_
          ? sampleSink_(p, static_cast<int>(p.threads().size()) - 1)
          : nullptr;

  if (flags & kernel::kCloneChildCleartid) child.clearChildTid = a.arg[3];
  if (flags & kernel::kCloneParentSettid) {
    const auto pa = resolveUser(p, a.arg[2]);
    if (pa) node_.mem().write64(*pa, child.ctx.tid);
  }

  // Guard range: the last mprotect is assumed to cover the new
  // thread's stack guard (§IV-C).
  if (p.lastMprotectLen > 0) {
    child.guardLo = p.lastMprotectAddr;
    child.guardHi = p.lastMprotectAddr + p.lastMprotectLen;
    p.lastMprotectLen = 0;
  }

  sched_.assign(child, target);
  node_.core(target).kick();
  (void)core;
  return HandlerResult::done(child.ctx.tid, base + 400);
}

hw::HandlerResult CnkKernel::sysFutex(Thread& t, const hw::SyscallArgs& a) {
  const hw::VAddr uaddr = a.arg[0];
  const std::uint64_t op = a.arg[1];
  const std::uint64_t val = a.arg[2];
  const sim::Cycle base = cfg_.syscallBaseCost;
  Process& p = t.proc;

  if (op == kernel::kFutexWait) {
    const auto pa = resolveUser(p, uaddr);
    if (!pa) {
      return HandlerResult::done(static_cast<std::uint64_t>(-kernel::kEFAULT),
                                 base);
    }
    if (node_.mem().read64(*pa) != val) {
      return HandlerResult::done(static_cast<std::uint64_t>(-kernel::kEAGAIN),
                                 base + 30);
    }
    futex_.enqueue(p.pid(), uaddr, &t);
    t.ctx.state = hw::ThreadState::kBlocked;
    t.ctx.yieldOnBlock = true;  // futex blocks DO yield the core (§VI-C)
    return HandlerResult::blocked(base + 60);
  }
  if (op == kernel::kFutexWake) {
    auto woken = futex_.dequeue(p.pid(), uaddr, val == 0 ? 1 : val);
    for (Thread* w : woken) wakeThread(*w, 0);
    return HandlerResult::done(woken.size(), base + 40 + 25 * woken.size());
  }
  return HandlerResult::done(static_cast<std::uint64_t>(-kernel::kENOSYS),
                             base);
}

hw::HandlerResult CnkKernel::sysPersistOpen(Thread& t,
                                            const hw::SyscallArgs& a) {
  Process& p = t.proc;
  const sim::Cycle base = cfg_.syscallBaseCost;
  const auto name = readUserString(p, a.arg[0], 256);
  if (!name) {
    return HandlerResult::done(static_cast<std::uint64_t>(-kernel::kEFAULT),
                               base);
  }
  const auto r = persist_.openOrCreate(*name, a.arg[1], cfg_.jobUid);
  if (!r) {
    return HandlerResult::done(static_cast<std::uint64_t>(-kernel::kEACCES),
                               base + 60);
  }
  if (p.regionFor(r->vbase) == nullptr) {
    kernel::MemRegionDesc d;
    d.name = "persist:" + r->name;
    d.vbase = r->vbase;
    d.pbase = r->pbase;
    d.size = r->size;
    d.perms = hw::kPermRW;
    d.pageSize = r->pageSize;
    p.regions.push_back(d);
    installRegionOnCores(d, p.pid(), procCores_[p.pid()]);
  }
  return HandlerResult::done(r->vbase, base + 200);
}

hw::HandlerResult CnkKernel::sysFileIo(Thread& t, const hw::SyscallArgs& a) {
  Process& p = t.proc;
  const sim::Cycle base = cfg_.syscallBaseCost;
  using io::FsOp;
  switch (static_cast<Sys>(a.nr)) {
    case Sys::kWrite: {
      const std::uint64_t fd = a.arg[0];
      const std::uint64_t len = a.arg[2];
      std::vector<std::byte> buf(len);
      if (!copyFromUser(p, a.arg[1], buf)) {
        return HandlerResult::done(
            static_cast<std::uint64_t>(-kernel::kEFAULT), base);
      }
      if (fd == 1 || fd == 2) {
        // Console output: delivered to the host-visible console ring
        // (on real BG/P stdout also ships to CIOD; modelled locally so
        // examples can print without an I/O node configured).
        console_.append(reinterpret_cast<const char*>(buf.data()),
                        buf.size());
        return HandlerResult::done(len, base + 120 + len / 16);
      }
      return fship_->ship(t, FsOp::kWrite, fd, len, 0, {}, std::move(buf));
    }
    case Sys::kRead:
      return fship_->ship(t, FsOp::kRead, a.arg[0], a.arg[2], 0, {}, {},
                          a.arg[1], a.arg[2]);
    case Sys::kOpen: {
      const auto path = readUserString(p, a.arg[0]);
      if (!path) {
        return HandlerResult::done(
            static_cast<std::uint64_t>(-kernel::kEFAULT), base);
      }
      return fship_->ship(t, FsOp::kOpen, a.arg[1], 0, 0, *path, {});
    }
    case Sys::kClose:
      return fship_->ship(t, FsOp::kClose, a.arg[0], 0, 0, {}, {});
    case Sys::kLseek:
      return fship_->ship(t, FsOp::kLseek, a.arg[0], a.arg[1], a.arg[2], {},
                          {});
    case Sys::kStat: {
      const auto path = readUserString(p, a.arg[0]);
      if (!path) {
        return HandlerResult::done(
            static_cast<std::uint64_t>(-kernel::kEFAULT), base);
      }
      return fship_->ship(t, FsOp::kStat, 0, 0, 0, *path, {}, a.arg[1],
                          sizeof(io::FileStat));
    }
    case Sys::kUnlink: {
      const auto path = readUserString(p, a.arg[0]);
      if (!path) {
        return HandlerResult::done(
            static_cast<std::uint64_t>(-kernel::kEFAULT), base);
      }
      return fship_->ship(t, FsOp::kUnlink, 0, 0, 0, *path, {});
    }
    case Sys::kMkdir: {
      const auto path = readUserString(p, a.arg[0]);
      if (!path) {
        return HandlerResult::done(
            static_cast<std::uint64_t>(-kernel::kEFAULT), base);
      }
      return fship_->ship(t, FsOp::kMkdir, 0, 0, 0, *path, {});
    }
    case Sys::kChdir: {
      const auto path = readUserString(p, a.arg[0]);
      if (!path) {
        return HandlerResult::done(
            static_cast<std::uint64_t>(-kernel::kEFAULT), base);
      }
      return fship_->ship(t, FsOp::kChdir, 0, 0, 0, *path, {});
    }
    case Sys::kDup:
      return fship_->ship(t, FsOp::kDup, a.arg[0], 0, 0, {}, {});
    default:
      return HandlerResult::done(static_cast<std::uint64_t>(-kernel::kENOSYS),
                                 base);
  }
}

// ---------------------------------------------------------------------------
// Faults, interrupts, scheduling
// ---------------------------------------------------------------------------

hw::HandlerResult CnkKernel::onTlbMiss(hw::Core& core, hw::ThreadCtx& ctx,
                                       hw::VAddr va, hw::Access access) {
  (void)access;
  // With the static map sized to the TLB there are no steady-state
  // misses; a miss can only be an eviction artifact (refill from the
  // static map) or a genuine wild access.
  Thread& t = threadOf(ctx);
  if (const kernel::MemRegionDesc* r = t.proc.regionFor(va)) {
    const std::uint64_t tile = (va - r->vbase) / r->pageSize;
    hw::TlbEntry e;
    e.pid = t.proc.pid();
    e.vaddr = r->vbase + tile * r->pageSize;
    e.paddr = r->pbase + tile * r->pageSize;
    e.size = r->pageSize;
    e.perms = r->perms;
    e.valid = true;
    core.mmu().install(e);
    ++tlbRefills_;
    return hw::HandlerResult::done(0, 35);
  }
  // Wild access: SIGSEGV (or death).
  logRas(kernel::RasEvent::Code::kSegv, t.proc.pid(), ctx.tid, va);
  const sim::Cycle c = deliverSignal(t, kernel::kSigSegv, ctx.pc + 1);
  return hw::HandlerResult::resched(c);
}

void CnkKernel::applyGuardDac(hw::Core& core, const Thread& t) {
  hw::DacRange& d = core.mmu().dac(0);
  if (t.guardHi > t.guardLo) {
    d.enabled = true;
    d.lo = t.guardLo;
    d.hi = t.guardHi;
    d.onWrite = true;
    d.onRead = true;
  } else {
    d.enabled = false;
  }
}

hw::HandlerResult CnkKernel::onInterrupt(hw::Core& core, hw::Irq irq) {
  switch (irq) {
    case hw::Irq::kDecrementer:
      // CNK never arms the decrementer; a spurious one is ignored.
      return hw::HandlerResult::done(0, 10);
    case hw::Irq::kIpi: {
      // Guard-reposition request from another core (§IV-C).
      auto& pending = pendingGuard_[static_cast<std::size_t>(core.id())];
      if (pending) {
        hw::DacRange& d = core.mmu().dac(0);
        d.enabled = true;
        d.lo = pending->first;
        d.hi = pending->second;
        pending.reset();
      }
      return hw::HandlerResult::done(0, 180);
    }
    case hw::Irq::kExternal:
      return hw::HandlerResult::done(0, 60);
    case hw::Irq::kMachineCheck: {
      hw::McSyndrome syn;
      if (!node_.takeMc(&syn)) {
        // No latched syndrome: legacy/external injection
        // (injectL1ParityError). Signal the application so it can
        // recover without a checkpoint/restart cycle (§V-B).
        hw::ThreadCtx* cur = core.current();
        if (cur != nullptr && !cur->done()) {
          Thread& t = threadOf(*cur);
          logRas(kernel::RasEvent::Code::kMachineCheck,
                 kernel::RasEvent::Severity::kWarn, t.proc.pid(), t.ctx.tid,
                 cur->pc);
          const sim::Cycle c =
              deliverSignal(t, kernel::kSigBus, cur->pc);
          return hw::HandlerResult::done(0, 200 + c);
        }
        return hw::HandlerResult::done(0, 200);
      }
      // Hardware latched one or more syndromes; multiple raises
      // collapse into one pending IRQ bit, so drain the whole queue.
      hw::ThreadCtx* cur = core.current();
      const std::uint32_t pid = cur != nullptr ? cur->pid : 0;
      const std::uint32_t tid = cur != nullptr ? cur->tid : 0;
      sim::Cycle cost = 0;
      bool panic = false;
      hw::McSyndrome fatal;
      do {
        switch (syn.kind) {
          case hw::McSyndrome::Kind::kCorrectable:
            // ECC already fixed the data in flight; scrub the word
            // back and count it. Transparent to the application.
            ++eccScrubbed_;
            logRas(kernel::RasEvent::Code::kEccCorrectable,
                   kernel::RasEvent::Severity::kWarn, pid, tid, syn.paddr);
            cost += 120;
            break;
          case hw::McSyndrome::Kind::kParity:
            // L1 parity flip on a clean line: invalidate and refill
            // from L3/DDR. The application never notices (§V-B).
            ++parityRecovered_;
            logRas(kernel::RasEvent::Code::kMachineCheck,
                   kernel::RasEvent::Severity::kWarn, pid, tid, syn.paddr);
            cost += 150;
            break;
          case hw::McSyndrome::Kind::kSpurious:
            ++spuriousMcs_;
            logRas(kernel::RasEvent::Code::kMachineCheck,
                   kernel::RasEvent::Severity::kWarn, 0, 0, 0);
            cost += 80;
            break;
          case hw::McSyndrome::Kind::kUncorrectable:
            panic = true;
            fatal = syn;
            break;
        }
      } while (node_.takeMc(&syn));
      if (panic) cost += panicOnUncorrectable(fatal);
      return hw::HandlerResult::done(0, cost == 0 ? 10 : cost);
    }
  }
  return hw::HandlerResult::done(0, 10);
}

void CnkKernel::onThreadHalt(hw::Core& core, hw::ThreadCtx& ctx) {
  Thread& t = threadOf(ctx);
  const hw::VAddr ctid = t.clearChildTid;
  KernelBase::onThreadHalt(core, ctx);
  if (ctid != 0) {
    // CLONE_CHILD_CLEARTID: the futex wake that completes pthread_join.
    for (Thread* w : futex_.dequeue(t.proc.pid(), ctid, UINT64_MAX)) {
      wakeThread(*w, 0);
    }
  }
  futex_.remove(&t);
  sched_.reapDone();
}

hw::ThreadCtx* CnkKernel::pickNext(hw::Core& core) {
  Thread* t = sched_.pickNext(core.id());
  if (t == nullptr) return nullptr;
  applyGuardDac(core, *t);
  return &t->ctx;
}

void CnkKernel::injectL1ParityError(int coreId) {
  node_.core(coreId).raise(hw::Irq::kMachineCheck);
}

sim::Cycle CnkKernel::panicOnUncorrectable(const hw::McSyndrome& syn) {
  if (panicked_) return 50;  // already failing stopped
  panicked_ = true;

  // Attribute the panic to the first live process for triage.
  std::uint32_t pid = 0;
  for (const auto& p : processes_) {
    if (!p->exited) {
      pid = p->pid();
      break;
    }
  }
  logRas(kernel::RasEvent::Code::kEccUncorrectable,
         kernel::RasEvent::Severity::kFatal, pid, 0, syn.paddr);

  // Capture the dump before the fail-stop: registers and thread
  // states as they were at the machine check.
  shipCoredump(buildCoredump(*this, syn, engine().now()));

  // Fail-stop: nothing user-level retires after an uncorrectable
  // error. The service node sees the kFatal, requeues the job
  // elsewhere, and reboots this node in place.
  for (auto& p : processes_) {
    for (const auto& t : p->threads()) {
      if (!t->ctx.done()) killThread(*t);
    }
  }
  return 3000;
}

void CnkKernel::shipCoredump(std::vector<std::byte> bytes) {
  if (cfg_.ioNodeNetId < 0) return;  // no I/O path in this harness
  const std::string path = coredumpPath(node_.id());
  const std::uint64_t size = bytes.size();
  // Kernel-internal chain on the (pid=0, tid=0) control channel,
  // mirroring the linker's open/read/close idiom: mkdir /cores
  // (EEXIST is fine) -> creat -> write at offset 0 -> close. The
  // fship watchdog/retransmit layer underneath makes each leg
  // reliable; CIOD's replay cache dedupes retransmitted writes.
  fship_->shipRaw(
      io::FsOp::kMkdir, 0, 0, 0, 0, 0, "/cores", {},
      [this, path, size, bytes = std::move(bytes)](io::FsReply&&) mutable {
        fship_->shipRaw(
            io::FsOp::kOpen, 0, 0,
            kernel::kOWronly | kernel::kOCreat | kernel::kOTrunc, 0, 0, path,
            {}, [this, size, bytes = std::move(bytes)](io::FsReply&& orep) mutable {
              if (orep.result < 0) return;  // RAS already has the panic
              const auto fd = static_cast<std::uint64_t>(orep.result);
              fship_->shipRaw(
                  io::FsOp::kWrite, 0, 0, fd, size, 0, {}, std::move(bytes),
                  [this, fd, size](io::FsReply&& wrep) {
                    const bool ok =
                        wrep.result == static_cast<std::int64_t>(size);
                    fship_->shipRaw(
                        io::FsOp::kClose, 0, 0, fd, 0, 0, {}, {},
                        [this, ok, size](io::FsReply&&) {
                          if (ok) {
                            ++coredumpsShipped_;
                            logRas(kernel::RasEvent::Code::kCoredump,
                                   kernel::RasEvent::Severity::kInfo, 0, 0,
                                   size);
                          }
                        });
                  });
            });
      });
}

void CnkKernel::requestReproducibleReset(std::function<void()> onRestarted) {
  // Rendezvous all cores in the Boot SRAM, flush all cache levels to
  // DDR, put DDR in self-refresh, toggle reset (§III).
  unloadJob();
  node_.prepareForReset();
  ++reproResets_;
  booted_ = false;
  engine().schedule(5'000 /* reset toggle + SRAM re-entry */, [this,
                                                               cb = std::move(
                                                                   onRestarted)] {
    node_.restartFromSelfRefresh();
    // Reproducible restart: skip the service-node interaction,
    // reinitialize all functional units directly (§III).
    const std::vector<kernel::BootPhase> phases = {
        {"repro: functional unit reinit", 30'000},
        {"repro: DDR out of self-refresh", 4'000},
        {"repro: critical memory reinit", 8'000},
    };
    sim::Cycle at = 0;
    for (const auto& ph : phases) {
      at += ph.cycles;
      engine().schedule(at, [this, name = ph.name] {
        bootLog_.push_back(name);
      });
    }
    engine().schedule(at, [this, cb = std::move(cb)] {
      booted_ = true;
      if (cb) cb();
    });
  });
}

void CnkKernel::designateRemoteProcess(int core, std::uint32_t pid) {
  remoteProcOfCore_[core] = pid;
}

hw::HandlerResult CnkKernel::dlopenForThread(Thread& t,
                                             const std::string& name) {
  return linker_->dlopen(t, name);
}

}  // namespace bg::cnk

#include "cnk/persist.hpp"

namespace bg::cnk {

void PersistRegistry::configurePool(hw::PAddr base, std::uint64_t size,
                                    hw::VAddr vbase) {
  poolBase_ = base;
  poolSize_ = size;
  vCursor_ = vbase;
}

std::optional<PersistRegion> PersistRegistry::openOrCreate(
    const std::string& name, std::uint64_t size, std::uint32_t uid) {
  auto it = regions_.find(name);
  if (it != regions_.end()) {
    if (it->second.ownerUid != uid) return std::nullopt;  // wrong privileges
    if (size > it->second.size) return std::nullopt;
    return it->second;
  }
  // Persistent regions use 1MB pages: small enough to not waste the
  // pool, large enough to stay static-TLB friendly.
  const std::uint64_t page = hw::kPage1M;
  const std::uint64_t mapped = hw::alignUp(size, page);
  if (poolUsed_ + mapped > poolSize_) return std::nullopt;
  PersistRegion r;
  r.name = name;
  r.vbase = vCursor_;
  r.pbase = poolBase_ + poolUsed_;
  r.size = mapped;
  r.pageSize = page;
  r.ownerUid = uid;
  poolUsed_ += mapped;
  vCursor_ += mapped;
  regions_[name] = r;
  return r;
}

const PersistRegion* PersistRegistry::find(const std::string& name) const {
  auto it = regions_.find(name);
  return it == regions_.end() ? nullptr : &it->second;
}

bool PersistRegistry::remove(const std::string& name, std::uint32_t uid) {
  auto it = regions_.find(name);
  if (it == regions_.end() || it->second.ownerUid != uid) return false;
  // Pool space is not reclaimed (regions are expected to live for the
  // machine partition's lifetime); the name simply becomes available.
  regions_.erase(it);
  return true;
}

}  // namespace bg::cnk

#include "cnk/capability.hpp"

namespace bg::kernel {

const char* easeLabel(Ease e) {
  switch (e) {
    case Ease::kEasy: return "easy";
    case Ease::kMedium: return "medium";
    case Ease::kHard: return "hard";
    case Ease::kNotAvail: return "not avail";
    case Ease::kEasyToHard: return "easy - hard";
    case Ease::kEasyToNotAvail: return "easy - not avail";
    case Ease::kMediumToHard: return "medium - hard";
  }
  return "?";
}

int easeRank(Ease e) {
  switch (e) {
    case Ease::kEasy: return 0;
    case Ease::kEasyToHard: return 1;
    case Ease::kEasyToNotAvail: return 1;
    case Ease::kMedium: return 2;
    case Ease::kMediumToHard: return 3;
    case Ease::kHard: return 4;
    case Ease::kNotAvail: return 5;
  }
  return 6;
}

std::vector<std::string> capabilityFeatures() {
  return {
      "Large page use",
      "Using multiple large page sizes",
      "Large physically contiguous memory",
      "No TLB misses",
      "Full memory protection",
      "General dynamic linking",
      "Full mmap support",
      "Predictable scheduling",
      "Over commit of threads",
      "Performance reproducible",
      "Cycle reproducible execution",
  };
}

}  // namespace bg::kernel

namespace bg::cnk {

using kernel::Capability;
using kernel::Ease;

std::vector<Capability> cnkCapabilities() {
  // Paper Table II (CNK column) + Table III (implement column for the
  // entries Table II lists as not-avail on CNK).
  return {
      {"Large page use", Ease::kEasy, Ease::kEasy,
       "static map uses large pages by default; no app change"},
      {"Using multiple large page sizes", Ease::kEasy, Ease::kEasy,
       "partitioner mixes 1MB/16MB/256MB/1GB"},
      {"Large physically contiguous memory", Ease::kEasy, Ease::kEasy,
       "regions are physically contiguous by construction"},
      {"No TLB misses", Ease::kEasy, Ease::kEasy,
       "whole address space statically TLB-mapped"},
      {"Full memory protection", Ease::kNotAvail, Ease::kMedium,
       "would need dynamic page misses / faulting over the network"},
      {"General dynamic linking", Ease::kNotAvail, Ease::kMedium,
       "ld.so subset only: full-load MAP_COPY, no page perms"},
      {"Full mmap support", Ease::kNotAvail, Ease::kHard,
       "file mmap is copy-in read-only; no demand paging"},
      {"Predictable scheduling", Ease::kEasy, Ease::kEasy,
       "non-preemptive, fixed affinity"},
      {"Over commit of threads", Ease::kEasyToNotAvail, Ease::kMedium,
       "3 threads/core on BG/P; compile-time variable next-gen"},
      {"Performance reproducible", Ease::kEasy, Ease::kEasy,
       "no noise sources to perturb runs"},
      {"Cycle reproducible execution", Ease::kEasy, Ease::kEasy,
       "reset-tolerant restart from DDR self-refresh"},
  };
}

}  // namespace bg::cnk

// CNK's capability registry (paper Tables II & III, CNK column).
#pragma once

#include "kernel/capability.hpp"

namespace bg::cnk {

/// Capabilities as shipped by BG/P's CNK.
std::vector<kernel::Capability> cnkCapabilities();

}  // namespace bg::cnk

#include "cnk/partitioner.hpp"

#include <algorithm>
#include <array>

namespace bg::cnk {

namespace {
constexpr std::array<std::uint64_t, 4> kPageSizes = {
    hw::kPage1M, hw::kPage16M, hw::kPage256M, hw::kPage1G};
}

std::uint64_t pickPageSize(std::uint64_t size, int maxTiles) {
  for (std::uint64_t p : kPageSizes) {
    const std::uint64_t tiles = (size + p - 1) / p;
    if (tiles <= static_cast<std::uint64_t>(maxTiles)) return p;
  }
  return 0;
}

int tileCount(std::uint64_t size, std::uint64_t pageSize) {
  return static_cast<int>((size + pageSize - 1) / pageSize);
}

namespace {

/// Lay one region at/after vHint and pCursor, aligned to its page
/// size. Updates pCursor and accumulates waste.
kernel::MemRegionDesc layRegion(const std::string& name, hw::VAddr vHint,
                                std::uint64_t size, std::uint8_t perms,
                                int maxTiles, std::uint64_t& pCursor,
                                std::uint64_t& waste, bool& ok) {
  kernel::MemRegionDesc r;
  const std::uint64_t page = pickPageSize(std::max<std::uint64_t>(size, 1),
                                          maxTiles);
  if (page == 0) {
    ok = false;
    return r;
  }
  const std::uint64_t mapped =
      static_cast<std::uint64_t>(tileCount(size, page)) * page;
  const hw::VAddr vbase = hw::alignUp(vHint, page);
  const std::uint64_t pbase = hw::alignUp(pCursor, page);
  waste += (pbase - pCursor) + (mapped - size);
  pCursor = pbase + mapped;
  r.name = name;
  r.vbase = vbase;
  r.pbase = pbase;
  r.size = mapped;
  r.perms = perms;
  r.pageSize = page;
  return r;
}

}  // namespace

PartitionResult partitionMemory(const PartitionRequest& req) {
  PartitionResult res;
  if (req.processes < 1 || req.processes > 4) {
    res.error = "process count must be 1..4";
    return res;
  }
  if (req.physSize == 0) {
    res.error = "no physical memory";
    return res;
  }

  // Tile budgets: text/data/shared are small and get a handful of
  // entries each; the heap/stack range is the big one and uses
  // whatever remains of the TLB budget.
  const int maxTiles = std::max(1, std::min(8, req.tlbBudget / 4));

  std::uint64_t pCursor = req.physBase;
  std::uint64_t waste = 0;
  bool ok = true;

  // Shared memory first: one physical range mapped identically into
  // every process.
  kernel::MemRegionDesc shared;
  if (req.sharedBytes > 0) {
    shared = layRegion("shared", kSharedVBase, req.sharedBytes,
                       hw::kPermRW, maxTiles, pCursor, waste, ok);
    if (!ok) {
      res.error = "shared region does not tile";
      return res;
    }
  }

  // Heap+stack: divide what remains evenly among processes (paper
  // §VII-B: "CNK divides memory on a node evenly among the tasks").
  const std::uint64_t end = req.physBase + req.physSize;

  for (int p = 0; p < req.processes && ok; ++p) {
    ProcLayout lay;
    // No memory protection on CNK text: the static map deliberately
    // leaves text writable (paper §IV-B2 / Table II "Full memory
    // protection: not avail").
    lay.text = layRegion("text", kTextVBase, req.textBytes, hw::kPermRWX,
                         maxTiles, pCursor, waste, ok);
    if (!ok) break;
    lay.data = layRegion("data", lay.text.vbase + lay.text.size,
                         req.dataBytes, hw::kPermRW, maxTiles, pCursor,
                         waste, ok);
    if (!ok) break;
    lay.shared = shared;
    res.procs.push_back(lay);
  }
  if (!ok) {
    res.error = "text/data region does not tile";
    return res;
  }

  // Remaining physical memory -> heap+stack ranges, evenly divided.
  if (pCursor >= end) {
    res.error = "no memory left for heap/stack";
    return res;
  }
  const std::uint64_t remaining = end - pCursor;
  const std::uint64_t perProc = remaining / static_cast<std::uint64_t>(
                                    req.processes);

  // TLB entries already spent on the small regions.
  const ProcLayout& first = res.procs.front();
  int used = tileCount(first.text.size, first.text.pageSize) +
             tileCount(first.data.size, first.data.pageSize);
  if (req.sharedBytes > 0) {
    used += tileCount(first.shared.size, first.shared.pageSize);
  }
  const int heapBudget = std::max(1, req.tlbBudget - used);

  for (int p = 0; p < req.processes; ++p) {
    ProcLayout& lay = res.procs[static_cast<std::size_t>(p)];
    // Smallest page that tiles the heap within the remaining budget;
    // smaller pages lose less to alignment in a small node. If
    // alignment to the chosen page would starve the heap entirely,
    // step the page size down (serving memory beats staying strictly
    // inside the entry budget — the real partitioner does the same).
    std::uint64_t page = pickPageSize(perProc, heapBudget);
    if (page == 0) page = hw::kPage1G;
    std::uint64_t pbase = 0;
    std::uint64_t mapped = 0;
    for (;;) {
      pbase = hw::alignUp(pCursor, page);
      if (pbase < end) {
        const std::uint64_t avail = std::min(perProc, end - pbase);
        mapped = hw::alignDown(avail, page);
      } else {
        mapped = 0;
      }
      if (mapped > 0 || page == hw::kPage1M) break;
      page = page == hw::kPage1G    ? hw::kPage256M
             : page == hw::kPage256M ? hw::kPage16M
                                     : hw::kPage1M;
    }
    if (mapped == 0) {
      res.error = "heap smaller than one page";
      return res;
    }
    waste += pbase - pCursor;
    pCursor = pbase + mapped;

    kernel::MemRegionDesc& hs = lay.heapStack;
    hs.name = "heapStack";
    hs.vbase = hw::alignUp(lay.data.vbase + lay.data.size, page);
    hs.pbase = pbase;
    hs.size = mapped;
    hs.perms = hw::kPermRW;
    hs.pageSize = page;
  }

  int entries = 0;
  const ProcLayout& l0 = res.procs.front();
  entries += tileCount(l0.text.size, l0.text.pageSize);
  entries += tileCount(l0.data.size, l0.data.pageSize);
  entries += tileCount(l0.heapStack.size, l0.heapStack.pageSize);
  if (req.sharedBytes > 0) {
    entries += tileCount(l0.shared.size, l0.shared.pageSize);
  }
  res.tlbEntriesPerProcess = entries;
  res.wastedBytes = waste;
  res.physUsed = pCursor - req.physBase;
  res.ok = true;
  return res;
}

std::vector<hw::TlbEntry> tlbEntriesFor(const kernel::MemRegionDesc& r,
                                        std::uint32_t pid) {
  std::vector<hw::TlbEntry> out;
  if (r.size == 0) return out;
  const int tiles = tileCount(r.size, r.pageSize);
  out.reserve(static_cast<std::size_t>(tiles));
  for (int i = 0; i < tiles; ++i) {
    hw::TlbEntry e;
    e.pid = pid;
    e.vaddr = r.vbase + static_cast<std::uint64_t>(i) * r.pageSize;
    e.paddr = r.pbase + static_cast<std::uint64_t>(i) * r.pageSize;
    e.size = r.pageSize;
    e.perms = r.perms;
    e.valid = true;
    out.push_back(e);
  }
  return out;
}

}  // namespace bg::cnk

// CNK dynamic-linking support (paper §IV-B2).
//
// Models the ld.so behaviour CNK enabled: the library image is fetched
// whole from the I/O node's filesystem (open/read/close over the
// function-ship protocol — the ld.so MAP_COPY path) and loaded fully
// into memory at dlopen time. No page permissions are applied to the
// library's text/read-only data — a conscious lightweight-design
// decision: the cost is paid once, contained in startup/dlopen, rather
// than as demand-paging noise during compute.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "hw/addr.hpp"
#include "hw/kernel_if.hpp"
#include "kernel/process.hpp"

namespace bg::cnk {

class CnkKernel;

struct LoadedLib {
  std::string name;
  hw::VAddr textBase = 0;
  std::uint64_t textSize = 0;
  hw::VAddr dataBase = 0;
  std::uint64_t dataSize = 0;
  std::uint64_t checksum = 0;  // of the loaded text bytes
};

class Linker {
 public:
  explicit Linker(CnkKernel& kern) : kern_(kern) {}

  /// Begin a dlopen on behalf of thread t. The calling thread blocks
  /// (no yield, like any I/O) while the image is fetched and mapped;
  /// it wakes with a handle (> 0) or -errno.
  hw::HandlerResult dlopen(kernel::Thread& t, const std::string& libName);

  const LoadedLib* byHandle(std::uint32_t pid, std::uint64_t handle) const;
  const LoadedLib* byName(std::uint32_t pid, const std::string& name) const;
  std::size_t loadedCount(std::uint32_t pid) const;

 private:
  void step2Read(kernel::Thread& t, const std::string& name,
                 std::int64_t fd);
  void step3CloseAndMap(kernel::Thread& t, const std::string& name,
                        std::int64_t fd, std::vector<std::byte> image);

  CnkKernel& kern_;
  std::uint64_t nextHandle_ = 1;
  std::map<std::pair<std::uint32_t, std::uint64_t>, LoadedLib> libs_;
};

}  // namespace bg::cnk

// On-disk format of a compute node's application checkpoint image.
//
// The image captures everything CNK needs to rebuild the loaded job's
// user-visible state on a freshly-loaded node of the same geometry:
// per-process brk / mmap-zone bookkeeping / signal handlers, every
// thread's architectural context (registers, pc, guard range), and the
// contents of all writable static regions (data, heap/stack, shared,
// persist) serialized sparsely — all-zero 64KB granules are elided.
// Read-only text is NOT in the image: the job loader re-creates it
// bit-identically from the executable.
//
// Integrity: the image ends in an FNV-1a seal over all preceding
// bytes. A torn or truncated image (crash mid-write) fails the seal
// check and restore falls back to a scratch start — never a wedge.
// Atomicity: the shipper writes `imageTmpPath` and renames it onto
// `imagePath` (a single replay-cached CIOD op), so a committed image
// is always complete and a crash mid-checkpoint leaves the previous
// committed image as the truth.
#pragma once

#include <cstdint>
#include <string>

namespace bg::cnk::ckpt {

inline constexpr std::uint32_t kMagic = 0x434E4B43;  // "CNKC"
inline constexpr std::uint32_t kVersion = 1;

/// Sparse-serialization granule: all-zero chunks this size are elided.
inline constexpr std::uint64_t kChunkBytes = 64ULL << 10;

/// Upper bound a restore read asks CIOD for (images are far smaller).
inline constexpr std::uint64_t kMaxImageBytes = 256ULL << 20;

/// Shared-filesystem path of a node's committed image. Keyed by job id
/// and the node's first rank so every node of a job writes a distinct
/// file and a requeued job finds its own images.
inline std::string imagePath(std::uint32_t jobId, int firstRank) {
  return "/ckpt/job" + std::to_string(jobId) + ".r" +
         std::to_string(firstRank) + ".ckpt";
}
/// The in-flight half of the two-phase commit.
inline std::string imageTmpPath(std::uint32_t jobId, int firstRank) {
  return imagePath(jobId, firstRank) + ".tmp";
}

}  // namespace bg::cnk::ckpt

#include "cnk/coredump.hpp"

#include "kernel/kernel.hpp"
#include "sim/bytes.hpp"

namespace bg::cnk {

std::string coredumpPath(int nodeId) {
  return "/cores/node" + std::to_string(nodeId) + ".core";
}

std::vector<std::byte> buildCoredump(kernel::KernelBase& kern,
                                     const hw::McSyndrome& syn,
                                     sim::Cycle now) {
  sim::ByteWriter w;
  w.u32(kCoredumpMagic);
  w.u32(1);  // format version
  w.u64(now);
  w.u32(static_cast<std::uint32_t>(kern.node().id()));

  // Syndrome: what killed the node.
  w.u8(static_cast<std::uint8_t>(syn.kind));
  w.u64(syn.paddr);
  w.u32(static_cast<std::uint32_t>(syn.core));

  // Process table. Iteration order is load order — deterministic.
  const auto& procs = kern.processes();
  w.u32(static_cast<std::uint32_t>(procs.size()));
  for (const auto& p : procs) {
    w.u32(p->pid());
    w.u32(static_cast<std::uint32_t>(p->rank));
    w.u8(p->exited ? 1 : 0);

    // Thread table with architectural registers (the part of a full
    // core file that actually gets read during fleet triage).
    const auto& threads = p->threads();
    w.u32(static_cast<std::uint32_t>(threads.size()));
    for (const auto& t : threads) {
      const hw::ThreadCtx& c = t->ctx;
      w.u32(c.tid);
      w.u8(static_cast<std::uint8_t>(c.state));
      w.u64(c.pc);
      w.u64(c.instrRetired);
      w.u32(static_cast<std::uint32_t>(c.coreAffinity));
      for (int r = 0; r < vm::kNumRegs; ++r) w.u64(c.regs[r]);
    }

    // Mapped-region summary (paper Fig 3's static map).
    w.u32(static_cast<std::uint32_t>(p->regions.size()));
    for (const auto& r : p->regions) {
      w.str(r.name);
      w.u64(r.vbase);
      w.u64(r.size);
      w.u8(r.perms);
    }
  }
  return std::move(w).take();
}

}  // namespace bg::cnk

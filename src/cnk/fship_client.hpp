// CNK side of the function-shipped I/O protocol (paper §IV-A, Fig 2).
//
// When an application makes an I/O system call, CNK marshals the
// parameters into a message and ships it over the collective network
// to the CIOD on the I/O node. The calling thread blocks WITHOUT
// yielding the core (ctx.yieldOnBlock = false): the paper notes that
// not yielding during an I/O syscall is what makes function shipping
// trivial — no kernel context switch ever happens on a kernel stack.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "hw/collective.hpp"
#include "io/protocol.hpp"
#include "kernel/kernel.hpp"

namespace bg::cnk {

struct FshipStats {
  std::uint64_t requests = 0;
  std::uint64_t repliesMatched = 0;
  std::uint64_t bytesShipped = 0;
  std::uint64_t bytesReceived = 0;
};

class FshipClient {
 public:
  FshipClient(kernel::KernelBase& kern, int ioNodeNetId);

  /// Register the reply handler on the node's collective tap.
  void attach();

  /// Marshal-and-send costs charged to the calling thread.
  sim::Cycle marshalCost(std::uint64_t payloadBytes) const {
    return 600 + payloadBytes / 8;
  }

  /// Ship a request on behalf of thread t and block it (no yield).
  /// On reply: for kRead/kGetcwd the payload is copied to userBuf
  /// (bounded by userLen), then the thread wakes with the result.
  hw::HandlerResult ship(kernel::Thread& t, io::FsOp op, std::uint64_t a0,
                         std::uint64_t a1, std::uint64_t a2,
                         std::string path, std::vector<std::byte> payload,
                         hw::VAddr userBuf = 0, std::uint64_t userLen = 0);

  /// Lower-level variant for kernel-internal chains (the dynamic
  /// linker's open/read/close sequence): completion gets the reply.
  using Completion = std::function<void(io::FsReply&&)>;
  sim::Cycle shipRaw(io::FsOp op, std::uint32_t pid, std::uint32_t tid,
                     std::uint64_t a0, std::uint64_t a1, std::uint64_t a2,
                     std::string path, std::vector<std::byte> payload,
                     Completion completion);

  const FshipStats& stats() const { return stats_; }
  std::size_t pendingCount() const { return pending_.size(); }

 private:
  void onReply(hw::CollPacket&& pkt);

  kernel::KernelBase& kern_;
  int ioNodeNetId_;
  std::uint64_t nextSeq_ = 1;
  std::map<std::uint64_t, Completion> pending_;
  FshipStats stats_;
};

}  // namespace bg::cnk

// CNK side of the function-shipped I/O protocol (paper §IV-A, Fig 2).
//
// When an application makes an I/O system call, CNK marshals the
// parameters into a message and ships it over the collective network
// to the CIOD on the I/O node. The calling thread blocks WITHOUT
// yielding the core (ctx.yieldOnBlock = false): the paper notes that
// not yielding during an I/O syscall is what makes function shipping
// trivial — no kernel context switch ever happens on a kernel stack.
//
// Reliability: each (pid, tid) channel carries at most one op at a
// time (the thread is blocked), numbered by a monotone per-channel
// seq. A watchdog retransmits with bounded exponential backoff;
// duplicate and stale replies are suppressed by seq; a request that
// exhausts its retries raises RAS and either returns -EIO to the app
// or parks for a failover grace window. The client also keeps a
// *shadow* of each process's I/O state (fd table with offsets, cwd) —
// the same state the ioproxy mirrors — which (a) supplies explicit
// file offsets for read/write so retransmits are idempotent, and
// (b) rebuilds the ioproxies on a spare I/O node after a CIOD death
// (rehome + kRestoreState), letting in-flight syscalls complete.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "hw/collective.hpp"
#include "io/protocol.hpp"
#include "kernel/kernel.hpp"

namespace bg::cnk {

struct FshipStats {
  std::uint64_t requests = 0;         // logical ops shipped
  std::uint64_t repliesMatched = 0;
  std::uint64_t bytesShipped = 0;     // wire bytes incl. retransmits
  std::uint64_t bytesReceived = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t timeouts = 0;         // watchdog fires
  std::uint64_t duplicateReplies = 0; // suppressed by seq matching
  std::uint64_t corruptReplies = 0;   // checksum-rejected replies
  std::uint64_t eioReturns = 0;       // ops abandoned with -EIO
  std::uint64_t rehomes = 0;          // failovers to a spare I/O node
  std::uint64_t restoresSent = 0;     // kRestoreState ops shipped

  FshipStats& operator+=(const FshipStats& o) {
    requests += o.requests;
    repliesMatched += o.repliesMatched;
    bytesShipped += o.bytesShipped;
    bytesReceived += o.bytesReceived;
    retransmits += o.retransmits;
    timeouts += o.timeouts;
    duplicateReplies += o.duplicateReplies;
    corruptReplies += o.corruptReplies;
    eioReturns += o.eioReturns;
    rehomes += o.rehomes;
    restoresSent += o.restoresSent;
    return *this;
  }
};

class FshipClient {
 public:
  struct Config {
    /// First-try watchdog. The default is far above any fault-free
    /// reply backlog (the io-offload bench queues ~8M cycles behind
    /// one CIOD), so with zero link faults no timer ever fires and
    /// the schedule is bit-identical to a watchdog-free build.
    sim::Cycle requestTimeout = 100'000'000;
    sim::Cycle maxTimeout = 400'000'000;  // backoff cap
    int maxRetries = 5;                   // retransmits before give-up
    /// After retries are exhausted: 0 = return -EIO immediately
    /// (pure watchdog); >0 = park the op this long awaiting a
    /// service-node failover, completing it on the spare.
    sim::Cycle failoverGrace = 0;
  };

  FshipClient(kernel::KernelBase& kern, int ioNodeNetId)
      : FshipClient(kern, ioNodeNetId, Config()) {}
  FshipClient(kernel::KernelBase& kern, int ioNodeNetId, Config cfg);

  /// Register the reply handler on the node's collective tap.
  void attach();

  /// Marshal-and-send costs charged to the calling thread.
  sim::Cycle marshalCost(std::uint64_t payloadBytes) const {
    return 600 + payloadBytes / 8;
  }

  /// Ship a request on behalf of thread t and block it (no yield).
  /// On reply: for kRead/kGetcwd the payload is copied to userBuf
  /// (bounded by userLen), then the thread wakes with the result.
  hw::HandlerResult ship(kernel::Thread& t, io::FsOp op, std::uint64_t a0,
                         std::uint64_t a1, std::uint64_t a2,
                         std::string path, std::vector<std::byte> payload,
                         hw::VAddr userBuf = 0, std::uint64_t userLen = 0);

  /// Lower-level variant for kernel-internal chains (the dynamic
  /// linker's open/read/close sequence): completion gets the reply.
  /// A reply with result == -EIO may be synthesized by the watchdog.
  using Completion = std::function<void(io::FsReply&&)>;
  sim::Cycle shipRaw(io::FsOp op, std::uint32_t pid, std::uint32_t tid,
                     std::uint64_t a0, std::uint64_t a1, std::uint64_t a2,
                     std::string path, std::vector<std::byte> payload,
                     Completion completion);

  /// Service-node failover hook: point at the replacement I/O node,
  /// rebuild its ioproxies from the shadow state (kRestoreState per
  /// process), then retransmit every op still in flight.
  void rehome(int newIoNodeNetId);

  /// Job teardown: cancel all timers and drop in-flight ops WITHOUT
  /// completing them — the blocked threads are being destroyed, and a
  /// late completion would touch freed memory.
  void reset();

  int ioNodeNetId() const { return ioNodeNetId_; }
  /// True between a timeout-storm declaration and the next rehome.
  bool ioNodeDead() const { return ioNodeDead_; }
  const Config& config() const { return cfg_; }
  const FshipStats& stats() const { return stats_; }
  std::size_t pendingCount() const { return pending_.size(); }
  /// Remote fds a process holds open via the shadow (the checkpoint
  /// engine refuses to cut while any exist: fd state is not in the
  /// image, so a restored process would hold dangling descriptors).
  std::size_t shadowFdCount(std::uint32_t pid) const {
    auto it = shadow_.find(pid);
    return it == shadow_.end() ? 0 : it->second.fds.size();
  }

 private:
  using ChanKey = std::pair<std::uint32_t, std::uint32_t>;  // (pid, tid)

  /// Client-side mirror of one open file description; dup'd fds share
  /// the entry, exactly like the ioproxy's shared OpenFile.
  struct ShadowFile {
    std::string path;  // absolute, normalized
    std::uint64_t flags = 0;
    std::uint64_t offset = 0;
  };
  struct ProcShadow {
    std::map<int, std::shared_ptr<ShadowFile>> fds;
    std::string cwd = "/";
    int nextFd = 3;
    bool awaitingRestore = false;
    bool dirty() const { return !fds.empty() || cwd != "/" || nextFd != 3; }
  };
  struct PendingOp {
    io::FsRequest req;  // retained for retransmit
    Completion completion;
    int attempts = 0;        // transmissions so far
    sim::Cycle timeout = 0;  // current backoff value
    std::optional<sim::EventId> timer;
    bool parked = false;  // awaiting failover grace or a restore ack
  };

  void transmit(PendingOp& op);
  void armTimer(const ChanKey& key, PendingOp& op, sim::Cycle delay,
                bool grace);
  void cancelTimer(PendingOp& op);
  void onTimeout(const ChanKey& key, std::uint64_t seq);
  void onGraceExpired(const ChanKey& key, std::uint64_t seq);
  void onReply(hw::CollPacket&& pkt);
  void giveUp(const ChanKey& key, PendingOp& op);
  void abandonWithEio(const ChanKey& key);
  void declareIoNodeDead();
  void sendRestore(std::uint32_t pid);
  void applyShadow(const io::FsRequest& req, const io::FsReply& rep);
  std::string absolutizeShadow(const ProcShadow& ps,
                               const std::string& path) const;

  kernel::KernelBase& kern_;
  int ioNodeNetId_;
  Config cfg_;
  std::map<ChanKey, std::uint64_t> nextSeq_;
  std::map<ChanKey, PendingOp> pending_;
  std::map<std::uint32_t, ProcShadow> shadow_;
  bool ioNodeDead_ = false;
  FshipStats stats_;
};

}  // namespace bg::cnk

// Persistent memory across job boundaries (paper §IV-D).
//
// An application tags memory as persistent by name (shm_open-style).
// When the next job starts, regions with matching names are re-mapped
// at the SAME virtual addresses, so linked-list-style pointer
// structures survive. The registry lives at node scope: it outlives
// processes and jobs; the backing physical range is never reused for
// anything else, and its DRAM contents are simply left in place.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "hw/addr.hpp"

namespace bg::cnk {

struct PersistRegion {
  std::string name;
  hw::VAddr vbase = 0;   // fixed virtual address, identical across jobs
  hw::PAddr pbase = 0;
  std::uint64_t size = 0;     // mapped (page-rounded) size
  std::uint64_t pageSize = 0;
  std::uint32_t ownerUid = 0;  // privilege check across jobs
};

class PersistRegistry {
 public:
  /// Configure the physical pool persistent regions are carved from.
  void configurePool(hw::PAddr base, std::uint64_t size,
                     hw::VAddr vbase);

  /// Open-or-create. On create, carves `size` (page-rounded) bytes from
  /// the pool at the next fixed virtual address. On open, `size` must
  /// not exceed the existing region and uid must match the owner.
  /// Returns nullopt on privilege mismatch or pool exhaustion.
  std::optional<PersistRegion> openOrCreate(const std::string& name,
                                            std::uint64_t size,
                                            std::uint32_t uid);

  const PersistRegion* find(const std::string& name) const;
  std::size_t regionCount() const { return regions_.size(); }
  std::uint64_t poolBytesUsed() const { return poolUsed_; }

  /// Drop a region (explicit delete; job teardown never does this).
  bool remove(const std::string& name, std::uint32_t uid);

 private:
  hw::PAddr poolBase_ = 0;
  std::uint64_t poolSize_ = 0;
  std::uint64_t poolUsed_ = 0;
  hw::VAddr vCursor_ = 0;
  std::map<std::string, PersistRegion> regions_;
};

}  // namespace bg::cnk

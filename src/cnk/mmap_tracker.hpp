// Address-range bookkeeping behind CNK's mmap (paper §IV-C).
//
// "Since CNK statically maps memory, the mmap system call does not
// need to perform any adjustments, or handle page faults. It merely
// provides free addresses to the application" — plus tracking of
// allocated ranges and coalescing of freed ones. This tracker manages
// the mmap zone at the top of the heap/stack range (growing down,
// toward brk growing up).
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "hw/addr.hpp"
#include "sim/bytes.hpp"

namespace bg::cnk {

class MmapTracker {
 public:
  MmapTracker() = default;

  /// Define the managed range [lo, hi).
  void reset(hw::VAddr lo, hw::VAddr hi);

  /// Allocate len bytes (rounded to align); prefers the highest free
  /// block so the zone grows downward toward brk. Returns nullopt when
  /// no free block fits.
  std::optional<hw::VAddr> alloc(std::uint64_t len,
                                 std::uint64_t align = 4096);

  /// Allocate at a fixed address (MAP_FIXED); fails if overlapping an
  /// existing allocation or outside the zone.
  bool allocFixed(hw::VAddr addr, std::uint64_t len);

  /// Free a previously-allocated range; adjacent free ranges coalesce.
  /// Partial unmaps of an allocation are supported.
  bool free(hw::VAddr addr, std::uint64_t len);

  /// Record a permission change (bookkeeping only — CNK does not
  /// enforce mmap permissions in hardware). Coalesces the bookkeeping
  /// ranges as the paper describes.
  bool setProt(hw::VAddr addr, std::uint64_t len, std::uint8_t perms);

  bool isAllocated(hw::VAddr addr) const;
  std::uint64_t bytesAllocated() const { return bytesAllocated_; }
  std::size_t freeBlockCount() const { return free_.size(); }
  std::size_t allocatedBlockCount() const { return allocated_.size(); }
  hw::VAddr lowestAllocated() const;
  hw::VAddr lo() const { return lo_; }
  hw::VAddr hi() const { return hi_; }

  /// Serialize the full zone state (bounds, free list, allocations)
  /// into a checkpoint image / restore it. loadFrom replaces all state
  /// and returns false on a malformed image.
  void saveTo(sim::ByteWriter& w) const;
  bool loadFrom(sim::ByteReader& r);

 private:
  struct Range {
    std::uint64_t len;
    std::uint8_t perms;
  };
  void insertFree(hw::VAddr addr, std::uint64_t len);
  void mergeAllocatedNeighbors(hw::VAddr addr);

  hw::VAddr lo_ = 0;
  hw::VAddr hi_ = 0;
  std::map<hw::VAddr, std::uint64_t> free_;  // addr -> len, coalesced
  std::map<hw::VAddr, Range> allocated_;
  std::uint64_t bytesAllocated_ = 0;
};

}  // namespace bg::cnk
